// Ablation: live vertex migration vs the paper's §V imbalance result.
//
// The paper's central negative finding is that edge-cut-optimal partitions
// *hurt* traversal workloads on BSP: BC's frontier sweeps through one
// well-cut region at a time, the barrier makes the busiest worker set the
// pace, and per-superstep makespan imbalance eats the cut-quality win.
// cit-Patents is the starkest case — its temporal locality gives METIS-like
// partitions with beautiful cuts and terrible per-superstep activity maximas.
//
// Setup: the CP analog, BC from a fixed root set, hash vs METIS-like
// partitions, live rebalancing off vs the activity-greedy planner replanning
// every barrier. Reported per cell:
//   - mean per-superstep makespan imbalance (max worker busy / mean busy,
//     averaged over supersteps with any work) — the quantity §V blames;
//   - modeled time, barrier wait, and the migration traffic that bought the
//     improvement.
// Expected shape: hash starts near 1 and migration finds little; METIS-like
// starts high and activity-greedy pulls the imbalance (and barrier wait)
// down at the price of migrated bytes.
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algos/bc.hpp"
#include "harness/experiment.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

/// Mean over supersteps of (max worker busy / mean worker busy), counting
/// only steps where any worker did work. 1.0 = perfectly level supersteps.
double mean_makespan_imbalance(const JobMetrics& m) {
  double sum = 0.0;
  std::size_t counted = 0;
  for (const auto& ss : m.supersteps) {
    double max_busy = 0.0, total_busy = 0.0;
    for (const auto& w : ss.workers) {
      const double busy = w.compute_time + w.network_time;
      max_busy = std::max(max_busy, busy);
      total_busy += busy;
    }
    if (total_busy <= 0.0 || ss.workers.empty()) continue;
    const double mean_busy = total_busy / static_cast<double>(ss.workers.size());
    sum += max_busy / mean_busy;
    ++counted;
  }
  return counted == 0 ? 0.0 : sum / static_cast<double>(counted);
}

struct Row {
  std::string partitioner, rebalance;
  double imbalance;
  Seconds total, wait;
  std::uint32_t migrations;
  Bytes migrated_bytes;
  double gain;
};

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — activity-aware rebalancing on cit-Patents (BC)",
         "METIS-like cuts minimize remote messages but maximize per-superstep "
         "imbalance; the activity-greedy migration planner levels the "
         "supersteps live, paying for it in migrated bytes");

  const Graph& g = dataset("CP");
  const std::uint32_t partitions = 16, workers = 4;
  ClusterConfig base = make_cluster(env(), partitions, workers);
  const std::size_t n_roots = env().quick ? 4 : 12;
  const auto roots = pick_roots(g, n_roots, env().seed + 53);

  MultilevelPartitioner::Options mo;
  mo.seed = env().seed;
  const auto metis_like = MultilevelPartitioner{mo}.partition(g, partitions);
  const auto hashed = HashPartitioner{}.partition(g, partitions);

  TextTable t({"partitioner", "rebalance", "imbalance", "modeled time",
               "barrier wait", "migrations", "moved MiB"});
  std::vector<Row> rows;

  for (const auto* pr : {&hashed, &metis_like}) {
    const std::string pname = (pr == &hashed) ? "hash" : "metis-like";
    for (bool rebalance : {false, true}) {
      ClusterConfig c = base;
      if (rebalance) {
        c.migration.planner = std::make_shared<ActivityGreedyPlanner>(0.1);
        c.migration.period = 1;  // replan at every barrier
      }
      Engine<BcProgram> e(g, {}, c, *pr);
      JobOptions o;
      o.roots = roots;
      o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                                  std::make_shared<StaticNInitiation>(4),
                                  memory_target(c.vm));
      const auto r = e.run(o);
      Row row{pname,
              rebalance ? "activity-greedy" : "off",
              mean_makespan_imbalance(r.metrics),
              r.metrics.total_time,
              r.metrics.total_barrier_wait(),
              r.metrics.migrations,
              r.metrics.migrated_bytes,
              r.metrics.rebalance_gain};
      rows.push_back(row);
      t.add_row({row.partitioner, row.rebalance, fmt(row.imbalance, 3),
                 format_seconds(row.total), format_seconds(row.wait),
                 std::to_string(row.migrations),
                 fmt(static_cast<double>(row.migrated_bytes) / (1024.0 * 1024.0), 1)});
    }
  }

  t.print(std::cout);

  auto cell = [&rows](const std::string& p, const std::string& rb) -> const Row& {
    for (const auto& r : rows)
      if (r.partitioner == p && r.rebalance == rb) return r;
    return rows.front();
  };
  const double metis_off = cell("metis-like", "off").imbalance;
  const double metis_on = cell("metis-like", "activity-greedy").imbalance;
  const double hash_off = cell("hash", "off").imbalance;
  std::cout << "\nper-superstep imbalance: hash/off " << fmt(hash_off, 3)
            << ", metis/off " << fmt(metis_off, 3)
            << " (the paper's penalty), metis/rebalanced " << fmt(metis_on, 3)
            << " — activity-greedy recovers "
            << fmt(metis_off > hash_off
                       ? 100.0 * (metis_off - metis_on) / (metis_off - hash_off)
                       : 0.0,
                   1)
            << "% of the gap to the hash layout\n";

  write_csv("ablation_rebalance", [&](CsvWriter& w) {
    w.header({"partitioner", "rebalance", "mean_makespan_imbalance",
              "modeled_seconds", "barrier_wait_seconds", "migrations",
              "migrated_bytes", "rebalance_gain"});
    for (const auto& r : rows)
      w.field(r.partitioner).field(r.rebalance).field(r.imbalance)
          .field(r.total).field(r.wait)
          .field(static_cast<std::uint64_t>(r.migrations))
          .field(r.migrated_bytes).field(r.gain).end_row();
  });
  return 0;
}
