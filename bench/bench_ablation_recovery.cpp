// Ablation: recovery cost under the full failure taxonomy. Sweep the
// checkpoint interval under {no faults, worker preemption, manager
// preemption, availability-zone outage} and report modeled makespan and
// dollar cost for each cell. Worker preemptions price the classic
// checkpoint/replay trade-off; manager preemptions add lease-detection +
// takeover latency that is independent of the checkpoint interval; zone
// outages kill a whole failure domain at once, so sparse checkpoints both
// replay a longer tail and widen the window where an outage lands before
// the first (replicated) checkpoint exists and loses the job outright.
#include <chrono>
#include <iostream>

#include "algos/pagerank.hpp"
#include "harness/bench_report.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct Scenario {
  std::string name;
  void (*arm)(ClusterConfig&);
};

void arm_none(ClusterConfig&) {}
void arm_worker(ClusterConfig& c) { c.faults.vm_preemption_rate = 0.004; }
void arm_manager(ClusterConfig& c) { c.faults.manager_preemption_rate = 0.12; }
void arm_zone(ClusterConfig& c) {
  c.availability_zones = 2;
  c.faults.zone_outage_rate = 0.04;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — recovery cost across the failure taxonomy",
         "makespan and $-cost vs checkpoint interval under worker "
         "preemptions, job-manager preemptions, and correlated "
         "availability-zone outages");

  const Graph& g = dataset("SD");
  const auto parts = HashPartitioner{}.partition(g, 8);
  const int iterations = env().quick ? 20 : 60;
  const Scenario scenarios[] = {{"no-faults", arm_none},
                                {"worker-preemption", arm_worker},
                                {"manager-preemption", arm_manager},
                                {"zone-outage", arm_zone}};

  // Checkpoint-free, fault-free reference for the overhead column.
  ClusterConfig clean = make_cluster(env(), 8, 8);
  Engine<PageRankProgram> eclean(g, {iterations, 0.85}, clean, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto base = eclean.run(o);
  std::cout << "fault-free, checkpoint-free run: "
            << format_seconds(base.metrics.total_time) << ", $"
            << fmt(base.metrics.cost_usd, 4) << "\n\n";

  BenchReport report("ablation_recovery");
  TextTable t({"scenario", "ckpt every", "failures", "failovers", "outages",
               "makespan", "cost", "overhead vs clean"});
  std::vector<std::pair<std::string, double>> bars;
  struct Row {
    std::string scenario;
    std::uint64_t interval;
    bool failed;
    std::uint32_t failures, failovers, outages;
    double makespan, cost;
  };
  std::vector<Row> rows;

  for (const Scenario& s : scenarios) {
    for (std::uint64_t interval : {2ull, 5ull, 10ull, 20ull}) {
      ClusterConfig c = make_cluster(env(), 8, 8);
      c.checkpoint_interval = interval;
      // Recovery constants scaled to analog size, as in the fault-tolerance
      // ablation: production 30s/90s values would swamp ms-scale supersteps.
      c.failure_detection_time = 1.0;
      c.vm_reacquisition_time = 2.0;
      c.manager_lease_timeout = 1.0;
      c.manager_takeover_time = 0.5;
      s.arm(c);

      Engine<PageRankProgram> e(g, {iterations, 0.85}, c, parts);
      const auto wall0 = std::chrono::steady_clock::now();
      const auto r = e.run(o);
      const double wall =
          std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
              .count();

      const std::string series = s.name + "/ckpt-" + std::to_string(interval);
      report.add_sample(series, wall);
      rows.push_back({s.name, interval, r.failed, r.metrics.worker_failures,
                      r.metrics.manager_failovers, r.metrics.zone_outages,
                      r.failed ? 0.0 : r.metrics.total_time,
                      r.failed ? 0.0 : r.metrics.cost_usd});
      if (r.failed) {
        // A zone outage before the first replicated checkpoint exists, or a
        // preemption with no checkpoint coverage: the cell is a lost job.
        t.add_row({s.name, std::to_string(interval), "-", "-", "-", "JOB LOST",
                   "-", "-"});
        report.set_series_counter(series, "job_lost", 1.0);
        continue;
      }
      const double overhead = r.metrics.total_time / base.metrics.total_time;
      t.add_row({s.name, std::to_string(interval),
                 std::to_string(r.metrics.worker_failures),
                 std::to_string(r.metrics.manager_failovers),
                 std::to_string(r.metrics.zone_outages),
                 format_seconds(r.metrics.total_time),
                 "$" + fmt(r.metrics.cost_usd, 4), fmt(overhead, 2) + "x"});
      report.set_series_counter(series, "makespan_s", r.metrics.total_time);
      report.set_series_counter(series, "cost_usd", r.metrics.cost_usd);
      report.set_series_counter(series, "worker_failures", r.metrics.worker_failures);
      report.set_series_counter(series, "manager_failovers", r.metrics.manager_failovers);
      report.set_series_counter(series, "manager_failover_s",
                                r.metrics.manager_failover_time);
      report.set_series_counter(series, "zone_outages", r.metrics.zone_outages);
      report.set_series_counter(series, "checkpoint_replicas",
                                r.metrics.checkpoint_replicas_written);
      report.set_series_counter(series, "overhead_vs_clean", overhead);
      if (interval == 5) bars.emplace_back(s.name, overhead);
    }
  }
  t.print(std::cout);
  std::cout << "\n"
            << ascii_bar_chart(bars, 50, "overhead vs clean at ckpt interval 5", 1.0)
            << "(manager failovers cost lease + takeover regardless of interval;\n"
               " zone outages replay a whole domain and need cross-zone replicas)\n";

  write_csv("ablation_recovery", [&](CsvWriter& w) {
    w.header({"scenario", "checkpoint_interval", "failed", "failures",
              "manager_failovers", "zone_outages", "makespan_s", "cost_usd"});
    for (const Row& r : rows)
      w.field(r.scenario)
          .field(r.interval)
          .field(std::uint64_t{r.failed ? 1u : 0u})
          .field(std::uint64_t{r.failures})
          .field(std::uint64_t{r.failovers})
          .field(std::uint64_t{r.outages})
          .field(r.makespan)
          .field(r.cost)
          .end_row();
  });
  report.write_file(env().results_dir + "/BENCH_ablation_recovery.json");
  return 0;
}
