// Ablation: vertex-centric vs subgraph-centric compute models.
//
// The subgraph model (docs/SUBGRAPH.md) runs a sequential algorithm to local
// convergence inside each partition per superstep, so a traversal pays one
// barrier per *meta-graph* hop instead of one per graph hop, and boundary
// traffic shrinks to the final cut crossings. How much that buys depends
// entirely on the partitioning: hash layouts cut almost every arc and leave
// little internal work to converge; METIS-like layouts hand each partition a
// contiguous patch the local solver crosses in one barrier.
//
// Setup: SSSP and Components, vertex vs subgraph model, hash vs METIS-like
// partitions. Reported per cell: superstep count, cross-partition message
// bytes, modeled time. A second table pits the reactive activity-greedy
// migration planner against the predictive meta-graph planner under the
// subgraph model. Results are asserted bit-identical between models per
// (workload, partitioning) before anything is reported.
#include <cstdlib>
#include <iostream>
#include <memory>
#include <string>
#include <vector>

#include "algos/components.hpp"
#include "algos/sssp.hpp"
#include "harness/bench_report.hpp"
#include "harness/experiment.hpp"
#include "partition/meta_graph.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"
#include "subgraph/components.hpp"
#include "subgraph/sssp.hpp"

using namespace pregel;
using namespace pregel::harness;

namespace {

std::uint64_t remote_bytes(const JobMetrics& m) {
  std::uint64_t bytes = 0;
  for (const auto& ss : m.supersteps)
    for (const auto& w : ss.workers) bytes += w.bytes_sent_remote;
  return bytes;
}

struct Cell {
  std::string workload, model, partitioner;
  std::uint64_t supersteps;
  std::uint64_t bytes;
  Seconds total;
};

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — vertex-centric vs subgraph-centric compute model",
         "per-partition local convergence trades supersteps (one per "
         "meta-graph hop, not one per graph hop) against internal sequential "
         "work; METIS-like layouts amplify the win, hash layouts shrink it");

  const Graph& g = dataset("CP");
  const std::uint32_t partitions = 16, workers = 4;
  const ClusterConfig base = make_cluster(env(), partitions, workers);
  const VertexId source = 0;

  MultilevelPartitioner::Options mo;
  mo.seed = env().seed;
  const auto metis_like = MultilevelPartitioner{mo}.partition(g, partitions);
  const auto hashed = HashPartitioner{}.partition(g, partitions);

  BenchReport report("ablation_model");
  TextTable t({"workload", "model", "partitioner", "supersteps", "remote MiB",
               "modeled time"});
  std::vector<Cell> cells;
  auto record = [&](const std::string& workload, const std::string& model,
                    const std::string& pname, const JobMetrics& m) {
    Cell c{workload, model, pname, m.supersteps.size(), remote_bytes(m),
           m.total_time};
    cells.push_back(c);
    t.add_row({c.workload, c.model, c.partitioner, std::to_string(c.supersteps),
               fmt(static_cast<double>(c.bytes) / (1024.0 * 1024.0), 2),
               format_seconds(c.total)});
    const std::string series = workload + "/" + model + "/" + pname;
    report.add_sample(series, m.total_time);
    report.set_series_counter(series, "supersteps",
                              static_cast<double>(c.supersteps));
    report.set_series_counter(series, "remote_bytes",
                              static_cast<double>(c.bytes));
  };

  for (const auto* pr : {&hashed, &metis_like}) {
    const std::string pname = (pr == &hashed) ? "hash" : "metis-like";

    const auto sssp_v = algos::run_sssp(g, base, *pr, source);
    const auto sssp_s = subgraph::run_sssp_subgraph(g, base, *pr, source);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (sssp_v.values[v].distance != sssp_s.values[v].distance) {
        std::cerr << "MODEL-DIVERGENCE sssp/" << pname << " vertex " << v << "\n";
        return 1;
      }
    }
    record("sssp", "vertex", pname, sssp_v.metrics);
    record("sssp", "subgraph", pname, sssp_s.metrics);

    const auto cc_v = algos::run_components(g, base, *pr);
    const auto cc_s = subgraph::run_components_subgraph(g, base, *pr);
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (cc_v.values[v].label != cc_s.values[v].label) {
        std::cerr << "MODEL-DIVERGENCE components/" << pname << " vertex " << v
                  << "\n";
        return 1;
      }
    }
    record("components", "vertex", pname, cc_v.metrics);
    record("components", "subgraph", pname, cc_s.metrics);
  }
  t.print(std::cout);

  auto cell = [&cells](const std::string& w, const std::string& m,
                       const std::string& p) -> const Cell& {
    for (const auto& c : cells)
      if (c.workload == w && c.model == m && c.partitioner == p) return c;
    return cells.front();
  };
  for (const std::string w : {"sssp", "components"}) {
    const Cell& v = cell(w, "vertex", "metis-like");
    const Cell& s = cell(w, "subgraph", "metis-like");
    std::cout << "\n" << w << " on metis-like: " << v.supersteps << " -> "
              << s.supersteps << " supersteps, "
              << fmt(static_cast<double>(v.bytes) / (1024.0 * 1024.0), 2)
              << " -> " << fmt(static_cast<double>(s.bytes) / (1024.0 * 1024.0), 2)
              << " MiB across the cut\n";
  }

  // Planner face-off under the subgraph model: reactive (move load the
  // barrier after it piled up) vs predictive (move the forecast next wave).
  TextTable pt({"planner", "supersteps", "modeled time", "migrations",
                "moved MiB"});
  for (const bool predictive : {false, true}) {
    ClusterConfig c = base;
    c.migration.planner =
        predictive
            ? std::shared_ptr<MigrationPlanner>(std::make_shared<MetaGraphPlanner>(0.1))
            : std::shared_ptr<MigrationPlanner>(
                  std::make_shared<ActivityGreedyPlanner>(0.1));
    c.migration.period = 1;
    const auto r = subgraph::run_sssp_subgraph(g, c, metis_like, source);
    const std::string name = predictive ? "meta-graph" : "activity-greedy";
    pt.add_row({name, std::to_string(r.metrics.supersteps.size()),
                format_seconds(r.metrics.total_time),
                std::to_string(r.metrics.migrations),
                fmt(static_cast<double>(r.metrics.migrated_bytes) /
                        (1024.0 * 1024.0),
                    1)});
    report.add_sample("planner/" + name, r.metrics.total_time);
    report.set_series_counter("planner/" + name, "migrated_bytes",
                              static_cast<double>(r.metrics.migrated_bytes));
  }
  std::cout << "\n";
  pt.print(std::cout);

  write_csv("ablation_model", [&](CsvWriter& w) {
    w.header({"workload", "model", "partitioner", "supersteps", "remote_bytes",
              "modeled_seconds"});
    for (const auto& c : cells)
      w.field(c.workload).field(c.model).field(c.partitioner)
          .field(c.supersteps).field(c.bytes).field(c.total).end_row();
  });
  report.include_trace_counters();
  report.write_file(env().results_dir + "/BENCH_ablation_model.json");
  return 0;
}
