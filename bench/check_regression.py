#!/usr/bin/env python3
"""Benchmark regression gate for CI's bench-smoke job.

Compares a fresh google-benchmark JSON run of bench_micro_engine against the
checked-in baseline and fails (exit 1) when throughput regresses beyond the
threshold.

Usage:
    python3 bench/check_regression.py CURRENT.json [BASELINE.json]
        [--benchmark BM_EngineMessageRouting] [--threshold 0.25]

The gate reads `items_per_second` from every non-aggregate entry whose name
starts with the gated benchmark (e.g. BM_EngineMessageRouting/2,
BM_EngineMessageRouting/5) and compares per-name medians. A name present in
the baseline but missing from the current run is an error; extra names in the
current run are ignored (new benchmarks don't need a baseline entry yet).

Refreshing the baseline after an intentional perf change (one line):
    cp BENCH_micro_engine.json bench/baselines/micro_engine.json
where BENCH_micro_engine.json is the artifact downloaded from a green
bench-smoke run on main (runner-generated numbers, so the comparison stays
apples-to-apples; local hardware differs from CI hardware).

The default threshold (25%) is wide on purpose: shared CI runners jitter, and
the gate exists to catch algorithmic regressions (a dropped combiner, an
accidental O(V) scan per message), not single-digit noise.
"""

import argparse
import json
import statistics
import sys


def medians_by_name(path, prefix):
    """Map benchmark name -> median items_per_second across repetitions."""
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for entry in data.get("benchmarks", []):
        # Repetition runs carry run_type "iteration"; aggregates (_mean,
        # _median, _stddev) and errored entries are skipped.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        if entry.get("error_occurred"):
            continue
        name = entry.get("run_name", entry["name"])
        if not name.startswith(prefix):
            continue
        if "items_per_second" not in entry:
            continue
        samples.setdefault(name, []).append(float(entry["items_per_second"]))
    return {name: statistics.median(vals) for name, vals in samples.items()}


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="google-benchmark JSON from this run")
    parser.add_argument(
        "baseline",
        nargs="?",
        default="bench/baselines/micro_engine.json",
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument("--benchmark", default="BM_EngineMessageRouting")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed fractional items/s drop (default: %(default)s)",
    )
    args = parser.parse_args()

    current = medians_by_name(args.current, args.benchmark)
    baseline = medians_by_name(args.baseline, args.benchmark)
    if not baseline:
        print(f"error: no '{args.benchmark}' entries in baseline {args.baseline}")
        return 1
    if not current:
        print(f"error: no '{args.benchmark}' entries in {args.current}")
        return 1

    failures = []
    for name, base in sorted(baseline.items()):
        if name not in current:
            print(f"error: baseline entry {name} missing from current run")
            failures.append(name)
            continue
        now = current[name]
        change = (now - base) / base
        status = "OK"
        if change < -args.threshold:
            status = f"REGRESSION (> {args.threshold:.0%} drop)"
            failures.append(name)
        print(
            f"{name}: baseline {base:,.0f} items/s -> current {now:,.0f} items/s "
            f"({change:+.1%}) {status}"
        )

    if failures:
        print(f"\nbench gate FAILED for: {', '.join(failures)}")
        print("If this change is an accepted perf tradeoff, refresh the baseline")
        print("(see the docstring at the top of this script).")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
