#!/usr/bin/env python3
"""Benchmark regression gate for CI's bench-smoke job.

Compares a fresh google-benchmark JSON run of bench_micro_engine against the
checked-in baseline and fails (exit 1) when a gated metric regresses beyond
the threshold.

Usage:
    python3 bench/check_regression.py CURRENT.json [BASELINE.json]
        [--benchmark SPEC ...] [--threshold 0.25]

Each --benchmark SPEC is NAME[:METRIC[:DIRECTION]]:

    NAME       benchmark-name prefix (e.g. BM_EngineMessageRouting)
    METRIC     JSON field or counter to gate (default: items_per_second)
    DIRECTION  'higher' (default) = the metric is good when large, a drop
               beyond the threshold fails; 'lower' = the metric is good when
               small, a *rise* beyond the threshold fails (e.g. latency).

--benchmark is repeatable, so one invocation gates several benchmarks (and
several metrics of the same benchmark). With no --benchmark flags the gate
defaults to BM_EngineMessageRouting:items_per_second, matching the original
single-gate behavior.

For every spec, the gate reads METRIC from each non-aggregate entry whose
name starts with NAME (e.g. BM_EngineMessageRouting/2, .../5) and compares
per-name medians. A name present in the baseline but missing from the current
run is an error; extra names in the current run are ignored (new benchmarks
don't need a baseline entry yet).

Refreshing the baseline after an intentional perf change (one line):
    cp BENCH_micro_engine.json bench/baselines/micro_engine.json
where BENCH_micro_engine.json is the artifact downloaded from a green
bench-smoke run on main (runner-generated numbers, so the comparison stays
apples-to-apples; local hardware differs from CI hardware).

The default threshold (25%) is wide on purpose: shared CI runners jitter, and
the gate exists to catch algorithmic regressions (a dropped combiner, an
accidental O(V) scan per message), not single-digit noise.
"""

import argparse
import json
import statistics
import sys


def parse_spec(spec):
    """'NAME[:METRIC[:DIRECTION]]' -> (name, metric, higher_is_better)."""
    parts = spec.split(":")
    if len(parts) > 3:
        raise SystemExit(f"error: bad --benchmark spec '{spec}'")
    name = parts[0]
    metric = parts[1] if len(parts) > 1 and parts[1] else "items_per_second"
    direction = parts[2] if len(parts) > 2 and parts[2] else "higher"
    if direction not in ("higher", "lower"):
        raise SystemExit(
            f"error: direction in '{spec}' must be 'higher' or 'lower'"
        )
    return name, metric, direction == "higher"


def medians_by_name(path, prefix, metric):
    """Map benchmark name -> median of `metric` across repetitions."""
    with open(path) as f:
        data = json.load(f)
    samples = {}
    for entry in data.get("benchmarks", []):
        # Repetition runs carry run_type "iteration"; aggregates (_mean,
        # _median, _stddev) and errored entries are skipped.
        if entry.get("run_type", "iteration") != "iteration":
            continue
        if entry.get("error_occurred"):
            continue
        name = entry.get("run_name", entry["name"])
        if not name.startswith(prefix):
            continue
        if metric not in entry:
            continue
        samples.setdefault(name, []).append(float(entry[metric]))
    return {name: statistics.median(vals) for name, vals in samples.items()}


def gate_one(args, name, metric, higher_is_better):
    """Gate one benchmark/metric pair; returns the list of failing names."""
    current = medians_by_name(args.current, name, metric)
    baseline = medians_by_name(args.baseline, name, metric)
    if not baseline:
        print(f"error: no '{name}' entries with '{metric}' in {args.baseline}")
        return [f"{name}:{metric}"]
    if not current:
        print(f"error: no '{name}' entries with '{metric}' in {args.current}")
        return [f"{name}:{metric}"]

    failures = []
    for bench, base in sorted(baseline.items()):
        label = f"{bench} [{metric}]"
        if bench not in current:
            print(f"error: baseline entry {bench} missing from current run")
            failures.append(label)
            continue
        now = current[bench]
        change = (now - base) / base if base != 0 else 0.0
        # 'higher': a drop beyond the threshold fails. 'lower': a rise does.
        bad = change < -args.threshold if higher_is_better else change > args.threshold
        status = "OK"
        if bad:
            worse = "drop" if higher_is_better else "rise"
            status = f"REGRESSION (> {args.threshold:.0%} {worse})"
            failures.append(label)
        print(
            f"{label}: baseline {base:,.2f} -> current {now:,.2f} "
            f"({change:+.1%}) {status}"
        )
    return failures


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", help="google-benchmark JSON from this run")
    parser.add_argument(
        "baseline",
        nargs="?",
        default="bench/baselines/micro_engine.json",
        help="checked-in baseline JSON (default: %(default)s)",
    )
    parser.add_argument(
        "--benchmark",
        action="append",
        default=None,
        help="NAME[:METRIC[:DIRECTION]], repeatable "
        "(default: BM_EngineMessageRouting:items_per_second:higher)",
    )
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.25,
        help="max allowed fractional change for the worse (default: %(default)s)",
    )
    args = parser.parse_args()

    specs = args.benchmark or ["BM_EngineMessageRouting"]
    failures = []
    for spec in specs:
        name, metric, higher = parse_spec(spec)
        failures.extend(gate_one(args, name, metric, higher))

    if failures:
        print(f"\nbench gate FAILED for: {', '.join(failures)}")
        print("If this change is an accepted perf tradeoff, refresh the baseline")
        print("(see the docstring at the top of this script).")
        return 1
    print("\nbench gate passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
