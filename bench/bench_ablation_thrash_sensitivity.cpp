// Ablation: sensitivity of the Figure 4 result to the virtual-memory thrash
// model. The paper's 3.5x heuristic speedup rests on the claim that paging
// with random access "may be even worse than disk-based buffering"; this
// sweep varies the modeled thrash slope and shows how the baseline-vs-
// adaptive gap responds — at slope 0 (free paging) swaths only cost extra
// barriers, while realistic slopes reproduce the paper's regime.
#include <iostream>

#include "algos/bc.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — thrash-penalty sensitivity of the swath speedup",
         "the swath win is exactly the avoided paging: no penalty, no win");

  const Graph& g = dataset("WG");
  const auto parts = HashPartitioner{}.partition(g, 8);
  const std::uint32_t total = env().quick ? 16 : 40;
  const auto roots = pick_roots(g, total, env().seed + 43);

  TextTable t({"thrash slope", "baseline time", "adaptive time", "adaptive speedup"});
  struct Row {
    double slope, base, adaptive, speedup;
  };
  std::vector<Row> rows;

  for (double slope : {0.0, 4.0, 8.0, 12.0, 24.0}) {
    ClusterConfig cluster = make_cluster(env(), 8, 8);
    cluster.cost.vm_thrash_slope = slope;
    // Keep every probe completable: disable the restart fault for the sweep.
    cluster.cost.vm_restart_threshold = 1e9;
    const Bytes target = memory_target(cluster.vm);

    JobOptions base_opts;
    base_opts.roots = roots;
    base_opts.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(total),
                                        std::make_shared<SequentialInitiation>(), target);
    Engine<BcProgram> be(g, {}, cluster, parts);
    const auto base = be.run(base_opts);

    JobOptions ad_opts;
    ad_opts.roots = roots;
    ad_opts.swath = SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(4),
                                      std::make_shared<SequentialInitiation>(), target);
    Engine<BcProgram> ae(g, {}, cluster, parts);
    const auto adaptive = ae.run(ad_opts);

    const double speedup = base.metrics.total_time / adaptive.metrics.total_time;
    rows.push_back({slope, base.metrics.total_time, adaptive.metrics.total_time, speedup});
    t.add_row({fmt(slope, 0), format_seconds(base.metrics.total_time),
               format_seconds(adaptive.metrics.total_time), fmt(speedup, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nexpected: speedup < 1 at slope 0 (swaths only add barriers), "
               "rising with the paging penalty\n";

  write_csv("ablation_thrash_sensitivity", [&](CsvWriter& w) {
    w.header({"thrash_slope", "baseline_seconds", "adaptive_seconds", "speedup"});
    for (const auto& r : rows)
      w.field(r.slope).field(r.base).field(r.adaptive).field(r.speedup).end_row();
  });
  return 0;
}
