// Ablation: multi-tenancy noise under BSP barriers.
//
// The paper's motivation (§I) names two cloud-specific costs it never
// quantifies: "multi-tenancy impacts performance consistency" and the
// inability to control VM placement. Under BSP they are worse than they
// look: a superstep ends when the SLOWEST worker finishes, so the expected
// superstep span is the expected MAXIMUM of W noisy draws — straggler
// amplification that grows with the worker count even though each VM's
// noise distribution is identical.
//
// Sweep: noise sigma x worker count, PageRank on the WG analog; report the
// slowdown versus the noise-free run and the effective utilization.
#include <iostream>

#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — multi-tenancy noise amplification under BSP barriers",
         "identical per-VM noise, but span = max over workers: slowdown "
         "grows with both sigma and the worker count");

  const Graph& g = dataset("WG");
  const int iters = env().quick ? 5 : 15;

  TextTable t({"workers", "sigma", "modeled time", "slowdown vs quiet", "utilization %"});
  struct Row {
    std::uint32_t workers;
    double sigma, slowdown, utilization;
  };
  std::vector<Row> rows;

  for (std::uint32_t w : {2u, 4u, 8u}) {
    const auto parts = HashPartitioner{}.partition(g, w);
    double quiet = 0.0;
    for (double sigma : {0.0, 0.1, 0.2, 0.4}) {
      ClusterConfig c = make_cluster(env(), w, w);
      c.tenancy_sigma = sigma;
      c.noise_seed = env().seed + 5;
      const auto r = run_pagerank(g, c, parts, iters);
      if (sigma == 0.0) quiet = r.metrics.total_time;
      rows.push_back({w, sigma, r.metrics.total_time / quiet, r.metrics.utilization()});
      t.add_row({std::to_string(w), fmt(sigma, 1), format_seconds(r.metrics.total_time),
                 fmt(r.metrics.total_time / quiet, 2) + "x",
                 fmt(r.metrics.utilization() * 100, 1)});
    }
  }
  t.print(std::cout);

  std::vector<std::pair<std::string, double>> bars;
  for (const auto& r : rows)
    if (r.sigma == 0.4)
      bars.emplace_back(std::to_string(r.workers) + " workers @ sigma 0.4", r.slowdown);
  std::cout << "\n" << ascii_bar_chart(bars, 50, "straggler amplification (slowdown at sigma=0.4)",
                                        1.0);
  std::cout << "(each VM draws the SAME noise distribution; only the max-of-W "
               "barrier differs)\n";

  write_csv("ablation_tenancy_noise", [&](CsvWriter& w) {
    w.header({"workers", "sigma", "slowdown_vs_quiet", "utilization"});
    for (const auto& r : rows)
      w.field(std::uint64_t{r.workers}).field(r.sigma).field(r.slowdown)
          .field(r.utilization).end_row();
  });
  return 0;
}
