// Ablation: the full Stanton–Kliot streaming-partitioner family (the paper
// uses only the best heuristic, linear-weighted deterministic greedy) —
// edge-cut quality and its downstream effect on BSP PageRank time.
#include <iostream>

#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/quality.hpp"
#include "partition/streaming.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — streaming partitioner heuristic family (Stanton-Kliot)",
         "the paper picks LDG as 'the best heuristic'; the family spans "
         "random (worst) to LDG/greedy (best)");

  const Graph& g = dataset("WG");
  ClusterConfig cluster = make_cluster(env(), 8, 8);
  const int iters = env().quick ? 5 : 15;

  const std::vector<StreamHeuristic> family{
      StreamHeuristic::kRandom,   StreamHeuristic::kChunking,
      StreamHeuristic::kBalanced, StreamHeuristic::kGreedy,
      StreamHeuristic::kLinearGreedy, StreamHeuristic::kExpGreedy};

  TextTable t({"heuristic", "remote edges %", "vertex balance", "PageRank time",
               "rel to random"});
  std::vector<std::pair<std::string, double>> bars;
  double random_time = 0.0;
  struct Row {
    std::string name;
    double remote, balance, time;
  };
  std::vector<Row> rows;

  for (auto h : family) {
    StreamingPartitioner sp(h, StreamOrder::kNatural, 1.0, env().seed);
    const auto parts = sp.partition(g, 8);
    const auto q = evaluate_partition(g, parts);
    const auto r = run_pagerank(g, cluster, parts, iters);
    if (h == StreamHeuristic::kRandom) random_time = r.metrics.total_time;
    rows.push_back(
        {to_string(h), q.remote_edge_fraction, q.vertex_balance, r.metrics.total_time});
    t.add_row({to_string(h), fmt(q.remote_edge_fraction * 100, 1), fmt(q.vertex_balance, 3),
               format_seconds(r.metrics.total_time),
               fmt(r.metrics.total_time / random_time, 2)});
    bars.emplace_back(to_string(h), q.remote_edge_fraction * 100);
  }
  t.print(std::cout);
  std::cout << "\n" << ascii_bar_chart(bars, 50, "remote edge % (lower=better)");

  write_csv("ablation_streaming_family", [&](CsvWriter& w) {
    w.header({"heuristic", "remote_edge_fraction", "vertex_balance", "pagerank_seconds"});
    for (const auto& r : rows)
      w.field(r.name).field(r.remote).field(r.balance).field(r.time).end_row();
  });
  return 0;
}
