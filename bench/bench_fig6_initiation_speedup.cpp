// Figure 6: speedup of the swath-initiation heuristics versus strictly
// sequential (non-overlapping) swath execution, BC on 8 workers.
//
// Paper: overlapping the tail of one swath with the ramp of the next flattens
// resource usage and removes supersteps. Static-N's benefit depends on N vs
// the graph's average shortest path (N=6 hand-picked best for WG, N=4 for
// the larger CP); the dynamic (message-peak) heuristic reaches up to 24%
// speedup on WG with no tuning.
#include <iostream>
#include <memory>

#include "algos/bc.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct Run {
  std::string label;
  Seconds time = 0.0;
  std::uint64_t supersteps = 0;
  double speedup = 1.0;
};

Run run_policy(const std::string& label, const Graph& g, const ClusterConfig& cluster,
               const Partitioning& parts, const std::vector<VertexId>& roots,
               std::uint32_t swath_size, std::shared_ptr<InitiationPolicy> initiation) {
  JobOptions opts;
  opts.roots = roots;
  opts.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(swath_size),
                                 std::move(initiation), memory_target(cluster.vm));
  opts.fail_on_vm_restart = false;
  Engine<BcProgram> engine(g, {}, cluster, parts);
  const auto r = engine.run(opts);
  return {label, r.metrics.total_time, r.metrics.total_supersteps(), 1.0};
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figure 6 — swath-initiation heuristic speedup vs sequential (BC, 8 workers)",
         "dynamic up to 24% on WG; Static-N graph-dependent (N=4 best for CP)");

  std::vector<std::pair<std::string, Run>> all;

  for (const std::string name : {"WG", "CP"}) {
    const Graph& g = dataset(name);
    const auto parts = HashPartitioner{}.partition(g, 8);
    ClusterConfig cluster = make_cluster(env(), 8, 8);

    // Fixed swath size ~half the memory-fitting size, so two overlapping
    // swaths stay within the target.
    const std::uint32_t swath_size = env().quick ? 4 : 10;
    const std::size_t total_roots = env().quick ? 16 : 50;
    const auto roots = pick_roots(g, total_roots, env().seed + 29);
    std::cout << name << ": " << total_roots << " roots in swaths of " << swath_size
              << "\n";

    std::vector<Run> rs;
    rs.push_back(run_policy("sequential", g, cluster, parts, roots, swath_size,
                            std::make_shared<SequentialInitiation>()));
    for (std::uint64_t n : {2u, 4u, 6u})
      rs.push_back(run_policy("static-" + std::to_string(n), g, cluster, parts, roots,
                              swath_size, std::make_shared<StaticNInitiation>(n)));
    rs.push_back(run_policy("dynamic", g, cluster, parts, roots, swath_size,
                            std::make_shared<DynamicPeakInitiation>()));
    // The paper's §IV also names memory utilization and traffic decay as
    // candidate trigger signals; we run those variants too.
    rs.push_back(run_policy("mem-headroom", g, cluster, parts, roots, swath_size,
                            std::make_shared<MemoryHeadroomInitiation>()));
    rs.push_back(run_policy("traffic-decay", g, cluster, parts, roots, swath_size,
                            std::make_shared<TrafficDecayInitiation>()));

    for (auto& r : rs) {
      r.speedup = rs.front().time / r.time;
      all.emplace_back(name, r);
    }
  }

  TextTable t({"graph", "initiation", "modeled time", "supersteps", "speedup vs sequential"});
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [g, r] : all) {
    t.add_row({g, r.label, format_seconds(r.time), std::to_string(r.supersteps),
               fmt(r.speedup, 3) + "x"});
    bars.emplace_back(g + " " + r.label, r.speedup);
  }
  t.print(std::cout);
  std::cout << "\n" << ascii_bar_chart(bars, 50, "speedup vs sequential", 1.0);

  write_csv("fig6_initiation_speedup", [&](CsvWriter& w) {
    w.header({"graph", "initiation", "modeled_seconds", "supersteps", "speedup"});
    for (const auto& [g, r] : all)
      w.field(g).field(r.label).field(r.time).field(r.supersteps).field(r.speedup).end_row();
  });
  return 0;
}
