// Ablation: Pregel combiners — a feature the paper lists as an extension and
// deliberately omits from its evaluation ("the impact of these advanced
// features is algorithm dependent with some algorithms unable to exploit
// them fully"). We implement them and quantify that statement:
//
//   APSP (min-distance combiner): redundant frontier candidates merge, so
//   message volume and buffered memory drop.
//   PageRank (sum combiner): each (source-worker, target-vertex) pair has
//   few duplicate messages, so the benefit is small.
//   BC: no combiner is applicable — every forward message carries a distinct
//   sender identity the backward phase needs (the "unable to exploit" case).
#include <iostream>

#include "algos/apsp.hpp"
#include "algos/components.hpp"
#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — combiners (the paper's omitted Pregel extension)",
         "benefit is algorithm dependent: APSP gains, PageRank barely, BC "
         "cannot use one");

  const Graph& g = dataset("WG");
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig cluster = make_cluster(env(), 8, 8);
  const auto roots = pick_roots(g, env().quick ? 4 : 10, env().seed + 41);

  TextTable t({"app", "combiner", "messages", "modeled time", "peak worker mem"});
  struct Row {
    std::string app;
    bool combine;
    std::uint64_t msgs;
    Seconds time;
    Bytes mem;
  };
  std::vector<Row> rows;

  auto add = [&](const std::string& app, bool combine, const JobMetrics& m) {
    rows.push_back({app, combine, m.total_messages(), m.total_time, m.peak_worker_memory()});
    t.add_row({app, combine ? "on" : "off", format_count(m.total_messages()),
               format_seconds(m.total_time), format_bytes(m.peak_worker_memory())});
  };

  for (bool combine : {false, true}) {
    {
      Engine<ApspProgram> e(g, {}, cluster, parts);
      JobOptions o;
      o.roots = roots;
      o.use_combiner = combine;
      add("APSP", combine, e.run(o).metrics);
    }
    {
      Engine<PageRankProgram> e(g, {env().quick ? 5 : 15, 0.85}, cluster, parts);
      JobOptions o;
      o.start_all_vertices = true;
      o.use_combiner = combine;
      add("PageRank", combine, e.run(o).metrics);
    }
    {
      Engine<ComponentsProgram> e(g, {}, cluster, parts);
      JobOptions o;
      o.start_all_vertices = true;
      o.use_combiner = combine;
      add("Components", combine, e.run(o).metrics);
    }
  }
  t.print(std::cout);

  auto ratio = [&rows](const std::string& app) {
    std::uint64_t off = 0, on = 0;
    for (const auto& r : rows)
      (r.combine ? on : off) = r.app == app ? r.msgs : (r.combine ? on : off);
    return off > 0 ? static_cast<double>(on) / static_cast<double>(off) : 1.0;
  };
  std::cout << "\nmessage ratio with combiner (lower = more combining): APSP "
            << fmt(ratio("APSP"), 2) << ", PageRank " << fmt(ratio("PageRank"), 2)
            << ", Components " << fmt(ratio("Components"), 2)
            << "; BC: not combinable (messages carry sender identity)\n";

  write_csv("ablation_combiners", [&](CsvWriter& w) {
    w.header({"app", "combiner", "messages", "modeled_seconds", "peak_worker_memory"});
    for (const auto& r : rows)
      w.field(r.app).field(r.combine ? "on" : "off").field(r.msgs).field(r.time).field(r.mem)
          .end_row();
  });
  return 0;
}
