// Figures 15 and 16: elastic cloud scaling of BSP workers (Section VIII).
//
// Methodology follows the paper: swath heuristics are off (fixed swath size
// and initiation interval); BC runs on 4 and on 8 statically provisioned
// workers over the same 8 graph partitions; the worker count does not change
// the superstep structure, so per-superstep times align.
//
//   Fig 15: per-superstep speedup of 8w vs 4w, plotted against the number of
//   active vertices. Paper: occasional SUPERLINEAR (>2x) spikes that
//   correlate with active-vertex peaks (relieved memory pressure), and
//   sub-unity speedup in the troughs (8-worker barriers cost more).
//
//   Fig 16: projected total time and pro-rata cost, normalized to the fixed
//   4-worker run, for: fixed-4, fixed-8, dynamic scaling at a 50%
//   active-vertex threshold, and oracle scaling (per-superstep min). Paper:
//   dynamic ~ oracle ~ fixed-8 performance at a cost comparable to or lower
//   than fixed-4. We add what the paper could only extrapolate: an actual
//   simulated elastic run with the engine switching worker counts at
//   barriers.
#include <algorithm>
#include <iostream>

#include "algos/bc.hpp"
#include "cloud/elasticity.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct FixedRun {
  std::vector<Seconds> spans;
  std::vector<std::uint64_t> active;
  Seconds total = 0.0;
  Seconds setup = 0.0;
};

FixedRun run_fixed(const Graph& g, const ClusterConfig& cluster, const Partitioning& parts,
                   const std::vector<VertexId>& roots, const SwathPolicy& swath) {
  JobOptions opts;
  opts.roots = roots;
  opts.swath = swath;
  opts.fail_on_vm_restart = false;
  Engine<BcProgram> engine(g, {}, cluster, parts);
  const auto r = engine.run(opts);
  FixedRun out;
  out.total = r.metrics.total_time;
  out.setup = r.metrics.setup_time;
  for (const auto& sm : r.metrics.supersteps) {
    out.spans.push_back(sm.span);
    out.active.push_back(sm.active_vertices);
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figures 15-16 — elastic scaling of BSP workers (BC, fixed swaths)",
         "superlinear per-superstep speedup at active-vertex peaks; dynamic "
         "50%-threshold scaling ~ oracle ~ 8-worker speed at ~4-worker cost");

  const std::size_t total_roots = env().quick ? 12 : 30;

  for (const std::string gname : {"WG", "CP"}) {
    const Graph& g = dataset(gname);
    // Fixed swath sizes chosen per graph (as the paper hand-picked ~10) so
    // that 4 workers — hosting two partitions each — cross the thrash
    // threshold at the active peak without hitting the restart ceiling,
    // while 8 workers stay inside RAM; that memory relief is the source of
    // the superlinear speedup.
    const std::uint32_t swath_size = env().quick ? 4 : (gname == "WG" ? 20 : 10);
    const auto parts = HashPartitioner{}.partition(g, 8);
    const auto roots = pick_roots(g, total_roots, env().seed + 37);
    ClusterConfig c8 = make_cluster(env(), 8, 8);
    ClusterConfig c4 = make_cluster(env(), 8, 4);
    const auto swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(swath_size),
                                         std::make_shared<StaticNInitiation>(6),
                                         memory_target(c8.vm));

    std::cout << gname << ": fixed 4-worker and 8-worker runs ...\n";
    const auto r4 = run_fixed(g, c4, parts, roots, swath);
    const auto r8 = run_fixed(g, c8, parts, roots, swath);
    const std::size_t steps = std::min(r4.spans.size(), r8.spans.size());

    // ---- Figure 15 -----------------------------------------------------------
    std::vector<double> speedup(steps), active_frac(steps);
    for (std::size_t s = 0; s < steps; ++s) {
      speedup[s] = r8.spans[s] > 0 ? r4.spans[s] / r8.spans[s] : 1.0;
      active_frac[s] =
          static_cast<double>(r4.active[s]) / static_cast<double>(g.num_vertices());
    }
    std::cout << "\n--- Figure 15 (" << gname << "): speedup of 8w vs 4w per superstep ---\n";
    std::cout << ascii_line_chart({{"speedup 8w/4w", speedup}}, 70, 10, "");
    std::cout << ascii_line_chart({{"active vertex fraction", active_frac}}, 70, 8, "");

    // Correlation between active-vertex peaks and superlinear speedup.
    double best_speedup = 0, best_active = 0;
    std::size_t superlinear = 0, subunit = 0;
    for (std::size_t s = 0; s < steps; ++s) {
      if (speedup[s] > best_speedup) {
        best_speedup = speedup[s];
        best_active = active_frac[s];
      }
      if (speedup[s] > 2.0) ++superlinear;
      if (speedup[s] < 1.0) ++subunit;
    }
    std::cout << "max speedup " << fmt(best_speedup, 2) << "x at active fraction "
              << fmt(best_active * 100, 1) << "%; superlinear supersteps: " << superlinear
              << "; speed-down supersteps: " << subunit << "\n";

    // ---- Figure 16 -----------------------------------------------------------
    // Projections from the two fixed runs (the paper's method).
    const double vm_hour = c8.vm.price_per_hour;
    auto project = [&](auto pick_workers) {
      Seconds time = r4.setup;
      double cost = 0.0;
      for (std::size_t s = 0; s < steps; ++s) {
        const std::uint32_t w = pick_workers(s);
        const Seconds span = w == 8 ? r8.spans[s] : r4.spans[s];
        time += span;
        cost += span * w / 3600.0 * vm_hour;
      }
      cost += r4.setup * 4 / 3600.0 * vm_hour;
      return std::pair{time, cost};
    };
    const auto [t_fix4, c_fix4] = project([](std::size_t) { return 4u; });
    const auto [t_fix8, c_fix8] = project([](std::size_t) { return 8u; });
    const auto [t_dyn, c_dyn] = project([&](std::size_t s) {
      return active_frac[s] >= 0.5 ? 8u : 4u;  // the paper's 50% threshold
    });
    const auto [t_orc, c_orc] = project(
        [&](std::size_t s) { return r8.spans[s] < r4.spans[s] ? 8u : 4u; });

    // Beyond the paper: actually run the engine with elastic scaling on.
    ClusterConfig celastic = c4;
    celastic.scaling = std::make_shared<cloud::ActiveVertexScaling>(4, 8, 0.5);
    const auto relastic = run_fixed(g, celastic, parts, roots, swath);

    std::cout << "\n--- Figure 16 (" << gname
              << "): projected time & cost normalized to fixed 4 workers ---\n";
    TextTable t({"strategy", "norm. time", "norm. cost", "modeled time"});
    auto row = [&](const std::string& label, Seconds time, double cost) {
      t.add_row({label, fmt(time / t_fix4, 2), fmt(cost / c_fix4, 2), format_seconds(time)});
    };
    row("fixed 4 workers", t_fix4, c_fix4);
    row("fixed 8 workers", t_fix8, c_fix8);
    row("dynamic (50% active)", t_dyn, c_dyn);
    row("oracle", t_orc, c_orc);
    t.add_row({"simulated elastic run", fmt(relastic.total / t_fix4, 2), "-",
               format_seconds(relastic.total)});
    t.print(std::cout);

    write_csv("fig15_elastic_speedup_" + gname, [&](CsvWriter& w) {
      w.header({"superstep", "span4_s", "span8_s", "speedup_8v4", "active_fraction"});
      for (std::size_t s = 0; s < steps; ++s)
        w.field(std::uint64_t{s}).field(r4.spans[s]).field(r8.spans[s]).field(speedup[s])
            .field(active_frac[s]).end_row();
    });
    write_csv("fig16_elastic_projection_" + gname, [&](CsvWriter& w) {
      w.header({"strategy", "time_s", "cost_usd", "norm_time", "norm_cost"});
      auto emit = [&](const std::string& label, Seconds time, double cost) {
        w.field(label).field(time).field(cost).field(time / t_fix4).field(cost / c_fix4)
            .end_row();
      };
      emit("fixed4", t_fix4, c_fix4);
      emit("fixed8", t_fix8, c_fix8);
      emit("dynamic50", t_dyn, c_dyn);
      emit("oracle", t_orc, c_orc);
    });
  }
  return 0;
}
