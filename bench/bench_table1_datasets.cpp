// Table 1: evaluation datasets and their properties.
//
// Paper values (SNAP datasets):
//   SlashDot0922 (SD)  82,168 vertices     948,464 edges   4.7 eff. diameter
//   web-Google   (WG)  875,713 vertices  5,105,039 edges   8.1
//   cit-Patents  (CP)  3,774,768 verts  16,518,948 edges   9.4
//   LiveJournal  (LJ)  4,847,571 verts  68,993,773 edges   6.5
//
// We regenerate the table for the synthetic analogs at 1/scale_div size and
// verify the structural properties that matter to the evaluation: average
// degree, small 90% effective diameter with the same dataset ordering
// (SD < LJ < WG < CP), a single giant component, and (for the social
// analogs) heavy-tailed degrees.
#include <iostream>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "util/csv.hpp"

using namespace pregel;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Table 1 — evaluation datasets",
         "four SNAP small-world graphs; 90% effective diameters 4.7-9.4");

  TextTable table({"dataset", "paper |V|", "paper |E|", "paper 90%d", "analog |V|",
                   "analog |E|", "analog 90%d", "avg deg", "max deg", "components"});

  struct Row {
    std::string name;
    VertexId n;
    EdgeIndex m;
    double diam;
  };
  std::vector<Row> rows;

  for (const auto& spec : paper_datasets()) {
    const Graph& g = dataset(spec.short_name);
    const std::size_t samples = env().quick ? 8 : 24;
    const auto d = effective_diameter(g, samples, env().seed + 7);
    const auto deg = degree_stats(g);
    const auto cc = connected_components(g);
    table.add_row({spec.short_name + " (" + spec.full_name + ")",
                   format_count(spec.paper_vertices), format_count(spec.paper_edges),
                   fmt(spec.paper_eff_diameter, 1), format_count(g.num_vertices()),
                   format_count(g.num_edges()), fmt(d.effective_90, 1),
                   fmt(deg.stats.mean(), 1), fmt(deg.stats.max(), 0),
                   std::to_string(cc.count)});
    rows.push_back({spec.short_name, g.num_vertices(), g.num_edges(), d.effective_90});
  }

  table.print(std::cout);

  std::cout << "\nordering check (paper: SD < LJ < WG < CP): ";
  const bool ordered = rows[0].diam < rows[3].diam && rows[3].diam < rows[1].diam &&
                       rows[1].diam < rows[2].diam;
  std::cout << (ordered ? "HOLDS" : "VIOLATED") << "\n";

  write_csv("table1_datasets", [&](CsvWriter& w) {
    w.header({"dataset", "analog_vertices", "analog_edges", "analog_eff_diameter_90"});
    for (const auto& r : rows)
      w.field(r.name).field(std::uint64_t{r.n}).field(r.m).field(r.diam).end_row();
  });
  return 0;
}
