// Figure 7: message transfers over time for the swath-initiation heuristics,
// BC on the WG graph (flatter is better).
//
// Paper: sequential initiation shows repeated peak-and-drain-to-zero cycles
// (poor utilization); Static-6 (hand-picked optimal) sustains a high message
// rate; dynamic is slightly more conservative but automated.
#include <iostream>
#include <memory>

#include "algos/bc.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct Trace {
  std::string label;
  std::vector<double> msgs;  ///< per superstep
  Seconds total = 0.0;
};

Trace run_trace(const std::string& label, const Graph& g, const ClusterConfig& cluster,
                const Partitioning& parts, const std::vector<VertexId>& roots,
                std::uint32_t swath_size, std::shared_ptr<InitiationPolicy> initiation) {
  JobOptions opts;
  opts.roots = roots;
  opts.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(swath_size),
                                 std::move(initiation), memory_target(cluster.vm));
  opts.fail_on_vm_restart = false;
  Engine<BcProgram> engine(g, {}, cluster, parts);
  const auto r = engine.run(opts);
  Trace tr;
  tr.label = label;
  tr.total = r.metrics.total_time;
  for (const auto& sm : r.metrics.supersteps)
    tr.msgs.push_back(static_cast<double>(sm.messages_sent_total()));
  return tr;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figure 7 — message transfers over supersteps per initiation heuristic (BC, WG)",
         "sequential: peaks falling to zero; static-6: sustained high rate; "
         "dynamic: slightly conservative but automated. Flatter is better.");

  const Graph& g = dataset("WG");
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig cluster = make_cluster(env(), 8, 8);
  const std::uint32_t swath_size = env().quick ? 4 : 10;
  const std::size_t total_roots = env().quick ? 16 : 50;
  const auto roots = pick_roots(g, total_roots, env().seed + 29);

  std::vector<Trace> traces;
  traces.push_back(run_trace("sequential", g, cluster, parts, roots, swath_size,
                             std::make_shared<SequentialInitiation>()));
  traces.push_back(run_trace("static-6", g, cluster, parts, roots, swath_size,
                             std::make_shared<StaticNInitiation>(6)));
  traces.push_back(run_trace("dynamic", g, cluster, parts, roots, swath_size,
                             std::make_shared<DynamicPeakInitiation>()));

  std::vector<Series> series;
  for (const auto& tr : traces) series.push_back({tr.label, tr.msgs});
  std::cout << ascii_line_chart(series, 70, 16, "messages sent per superstep");

  TextTable t({"initiation", "supersteps", "total time", "msg rate variability (cv)",
               "zero-traffic supersteps"});
  for (const auto& tr : traces) {
    RunningStats s;
    int zeros = 0;
    for (double m : tr.msgs) {
      s.add(m);
      zeros += m == 0.0 ? 1 : 0;
    }
    const double cv = s.mean() > 0 ? s.stddev() / s.mean() : 0.0;
    t.add_row({tr.label, std::to_string(tr.msgs.size()), format_seconds(tr.total),
               fmt(cv, 2), std::to_string(zeros)});
  }
  t.print(std::cout);
  std::cout << "\nflatness = lower coefficient of variation; overlap removes the "
               "drain-to-zero valleys of sequential execution\n";

  write_csv("fig7_initiation_message_trace", [&](CsvWriter& w) {
    w.header({"initiation", "superstep", "messages_sent"});
    for (const auto& tr : traces)
      for (std::size_t i = 0; i < tr.msgs.size(); ++i)
        w.field(tr.label).field(std::uint64_t{i}).field(tr.msgs[i]).end_row();
  });
  return 0;
}
