// Ablation: checkpoint/recovery cost-benefit — the Pregel fault-tolerance
// feature the paper omits. Sweep the checkpoint interval under a fixed
// per-VM failure rate. Sparse checkpoints compound: every failure replays a
// longer tail, and replayed supersteps are themselves exposed to failures,
// so both the failure count and the total overhead grow with the interval —
// while checkpointing too often shows up as pure upload overhead in the
// failure-free column.
#include <iostream>

#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — checkpoint interval vs failure recovery cost",
         "the omitted Pregel extension, quantified: frequent checkpoints "
         "bound failure exposure (fewer replays -> fewer re-failures); "
         "sparse ones compound; none at all loses the job");

  const Graph& g = dataset("SD");  // small analog: many supersteps are cheap
  const auto parts = HashPartitioner{}.partition(g, 8);
  const int iterations = env().quick ? 20 : 60;
  const double failure_rate = 0.008;  // per VM per superstep (~6% per superstep across 8 VMs)

  // Failure-free reference.
  ClusterConfig clean = make_cluster(env(), 8, 8);
  Engine<PageRankProgram> eclean(g, {iterations, 0.85}, clean, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto base = eclean.run(o);
  std::cout << "failure-free run: " << format_seconds(base.metrics.total_time) << ", "
            << base.metrics.total_supersteps() << " supersteps\n\n";

  TextTable t({"checkpoint every", "failures", "replayed supersteps", "ckpt time",
               "recovery time", "total time", "overhead vs clean"});
  struct Row {
    std::uint64_t interval;
    double overhead;
    std::uint32_t failures;
  };
  std::vector<Row> rows;
  std::vector<std::pair<std::string, double>> bars;

  for (std::uint64_t interval : {2ull, 5ull, 10ull, 20ull, 40ull}) {
    ClusterConfig c = make_cluster(env(), 8, 8);
    c.checkpoint_interval = interval;
    c.failure_rate = failure_rate;
    c.failure_seed = env().seed + 3;
    // Like the RAM envelope, the recovery constants are scaled to analog
    // size: a job whose supersteps take tens of milliseconds would be
    // swamped by production-scale 30s/90s detection/reacquisition values.
    c.failure_detection_time = 1.0;
    c.vm_reacquisition_time = 2.0;
    Engine<PageRankProgram> e(g, {iterations, 0.85}, c, parts);
    const auto r = e.run(o);
    if (r.failed) {
      t.add_row({std::to_string(interval), "-", "-", "-", "-", "JOB LOST", "-"});
      continue;
    }
    const double overhead = r.metrics.total_time / base.metrics.total_time;
    rows.push_back({interval, overhead, r.metrics.worker_failures});
    t.add_row({std::to_string(interval), std::to_string(r.metrics.worker_failures),
               std::to_string(r.metrics.replayed_supersteps),
               format_seconds(r.metrics.checkpoint_time),
               format_seconds(r.metrics.recovery_time),
               format_seconds(r.metrics.total_time), fmt(overhead, 2) + "x"});
    bars.emplace_back("every " + std::to_string(interval), overhead);
  }
  t.print(std::cout);
  std::cout << "\n" << ascii_bar_chart(bars, 50, "total-time overhead vs failure-free run", 1.0);
  std::cout << "(without checkpointing, any failure loses the whole job)\n\n";

  // Part 2: recovery-mode ablation. Same seeds at each failure rate, so both
  // modes see the identical failure sequence: full rollback re-executes every
  // partition from the checkpoint, confined recovery recomputes only the lost
  // VM's partitions while healthy workers re-deliver logged outbox bytes.
  banner("Recovery mode — full rollback vs confined recovery",
         "confined recovery (Pregel's proposed extension) replays only the "
         "failed worker's partitions; the rest of the cluster re-delivers "
         "logged messages instead of recomputing");

  TextTable t2({"failure rate", "mode", "failures", "replayed supersteps",
                "recovery time", "replay time", "total time", "overhead vs clean"});
  struct ModeRow {
    double rate;
    std::string mode;
    std::uint32_t failures;
    double recovery, replay, total, overhead;
  };
  std::vector<ModeRow> mode_rows;
  std::vector<std::pair<std::string, double>> mode_bars;

  for (double rate : {0.004, 0.008, 0.016}) {
    for (RecoveryMode mode : {RecoveryMode::kFullRollback, RecoveryMode::kConfined}) {
      ClusterConfig c = make_cluster(env(), 8, 8);
      c.checkpoint_interval = 5;
      c.failure_rate = rate;
      c.failure_seed = env().seed + 3;
      c.failure_detection_time = 1.0;
      c.vm_reacquisition_time = 2.0;
      c.recovery_mode = mode;
      Engine<PageRankProgram> e(g, {iterations, 0.85}, c, parts);
      const auto r = e.run(o);
      if (r.failed) {
        t2.add_row({fmt(rate, 3), to_string(mode), "-", "-", "-", "-", "JOB LOST", "-"});
        continue;
      }
      const double overhead = r.metrics.total_time / base.metrics.total_time;
      mode_rows.push_back({rate, to_string(mode), r.metrics.worker_failures,
                           r.metrics.recovery_time, r.metrics.confined_replay_time,
                           r.metrics.total_time, overhead});
      t2.add_row({fmt(rate, 3), to_string(mode), std::to_string(r.metrics.worker_failures),
                  std::to_string(r.metrics.replayed_supersteps),
                  format_seconds(r.metrics.recovery_time),
                  format_seconds(r.metrics.confined_replay_time),
                  format_seconds(r.metrics.total_time), fmt(overhead, 2) + "x"});
      mode_bars.emplace_back(fmt(rate, 3) + " " + to_string(mode), overhead);
    }
  }
  t2.print(std::cout);
  std::cout << "\n" << ascii_bar_chart(mode_bars, 50, "total-time overhead by recovery mode", 1.0);
  std::cout << "(identical failure sequences per rate; confined recovery downloads one\n"
               " checkpoint instead of eight and skips recomputing healthy partitions)\n";

  write_csv("ablation_fault_tolerance", [&](CsvWriter& w) {
    w.header({"sweep", "checkpoint_interval", "failure_rate", "recovery_mode",
              "failures", "recovery_s", "confined_replay_s", "overhead_vs_clean"});
    for (const auto& r : rows)
      w.field("interval")
          .field(r.interval)
          .field(failure_rate)
          .field("full-rollback")
          .field(std::uint64_t{r.failures})
          .field(0.0)
          .field(0.0)
          .field(r.overhead)
          .end_row();
    for (const auto& r : mode_rows)
      w.field("mode")
          .field(std::uint64_t{5})
          .field(r.rate)
          .field(r.mode)
          .field(std::uint64_t{r.failures})
          .field(r.recovery)
          .field(r.replay)
          .field(r.overhead)
          .end_row();
  });
  return 0;
}
