// Figure 5: worker memory usage over time for BC on the WG graph under the
// baseline single swath and the two swath-size heuristics.
//
// Paper: the baseline spills beyond physical memory (flat at the 7 GB
// ceiling = paging); the adaptive heuristic hugs the 6 GB target; the
// sampling (static) heuristic stays near it but less tightly. "The more
// memory utilized (while staying within physical limits), the faster the
// completion."
#include <iostream>

#include "algos/bc.hpp"
#include "harness/experiment.hpp"
#include "harness/swath_search.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct Trace {
  std::string label;
  std::vector<double> t_seconds;  ///< cumulative modeled time
  std::vector<double> mem_mib;    ///< max worker memory
};

Trace run_trace(const std::string& label, const Graph& g, const ClusterConfig& cluster,
                const Partitioning& parts, const std::vector<VertexId>& roots,
                const SwathPolicy& policy, const MemGovernorConfig& governor = {}) {
  JobOptions opts;
  opts.roots = roots;
  opts.swath = policy;
  opts.fail_on_vm_restart = false;
  opts.governor = governor;
  Engine<BcProgram> engine(g, {}, cluster, parts);
  const auto r = engine.run(opts);
  Trace tr;
  tr.label = label;
  double t = r.metrics.setup_time;
  for (const auto& sm : r.metrics.supersteps) {
    t += sm.span;
    tr.t_seconds.push_back(t);
    tr.mem_mib.push_back(static_cast<double>(sm.max_worker_memory()) / (1 << 20));
  }
  return tr;
}

/// Resample a trace onto `points` uniform time steps so the three runs share
/// an x axis despite different total durations.
std::vector<double> resample(const Trace& tr, double t_max, std::size_t points) {
  std::vector<double> out(points, 0.0);
  std::size_t j = 0;
  for (std::size_t i = 0; i < points; ++i) {
    const double t = t_max * static_cast<double>(i) / static_cast<double>(points - 1);
    while (j + 1 < tr.t_seconds.size() && tr.t_seconds[j] < t) ++j;
    out[i] = t <= tr.t_seconds.back() ? tr.mem_mib[j] : 0.0;
  }
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figure 5 — memory over time, BC on WG",
         "baseline hits the physical-memory ceiling (spills); adaptive hugs "
         "the 6/7 target; closer to target without crossing RAM = faster");

  const Graph& g = dataset("WG");
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig cluster = make_cluster(env(), 8, 8);
  const Bytes target = memory_target(cluster.vm);

  const std::size_t root_pool = env().quick ? 24 : 96;
  const auto roots_all = pick_roots(g, root_pool, env().seed + 17);
  std::cout << "searching baseline swath ...\n";
  const std::uint32_t baseline_size =
      cached_baseline_swath("WG", g, cluster, parts, roots_all);
  const std::vector<VertexId> roots(roots_all.begin(), roots_all.begin() + baseline_size);
  std::cout << "baseline swath = " << baseline_size << "\n";

  const auto base = run_trace(
      "baseline", g, cluster, parts, roots,
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(baseline_size),
                        std::make_shared<SequentialInitiation>(), target));
  const auto sampling = run_trace(
      "sampling", g, cluster, parts, roots,
      SwathPolicy::make(std::make_shared<SamplingSwathSizer>(4, 2),
                        std::make_shared<SequentialInitiation>(), target));
  const auto adaptive = run_trace(
      "adaptive", g, cluster, parts, roots,
      SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(4),
                        std::make_shared<SequentialInitiation>(), target));

  // Governed reruns: the memory-pressure governor (veto/clamp, spill, shed)
  // holds every sizer's resident peak at or below the target, including the
  // baseline swath that otherwise rides the paging ceiling.
  const MemGovernorConfig gov = default_governor();
  const auto gov_base = run_trace(
      "baseline+gov", g, cluster, parts, roots,
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(baseline_size),
                        std::make_shared<SequentialInitiation>(), target),
      gov);
  const auto gov_sampling = run_trace(
      "sampling+gov", g, cluster, parts, roots,
      SwathPolicy::make(std::make_shared<SamplingSwathSizer>(4, 2),
                        std::make_shared<SequentialInitiation>(), target),
      gov);
  const auto gov_adaptive = run_trace(
      "adaptive+gov", g, cluster, parts, roots,
      SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(4),
                        std::make_shared<SequentialInitiation>(), target),
      gov);

  const double t_max =
      std::max({base.t_seconds.back(), sampling.t_seconds.back(), adaptive.t_seconds.back()});
  constexpr std::size_t kPoints = 70;
  const double ram_mib = static_cast<double>(cluster.vm.ram) / (1 << 20);
  const double target_mib = static_cast<double>(target) / (1 << 20);

  std::cout << ascii_line_chart(
      {{"baseline", resample(base, t_max, kPoints)},
       {"sampling", resample(sampling, t_max, kPoints)},
       {"adaptive", resample(adaptive, t_max, kPoints)},
       {"RAM", std::vector<double>(kPoints, ram_mib)},
       {"target", std::vector<double>(kPoints, target_mib)}},
      70, 18, "max worker memory (MiB) over modeled time");

  TextTable t({"run", "total time", "peak mem", "vs RAM", "vs target"});
  for (const auto* tr :
       {&base, &sampling, &adaptive, &gov_base, &gov_sampling, &gov_adaptive}) {
    double peak = 0;
    for (double m : tr->mem_mib) peak = std::max(peak, m);
    t.add_row({tr->label, format_seconds(tr->t_seconds.back()), fmt(peak, 0) + " MiB",
               fmt(peak / ram_mib, 2) + "x", fmt(peak / target_mib, 2) + "x"});
  }
  t.print(std::cout);
  std::cout << "\nRAM = " << fmt(ram_mib, 0) << " MiB, heuristic target = "
            << fmt(target_mib, 0) << " MiB (6/7 of RAM, as in the paper)\n"
            << "+gov rows rerun the same sizer under the memory-pressure "
               "governor: resident peak <= target\n";

  write_csv("fig5_memory_trace", [&](CsvWriter& w) {
    w.header({"run", "modeled_time_s", "max_worker_memory_mib"});
    for (const auto* tr :
         {&base, &sampling, &adaptive, &gov_base, &gov_sampling, &gov_adaptive})
      for (std::size_t i = 0; i < tr->t_seconds.size(); ++i)
        w.field(tr->label).field(tr->t_seconds[i]).field(tr->mem_mib[i]).end_row();
  });
  return 0;
}
