// Figure 3: average messages transferred per worker across supersteps for
// the WG graph — PageRank (entire graph, ~constant line at ~637k per worker
// per superstep in the paper) versus BC and APSP (one static swath of seven
// roots, triangle waveform peaking at 4.7M / 3M messages).
//
// Reproduction target: PageRank's profile is flat; BC and APSP ramp up
// near-exponentially, peak around the average-shortest-path superstep, and
// drain with a long tail (BC's backward traversal makes its wave longer and
// taller than APSP's).
#include <algorithm>
#include <iostream>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

std::vector<double> per_worker_messages(const JobMetrics& m) {
  std::vector<double> out;
  for (const auto& s : m.supersteps)
    out.push_back(static_cast<double>(s.messages_sent_total()) /
                  std::max(1u, s.active_workers));
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figure 3 — message profile per superstep (WG, 8 workers)",
         "PageRank flat (~637k msgs/worker); BC and APSP triangle waves "
         "(peaks 4.7M and 3M for a single 7-root swath)");

  const Graph& g = dataset("WG");
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig cluster = make_cluster(env(), 8, 8);

  const int pr_iters = env().quick ? 10 : 30;
  const auto pr = run_pagerank(g, cluster, parts, pr_iters);
  const auto roots = pick_roots(g, 7, env().seed + 3);
  const auto bc = run_bc(g, cluster, parts, roots);
  const auto apsp = run_apsp(g, cluster, parts, roots);

  const auto pr_series = per_worker_messages(pr.metrics);
  const auto bc_series = per_worker_messages(bc.metrics);
  const auto apsp_series = per_worker_messages(apsp.metrics);

  std::cout << ascii_line_chart({{"PageRank", pr_series},
                                 {"BC (7-root swath)", bc_series},
                                 {"APSP (7-root swath)", apsp_series}},
                                70, 16, "avg messages per worker per superstep");

  auto stats = [](const std::vector<double>& s) {
    double peak = 0, sum = 0;
    for (double v : s) {
      peak = std::max(peak, v);
      sum += v;
    }
    const double mean = s.empty() ? 0.0 : sum / static_cast<double>(s.size());
    return std::pair{peak, mean};
  };
  const auto [pr_peak, pr_mean] = stats(pr_series);
  const auto [bc_peak, bc_mean] = stats(bc_series);
  const auto [apsp_peak, apsp_mean] = stats(apsp_series);

  TextTable t({"app", "supersteps", "peak msgs/worker", "mean msgs/worker", "peak/mean"});
  t.add_row({"PageRank", std::to_string(pr_series.size()), fmt(pr_peak, 0), fmt(pr_mean, 0),
             fmt(pr_peak / pr_mean, 2)});
  t.add_row({"BC", std::to_string(bc_series.size()), fmt(bc_peak, 0), fmt(bc_mean, 0),
             fmt(bc_peak / bc_mean, 2)});
  t.add_row({"APSP", std::to_string(apsp_series.size()), fmt(apsp_peak, 0),
             fmt(apsp_mean, 0), fmt(apsp_peak / apsp_mean, 2)});
  t.print(std::cout);

  std::cout << "\nshape check: PageRank peak/mean ~1 (flat): " << fmt(pr_peak / pr_mean, 2)
            << "; BC/APSP strongly peaked (>2): " << fmt(bc_peak / bc_mean, 2) << " / "
            << fmt(apsp_peak / apsp_mean, 2) << "\n";
  std::cout << "BC peak exceeds APSP peak (backward traversal): "
            << (bc_peak > apsp_peak ? "yes" : "no") << "\n";

  write_csv("fig3_message_profile", [&](CsvWriter& w) {
    w.header({"app", "superstep", "avg_messages_per_worker"});
    auto emit = [&w](const char* app, const std::vector<double>& s) {
      for (std::size_t i = 0; i < s.size(); ++i)
        w.field(app).field(std::uint64_t{i}).field(s[i]).end_row();
    };
    emit("pagerank", pr_series);
    emit("bc", bc_series);
    emit("apsp", apsp_series);
  });
  return 0;
}
