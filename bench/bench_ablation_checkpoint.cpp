// Ablation: generational delta checkpoints vs full snapshots. Sweep the
// checkpoint interval for three frontier shapes with the store in full-only
// and delta mode, and report modeled checkpoint bytes, checkpoint time,
// makespan, and dollar cost per cell:
//  * pagerank      — exact fixed-iteration: every vertex is active (and so
//                    dirty) every superstep, the control cell where a delta
//                    ties a full leg by construction;
//  * pagerank-adpt — tolerance-halted adaptive PageRank: the frontier
//                    decays as regions converge and deltas track it;
//  * sssp          — push-mode wavefront: the dirtied set is the wave.
// A seeded worker preemption in every cell also prices the restore-set
// download (base + intermediate deltas) so the delta saving is shown net of
// its recovery-side cost.
#include <chrono>
#include <iostream>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "harness/bench_report.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct Cell {
  std::string workload;
  std::uint64_t interval;
  bool delta;
  std::uint32_t bases, deltas, failures;
  Bytes ckpt_bytes;
  double ckpt_s, makespan, cost;
};

ClusterConfig cell_cluster(const ExperimentEnv& env, std::uint64_t interval,
                           bool delta) {
  ClusterConfig c = make_cluster(env, 8, 8);
  c.checkpoint_interval = interval;
  c.ckpt.delta_enabled = delta;
  // Recovery constants scaled to analog size, as in the recovery ablation.
  c.failure_detection_time = 1.0;
  c.vm_reacquisition_time = 2.0;
  // One mid-run preemption: every cell pays one restore-set download.
  // Superstep 5 is inside even the quick-mode runs (adaptive PageRank
  // converges and the SSSP wave dies within ~10 supersteps there).
  c.scheduled_failures = {{5, 2}};
  return c;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — delta vs full checkpoint generations",
         "modeled checkpoint bytes/time, makespan, and $-cost vs interval "
         "with the generational store in full-only and delta mode");

  const Graph& g = dataset("SD");
  const auto parts = HashPartitioner{}.partition(g, 8);
  // SSSP runs on a high-diameter grid (road-network shape): the wave is a
  // thin band crossing the lattice over hundreds of supersteps, so each
  // delta leg carries a small mutation set while a full snapshot re-uploads
  // every settled distance every round. (The web/social analogs are
  // small-world — their wave floods most vertices per interval and the
  // in-flight inbox, which every consistent checkpoint must carry, drowns
  // the value bytes.)
  const VertexId side = env().quick ? 128 : 256;
  const Graph gw = grid_graph(side, side);
  const auto parts_w = HashPartitioner{}.partition(gw, 8);
  const int iterations = env().quick ? 20 : 60;

  BenchReport report("ablation_checkpoint");
  TextTable t({"workload", "ckpt every", "mode", "gens (base+delta)",
               "ckpt bytes", "ckpt time", "makespan", "cost"});
  std::vector<Cell> cells;
  std::vector<std::pair<std::string, double>> bars;

  auto run_cell = [&](const std::string& workload, std::uint64_t interval,
                      bool delta, auto&& run) {
    const auto wall0 = std::chrono::steady_clock::now();
    const JobMetrics m = run(cell_cluster(env(), interval, delta));
    const double wall =
        std::chrono::duration<double>(std::chrono::steady_clock::now() - wall0)
            .count();
    const Bytes bytes = m.checkpoint_base_bytes + m.checkpoint_delta_bytes;
    cells.push_back({workload, interval, delta, m.checkpoint_bases,
                     m.checkpoint_deltas, m.worker_failures, bytes,
                     m.checkpoint_time, m.total_time, m.cost_usd});
    const std::string series = workload + "/ckpt-" + std::to_string(interval) +
                               (delta ? "/delta" : "/full");
    report.add_sample(series, wall);
    report.set_series_counter(series, "checkpoint_bytes", static_cast<double>(bytes));
    report.set_series_counter(series, "checkpoint_s", m.checkpoint_time);
    report.set_series_counter(series, "makespan_s", m.total_time);
    report.set_series_counter(series, "cost_usd", m.cost_usd);
    t.add_row({workload, std::to_string(interval), delta ? "delta" : "full",
               std::to_string(m.checkpoint_bases) + "+" +
                   std::to_string(m.checkpoint_deltas),
               format_bytes(bytes), format_seconds(m.checkpoint_time),
               format_seconds(m.total_time), "$" + fmt(m.cost_usd, 4)});
  };

  // Adaptive tolerance scaled to the uniform rank mass 1/|V|: low-rank tail
  // vertices settle within a few supersteps while hubs keep moving, so the
  // halted region grows superstep over superstep across the whole run.
  const double tol = 0.5 / static_cast<double>(g.num_vertices());

  for (std::uint64_t interval : {2ull, 5ull, 10ull}) {
    for (bool delta : {false, true}) {
      run_cell("pagerank", interval, delta, [&](ClusterConfig c) {
        Engine<PageRankProgram> e(g, {iterations, 0.85}, c, parts);
        JobOptions o;
        o.start_all_vertices = true;
        const auto r = e.run(o);
        return r.metrics;
      });
      run_cell("pagerank-adpt", interval, delta, [&](ClusterConfig c) {
        Engine<PageRankProgram> e(g, {iterations, 0.85, tol}, c, parts);
        JobOptions o;
        o.start_all_vertices = true;
        // Sender-side combining collapses the per-edge rank shares to one
        // message per receiver, so the in-flight inbox stops drowning the
        // value bytes the write barrier actually shrinks.
        o.use_combiner = true;
        const auto r = e.run(o);
        return r.metrics;
      });
      run_cell("sssp", interval, delta, [&](ClusterConfig c) {
        Engine<SsspProgram> e(gw, {}, c, parts_w);
        JobOptions o;
        o.roots = {0};
        o.use_combiner = true;
        // Classic push traversal: the measurement here is checkpoint sizing
        // against the wavefront, and dense pull supersteps activate (and so
        // dirty) every vertex.
        o.direction.mode = DirectionOptions::Mode::kOff;
        const auto r = e.run(o);
        return r.metrics;
      });
    }
  }
  t.print(std::cout);

  // Headline ratio per workload at the tightest interval (the one with the
  // most generations): delta bytes as a fraction of full bytes (< 1.0
  // wherever the write barrier ever reports a shrunken mutation set).
  for (const std::string& w :
       {std::string("pagerank"), std::string("pagerank-adpt"), std::string("sssp")}) {
    const Cell* full = nullptr;
    const Cell* delta = nullptr;
    for (const Cell& c : cells)
      if (c.workload == w && c.interval == 2)
        (c.delta ? delta : full) = &c;
    if (full && delta && full->ckpt_bytes > 0) {
      const double ratio = static_cast<double>(delta->ckpt_bytes) /
                           static_cast<double>(full->ckpt_bytes);
      bars.emplace_back(w, ratio);
      report.set_series_counter(w + "/ckpt-2/delta", "bytes_vs_full", ratio);
    }
  }
  std::cout << "\n"
            << ascii_bar_chart(bars, 50,
                               "delta checkpoint bytes / full (interval 2)", 1.0)
            << "(exact PageRank dirties every vertex every superstep, so its\n"
               " deltas tie full legs by construction; the adaptive variant's\n"
               " frontier decays with convergence and SSSP's is the wave)\n";

  write_csv("ablation_checkpoint", [&](CsvWriter& w) {
    w.header({"workload", "checkpoint_interval", "delta", "bases", "deltas",
              "failures", "checkpoint_bytes", "checkpoint_s", "makespan_s",
              "cost_usd"});
    for (const Cell& c : cells)
      w.field(c.workload)
          .field(c.interval)
          .field(std::uint64_t{c.delta ? 1u : 0u})
          .field(std::uint64_t{c.bases})
          .field(std::uint64_t{c.deltas})
          .field(std::uint64_t{c.failures})
          .field(c.ckpt_bytes)
          .field(c.ckpt_s)
          .field(c.makespan)
          .field(c.cost)
          .end_row();
  });
  report.write_file(env().results_dir + "/BENCH_ablation_checkpoint.json");
  return 0;
}
