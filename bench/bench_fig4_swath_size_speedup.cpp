// Figure 4: speedup of the swath-size heuristics over the baseline (largest
// successful single swath on 8 workers) for BC on the WG and CP graphs.
//
// Paper: sampling heuristic ~2.5-3x, adaptive up to 3.5x; the adaptive
// heuristic on only 4 workers finishes in roughly two-thirds of the 8-worker
// baseline's time. The mechanism: the baseline spills into virtual memory on
// its peak supersteps (random-access paging penalty), while the heuristics
// keep every worker under the 6/7-of-RAM target.
//
// Methodology mirrors the paper: first find the largest swath size that
// completes without the cloud fabric restarting a worker (paper: 40 on WG,
// 25 on CP, found manually); then run the sampling and adaptive heuristics
// over the same total number of roots.
#include <iostream>

#include "algos/bc.hpp"
#include "harness/experiment.hpp"
#include "harness/swath_search.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct ConfigResult {
  std::string label;
  Seconds time = 0.0;
  double speedup = 0.0;
  std::uint64_t swaths = 0;
  Bytes peak_memory = 0;
};

ConfigResult run_config(const std::string& label, const Graph& g,
                        const ClusterConfig& cluster, const Partitioning& parts,
                        const std::vector<VertexId>& roots, const SwathPolicy& policy) {
  JobOptions opts;
  opts.roots = roots;
  opts.swath = policy;
  // The baseline is allowed to thrash (that is the point); a run that would
  // be restarted is reported as failed rather than throwing.
  opts.fail_on_vm_restart = false;
  Engine<BcProgram> engine(g, {}, cluster, parts);
  const auto r = engine.run(opts);
  ConfigResult out;
  out.label = label;
  out.time = r.metrics.total_time;
  out.swaths = r.swaths_initiated;
  out.peak_memory = r.metrics.peak_worker_memory();
  return out;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figure 4 — swath-size heuristic speedup vs baseline (BC)",
         "sampling ~2.5-3x, adaptive up to 3.5x on 8 workers; adaptive on 4 "
         "workers beats the 8-worker baseline");

  std::vector<std::pair<std::string, ConfigResult>> all;

  for (const std::string name : {"WG", "CP"}) {
    const Graph& g = dataset(name);
    const auto parts8 = HashPartitioner{}.partition(g, 8);
    ClusterConfig c8 = make_cluster(env(), 8, 8);
    const Bytes target = memory_target(c8.vm);

    const std::size_t root_pool = env().quick ? 24 : 96;
    const auto roots_all = pick_roots(g, root_pool, env().seed + 17);

    std::cout << name << ": searching largest completing single swath (paper: "
              << (name == "WG" ? "40" : "25") << ") ...\n";
    const std::uint32_t baseline_size =
        cached_baseline_swath(name, g, c8, parts8, roots_all);
    std::cout << name << ": baseline swath = " << baseline_size << "\n";
    const std::vector<VertexId> roots(roots_all.begin(), roots_all.begin() + baseline_size);

    const auto baseline = run_config(
        name + " baseline@8w", g, c8, parts8, roots,
        SwathPolicy::make(std::make_shared<StaticSwathSizer>(baseline_size),
                          std::make_shared<SequentialInitiation>(), target));

    auto sampling_policy = [&] {
      return SwathPolicy::make(std::make_shared<SamplingSwathSizer>(4, 2),
                               std::make_shared<SequentialInitiation>(), target);
    };
    auto adaptive_policy = [&] {
      return SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(4),
                               std::make_shared<SequentialInitiation>(), target);
    };

    std::vector<ConfigResult> rs;
    rs.push_back(baseline);
    rs.push_back(run_config(name + " sampling@8w", g, c8, parts8, roots, sampling_policy()));
    rs.push_back(run_config(name + " adaptive@8w", g, c8, parts8, roots, adaptive_policy()));

    ClusterConfig c4 = make_cluster(env(), 8, 4);  // same partitions, 4 VMs
    rs.push_back(run_config(name + " sampling@4w", g, c4, parts8, roots, sampling_policy()));
    rs.push_back(run_config(name + " adaptive@4w", g, c4, parts8, roots, adaptive_policy()));

    for (auto& r : rs) {
      r.speedup = baseline.time / r.time;
      all.emplace_back(name, r);
    }
  }

  TextTable t({"config", "modeled time", "speedup vs baseline@8w", "swaths",
               "peak worker mem"});
  std::vector<std::pair<std::string, double>> bars;
  for (const auto& [graph, r] : all) {
    t.add_row({r.label, format_seconds(r.time), fmt(r.speedup, 2) + "x",
               std::to_string(r.swaths), format_bytes(r.peak_memory)});
    bars.emplace_back(r.label, r.speedup);
  }
  t.print(std::cout);
  std::cout << "\n" << ascii_bar_chart(bars, 50, "speedup vs baseline@8w (taller=better)", 1.0);

  write_csv("fig4_swath_size_speedup", [&](CsvWriter& w) {
    w.header({"graph", "config", "modeled_seconds", "speedup", "swaths",
              "peak_worker_memory_bytes"});
    for (const auto& [graph, r] : all)
      w.field(graph).field(r.label).field(r.time).field(r.speedup).field(r.swaths)
          .field(r.peak_memory).end_row();
  });
  return 0;
}
