// Google-benchmark microbenchmarks of the framework's hot paths: message
// routing throughput through the engine, partitioner throughput, and graph
// generation. These are not paper figures; they track the simulator's own
// performance so regressions in the substrate are visible.
#include <benchmark/benchmark.h>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/streaming.hpp"

namespace {

using namespace pregel;
using namespace pregel::algos;

const Graph& bench_graph() {
  static const Graph g = barabasi_albert(20000, 6, 99);
  return g;
}

ClusterConfig bench_cluster() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 8;
  return c;
}

void BM_EngineMessageRouting(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto parts = HashPartitioner{}.partition(g, 8);
  const int iters = static_cast<int>(state.range(0));
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto r = run_pagerank(g, bench_cluster(), parts, iters);
    messages += r.metrics.total_messages();
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(static_cast<double>(messages),
                                                benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineMessageRouting)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

// Host-parallel superstep execution on a 100k+-vertex graph: same job at
// 1/2/4 lanes. Results are bit-identical by contract; the curve tracks the
// wall-clock speedup of the staged compute + deterministic merge. (On a
// single-core builder the >1 lane rows mostly measure staging overhead.)
void BM_EngineParallelSupersteps(benchmark::State& state) {
  static const Graph g = barabasi_albert(120000, 8, 17);
  ClusterConfig c;
  c.num_partitions = 16;
  c.initial_workers = 8;
  static const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t messages = 0;
  for (auto _ : state) {
    Engine<PageRankProgram> e(g, {4, 0.85}, c, parts);
    const auto r = e.run(o);
    messages += r.metrics.total_messages();
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(static_cast<double>(messages),
                                                benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineParallelSupersteps)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

void BM_EngineTraversal(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto parts = HashPartitioner{}.partition(g, 8);
  for (auto _ : state) {
    const auto r = run_sssp(g, bench_cluster(), parts, 0);
    benchmark::DoNotOptimize(r.values.data());
  }
}
BENCHMARK(BM_EngineTraversal)->Unit(benchmark::kMillisecond);

void BM_PartitionHash(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    const auto p = HashPartitioner{}.partition(g, 8);
    benchmark::DoNotOptimize(p.assignment().data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_PartitionHash)->Unit(benchmark::kMillisecond);

void BM_PartitionStreamingLdg(benchmark::State& state) {
  const Graph& g = bench_graph();
  StreamingPartitioner sp;
  for (auto _ : state) {
    const auto p = sp.partition(g, 8);
    benchmark::DoNotOptimize(p.assignment().data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_PartitionStreamingLdg)->Unit(benchmark::kMillisecond);

void BM_PartitionMultilevel(benchmark::State& state) {
  const Graph& g = bench_graph();
  MultilevelPartitioner mp;
  for (auto _ : state) {
    const auto p = mp.partition(g, 8);
    benchmark::DoNotOptimize(p.assignment().data());
  }
}
BENCHMARK(BM_PartitionMultilevel)->Unit(benchmark::kMillisecond);

void BM_GenerateRmat(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g = rmat({.scale = 14, .target_edges = 100000}, 7);
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_GenerateRmat)->Unit(benchmark::kMillisecond);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g = barabasi_albert(20000, 6, 3);
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Unit(benchmark::kMillisecond);

}  // namespace

BENCHMARK_MAIN();
