// Google-benchmark microbenchmarks of the framework's hot paths: message
// routing throughput through the engine, partitioner throughput, and graph
// generation. These are not paper figures; they track the simulator's own
// performance so regressions in the substrate are visible.
//
// In addition to the native google-benchmark flags (--benchmark_format=json,
// --benchmark_out=..., used by CI's bench-smoke job), `--report <path>` writes
// a pregelpp-bench-v1 JSON report (see harness/bench_report.hpp) with per-series
// median/p90 wall times and the engine's perf-counter totals.
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <string_view>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "harness/bench_report.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/streaming.hpp"
#include "runtime/trace.hpp"
#include "sched/scheduler.hpp"
#include "subgraph/sssp.hpp"

namespace {

using namespace pregel;
using namespace pregel::algos;

const Graph& bench_graph() {
  static const Graph g = barabasi_albert(20000, 6, 99);
  return g;
}

ClusterConfig bench_cluster() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 8;
  return c;
}

void BM_EngineMessageRouting(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto parts = HashPartitioner{}.partition(g, 8);
  const int iters = static_cast<int>(state.range(0));
  std::uint64_t messages = 0;
  for (auto _ : state) {
    const auto r = run_pagerank(g, bench_cluster(), parts, iters);
    messages += r.metrics.total_messages();
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(static_cast<double>(messages),
                                                benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineMessageRouting)->Arg(2)->Arg(5)->Unit(benchmark::kMillisecond);

// Host-parallel superstep execution on a 100k+-vertex graph: same job at
// 1/2/4 lanes. Results are bit-identical by contract; the curve tracks the
// wall-clock speedup of the staged compute + deterministic merge. (On a
// single-core builder the >1 lane rows mostly measure staging overhead.)
void BM_EngineParallelSupersteps(benchmark::State& state) {
  static const Graph g = barabasi_albert(120000, 8, 17);
  ClusterConfig c;
  c.num_partitions = 16;
  c.initial_workers = 8;
  static const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t messages = 0;
  for (auto _ : state) {
    Engine<PageRankProgram> e(g, {4, 0.85}, c, parts);
    const auto r = e.run(o);
    messages += r.metrics.total_messages();
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(static_cast<double>(messages),
                                                benchmark::Counter::kIsRate);
}
BENCHMARK(BM_EngineParallelSupersteps)->Arg(1)->Arg(2)->Arg(4)->Unit(benchmark::kMillisecond);

// Skewed-frontier traversal: ~90% of vertices (and hence of every dense
// frontier) sit in one partition, so lane counts > 1 only pay off if dry
// lanes steal bag chunks from the loaded one. Arg = parallelism; the Arg(8)
// row over the Arg(1) row is the work-stealing speedup on a multi-core host.
// On a single-core runner the two rows mostly measure staging overhead —
// still gated, so that overhead can't silently grow.
void BM_EngineSkewedFrontier(benchmark::State& state) {
  constexpr VertexId kN = 60000;
  constexpr PartitionId kParts = 16;
  static const Graph g = barabasi_albert(kN, 4, 23);
  static const Partitioning parts = [] {
    std::vector<PartitionId> assign(kN, 0);
    const VertexId tail = kN - kN / 10;
    for (VertexId v = tail; v < kN; ++v)
      assign[v] = static_cast<PartitionId>(1 + (v - tail) % (kParts - 1));
    return Partitioning(std::move(assign), kParts);
  }();
  ClusterConfig c;
  c.num_partitions = kParts;
  c.initial_workers = 8;
  JobOptions o;
  o.roots = {0};
  o.frontier_grain = 64;
  o.parallelism = static_cast<std::uint32_t>(state.range(0));
  std::uint64_t messages = 0;
  std::uint64_t steals = 0;
  for (auto _ : state) {
    Engine<SsspProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    messages += r.metrics.total_messages();
    steals += r.metrics.work_steals;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(static_cast<double>(messages),
                                                benchmark::Counter::kIsRate);
  state.counters["steals"] = benchmark::Counter(static_cast<double>(steals));
}
// UseRealTime: with >1 lane the main thread parks on the pool's barrier, so
// the default CPU-time denominator would inflate msgs/s by whatever fraction
// of the work the workers absorbed — wall clock is the honest denominator.
BENCHMARK(BM_EngineSkewedFrontier)
    ->Arg(1)
    ->Arg(8)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond);

// Multi-job scheduler: a 6-job mixed plan (PageRank + SSSP, staggered
// arrivals, two users) driven through JobScheduler on an 8-VM pool under the
// fair-share policy. Items = completed jobs; the jobs_per_hour_per_usd
// counter carries the modeled cost-efficiency (lower is worse — CI gates it
// alongside the wall-clock rate via check_regression.py).
void BM_SchedulerThroughput(benchmark::State& state) {
  static const Graph g_small = barabasi_albert(4000, 5, 41);
  static const Graph g_big = barabasi_albert(12000, 5, 42);
  static const auto parts_small = HashPartitioner{}.partition(g_small, 8);
  static const auto parts_big = HashPartitioner{}.partition(g_big, 8);
  std::uint64_t completed = 0;
  double jphpu = 0.0;
  for (auto _ : state) {
    sched::SchedulerOptions opts;
    opts.pool_vms = 8;
    sched::JobScheduler scheduler(opts);
    JobOptions all;
    all.start_all_vertices = true;
    JobOptions root0;
    root0.roots = {0};
    for (std::size_t i = 0; i < 6; ++i) {
      sched::JobSpec spec;
      spec.name = "job" + std::to_string(i);
      spec.user = (i % 2 != 0) ? "bob" : "alice";
      spec.arrival = static_cast<double>(i) * 0.5;
      ClusterConfig c;
      c.num_partitions = 8;
      c.initial_workers = (i % 2 != 0) ? 8 : 4;
      if (i % 2 != 0)
        scheduler.submit(spec, std::make_unique<sched::TypedJob<SsspProgram>>(
                                   g_big, SsspProgram{}, c, parts_big, root0));
      else
        scheduler.submit(spec, std::make_unique<sched::TypedJob<PageRankProgram>>(
                                   g_small, PageRankProgram{5, 0.85}, c, parts_small,
                                   all));
    }
    scheduler.run_all();
    completed += scheduler.pool().jobs_completed;
    jphpu = scheduler.pool().jobs_per_hour_per_usd;
    benchmark::DoNotOptimize(scheduler.pool());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(completed));
  state.counters["jobs/s"] = benchmark::Counter(static_cast<double>(completed),
                                                benchmark::Counter::kIsRate);
  state.counters["jobs_per_hour_per_usd"] = benchmark::Counter(jphpu);
}
BENCHMARK(BM_SchedulerThroughput)->Unit(benchmark::kMillisecond);

// Generational delta-checkpoint store on the hot path: SSSP writing a
// generation every other superstep with one seeded preemption, so every
// iteration pays the dirty-tracking write barrier, delta-leg sizing, one
// multi-generation restore, and the replay back to the failure point.
// ckpt_mbytes is the modeled store upload — deterministic, so CI gates it
// with direction 'lower': a sizing bug that balloons delta legs fails the
// job even when wall time holds.
void BM_EngineCheckpointDelta(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto parts = HashPartitioner{}.partition(g, 8);
  std::uint64_t messages = 0;
  double ckpt_mb = 0.0;
  for (auto _ : state) {
    ClusterConfig c = bench_cluster();
    c.checkpoint_interval = 2;
    c.ckpt.delta_enabled = true;
    c.failure_detection_time = 1.0;
    c.vm_reacquisition_time = 2.0;
    c.scheduled_failures = {{5, 1}};
    Engine<SsspProgram> e(g, {}, c, parts);
    JobOptions o;
    o.roots = {0};
    const auto r = e.run(o);
    messages += r.metrics.total_messages();
    ckpt_mb = static_cast<double>(r.metrics.checkpoint_base_bytes +
                                  r.metrics.checkpoint_delta_bytes) /
              (1024.0 * 1024.0);
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(messages));
  state.counters["msgs/s"] = benchmark::Counter(static_cast<double>(messages),
                                                benchmark::Counter::kIsRate);
  state.counters["ckpt_mbytes"] = benchmark::Counter(ckpt_mb);
}
BENCHMARK(BM_EngineCheckpointDelta)->Unit(benchmark::kMillisecond);

void BM_EngineTraversal(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto parts = HashPartitioner{}.partition(g, 8);
  for (auto _ : state) {
    const auto r = run_sssp(g, bench_cluster(), parts, 0);
    benchmark::DoNotOptimize(r.values.data());
  }
}
BENCHMARK(BM_EngineTraversal)->Unit(benchmark::kMillisecond);

// Same traversal through the subgraph-centric path: per-partition Dijkstra
// to local convergence, staged-outbox sort, rank-merged boundary exchange.
// The pair (BM_EngineTraversal, BM_SubgraphSuperstep) tracks the relative
// cost of the two compute models on identical inputs.
void BM_SubgraphSuperstep(benchmark::State& state) {
  const Graph& g = bench_graph();
  const auto parts = HashPartitioner{}.partition(g, 8);
  std::uint64_t supersteps = 0, ops = 0;
  for (auto _ : state) {
    const auto r = subgraph::run_sssp_subgraph(g, bench_cluster(), parts, 0);
    supersteps += r.metrics.supersteps.size();
    for (const auto& sm : r.metrics.supersteps)
      for (const auto& wm : sm.workers) ops += wm.subgraph_ops;
    benchmark::DoNotOptimize(r.values.data());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(ops));
  state.counters["supersteps"] = benchmark::Counter(
      static_cast<double>(supersteps) / static_cast<double>(state.iterations()));
  state.counters["subgraph_ops/s"] = benchmark::Counter(
      static_cast<double>(ops), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_SubgraphSuperstep)->Unit(benchmark::kMillisecond);

void BM_PartitionHash(benchmark::State& state) {
  const Graph& g = bench_graph();
  for (auto _ : state) {
    const auto p = HashPartitioner{}.partition(g, 8);
    benchmark::DoNotOptimize(p.assignment().data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_PartitionHash)->Unit(benchmark::kMillisecond);

void BM_PartitionStreamingLdg(benchmark::State& state) {
  const Graph& g = bench_graph();
  StreamingPartitioner sp;
  for (auto _ : state) {
    const auto p = sp.partition(g, 8);
    benchmark::DoNotOptimize(p.assignment().data());
  }
  state.SetItemsProcessed(state.iterations() * g.num_vertices());
}
BENCHMARK(BM_PartitionStreamingLdg)->Unit(benchmark::kMillisecond);

void BM_PartitionMultilevel(benchmark::State& state) {
  const Graph& g = bench_graph();
  MultilevelPartitioner mp;
  for (auto _ : state) {
    const auto p = mp.partition(g, 8);
    benchmark::DoNotOptimize(p.assignment().data());
  }
}
BENCHMARK(BM_PartitionMultilevel)->Unit(benchmark::kMillisecond);

void BM_GenerateRmat(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g = rmat({.scale = 14, .target_edges = 100000}, 7);
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_GenerateRmat)->Unit(benchmark::kMillisecond);

void BM_GenerateBarabasiAlbert(benchmark::State& state) {
  for (auto _ : state) {
    const Graph g = barabasi_albert(20000, 6, 3);
    benchmark::DoNotOptimize(g.num_arcs());
  }
}
BENCHMARK(BM_GenerateBarabasiAlbert)->Unit(benchmark::kMillisecond);

// google-benchmark finalizes user counters inside its reporters (rate
// counters divide by elapsed time, average counters by iterations); the Run
// objects still carry the raw values, so reproduce that adjustment here.
double finished_counter_value(const benchmark::Counter& c, double iterations,
                              double real_seconds) {
  double v = c.value;
  if ((c.flags & benchmark::Counter::kIsRate) != 0 && real_seconds > 0.0)
    v /= real_seconds;
  if ((c.flags & benchmark::Counter::kIsIterationInvariant) != 0) v *= iterations;
  if ((c.flags & benchmark::Counter::kAvgIterations) != 0 && iterations > 0.0)
    v /= iterations;
  if ((c.flags & benchmark::Counter::kInvert) != 0 && v != 0.0) v = 1.0 / v;
  return v;
}

// Console output as usual, plus every per-iteration run folded into the
// BenchReport as one wall-clock sample per repetition.
class CollectingReporter : public benchmark::ConsoleReporter {
 public:
  explicit CollectingReporter(pregel::harness::BenchReport& report)
      : report_(report) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    benchmark::ConsoleReporter::ReportRuns(runs);
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const double iters =
          run.iterations > 0 ? static_cast<double>(run.iterations) : 1.0;
      report_.add_sample(name, run.real_accumulated_time / iters);
      for (const auto& [key, counter] : run.counters)
        report_.set_series_counter(
            name, key,
            finished_counter_value(counter, iters, run.real_accumulated_time));
    }
  }

 private:
  pregel::harness::BenchReport& report_;
};

}  // namespace

int main(int argc, char** argv) {
  // Peel off --report before google-benchmark sees argv; its native flags
  // (--benchmark_filter, --benchmark_format=json, --benchmark_out, ...)
  // pass through untouched.
  std::string report_path;
  int kept = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string_view arg = argv[i];
    if (arg == "--report" && i + 1 < argc) {
      report_path = argv[++i];
    } else if (arg.rfind("--report=", 0) == 0) {
      report_path = std::string(arg.substr(std::string_view("--report=").size()));
    } else {
      argv[kept++] = argv[i];
    }
  }
  argc = kept;
  argv[argc] = nullptr;

  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;

  if (report_path.empty()) {
    benchmark::RunSpecifiedBenchmarks();
    return 0;
  }

  // Enable the perf-counter registry (spans stay off — no timeline needed)
  // so engine/cloud totals land in the report next to the timings.
  pregel::trace::TraceConfig cfg;
  cfg.spans = false;
  cfg.counters = true;
  cfg.process_name = "bench_micro_engine";
  pregel::trace::Tracer::instance().configure(cfg);

  pregel::harness::BenchReport report("micro_engine");
  CollectingReporter reporter(report);
  benchmark::RunSpecifiedBenchmarks(&reporter);
  report.include_trace_counters();
  report.write_file(report_path);
  return 0;
}
