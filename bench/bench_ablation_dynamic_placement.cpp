// Ablation: GPS-style dynamic partition placement (overdecomposition +
// rebalancing) — the mitigation the paper's §VII problem calls for and its
// conclusion leaves as future work.
//
// Setup: the WG analog cut into 32 partitions hosted on 8 VMs. Three
// workloads stress placement differently:
//   - PageRank with adversarially skewed partition sizes (sustained skew:
//     rebalancing should win decisively);
//   - BC on METIS-like partitions (the paper's activity-maxima case: the
//     hot region MOVES each superstep, so a reactive rebalancer chases it);
//   - BC on hash partitions (uniform by construction: rebalancing should
//     find nothing to do).
#include <iostream>
#include <memory>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "util/rng.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct Outcome {
  Seconds total;
  Seconds wait;
  double utilization;
};

template <class Run>
Outcome outcome_of(const Run& r) {
  return {r.metrics.total_time, r.metrics.total_barrier_wait(), r.metrics.utilization()};
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — dynamic partition placement (32 partitions on 8 VMs)",
         "rebalancing fixes sustained skew, chases moving BC frontiers, and "
         "is a no-op on uniform hash layouts");

  const Graph& g = dataset("WG");
  ClusterConfig base = make_cluster(env(), 32, 8);
  const std::size_t n_roots = env().quick ? 4 : 12;
  const auto roots = pick_roots(g, n_roots, env().seed + 47);
  const int pr_iters = env().quick ? 5 : 15;

  TextTable t({"workload", "placement", "modeled time", "barrier wait", "utilization %"});
  struct Row {
    std::string workload, placement;
    Outcome o;
  };
  std::vector<Row> rows;

  auto add = [&](const std::string& wl, const std::string& pl, const Outcome& o) {
    rows.push_back({wl, pl, o});
    t.add_row({wl, pl, format_seconds(o.total), format_seconds(o.wait),
               fmt(o.utilization * 100, 1)});
  };

  // Workload A: PageRank with skewed partition sizes (heavy partitions at
  // indices 0, 8, 16, 24 -> all stacked on VM 0 by the static modulo map).
  {
    std::vector<PartitionId> assign(g.num_vertices());
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      if (v < g.num_vertices() / 2) {
        assign[v] = (v % 4) * 8;
      } else {
        assign[v] = static_cast<PartitionId>(mix64(v) % 32);
      }
    }
    const Partitioning skewed(std::move(assign), 32);
    for (bool rebalance : {false, true}) {
      ClusterConfig c = base;
      if (rebalance) c.placement = std::make_shared<cloud::GreedyRebalancePlacement>();
      Engine<PageRankProgram> e(g, {pr_iters, 0.85}, c, skewed);
      JobOptions o;
      o.start_all_vertices = true;
      add("PageRank/skewed", rebalance ? "rebalance" : "static", outcome_of(e.run(o)));
    }
  }

  // Workload B: BC on METIS-like partitions (moving activity maximas).
  {
    MultilevelPartitioner::Options mo;
    mo.seed = env().seed;
    const auto parts = MultilevelPartitioner{mo}.partition(g, 32);
    for (bool rebalance : {false, true}) {
      ClusterConfig c = base;
      if (rebalance)
        c.placement = std::make_shared<cloud::GreedyRebalancePlacement>(1.15, 0.6);
      Engine<BcProgram> e(g, {}, c, parts);
      JobOptions o;
      o.roots = roots;
      o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                                  std::make_shared<StaticNInitiation>(4),
                                  memory_target(c.vm));
      add("BC/metis", rebalance ? "rebalance" : "static", outcome_of(e.run(o)));
    }
  }

  // Workload C: BC on hash partitions (already uniform).
  {
    const auto parts = HashPartitioner{}.partition(g, 32);
    for (bool rebalance : {false, true}) {
      ClusterConfig c = base;
      if (rebalance) c.placement = std::make_shared<cloud::GreedyRebalancePlacement>();
      Engine<BcProgram> e(g, {}, c, parts);
      JobOptions o;
      o.roots = roots;
      o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                                  std::make_shared<StaticNInitiation>(4),
                                  memory_target(c.vm));
      add("BC/hash", rebalance ? "rebalance" : "static", outcome_of(e.run(o)));
    }
  }

  t.print(std::cout);

  auto rel = [&rows](const std::string& wl) {
    double stat = 0, reb = 0;
    for (const auto& r : rows)
      if (r.workload == wl) (r.placement == "static" ? stat : reb) = r.o.total;
    return reb / stat;
  };
  std::cout << "\nrebalance/static time ratios: PageRank/skewed " << fmt(rel("PageRank/skewed"), 2)
            << " (expect <1), BC/metis " << fmt(rel("BC/metis"), 2)
            << " (frontier chasing: ~1), BC/hash " << fmt(rel("BC/hash"), 2)
            << " (expect ~1)\n";

  write_csv("ablation_dynamic_placement", [&](CsvWriter& w) {
    w.header({"workload", "placement", "modeled_seconds", "barrier_wait_seconds",
              "utilization"});
    for (const auto& r : rows)
      w.field(r.workload).field(r.placement).field(r.o.total).field(r.o.wait)
          .field(r.o.utilization).end_row();
  });
  return 0;
}
