// Figure 2: total time (log scale) for PageRank, BC and APSP on the WG and
// CP graphs with 8 workers; LJ shown for PageRank only.
//
// Paper: BC and APSP take ~4 orders of magnitude longer than PageRank at the
// same graph size, because they root a traversal at every vertex while
// PageRank does pairwise edge passes. (The paper could not even run BC/APSP
// on LJ — the messages would not fit worker memory; we reproduce that
// observation analytically below.)
//
// Methodology matches the paper: PageRank runs to completion (30
// iterations); BC and APSP run a root sample and are extrapolated to all |V|
// roots ("Since BC traverses the entire graph rooted at each vertex,
// extrapolating results from a subset of vertices is reasonable").
#include <cmath>
#include <iostream>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figure 2 — application runtimes (8 workers, log scale)",
         "BC and APSP ~4 orders of magnitude slower than PageRank; LJ only "
         "feasible for PageRank");

  const std::size_t sample_roots = env().quick ? 3 : 8;
  const int pr_iters = env().quick ? 10 : 30;

  struct Row {
    std::string graph, app;
    Seconds total;
    bool extrapolated;
  };
  std::vector<Row> rows;

  for (const std::string name : {"WG", "CP"}) {
    const Graph& g = dataset(name);
    const auto parts = HashPartitioner{}.partition(g, 8);
    ClusterConfig cluster = make_cluster(env(), 8, 8);
    std::cout << "running " << g.summary() << " ...\n";

    const auto pr = run_pagerank(g, cluster, parts, pr_iters);
    rows.push_back({name, "PageRank", pr.metrics.total_time, false});

    const auto roots = pick_roots(g, sample_roots, env().seed + 11);
    // Small swaths keep the sample runs inside physical memory, exactly how
    // the paper ran its timing samples.
    const auto swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                                         std::make_shared<SequentialInitiation>(),
                                         memory_target(cluster.vm));
    const auto bc = run_bc(g, cluster, parts, roots, swath);
    rows.push_back({name, "BC",
                    extrapolate_total_time(bc.metrics, roots.size(), g.num_vertices()),
                    true});
    const auto apsp = run_apsp(g, cluster, parts, roots, swath);
    rows.push_back({name, "APSP",
                    extrapolate_total_time(apsp.metrics, roots.size(), g.num_vertices()),
                    true});
  }

  {
    const Graph& lj = dataset("LJ");
    const auto parts = HashPartitioner{}.partition(lj, 8);
    ClusterConfig cluster = make_cluster(env(), 8, 8);
    std::cout << "running " << lj.summary() << " (PageRank only) ...\n";
    const auto pr = run_pagerank(lj, cluster, parts, pr_iters);
    rows.push_back({"LJ", "PageRank", pr.metrics.total_time, false});
  }

  TextTable t({"graph", "app", "modeled total", "log10(s)", "extrapolated"});
  for (const auto& r : rows)
    t.add_row({r.graph, r.app, format_seconds(r.total), fmt(std::log10(r.total), 2),
               r.extrapolated ? "yes (to |V| roots)" : "no"});
  t.print(std::cout);

  auto find = [&rows](const std::string& g, const std::string& a) {
    for (const auto& r : rows)
      if (r.graph == g && r.app == a) return r.total;
    return 0.0;
  };
  std::cout << "\norders of magnitude over PageRank:";
  for (const std::string g : {"WG", "CP"}) {
    std::cout << "  " << g << ": BC " << fmt(std::log10(find(g, "BC") / find(g, "PageRank")), 1)
              << ", APSP " << fmt(std::log10(find(g, "APSP") / find(g, "PageRank")), 1);
  }
  std::cout << "  (paper: ~4)\n";

  write_csv("fig2_app_runtimes", [&](CsvWriter& w) {
    w.header({"graph", "app", "modeled_seconds", "extrapolated"});
    for (const auto& r : rows)
      w.field(r.graph).field(r.app).field(r.total).field(r.extrapolated ? "1" : "0").end_row();
  });
  return 0;
}
