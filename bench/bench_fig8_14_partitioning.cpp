// Figures 8-14: the impact of graph partitioning on Pregel/BSP.
//
// One experiment grid — {WG, CP} x {hash, METIS-like, streaming LDG} x
// {PageRank, BC, APSP} — feeds all seven partitioning figures:
//
//   Fig 8   relative total time vs hash (paper: WG improves 42-50% with
//           METIS, 24-35% with streaming; CP does NOT improve — hashing
//           even beats both for APSP on CP)
//   Fig 9   BC time split compute+I/O vs barrier wait + utilization %, WG
//   Fig 12  same for CP (paper: hash has HIGHER utilization yet HIGHER
//           total time; METIS the inverse — the barrier wait exposes
//           partition-local activity maximas)
//   Fig 10/11  per-worker messages in the peak supersteps, hash vs METIS, WG
//   Fig 13/14  same for CP (paper: hash uniform; METIS imbalanced, worse on
//           CP — e.g. 2x spread, 4M vs 2M in superstep 9)
//
// Edge-cut context from the paper: remote edges 87%/18%/35% (WG) and
// 86%/17%/65% (CP) for hash/METIS/streaming.
#include <algorithm>
#include <iostream>
#include <map>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/quality.hpp"
#include "util/ascii_plot.hpp"
#include "util/stats.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

namespace {

struct RunRecord {
  Seconds total = 0.0;
  Seconds busy = 0.0;          // compute + I/O across workers
  Seconds wait = 0.0;          // barrier wait across workers
  double utilization = 0.0;
  /// workers x peak-supersteps message matrix (for Figs 10/11/13/14).
  std::vector<std::vector<std::uint64_t>> peak_matrix;
  std::vector<std::uint64_t> peak_steps;
};

RunRecord record_from(const JobMetrics& m, std::size_t peak_count = 4) {
  RunRecord r;
  r.total = m.total_time;
  r.busy = m.total_busy_time();
  r.wait = m.total_barrier_wait();
  r.utilization = m.utilization();

  // The `peak_count` peak supersteps, in time order. "Peak" is judged by the
  // busiest single worker, because under BSP that worker sets the
  // superstep's duration — which is precisely the effect Figures 10-14
  // exist to show.
  std::vector<std::pair<std::uint64_t, std::size_t>> by_msgs;
  for (std::size_t i = 0; i < m.supersteps.size(); ++i) {
    std::uint64_t busiest = 0;
    for (const auto& w : m.supersteps[i].workers)
      busiest = std::max(busiest, w.messages_sent_total());
    by_msgs.emplace_back(busiest, i);
  }
  std::sort(by_msgs.rbegin(), by_msgs.rend());
  std::vector<std::size_t> picked;
  for (std::size_t i = 0; i < std::min(peak_count, by_msgs.size()); ++i)
    picked.push_back(by_msgs[i].second);
  std::sort(picked.begin(), picked.end());

  for (std::size_t idx : picked) {
    const auto& sm = m.supersteps[idx];
    r.peak_steps.push_back(sm.superstep);
    std::vector<std::uint64_t> row;
    for (const auto& w : sm.workers) row.push_back(w.messages_sent_total());
    r.peak_matrix.push_back(std::move(row));
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Figures 8-14 — partitioning impact on Pregel/BSP (8 workers)",
         "good partitioning helps WG (42-50% with METIS) but not CP: barrier "
         "synchronization turns METIS's activity concentration into wait time");

  const std::vector<std::string> partitioners{"hash", "metis", "stream"};
  const std::vector<std::string> apps{"PageRank", "BC", "APSP"};
  // graph -> partitioner -> app -> record
  std::map<std::string, std::map<std::string, std::map<std::string, RunRecord>>> grid;
  std::map<std::string, std::map<std::string, double>> remote_frac;

  const int pr_iters = env().quick ? 10 : 30;
  const std::uint32_t swath_size = env().quick ? 4 : 10;

  for (const std::string gname : {"WG", "CP"}) {
    const Graph& g = dataset(gname);
    const std::size_t n_roots = env().quick ? 10 : (gname == "WG" ? 75 : 50);
    const auto roots = pick_roots(g, n_roots, env().seed + 31);
    ClusterConfig cluster = make_cluster(env(), 8, 8);
    const auto swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(swath_size),
                                         std::make_shared<SequentialInitiation>(),
                                         memory_target(cluster.vm));

    for (const auto& pname : partitioners) {
      std::cout << gname << " / " << pname << ": partitioning ... " << std::flush;
      const auto partitioner = make_partitioner(pname, env().seed);
      const auto parts = partitioner->partition(g, 8);
      const auto q = evaluate_partition(g, parts);
      remote_frac[gname][pname] = q.remote_edge_fraction;
      std::cout << "remote edges " << fmt(q.remote_edge_fraction * 100, 1) << "%\n";

      std::cout << "  PageRank ... " << std::flush;
      grid[gname][pname]["PageRank"] =
          record_from(run_pagerank(g, cluster, parts, pr_iters).metrics);
      std::cout << "BC ... " << std::flush;
      grid[gname][pname]["BC"] = record_from(run_bc(g, cluster, parts, roots, swath).metrics);
      std::cout << "APSP ...\n";
      grid[gname][pname]["APSP"] =
          record_from(run_apsp(g, cluster, parts, roots, swath).metrics);
    }
  }

  // ---- Figure 8: relative time vs hash --------------------------------------
  std::cout << "\n--- Figure 8: time relative to hash partitioning (smaller=better) ---\n";
  std::cout << "paper remote-edge %: WG 87/18/35, CP 86/17/65 (hash/METIS/stream)\n";
  TextTable t8({"graph", "app", "hash", "metis", "stream", "metis rel", "stream rel"});
  for (const std::string gname : {"WG", "CP"}) {
    for (const auto& app : apps) {
      const double th = grid[gname]["hash"][app].total;
      const double tm = grid[gname]["metis"][app].total;
      const double ts = grid[gname]["stream"][app].total;
      t8.add_row({gname, app, format_seconds(th), format_seconds(tm), format_seconds(ts),
                  fmt(tm / th, 2), fmt(ts / th, 2)});
    }
  }
  t8.print(std::cout);

  // ---- Figures 9 / 12: BC time breakdown ------------------------------------
  for (const std::string gname : {"WG", "CP"}) {
    std::cout << "\n--- Figure " << (gname == "WG" ? "9" : "12")
              << ": BC time breakdown on " << gname << " ---\n";
    TextTable t({"partitioner", "compute+I/O", "barrier wait", "total", "utilization %"});
    for (const auto& pname : partitioners) {
      const auto& r = grid[gname][pname]["BC"];
      t.add_row({pname, format_seconds(r.busy), format_seconds(r.wait),
                 format_seconds(r.total), fmt(r.utilization * 100, 1)});
    }
    t.print(std::cout);
  }

  // ---- Figures 10/11/13/14: per-worker messages in peak supersteps ----------
  for (const std::string gname : {"WG", "CP"}) {
    for (const std::string pname : {"hash", "metis"}) {
      const char* fig = gname == "WG" ? (pname == "hash" ? "10" : "11")
                                      : (pname == "hash" ? "13" : "14");
      std::cout << "\n--- Figure " << fig << ": per-worker messages, peak supersteps, BC on "
                << gname << " with " << pname << " ---\n";
      const auto& r = grid[gname][pname]["BC"];
      std::vector<std::string> headers{"superstep"};
      for (std::size_t w = 0; w < 8; ++w) headers.push_back("w" + std::to_string(w));
      headers.push_back("max/mean");
      TextTable t(headers);
      for (std::size_t i = 0; i < r.peak_matrix.size(); ++i) {
        RunningStats s;
        std::vector<std::string> row{std::to_string(r.peak_steps[i])};
        for (auto m : r.peak_matrix[i]) {
          row.push_back(format_count(m));
          s.add(static_cast<double>(m));
        }
        row.push_back(fmt(s.imbalance(), 2));
        t.add_row(std::move(row));
      }
      t.print(std::cout);
    }
  }

  // Shape checks.
  std::cout << "\nshape checks:\n";
  const double wg_metis_rel = grid["WG"]["metis"]["BC"].total / grid["WG"]["hash"]["BC"].total;
  const double cp_metis_rel = grid["CP"]["metis"]["BC"].total / grid["CP"]["hash"]["BC"].total;
  std::cout << "  WG BC: METIS relative time " << fmt(wg_metis_rel, 2)
            << " (paper ~0.5-0.58) -> improvement " << (wg_metis_rel < 0.9 ? "YES" : "NO")
            << "\n";
  std::cout << "  CP BC: METIS relative time " << fmt(cp_metis_rel, 2)
            << " (paper: ~1.0, i.e. no improvement — see EXPERIMENTS.md on why the\n"
               "  crossover needs the paper's cost regime; the imbalance mechanism\n"
               "  behind it is checked below)\n";
  auto peak_imbalance = [](const RunRecord& r) {
    double worst = 1.0;
    for (const auto& row : r.peak_matrix) {
      RunningStats s;
      for (auto v : row) s.add(static_cast<double>(v));
      worst = std::max(worst, s.imbalance());
    }
    return worst;
  };
  const double cp_hash_imb = peak_imbalance(grid["CP"]["hash"]["BC"]);
  const double cp_metis_imb = peak_imbalance(grid["CP"]["metis"]["BC"]);
  std::cout << "  CP BC peak-superstep worker imbalance (max/mean): hash "
            << fmt(cp_hash_imb, 2) << " vs METIS " << fmt(cp_metis_imb, 2)
            << " (paper: ~1.0 vs ~2.0) -> activity maximas "
            << (cp_metis_imb > 1.5 * cp_hash_imb ? "PRESENT" : "absent") << "\n";
  const double wg_hash_util = grid["WG"]["hash"]["BC"].utilization;
  const double wg_metis_util = grid["WG"]["metis"]["BC"].utilization;
  std::cout << "  WG BC: hash utilization (" << fmt(wg_hash_util * 100, 1)
            << "%) > METIS utilization (" << fmt(wg_metis_util * 100, 1)
            << "%)? " << (wg_hash_util > wg_metis_util ? "YES (matches paper)" : "no")
            << "\n";

  // CSVs per figure.
  write_csv("fig8_partition_relative_time", [&](CsvWriter& w) {
    w.header({"graph", "partitioner", "app", "modeled_seconds", "relative_to_hash",
              "remote_edge_fraction"});
    for (const std::string gname : {"WG", "CP"})
      for (const auto& pname : partitioners)
        for (const auto& app : apps) {
          const auto& r = grid[gname][pname][app];
          w.field(gname).field(pname).field(app).field(r.total)
              .field(r.total / grid[gname]["hash"][app].total)
              .field(remote_frac[gname][pname]).end_row();
        }
  });
  write_csv("fig9_12_time_breakdown", [&](CsvWriter& w) {
    w.header({"graph", "partitioner", "busy_seconds", "wait_seconds", "total_seconds",
              "utilization"});
    for (const std::string gname : {"WG", "CP"})
      for (const auto& pname : partitioners) {
        const auto& r = grid[gname][pname]["BC"];
        w.field(gname).field(pname).field(r.busy).field(r.wait).field(r.total)
            .field(r.utilization).end_row();
      }
  });
  write_csv("fig10_14_worker_message_balance", [&](CsvWriter& w) {
    w.header({"graph", "partitioner", "superstep", "worker", "messages_sent"});
    for (const std::string gname : {"WG", "CP"})
      for (const std::string pname : {"hash", "metis"}) {
        const auto& r = grid[gname][pname]["BC"];
        for (std::size_t i = 0; i < r.peak_matrix.size(); ++i)
          for (std::size_t wi = 0; wi < r.peak_matrix[i].size(); ++wi)
            w.field(gname).field(pname).field(r.peak_steps[i]).field(std::uint64_t{wi})
                .field(r.peak_matrix[i][wi]).end_row();
      }
  });
  return 0;
}
