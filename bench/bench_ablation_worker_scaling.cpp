// Ablation: static scaling curve — modeled time and cost for 1..8 workers,
// PageRank (communication-bound, uniform) vs BC (memory-pressure-prone,
// bursty). The paper scopes itself to "medium-scale" clusters (10-100s of
// cores) and cost-consciousness; this sweep shows where each workload stops
// benefiting from more paid VMs — BSP barrier overhead grows with the
// worker count while per-VM memory pressure shrinks.
#include <iostream>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/ascii_plot.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::harness;

int main(int argc, char** argv) {
  harness::init(argc, argv);
  banner("Ablation — static worker-count scaling (WG analog)",
         "speedup saturates as barriers grow; BC additionally gains "
         "superlinearly while added workers relieve memory pressure");

  const Graph& g = dataset("WG");
  const auto parts = HashPartitioner{}.partition(g, 8);  // 8 partitions always
  const int pr_iters = env().quick ? 5 : 15;
  const std::size_t n_roots = env().quick ? 6 : 16;
  const auto roots = pick_roots(g, n_roots, env().seed + 53);

  TextTable t({"workers", "PageRank time", "PR speedup", "PR cost", "BC time",
               "BC speedup", "BC cost", "BC peak mem"});
  struct Row {
    std::uint32_t workers;
    Seconds pr, bc;
    Usd pr_cost, bc_cost;
    Bytes bc_mem;
  };
  std::vector<Row> rows;

  for (std::uint32_t w : {1u, 2u, 4u, 6u, 8u}) {
    ClusterConfig c = make_cluster(env(), 8, w);
    const auto pr = run_pagerank(g, c, parts, pr_iters);

    JobOptions bco;
    bco.roots = roots;
    bco.fail_on_vm_restart = false;
    bco.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(8),
                                  std::make_shared<StaticNInitiation>(6),
                                  memory_target(c.vm));
    Engine<BcProgram> be(g, {}, c, parts);
    const auto bc = be.run(bco);

    rows.push_back({w, pr.metrics.total_time, bc.metrics.total_time, pr.metrics.cost_usd,
                    bc.metrics.cost_usd, bc.metrics.peak_worker_memory()});
  }

  for (const auto& r : rows) {
    t.add_row({std::to_string(r.workers), format_seconds(r.pr),
               fmt(rows[0].pr / r.pr, 2) + "x", format_usd(r.pr_cost), format_seconds(r.bc),
               fmt(rows[0].bc / r.bc, 2) + "x", format_usd(r.bc_cost),
               format_bytes(r.bc_mem)});
  }
  t.print(std::cout);

  std::vector<std::pair<std::string, double>> bars;
  for (const auto& r : rows)
    bars.emplace_back("BC " + std::to_string(r.workers) + "w", rows[0].bc / r.bc);
  std::cout << "\n" << ascii_bar_chart(bars, 50, "BC speedup vs 1 worker", 1.0);

  write_csv("ablation_worker_scaling", [&](CsvWriter& w) {
    w.header({"workers", "pagerank_seconds", "pagerank_cost_usd", "bc_seconds",
              "bc_cost_usd", "bc_peak_worker_memory"});
    for (const auto& r : rows)
      w.field(std::uint64_t{r.workers}).field(r.pr).field(r.pr_cost).field(r.bc)
          .field(r.bc_cost).field(r.bc_mem).end_row();
  });
  return 0;
}
