// Scheduler throughput: jobs/hour-per-dollar of a shared pool under a mixed
// workload (docs/SCHEDULER.md).
//
// A fixed 8-job plan — PageRank, SSSP, and connected components at three
// graph scales with staggered arrivals, two users, and mixed priorities —
// is replayed through JobScheduler under each queue policy on the same pool.
// The driver reports, per policy: makespan, total modeled cost (job spend
// plus preemption overheads), mean wait, pool utilization, and the headline
// jobs_per_hour_per_usd, plus the per-job rows. The comparison is the point:
// both policies run *exactly* the same jobs (bit-identical results each), so
// every difference in the table is pure scheduling.
#include <iostream>
#include <memory>
#include <vector>

#include "algos/components.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "harness/bench_report.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "runtime/metrics_io.hpp"
#include "sched/scheduler.hpp"

using namespace pregel;
using namespace pregel::algos;
using namespace pregel::sched;

namespace {

struct Workload {
  Graph small, medium, large;
  Partitioning small_parts, medium_parts, large_parts;
};

Workload make_workload(bool quick) {
  Workload w;
  const VertexId scale = quick ? 1 : 4;
  w.small = watts_strogatz(400 * scale, 6, 0.1, 11);
  w.medium = barabasi_albert(800 * scale, 4, 22);
  w.large = erdos_renyi(1500 * scale, 6000 * scale, 33);
  w.small_parts = HashPartitioner{}.partition(w.small, 8);
  w.medium_parts = HashPartitioner{}.partition(w.medium, 8);
  w.large_parts = HashPartitioner{}.partition(w.large, 8);
  return w;
}

ClusterConfig job_cluster(std::uint32_t workers) {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = workers;
  return c;
}

/// The mixed 8-job plan. Arrival times stagger jobs into real contention on
/// a 8-VM pool (aggregate demand peaks at 3x capacity).
void submit_plan(JobScheduler& s, const Workload& w) {
  JobOptions all;
  all.start_all_vertices = true;
  JobOptions root0;
  root0.roots = {0};

  JobSpec spec;
  spec.name = "pr-small";
  spec.user = "alice";
  spec.priority = 1;
  spec.arrival = 0.0;
  s.submit(spec, std::make_unique<TypedJob<PageRankProgram>>(
                     w.small, PageRankProgram{10, 0.85}, job_cluster(4),
                     w.small_parts, all));

  spec = {.name = "sssp-medium", .user = "bob", .priority = 0, .arrival = 0.5};
  s.submit(spec, std::make_unique<TypedJob<SsspProgram>>(
                     w.medium, SsspProgram{}, job_cluster(4), w.medium_parts, root0));

  spec = {.name = "cc-large", .user = "alice", .priority = 2, .arrival = 1.0};
  s.submit(spec, std::make_unique<TypedJob<ComponentsProgram>>(
                     w.large, ComponentsProgram{}, job_cluster(8), w.large_parts, all));

  spec = {.name = "pr-large", .user = "bob", .priority = 0, .arrival = 1.5};
  s.submit(spec, std::make_unique<TypedJob<PageRankProgram>>(
                     w.large, PageRankProgram{8, 0.85}, job_cluster(8), w.large_parts,
                     all));

  spec = {.name = "sssp-small", .user = "alice", .priority = 3, .arrival = 2.0};
  s.submit(spec, std::make_unique<TypedJob<SsspProgram>>(
                     w.small, SsspProgram{}, job_cluster(2), w.small_parts, root0));

  spec = {.name = "cc-medium", .user = "bob", .priority = 1, .arrival = 2.5};
  s.submit(spec, std::make_unique<TypedJob<ComponentsProgram>>(
                     w.medium, ComponentsProgram{}, job_cluster(4), w.medium_parts,
                     all));

  spec = {.name = "pr-medium", .user = "alice", .priority = 0, .arrival = 3.0};
  s.submit(spec, std::make_unique<TypedJob<PageRankProgram>>(
                     w.medium, PageRankProgram{12, 0.85}, job_cluster(4),
                     w.medium_parts, all));

  spec = {.name = "sssp-large", .user = "bob", .priority = 2, .arrival = 3.5};
  s.submit(spec, std::make_unique<TypedJob<SsspProgram>>(
                     w.large, SsspProgram{}, job_cluster(4), w.large_parts, root0));
}

}  // namespace

int main(int argc, char** argv) {
  harness::init(argc, argv);
  harness::banner("Scheduler throughput — jobs/hour-per-$ on a shared 8-VM pool",
         "multi-job BSP scheduling: policy choice moves cost-efficiency "
         "without touching any job's results");

  const Workload w = make_workload(harness::env().quick);
  harness::BenchReport report("sched_throughput");

  TextTable table({"policy", "completed", "makespan_s", "cost_usd", "mean_wait_s",
                   "preempt", "scale_ins", "utilization", "jobs/h/$"});

  struct PolicyCase {
    const char* label;
    std::shared_ptr<QueuePolicy> policy;
  };
  const PolicyCase cases[] = {
      {"fair-share", std::make_shared<FairSharePolicy>()},
      {"priority", std::make_shared<PriorityPolicy>()},
  };

  for (const auto& pc : cases) {
    SchedulerOptions opts;
    opts.pool_vms = 8;
    opts.policy = pc.policy;
    JobScheduler scheduler(opts);
    submit_plan(scheduler, w);
    scheduler.run_all();

    const PoolMetrics& pool = scheduler.pool();
    const double mean_wait =
        pool.jobs_submitted > 0
            ? pool.total_wait / static_cast<double>(pool.jobs_submitted)
            : 0.0;
    table.add_row({pc.label, std::to_string(pool.jobs_completed),
                   fmt(pool.makespan, 1), fmt(pool.total_cost_usd, 4),
                   fmt(mean_wait, 1), std::to_string(pool.preemptions),
                   std::to_string(pool.scale_ins), fmt(pool.pool_utilization, 3),
                   fmt(pool.jobs_per_hour_per_usd, 2)});

    // The modeled pipeline is deterministic, so one repetition carries the
    // series; wall-seconds record how long the simulation itself took only.
    report.add_sample(pc.label, pool.makespan);
    report.set_series_counter(pc.label, "jobs_per_hour_per_usd",
                              pool.jobs_per_hour_per_usd);
    report.set_series_counter(pc.label, "jobs_completed", pool.jobs_completed);
    report.set_series_counter(pc.label, "total_cost_usd", pool.total_cost_usd);
    report.set_series_counter(pc.label, "makespan_s", pool.makespan);
    report.set_series_counter(pc.label, "preemptions", pool.preemptions);
    report.set_series_counter(pc.label, "pool_scale_ins", pool.scale_ins);
    report.set_series_counter(pc.label, "pool_utilization", pool.pool_utilization);

    std::cout << "\n--- policy " << pc.label << " ---\n";
    write_pool_summary(pool, std::cout);
    write_pool_metrics_csv(pool, scheduler.rows(), std::cout);

    if (pool.jobs_completed != pool.jobs_submitted) {
      std::cerr << "FAIL: " << pc.label << " completed " << pool.jobs_completed
                << "/" << pool.jobs_submitted << " jobs\n";
      return 1;
    }
  }

  std::cout << "\n";
  table.print(std::cout);
  report.write_file(harness::env().results_dir + "/BENCH_sched_throughput.json");
  return 0;
}
