// Chaos soak harness: randomized fault plans composed with adversarial
// memory budgets over seeded, fully deterministic schedules.
//
// Each seed derives one scenario (workload, graph, cluster shape, fault
// plan, governor budget) from a SplitMix64 stream, runs a fault-free
// baseline with generous memory, then re-runs under chaos — transient
// queue/blob faults, blob corruption, preemptions, stragglers, scheduled
// VM failures, checkpoint/recovery, and the memory-pressure governor with
// a budget squeezed between the baseline's floor and peak. The chaos run
// must complete and produce bit-identical vertex values.
//
// On any divergence the harness prints a one-line deterministic repro
//   SOAK-FAIL seed=<s> ... repro: chaos_soak --seed <s> [--smoke]
// and exits nonzero. `--smoke` shrinks graphs and the seed count for the
// PR-CI lane; the nightly workflow sweeps a wide random seed range.
#include <algorithm>
#include <cstdint>
#include <cstring>
#include <exception>
#include <fstream>
#include <iostream>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include <deque>
#include <memory>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"
#include "runtime/trace.hpp"
#include "sched/scheduler.hpp"
#include "subgraph/components.hpp"
#include "util/rng.hpp"

namespace {

using namespace pregel;
using algos::BcProgram;
using algos::PageRankProgram;
using algos::SsspProgram;

struct CliOptions {
  std::uint64_t seeds = 25;
  std::uint64_t seed_base = 2013;
  bool smoke = false;
  std::optional<std::uint64_t> single_seed;
  std::string trace_dir;  ///< when set, dump a Chrome trace per failing seed
};

std::uint64_t uniform_int(SplitMix64& rng, std::uint64_t lo, std::uint64_t hi) {
  return lo + rng() % (hi - lo + 1);
}

double uniform_real(SplitMix64& rng, double lo, double hi) {
  const double u = static_cast<double>(rng() >> 11) * 0x1.0p-53;
  return lo + u * (hi - lo);
}

struct MemoryEnvelope {
  Bytes floor = 0;  ///< min superstep peak: ~graph baseline
  Bytes peak = 0;   ///< max superstep peak under generous memory
};

MemoryEnvelope envelope_of(const JobMetrics& m) {
  MemoryEnvelope e;
  e.floor = std::numeric_limits<Bytes>::max();
  for (const auto& sm : m.supersteps) {
    e.floor = std::min(e.floor, sm.max_worker_memory());
    e.peak = std::max(e.peak, sm.max_worker_memory());
  }
  if (m.supersteps.empty()) e.floor = 0;
  return e;
}

/// Shared chaos knobs drawn per seed: the cluster-level fault plan plus the
/// governor's budget squeeze factor.
struct ChaosDraw {
  ClusterConfig cluster;
  double squeeze = 0.0;  ///< where between floor and peak the budget lands
  bool spill_enabled = true;
  /// Governor may take the scale-out rung instead of a shed rewind (needs a
  /// spare VM slot; migration makes the grown layout physical).
  bool scale_out_enabled = false;
  std::string describe;
};

ChaosDraw draw_chaos(SplitMix64& rng, std::uint32_t partitions) {
  ChaosDraw d;
  d.cluster.num_partitions = partitions;
  d.cluster.initial_workers =
      static_cast<std::uint32_t>(uniform_int(rng, 2, partitions));
  d.cluster.checkpoint_interval = uniform_int(rng, 2, 5);
  d.cluster.recovery_mode =
      (rng() & 1) ? RecoveryMode::kConfined : RecoveryMode::kFullRollback;

  d.cluster.faults.queue_op_failure_rate = uniform_real(rng, 0.0, 0.04);
  d.cluster.faults.blob_read_failure_rate = uniform_real(rng, 0.0, 0.06);
  d.cluster.faults.blob_write_failure_rate = uniform_real(rng, 0.0, 0.04);
  // Blob reads happen on recovery/shed paths only, so the corruption rate
  // is drawn high enough that those few reads still exercise verification.
  d.cluster.faults.blob_corruption_rate = uniform_real(rng, 0.0, 0.3);
  // Queue ops run every superstep (step/barrier control traffic), so the
  // corruption rate stays low to keep retry storms bounded.
  d.cluster.faults.queue_corruption_rate = uniform_real(rng, 0.0, 0.08);
  d.cluster.faults.vm_preemption_rate = uniform_real(rng, 0.0, 0.006);
  d.cluster.faults.straggler_rate = uniform_real(rng, 0.0, 0.12);
  d.cluster.faults.straggler_slowdown = uniform_real(rng, 2.0, 6.0);
  d.cluster.faults.queue_seed = rng();
  d.cluster.faults.blob_seed = rng();
  d.cluster.faults.preemption_seed = rng();
  d.cluster.faults.straggler_seed = rng();
  d.cluster.faults.corruption_seed = rng();
  d.cluster.faults.queue_corruption_seed = rng();
  d.cluster.straggler_timeout_factor = (rng() & 1) ? uniform_real(rng, 2.0, 4.0) : 0.0;

  // Live migration rides along on half the scenarios: periodic activity
  // replans must stay invisible in every compared value.
  if (rng() & 1) {
    d.cluster.migration.planner =
        std::make_shared<ActivityGreedyPlanner>(uniform_real(rng, 0.05, 0.3));
    d.cluster.migration.period = uniform_int(rng, 1, 3);
  }
  d.scale_out_enabled = (rng() & 1) != 0;

  const std::uint64_t scheduled = uniform_int(rng, 0, 2);
  for (std::uint64_t i = 0; i < scheduled; ++i)
    d.cluster.scheduled_failures.emplace_back(
        uniform_int(rng, 1, 14),
        static_cast<std::uint32_t>(uniform_int(rng, 0, d.cluster.initial_workers - 1)));

  d.squeeze = uniform_real(rng, 0.45, 0.9);
  d.spill_enabled = (rng() & 1) != 0;

  // Control plane: a fallible job manager and at-least-once barrier
  // redelivery on every scenario; correlated zone outages on multi-zone
  // draws (kept rare — a whole domain dies at once, and an outage landing
  // before the first checkpoint legitimately loses the job, same as an
  // early preemption). Drawn after everything above so the legacy part of
  // a seed's scenario is unchanged.
  d.cluster.faults.manager_preemption_rate = uniform_real(rng, 0.0, 0.03);
  d.cluster.faults.queue_duplicate_rate = uniform_real(rng, 0.0, 0.1);
  d.cluster.faults.manager_seed = rng();
  d.cluster.faults.queue_duplicate_seed = rng();
  d.cluster.availability_zones = static_cast<std::uint32_t>(uniform_int(rng, 1, 3));
  if (d.cluster.availability_zones > 1) {
    d.cluster.faults.zone_outage_rate = uniform_real(rng, 0.0, 0.004);
    d.cluster.faults.zone_seed = rng();
  }

  // Generational checkpoint store: torn leg/manifest writes, at-rest rot,
  // delta chains, and the background scrub all ride along (drawn last so the
  // legacy part of a seed's scenario is unchanged). Tear/rot rates stay low:
  // a deep multi-generation fallback replays many supersteps and the
  // runaway guard bounds total executed supersteps per scenario.
  d.cluster.faults.ckpt_torn_write_rate = uniform_real(rng, 0.0, 0.05);
  d.cluster.faults.ckpt_rot_rate = uniform_real(rng, 0.0, 0.1);
  d.cluster.faults.ckpt_seed = rng();
  d.cluster.ckpt.delta_enabled = (rng() & 1) != 0;
  d.cluster.ckpt.max_chain_length = static_cast<std::uint32_t>(uniform_int(rng, 1, 4));
  d.cluster.ckpt.retained_generations = static_cast<std::uint32_t>(uniform_int(rng, 1, 3));
  d.cluster.ckpt.scrub_period = static_cast<std::uint32_t>(uniform_int(rng, 0, 3));

  d.describe = "workers=" + std::to_string(d.cluster.initial_workers) +
               " ckpt=" + std::to_string(d.cluster.checkpoint_interval) +
               " recovery=" + to_string(d.cluster.recovery_mode) +
               " squeeze=" + std::to_string(d.squeeze) +
               (d.spill_enabled ? " spill=on" : " spill=off") +
               (d.cluster.migration.enabled()
                    ? " migrate=p" + std::to_string(d.cluster.migration.period)
                    : " migrate=off") +
               (d.scale_out_enabled ? " scale-out=on" : "") +
               " zones=" + std::to_string(d.cluster.availability_zones) +
               (d.cluster.ckpt.delta_enabled
                    ? " delta=c" + std::to_string(d.cluster.ckpt.max_chain_length)
                    : " delta=off") +
               " scrub=" + std::to_string(d.cluster.ckpt.scrub_period);
  return d;
}

/// The governor's budget: squeezed between the baseline floor and peak,
/// with a minimum of 25% headroom over the resident graph so a one-root
/// swath always fits.
Bytes squeezed_target(const MemoryEnvelope& e, double squeeze) {
  const Bytes span = e.peak > e.floor ? e.peak - e.floor : 0;
  const Bytes mid = e.floor + static_cast<Bytes>(static_cast<double>(span) * squeeze);
  return std::max(mid, e.floor + e.floor / 4 + 4096);
}

MemGovernorConfig soak_governor(bool spill_enabled, bool scale_out_enabled) {
  MemGovernorConfig cfg;
  cfg.enabled = true;
  cfg.spill_enabled = spill_enabled;
  cfg.scale_out_enabled = scale_out_enabled;
  return cfg;
}

Graph make_graph(SplitMix64& rng, bool smoke, std::string& kind) {
  const std::uint64_t which = uniform_int(rng, 0, 2);
  const VertexId n = smoke ? 240 : 800;
  const std::uint64_t gseed = rng();
  switch (which) {
    case 0: kind = "ws"; return watts_strogatz(n, 6, 0.15, gseed);
    case 1: kind = "ba"; return barabasi_albert(n, 3, gseed);
    default: kind = "er"; return erdos_renyi(n, static_cast<EdgeIndex>(n) * 4, gseed);
  }
}

struct SeedOutcome {
  bool ok = true;
  std::string detail;  ///< first divergence / failure reason
  std::string stats;   ///< one-line chaos metrics for the log
};

std::string chaos_stats(const JobMetrics& m) {
  return "supersteps=" + std::to_string(m.total_supersteps()) +
         " failures=" + std::to_string(m.worker_failures) +
         " faults=" + std::to_string(m.faults_injected) +
         " corruptions=" + std::to_string(m.blob_corruptions) + "+" +
         std::to_string(m.queue_corruptions) + "q" +
         " sheds=" + std::to_string(m.governor_sheds) +
         " spills=" + std::to_string(m.governor_spills) +
         " scale_outs=" + std::to_string(m.governor_scale_outs) +
         " migrations=" + std::to_string(m.migrations) +
         " oom_episodes=" + std::to_string(m.governed_oom_episodes) +
         " failovers=" + std::to_string(m.manager_failovers) +
         " dup=" + std::to_string(m.barrier_duplicates) +
         " zone_outages=" + std::to_string(m.zone_outages) +
         " ckpt_fallbacks=" + std::to_string(m.checkpoint_fallbacks) +
         " torn=" + std::to_string(m.checkpoint_torn_legs) + "+" +
         std::to_string(m.checkpoint_torn_manifests) + "m" +
         " scrub_repairs=" + std::to_string(m.scrub_repairs);
}

/// Multi-source SSSP under chaos. Roots are staggered in per-superstep
/// swaths; the governor may veto, clamp, spill, park roots, or force
/// governed-OOM restores. Distances form a min-lattice, so the fixpoint is
/// schedule-independent and must match the baseline bit for bit.
SeedOutcome run_sssp_scenario(SplitMix64& rng, bool smoke, std::string& desc) {
  std::string kind;
  const Graph g = make_graph(rng, smoke, kind);
  const std::uint32_t partitions = 4;
  const auto parts = HashPartitioner{}.partition(g, partitions);

  const std::uint64_t n_roots = smoke ? 8 : 16;
  std::set<VertexId> root_set;
  while (root_set.size() < n_roots)
    root_set.insert(static_cast<VertexId>(rng() % g.num_vertices()));
  const std::vector<VertexId> roots(root_set.begin(), root_set.end());

  ChaosDraw chaos = draw_chaos(rng, partitions);
  desc = "workload=sssp graph=" + kind + " " + chaos.describe;

  // Fault-free, memory-unconstrained baseline: all roots in one swath. It
  // runs with the chaos worker count so the measured envelope reflects the
  // same partition-per-VM packing the chaos run will see.
  ClusterConfig calm;
  calm.num_partitions = partitions;
  calm.initial_workers = chaos.cluster.initial_workers;
  calm.vm.ram = 64_GiB;
  Engine<SsspProgram> baseline_engine(g, {}, calm, parts);
  JobOptions calm_opts;
  calm_opts.roots = roots;
  const auto baseline = baseline_engine.run(calm_opts);
  if (baseline.failed) return {false, "baseline failed: " + baseline.failure_reason, ""};
  const MemoryEnvelope env = envelope_of(baseline.metrics);

  // Chaos: staggered swaths, adversarial governor budget. The VM keeps
  // headroom over the true peak: SSSP waves live inside checkpoints (roots
  // never complete), so a budget the resident checkpointed state cannot fit
  // under would exhaust the ladder by construction rather than reveal a
  // bug. Thrash-restart absorption (rung 3) is exercised by the engine
  // tests; here the squeeze drives veto/clamp, spill, and shed instead.
  const Bytes target = squeezed_target(env, chaos.squeeze);
  chaos.cluster.vm.ram = std::max(env.peak + env.peak / 4, 2 * env.floor + 8192);
  const auto swath_size =
      static_cast<std::uint32_t>(uniform_int(rng, 2, roots.size()));
  Engine<SsspProgram> chaos_engine(g, {}, chaos.cluster, parts);
  JobOptions chaos_opts;
  chaos_opts.roots = roots;
  chaos_opts.swath =
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(swath_size),
                        std::make_shared<StaticNInitiation>(1), target);
  chaos_opts.governor = soak_governor(chaos.spill_enabled, chaos.scale_out_enabled);
  const auto r = chaos_engine.run(chaos_opts);
  if (r.failed) return {false, "chaos run failed: " + r.failure_reason, ""};

  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (r.values[v].distance != baseline.values[v].distance)
      return {false,
              "distance mismatch at vertex " + std::to_string(v) + ": " +
                  std::to_string(r.values[v].distance) + " != " +
                  std::to_string(baseline.values[v].distance),
              ""};
  return {true, "", chaos_stats(r.metrics)};
}

/// PageRank under chaos: fixed-iteration, every vertex active. There are no
/// roots to park, so the VM keeps headroom over the true peak (a restart
/// could only replay the same all-active superstep); the governor's spill
/// rung and the full fault/recovery machinery still run against it.
SeedOutcome run_pagerank_scenario(SplitMix64& rng, bool smoke, std::string& desc) {
  std::string kind;
  const Graph g = make_graph(rng, smoke, kind);
  const std::uint32_t partitions = 4;
  const auto parts = HashPartitioner{}.partition(g, partitions);
  const int iterations = static_cast<int>(uniform_int(rng, 10, 20));

  ChaosDraw chaos = draw_chaos(rng, partitions);
  desc = "workload=pagerank graph=" + kind + " iters=" + std::to_string(iterations) +
         " " + chaos.describe;

  ClusterConfig calm;
  calm.num_partitions = partitions;
  calm.initial_workers = chaos.cluster.initial_workers;
  calm.vm.ram = 64_GiB;
  Engine<PageRankProgram> baseline_engine(g, {iterations, 0.85}, calm, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto baseline = baseline_engine.run(opts);
  if (baseline.failed) return {false, "baseline failed: " + baseline.failure_reason, ""};
  const MemoryEnvelope env = envelope_of(baseline.metrics);

  const Bytes target = squeezed_target(env, chaos.squeeze);
  chaos.cluster.vm.ram = std::max(env.peak + env.peak / 5, 2 * env.floor + 8192);
  JobOptions chaos_job = opts;
  chaos_job.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(1),
                                      std::make_shared<SequentialInitiation>(), target);
  chaos_job.governor = soak_governor(chaos.spill_enabled, chaos.scale_out_enabled);
  Engine<PageRankProgram> chaos_engine(g, {iterations, 0.85}, chaos.cluster, parts);
  const auto r = chaos_engine.run(chaos_job);
  if (r.failed) return {false, "chaos run failed: " + r.failure_reason, ""};

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    // Bitwise comparison, deliberately stricter than any epsilon: recovery
    // replays and governor interventions must reproduce the exact doubles.
    if (std::memcmp(&r.values[v].rank, &baseline.values[v].rank, sizeof(double)) != 0)
      return {false,
              "rank mismatch at vertex " + std::to_string(v) + ": " +
                  std::to_string(r.values[v].rank) + " != " +
                  std::to_string(baseline.values[v].rank),
              ""};
  }
  return {true, "", chaos_stats(r.metrics)};
}

/// Swathed BC under chaos — the migration stress case: per-root state rides
/// along on every vertex move, double aggregates and root completions replay
/// by rank, and Kahan-compensated scores must still land bit-identical.
///
/// BC's score accumulation order depends on the swath schedule, so the
/// baseline is SCHEDULE-MATCHED: same swath policy, fault-free, generous
/// memory, and no governor on either side (a shed rewind would park roots
/// and legitimately reorder the accumulation — that bitwise-breaking rung is
/// exercised by the SSSP scenario, whose min-lattice fixpoint is schedule-
/// independent). Faults, recovery replays, and migrations stay in.
SeedOutcome run_bc_scenario(SplitMix64& rng, bool smoke, std::string& desc) {
  std::string kind;
  const Graph g = make_graph(rng, smoke, kind);
  const std::uint32_t partitions = 4;
  const auto parts = HashPartitioner{}.partition(g, partitions);

  const std::uint64_t n_roots = smoke ? 6 : 12;
  std::set<VertexId> root_set;
  while (root_set.size() < n_roots)
    root_set.insert(static_cast<VertexId>(rng() % g.num_vertices()));
  const std::vector<VertexId> roots(root_set.begin(), root_set.end());

  ChaosDraw chaos = draw_chaos(rng, partitions);
  desc = "workload=bc graph=" + kind + " roots=" + std::to_string(roots.size()) +
         " " + chaos.describe;

  const auto swath_size =
      static_cast<std::uint32_t>(uniform_int(rng, 2, roots.size()));
  const auto initiate_every = uniform_int(rng, 2, 4);
  const SwathPolicy swath =
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(swath_size),
                        std::make_shared<StaticNInitiation>(initiate_every), 0);

  ClusterConfig calm;
  calm.num_partitions = partitions;
  calm.initial_workers = chaos.cluster.initial_workers;
  calm.vm.ram = 64_GiB;
  Engine<BcProgram> baseline_engine(g, {}, calm, parts);
  JobOptions opts;
  opts.roots = roots;
  opts.swath = swath;
  const auto baseline = baseline_engine.run(opts);
  if (baseline.failed) return {false, "baseline failed: " + baseline.failure_reason, ""};
  if (baseline.roots_completed != roots.size())
    return {false, "baseline left roots incomplete", ""};
  const MemoryEnvelope env = envelope_of(baseline.metrics);

  chaos.cluster.vm.ram = std::max(env.peak + env.peak / 4, 2 * env.floor + 8192);
  Engine<BcProgram> chaos_engine(g, {}, chaos.cluster, parts);
  const auto r = chaos_engine.run(opts);
  if (r.failed) return {false, "chaos run failed: " + r.failure_reason, ""};
  if (r.roots_completed != roots.size())
    return {false, "chaos run left roots incomplete", ""};

  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (std::memcmp(&r.values[v].bc_score, &baseline.values[v].bc_score,
                    sizeof(double)) != 0)
      return {false,
              "bc_score mismatch at vertex " + std::to_string(v) + ": " +
                  std::to_string(r.values[v].bc_score) + " != " +
                  std::to_string(baseline.values[v].bc_score),
              ""};
  }
  return {true, "", chaos_stats(r.metrics)};
}

/// Subgraph-centric Components under chaos (docs/SUBGRAPH.md): the
/// per-partition union-find unit rides the same barriers, so the full fault
/// gauntlet — recovery replays, governor interventions, migrations — must
/// reproduce the min-label fixpoint bit-identically. The label lattice is
/// schedule-independent, so the governor's shed rung stays armed.
SeedOutcome run_subgraph_scenario(SplitMix64& rng, bool smoke, std::string& desc) {
  std::string kind;
  const Graph g = make_graph(rng, smoke, kind);
  const std::uint32_t partitions = 4;
  const auto parts = HashPartitioner{}.partition(g, partitions);

  ChaosDraw chaos = draw_chaos(rng, partitions);
  desc = "workload=subgraph-cc graph=" + kind + " " + chaos.describe;

  ClusterConfig calm;
  calm.num_partitions = partitions;
  calm.initial_workers = chaos.cluster.initial_workers;
  calm.vm.ram = 64_GiB;
  const auto baseline = subgraph::run_components_subgraph(g, calm, parts);
  if (baseline.failed) return {false, "baseline failed: " + baseline.failure_reason, ""};
  const MemoryEnvelope env = envelope_of(baseline.metrics);

  const Bytes target = squeezed_target(env, chaos.squeeze);
  chaos.cluster.vm.ram = std::max(env.peak + env.peak / 5, 2 * env.floor + 8192);
  JobOptions chaos_job;
  chaos_job.start_all_vertices = true;
  chaos_job.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(1),
                                      std::make_shared<SequentialInitiation>(), target);
  chaos_job.governor = soak_governor(chaos.spill_enabled, chaos.scale_out_enabled);
  Engine<subgraph::ComponentsSubgraphProgram> chaos_engine(g, {}, chaos.cluster, parts);
  const auto r = chaos_engine.run(chaos_job);
  if (r.failed) return {false, "chaos run failed: " + r.failure_reason, ""};

  for (VertexId v = 0; v < g.num_vertices(); ++v)
    if (r.values[v].label != baseline.values[v].label)
      return {false,
              "label mismatch at vertex " + std::to_string(v) + ": " +
                  std::to_string(r.values[v].label) + " != " +
                  std::to_string(baseline.values[v].label),
              ""};
  return {true, "", chaos_stats(r.metrics)};
}

/// Multi-job scheduler under contention: a seeded mixed plan (PageRank and
/// SSSP jobs, varied graphs, fleet widths, arrivals, users, priorities —
/// some with the scale-in rung armed) runs through JobScheduler on a pool
/// too small to hold everyone at once, under a seeded queue policy. Every
/// job must finish with vertex values, modeled time, and modeled cost
/// bit-identical to running the same configuration alone on a dedicated
/// pool: queueing, preemption, resume, and capacity reclaim may move a job
/// in time but may not touch what it computes.
SeedOutcome run_scheduler_scenario(SplitMix64& rng, bool smoke, std::string& desc) {
  struct JobCase {
    Graph g;
    Partitioning parts;
    ClusterConfig cluster;
    bool is_pagerank = false;
    int iterations = 0;
    VertexId root = 0;
    sched::TypedJob<PageRankProgram>* pr = nullptr;  // owned by the scheduler
    sched::TypedJob<SsspProgram>* sp = nullptr;
  };

  const std::uint32_t partitions = 4;
  const std::uint64_t n_jobs = uniform_int(rng, 3, 5);
  std::deque<JobCase> cases;
  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    JobCase c;
    std::string kind;
    c.g = make_graph(rng, smoke, kind);
    c.parts = HashPartitioner{}.partition(c.g, partitions);
    c.cluster.num_partitions = partitions;
    c.cluster.initial_workers =
        static_cast<std::uint32_t>(uniform_int(rng, 2, partitions));
    c.cluster.vm.ram = 64_GiB;
    if (rng() & 1) {
      c.cluster.scale_in.enabled = true;
      c.cluster.scale_in.density_threshold = uniform_real(rng, 0.02, 0.10);
      c.cluster.scale_in.patience = static_cast<std::uint32_t>(uniform_int(rng, 1, 3));
      c.cluster.scale_in.min_workers = 2;
    }
    c.is_pagerank = (rng() & 1) != 0;
    if (c.is_pagerank)
      c.iterations = static_cast<int>(uniform_int(rng, 6, 12));
    else
      c.root = static_cast<VertexId>(rng() % c.g.num_vertices());
    cases.push_back(std::move(c));
  }

  sched::SchedulerOptions sopts;
  sopts.pool_vms = static_cast<std::uint32_t>(uniform_int(rng, partitions, 6));
  const bool priority_policy = (rng() & 1) != 0;
  sopts.policy = priority_policy
                     ? std::shared_ptr<sched::QueuePolicy>(
                           std::make_shared<sched::PriorityPolicy>())
                     : std::make_shared<sched::FairSharePolicy>();
  sched::JobScheduler scheduler(sopts);
  desc = "workload=sched jobs=" + std::to_string(n_jobs) +
         " policy=" + (priority_policy ? "priority" : "fair-share") +
         " pool=" + std::to_string(sopts.pool_vms);

  const char* users[] = {"alice", "bob"};
  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    JobCase& c = cases[i];
    sched::JobSpec spec;
    spec.name = "soak-job-" + std::to_string(i);
    spec.user = users[rng() % 2];
    spec.priority = static_cast<std::uint32_t>(rng() % 4);
    spec.arrival = uniform_real(rng, 0.0, 8.0);
    if (c.is_pagerank) {
      JobOptions o;
      o.start_all_vertices = true;
      auto job = std::make_unique<sched::TypedJob<PageRankProgram>>(
          c.g, PageRankProgram{c.iterations, 0.85}, c.cluster, c.parts, o);
      c.pr = job.get();
      scheduler.submit(spec, std::move(job));
    } else {
      JobOptions o;
      o.roots = {c.root};
      auto job = std::make_unique<sched::TypedJob<SsspProgram>>(
          c.g, SsspProgram{}, c.cluster, c.parts, o);
      c.sp = job.get();
      scheduler.submit(spec, std::move(job));
    }
  }
  scheduler.run_all();
  if (scheduler.pool().jobs_completed != n_jobs)
    return {false,
            "scheduler completed " + std::to_string(scheduler.pool().jobs_completed) +
                "/" + std::to_string(n_jobs) + " jobs",
            ""};

  for (std::uint64_t i = 0; i < n_jobs; ++i) {
    const JobCase& c = cases[i];
    if (c.is_pagerank) {
      Engine<PageRankProgram> solo(c.g, {c.iterations, 0.85}, c.cluster, c.parts);
      JobOptions o;
      o.start_all_vertices = true;
      const auto alone = solo.run(o);
      const auto& pooled = c.pr->result();
      if (pooled.metrics.total_time != alone.metrics.total_time ||
          pooled.metrics.cost_usd != alone.metrics.cost_usd)
        return {false, "job " + std::to_string(i) + " modeled time/cost diverged", ""};
      for (VertexId v = 0; v < c.g.num_vertices(); ++v)
        if (std::memcmp(&pooled.values[v].rank, &alone.values[v].rank,
                        sizeof(double)) != 0)
          return {false,
                  "job " + std::to_string(i) + " rank mismatch at vertex " +
                      std::to_string(v),
                  ""};
    } else {
      Engine<SsspProgram> solo(c.g, {}, c.cluster, c.parts);
      JobOptions o;
      o.roots = {c.root};
      const auto alone = solo.run(o);
      const auto& pooled = c.sp->result();
      if (pooled.metrics.total_time != alone.metrics.total_time ||
          pooled.metrics.cost_usd != alone.metrics.cost_usd)
        return {false, "job " + std::to_string(i) + " modeled time/cost diverged", ""};
      for (VertexId v = 0; v < c.g.num_vertices(); ++v)
        if (pooled.values[v].distance != alone.values[v].distance)
          return {false,
                  "job " + std::to_string(i) + " distance mismatch at vertex " +
                      std::to_string(v),
                  ""};
    }
  }
  const auto& pool = scheduler.pool();
  return {true, "",
          "preemptions=" + std::to_string(pool.preemptions) +
              " resumes=" + std::to_string(pool.resumes) +
              " scale_ins=" + std::to_string(pool.scale_ins) +
              " makespan_s=" + std::to_string(pool.makespan) +
              " jobs_per_hour_per_usd=" + std::to_string(pool.jobs_per_hour_per_usd)};
}

SeedOutcome run_seed(std::uint64_t seed, bool smoke, std::string& desc) {
  SplitMix64 rng(mix64(seed ^ 0x50414B5F534F414BULL));
  try {
    switch (rng() % 5) {
      case 0: return run_sssp_scenario(rng, smoke, desc);
      case 1: return run_pagerank_scenario(rng, smoke, desc);
      case 2: return run_bc_scenario(rng, smoke, desc);
      case 3: return run_subgraph_scenario(rng, smoke, desc);
      default: return run_scheduler_scenario(rng, smoke, desc);
    }
  } catch (const std::exception& e) {
    return {false, std::string("exception: ") + e.what(), ""};
  }
}

CliOptions parse(int argc, char** argv) {
  CliOptions o;
  for (int i = 1; i < argc; ++i) {
    const std::string a = argv[i];
    auto next = [&]() -> std::uint64_t {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      return std::stoull(argv[++i]);
    };
    if (a == "--seeds") {
      o.seeds = next();
    } else if (a == "--seed-base") {
      o.seed_base = next();
    } else if (a == "--seed") {
      o.single_seed = next();
    } else if (a == "--smoke") {
      o.smoke = true;
    } else if (a == "--trace-dir") {
      if (i + 1 >= argc) {
        std::cerr << "missing value for " << a << "\n";
        std::exit(2);
      }
      o.trace_dir = argv[++i];
    } else if (a == "--help") {
      std::cout << "chaos_soak [--seeds N] [--seed-base B] [--seed S] [--smoke]\n"
                   "           [--trace-dir DIR]\n"
                   "Runs N seeded chaos scenarios (seeds B..B+N-1), asserting each\n"
                   "is bit-identical to its fault-free baseline. --seed replays one\n"
                   "scenario; --smoke shrinks graphs and defaults to 5 seeds.\n"
                   "--trace-dir records traces and writes DIR/TRACE_seed_<S>.json\n"
                   "for each failing seed.\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag " << a << "\n";
      std::exit(2);
    }
  }
  if (o.smoke && o.seeds == 25) o.seeds = 5;
  return o;
}

}  // namespace

int main(int argc, char** argv) {
  const CliOptions opts = parse(argc, argv);
  std::vector<std::uint64_t> seeds;
  if (opts.single_seed) {
    seeds.push_back(*opts.single_seed);
  } else {
    for (std::uint64_t i = 0; i < opts.seeds; ++i) seeds.push_back(opts.seed_base + i);
  }

  int failures = 0;
  for (const std::uint64_t seed : seeds) {
    if (!opts.trace_dir.empty()) {
      // Fresh tracer per seed so a failure's trace covers only that seed.
      // Recording is proven not to perturb the deterministic merge
      // (tests/core/test_trace_determinism.cpp), so the repro stays exact.
      pregel::trace::TraceConfig tc;
      tc.spans = true;
      tc.counters = true;
      tc.process_name = "chaos_soak seed=" + std::to_string(seed);
      pregel::trace::Tracer::instance().configure(tc);
    }
    std::string desc;
    const SeedOutcome out = run_seed(seed, opts.smoke, desc);
    if (out.ok) {
      std::cout << "SOAK-OK   seed=" << seed << " " << desc << " | " << out.stats
                << "\n";
    } else {
      ++failures;
      std::cout << "SOAK-FAIL seed=" << seed << " " << desc << " | " << out.detail
                << "\n          repro: chaos_soak --seed " << seed
                << (opts.smoke ? " --smoke" : "") << "\n";
      if (!opts.trace_dir.empty()) {
        const std::string path =
            opts.trace_dir + "/TRACE_seed_" + std::to_string(seed) + ".json";
        std::ofstream f(path);
        pregel::trace::Tracer::instance().write_chrome_trace(f);
        std::cout << "          trace: " << path << "\n";
      }
    }
  }
  std::cout << (failures == 0 ? "SOAK PASS" : "SOAK FAIL") << ": "
            << (seeds.size() - static_cast<std::size_t>(failures)) << "/"
            << seeds.size() << " seeds bit-identical to baseline\n";
  return failures == 0 ? 0 : 1;
}
