// Scheduler determinism and bit-identity tests (docs/SCHEDULER.md).
//
// The headline contract: every job admitted onto a contended pool — queued,
// preempted, resumed, scaled in — produces vertex values, modeled times, and
// JobMetrics bit-identical to running the same job alone on a dedicated
// pool. The scheduler may only change *when* slices run, never what they
// compute. These tests drive seeded multi-job plans through both queue
// policies at several pool widths and diff each job against its solo run.
#include <gtest/gtest.h>

#include <cstring>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include "algos/components.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "runtime/metrics_io.hpp"
#include "sched/scheduler.hpp"

namespace pregel {
namespace {

using algos::ComponentsProgram;
using algos::PageRankProgram;
using algos::SsspProgram;
using sched::FairSharePolicy;
using sched::JobScheduler;
using sched::JobSpec;
using sched::PriorityPolicy;
using sched::SchedulerOptions;
using sched::TypedJob;

// ---------------------------------------------------------------------------
// Shared fixtures: three graphs of different shapes and scales, partitioned
// once. Graphs must outlive the jobs (Engine holds references).

struct Corpus {
  Graph ws, ba, er;
  Partitioning ws_parts, ba_parts, er_parts;

  Corpus() {
    ws = watts_strogatz(400, 6, 0.1, 11);
    ba = barabasi_albert(300, 4, 22);
    er = erdos_renyi(500, 2000, 33);
    ws_parts = HashPartitioner{}.partition(ws, 8);
    ba_parts = HashPartitioner{}.partition(ba, 8);
    er_parts = HashPartitioner{}.partition(er, 8);
  }
};

const Corpus& corpus() {
  static const Corpus c;
  return c;
}

ClusterConfig small_cluster(std::uint32_t workers) {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = workers;
  return c;
}

JobOptions pagerank_opts() {
  JobOptions o;
  o.start_all_vertices = true;
  return o;
}

JobOptions sssp_opts(VertexId root) {
  JobOptions o;
  o.roots = {root};
  return o;
}

JobOptions components_opts() {
  JobOptions o;
  o.start_all_vertices = true;
  return o;
}

// One mixed plan: heterogeneous algorithms, scales, users, arrivals.
// `lanes` is how many VMs each job asks for (the plan is replayed at
// several pool widths to vary contention).
struct PlanJob {
  std::string name;
  std::string user;
  std::uint32_t priority;
  Seconds arrival;
};

std::unique_ptr<sched::ScheduledJob> make_plan_job(std::size_t i, std::uint32_t lanes) {
  const Corpus& c = corpus();
  switch (i % 3) {
    case 0:
      return std::make_unique<TypedJob<PageRankProgram>>(
          c.ws, PageRankProgram{8, 0.85}, small_cluster(lanes), c.ws_parts,
          pagerank_opts());
    case 1:
      return std::make_unique<TypedJob<SsspProgram>>(
          c.ba, SsspProgram{}, small_cluster(lanes), c.ba_parts, sssp_opts(0));
    default:
      return std::make_unique<TypedJob<ComponentsProgram>>(
          c.er, ComponentsProgram{}, small_cluster(lanes), c.er_parts,
          components_opts());
  }
}

std::vector<PlanJob> mixed_plan(std::uint64_t seed) {
  // Tiny deterministic LCG: arrival jitter and user assignment per seed.
  std::uint64_t s = seed * 0x9E3779B97F4A7C15ull + 1;
  auto next = [&s]() {
    s ^= s >> 12;
    s ^= s << 25;
    s ^= s >> 27;
    return s * 0x2545F4914F6CDD1Dull;
  };
  std::vector<PlanJob> plan;
  const char* users[] = {"alice", "bob", "carol"};
  for (std::size_t i = 0; i < 6; ++i) {
    PlanJob j;
    j.name = "job" + std::to_string(i);
    j.user = users[next() % 3];
    j.priority = static_cast<std::uint32_t>(next() % 4);
    j.arrival = static_cast<double>(next() % 50) * 0.25;
    plan.push_back(std::move(j));
  }
  return plan;
}

// Solo baselines for the three job shapes in make_plan_job, keyed by slot.
template <class Program>
JobResult<Program> solo_run(const Graph& g, Program p, std::uint32_t lanes,
                            const Partitioning& parts, JobOptions opts) {
  Engine<Program> engine(g, std::move(p), small_cluster(lanes), parts);
  return engine.run(opts);
}

void expect_job_matches_solo(const JobScheduler& scheduler, std::uint64_t id,
                             std::size_t slot, std::uint32_t lanes) {
  const Corpus& c = corpus();
  const JobReport& rep = scheduler.report(id);
  ASSERT_FALSE(rep.failed) << rep.failure_reason;
  switch (slot % 3) {
    case 0: {
      const auto solo = solo_run(c.ws, PageRankProgram{8, 0.85}, lanes, c.ws_parts,
                                 pagerank_opts());
      ASSERT_EQ(rep.metrics.total_supersteps(), solo.metrics.total_supersteps());
      EXPECT_EQ(rep.metrics.total_time, solo.metrics.total_time);
      EXPECT_EQ(rep.metrics.cost_usd, solo.metrics.cost_usd);
      EXPECT_EQ(rep.metrics.vm_seconds, solo.metrics.vm_seconds);
      break;
    }
    case 1: {
      const auto solo = solo_run(c.ba, SsspProgram{}, lanes, c.ba_parts, sssp_opts(0));
      ASSERT_EQ(rep.metrics.total_supersteps(), solo.metrics.total_supersteps());
      EXPECT_EQ(rep.metrics.total_time, solo.metrics.total_time);
      EXPECT_EQ(rep.metrics.cost_usd, solo.metrics.cost_usd);
      EXPECT_EQ(rep.metrics.vm_seconds, solo.metrics.vm_seconds);
      break;
    }
    default: {
      const auto solo = solo_run(c.er, ComponentsProgram{}, lanes, c.er_parts,
                                 components_opts());
      ASSERT_EQ(rep.metrics.total_supersteps(), solo.metrics.total_supersteps());
      EXPECT_EQ(rep.metrics.total_time, solo.metrics.total_time);
      EXPECT_EQ(rep.metrics.cost_usd, solo.metrics.cost_usd);
      EXPECT_EQ(rep.metrics.vm_seconds, solo.metrics.vm_seconds);
      break;
    }
  }
}

std::shared_ptr<sched::QueuePolicy> make_policy(bool priority) {
  if (priority) return std::make_shared<PriorityPolicy>();
  return std::make_shared<FairSharePolicy>();
}

// ---------------------------------------------------------------------------
// Engine re-entrancy: the sliced API is exactly run().

TEST(EngineReentrant, SlicedRunMatchesMonolithicRun) {
  const Corpus& c = corpus();
  const auto whole = solo_run(c.ws, PageRankProgram{8, 0.85}, 4, c.ws_parts,
                              pagerank_opts());

  Engine<PageRankProgram> engine(c.ws, {8, 0.85}, small_cluster(4), c.ws_parts);
  JobResult<PageRankProgram> sliced;
  ASSERT_TRUE(engine.start(pagerank_opts(), sliced));
  while (engine.advance(sliced) == Engine<PageRankProgram>::StepStatus::kRunning) {
  }
  engine.finish(sliced);

  ASSERT_EQ(sliced.values.size(), whole.values.size());
  for (std::size_t v = 0; v < whole.values.size(); ++v)
    ASSERT_EQ(std::memcmp(&sliced.values[v].rank, &whole.values[v].rank,
                          sizeof(double)),
              0)
        << "rank diverged at vertex " << v;
  EXPECT_EQ(sliced.metrics.total_time, whole.metrics.total_time);
  EXPECT_EQ(sliced.metrics.cost_usd, whole.metrics.cost_usd);
  EXPECT_EQ(sliced.metrics.total_supersteps(), whole.metrics.total_supersteps());
}

// ---------------------------------------------------------------------------
// Bit-identity under contention: seeded plans x policies x pool widths.

class SchedBitIdentity
    : public ::testing::TestWithParam<std::tuple<std::uint64_t, bool, std::uint32_t>> {
};

TEST_P(SchedBitIdentity, EveryAdmittedJobMatchesSoloRun) {
  const auto [seed, priority, pool_vms] = GetParam();
  const std::uint32_t lanes = 4;
  const auto plan = mixed_plan(seed);

  SchedulerOptions opts;
  opts.pool_vms = pool_vms;
  opts.policy = make_policy(priority);
  JobScheduler scheduler(opts);

  std::vector<std::uint64_t> ids;
  for (std::size_t i = 0; i < plan.size(); ++i) {
    JobSpec spec;
    spec.name = plan[i].name;
    spec.user = plan[i].user;
    spec.priority = plan[i].priority;
    spec.arrival = plan[i].arrival;
    ids.push_back(scheduler.submit(spec, make_plan_job(i, lanes)));
  }
  scheduler.run_all();

  EXPECT_EQ(scheduler.pool().jobs_completed, plan.size());
  EXPECT_EQ(scheduler.pool().jobs_failed, 0u);
  EXPECT_EQ(scheduler.pool().jobs_rejected, 0u);
  for (std::size_t i = 0; i < ids.size(); ++i)
    expect_job_matches_solo(scheduler, ids[i], i, lanes);

  EXPECT_GT(scheduler.pool().jobs_per_hour_per_usd, 0.0);
  EXPECT_GT(scheduler.pool().pool_utilization, 0.0);
}

INSTANTIATE_TEST_SUITE_P(
    Plans, SchedBitIdentity,
    ::testing::Combine(::testing::Values(1ull, 2ull, 3ull),
                       ::testing::Bool(),          // fair-share / priority
                       ::testing::Values(4u, 8u)),  // one lane / two lanes
    [](const auto& info) {
      return "seed" + std::to_string(std::get<0>(info.param)) +
             (std::get<1>(info.param) ? "_priority" : "_fairshare") + "_pool" +
             std::to_string(std::get<2>(info.param));
    });

// The scheduling trail itself is deterministic: replaying the same plan
// yields the same event log, line for line.
TEST(SchedDeterminism, EventLogIsStable) {
  for (const bool priority : {false, true}) {
    std::vector<std::string> first;
    for (int rep = 0; rep < 2; ++rep) {
      const auto plan = mixed_plan(7);
      SchedulerOptions opts;
      opts.pool_vms = 8;
      opts.policy = make_policy(priority);
      JobScheduler scheduler(opts);
      for (std::size_t i = 0; i < plan.size(); ++i) {
        JobSpec spec;
        spec.name = plan[i].name;
        spec.user = plan[i].user;
        spec.priority = plan[i].priority;
        spec.arrival = plan[i].arrival;
        scheduler.submit(spec, make_plan_job(i, 4));
      }
      scheduler.run_all();
      if (rep == 0)
        first = scheduler.event_log();
      else
        EXPECT_EQ(first, scheduler.event_log());
    }
    EXPECT_FALSE(first.empty());
  }
}

// ---------------------------------------------------------------------------
// Admission control.

TEST(SchedAdmission, RejectsJobsWiderThanPool) {
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 4;
  JobScheduler scheduler(opts);
  JobSpec spec;
  spec.name = "too-wide";
  const auto id = scheduler.submit(
      spec, std::make_unique<TypedJob<SsspProgram>>(
                c.ba, SsspProgram{}, small_cluster(8), c.ba_parts, sssp_opts(0)));
  (void)id;
  scheduler.run_all();
  EXPECT_EQ(scheduler.pool().jobs_rejected, 1u);
  EXPECT_EQ(scheduler.pool().jobs_completed, 0u);
  ASSERT_EQ(scheduler.rows().size(), 1u);
  EXPECT_EQ(scheduler.rows()[0].state, "rejected");
}

TEST(SchedAdmission, RejectsBudgetBelowFloor) {
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 8;
  JobScheduler scheduler(opts);
  JobSpec spec;
  spec.name = "pauper";
  spec.budget_usd = 1e-9;  // cannot buy 4 VMs one modeled minute
  scheduler.submit(spec, std::make_unique<TypedJob<SsspProgram>>(
                             c.ba, SsspProgram{}, small_cluster(4), c.ba_parts,
                             sssp_opts(0)));
  scheduler.run_all();
  EXPECT_EQ(scheduler.pool().jobs_rejected, 1u);
}

TEST(SchedAdmission, BudgetCeilingKillsRunningJob) {
  const Corpus& c = corpus();
  // Calibrate from a solo run: a budget above the admission floor (one
  // modeled second of the 4-VM fleet) but below the run's true cost must
  // admit the job and then kill it mid-flight.
  const auto solo = solo_run(c.ws, PageRankProgram{30, 0.85}, 4, c.ws_parts,
                             pagerank_opts());
  const Usd floor = 4.0 * cloud::azure_large_2012().price_per_hour / 3600.0;
  ASSERT_GT(solo.metrics.cost_usd, floor * 1.05)
      << "workload too cheap to exercise the mid-run budget kill";
  const Usd budget = floor + (solo.metrics.cost_usd - floor) / 2.0;

  SchedulerOptions opts;
  opts.pool_vms = 8;
  JobScheduler scheduler(opts);
  JobSpec spec;
  spec.name = "capped";
  spec.budget_usd = budget;
  const auto id = scheduler.submit(
      spec, std::make_unique<TypedJob<PageRankProgram>>(
                c.ws, PageRankProgram{30, 0.85}, small_cluster(4), c.ws_parts,
                pagerank_opts()));
  scheduler.run_all();
  EXPECT_EQ(scheduler.pool().jobs_failed, 1u);
  EXPECT_NE(scheduler.report(id).failure_reason.find("budget"), std::string::npos);
}

TEST(SchedAdmission, FairShareFavorsLeastServedUser) {
  // alice's first job runs alone and racks up service; when the pool frees,
  // bob's queued job must beat alice's second despite identical arrivals.
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 4;  // one lane: jobs run strictly one at a time
  opts.policy = std::make_shared<FairSharePolicy>();
  JobScheduler scheduler(opts);

  auto mk = [&]() {
    return std::make_unique<TypedJob<SsspProgram>>(
        c.ba, SsspProgram{}, small_cluster(4), c.ba_parts, sssp_opts(0));
  };
  JobSpec a1{.name = "alice-1", .user = "alice"};
  JobSpec a2{.name = "alice-2", .user = "alice", .arrival = 0.5};
  JobSpec b1{.name = "bob-1", .user = "bob", .arrival = 0.5};
  scheduler.submit(a1, mk());
  const auto id_a2 = scheduler.submit(a2, mk());
  const auto id_b1 = scheduler.submit(b1, mk());
  scheduler.run_all();

  ASSERT_EQ(scheduler.pool().jobs_completed, 3u);
  EXPECT_LT(scheduler.rows()[id_b1].admitted, scheduler.rows()[id_a2].admitted);
}

// ---------------------------------------------------------------------------
// Preemption: a higher-priority arrival evicts the running job, whose final
// results are still bit-identical to a solo run.

TEST(SchedPreemption, PriorityEvictsAndResumesBitIdentically) {
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 4;  // single lane forces the conflict
  opts.policy = std::make_shared<PriorityPolicy>();
  JobScheduler scheduler(opts);

  JobSpec low{.name = "low", .user = "alice", .priority = 0};
  // Arrives while `low` (a ~0.8s modeled run) is still mid-flight.
  JobSpec high{.name = "high", .user = "bob", .priority = 5, .arrival = 0.2};
  const auto id_low = scheduler.submit(
      low, std::make_unique<TypedJob<PageRankProgram>>(
               c.ws, PageRankProgram{8, 0.85}, small_cluster(4), c.ws_parts,
               pagerank_opts()));
  const auto id_high = scheduler.submit(
      high, std::make_unique<TypedJob<SsspProgram>>(
                c.ba, SsspProgram{}, small_cluster(4), c.ba_parts, sssp_opts(0)));
  scheduler.run_all();

  EXPECT_GE(scheduler.pool().preemptions, 1u);
  EXPECT_GE(scheduler.pool().resumes, 1u);
  EXPECT_GE(scheduler.rows()[id_low].preemptions, 1u);
  EXPECT_GT(scheduler.pool().preemption_overhead, 0.0);
  ASSERT_EQ(scheduler.pool().jobs_completed, 2u);
  // The high-priority job finishes before the preempted one resumes fully.
  EXPECT_LT(scheduler.rows()[id_high].completed, scheduler.rows()[id_low].completed);
  // The preempted job still matches its solo run exactly.
  expect_job_matches_solo(scheduler, id_low, 0, 4);
  expect_job_matches_solo(scheduler, id_high, 1, 4);
}

TEST(SchedPreemption, FairShareNeverPreempts) {
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 4;
  opts.policy = std::make_shared<FairSharePolicy>();
  JobScheduler scheduler(opts);
  JobSpec low{.name = "low", .user = "alice", .priority = 0};
  JobSpec high{.name = "high", .user = "bob", .priority = 9, .arrival = 0.2};
  auto mk = [&]() {
    return std::make_unique<TypedJob<SsspProgram>>(
        c.ba, SsspProgram{}, small_cluster(4), c.ba_parts, sssp_opts(0));
  };
  scheduler.submit(low, mk());
  scheduler.submit(high, mk());
  scheduler.run_all();
  EXPECT_EQ(scheduler.pool().preemptions, 0u);
  EXPECT_EQ(scheduler.pool().jobs_completed, 2u);
}

// ---------------------------------------------------------------------------
// Scale-in rung: a collapsing frontier retires idle VMs mid-job and the
// scheduler hands the capacity to the pool — without changing results.

Graph chain_graph(VertexId n) {
  GraphBuilder b(n, /*undirected=*/false);
  for (VertexId v = 0; v + 1 < n; ++v) b.add_edge(v, v + 1);
  return std::move(b).build();
}

TEST(SchedScaleIn, FrontierCollapseRetiresVmsWithoutChangingValues) {
  // A directed chain keeps SSSP's frontier at a single vertex: active
  // density is 1/n from the first superstep, so the rung fires as soon as
  // patience allows and keeps retiring VMs down to min_workers.
  const Graph chain = chain_graph(64);
  const auto parts = HashPartitioner{}.partition(chain, 8);

  ClusterConfig base = small_cluster(8);
  ClusterConfig elastic = base;
  elastic.scale_in.enabled = true;
  elastic.scale_in.density_threshold = 0.05;
  elastic.scale_in.patience = 2;
  elastic.scale_in.cooldown = 2;
  elastic.scale_in.min_workers = 2;

  Engine<SsspProgram> plain(chain, {}, base, parts);
  const auto baseline = plain.run(sssp_opts(0));
  ASSERT_FALSE(baseline.failed);

  Engine<SsspProgram> scaling(chain, {}, elastic, parts);
  const auto scaled = scaling.run(sssp_opts(0));
  ASSERT_FALSE(scaled.failed);

  EXPECT_GE(scaled.metrics.scale_ins, 1u);
  EXPECT_LT(scaling.current_workers(), 8u);
  EXPECT_GE(scaling.current_workers(), 2u);
  ASSERT_EQ(scaled.values.size(), baseline.values.size());
  for (std::size_t v = 0; v < baseline.values.size(); ++v)
    ASSERT_EQ(scaled.values[v].distance, baseline.values[v].distance)
        << "distance diverged at vertex " << v;

  // Same elastic run a second time is bit-identical (modeled-state trigger).
  Engine<SsspProgram> again(chain, {}, elastic, parts);
  const auto repeat = again.run(sssp_opts(0));
  EXPECT_EQ(repeat.metrics.total_time, scaled.metrics.total_time);
  EXPECT_EQ(repeat.metrics.cost_usd, scaled.metrics.cost_usd);
  EXPECT_EQ(repeat.metrics.scale_ins, scaled.metrics.scale_ins);
}

TEST(SchedScaleIn, SchedulerReclaimsRetiredVms) {
  // Two chain-SSSP jobs on a 10-VM pool, each asking for 8: the second can
  // only start early because the first shrinks. Assert the pool saw the
  // reclaim and that both jobs still match their solo runs.
  const Graph chain = chain_graph(64);
  const auto parts = HashPartitioner{}.partition(chain, 8);
  ClusterConfig elastic = small_cluster(8);
  elastic.scale_in.enabled = true;
  elastic.scale_in.density_threshold = 0.05;
  elastic.scale_in.patience = 2;
  elastic.scale_in.cooldown = 2;
  elastic.scale_in.min_workers = 2;

  auto mk = [&]() {
    return std::make_unique<TypedJob<SsspProgram>>(chain, SsspProgram{}, elastic,
                                                   parts, sssp_opts(0));
  };
  SchedulerOptions opts;
  opts.pool_vms = 10;
  JobScheduler scheduler(opts);
  const auto id0 = scheduler.submit(JobSpec{.name = "chain-0"}, mk());
  const auto id1 = scheduler.submit(JobSpec{.name = "chain-1", .arrival = 0.1}, mk());
  scheduler.run_all();

  ASSERT_EQ(scheduler.pool().jobs_completed, 2u);
  EXPECT_GE(scheduler.pool().scale_ins, 1u);
  EXPECT_LT(scheduler.rows()[id0].workers_final, 8u);

  Engine<SsspProgram> solo(chain, {}, elastic, parts);
  const auto alone = solo.run(sssp_opts(0));
  for (const auto id : {id0, id1}) {
    const JobReport& rep = scheduler.report(id);
    ASSERT_FALSE(rep.failed) << rep.failure_reason;
    EXPECT_EQ(rep.metrics.total_time, alone.metrics.total_time);
    EXPECT_EQ(rep.metrics.cost_usd, alone.metrics.cost_usd);
    EXPECT_EQ(rep.metrics.scale_ins, alone.metrics.scale_ins);
  }
}

// ---------------------------------------------------------------------------
// Deadline observability: advisory targets are recorded, never enforced.

TEST(SchedDeadlines, MissesAreCountedAndReportedInCsv) {
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 8;
  JobScheduler scheduler(opts);

  // An impossible deadline (before any slice can finish) and a generous one.
  JobSpec tight{.name = "tight", .deadline = 1e-9};
  JobSpec loose{.name = "loose", .deadline = 1e9};
  JobSpec none{.name = "none"};  // no target: can never count as missed
  const auto id_tight = scheduler.submit(
      tight, std::make_unique<TypedJob<SsspProgram>>(
                 c.ba, SsspProgram{}, small_cluster(4), c.ba_parts, sssp_opts(0)));
  const auto id_loose = scheduler.submit(
      loose, std::make_unique<TypedJob<SsspProgram>>(
                 c.ba, SsspProgram{}, small_cluster(4), c.ba_parts, sssp_opts(0)));
  const auto id_none = scheduler.submit(
      none, std::make_unique<TypedJob<SsspProgram>>(
                c.ba, SsspProgram{}, small_cluster(4), c.ba_parts, sssp_opts(0)));
  scheduler.run_all();

  ASSERT_EQ(scheduler.pool().jobs_completed, 3u);
  EXPECT_TRUE(scheduler.rows()[id_tight].missed_deadline);
  EXPECT_FALSE(scheduler.rows()[id_loose].missed_deadline);
  EXPECT_FALSE(scheduler.rows()[id_none].missed_deadline);
  EXPECT_EQ(scheduler.pool().deadline_misses, 1u);

  // A deadline never perturbs the job itself: observability, not policy.
  const auto solo = solo_run(c.ba, SsspProgram{}, 4, c.ba_parts, sssp_opts(0));
  EXPECT_EQ(scheduler.report(id_tight).metrics.total_time, solo.metrics.total_time);

  // The pool CSV carries the deadline columns; summary carries the rollup.
  std::ostringstream csv;
  write_pool_metrics_csv(scheduler.pool(), scheduler.rows(), csv);
  EXPECT_NE(csv.str().find("deadline_s"), std::string::npos);
  EXPECT_NE(csv.str().find("missed_deadline"), std::string::npos);
  std::ostringstream summary;
  write_pool_summary(scheduler.pool(), summary);
  EXPECT_NE(summary.str().find("deadline_misses=1"), std::string::npos);
}

TEST(SchedDeadlines, FailedJobWithDeadlineCountsAsMiss) {
  const Corpus& c = corpus();
  SchedulerOptions opts;
  opts.pool_vms = 8;
  JobScheduler scheduler(opts);
  // Budget kill mid-run: the job fails, and its (generous) deadline still
  // counts as missed — a dead job cannot meet a completion target.
  const auto solo = solo_run(c.ws, PageRankProgram{30, 0.85}, 4, c.ws_parts,
                             pagerank_opts());
  JobSpec spec{.name = "doomed", .deadline = 1e9};
  spec.budget_usd = solo.metrics.cost_usd * 0.5;
  scheduler.submit(spec, std::make_unique<TypedJob<PageRankProgram>>(
                             c.ws, PageRankProgram{30, 0.85}, small_cluster(4),
                             c.ws_parts, pagerank_opts()));
  scheduler.run_all();
  ASSERT_EQ(scheduler.pool().jobs_completed, 0u);
  EXPECT_EQ(scheduler.pool().deadline_misses, 1u);
  EXPECT_TRUE(scheduler.rows()[0].missed_deadline);
}

}  // namespace
}  // namespace pregel
