#include "util/crc32c.hpp"

#include <gtest/gtest.h>

#include <cstring>
#include <string_view>
#include <vector>

namespace pregel::util {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(Crc32c, KnownVectors) {
  // RFC 3720 / Castagnoli check value.
  EXPECT_EQ(crc32c(bytes_of("123456789")), 0xE3069283u);
  EXPECT_EQ(crc32c(bytes_of("")), 0x00000000u);
  // 32 zero bytes (iSCSI test vector).
  EXPECT_EQ(crc32c(std::vector<std::byte>(32, std::byte{0})), 0x8A9136AAu);
  // 32 0xFF bytes (iSCSI test vector).
  EXPECT_EQ(crc32c(std::vector<std::byte>(32, std::byte{0xFF})), 0x62A8AB43u);
}

TEST(Crc32c, IncrementalUpdateMatchesOneShot) {
  const auto data = bytes_of("the quick brown fox jumps over the lazy dog");
  const std::uint32_t whole = crc32c(data);
  for (std::size_t split = 0; split <= data.size(); ++split) {
    std::uint32_t crc = crc32c_update(0, std::span(data.data(), split));
    crc = crc32c_update(crc, std::span(data.data() + split, data.size() - split));
    EXPECT_EQ(crc, whole) << "split at " << split;
  }
}

TEST(Crc32c, DetectsSingleBitFlips) {
  auto data = bytes_of("checkpoint payload: superstep 17, worker 3");
  const std::uint32_t clean = crc32c(data);
  for (std::size_t i = 0; i < data.size(); ++i) {
    for (int bit = 0; bit < 8; ++bit) {
      data[i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
      EXPECT_NE(crc32c(data), clean) << "byte " << i << " bit " << bit;
      data[i] ^= std::byte{static_cast<unsigned char>(1u << bit)};
    }
  }
  EXPECT_EQ(crc32c(data), clean);
}

TEST(Crc32c, DetectsTruncation) {
  const auto data = bytes_of("torn write: only a prefix of the blob landed");
  const std::uint32_t whole = crc32c(data);
  for (std::size_t len = 0; len < data.size(); ++len)
    EXPECT_NE(crc32c(std::span(data.data(), len)), whole) << "prefix length " << len;
}

}  // namespace
}  // namespace pregel::util
