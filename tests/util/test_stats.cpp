#include "util/stats.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <tuple>
#include <vector>

#include "util/rng.hpp"

namespace pregel {
namespace {

TEST(MedianOf, EmptyIsZero) { EXPECT_EQ(median_of({}), 0.0); }

TEST(MedianOf, SingleAndPair) {
  EXPECT_EQ(median_of({7.5}), 7.5);
  // Even count: the average of the two middle samples, not either sample.
  EXPECT_EQ(median_of({2.0, 10.0}), 6.0);
}

TEST(MedianOf, OddPicksMiddle) {
  EXPECT_EQ(median_of({9.0, 1.0, 5.0}), 5.0);
  EXPECT_EQ(median_of({3.0, 1.0, 4.0, 1.0, 5.0}), 3.0);
}

TEST(MedianOf, EvenAveragesMiddlePair) {
  // The boundary the straggler timeout depends on: for {1, 2, 8, 100} the
  // upper-median sample is 8 but the true median is 5.
  EXPECT_EQ(median_of({100.0, 2.0, 8.0, 1.0}), 5.0);
  EXPECT_EQ(median_of({4.0, 4.0, 4.0, 4.0}), 4.0);
  EXPECT_EQ(median_of({1.0, 2.0, 3.0, 4.0, 5.0, 6.0}), 3.5);
}

TEST(MedianOf, UnsortedInputAndDuplicates) {
  EXPECT_EQ(median_of({5.0, 5.0, 1.0, 5.0}), 5.0);
  EXPECT_EQ(median_of({-3.0, -1.0, -2.0, -4.0}), -2.5);
}

TEST(MedianOf, AverageOfMiddlePairAvoidsOverflow) {
  const double big = std::numeric_limits<double>::max();
  EXPECT_EQ(median_of({big, big}), big);
}

TEST(RunningStats, EmptyIsNeutral) {
  RunningStats s;
  EXPECT_TRUE(s.empty());
  EXPECT_EQ(s.count(), 0u);
  EXPECT_EQ(s.mean(), 0.0);
  EXPECT_EQ(s.variance(), 0.0);
  EXPECT_EQ(s.imbalance(), 1.0);
}

TEST(RunningStats, SingleValue) {
  RunningStats s;
  s.add(5.0);
  EXPECT_EQ(s.count(), 1u);
  EXPECT_EQ(s.mean(), 5.0);
  EXPECT_EQ(s.min(), 5.0);
  EXPECT_EQ(s.max(), 5.0);
  EXPECT_EQ(s.variance(), 0.0);
}

TEST(RunningStats, KnownSeries) {
  RunningStats s;
  for (double v : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) s.add(v);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.variance(), 4.0);  // classic textbook example
  EXPECT_DOUBLE_EQ(s.stddev(), 2.0);
  EXPECT_DOUBLE_EQ(s.sum(), 40.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
}

TEST(RunningStats, ImbalanceIsMaxOverMean) {
  RunningStats s;
  s.add(1.0);
  s.add(3.0);  // mean 2, max 3
  EXPECT_DOUBLE_EQ(s.imbalance(), 1.5);
}

TEST(RunningStats, MergeMatchesCombinedStream) {
  Xoshiro256 g(23);
  RunningStats a, b, all;
  for (int i = 0; i < 1000; ++i) {
    const double x = g.next_gaussian() * 3 + 1;
    (i % 2 ? a : b).add(x);
    all.add(x);
  }
  a.merge(b);
  EXPECT_EQ(a.count(), all.count());
  EXPECT_NEAR(a.mean(), all.mean(), 1e-9);
  EXPECT_NEAR(a.variance(), all.variance(), 1e-9);
  EXPECT_DOUBLE_EQ(a.min(), all.min());
  EXPECT_DOUBLE_EQ(a.max(), all.max());
}

TEST(RunningStats, MergeWithEmptySides) {
  RunningStats a, b;
  a.add(1.0);
  a.merge(b);  // merging empty changes nothing
  EXPECT_EQ(a.count(), 1u);
  b.merge(a);  // merging into empty copies
  EXPECT_EQ(b.count(), 1u);
  EXPECT_EQ(b.mean(), 1.0);
}

TEST(Percentiles, QuantilesOfKnownData) {
  Percentiles p;
  for (int i = 1; i <= 100; ++i) p.add(i);
  EXPECT_NEAR(p.median(), 50.5, 1e-9);
  EXPECT_NEAR(p.quantile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(p.quantile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(p.quantile(0.9), 90.1, 1e-9);
}

TEST(Percentiles, EmptyReturnsZero) {
  Percentiles p;
  EXPECT_EQ(p.quantile(0.5), 0.0);
}

TEST(Percentiles, ClampsOutOfRangeQ) {
  Percentiles p;
  p.add(3.0);
  p.add(7.0);
  EXPECT_DOUBLE_EQ(p.quantile(-1.0), 3.0);
  EXPECT_DOUBLE_EQ(p.quantile(2.0), 7.0);
}

TEST(Ewma, FirstSampleSeedsValue) {
  Ewma e(0.5);
  EXPECT_FALSE(e.seeded());
  e.add(10.0);
  EXPECT_TRUE(e.seeded());
  EXPECT_DOUBLE_EQ(e.value(), 10.0);
}

TEST(Ewma, ConvergesTowardConstant) {
  Ewma e(0.3);
  e.add(0.0);
  for (int i = 0; i < 50; ++i) e.add(100.0);
  EXPECT_NEAR(e.value(), 100.0, 1e-3);
}

TEST(Ewma, ResetClears) {
  Ewma e(0.5);
  e.add(4.0);
  e.reset();
  EXPECT_FALSE(e.seeded());
  e.add(8.0);
  EXPECT_DOUBLE_EQ(e.value(), 8.0);
}

TEST(PeakDetector, FiresOnRiseThenFall) {
  PeakDetector d(0.05);
  EXPECT_FALSE(d.add(10));
  EXPECT_FALSE(d.add(50));   // rise
  EXPECT_FALSE(d.add(100));  // rise
  EXPECT_TRUE(d.add(60));    // fall after rise -> peak
}

TEST(PeakDetector, DoesNotFireOnMonotoneDecrease) {
  PeakDetector d(0.05);
  EXPECT_FALSE(d.add(100));
  EXPECT_FALSE(d.add(80));
  EXPECT_FALSE(d.add(50));
  EXPECT_FALSE(d.add(10));
}

TEST(PeakDetector, DoesNotFireOnMonotoneIncrease) {
  PeakDetector d(0.05);
  for (double v : {1.0, 2.0, 4.0, 8.0, 16.0}) EXPECT_FALSE(d.add(v));
}

TEST(PeakDetector, IgnoresJitterWithinTolerance) {
  PeakDetector d(0.10);
  EXPECT_FALSE(d.add(1000));
  EXPECT_FALSE(d.add(1050));  // +5% < 10% tolerance: not a rise
  EXPECT_FALSE(d.add(1000));  // -5%: not a fall either
}

TEST(PeakDetector, FiresOncePerPeakThenRearms) {
  PeakDetector d(0.05);
  EXPECT_FALSE(d.add(10));
  EXPECT_FALSE(d.add(100));
  EXPECT_TRUE(d.add(50));    // first peak
  EXPECT_FALSE(d.add(30));   // continuing fall: no refire
  EXPECT_FALSE(d.add(200));  // new rise
  EXPECT_TRUE(d.add(100));   // second peak
}

TEST(PeakDetector, ResetForgetsRise) {
  PeakDetector d(0.05);
  EXPECT_FALSE(d.add(10));
  EXPECT_FALSE(d.add(100));
  d.reset();
  EXPECT_FALSE(d.add(50));  // first sample after reset just seeds
  EXPECT_FALSE(d.add(20));  // fall without observed rise: no fire
}

// Property-style sweep: a clean triangle waveform of any amplitude/length
// must produce exactly one detection at its peak.
class PeakDetectorTriangle : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(PeakDetectorTriangle, ExactlyOneFirePerTriangle) {
  const auto [len, amp] = GetParam();
  PeakDetector d(0.05);
  int fires = 0;
  for (int i = 0; i <= len; ++i) d.add(amp * i / len);
  for (int i = len - 1; i >= 0; --i) fires += d.add(amp * i / len) ? 1 : 0;
  EXPECT_EQ(fires, 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, PeakDetectorTriangle,
                         ::testing::Combine(::testing::Values(3, 5, 10, 50),
                                            ::testing::Values(10.0, 1e3, 1e6, 1e9)));

}  // namespace
}  // namespace pregel
