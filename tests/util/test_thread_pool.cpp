// ThreadPool barrier semantics: every index runs exactly once under both
// dispatch modes, steals actually happen under skew, and a barrier where
// several lanes throw hands back a clean epoch — first exception rethrown,
// the rest counted, the pool reusable.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstddef>
#include <mutex>
#include <numeric>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "util/thread_pool.hpp"

namespace pregel {
namespace {

TEST(ThreadPool, ParallelForRunsEveryIndexOnce) {
  ThreadPool pool(4);
  std::vector<std::atomic<int>> hits(257);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ParallelStealRunsEveryItemExactlyOnce) {
  ThreadPool pool(4);
  // Skewed seed: lane 0 owns almost everything, others nearly dry.
  std::vector<std::vector<std::size_t>> queues(pool.size());
  std::size_t next = 0;
  for (int i = 0; i < 300; ++i) queues[0].push_back(next++);
  for (std::size_t l = 1; l < queues.size(); ++l) queues[l].push_back(next++);

  std::vector<std::atomic<int>> hits(next);
  const auto outcome = pool.parallel_steal(std::move(queues), [&](std::size_t i) {
    hits[i].fetch_add(1);
    // Make items slow enough that dry lanes outlive their own queues and
    // must steal to contribute (they may still lose every race on an
    // oversubscribed host, hence no hard assertion on `steals`).
    std::this_thread::sleep_for(std::chrono::microseconds(50));
  });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
  EXPECT_EQ(outcome.steals == 0, outcome.stolen_items == 0);
}

TEST(ThreadPool, ParallelStealSerialFallbackPreservesQueueOrder) {
  ThreadPool pool(1);
  std::vector<std::vector<std::size_t>> queues(1);
  queues[0] = {5, 3, 9, 0};
  std::vector<std::size_t> order;
  const auto outcome =
      pool.parallel_steal(std::move(queues), [&](std::size_t i) { order.push_back(i); });
  EXPECT_EQ(order, (std::vector<std::size_t>{5, 3, 9, 0}));
  EXPECT_EQ(outcome.steals, 0u);
  EXPECT_EQ(outcome.stolen_items, 0u);
}

// The hot-path bugfix this pins: a barrier where bodies throw on several
// lanes must rethrow exactly one exception, count the others (not silently
// swallow them), and leave the pool reusable.
TEST(ThreadPool, SecondaryExceptionsAreCountedNotSwallowed) {
  ThreadPool pool(4);
  const std::uint64_t before = pool.suppressed_exceptions();
  std::atomic<int> ran{0};
  EXPECT_THROW(
      pool.parallel_for(64,
                        [&](std::size_t i) {
                          ran.fetch_add(1);
                          // Three throwing indices spread across the range so
                          // multiple lanes are likely to hit one.
                          if (i == 3 || i == 23 || i == 47)
                            throw std::runtime_error("boom " + std::to_string(i));
                        }),
      std::runtime_error);
  const std::uint64_t suppressed = pool.suppressed_exceptions() - before;
  EXPECT_LE(suppressed, 2u);  // 3 throwers -> 1 rethrown + at most 2 suppressed

  // Clean-epoch check: the same pool must run the next barrier normally.
  std::vector<std::atomic<int>> hits(32);
  pool.parallel_for(hits.size(), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, SerialPoolRethrowsAndStaysUsable) {
  ThreadPool pool(1);
  EXPECT_THROW(pool.parallel_for(
                   8, [](std::size_t i) { if (i == 2) throw std::logic_error("x"); }),
               std::logic_error);
  int count = 0;
  pool.parallel_for(8, [&](std::size_t) { ++count; });
  EXPECT_EQ(count, 8);
}

TEST(ThreadPool, StealBarrierExceptionStillCompletesBarrier) {
  ThreadPool pool(3);
  std::vector<std::vector<std::size_t>> queues(pool.size());
  for (std::size_t i = 0; i < 60; ++i) queues[i % 3].push_back(i);
  std::atomic<int> ran{0};
  EXPECT_THROW(pool.parallel_steal(std::move(queues),
                                   [&](std::size_t i) {
                                     ran.fetch_add(1);
                                     if (i == 10) throw std::runtime_error("steal boom");
                                   }),
               std::runtime_error);
  // Reusable afterwards, in either mode.
  std::vector<std::vector<std::size_t>> q2(pool.size());
  q2[0] = {0, 1, 2, 3};
  std::vector<std::atomic<int>> hits(4);
  pool.parallel_steal(std::move(q2), [&](std::size_t i) { hits[i].fetch_add(1); });
  for (std::size_t i = 0; i < hits.size(); ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

}  // namespace
}  // namespace pregel
