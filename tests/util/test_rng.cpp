#include "util/rng.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <set>
#include <vector>

namespace pregel {
namespace {

TEST(SplitMix64, IsDeterministicForSameSeed) {
  SplitMix64 a(42), b(42);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next(), b.next());
}

TEST(SplitMix64, DiffersAcrossSeeds) {
  SplitMix64 a(1), b(2);
  int same = 0;
  for (int i = 0; i < 100; ++i)
    if (a.next() == b.next()) ++same;
  EXPECT_EQ(same, 0);
}

TEST(SplitMix64, KnownVector) {
  // Reference values for seed 0 from the public-domain splitmix64.c.
  SplitMix64 g(0);
  EXPECT_EQ(g.next(), 0xE220A8397B1DCDAFULL);
  EXPECT_EQ(g.next(), 0x6E789E6AA1B965F4ULL);
  EXPECT_EQ(g.next(), 0x06C45D188009454FULL);
}

TEST(Mix64, IsBijectiveOnSample) {
  std::set<std::uint64_t> outs;
  for (std::uint64_t i = 0; i < 10000; ++i) outs.insert(mix64(i));
  EXPECT_EQ(outs.size(), 10000u);
}

TEST(Mix64, AvalanchesLowBits) {
  // Flipping one input bit should change roughly half the output bits.
  int total = 0;
  for (std::uint64_t i = 1; i <= 64; ++i) {
    total += std::popcount(mix64(i) ^ mix64(i ^ 1));
  }
  const double avg = static_cast<double>(total) / 64.0;
  EXPECT_GT(avg, 20.0);
  EXPECT_LT(avg, 44.0);
}

TEST(Xoshiro256, DeterministicForSameSeed) {
  Xoshiro256 a(7), b(7);
  for (int i = 0; i < 1000; ++i) ASSERT_EQ(a.next(), b.next());
}

TEST(Xoshiro256, DoubleInUnitInterval) {
  Xoshiro256 g(3);
  for (int i = 0; i < 10000; ++i) {
    const double d = g.next_double();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(Xoshiro256, DoubleMeanNearHalf) {
  Xoshiro256 g(11);
  double sum = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) sum += g.next_double();
  EXPECT_NEAR(sum / kN, 0.5, 0.01);
}

TEST(Xoshiro256, NextBelowStaysInBound) {
  Xoshiro256 g(5);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 10ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 1000; ++i) ASSERT_LT(g.next_below(bound), bound);
  }
}

TEST(Xoshiro256, NextBelowZeroBoundReturnsZero) {
  Xoshiro256 g(5);
  EXPECT_EQ(g.next_below(0), 0u);
}

TEST(Xoshiro256, NextBelowIsRoughlyUniform) {
  Xoshiro256 g(9);
  constexpr std::uint64_t kBound = 10;
  std::vector<int> counts(kBound, 0);
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) ++counts[g.next_below(kBound)];
  for (auto c : counts) {
    EXPECT_GT(c, kN / 10 * 0.9);
    EXPECT_LT(c, kN / 10 * 1.1);
  }
}

TEST(Xoshiro256, GaussianMomentsSane) {
  Xoshiro256 g(13);
  double sum = 0, sq = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) {
    const double x = g.next_gaussian();
    sum += x;
    sq += x * x;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.02);
  EXPECT_NEAR(sq / kN, 1.0, 0.03);
}

TEST(Xoshiro256, ExponentialMeanMatchesRate) {
  Xoshiro256 g(17);
  double sum = 0;
  constexpr int kN = 200000;
  for (int i = 0; i < kN; ++i) sum += g.next_exponential(4.0);
  EXPECT_NEAR(sum / kN, 0.25, 0.01);
}

TEST(Xoshiro256, BernoulliFrequencyMatchesP) {
  Xoshiro256 g(19);
  int hits = 0;
  constexpr int kN = 100000;
  for (int i = 0; i < kN; ++i) hits += g.next_bool(0.3) ? 1 : 0;
  EXPECT_NEAR(static_cast<double>(hits) / kN, 0.3, 0.01);
}

}  // namespace
}  // namespace pregel
