#include <gtest/gtest.h>

#include <sstream>

#include "util/ascii_plot.hpp"
#include "util/csv.hpp"
#include "util/histogram.hpp"
#include "util/units.hpp"

namespace pregel {
namespace {

TEST(Units, ByteLiterals) {
  EXPECT_EQ(1_KiB, 1024u);
  EXPECT_EQ(7_GiB, 7ULL * 1024 * 1024 * 1024);
  EXPECT_EQ(3_MiB, 3ULL << 20);
}

TEST(Units, TimeLiterals) {
  EXPECT_DOUBLE_EQ(500_ms, 0.5);
  EXPECT_DOUBLE_EQ(2_s, 2.0);
  EXPECT_DOUBLE_EQ(1000_us, 1e-3);
}

TEST(Units, FormatBytes) {
  EXPECT_EQ(format_bytes(512), "512 B");
  EXPECT_EQ(format_bytes(6_GiB), "6.00 GiB");
  EXPECT_EQ(format_bytes(1536), "1.50 KiB");
}

TEST(Units, FormatSeconds) {
  EXPECT_EQ(format_seconds(0.5), "500.00 ms");
  EXPECT_EQ(format_seconds(90.0), "1.50 min");
  EXPECT_EQ(format_seconds(7200.0), "2.00 h");
  EXPECT_EQ(format_seconds(0.0), "0 s");
}

TEST(Units, FormatUsd) {
  EXPECT_EQ(format_usd(0.48), "$0.48");
  EXPECT_EQ(format_usd(0.012), "$0.0120");
}

TEST(Units, FormatCount) {
  EXPECT_EQ(format_count(0), "0");
  EXPECT_EQ(format_count(999), "999");
  EXPECT_EQ(format_count(1000), "1,000");
  EXPECT_EQ(format_count(4847571), "4,847,571");
}

TEST(Csv, QuotesSpecialCharacters) {
  std::ostringstream os;
  CsvWriter w(os);
  w.header({"a", "b,c", "d\"e"});
  w.field("plain").field("with,comma").field("with\"quote").end_row();
  EXPECT_EQ(os.str(), "a,\"b,c\",\"d\"\"e\"\nplain,\"with,comma\",\"with\"\"quote\"\n");
  EXPECT_EQ(w.rows_written(), 1u);
}

TEST(Csv, NumericFields) {
  std::ostringstream os;
  CsvWriter w(os);
  w.field(1.5).field(std::uint64_t{42}).field(std::int64_t{-3}).end_row();
  EXPECT_EQ(os.str(), "1.5,42,-3\n");
}

TEST(TextTable, AlignsColumns) {
  TextTable t({"name", "value"});
  t.add_row({"x", "1.00"});
  t.add_row({"longer", "25.50"});
  const std::string s = t.to_string();
  EXPECT_NE(s.find("name"), std::string::npos);
  EXPECT_NE(s.find("longer"), std::string::npos);
  EXPECT_NE(s.find("25.50"), std::string::npos);
  EXPECT_EQ(t.row_count(), 2u);
}

TEST(TextTable, PadsShortRows) {
  TextTable t({"a", "b", "c"});
  t.add_row({"only-one"});
  EXPECT_NO_THROW(t.to_string());
}

TEST(Histogram, RejectsBadConstruction) {
  EXPECT_THROW(Histogram(0, 10, 0), std::invalid_argument);
  EXPECT_THROW(Histogram(10, 10, 5), std::invalid_argument);
}

TEST(Histogram, BinsAndClamps) {
  Histogram h(0, 10, 10);
  h.add(0.5);
  h.add(9.5);
  h.add(-100);  // clamps to first bin
  h.add(100);   // clamps to last bin
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.bin(0), 2u);
  EXPECT_EQ(h.bin(9), 2u);
}

TEST(Histogram, QuantileUpperEdge) {
  Histogram h(0, 10, 10);
  for (int i = 0; i < 9; ++i) h.add(i + 0.5);  // one sample per bin 0..8
  // 90% of 9 samples = 8.1 -> needs through bin 8 whose upper edge is 9.
  EXPECT_DOUBLE_EQ(h.quantile_upper_edge(0.9), 9.0);
  EXPECT_DOUBLE_EQ(h.quantile_upper_edge(0.1), 1.0);
}

TEST(Histogram, WeightedAdd) {
  Histogram h(0, 4, 4);
  h.add(1.5, 10);
  EXPECT_EQ(h.total(), 10u);
  EXPECT_EQ(h.bin(1), 10u);
}

TEST(Log2Histogram, BinIndexing) {
  EXPECT_EQ(Log2Histogram::bin_index(0), 0u);
  EXPECT_EQ(Log2Histogram::bin_index(1), 1u);
  EXPECT_EQ(Log2Histogram::bin_index(2), 2u);
  EXPECT_EQ(Log2Histogram::bin_index(3), 2u);
  EXPECT_EQ(Log2Histogram::bin_index(4), 3u);
  EXPECT_EQ(Log2Histogram::bin_index(1023), 10u);
  EXPECT_EQ(Log2Histogram::bin_index(1024), 11u);
}

TEST(Log2Histogram, AccumulatesAndRenders) {
  Log2Histogram h;
  h.add(0);
  h.add(1);
  h.add(5, 3);
  EXPECT_EQ(h.total(), 5u);
  EXPECT_FALSE(h.to_string().empty());
}

TEST(AsciiLineChart, RendersLegendAndData) {
  const std::string s = ascii_line_chart(
      {{"up", {0, 1, 2, 3}}, {"down", {3, 2, 1, 0}}}, 40, 8, "test chart");
  EXPECT_NE(s.find("test chart"), std::string::npos);
  EXPECT_NE(s.find("*=up"), std::string::npos);
  EXPECT_NE(s.find("o=down"), std::string::npos);
}

TEST(AsciiLineChart, HandlesEmptyAndConstant) {
  EXPECT_NE(ascii_line_chart({}, 40, 8).find("(no data)"), std::string::npos);
  EXPECT_NO_THROW(ascii_line_chart({{"c", {5, 5, 5}}}, 40, 8));
}

TEST(AsciiBarChart, RendersBarsWithValues) {
  const std::string s =
      ascii_bar_chart({{"a", 1.0}, {"bb", 3.5}}, 30, "bars", 1.0);
  EXPECT_NE(s.find("bars"), std::string::npos);
  EXPECT_NE(s.find("3.500"), std::string::npos);
}

}  // namespace
}  // namespace pregel
