// The bag frontier's one load-bearing promise: leaf enumeration replays
// insertion order exactly, under any sequence of pushes, bulk fills, merges,
// and splits. The engine's bit-identity contract stands on that.
#include <gtest/gtest.h>

#include <numeric>
#include <span>
#include <vector>

#include "util/bag.hpp"
#include "util/rng.hpp"

namespace pregel {
namespace {

std::vector<std::uint32_t> enumerate(const Bag& b) {
  std::vector<std::uint32_t> out;
  for (std::size_t i = 0; i < b.num_leaves(); ++i) {
    const auto leaf = b.leaf(i);
    out.insert(out.end(), leaf.begin(), leaf.end());
  }
  return out;
}

std::vector<std::uint32_t> iota(std::uint32_t n, std::uint32_t start = 0) {
  std::vector<std::uint32_t> v(n);
  std::iota(v.begin(), v.end(), start);
  return v;
}

TEST(Bag, PushPreservesOrderAcrossLeafBoundaries) {
  Bag b(4);
  const auto items = iota(11);
  for (std::uint32_t x : items) b.push(x);
  EXPECT_EQ(b.size(), items.size());
  EXPECT_EQ(b.num_leaves(), 3u);  // 4 + 4 + 3
  EXPECT_EQ(enumerate(b), items);
  // Every leaf but the last is exactly grain-sized.
  for (std::size_t i = 0; i + 1 < b.num_leaves(); ++i)
    EXPECT_EQ(b.leaf(i).size(), b.grain());
}

TEST(Bag, AssignMatchesPushAndReusesLeafStorage) {
  Bag b(8);
  b.assign(std::span<const std::uint32_t>(iota(100)));
  EXPECT_EQ(b.size(), 100u);
  EXPECT_EQ(enumerate(b), iota(100));

  // Refill with fewer items: pooled leaves shrink the live window, order
  // and contents still exact.
  b.assign(std::span<const std::uint32_t>(iota(17, 500)));
  EXPECT_EQ(b.size(), 17u);
  EXPECT_EQ(b.num_leaves(), 3u);
  EXPECT_EQ(enumerate(b), iota(17, 500));

  b.clear();
  EXPECT_TRUE(b.empty());
  EXPECT_EQ(b.num_leaves(), 0u);
}

TEST(Bag, MergeConcatenatesInOrder) {
  Bag a(4), b(4);
  a.assign(std::span<const std::uint32_t>(iota(10)));
  b.assign(std::span<const std::uint32_t>(iota(7, 100)));
  a.merge(std::move(b));
  auto expect = iota(10);
  const auto tail = iota(7, 100);
  expect.insert(expect.end(), tail.begin(), tail.end());
  EXPECT_EQ(a.size(), 17u);
  EXPECT_EQ(enumerate(a), expect);
  EXPECT_TRUE(b.empty());  // NOLINT(bugprone-use-after-move): documented post-state
}

TEST(Bag, SplitTakesPrefixAndPreservesBothHalves) {
  Bag a(4);
  const auto items = iota(25);
  a.assign(std::span<const std::uint32_t>(items));
  Bag front = a.split();
  EXPECT_EQ(front.grain(), a.grain());
  EXPECT_GT(front.size(), 0u);
  // Concatenating the halves reproduces the original sequence exactly.
  auto got = enumerate(front);
  const auto rest = enumerate(a);
  got.insert(got.end(), rest.begin(), rest.end());
  EXPECT_EQ(got, items);
  // The split peels leading leaves: the front half is a prefix.
  EXPECT_EQ(enumerate(front),
            std::vector<std::uint32_t>(items.begin(),
                                       items.begin() + static_cast<long>(front.size())));
}

TEST(Bag, PennantRanksAreBinaryDecompositionOfFullLeaves) {
  Bag b(2);
  b.assign(std::span<const std::uint32_t>(iota(22)));  // 11 full leaves
  const auto ranks = b.pennant_ranks();                // 11 = 8 + 2 + 1
  EXPECT_EQ(ranks, (std::vector<std::uint32_t>{3, 1, 0}));
}

TEST(Bag, RandomizedMergeSplitRoundTrip) {
  Xoshiro256 rng(2026);
  for (int trial = 0; trial < 50; ++trial) {
    const std::uint32_t grain = 1 + static_cast<std::uint32_t>(rng.next() % 16);
    Bag a(grain), b(grain);
    std::vector<std::uint32_t> expect;
    const std::uint32_t na = static_cast<std::uint32_t>(rng.next() % 200);
    const std::uint32_t nb = static_cast<std::uint32_t>(rng.next() % 200);
    for (std::uint32_t i = 0; i < na; ++i) {
      a.push(i);
      expect.push_back(i);
    }
    for (std::uint32_t i = 0; i < nb; ++i) {
      b.push(1000 + i);
      expect.push_back(1000 + i);
    }
    a.merge(std::move(b));
    if (rng.next() % 2 == 0 && !a.empty()) {
      Bag front = a.split();
      auto got = enumerate(front);
      const auto rest = enumerate(a);
      got.insert(got.end(), rest.begin(), rest.end());
      EXPECT_EQ(got, expect) << "trial " << trial << " grain " << grain;
    } else {
      EXPECT_EQ(enumerate(a), expect) << "trial " << trial << " grain " << grain;
    }
  }
}

}  // namespace
}  // namespace pregel
