// Generational checkpoint store: two-phase publish atomicity, delta/base
// scheduling, the newest-to-oldest restore walk with replica standby and
// multi-generation fallback, retention GC, scrub repair, and the CRC-trailed
// manifest text.
#include <gtest/gtest.h>

#include <memory>
#include <optional>
#include <span>
#include <string>
#include <vector>

#include "cloud/ckpt_store.hpp"
#include "cloud/faults.hpp"
#include "util/crc32c.hpp"

namespace pregel::cloud {
namespace {

constexpr std::uint32_t kParts = 4;

CkptStore make_store(const CkptOptions& opts) {
  CkptStore store;
  store.configure(opts, kParts);
  store.seed_initial(std::make_shared<int>(0));
  return store;
}

std::vector<Bytes> legs(Bytes each) { return std::vector<Bytes>(kParts, each); }
std::vector<std::uint32_t> homes() { return {0, 1, 0, 1}; }
std::vector<std::uint32_t> zones2() { return {0, 1, 0, 1}; }

CkptWriteOutcome publish(CkptStore& store, FaultInjector& faults, Bytes each,
                         std::uint64_t resume, std::uint64_t locv = 0u) {
  const auto out =
      store.write_generation(resume, locv, legs(each), homes(), zones2(), 2, faults);
  if (out.published) store.attach_payload(std::make_shared<std::uint64_t>(resume));
  return out;
}

TEST(CkptOptions, ValidateRejectsZeroBounds) {
  CkptOptions o;
  o.max_chain_length = 0;
  EXPECT_THROW(o.validate(), std::logic_error);
  o = CkptOptions{};
  o.retained_generations = 0;
  EXPECT_THROW(o.validate(), std::logic_error);
  EXPECT_NO_THROW(CkptOptions{}.validate());
}

TEST(CkptStore, SeedInitialIsIdempotentAndFree) {
  CkptStore store = make_store(CkptOptions{});
  EXPECT_TRUE(store.has_checkpoint());
  EXPECT_EQ(store.newest_seq(), 0u);
  store.seed_initial(std::make_shared<int>(1));  // no-op: gen 0 exists
  ASSERT_EQ(store.generations().size(), 1u);
  EXPECT_EQ(*static_cast<const int*>(store.newest_payload()), 0);
  EXPECT_TRUE(store.generations().front().is_base);
}

TEST(CkptStore, FirstUploadIsBaseThenDeltasUntilChainBound) {
  CkptOptions o;
  o.max_chain_length = 2;
  CkptStore store = make_store(o);
  FaultInjector faults;
  EXPECT_TRUE(store.next_is_base(0));
  EXPECT_TRUE(publish(store, faults, 100, 2).is_base);   // base
  EXPECT_FALSE(publish(store, faults, 10, 4).is_base);   // delta 1
  EXPECT_FALSE(publish(store, faults, 10, 6).is_base);   // delta 2 = bound
  EXPECT_TRUE(publish(store, faults, 100, 8).is_base);   // forced re-base
  EXPECT_EQ(store.newest_seq(), 4u);
  EXPECT_EQ(store.newest_resume_superstep(), 8u);
}

TEST(CkptStore, LocationVersionChangeForcesRebase) {
  CkptStore store = make_store(CkptOptions{});
  FaultInjector faults;
  publish(store, faults, 100, 2, /*locv=*/0);
  EXPECT_FALSE(store.next_is_base(0));
  EXPECT_TRUE(store.next_is_base(1));  // migration bumped the location tables
  EXPECT_TRUE(publish(store, faults, 100, 4, /*locv=*/1).is_base);
}

TEST(CkptStore, DeltaDisabledWritesOnlyBases) {
  CkptOptions o;
  o.delta_enabled = false;
  CkptStore store = make_store(o);
  FaultInjector faults;
  for (std::uint64_t i = 0; i < 3; ++i)
    EXPECT_TRUE(publish(store, faults, 100, 2 + 2 * i).is_base);
}

TEST(CkptStore, TornManifestLosesTheRoundAtomically) {
  CkptOptions o;
  o.scheduled_manifest_tears = {1};  // the second write round
  CkptStore store = make_store(o);
  FaultInjector faults;
  EXPECT_TRUE(publish(store, faults, 100, 2).published);
  const auto lost = publish(store, faults, 10, 4);
  EXPECT_TRUE(lost.manifest_torn);
  EXPECT_FALSE(lost.published);
  // Nothing half-written became visible: the previous generation is intact
  // and still newest; the lost round's serial is burned, never reused.
  EXPECT_EQ(store.newest_seq(), 1u);
  EXPECT_EQ(store.newest_resume_superstep(), 2u);
  EXPECT_TRUE(publish(store, faults, 10, 6).published);
  EXPECT_EQ(store.newest_seq(), 3u);
}

TEST(CkptStore, RestorePlanPrefersNewestIntactGeneration) {
  CkptStore store = make_store(CkptOptions{});
  FaultInjector faults;
  publish(store, faults, 100, 2);
  publish(store, faults, 10, 4);
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 2u);
  EXPECT_EQ(plan->resume_superstep, 4u);
  EXPECT_EQ(plan->fallback_depth, 0u);
  EXPECT_FALSE(plan->initial);
  // Restore set = base + delta: each partition downloads both legs.
  ASSERT_EQ(plan->partition_bytes.size(), kParts);
  for (const Bytes b : plan->partition_bytes) EXPECT_EQ(b, 110u);
  EXPECT_EQ(*static_cast<const std::uint64_t*>(plan->payload.get()), 4u);
}

TEST(CkptStore, TornDeltaLegFallsBackOneGeneration) {
  CkptOptions o;
  o.scheduled_leg_tears = {{1, 2}};  // round 1 (first delta), partition 2
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);
  publish(store, faults, 10, 4);  // newest, but its leg 2 landed torn
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 1u);
  EXPECT_EQ(plan->resume_superstep, 2u);
  EXPECT_EQ(plan->fallback_depth, 1u);
  EXPECT_GE(plan->corrupt_legs, 1u);
}

TEST(CkptStore, CorruptMidChainDeltaFailsEveryDescendant) {
  // A rotted delta in the middle of the chain poisons the restore set of
  // every newer delta built on it: the walk falls back two generations.
  CkptOptions o;
  o.max_chain_length = 8;
  o.scheduled_leg_rot = {{2, 0}};  // publish serial 2 = first delta, partition 0
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);  // seq 1: base
  publish(store, faults, 10, 4);   // seq 2: delta (rotted at rest)
  publish(store, faults, 10, 6);   // seq 3: delta needs seq 2 -> also unusable
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 1u);
  EXPECT_EQ(plan->fallback_depth, 2u);
}

TEST(CkptStore, RottedManifestFailsChainVerification) {
  CkptOptions o;
  o.scheduled_manifest_rot = {2};
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);
  publish(store, faults, 10, 4);  // seq 2, manifest rots at rest
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 1u);
  EXPECT_GE(plan->corrupt_manifests, 1u);
}

TEST(CkptStore, EverythingBadFallsToGenerationZero) {
  CkptOptions o;
  o.scheduled_manifest_rot = {1};
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);  // only uploaded generation; manifest rots
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_TRUE(plan->initial);
  EXPECT_EQ(plan->seq, 0u);
  EXPECT_EQ(plan->resume_superstep, 0u);
  EXPECT_EQ(plan->fallback_depth, 1u);
  for (const Bytes b : plan->partition_bytes) EXPECT_EQ(b, 0u);
}

TEST(CkptStore, ZoneLossReadsReplicaOrFallsBack) {
  CkptStore store = make_store(CkptOptions{});
  FaultInjector faults;
  publish(store, faults, 100, 2);
  ASSERT_TRUE(store.complete_replica_round(faults));
  // Zone 0 dark: partitions homed there (0 and 2) read their replicas.
  auto plan = store.plan_restore(0u, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 1u);
  EXPECT_EQ(plan->replica_reads, 2u);

  // Without a replica round the same outage forces generation 0.
  CkptStore bare = make_store(CkptOptions{});
  publish(bare, faults, 100, 2);
  auto fallback = bare.plan_restore(0u, faults);
  ASSERT_TRUE(fallback.has_value());
  EXPECT_TRUE(fallback->initial);
}

TEST(CkptStore, ScheduledReplicaFailureAbandonsTheRound) {
  CkptOptions o;
  o.scheduled_replica_failures = {0};
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);
  EXPECT_FALSE(store.complete_replica_round(faults));
  EXPECT_FALSE(store.generations().back().replicated);
}

TEST(CkptStore, TruncateAfterDropsNewerGenerationsAndReschedulesRebase) {
  CkptOptions o;
  o.max_chain_length = 2;
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);  // seq 1: base
  publish(store, faults, 10, 4);   // seq 2: delta
  publish(store, faults, 10, 6);   // seq 3: delta (bound reached)
  store.truncate_after(2);
  EXPECT_EQ(store.newest_seq(), 2u);
  // One delta since the base again: the replay's next round is a delta,
  // then the bound forces the re-base on schedule.
  EXPECT_FALSE(store.next_is_base(0));
  publish(store, faults, 10, 6);
  EXPECT_TRUE(store.next_is_base(0));
}

TEST(CkptStore, RetentionGcKeepsRestoreSetsIntact) {
  CkptOptions o;
  o.max_chain_length = 2;
  o.retained_generations = 2;
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);   // seq 1: base A
  publish(store, faults, 10, 4);    // seq 2: delta on A
  publish(store, faults, 10, 6);    // seq 3: delta on A (bound)
  // Retained = {2, 3}; their base A is still needed, so nothing is deleted.
  EXPECT_EQ(store.generations().size(), 4u);  // gen0 + A + 2 deltas
  const auto rebase = publish(store, faults, 100, 8);  // seq 4: base B
  // Retained = {3, 4}; seq 3's restore set is A -> 2 -> 3, so the whole old
  // chain is still pinned and GC deletes nothing.
  EXPECT_TRUE(rebase.published);
  EXPECT_EQ(rebase.gc_generations, 0u);
  const auto after = publish(store, faults, 10, 10);  // seq 5: delta on B
  // Retained = {4, 5}: base B needs no ancestor, so A and both of its
  // deltas age out together (one delete op per leg plus the manifest).
  EXPECT_EQ(after.gc_generations, 3u);
  EXPECT_EQ(after.gc_delete_ops, 3u * (kParts + 1));
  ASSERT_EQ(store.generations().size(), 3u);  // gen0 + B + delta
  EXPECT_EQ(store.generations()[0].seq, 0u);
  EXPECT_EQ(store.generations()[1].seq, 4u);
  // Every surviving generation still restores.
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 5u);
}

TEST(CkptStore, ScrubRepairsRotAndManifests) {
  CkptOptions o;
  o.scheduled_leg_rot = {{1, 1}};
  o.scheduled_manifest_rot = {1};
  CkptStore store = make_store(o);
  FaultInjector faults;
  publish(store, faults, 100, 2);
  const auto out = store.scrub(faults);
  EXPECT_EQ(out.repairs, 1u);
  EXPECT_EQ(out.manifest_repairs, 1u);
  EXPECT_EQ(out.repaired_bytes, 100u);
  EXPECT_GT(out.copies_verified, 0u);
  // Repaired copies verify on the next walk and the next scrub finds
  // nothing (the scheduled rot applies to the pre-repair epoch only).
  const auto again = store.scrub(faults);
  EXPECT_EQ(again.repairs, 0u);
  EXPECT_EQ(again.manifest_repairs, 0u);
  auto plan = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(plan.has_value());
  EXPECT_EQ(plan->seq, 1u);
  EXPECT_EQ(plan->fallback_depth, 0u);
}

TEST(CkptStore, RateDrawnTornLegsAreDetectedOnRestore) {
  FaultPlan plan;
  plan.ckpt_torn_write_rate = 0.9;  // nearly every write tears
  FaultInjector faults(plan);
  CkptStore store = make_store(CkptOptions{});
  bool any_torn = false;
  for (std::uint64_t i = 0; i < 4; ++i)
    any_torn = publish(store, faults, 100, 2 + 2 * i).torn_legs > 0 || any_torn;
  EXPECT_TRUE(any_torn);
  auto restore = store.plan_restore(std::nullopt, faults);
  ASSERT_TRUE(restore.has_value());  // gen 0 floor at worst
}

TEST(CkptGeneration, ManifestTextCarriesCrcTrailer) {
  CkptStore store = make_store(CkptOptions{});
  FaultInjector faults;
  publish(store, faults, 100, 2);
  const CkptGeneration& gen = store.generations().back();
  const std::string text = gen.manifest_text();
  EXPECT_NE(text.find("pregel-ckpt-manifest-v1 seq=1"), std::string::npos);
  EXPECT_NE(text.find("legs=4"), std::string::npos);
  const std::size_t crc_at = text.rfind("crc=");
  ASSERT_NE(crc_at, std::string::npos);
  // The trailer is the CRC32C of everything before it — recompute and match.
  const std::string body = text.substr(0, crc_at);
  const std::uint32_t crc = util::crc32c(
      std::as_bytes(std::span(body.data(), body.size())));
  EXPECT_EQ(text.substr(crc_at), "crc=" + std::to_string(crc) + "\n");
  EXPECT_EQ(gen.total_bytes(), 400u);
}

TEST(CkptStore, ChainHashLinksParentToChild) {
  CkptStore store = make_store(CkptOptions{});
  FaultInjector faults;
  publish(store, faults, 100, 2);
  publish(store, faults, 10, 4);
  const auto& gens = store.generations();
  ASSERT_EQ(gens.size(), 3u);
  EXPECT_NE(gens[1].chain_hash, 0u);
  EXPECT_NE(gens[2].chain_hash, gens[1].chain_hash);
}

}  // namespace
}  // namespace pregel::cloud
