// Control-plane hardening: the identified, epoch-fenced barrier protocol,
// the idempotent barrier drain, the CRC-verified manager manifest, the
// JobManager failover state machine, and the RetryPolicy op_deadline edge
// cases it all leans on.
#include <gtest/gtest.h>

#include <cmath>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/faults.hpp"
#include "cloud/manager.hpp"
#include "cloud/queue.hpp"

namespace pregel::cloud {
namespace {

// ---------------------------------------------------------------------------
// Message formats.

TEST(CheckinFormat, RoundTripsIdentityEpochAndCount) {
  const std::string body = make_checkin(7, 3, 1024);
  EXPECT_EQ(body, "active:7:3:1024");
  const auto c = parse_checkin(body);
  ASSERT_TRUE(c.has_value());
  EXPECT_EQ(c->worker, 7u);
  EXPECT_EQ(c->epoch, 3u);
  EXPECT_EQ(c->active, 1024u);
}

TEST(CheckinFormat, RejectsEveryMalformedShape) {
  // The anonymous legacy format, truncations, non-numeric fields, trailing
  // garbage, extra fields, and empty fields must all be rejected — a
  // malformed check-in read as zero would silently corrupt the barrier tally.
  const char* bad[] = {
      "active:42",            // legacy anonymous format: no identity, no epoch
      "active:7:3",           // missing count
      "active:7",             // missing epoch and count
      "active:",              // nothing at all
      "active:7:3:1024:9",    // extra field
      "active:7:3:10x4",      // trailing garbage in count
      "active:x:3:1024",      // non-numeric worker
      "active:7::1024",       // empty epoch
      "active:-1:3:1024",     // negative worker
      "Active:7:3:1024",      // wrong prefix case
      "step:7:3:1024",        // wrong prefix
      "",                     // empty body
      "active:99999999999:0:1",  // worker id overflows uint32
  };
  for (const char* body : bad)
    EXPECT_FALSE(parse_checkin(body).has_value()) << "accepted: '" << body << "'";
}

TEST(StepTokenFormat, RoundTripsAndRejectsMalformed) {
  const std::string body = make_step_token(12, 4);
  EXPECT_EQ(body, "superstep:12:4");
  const auto t = parse_step_token(body);
  ASSERT_TRUE(t.has_value());
  EXPECT_EQ(t->superstep, 12u);
  EXPECT_EQ(t->epoch, 4u);
  for (const char* bad : {"superstep:12", "superstep:12:4:9", "superstep:12:",
                          "superstep:a:4", "superstep:", "active:12:4", ""})
    EXPECT_FALSE(parse_step_token(bad).has_value()) << "accepted: '" << bad << "'";
}

// ---------------------------------------------------------------------------
// Barrier drain: dedupe, fencing, detection of missing workers.

TEST(BarrierDrain, TalliesEveryWorkerExactlyOnce) {
  AzureQueue q;
  for (std::uint32_t w = 0; w < 4; ++w) q.put(make_checkin(w, 1, 10 * (w + 1)));
  std::uint64_t ops = 0;
  const auto s = drain_barrier(q, 4, 1, [&](std::uint32_t) { ++ops; });
  EXPECT_EQ(s.checked_in, 4u);
  EXPECT_EQ(s.active_total, 10u + 20u + 30u + 40u);
  EXPECT_EQ(s.duplicates, 0u);
  EXPECT_EQ(s.fenced, 0u);
  EXPECT_EQ(s.malformed, 0u);
  EXPECT_TRUE(s.missing.empty());
  // One get + one remove per worker, exactly like the pre-identity barrier
  // loop — the protocol upgrade costs nothing on the clean path.
  EXPECT_EQ(ops, 8u);
  EXPECT_EQ(q.visible_count(), 0u);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(BarrierDrain, DedupesRedeliveredCheckin) {
  AzureQueue q;
  q.put(make_checkin(0, 2, 100));
  q.put(make_checkin(0, 2, 100));  // the queue redelivered worker 0's check-in
  q.put(make_checkin(1, 2, 50));
  const auto s = drain_barrier(q, 2, 2);
  EXPECT_EQ(s.checked_in, 2u);
  EXPECT_EQ(s.active_total, 150u);  // 100 counted once, not twice
  EXPECT_EQ(s.duplicates, 1u);
  EXPECT_TRUE(s.missing.empty());
  EXPECT_EQ(q.visible_count(), 0u);
}

TEST(BarrierDrain, FencesStaleEpochFromZombieWorker) {
  AzureQueue q;
  q.put(make_checkin(0, 1, 999));  // zombie: pre-failover epoch
  q.put(make_checkin(0, 2, 10));
  q.put(make_checkin(1, 2, 20));
  const auto s = drain_barrier(q, 2, 2);
  EXPECT_EQ(s.checked_in, 2u);
  EXPECT_EQ(s.active_total, 30u);  // the stale 999 never enters the tally
  EXPECT_EQ(s.fenced, 1u);
  EXPECT_EQ(s.duplicates, 0u);
  EXPECT_TRUE(s.missing.empty());
  EXPECT_EQ(q.visible_count(), 0u);
}

TEST(BarrierDrain, MissingWorkerReportedNotAsserted) {
  AzureQueue q;
  q.put(make_checkin(0, 1, 5));
  q.put(make_checkin(2, 1, 7));
  const auto s = drain_barrier(q, 3, 1);  // worker 1 never checked in
  EXPECT_EQ(s.checked_in, 2u);
  EXPECT_EQ(s.active_total, 12u);
  ASSERT_EQ(s.missing.size(), 1u);
  EXPECT_EQ(s.missing.front(), 1u);
}

TEST(BarrierDrain, MalformedAndOutOfRangeBodiesAreDropped) {
  AzureQueue q;
  q.put("active:garbage");
  q.put(make_checkin(9, 1, 4));  // sender id beyond the fleet
  q.put(make_checkin(0, 1, 11));
  const auto s = drain_barrier(q, 1, 1);
  EXPECT_EQ(s.checked_in, 1u);
  EXPECT_EQ(s.active_total, 11u);
  EXPECT_EQ(s.malformed, 2u);
  EXPECT_TRUE(s.missing.empty());
  EXPECT_EQ(q.visible_count(), 0u);
}

TEST(BarrierDrain, LostRemoveRedeliversAndIsDeduped) {
  // Every first-time tally loses its remove(): each message redelivers once,
  // is classified as a duplicate, and the tally still counts each worker once.
  AzureQueue q;
  for (std::uint32_t w = 0; w < 3; ++w) q.put(make_checkin(w, 1, w + 1));
  const auto s = drain_barrier(q, 3, 1, {}, []() { return true; });
  EXPECT_EQ(s.checked_in, 3u);
  EXPECT_EQ(s.active_total, 6u);
  EXPECT_EQ(s.duplicates, 3u);
  EXPECT_TRUE(s.missing.empty());
  // Nothing may leak into the next superstep's barrier — not even the
  // redelivered copy of the last worker's check-in.
  EXPECT_EQ(q.visible_count(), 0u);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(BarrierDrain, SeededDuplicateStreamIsDeterministic) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.queue_duplicate_rate = 0.5;
    plan.queue_duplicate_seed = seed;
    FaultInjector inj(plan);
    AzureQueue q;
    for (std::uint32_t w = 0; w < 16; ++w) q.put(make_checkin(w, 1, 1));
    const auto s = drain_barrier(q, 16, 1, {}, [&]() { return inj.next_duplicate(); });
    EXPECT_EQ(s.checked_in, 16u);
    EXPECT_EQ(s.active_total, 16u);
    return s.duplicates;
  };
  EXPECT_EQ(run(0xFA09), run(0xFA09));
  EXPECT_NE(run(0xFA09), run(0xFA09) + 1);  // sanity: stable value
}

TEST(BarrierDrain, ZeroDuplicateRateDrawsNothing) {
  FaultPlan plan;  // all rates zero
  FaultInjector inj(plan);
  EXPECT_FALSE(inj.next_duplicate());
  EXPECT_EQ(inj.duplicate_draws(), 0u);  // zero rate must not consume the stream
}

// ---------------------------------------------------------------------------
// Manager manifest: CRC-verified, bit-exact round trip.

TEST(ManagerManifest, SerializeRoundTripsBitExactly) {
  ManagerManifest m;
  m.superstep = 17;
  m.epoch = 3;
  m.location_version = 5;
  m.aggregators = {{1, 1.0 / 3.0}, {7, -0.0}, {42, 6.02214076e23}, {99, 5e-324}};
  const auto back = ManagerManifest::deserialize(m.serialize());
  ASSERT_TRUE(back.has_value());
  EXPECT_EQ(*back, m);
  for (std::size_t i = 0; i < m.aggregators.size(); ++i) {
    EXPECT_EQ(std::signbit(back->aggregators[i].second),
              std::signbit(m.aggregators[i].second));
  }
}

TEST(ManagerManifest, DeserializeRejectsCorruption) {
  ManagerManifest m;
  m.superstep = 9;
  m.aggregators = {{3, 2.5}};
  std::string blob = m.serialize();
  EXPECT_TRUE(ManagerManifest::deserialize(blob).has_value());
  std::string flipped = blob;
  flipped[flipped.find('9')] = '8';  // bit-rot inside the body
  EXPECT_FALSE(ManagerManifest::deserialize(flipped).has_value());
  EXPECT_FALSE(ManagerManifest::deserialize(blob.substr(0, blob.size() / 2)).has_value());
  EXPECT_FALSE(ManagerManifest::deserialize("").has_value());
  EXPECT_FALSE(ManagerManifest::deserialize("crc=123\n").has_value());
}

// ---------------------------------------------------------------------------
// JobManager failover state machine.

TEST(JobManager, FailoverReloadsManifestAndBumpsEpoch) {
  JobManager mgr;
  EXPECT_EQ(mgr.state(), ManagerState::kPrimary);
  ManagerManifest m;
  m.superstep = 11;
  m.epoch = mgr.epoch();
  m.aggregators = {{5, 0.125}};
  mgr.persist(m);

  mgr.preempt();
  EXPECT_EQ(mgr.state(), ManagerState::kFailed);
  const ManagerManifest recovered = mgr.failover();
  EXPECT_EQ(recovered, m);
  EXPECT_EQ(mgr.state(), ManagerState::kPrimary);
  EXPECT_EQ(mgr.epoch(), m.epoch + 1);  // fencing epoch moved past the dead primary
  EXPECT_EQ(mgr.failovers(), 1u);

  // A second failover keeps fencing forward.
  m.epoch = mgr.epoch();
  mgr.persist(m);
  mgr.preempt();
  mgr.failover();
  EXPECT_EQ(mgr.epoch(), m.epoch + 1);
  EXPECT_EQ(mgr.failovers(), 2u);
}

TEST(JobManager, FailoverWithoutDurableStateThrows) {
  JobManager fresh;
  fresh.preempt();
  EXPECT_THROW(fresh.failover(), std::runtime_error);

  JobManager corrupted;
  ManagerManifest m;
  corrupted.persist(m);
  corrupted.corrupt_manifest_for_test("pregel-manifest-v1 superstep=0 ...\ncrc=1\n");
  corrupted.preempt();
  EXPECT_THROW(corrupted.failover(), std::runtime_error);
}

// ---------------------------------------------------------------------------
// RetryPolicy op_deadline edge cases (audit pins).

TEST(RetryDeadline, FirstBackoffExceedingDeadlineAbandonsWithoutChargingSleep) {
  // op_deadline below even the base backoff: the op must be abandoned after
  // the first failed attempt, charging only that attempt's latency — never a
  // sleep it would not have had budget to start.
  FaultPlan plan;
  plan.queue_op_failure_rate = 0.9;
  FaultInjector inj(plan);
  RetryPolicy retry;
  retry.max_attempts = 5;
  retry.base_backoff = 0.1;
  retry.max_backoff = 5.0;
  retry.op_deadline = 0.05;
  const Seconds attempt_latency = 0.01;
  bool saw_failure = false;
  for (int i = 0; i < 100 && !saw_failure; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, attempt_latency);
    if (out.success) continue;
    saw_failure = true;
    EXPECT_EQ(out.attempts, 1u);  // attempts remained, but the budget was gone
    EXPECT_EQ(out.faults, 1u);
    EXPECT_DOUBLE_EQ(out.extra_latency, attempt_latency);
    EXPECT_LE(out.extra_latency, retry.op_deadline);
  }
  EXPECT_TRUE(saw_failure);
}

TEST(RetryDeadline, DeadlineHitWithAttemptsRemainingStopsRetrying) {
  FaultPlan plan;
  plan.queue_op_failure_rate = 0.95;
  FaultInjector inj(plan);
  RetryPolicy retry;
  retry.max_attempts = 50;
  retry.base_backoff = 0.1;
  retry.max_backoff = 5.0;
  retry.op_deadline = 1.0;
  const Seconds attempt_latency = 0.2;
  bool saw_deadline_stop = false;
  for (int i = 0; i < 200 && !saw_deadline_stop; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, attempt_latency);
    if (out.success || out.attempts == retry.max_attempts) continue;
    saw_deadline_stop = true;
    EXPECT_LT(out.attempts, retry.max_attempts);
    EXPECT_EQ(out.faults, out.attempts);  // accounting: every attempt failed
    EXPECT_EQ(out.corruptions, 0u);
    // The charged latency can exceed the deadline only by the final failed
    // attempt itself, never by an uncharged backoff sleep.
    EXPECT_LE(out.extra_latency, retry.op_deadline + attempt_latency);
  }
  EXPECT_TRUE(saw_deadline_stop);
}

TEST(RetryDeadline, DefaultPolicyNeverReachesDeadline) {
  // With the default policy the max possible sleep total (4 sleeps capped at
  // 5 s) plus small attempt latencies sits far below the 60 s deadline, so
  // the deadline path cannot fire — pinned here because tests elsewhere rely
  // on default-policy outcomes being a pure function of max_attempts.
  RetryPolicy retry;
  EXPECT_LT(4 * retry.max_backoff + retry.max_attempts * 0.1, retry.op_deadline);
}

}  // namespace
}  // namespace pregel::cloud
