#include <gtest/gtest.h>

#include "cloud/blob.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/elasticity.hpp"
#include "cloud/network.hpp"
#include "cloud/queue.hpp"
#include "cloud/vm.hpp"

namespace pregel::cloud {
namespace {

TEST(VmCatalog, AzureLargeSpecsMatchPaper) {
  const VmSpec vm = azure_large_2012();
  EXPECT_EQ(vm.cores, 4u);
  EXPECT_DOUBLE_EQ(vm.clock_ghz, 1.6);
  EXPECT_EQ(vm.ram, 7_GiB);
  EXPECT_DOUBLE_EQ(vm.network_bps, mbps(400));
  EXPECT_DOUBLE_EQ(vm.price_per_hour, 0.48);
}

TEST(VmCatalog, SmallIsQuarterOfLarge) {
  const VmSpec s = azure_small_2012();
  const VmSpec l = azure_large_2012();
  EXPECT_EQ(s.cores * 4, l.cores);
  EXPECT_DOUBLE_EQ(s.network_bps * 4, l.network_bps);
  EXPECT_DOUBLE_EQ(s.price_per_hour * 4, l.price_per_hour);
  EXPECT_EQ(s.ram * 4, l.ram);
}

TEST(VmCatalog, ScaledRam) {
  const VmSpec vm = with_scaled_ram(azure_large_2012(), 0.1);
  EXPECT_EQ(vm.ram, static_cast<Bytes>(static_cast<double>(7_GiB) * 0.1));
  EXPECT_EQ(vm.cores, 4u);  // only RAM changes
  EXPECT_THROW(with_scaled_ram(azure_large_2012(), 0.0), std::logic_error);
}

TEST(CostMeter, ProRataPerSecond) {
  CostMeter m;
  m.charge(azure_large_2012(), 8, 3600.0);
  EXPECT_NEAR(m.total_usd(), 8 * 0.48, 1e-9);
  EXPECT_DOUBLE_EQ(m.total_vm_seconds(), 8 * 3600.0);
  m.charge(azure_large_2012(), 4, 1800.0);
  EXPECT_NEAR(m.total_usd(), 8 * 0.48 + 4 * 0.24, 1e-9);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_usd(), 0.0);
}

TEST(CostMeter, RejectsNegativeDuration) {
  CostMeter m;
  EXPECT_THROW(m.charge(azure_large_2012(), 1, -1.0), std::logic_error);
}

TEST(CostModel, ValidatesParams) {
  CostParams p;
  p.network_efficiency = 0.0;
  EXPECT_THROW(CostModel{p}, std::logic_error);
  p = {};
  p.vm_restart_threshold = 1.0;
  EXPECT_THROW(CostModel{p}, std::logic_error);
}

TEST(CostModel, NoThrashWithinRam) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  EXPECT_DOUBLE_EQ(m.thrash_penalty(vm.ram, vm), 1.0);
  EXPECT_DOUBLE_EQ(m.thrash_penalty(1_GiB, vm), 1.0);
}

TEST(CostModel, ThrashGrowsLinearlyWithOverflow) {
  CostParams p;
  p.vm_thrash_slope = 10.0;
  const CostModel m{p};
  const VmSpec vm = azure_large_2012();
  const auto mem10 = static_cast<Bytes>(static_cast<double>(vm.ram) * 1.1);
  EXPECT_NEAR(m.thrash_penalty(mem10, vm), 2.0, 0.01);  // 1 + 10*0.1
  const auto mem20 = static_cast<Bytes>(static_cast<double>(vm.ram) * 1.2);
  EXPECT_NEAR(m.thrash_penalty(mem20, vm), 3.0, 0.01);
}

TEST(CostModel, RestartThreshold) {
  const CostModel m;  // default threshold 1.5
  const VmSpec vm = azure_large_2012();
  EXPECT_FALSE(m.triggers_restart(vm.ram, vm));
  EXPECT_FALSE(
      m.triggers_restart(static_cast<Bytes>(static_cast<double>(vm.ram) * 1.49), vm));
  EXPECT_TRUE(
      m.triggers_restart(static_cast<Bytes>(static_cast<double>(vm.ram) * 1.5), vm));
}

TEST(CostModel, ComputeTimeScalesWithWork) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  WorkerLoad a;
  a.vertices_computed = 1000;
  a.messages_processed = 1000;
  WorkerLoad b = a;
  b.vertices_computed = 2000;
  b.messages_processed = 2000;
  EXPECT_NEAR(m.compute_time(b, vm), 2.0 * m.compute_time(a, vm), 1e-12);
}

TEST(CostModel, ComputeTimeScalesInverseWithCores) {
  const CostModel m;
  VmSpec vm = azure_large_2012();
  WorkerLoad load;
  load.vertices_computed = 100000;
  const Seconds t4 = m.compute_time(load, vm);
  vm.cores = 1;
  EXPECT_NEAR(m.compute_time(load, vm), 4.0 * t4, 1e-12);
}

TEST(CostModel, NetworkTimeBoundByMaxDirection) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  WorkerLoad load;
  load.bytes_sent_remote = 35_MiB;  // 400Mbps*0.7 = 35 MB/s effective
  load.bytes_received_remote = 1_MiB;
  const Seconds t = m.network_time(load, vm, 0);
  EXPECT_NEAR(t, static_cast<double>(35_MiB) / (400e6 * 0.7 / 8.0), 1e-6);
}

TEST(CostModel, NetworkSetupGrowsWithPeers) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  WorkerLoad load;
  const Seconds t7 = m.network_time(load, vm, 7);
  const Seconds t3 = m.network_time(load, vm, 3);
  EXPECT_NEAR(t7 - t3, 4.0 * m.params().connection_setup_per_peer, 1e-12);
}

TEST(CostModel, BarrierGrowsWithWorkers) {
  const CostModel m;
  EXPECT_GT(m.barrier_time(8), m.barrier_time(4));
  const Seconds diff = m.barrier_time(8) - m.barrier_time(4);
  EXPECT_NEAR(diff, 4.0 * m.params().barrier_per_worker, 1e-12);
}

TEST(CostModel, WireAndBufferedBytes) {
  const CostModel m;
  EXPECT_EQ(m.wire_bytes(20), 20 + m.params().message_envelope_bytes);
  EXPECT_EQ(m.buffered_bytes(20), 20 + m.params().message_object_overhead_bytes);
  EXPECT_GT(m.buffered_bytes(20), m.wire_bytes(20));  // memory > wire, by design
}

TEST(TenancyNoise, ZeroSigmaIsExactlyOne) {
  const TenancyNoise n(0.0, 7);
  for (std::uint32_t w = 0; w < 4; ++w)
    for (std::uint64_t s = 0; s < 10; ++s) EXPECT_DOUBLE_EQ(n.factor(w, s), 1.0);
}

TEST(TenancyNoise, DeterministicAndOrderIndependent) {
  const TenancyNoise n(0.2, 99);
  const double a = n.factor(3, 17);
  (void)n.factor(1, 2);
  (void)n.factor(5, 5);
  EXPECT_DOUBLE_EQ(n.factor(3, 17), a);
}

TEST(TenancyNoise, FactorsAtLeastOne) {
  const TenancyNoise n(0.3, 5);
  for (std::uint32_t w = 0; w < 8; ++w)
    for (std::uint64_t s = 0; s < 50; ++s) EXPECT_GE(n.factor(w, s), 1.0);
}

TEST(TenancyNoise, RejectsNegativeSigma) {
  EXPECT_THROW(TenancyNoise(-0.1, 1), std::logic_error);
}

TEST(AzureQueue, FifoOrder) {
  AzureQueue q;
  q.put("a");
  q.put("b");
  auto m1 = q.get();
  auto m2 = q.get();
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(m1->body, "a");
  EXPECT_EQ(m2->body, "b");
}

TEST(AzureQueue, EmptyGetReturnsNullopt) {
  AzureQueue q;
  EXPECT_FALSE(q.get().has_value());
}

TEST(AzureQueue, AtLeastOnceVisibility) {
  AzureQueue q;
  q.put("job");
  auto m = q.get();
  ASSERT_TRUE(m);
  EXPECT_EQ(q.visible_count(), 0u);
  EXPECT_EQ(q.inflight_count(), 1u);
  q.release(m->id);  // consumer "crashed": message reappears
  EXPECT_EQ(q.visible_count(), 1u);
  auto again = q.get();
  ASSERT_TRUE(again);
  EXPECT_EQ(again->body, "job");
  q.remove(again->id);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(AzureQueue, RemoveUnknownThrows) {
  AzureQueue q;
  EXPECT_THROW(q.remove(42), std::logic_error);
  EXPECT_THROW(q.release(42), std::logic_error);
}

TEST(QueueService, NamedQueuesIndependent) {
  QueueService s;
  s.queue("step").put("token");
  EXPECT_TRUE(s.has_queue("step"));
  EXPECT_FALSE(s.has_queue("barrier"));
  EXPECT_EQ(s.queue("barrier").visible_count(), 0u);
  EXPECT_EQ(s.queue("step").visible_count(), 1u);
  EXPECT_GE(s.total_ops(), 1u);
}

TEST(BlobStore, PutGetRemove) {
  BlobStore b;
  b.put("g", {std::byte{1}, std::byte{2}});
  EXPECT_TRUE(b.exists("g"));
  EXPECT_EQ(b.get("g").size(), 2u);
  EXPECT_EQ(b.size_of("g"), 2u);
  b.remove("g");
  EXPECT_FALSE(b.exists("g"));
  EXPECT_THROW(b.get("g"), std::out_of_range);
  EXPECT_THROW(b.size_of("g"), std::out_of_range);
}

TEST(BlobStore, TransferTimeLinearInSize) {
  BlobStore b(mbps(400), 0.05);
  const Seconds t1 = b.transfer_time(50_MiB);
  const Seconds t2 = b.transfer_time(100_MiB);
  EXPECT_NEAR(t2 - 0.05, 2.0 * (t1 - 0.05), 1e-9);
  EXPECT_THROW(BlobStore(0.0), std::logic_error);
}

TEST(FixedScaling, AlwaysSame) {
  FixedScaling p(8);
  EXPECT_EQ(p.decide({}), 8u);
  EXPECT_EQ(p.name(), "fixed-8");
}

TEST(ActiveVertexScaling, ThresholdBehavior) {
  ActiveVertexScaling p(4, 8, 0.5);
  ScalingSignals s;
  s.total_vertices = 100;
  s.active_vertices = 60;
  EXPECT_EQ(p.decide(s), 8u);
  s.active_vertices = 50;
  EXPECT_EQ(p.decide(s), 8u);  // at threshold -> high
  s.active_vertices = 49;
  EXPECT_EQ(p.decide(s), 4u);
  s.total_vertices = 0;
  EXPECT_EQ(p.decide(s), 4u);  // no work signal -> low
}

TEST(ActiveVertexScaling, ValidatesArguments) {
  EXPECT_THROW(ActiveVertexScaling(0, 8), std::logic_error);
  EXPECT_THROW(ActiveVertexScaling(8, 4), std::logic_error);
  EXPECT_THROW(ActiveVertexScaling(4, 8, 1.5), std::logic_error);
}

TEST(OracleScaling, PicksFasterConfigPerSuperstep) {
  OracleScaling p(4, 8, {1.0, 5.0, 1.0}, {2.0, 2.0, 2.0});
  ScalingSignals s;
  s.superstep = 0;  // deciding for superstep 1: high (2.0 < 5.0)
  EXPECT_EQ(p.decide(s), 8u);
  s.superstep = 1;  // deciding for superstep 2: low (1.0 < 2.0)
  EXPECT_EQ(p.decide(s), 4u);
  s.superstep = 5;  // past the recording: low
  EXPECT_EQ(p.decide(s), 4u);
}

TEST(OracleScaling, RejectsMismatchedRecordings) {
  EXPECT_THROW(OracleScaling(4, 8, {1.0}, {1.0, 2.0}), std::logic_error);
}

}  // namespace
}  // namespace pregel::cloud
