#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "cloud/blob.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/elasticity.hpp"
#include "cloud/faults.hpp"
#include "cloud/network.hpp"
#include "cloud/queue.hpp"
#include "cloud/vm.hpp"

namespace pregel::cloud {
namespace {

TEST(VmCatalog, AzureLargeSpecsMatchPaper) {
  const VmSpec vm = azure_large_2012();
  EXPECT_EQ(vm.cores, 4u);
  EXPECT_DOUBLE_EQ(vm.clock_ghz, 1.6);
  EXPECT_EQ(vm.ram, 7_GiB);
  EXPECT_DOUBLE_EQ(vm.network_bps, mbps(400));
  EXPECT_DOUBLE_EQ(vm.price_per_hour, 0.48);
}

TEST(VmCatalog, SmallIsQuarterOfLarge) {
  const VmSpec s = azure_small_2012();
  const VmSpec l = azure_large_2012();
  EXPECT_EQ(s.cores * 4, l.cores);
  EXPECT_DOUBLE_EQ(s.network_bps * 4, l.network_bps);
  EXPECT_DOUBLE_EQ(s.price_per_hour * 4, l.price_per_hour);
  EXPECT_EQ(s.ram * 4, l.ram);
}

TEST(VmCatalog, ScaledRam) {
  const VmSpec vm = with_scaled_ram(azure_large_2012(), 0.1);
  EXPECT_EQ(vm.ram, static_cast<Bytes>(static_cast<double>(7_GiB) * 0.1));
  EXPECT_EQ(vm.cores, 4u);  // only RAM changes
  EXPECT_THROW(with_scaled_ram(azure_large_2012(), 0.0), std::logic_error);
}

TEST(CostMeter, ProRataPerSecond) {
  CostMeter m;
  m.charge(azure_large_2012(), 8, 3600.0);
  EXPECT_NEAR(m.total_usd(), 8 * 0.48, 1e-9);
  EXPECT_DOUBLE_EQ(m.total_vm_seconds(), 8 * 3600.0);
  m.charge(azure_large_2012(), 4, 1800.0);
  EXPECT_NEAR(m.total_usd(), 8 * 0.48 + 4 * 0.24, 1e-9);
  m.reset();
  EXPECT_DOUBLE_EQ(m.total_usd(), 0.0);
}

TEST(CostMeter, RejectsNegativeDuration) {
  CostMeter m;
  EXPECT_THROW(m.charge(azure_large_2012(), 1, -1.0), std::logic_error);
}

TEST(CostModel, ValidatesParams) {
  CostParams p;
  p.network_efficiency = 0.0;
  EXPECT_THROW(CostModel{p}, std::logic_error);
  p = {};
  p.vm_restart_threshold = 1.0;
  EXPECT_THROW(CostModel{p}, std::logic_error);
}

TEST(CostModel, NoThrashWithinRam) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  EXPECT_DOUBLE_EQ(m.thrash_penalty(vm.ram, vm), 1.0);
  EXPECT_DOUBLE_EQ(m.thrash_penalty(1_GiB, vm), 1.0);
}

TEST(CostModel, ThrashGrowsLinearlyWithOverflow) {
  CostParams p;
  p.vm_thrash_slope = 10.0;
  const CostModel m{p};
  const VmSpec vm = azure_large_2012();
  const auto mem10 = static_cast<Bytes>(static_cast<double>(vm.ram) * 1.1);
  EXPECT_NEAR(m.thrash_penalty(mem10, vm), 2.0, 0.01);  // 1 + 10*0.1
  const auto mem20 = static_cast<Bytes>(static_cast<double>(vm.ram) * 1.2);
  EXPECT_NEAR(m.thrash_penalty(mem20, vm), 3.0, 0.01);
}

TEST(CostModel, RestartThreshold) {
  const CostModel m;  // default threshold 1.5
  const VmSpec vm = azure_large_2012();
  EXPECT_FALSE(m.triggers_restart(vm.ram, vm));
  EXPECT_FALSE(
      m.triggers_restart(static_cast<Bytes>(static_cast<double>(vm.ram) * 1.49), vm));
  EXPECT_TRUE(
      m.triggers_restart(static_cast<Bytes>(static_cast<double>(vm.ram) * 1.5), vm));
}

TEST(CostModel, ComputeTimeScalesWithWork) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  WorkerLoad a;
  a.vertices_computed = 1000;
  a.messages_processed = 1000;
  WorkerLoad b = a;
  b.vertices_computed = 2000;
  b.messages_processed = 2000;
  EXPECT_NEAR(m.compute_time(b, vm), 2.0 * m.compute_time(a, vm), 1e-12);
}

TEST(CostModel, ComputeTimeScalesInverseWithCores) {
  const CostModel m;
  VmSpec vm = azure_large_2012();
  WorkerLoad load;
  load.vertices_computed = 100000;
  const Seconds t4 = m.compute_time(load, vm);
  vm.cores = 1;
  EXPECT_NEAR(m.compute_time(load, vm), 4.0 * t4, 1e-12);
}

TEST(CostModel, NetworkTimeBoundByMaxDirection) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  WorkerLoad load;
  load.bytes_sent_remote = 35_MiB;  // 400Mbps*0.7 = 35 MB/s effective
  load.bytes_received_remote = 1_MiB;
  const Seconds t = m.network_time(load, vm, 0);
  EXPECT_NEAR(t, static_cast<double>(35_MiB) / (400e6 * 0.7 / 8.0), 1e-6);
}

TEST(CostModel, NetworkSetupGrowsWithPeers) {
  const CostModel m;
  const VmSpec vm = azure_large_2012();
  WorkerLoad load;
  const Seconds t7 = m.network_time(load, vm, 7);
  const Seconds t3 = m.network_time(load, vm, 3);
  EXPECT_NEAR(t7 - t3, 4.0 * m.params().connection_setup_per_peer, 1e-12);
}

TEST(CostModel, BarrierGrowsWithWorkers) {
  const CostModel m;
  EXPECT_GT(m.barrier_time(8), m.barrier_time(4));
  const Seconds diff = m.barrier_time(8) - m.barrier_time(4);
  EXPECT_NEAR(diff, 4.0 * m.params().barrier_per_worker, 1e-12);
}

TEST(CostModel, WireAndBufferedBytes) {
  const CostModel m;
  EXPECT_EQ(m.wire_bytes(20), 20 + m.params().message_envelope_bytes);
  EXPECT_EQ(m.buffered_bytes(20), 20 + m.params().message_object_overhead_bytes);
  EXPECT_GT(m.buffered_bytes(20), m.wire_bytes(20));  // memory > wire, by design
}

TEST(TenancyNoise, ZeroSigmaIsExactlyOne) {
  const TenancyNoise n(0.0, 7);
  for (std::uint32_t w = 0; w < 4; ++w)
    for (std::uint64_t s = 0; s < 10; ++s) EXPECT_DOUBLE_EQ(n.factor(w, s), 1.0);
}

TEST(TenancyNoise, DeterministicAndOrderIndependent) {
  const TenancyNoise n(0.2, 99);
  const double a = n.factor(3, 17);
  (void)n.factor(1, 2);
  (void)n.factor(5, 5);
  EXPECT_DOUBLE_EQ(n.factor(3, 17), a);
}

TEST(TenancyNoise, FactorsAtLeastOne) {
  const TenancyNoise n(0.3, 5);
  for (std::uint32_t w = 0; w < 8; ++w)
    for (std::uint64_t s = 0; s < 50; ++s) EXPECT_GE(n.factor(w, s), 1.0);
}

TEST(TenancyNoise, RejectsNegativeSigma) {
  EXPECT_THROW(TenancyNoise(-0.1, 1), std::logic_error);
}

TEST(AzureQueue, FifoOrder) {
  AzureQueue q;
  q.put("a");
  q.put("b");
  auto m1 = q.get();
  auto m2 = q.get();
  ASSERT_TRUE(m1 && m2);
  EXPECT_EQ(m1->body, "a");
  EXPECT_EQ(m2->body, "b");
}

TEST(AzureQueue, EmptyGetReturnsNullopt) {
  AzureQueue q;
  EXPECT_FALSE(q.get().has_value());
}

TEST(AzureQueue, AtLeastOnceVisibility) {
  AzureQueue q;
  q.put("job");
  auto m = q.get();
  ASSERT_TRUE(m);
  EXPECT_EQ(q.visible_count(), 0u);
  EXPECT_EQ(q.inflight_count(), 1u);
  q.release(m->id);  // consumer "crashed": message reappears
  EXPECT_EQ(q.visible_count(), 1u);
  auto again = q.get();
  ASSERT_TRUE(again);
  EXPECT_EQ(again->body, "job");
  q.remove(again->id);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(AzureQueue, RemoveUnknownThrows) {
  AzureQueue q;
  EXPECT_THROW(q.remove(42), std::logic_error);
  EXPECT_THROW(q.release(42), std::logic_error);
}

TEST(AzureQueue, ReleasedMessageRedeliveredBeforeNewer) {
  // A crashed consumer's message must come back ahead of messages enqueued
  // after it (visibility-timeout expiry restores queue position, it does not
  // requeue at the tail).
  AzureQueue q;
  q.put("first");
  q.put("second");
  auto m = q.get();
  ASSERT_TRUE(m);
  EXPECT_EQ(m->body, "first");
  q.put("third");
  q.release(m->id);
  auto r1 = q.get();
  auto r2 = q.get();
  auto r3 = q.get();
  ASSERT_TRUE(r1 && r2 && r3);
  EXPECT_EQ(r1->body, "first");
  EXPECT_EQ(r2->body, "second");
  EXPECT_EQ(r3->body, "third");
  EXPECT_FALSE(q.get().has_value());
  // Redelivered under the same id: remove() still acknowledges it.
  EXPECT_EQ(r1->id, m->id);
  q.remove(r1->id);
  q.remove(r2->id);
  q.remove(r3->id);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(AzureQueue, ReleaseThenRemoveRequiresRedelivery) {
  AzureQueue q;
  q.put("job");
  auto m = q.get();
  ASSERT_TRUE(m);
  q.release(m->id);
  // Once released the message is no longer in flight; acknowledging it
  // without re-getting it is the double-accounting bug Azure forbids.
  EXPECT_THROW(q.remove(m->id), std::logic_error);
  EXPECT_EQ(q.visible_count(), 1u);
}

TEST(ParsePrefixedCount, AcceptsWellFormed) {
  EXPECT_EQ(parse_prefixed_count("active:42", "active:"), 42u);
  EXPECT_EQ(parse_prefixed_count("active:0", "active:"), 0u);
  EXPECT_EQ(parse_prefixed_count("superstep:18446744073709551615", "superstep:"),
            18446744073709551615ull);
}

TEST(ParsePrefixedCount, RejectsMalformed) {
  EXPECT_FALSE(parse_prefixed_count("active:", "active:").has_value());       // no digits
  EXPECT_FALSE(parse_prefixed_count("active:12x", "active:").has_value());    // trailing junk
  EXPECT_FALSE(parse_prefixed_count("active:-3", "active:").has_value());     // negative
  EXPECT_FALSE(parse_prefixed_count("activ:12", "active:").has_value());      // wrong prefix
  EXPECT_FALSE(parse_prefixed_count("active12", "active:").has_value());      // no separator
  EXPECT_FALSE(parse_prefixed_count("", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("act", "active:").has_value());           // shorter than prefix
  EXPECT_FALSE(
      parse_prefixed_count("active:18446744073709551616", "active:").has_value());  // overflow
}

// The hot-path bugfix sweep: the old strtoull-style parser accepted
// non-canonical spellings, so two queue bodies could decode to the same count
// while comparing unequal as strings. Canonical now means: digits only, no
// sign, no whitespace, no leading zeros (except "0" itself).
TEST(ParsePrefixedCount, RejectsNonCanonicalSpellings) {
  EXPECT_FALSE(parse_prefixed_count("active:01", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active:007", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active:00", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active:+1", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active: 1", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active:1 ", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active:\t9", "active:").has_value());
  EXPECT_FALSE(parse_prefixed_count("active:0x1f", "active:").has_value());
  // Digit floods far past 20 digits must fail cleanly, not wrap.
  EXPECT_FALSE(
      parse_prefixed_count("active:999999999999999999999999999999", "active:").has_value());
  // Embedded NUL: the string continues after the terminator byte.
  EXPECT_FALSE(
      parse_prefixed_count(std::string("active:1\0""2", 10), "active:").has_value());
}

// Round-trip property over adversarial magnitudes: every canonical encoding
// parses back to itself, including both sides of each power-of-ten boundary
// and the uint64 edge.
TEST(ParsePrefixedCount, RoundTripsCanonicalEncodings) {
  std::vector<std::uint64_t> samples{0, 1, 9, 10, 11, 4294967295ull, 4294967296ull,
                                     18446744073709551614ull, 18446744073709551615ull};
  for (std::uint64_t p10 = 1; p10 < 10000000000000000000ull; p10 *= 10) {
    samples.push_back(p10 - 1);
    samples.push_back(p10);
    samples.push_back(p10 + 1);
  }
  for (const std::uint64_t v : samples) {
    const std::string body = "superstep:" + std::to_string(v);
    const auto parsed = parse_prefixed_count(body, "superstep:");
    ASSERT_TRUE(parsed.has_value()) << body;
    EXPECT_EQ(*parsed, v) << body;
  }
}

TEST(FaultPlan, ValidatesRates) {
  FaultPlan p;
  p.queue_op_failure_rate = 1.0;
  EXPECT_THROW(p.validate(), std::logic_error);
  p = {};
  p.vm_preemption_rate = -0.1;
  EXPECT_THROW(p.validate(), std::logic_error);
  p = {};
  p.straggler_slowdown = 0.5;
  EXPECT_THROW(p.validate(), std::logic_error);
  p = {};
  EXPECT_NO_THROW(p.validate());
}

TEST(RetryPolicy, ValidatesBounds) {
  RetryPolicy r;
  r.max_attempts = 0;
  EXPECT_THROW(r.validate(), std::logic_error);
  r = {};
  r.max_backoff = r.base_backoff / 2;
  EXPECT_THROW(r.validate(), std::logic_error);
  r = {};
  r.op_deadline = 0.0;
  EXPECT_THROW(r.validate(), std::logic_error);
  r = {};
  EXPECT_NO_THROW(r.validate());
}

TEST(FaultInjector, ZeroRateAttemptIsFree) {
  FaultInjector inj{FaultPlan{}};
  const RetryPolicy retry;
  for (int i = 0; i < 100; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, 0.03);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.attempts, 1u);
    EXPECT_EQ(out.faults, 0u);
    EXPECT_DOUBLE_EQ(out.extra_latency, 0.0);
  }
  // No RNG state consumed: the zero-rate path must not shift later draws.
  EXPECT_EQ(inj.draws(FaultKind::kQueueOp), 0u);
}

TEST(FaultInjector, DeterministicAcrossInstances) {
  FaultPlan p;
  p.queue_op_failure_rate = 0.3;
  p.blob_read_failure_rate = 0.2;
  FaultInjector a{p}, b{p};
  const RetryPolicy retry;
  for (int i = 0; i < 200; ++i) {
    const auto oa = a.attempt(FaultKind::kQueueOp, retry, 0.03);
    const auto ob = b.attempt(FaultKind::kQueueOp, retry, 0.03);
    EXPECT_EQ(oa.success, ob.success);
    EXPECT_EQ(oa.attempts, ob.attempts);
    EXPECT_DOUBLE_EQ(oa.extra_latency, ob.extra_latency);
  }
  EXPECT_EQ(a.draws(FaultKind::kQueueOp), b.draws(FaultKind::kQueueOp));
  // Kinds draw from independent streams: interleaving blob reads into `a`
  // only must not disturb subsequent queue draws.
  (void)a.attempt(FaultKind::kBlobRead, retry, 0.05);
  const auto oa = a.attempt(FaultKind::kQueueOp, retry, 0.03);
  const auto ob = b.attempt(FaultKind::kQueueOp, retry, 0.03);
  EXPECT_EQ(oa.attempts, ob.attempts);
  EXPECT_DOUBLE_EQ(oa.extra_latency, ob.extra_latency);
}

TEST(FaultInjector, RetriesMaskTransientFaults) {
  FaultPlan p;
  p.queue_op_failure_rate = 0.4;
  FaultInjector inj{p};
  RetryPolicy retry;
  retry.max_attempts = 10;
  std::uint64_t masked = 0, total_faults = 0;
  for (int i = 0; i < 500; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, 0.03);
    EXPECT_TRUE(out.success);  // 0.4^10 residual: practically always masked
    total_faults += out.faults;
    if (out.faults > 0) {
      ++masked;
      EXPECT_GT(out.attempts, 1u);
      EXPECT_GT(out.extra_latency, 0.0);
    }
  }
  EXPECT_GT(masked, 100u);  // ~40% of ops should need at least one retry
  EXPECT_GT(total_faults, masked);
}

TEST(FaultInjector, ExhaustedRetriesFail) {
  FaultPlan p;
  p.queue_op_failure_rate = 0.999;
  FaultInjector inj{p};
  RetryPolicy retry;
  retry.max_attempts = 3;
  bool saw_failure = false;
  for (int i = 0; i < 50 && !saw_failure; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, 0.03);
    if (!out.success) {
      saw_failure = true;
      EXPECT_EQ(out.attempts, retry.max_attempts);
      EXPECT_EQ(out.faults, retry.max_attempts);
      // 3 failed calls + 2 backoff sleeps >= 3 * latency + 2 * base.
      EXPECT_GE(out.extra_latency, 3 * 0.03 + 2 * retry.base_backoff);
    }
  }
  EXPECT_TRUE(saw_failure);
}

TEST(FaultInjector, BackoffRespectsDeadline) {
  FaultPlan p;
  p.blob_write_failure_rate = 0.999;
  FaultInjector inj{p};
  RetryPolicy retry;
  retry.max_attempts = 100;
  retry.base_backoff = 1.0;
  retry.max_backoff = 10.0;
  retry.op_deadline = 5.0;
  const auto out = inj.attempt(FaultKind::kBlobWrite, retry, 0.05);
  EXPECT_FALSE(out.success);
  // Abandoned soon after crossing the deadline, not after 100 attempts.
  EXPECT_LT(out.attempts, 100u);
  EXPECT_LE(out.extra_latency, retry.op_deadline + retry.max_backoff + 0.05);
}

TEST(FaultInjector, PreemptionDeterministicAndEpochKeyed) {
  FaultPlan p;
  p.vm_preemption_rate = 0.2;
  const FaultInjector inj{p};
  bool any = false, epoch_differs = false;
  for (std::uint32_t vm = 0; vm < 8; ++vm) {
    for (std::uint64_t s = 0; s < 50; ++s) {
      const bool hit = inj.vm_preempted(vm, s, 0);
      EXPECT_EQ(inj.vm_preempted(vm, s, 0), hit);  // pure function
      any = any || hit;
      if (hit != inj.vm_preempted(vm, s, 1)) epoch_differs = true;
    }
  }
  EXPECT_TRUE(any);
  // A replayed superstep redraws under the new epoch — otherwise a preempted
  // VM would be preempted forever at the same superstep.
  EXPECT_TRUE(epoch_differs);
  EXPECT_FALSE(FaultInjector{FaultPlan{}}.vm_preempted(0, 0, 0));
}

TEST(FaultInjector, StragglerFactorIsRateGated) {
  FaultPlan p;
  p.straggler_rate = 0.25;
  p.straggler_slowdown = 6.0;
  const FaultInjector inj{p};
  int slow = 0, fast = 0;
  for (std::uint32_t vm = 0; vm < 8; ++vm) {
    for (std::uint64_t s = 0; s < 100; ++s) {
      const double f = inj.straggler_factor(vm, s);
      EXPECT_DOUBLE_EQ(inj.straggler_factor(vm, s), f);
      if (f == 6.0)
        ++slow;
      else if (f == 1.0)
        ++fast;
      else
        FAIL() << "factor must be 1 or the configured slowdown, got " << f;
    }
  }
  EXPECT_GT(slow, 100);  // ~200 of 800 draws
  EXPECT_GT(fast, 400);
  EXPECT_DOUBLE_EQ(FaultInjector{FaultPlan{}}.straggler_factor(3, 7), 1.0);
}

TEST(QueueService, NamedQueuesIndependent) {
  QueueService s;
  s.queue("step").put("token");
  EXPECT_TRUE(s.has_queue("step"));
  EXPECT_FALSE(s.has_queue("barrier"));
  EXPECT_EQ(s.queue("barrier").visible_count(), 0u);
  EXPECT_EQ(s.queue("step").visible_count(), 1u);
  EXPECT_GE(s.total_ops(), 1u);
}

TEST(BlobStore, PutGetRemove) {
  BlobStore b;
  b.put("g", {std::byte{1}, std::byte{2}});
  EXPECT_TRUE(b.exists("g"));
  EXPECT_EQ(b.get("g").size(), 2u);
  EXPECT_EQ(b.size_of("g"), 2u);
  b.remove("g");
  EXPECT_FALSE(b.exists("g"));
  EXPECT_THROW(b.get("g"), std::out_of_range);
  EXPECT_THROW(b.size_of("g"), std::out_of_range);
}

TEST(BlobStore, TransferTimeLinearInSize) {
  BlobStore b(mbps(400), 0.05);
  const Seconds t1 = b.transfer_time(50_MiB);
  const Seconds t2 = b.transfer_time(100_MiB);
  EXPECT_NEAR(t2 - 0.05, 2.0 * (t1 - 0.05), 1e-9);
  EXPECT_THROW(BlobStore(0.0), std::logic_error);
}

TEST(FixedScaling, AlwaysSame) {
  FixedScaling p(8);
  EXPECT_EQ(p.decide({}), 8u);
  EXPECT_EQ(p.name(), "fixed-8");
}

TEST(ActiveVertexScaling, ThresholdBehavior) {
  ActiveVertexScaling p(4, 8, 0.5);
  ScalingSignals s;
  s.total_vertices = 100;
  s.active_vertices = 60;
  EXPECT_EQ(p.decide(s), 8u);
  s.active_vertices = 50;
  EXPECT_EQ(p.decide(s), 8u);  // at threshold -> high
  s.active_vertices = 49;
  EXPECT_EQ(p.decide(s), 4u);
  s.total_vertices = 0;
  EXPECT_EQ(p.decide(s), 4u);  // no work signal -> low
}

TEST(ActiveVertexScaling, ValidatesArguments) {
  EXPECT_THROW(ActiveVertexScaling(0, 8), std::logic_error);
  EXPECT_THROW(ActiveVertexScaling(8, 4), std::logic_error);
  EXPECT_THROW(ActiveVertexScaling(4, 8, 1.5), std::logic_error);
}

TEST(OracleScaling, PicksFasterConfigPerSuperstep) {
  OracleScaling p(4, 8, {1.0, 5.0, 1.0}, {2.0, 2.0, 2.0});
  ScalingSignals s;
  s.superstep = 0;  // deciding for superstep 1: high (2.0 < 5.0)
  EXPECT_EQ(p.decide(s), 8u);
  s.superstep = 1;  // deciding for superstep 2: low (1.0 < 2.0)
  EXPECT_EQ(p.decide(s), 4u);
  s.superstep = 5;  // past the recording: low
  EXPECT_EQ(p.decide(s), 4u);
}

TEST(OracleScaling, RejectsMismatchedRecordings) {
  EXPECT_THROW(OracleScaling(4, 8, {1.0}, {1.0, 2.0}), std::logic_error);
}

}  // namespace
}  // namespace pregel::cloud
