// Control-plane message integrity: CRC32C stamping on queue messages, the
// kQueueCorrupt fault class and its dedicated seed stream.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cloud/faults.hpp"
#include "cloud/queue.hpp"
#include "util/crc32c.hpp"

namespace pregel::cloud {
namespace {

TEST(QueueIntegrity, PutStampsCrcAndRoundTripVerifies) {
  AzureQueue q;
  q.put("active:42");
  const auto m = q.get();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->crc, queue_body_checksum("active:42"));
  EXPECT_TRUE(verify_queue_message(*m));
  q.remove(m->id);
}

TEST(QueueIntegrity, TamperedBodyFailsVerification) {
  QueueMessage m;
  m.body = "step:7";
  m.crc = queue_body_checksum(m.body);
  EXPECT_TRUE(verify_queue_message(m));
  m.body = "step:8";  // bit-flip in flight
  EXPECT_FALSE(verify_queue_message(m));
  m.crc = queue_body_checksum(m.body);  // restamp heals it
  EXPECT_TRUE(verify_queue_message(m));
}

TEST(QueueIntegrity, ChecksumMatchesCrc32cOfBody) {
  const std::string body = "barrier check-in, worker 3, active:1024";
  std::vector<std::byte> bytes(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) bytes[i] = std::byte(body[i]);
  EXPECT_EQ(queue_body_checksum(body), util::crc32c(bytes));
  EXPECT_NE(queue_body_checksum("a"), queue_body_checksum("b"));
}

TEST(QueueIntegrity, ReleasedMessageKeepsItsCrc) {
  AzureQueue q;
  q.put("job:submit");
  const auto first = q.get();
  ASSERT_TRUE(first.has_value());
  q.release(first->id);  // visibility-timeout expiry: message reappears
  const auto second = q.get();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->crc, first->crc);
  EXPECT_TRUE(verify_queue_message(*second));
}

TEST(QueueCorruption, ValidateRejectsOutOfRangeRate) {
  FaultPlan plan;
  plan.queue_corruption_rate = 1.0;
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.queue_corruption_rate = -0.25;
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.queue_corruption_rate = 0.5;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.any_transient());
}

TEST(QueueCorruption, OnlyQueueOpsDrawQueueCorruption) {
  FaultPlan plan;
  plan.queue_corruption_rate = 0.9;
  FaultInjector inj(plan);
  RetryPolicy retry;
  const auto r = inj.attempt(FaultKind::kBlobRead, retry, 0.05);
  const auto w = inj.attempt(FaultKind::kBlobWrite, retry, 0.05);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(w.success);
  EXPECT_EQ(inj.draws(FaultKind::kQueueCorrupt), 0u);
  EXPECT_EQ(inj.draws(FaultKind::kBlobCorrupt), 0u);
}

TEST(QueueCorruption, CorruptionEscalatesToRetriableFailure) {
  FaultPlan plan;
  plan.queue_corruption_rate = 0.9;
  FaultInjector inj(plan);
  RetryPolicy retry;
  retry.max_attempts = 3;
  bool saw_escalation = false;
  for (int i = 0; i < 50 && !saw_escalation; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, 0.05);
    if (out.success) continue;
    saw_escalation = true;
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(out.faults, 3u);
    EXPECT_EQ(out.corruptions, 3u);  // every fault was a checksum failure
    EXPECT_GT(out.extra_latency, 0.0);
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(QueueCorruption, StreamIsIndependentOfBlobCorruption) {
  // The queue plane draws from queue_corruption_seed, not corruption_seed:
  // enabling blob corruption must not perturb which queue ops fail, or a
  // chaos schedule would stop being reproducible plane by plane.
  auto queue_pattern = [](double blob_rate) {
    FaultPlan plan;
    plan.queue_corruption_rate = 0.3;
    plan.blob_corruption_rate = blob_rate;
    FaultInjector inj(plan);
    RetryPolicy retry;
    std::vector<std::uint64_t> pattern;
    for (int i = 0; i < 60; ++i) {
      pattern.push_back(inj.attempt(FaultKind::kQueueOp, retry, 0.05).corruptions);
      // Interleave blob reads so the blob stream advances when enabled.
      inj.attempt(FaultKind::kBlobRead, retry, 0.05);
    }
    return pattern;
  };
  EXPECT_EQ(queue_pattern(0.0), queue_pattern(0.45));
}

TEST(QueueCorruption, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.queue_corruption_rate = 0.25;
    plan.queue_corruption_seed = seed;
    FaultInjector inj(plan);
    RetryPolicy retry;
    std::vector<std::uint64_t> pattern;
    for (int i = 0; i < 40; ++i)
      pattern.push_back(inj.attempt(FaultKind::kQueueOp, retry, 0.05).corruptions);
    return pattern;
  };
  EXPECT_EQ(run(0xFA06), run(0xFA06));
  EXPECT_NE(run(0xFA06), run(0xBEEF));
}

}  // namespace
}  // namespace pregel::cloud
