// Control-plane message integrity: CRC32C stamping on queue messages, the
// kQueueCorrupt fault class and its dedicated seed stream.
#include <gtest/gtest.h>

#include <stdexcept>
#include <vector>

#include "cloud/faults.hpp"
#include "cloud/queue.hpp"
#include "util/crc32c.hpp"

namespace pregel::cloud {
namespace {

TEST(QueueIntegrity, PutStampsCrcAndRoundTripVerifies) {
  AzureQueue q;
  q.put("active:42");
  const auto m = q.get();
  ASSERT_TRUE(m.has_value());
  EXPECT_EQ(m->crc, queue_body_checksum("active:42"));
  EXPECT_TRUE(verify_queue_message(*m));
  q.remove(m->id);
}

TEST(QueueIntegrity, TamperedBodyFailsVerification) {
  QueueMessage m;
  m.body = "step:7";
  m.crc = queue_body_checksum(m.body);
  EXPECT_TRUE(verify_queue_message(m));
  m.body = "step:8";  // bit-flip in flight
  EXPECT_FALSE(verify_queue_message(m));
  m.crc = queue_body_checksum(m.body);  // restamp heals it
  EXPECT_TRUE(verify_queue_message(m));
}

TEST(QueueIntegrity, ChecksumMatchesCrc32cOfBody) {
  const std::string body = "barrier check-in, worker 3, active:1024";
  std::vector<std::byte> bytes(body.size());
  for (std::size_t i = 0; i < body.size(); ++i) bytes[i] = std::byte(body[i]);
  EXPECT_EQ(queue_body_checksum(body), util::crc32c(bytes));
  EXPECT_NE(queue_body_checksum("a"), queue_body_checksum("b"));
}

TEST(QueueIntegrity, ReleasedMessageKeepsItsCrc) {
  AzureQueue q;
  q.put("job:submit");
  const auto first = q.get();
  ASSERT_TRUE(first.has_value());
  q.release(first->id);  // visibility-timeout expiry: message reappears
  const auto second = q.get();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->crc, first->crc);
  EXPECT_TRUE(verify_queue_message(*second));
}

TEST(QueueIntegrity, VisibilityTimeoutRedeliversInArrivalOrder) {
  // A consumer crash between get() and remove() must redeliver the message
  // ahead of younger traffic — Azure releases expired messages back to the
  // head, so the barrier sees the oldest outstanding check-in first.
  AzureQueue q;
  q.put("active:0:1:10");
  q.put("active:1:1:20");
  const auto first = q.get();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->body, "active:0:1:10");
  q.release(first->id);  // crash: never removed
  const auto again = q.get();
  ASSERT_TRUE(again.has_value());
  EXPECT_EQ(again->id, first->id);
  EXPECT_EQ(again->body, first->body);
  q.remove(again->id);
  const auto second = q.get();
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(second->body, "active:1:1:20");
  q.remove(second->id);
  EXPECT_EQ(q.visible_count(), 0u);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(QueueIntegrity, ReleaseComposedWithCorruptionProcessesEachMessageOnce) {
  // End-to-end at-least-once consumer: get -> verify/attempt under a high
  // kQueueCorrupt rate -> release on failure and re-read. Every message is
  // processed exactly once, nothing is lost, nothing double-counted.
  FaultPlan plan;
  plan.queue_corruption_rate = 0.6;
  FaultInjector inj(plan);
  RetryPolicy retry;
  retry.max_attempts = 1;  // each corrupted read escalates immediately

  AzureQueue q;
  constexpr int kMessages = 12;
  for (int i = 0; i < kMessages; ++i) q.put("msg:" + std::to_string(i));

  std::vector<bool> processed(std::size_t{kMessages}, false);
  int redeliveries = 0;
  for (int guard = 0; guard < 10'000 && q.visible_count() > 0; ++guard) {
    const auto m = q.get();
    ASSERT_TRUE(m.has_value());
    ASSERT_TRUE(verify_queue_message(*m));  // transport CRC intact...
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, 0.01);
    if (!out.success) {
      // ...but the modeled read corrupted: abandon, let visibility expire.
      q.release(m->id);
      ++redeliveries;
      continue;
    }
    const auto idx = static_cast<std::size_t>(std::stoi(m->body.substr(4)));
    EXPECT_FALSE(processed[idx]) << "double-processed " << m->body;
    processed[idx] = true;
    q.remove(m->id);
  }
  for (std::size_t i = 0; i < processed.size(); ++i)
    EXPECT_TRUE(processed[i]) << "lost msg:" << i;
  EXPECT_GT(redeliveries, 0);  // the fault stream actually exercised the path
  EXPECT_EQ(q.visible_count(), 0u);
  EXPECT_EQ(q.inflight_count(), 0u);
}

TEST(QueueCorruption, ValidateRejectsOutOfRangeRate) {
  FaultPlan plan;
  plan.queue_corruption_rate = 1.0;
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.queue_corruption_rate = -0.25;
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.queue_corruption_rate = 0.5;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.any_transient());
}

TEST(QueueCorruption, OnlyQueueOpsDrawQueueCorruption) {
  FaultPlan plan;
  plan.queue_corruption_rate = 0.9;
  FaultInjector inj(plan);
  RetryPolicy retry;
  const auto r = inj.attempt(FaultKind::kBlobRead, retry, 0.05);
  const auto w = inj.attempt(FaultKind::kBlobWrite, retry, 0.05);
  EXPECT_TRUE(r.success);
  EXPECT_TRUE(w.success);
  EXPECT_EQ(inj.draws(FaultKind::kQueueCorrupt), 0u);
  EXPECT_EQ(inj.draws(FaultKind::kBlobCorrupt), 0u);
}

TEST(QueueCorruption, CorruptionEscalatesToRetriableFailure) {
  FaultPlan plan;
  plan.queue_corruption_rate = 0.9;
  FaultInjector inj(plan);
  RetryPolicy retry;
  retry.max_attempts = 3;
  bool saw_escalation = false;
  for (int i = 0; i < 50 && !saw_escalation; ++i) {
    const auto out = inj.attempt(FaultKind::kQueueOp, retry, 0.05);
    if (out.success) continue;
    saw_escalation = true;
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(out.faults, 3u);
    EXPECT_EQ(out.corruptions, 3u);  // every fault was a checksum failure
    EXPECT_GT(out.extra_latency, 0.0);
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(QueueCorruption, StreamIsIndependentOfBlobCorruption) {
  // The queue plane draws from queue_corruption_seed, not corruption_seed:
  // enabling blob corruption must not perturb which queue ops fail, or a
  // chaos schedule would stop being reproducible plane by plane.
  auto queue_pattern = [](double blob_rate) {
    FaultPlan plan;
    plan.queue_corruption_rate = 0.3;
    plan.blob_corruption_rate = blob_rate;
    FaultInjector inj(plan);
    RetryPolicy retry;
    std::vector<std::uint64_t> pattern;
    for (int i = 0; i < 60; ++i) {
      pattern.push_back(inj.attempt(FaultKind::kQueueOp, retry, 0.05).corruptions);
      // Interleave blob reads so the blob stream advances when enabled.
      inj.attempt(FaultKind::kBlobRead, retry, 0.05);
    }
    return pattern;
  };
  EXPECT_EQ(queue_pattern(0.0), queue_pattern(0.45));
}

TEST(QueueCorruption, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.queue_corruption_rate = 0.25;
    plan.queue_corruption_seed = seed;
    FaultInjector inj(plan);
    RetryPolicy retry;
    std::vector<std::uint64_t> pattern;
    for (int i = 0; i < 40; ++i)
      pattern.push_back(inj.attempt(FaultKind::kQueueOp, retry, 0.05).corruptions);
    return pattern;
  };
  EXPECT_EQ(run(0xFA06), run(0xFA06));
  EXPECT_NE(run(0xFA06), run(0xBEEF));
}

}  // namespace
}  // namespace pregel::cloud
