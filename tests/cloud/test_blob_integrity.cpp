// Checkpoint/blob integrity (CRC32C verification, torn and corrupt reads),
// the kBlobCorrupt fault class, and the memory-pressure scaling policy.
#include <gtest/gtest.h>

#include <cstring>
#include <stdexcept>
#include <string_view>
#include <vector>

#include "cloud/blob.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/elasticity.hpp"
#include "cloud/faults.hpp"
#include "util/crc32c.hpp"

namespace pregel::cloud {
namespace {

std::vector<std::byte> bytes_of(std::string_view s) {
  std::vector<std::byte> v(s.size());
  std::memcpy(v.data(), s.data(), s.size());
  return v;
}

TEST(BlobIntegrity, PutGetRoundTripVerifies) {
  BlobStore store;
  const auto payload = bytes_of("superstep 12 checkpoint, worker 3");
  store.put("ckpt", payload);
  EXPECT_EQ(store.get("ckpt"), payload);
  EXPECT_EQ(store.checksum_of("ckpt"), util::crc32c(payload));
}

TEST(BlobIntegrity, CorruptReadThrows) {
  BlobStore store;
  store.put("ckpt", bytes_of("graph partition payload"));
  store.corrupt("ckpt", 5);
  EXPECT_THROW(store.get("ckpt"), BlobCorruptError);
  // Un-flipping the byte restores integrity: detection is pure verification,
  // not a sticky poisoned flag.
  store.corrupt("ckpt", 5);
  EXPECT_NO_THROW(store.get("ckpt"));
}

TEST(BlobIntegrity, TornWriteThrows) {
  BlobStore store;
  const auto payload = bytes_of("a blob whose tail never landed");
  store.put("ckpt", payload);
  store.tear("ckpt", payload.size() / 2);
  EXPECT_EQ(store.size_of("ckpt"), payload.size() / 2);
  EXPECT_THROW(store.get("ckpt"), BlobCorruptError);
}

TEST(BlobIntegrity, OverwriteRefreshesChecksum) {
  BlobStore store;
  store.put("ckpt", bytes_of("epoch 1"));
  store.corrupt("ckpt", 0);
  store.put("ckpt", bytes_of("epoch 2"));  // rewrite heals the object
  EXPECT_NO_THROW(store.get("ckpt"));
  EXPECT_EQ(store.checksum_of("ckpt"), util::crc32c(bytes_of("epoch 2")));
}

TEST(BlobIntegrity, MissingBlobStillOutOfRange) {
  BlobStore store;
  EXPECT_THROW(store.get("nope"), std::out_of_range);
  EXPECT_THROW(store.checksum_of("nope"), std::out_of_range);
}

TEST(FaultCorruption, ValidateRejectsOutOfRangeRate) {
  FaultPlan plan;
  plan.blob_corruption_rate = 1.5;
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.blob_corruption_rate = 1.0;  // rates live in [0, 1)
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.blob_corruption_rate = -0.1;
  EXPECT_THROW(plan.validate(), std::logic_error);
  plan.blob_corruption_rate = 0.5;
  EXPECT_NO_THROW(plan.validate());
  EXPECT_TRUE(plan.any_transient());
}

TEST(FaultCorruption, ZeroCorruptionRateDrawsNothing) {
  FaultPlan plan;  // all rates zero
  FaultInjector inj(plan);
  RetryPolicy retry;
  for (int i = 0; i < 50; ++i) {
    const auto out = inj.attempt(FaultKind::kBlobRead, retry, 0.05);
    EXPECT_TRUE(out.success);
    EXPECT_EQ(out.corruptions, 0u);
  }
  EXPECT_EQ(inj.draws(FaultKind::kBlobRead), 0u);
  EXPECT_EQ(inj.draws(FaultKind::kBlobCorrupt), 0u);
}

TEST(FaultCorruption, CorruptionEscalatesToRetriableFailure) {
  FaultPlan plan;
  plan.blob_corruption_rate = 0.9;  // most reads return a bad payload
  FaultInjector inj(plan);
  RetryPolicy retry;
  retry.max_attempts = 3;
  // With p=0.9 per attempt, an op exhausting all three retries on checksum
  // failures shows up quickly (and deterministically, given the fixed seed).
  bool saw_escalation = false;
  for (int i = 0; i < 50 && !saw_escalation; ++i) {
    const auto out = inj.attempt(FaultKind::kBlobRead, retry, 0.05);
    if (out.success) continue;
    saw_escalation = true;
    EXPECT_EQ(out.attempts, 3u);
    EXPECT_EQ(out.faults, 3u);
    EXPECT_EQ(out.corruptions, 3u);  // every fault was a checksum failure
    EXPECT_GT(out.extra_latency, 0.0);
  }
  EXPECT_TRUE(saw_escalation);
}

TEST(FaultCorruption, OnlyBlobReadsDrawCorruption) {
  FaultPlan plan;
  plan.blob_corruption_rate = 0.9;
  FaultInjector inj(plan);
  RetryPolicy retry;
  const auto q = inj.attempt(FaultKind::kQueueOp, retry, 0.05);
  const auto w = inj.attempt(FaultKind::kBlobWrite, retry, 0.05);
  EXPECT_TRUE(q.success);
  EXPECT_TRUE(w.success);
  EXPECT_EQ(inj.draws(FaultKind::kBlobCorrupt), 0u);
}

TEST(FaultCorruption, CorruptionFaultsAreDistinguishedFromReadFaults) {
  // Corruption is drawn only on attempts that pass the read-failure check,
  // from its own seeded stream: with no read-failure rate configured, every
  // fault the injector reports is a checksum failure.
  FaultPlan plan;
  plan.blob_corruption_rate = 0.5;
  FaultInjector inj(plan);
  RetryPolicy retry;
  std::uint64_t faults = 0, corruptions = 0;
  for (int i = 0; i < 200; ++i) {
    const auto out = inj.attempt(FaultKind::kBlobRead, retry, 0.05);
    EXPECT_EQ(out.faults, out.corruptions);
    faults += out.faults;
    corruptions += out.corruptions;
  }
  EXPECT_GT(corruptions, 0u);
  EXPECT_EQ(faults, corruptions);
  EXPECT_GT(inj.draws(FaultKind::kBlobCorrupt), 0u);
}

TEST(FaultCorruption, DeterministicUnderSeed) {
  auto run = [](std::uint64_t seed) {
    FaultPlan plan;
    plan.blob_corruption_rate = 0.25;
    plan.corruption_seed = seed;
    FaultInjector inj(plan);
    RetryPolicy retry;
    std::vector<std::uint64_t> pattern;
    for (int i = 0; i < 40; ++i)
      pattern.push_back(inj.attempt(FaultKind::kBlobRead, retry, 0.05).corruptions);
    return pattern;
  };
  EXPECT_EQ(run(0xFA05), run(0xFA05));
  EXPECT_NE(run(0xFA05), run(0xBEEF));
}

TEST(CostModel, SpillTransferTimeIsRoundTrip) {
  CostModel cost{CostParams{}};
  const VmSpec vm = azure_large_2012();
  EXPECT_EQ(cost.spill_transfer_time(0, vm), 0.0);
  const Bytes mb = 1024 * 1024;
  const double bw_Bps = vm.network_bps * cost.params().network_efficiency / 8.0;
  EXPECT_DOUBLE_EQ(cost.spill_transfer_time(mb, vm),
                   2.0 * static_cast<double>(mb) / bw_Bps);
  // Monotone in bytes.
  EXPECT_LT(cost.spill_transfer_time(mb, vm), cost.spill_transfer_time(4 * mb, vm));
}

TEST(MemoryPressureScaling, HysteresisBetweenLowAndHigh) {
  MemoryPressureScaling policy(4, 8, /*memory_target=*/1000);
  ScalingSignals s;
  s.current_workers = 4;
  s.max_worker_memory = 500;  // 50% of target: stay low
  EXPECT_EQ(policy.decide(s), 4u);
  s.max_worker_memory = 900;  // above the 85% out threshold: scale out
  EXPECT_EQ(policy.decide(s), 8u);
  s.max_worker_memory = 700;  // between in (50%) and out: hold high
  EXPECT_EQ(policy.decide(s), 8u);
  s.max_worker_memory = 400;  // at/below in threshold: scale back in
  EXPECT_EQ(policy.decide(s), 4u);
  s.max_worker_memory = 700;  // between thresholds from below: hold low
  EXPECT_EQ(policy.decide(s), 4u);
}

TEST(MemoryPressureScaling, ValidatesConstruction) {
  EXPECT_THROW(MemoryPressureScaling(0, 8, 1000), std::exception);
  EXPECT_THROW(MemoryPressureScaling(8, 4, 1000), std::exception);
  EXPECT_THROW(MemoryPressureScaling(4, 8, 0), std::exception);
  EXPECT_THROW(MemoryPressureScaling(4, 8, 1000, 0.5, 0.8), std::exception);
  EXPECT_EQ(MemoryPressureScaling(4, 8, 1000).name(), "mem-pressure[50%,85%]:4<->8");
}

}  // namespace
}  // namespace pregel::cloud
