// Round-trip tests of the tracing layer's exporters: the Chrome trace JSON
// must parse, per-thread timelines must be time-ordered, thread ids must be
// stable across batches, and the counter summary must reflect the registry.
// The JSON is checked with a small recursive-descent parser kept inside the
// test (no external JSON dependency in the repo).
#include <gtest/gtest.h>

#include <cstdint>
#include <map>
#include <sstream>
#include <string>
#include <thread>
#include <variant>
#include <vector>

#include "runtime/trace.hpp"

namespace pregel {
namespace {

// ---- minimal JSON parser ---------------------------------------------------

struct JsonValue;
using JsonArray = std::vector<JsonValue>;
using JsonObject = std::map<std::string, JsonValue>;

struct JsonValue {
  std::variant<std::nullptr_t, bool, double, std::string, JsonArray, JsonObject> v;

  bool is_object() const { return std::holds_alternative<JsonObject>(v); }
  bool is_array() const { return std::holds_alternative<JsonArray>(v); }
  const JsonObject& object() const { return std::get<JsonObject>(v); }
  const JsonArray& array() const { return std::get<JsonArray>(v); }
  const std::string& str() const { return std::get<std::string>(v); }
  double number() const { return std::get<double>(v); }

  bool has(const std::string& key) const {
    return is_object() && object().count(key) > 0;
  }
  const JsonValue& at(const std::string& key) const { return object().at(key); }
};

class JsonParser {
 public:
  explicit JsonParser(const std::string& text) : s_(text) {}

  JsonValue parse() {
    JsonValue v = value();
    skip_ws();
    if (pos_ != s_.size()) fail("trailing characters");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) {
    throw std::runtime_error("json parse error at " + std::to_string(pos_) + ": " + why);
  }
  void skip_ws() {
    while (pos_ < s_.size() && (s_[pos_] == ' ' || s_[pos_] == '\n' ||
                                s_[pos_] == '\t' || s_[pos_] == '\r'))
      ++pos_;
  }
  char peek() {
    if (pos_ >= s_.size()) fail("unexpected end");
    return s_[pos_];
  }
  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }
  bool consume(char c) {
    if (pos_ < s_.size() && s_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  JsonValue value() {
    skip_ws();
    switch (peek()) {
      case '{': return object();
      case '[': return array();
      case '"': return JsonValue{string()};
      case 't':
        literal("true");
        return JsonValue{true};
      case 'f':
        literal("false");
        return JsonValue{false};
      case 'n':
        literal("null");
        return JsonValue{nullptr};
      default: return JsonValue{number()};
    }
  }
  void literal(const char* lit) {
    for (const char* p = lit; *p != '\0'; ++p) expect(*p);
  }
  JsonValue object() {
    expect('{');
    JsonObject out;
    skip_ws();
    if (consume('}')) return JsonValue{out};
    while (true) {
      skip_ws();
      std::string key = string();
      skip_ws();
      expect(':');
      out.emplace(std::move(key), value());
      skip_ws();
      if (consume('}')) return JsonValue{out};
      expect(',');
    }
  }
  JsonValue array() {
    expect('[');
    JsonArray out;
    skip_ws();
    if (consume(']')) return JsonValue{out};
    while (true) {
      out.push_back(value());
      skip_ws();
      if (consume(']')) return JsonValue{out};
      expect(',');
    }
  }
  std::string string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= s_.size()) fail("unterminated string");
      const char c = s_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= s_.size()) fail("bad escape");
        const char e = s_[pos_++];
        switch (e) {
          case '"': out += '"'; break;
          case '\\': out += '\\'; break;
          case '/': out += '/'; break;
          case 'b': out += '\b'; break;
          case 'f': out += '\f'; break;
          case 'n': out += '\n'; break;
          case 'r': out += '\r'; break;
          case 't': out += '\t'; break;
          case 'u': {
            if (pos_ + 4 > s_.size()) fail("bad \\u escape");
            const unsigned code = static_cast<unsigned>(
                std::stoul(s_.substr(pos_, 4), nullptr, 16));
            pos_ += 4;
            // The exporter only emits \u00XX for control bytes.
            out += static_cast<char>(code);
            break;
          }
          default: fail("unknown escape");
        }
      } else {
        out += c;
      }
    }
  }
  double number() {
    const std::size_t start = pos_;
    if (consume('-')) {
    }
    while (pos_ < s_.size() &&
           (std::isdigit(static_cast<unsigned char>(s_[pos_])) != 0 || s_[pos_] == '.' ||
            s_[pos_] == 'e' || s_[pos_] == 'E' || s_[pos_] == '+' || s_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("bad number");
    return std::stod(s_.substr(start, pos_ - start));
  }

  const std::string& s_;
  std::size_t pos_ = 0;
};

// ---- fixtures --------------------------------------------------------------

class TraceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    trace::TraceConfig cfg;
    cfg.spans = true;
    cfg.counters = true;
    cfg.process_name = "test_trace";
    trace::Tracer::instance().configure(cfg);
  }
  void TearDown() override {
    trace::Tracer::instance().configure(trace::TraceConfig{});  // all off, cleared
  }

  static JsonValue export_trace() {
    std::ostringstream out;
    trace::Tracer::instance().write_chrome_trace(out);
    return JsonParser(out.str()).parse();
  }
};

TEST_F(TraceTest, ChromeExportIsValidJsonWithExpectedShape) {
  {
    trace::Span outer("outer", "test");
    trace::Span inner("inner", "test", "part", 7);
  }
  trace::Tracer::instance().instant("tick", "test", "{\"superstep\":3}");
  trace::add("test.counter", 41);
  trace::add("test.counter", 1);

  const JsonValue doc = export_trace();
  ASSERT_TRUE(doc.is_object());
  EXPECT_TRUE(doc.has("displayTimeUnit"));
  ASSERT_TRUE(doc.has("traceEvents"));
  const JsonArray& events = doc.at("traceEvents").array();
  ASSERT_FALSE(events.empty());

  bool saw_outer = false, saw_inner = false, saw_tick = false, saw_meta = false;
  for (const JsonValue& e : events) {
    ASSERT_TRUE(e.is_object());
    ASSERT_TRUE(e.has("ph"));
    ASSERT_TRUE(e.has("name"));
    const std::string ph = e.at("ph").str();
    const std::string name = e.at("name").str();
    if (ph == "M") saw_meta = true;
    if (ph == "X" && name == "outer") saw_outer = true;
    if (ph == "X" && name == "inner") {
      saw_inner = true;
      ASSERT_TRUE(e.has("args"));
      EXPECT_EQ(e.at("args").at("part").number(), 7.0);
    }
    if (ph == "i" && name == "tick") {
      saw_tick = true;
      EXPECT_EQ(e.at("args").at("superstep").number(), 3.0);
    }
    if (ph == "X" || ph == "i") {
      ASSERT_TRUE(e.has("ts"));
      ASSERT_TRUE(e.has("pid"));
      ASSERT_TRUE(e.has("tid"));
    }
  }
  EXPECT_TRUE(saw_outer);
  EXPECT_TRUE(saw_inner);
  EXPECT_TRUE(saw_tick);
  EXPECT_TRUE(saw_meta);
}

TEST_F(TraceTest, SpanEndTimesAreMonotonicPerThread) {
  auto burst = [] {
    for (int i = 0; i < 50; ++i) {
      trace::Span s("span", "test", "i", static_cast<std::uint64_t>(i));
    }
  };
  std::thread a(burst), b(burst);
  burst();
  a.join();
  b.join();

  const JsonValue doc = export_trace();
  // Complete events are recorded when the span *ends*, so within one host
  // thread's buffer (pid 1, fixed tid) end timestamps ts+dur never decrease.
  std::map<double, double> last_end_by_tid;
  std::size_t spans_seen = 0;
  for (const JsonValue& e : doc.at("traceEvents").array()) {
    if (e.at("ph").str() != "X" || e.at("pid").number() != 1.0) continue;
    ++spans_seen;
    const double tid = e.at("tid").number();
    const double end = e.at("ts").number() + e.at("dur").number();
    auto [it, inserted] = last_end_by_tid.emplace(tid, end);
    if (!inserted) {
      EXPECT_GE(end, it->second) << "tid " << tid;
      it->second = end;
    }
  }
  EXPECT_EQ(spans_seen, 150u);
  EXPECT_EQ(last_end_by_tid.size(), 3u);  // three distinct host threads
}

TEST_F(TraceTest, ThreadIdsAreStableAcrossBatchesAndReset) {
  auto my_tid = [this] {
    const JsonValue doc = export_trace();
    for (const JsonValue& e : doc.at("traceEvents").array())
      if (e.at("ph").str() == "X" && e.at("name").str() == "probe")
        return e.at("tid").number();
    ADD_FAILURE() << "probe span not exported";
    return -1.0;
  };

  { trace::Span s("probe", "test"); }
  const double first = my_tid();

  { trace::Span s("probe", "test"); }  // second batch, same thread
  EXPECT_EQ(my_tid(), first);

  trace::Tracer::instance().reset();  // clears events, keeps registrations
  { trace::Span s("probe", "test"); }
  EXPECT_EQ(my_tid(), first);
}

TEST_F(TraceTest, VirtualTrackEventsCarryExplicitPlacement) {
  trace::Tracer& t = trace::Tracer::instance();
  t.name_virtual_track(2, "worker VM 2");
  t.virtual_complete("compute", "modeled", 2, 1000.0, 250.0, "{\"superstep\":1}");
  t.virtual_instant("swath.initiate", "swath", 1000.0);
  t.virtual_counter("messages", 1250.0, 99.0);

  const JsonValue doc = export_trace();
  bool saw_span = false, saw_name = false, saw_counter = false;
  for (const JsonValue& e : doc.at("traceEvents").array()) {
    if (e.at("ph").str() == "X" && e.at("name").str() == "compute") {
      saw_span = true;
      EXPECT_EQ(e.at("pid").number(), double(trace::Tracer::kVirtualPid));
      EXPECT_EQ(e.at("tid").number(), 2.0);
      EXPECT_EQ(e.at("ts").number(), 1000.0);
      EXPECT_EQ(e.at("dur").number(), 250.0);
    }
    if (e.at("ph").str() == "M" && e.has("args") && e.at("args").has("name") &&
        e.at("args").at("name").str() == "worker VM 2")
      saw_name = true;
    if (e.at("ph").str() == "C" && e.at("name").str() == "messages") saw_counter = true;
  }
  EXPECT_TRUE(saw_span);
  EXPECT_TRUE(saw_name);
  EXPECT_TRUE(saw_counter);
}

TEST_F(TraceTest, CounterSummaryRoundTrips) {
  trace::Tracer& t = trace::Tracer::instance();
  t.counter("engine.messages").add(123);
  t.counter("engine.messages").add(77);
  t.counter("cloud.queue.ops").add(9);
  t.counter("never.incremented");  // zero counters are omitted from export

  std::ostringstream out;
  t.write_counter_summary(out);
  const JsonValue doc = JsonParser(out.str()).parse();
  ASSERT_TRUE(doc.has("counters"));
  const JsonObject& counters = doc.at("counters").object();
  ASSERT_EQ(counters.count("engine.messages"), 1u);
  EXPECT_EQ(counters.at("engine.messages").number(), 200.0);
  EXPECT_EQ(counters.at("cloud.queue.ops").number(), 9.0);
  EXPECT_EQ(counters.count("never.incremented"), 0u);

  const auto totals = t.counter_totals();
  ASSERT_EQ(totals.size(), 2u);  // sorted, non-zero only
  EXPECT_EQ(totals[0].first, "cloud.queue.ops");
  EXPECT_EQ(totals[1].first, "engine.messages");
}

TEST_F(TraceTest, NamesNeedingEscapesStayValidJson) {
  trace::Tracer::instance().instant("quote\" backslash\\ newline\n tab\t", "test");
  const JsonValue doc = export_trace();
  bool found = false;
  for (const JsonValue& e : doc.at("traceEvents").array())
    if (e.at("ph").str() == "i" &&
        e.at("name").str() == "quote\" backslash\\ newline\n tab\t")
      found = true;
  EXPECT_TRUE(found);
}

TEST(TraceDisabled, RecordsNothingAndReportsOff) {
  trace::Tracer::instance().configure(trace::TraceConfig{});
  EXPECT_FALSE(trace::spans_on());
  EXPECT_FALSE(trace::counters_on());
  {
    trace::Span s("ignored", "test");
    trace::add("ignored.counter", 5);
  }
  EXPECT_EQ(trace::Tracer::instance().event_count(), 0u);
  EXPECT_TRUE(trace::Tracer::instance().counter_totals().empty());
}

}  // namespace
}  // namespace pregel
