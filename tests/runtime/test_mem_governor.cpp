#include "runtime/mem_governor.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace pregel {
namespace {

constexpr Bytes kMiB = 1024 * 1024;

MemGovernorConfig enabled_config() {
  MemGovernorConfig cfg;
  cfg.enabled = true;
  return cfg;
}

MemGovernor::Observation calm_observation() {
  MemGovernor::Observation obs;
  obs.unspilled_peak = 10 * kMiB;
  obs.post_spill_peak = 10 * kMiB;
  obs.baseline = 5 * kMiB;
  obs.active_roots = 4;
  obs.parkable_roots = 4;
  return obs;
}

TEST(MemGovernorConfig, ValidateRejectsNonsense) {
  MemGovernorConfig cfg = enabled_config();
  cfg.soft_watermark = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.hard_watermark = cfg.soft_watermark - 0.1;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.shed_fraction = 0.0;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  cfg = enabled_config();
  cfg.shed_fraction = 1.5;
  EXPECT_THROW(cfg.validate(), std::invalid_argument);
  // Disabled config is never validated against: callers may leave garbage in
  // knobs they do not use.
  cfg = MemGovernorConfig{};
  cfg.soft_watermark = -1.0;
  EXPECT_NO_THROW(cfg.validate());
}

TEST(MemGovernor, DisabledIsInert) {
  MemGovernor gov;
  gov.reset(MemGovernorConfig{}, 100 * kMiB);
  EXPECT_FALSE(gov.enabled());
  auto obs = calm_observation();
  obs.restart_breach = true;
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kNone);
  EXPECT_FALSE(gov.veto_initiation());
  EXPECT_EQ(gov.clamp_swath_size(1000), 1000u);
  EXPECT_EQ(gov.spill_amount(1000 * kMiB, 1000 * kMiB), 0u);
}

TEST(MemGovernor, ZeroTargetDisablesEvenWhenConfigured) {
  MemGovernor gov;
  gov.reset(enabled_config(), 0);
  EXPECT_FALSE(gov.enabled());
}

TEST(MemGovernor, VetoTracksSoftWatermark) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  auto obs = calm_observation();
  obs.unspilled_peak = 84 * kMiB;  // below 85% soft watermark
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kNone);
  EXPECT_FALSE(gov.veto_initiation());
  obs.unspilled_peak = 86 * kMiB;  // above it
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kNone);
  EXPECT_TRUE(gov.veto_initiation());
  obs.unspilled_peak = 40 * kMiB;  // pressure drained: veto lifts
  gov.observe(obs);
  EXPECT_FALSE(gov.veto_initiation());
}

TEST(MemGovernor, ClampUsesMeasuredPerRootFootprint) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  auto obs = calm_observation();
  obs.baseline = 25 * kMiB;
  obs.unspilled_peak = 65 * kMiB;  // 10 MiB per root across 4 roots
  obs.active_roots = 4;
  gov.observe(obs);
  // Headroom below soft watermark: 85 - 25 = 60 MiB -> 6 roots fit.
  EXPECT_EQ(gov.clamp_swath_size(100), 6u);
  EXPECT_EQ(gov.clamp_swath_size(4), 4u);  // never raises a proposal
  // Baseline swallowing the whole soft budget clamps to the minimum of 1.
  obs.baseline = 90 * kMiB;
  obs.unspilled_peak = 95 * kMiB;
  gov.observe(obs);
  EXPECT_EQ(gov.clamp_swath_size(100), 1u);
}

TEST(MemGovernor, SpillOnlyAboveHardWatermarkAndBoundedBySpillable) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  // At or below hard watermark (100%): no spill.
  EXPECT_EQ(gov.spill_amount(100 * kMiB, 50 * kMiB), 0u);
  // Above: spill down to the soft watermark...
  EXPECT_EQ(gov.spill_amount(120 * kMiB, 50 * kMiB), 35 * kMiB);
  // ...but never more than the message buffers actually present.
  EXPECT_EQ(gov.spill_amount(120 * kMiB, 10 * kMiB), 10 * kMiB);
  MemGovernorConfig no_spill = enabled_config();
  no_spill.spill_enabled = false;
  gov.reset(no_spill, 100 * kMiB);
  EXPECT_EQ(gov.spill_amount(120 * kMiB, 50 * kMiB), 0u);
}

TEST(MemGovernor, ParkCountFollowsShedFraction) {
  MemGovernor gov;
  MemGovernorConfig cfg = enabled_config();
  cfg.shed_fraction = 0.5;
  gov.reset(cfg, 100 * kMiB);
  EXPECT_EQ(gov.park_count(8), 4u);
  EXPECT_EQ(gov.park_count(1), 1u);  // always parks at least one
  EXPECT_EQ(gov.park_count(0), 0u);
  cfg.shed_fraction = 1.0;
  gov.reset(cfg, 100 * kMiB);
  EXPECT_EQ(gov.park_count(8), 8u);
}

TEST(MemGovernor, HardBreachShedsOnlyWithParkableRoots) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  auto obs = calm_observation();
  obs.unspilled_peak = 130 * kMiB;
  obs.post_spill_peak = 110 * kMiB;  // spill could not relieve the breach
  obs.parkable_roots = 4;
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kShed);
  // Without parkable roots a policy-level breach is tolerated, never
  // escalated: the budget is a target, not physical RAM.
  obs.parkable_roots = 0;
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kNone);
}

TEST(MemGovernor, RestartBreachEscalationLadder) {
  MemGovernor gov;
  MemGovernorConfig cfg = enabled_config();
  cfg.max_sheds = 2;
  cfg.max_escalations = 2;
  gov.reset(cfg, 100 * kMiB);
  auto obs = calm_observation();
  obs.restart_breach = true;
  obs.parkable_roots = 4;

  // Sheds first, while the budget lasts.
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kShed);
  gov.on_shed();
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kShed);
  gov.on_shed();
  // Shed budget exhausted: escalate to governed-OOM restores.
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kEscalate);
  gov.on_escalated(16);
  EXPECT_EQ(gov.swath_cap(), 8u);
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kEscalate);
  gov.on_escalated(8);
  EXPECT_EQ(gov.swath_cap(), 4u);
  // Ladder exhausted.
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kGiveUp);
}

TEST(MemGovernor, RestartBreachWithNothingToShedEscalatesImmediately) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  auto obs = calm_observation();
  obs.restart_breach = true;
  obs.parkable_roots = 0;
  EXPECT_EQ(gov.observe(obs), MemGovernor::Action::kEscalate);
}

TEST(MemGovernor, EscalationCapHalvesAndClampsProposals) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  EXPECT_EQ(gov.clamp_swath_size(64), 64u);  // no cap before any escalation
  gov.on_escalated(64);
  EXPECT_EQ(gov.swath_cap(), 32u);
  EXPECT_EQ(gov.clamp_swath_size(64), 32u);
  gov.on_escalated(1);  // cap never drops below 1
  EXPECT_EQ(gov.swath_cap(), 1u);
  EXPECT_EQ(gov.clamp_swath_size(64), 1u);
}

TEST(MemGovernor, ResetClearsLadderState) {
  MemGovernor gov;
  gov.reset(enabled_config(), 100 * kMiB);
  gov.on_shed();
  gov.on_escalated(8);
  auto obs = calm_observation();
  obs.unspilled_peak = 90 * kMiB;
  gov.observe(obs);
  EXPECT_TRUE(gov.veto_initiation());
  gov.reset(enabled_config(), 100 * kMiB);
  EXPECT_EQ(gov.sheds(), 0u);
  EXPECT_EQ(gov.escalations(), 0u);
  EXPECT_FALSE(gov.veto_initiation());
  EXPECT_EQ(gov.clamp_swath_size(1000), 1000u);
}

}  // namespace
}  // namespace pregel
