// Metrics record arithmetic and CSV export.
#include <gtest/gtest.h>

#include <sstream>

#include "runtime/metrics.hpp"
#include "runtime/metrics_io.hpp"

namespace pregel {
namespace {

SuperstepMetrics make_superstep(std::uint64_t id) {
  SuperstepMetrics sm;
  sm.superstep = id;
  sm.active_workers = 2;
  sm.active_vertices = 10;
  WorkerStepMetrics a;
  a.vertices_computed = 6;
  a.messages_processed = 12;
  a.messages_sent_local = 3;
  a.messages_sent_remote = 9;
  a.bytes_sent_remote = 900;
  a.bytes_received_remote = 400;
  a.subgraph_ops = 21;
  a.memory_peak = 1000;
  a.compute_time = 2.0;
  a.network_time = 1.0;
  a.barrier_wait = 1.0;
  WorkerStepMetrics b;
  b.vertices_computed = 4;
  b.messages_processed = 8;
  b.messages_sent_local = 2;
  b.messages_sent_remote = 4;
  b.bytes_sent_remote = 400;
  b.bytes_received_remote = 900;
  b.memory_peak = 2000;
  b.compute_time = 1.0;
  b.network_time = 0.5;
  b.barrier_wait = 2.5;
  b.spilled_bytes = 64;
  sm.workers = {a, b};
  sm.span = 4.0;
  sm.barrier_overhead = 1.0;
  return sm;
}

TEST(SuperstepMetrics, Rollups) {
  const auto sm = make_superstep(0);
  EXPECT_EQ(sm.messages_sent_total(), 18u);
  EXPECT_EQ(sm.messages_sent_remote(), 13u);
  EXPECT_EQ(sm.max_worker_memory(), 2000u);
  // busy = 3 + 1.5 = 4.5; total = busy + wait = 4.5 + 3.5 = 8.
  EXPECT_NEAR(sm.utilization(), 4.5 / 8.0, 1e-12);
}

TEST(SuperstepMetrics, EmptyUtilizationIsOne) {
  SuperstepMetrics sm;
  EXPECT_DOUBLE_EQ(sm.utilization(), 1.0);
}

TEST(JobMetrics, Rollups) {
  JobMetrics m;
  m.supersteps = {make_superstep(0), make_superstep(1)};
  EXPECT_EQ(m.total_messages(), 36u);
  EXPECT_EQ(m.total_supersteps(), 2u);
  EXPECT_EQ(m.peak_worker_memory(), 2000u);
  EXPECT_NEAR(m.total_barrier_wait(), 7.0, 1e-12);
  EXPECT_NEAR(m.total_busy_time(), 9.0, 1e-12);
  EXPECT_NEAR(m.utilization(), 9.0 / 16.0, 1e-12);
}

TEST(MetricsIo, WorkerCsvShape) {
  JobMetrics m;
  m.supersteps = {make_superstep(0), make_superstep(1)};
  std::ostringstream out;
  write_worker_metrics_csv(m, out);
  const std::string s = out.str();
  // Header + 2 supersteps x 2 workers.
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 5);
  EXPECT_NE(s.find("superstep,worker,vertices_computed"), std::string::npos);
  EXPECT_NE(s.find("spilled_bytes"), std::string::npos);
  EXPECT_NE(s.find("0,0,6,12,3,9,900,400,21,1000,2,1,1,0"), std::string::npos);
  EXPECT_NE(s.find("0,1,4,8,2,4,400,900,0,2000,1,0.5,2.5,64"), std::string::npos);
}

TEST(MetricsIo, SuperstepCsvShape) {
  JobMetrics m;
  m.supersteps = {make_superstep(3)};
  std::ostringstream out;
  write_superstep_metrics_csv(m, out);
  const std::string s = out.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);
  EXPECT_NE(s.find("3,2,10,0,18,13,4,1,2000,"), std::string::npos);
}

TEST(MetricsIo, JobSummaryKeyValues) {
  JobMetrics m;
  m.supersteps = {make_superstep(0)};
  m.total_time = 12.5;
  m.cost_usd = 0.42;
  m.worker_failures = 2;
  m.recovery_mode = "confined";
  m.confined_replay_time = 1.25;
  m.faults_injected = 7;
  m.faults_masked = 6;
  m.retries_attempted = 9;
  m.retry_latency = 0.5;
  m.straggler_reexecutions = 3;
  std::ostringstream out;
  write_job_summary(m, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("supersteps=1"), std::string::npos);
  EXPECT_NE(s.find("total_time_s=12.5"), std::string::npos);
  EXPECT_NE(s.find("failures=2"), std::string::npos);
  EXPECT_NE(s.find("recovery_mode=confined"), std::string::npos);
  EXPECT_NE(s.find("confined_replay_time_s=1.25"), std::string::npos);
  EXPECT_NE(s.find("faults_injected=7"), std::string::npos);
  EXPECT_NE(s.find("faults_masked=6"), std::string::npos);
  EXPECT_NE(s.find("retries_attempted=9"), std::string::npos);
  EXPECT_NE(s.find("retry_latency_s=0.5"), std::string::npos);
  EXPECT_NE(s.find("straggler_reexecutions=3"), std::string::npos);
}

TEST(MetricsIo, FaultCsvShape) {
  JobMetrics m;
  m.recovery_mode = "full-rollback";
  m.checkpoints_written = 4;
  m.checkpoint_failures = 1;
  m.worker_failures = 2;
  m.replayed_supersteps = 6;
  m.recovery_time = 3.5;
  m.faults_injected = 11;
  m.faults_masked = 11;
  m.retries_attempted = 13;
  m.straggler_reexecutions = 2;
  m.blob_corruptions = 3;
  std::ostringstream out;
  write_fault_metrics_csv(m, out);
  const std::string s = out.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);  // header + one row
  EXPECT_NE(s.find("recovery_mode,checkpoints,checkpoint_failures"), std::string::npos);
  EXPECT_NE(s.find("blob_corruptions"), std::string::npos);
  EXPECT_NE(s.find("full-rollback,4,1,2,6,3.5,0,11,11,13,0,2,3"), std::string::npos);
}

TEST(MetricsIo, GovernorCsvShape) {
  JobMetrics m;
  m.governor_vetoes = 5;
  m.governor_swath_clamps = 4;
  m.governor_sheds = 2;
  m.governor_roots_parked = 9;
  m.governor_spills = 3;
  m.governor_spill_bytes = 4096;
  m.governor_spill_time = 0.25;
  m.governor_shed_time = 1.5;
  m.governed_oom_episodes = 1;
  std::ostringstream out;
  write_governor_metrics_csv(m, out);
  const std::string s = out.str();
  EXPECT_EQ(std::count(s.begin(), s.end(), '\n'), 2);  // header + one row
  EXPECT_NE(s.find("vetoes,swath_clamps,sheds,roots_parked"), std::string::npos);
  EXPECT_NE(s.find("5,4,2,9,3,4096,0.25,1.5,1"), std::string::npos);
}

TEST(MetricsIo, JobSummaryIncludesGovernorFields) {
  JobMetrics m;
  m.blob_corruptions = 2;
  m.governor_vetoes = 7;
  m.governor_sheds = 1;
  m.governor_roots_parked = 4;
  m.governor_spill_bytes = 512;
  m.governed_oom_episodes = 1;
  std::ostringstream out;
  write_job_summary(m, out);
  const std::string s = out.str();
  EXPECT_NE(s.find("blob_corruptions=2"), std::string::npos);
  EXPECT_NE(s.find("governor_vetoes=7"), std::string::npos);
  EXPECT_NE(s.find("governor_sheds=1"), std::string::npos);
  EXPECT_NE(s.find("governor_roots_parked=4"), std::string::npos);
  EXPECT_NE(s.find("governor_spill_bytes=512"), std::string::npos);
  EXPECT_NE(s.find("governed_oom_episodes=1"), std::string::npos);
}

}  // namespace
}  // namespace pregel
