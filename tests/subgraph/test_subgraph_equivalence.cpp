// Subgraph-centric vs vertex-centric equivalence (docs/SUBGRAPH.md).
//
// The subgraph model's load-bearing promise: for algorithms with a unique
// fixed point, running the per-partition sequential exemplar produces
// *bit-identical* vertex values to the message-per-hop vertex program —
// while finishing in no more supersteps (and strictly fewer on a
// locality-preserving partitioning, where local convergence collapses the
// wave to the meta-graph diameter). Every comparison here is exact:
// integer distances/labels with EXPECT_EQ, PageRank doubles with == via
// the staged-outbox canonical summation order.
#include <gtest/gtest.h>

#include <cmath>
#include <vector>

#include "algos/components.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "subgraph/components.hpp"
#include "subgraph/pagerank.hpp"
#include "subgraph/sssp.hpp"
#include "util/thread_pool.hpp"

namespace pregel {
namespace {

ClusterConfig eight_partitions_four_vms() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 4;  // two partitions per VM: local AND remote traffic
  return c;
}

std::vector<std::uint32_t> lane_sweep() {
  std::vector<std::uint32_t> lanes{1, 2, 4};
  const unsigned hw = ThreadPool::hardware_threads();
  if (hw > 1 && hw != 2 && hw != 4) lanes.push_back(hw);
  return lanes;
}

/// The three seeded topologies the equivalence suite sweeps: random,
/// mesh-like, and power-law. All generators emit symmetric arc pairs, which
/// the Components exemplars require.
std::vector<Graph> topology_sweep() {
  std::vector<Graph> graphs;
  graphs.push_back(erdos_renyi(400, 900, 47));
  graphs.push_back(grid_graph(20, 25));
  graphs.push_back(barabasi_albert(600, 3, 41));
  return graphs;
}

TEST(SubgraphEquivalence, SsspDistancesMatchVertexEngine) {
  const ClusterConfig c = eight_partitions_four_vms();
  for (const Graph& g : topology_sweep()) {
    const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
    const auto vertex = algos::run_sssp(g, c, parts, /*source=*/0);
    const auto sub = subgraph::run_sssp_subgraph(g, c, parts, /*source=*/0);
    ASSERT_FALSE(vertex.failed);
    ASSERT_FALSE(sub.failed);
    ASSERT_EQ(sub.values.size(), vertex.values.size());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(sub.values[v].distance, vertex.values[v].distance) << "vertex " << v;
    // Local Dijkstra never needs *more* barriers than one-hop flooding.
    EXPECT_LE(sub.metrics.supersteps.size(), vertex.metrics.supersteps.size());
  }
}

TEST(SubgraphEquivalence, ComponentsLabelsMatchVertexEngine) {
  const ClusterConfig c = eight_partitions_four_vms();
  for (const Graph& g : topology_sweep()) {
    const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
    const auto vertex = algos::run_components(g, c, parts);
    const auto sub = subgraph::run_components_subgraph(g, c, parts);
    ASSERT_FALSE(vertex.failed);
    ASSERT_FALSE(sub.failed);
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(sub.values[v].label, vertex.values[v].label) << "vertex " << v;
    EXPECT_LE(sub.metrics.supersteps.size(), vertex.metrics.supersteps.size());
  }
}

// On a locality-preserving (multilevel, METIS-like) partitioning, partitions
// are contiguous patches: per-partition Dijkstra crosses an entire patch per
// barrier, so the superstep count collapses from the grid diameter toward
// the meta-graph diameter. This is the headline subgraph-model win.
TEST(SubgraphEquivalence, LocalityPartitioningCollapsesSuperstepCount) {
  const Graph g = grid_graph(20, 25);  // diameter 43: worst case for flooding
  const ClusterConfig c = eight_partitions_four_vms();
  MultilevelPartitioner::Options mo;
  mo.seed = 7;
  const auto parts = MultilevelPartitioner{mo}.partition(g, c.num_partitions);

  const auto vertex = algos::run_sssp(g, c, parts, /*source=*/0);
  const auto sub = subgraph::run_sssp_subgraph(g, c, parts, /*source=*/0);
  ASSERT_FALSE(vertex.failed);
  ASSERT_FALSE(sub.failed);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(sub.values[v].distance, vertex.values[v].distance) << "vertex " << v;
  EXPECT_LT(sub.metrics.supersteps.size(), vertex.metrics.supersteps.size());

  // Components is where the cut traffic shrinks too: local union-find jumps
  // every member to the partition minimum in one barrier, so the chain of
  // ever-smaller label re-floods that vertex-centric propagation pays for
  // never crosses the cut. (Subgraph SSSP may re-flood a boundary when a
  // later wave improves an already-converged patch, so bytes are asserted
  // on Components, not SSSP.)
  const auto cc_vertex = algos::run_components(g, c, parts);
  const auto cc_sub = subgraph::run_components_subgraph(g, c, parts);
  ASSERT_FALSE(cc_vertex.failed);
  ASSERT_FALSE(cc_sub.failed);
  EXPECT_LT(cc_sub.metrics.supersteps.size(), cc_vertex.metrics.supersteps.size());
  std::uint64_t vertex_remote = 0, sub_remote = 0;
  for (const auto& sm : cc_vertex.metrics.supersteps)
    for (const auto& wm : sm.workers) vertex_remote += wm.bytes_sent_remote;
  for (const auto& sm : cc_sub.metrics.supersteps)
    for (const auto& wm : sm.workers) sub_remote += wm.bytes_sent_remote;
  EXPECT_LT(sub_remote, vertex_remote);
}

// Exact-Jacobi mode replays the vertex engine's summation order — internal
// shares and boundary messages merged in ascending global sender rank — so
// the doubles must match bit-for-bit, not just approximately.
TEST(SubgraphEquivalence, PageRankJacobiBitIdenticalToVertexEngine) {
  const ClusterConfig c = eight_partitions_four_vms();
  for (const Graph& g : topology_sweep()) {
    const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
    const auto vertex = algos::run_pagerank(g, c, parts, /*iterations=*/25);
    const auto sub = subgraph::run_pagerank_subgraph(g, c, parts, /*iterations=*/25);
    ASSERT_FALSE(vertex.failed);
    ASSERT_FALSE(sub.failed);
    ASSERT_EQ(sub.metrics.supersteps.size(), vertex.metrics.supersteps.size());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(sub.values[v].rank, vertex.values[v].rank) << "vertex " << v;
  }
}

// Gauss-Seidel sweeps reorder the arithmetic (that is the point: in-place
// updates converge faster), so the contract is convergence to the same
// stationary distribution, not bit-identity with Jacobi.
TEST(SubgraphEquivalence, PageRankGaussSeidelConvergesToReference) {
  const Graph g = barabasi_albert(500, 3, 13);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  const auto reference = algos::run_pagerank(g, c, parts, /*iterations=*/80);
  ASSERT_FALSE(reference.failed);

  subgraph::PageRankSubgraphProgram prog;
  prog.iterations = 80;
  prog.mode = subgraph::PageRankSubgraphProgram::Mode::kGaussSeidel;
  Engine<subgraph::PageRankSubgraphProgram> engine(g, prog, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto gs = engine.run(o);
  ASSERT_FALSE(gs.failed);

  double sum = 0.0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    EXPECT_NEAR(gs.values[v].rank, reference.values[v].rank, 1e-6) << "vertex " << v;
    sum += gs.values[v].rank;
  }
  // Mass conservation up to the flood threshold: deltas below the per-arc
  // tolerance are withheld, so the total drifts by at most ~n * tolerance
  // per sweep, not machine epsilon.
  EXPECT_NEAR(sum, 1.0, 1e-5);
}

// Parallelism is pure wall-clock: the staged outbox is sorted into the
// canonical (sender rank, emit seq) order per partition before the merge,
// so lane count must not leak into values OR the modeled metric record.
TEST(SubgraphEquivalence, SubgraphBitIdenticalAcrossLaneCounts) {
  const Graph g = barabasi_albert(600, 3, 41);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = 1;
  Engine<subgraph::PageRankSubgraphProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<subgraph::PageRankSubgraphProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed) << lanes << " lanes";
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_EQ(r.values[v].rank, base.values[v].rank) << "vertex " << v << ", "
                                                       << lanes << " lanes";
    EXPECT_EQ(r.metrics.total_time, base.metrics.total_time) << lanes << " lanes";
    EXPECT_EQ(r.metrics.cost_usd, base.metrics.cost_usd) << lanes << " lanes";
    ASSERT_EQ(r.metrics.supersteps.size(), base.metrics.supersteps.size());
    for (std::size_t s = 0; s < r.metrics.supersteps.size(); ++s) {
      const auto& x = r.metrics.supersteps[s];
      const auto& y = base.metrics.supersteps[s];
      EXPECT_EQ(x.active_vertices, y.active_vertices) << "superstep " << s;
      ASSERT_EQ(x.workers.size(), y.workers.size());
      for (std::size_t w = 0; w < x.workers.size(); ++w) {
        EXPECT_EQ(x.workers[w].subgraph_ops, y.workers[w].subgraph_ops) << s << "/" << w;
        EXPECT_EQ(x.workers[w].compute_time, y.workers[w].compute_time) << s << "/" << w;
        EXPECT_EQ(x.workers[w].bytes_sent_remote, y.workers[w].bytes_sent_remote)
            << s << "/" << w;
      }
    }
  }
}

// Internal sequential work is billed through WorkerLoad::subgraph_ops at its
// own (cheaper) cycle rate — a subgraph run must actually report some.
TEST(SubgraphEquivalence, InternalWorkIsMetered) {
  const Graph g = grid_graph(20, 25);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
  const auto r = subgraph::run_sssp_subgraph(g, c, parts, 0);
  ASSERT_FALSE(r.failed);
  std::uint64_t ops = 0;
  for (const auto& sm : r.metrics.supersteps)
    for (const auto& wm : sm.workers) ops += wm.subgraph_ops;
  EXPECT_GT(ops, 0u);
}

}  // namespace
}  // namespace pregel
