// Subgraph mode under the full engine substrate (docs/SUBGRAPH.md): the
// per-partition compute unit rides the same barriers, so checkpointing
// (including delta chains driven by mark_changed), fault recovery, live
// migration — reactive and meta-graph-predictive — and the scheduler all
// apply unchanged, and none of them may alter results.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/meta_graph.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"
#include "sched/scheduler.hpp"
#include "subgraph/components.hpp"
#include "subgraph/pagerank.hpp"
#include "subgraph/sssp.hpp"

namespace pregel {
namespace {

using subgraph::ComponentsSubgraphProgram;
using subgraph::PageRankSubgraphProgram;
using subgraph::SsspSubgraphProgram;

ClusterConfig eight_partitions_four_vms() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 4;
  return c;
}

// Delta checkpointing is on by default with an interval; the subgraph dirty
// contract (state_unchanged_all + mark_changed) feeds the same dirty bitmap
// the vertex path uses, so rollback must reproduce exact distances.
TEST(SubgraphEngine, CheckpointRecoveryReproducesSsspDistances) {
  const Graph g = watts_strogatz(400, 6, 0.2, 9);
  const ClusterConfig clean_cfg = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, clean_cfg.num_partitions);
  const auto clean = subgraph::run_sssp_subgraph(g, clean_cfg, parts, 0);
  ASSERT_FALSE(clean.failed);

  ClusterConfig faulty = clean_cfg;
  faulty.checkpoint_interval = 2;
  faulty.scheduled_failures = {{3, 1}};
  Engine<SsspSubgraphProgram> e(g, {}, faulty, parts);
  JobOptions o;
  o.roots = {0};
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
  EXPECT_GT(r.metrics.checkpoints_written, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].distance, clean.values[v].distance) << "vertex " << v;
}

// PageRank's doubles are the sharpest probe: a rollback that replays the
// boundary exchange in a different order would shift low bits immediately.
TEST(SubgraphEngine, CheckpointRecoveryBitIdenticalPageRank) {
  const Graph g = barabasi_albert(300, 3, 5);
  const ClusterConfig clean_cfg = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, clean_cfg.num_partitions);
  const auto clean = subgraph::run_pagerank_subgraph(g, clean_cfg, parts, 25);
  ASSERT_FALSE(clean.failed);

  ClusterConfig faulty = clean_cfg;
  faulty.checkpoint_interval = 4;
  faulty.scheduled_failures = {{7, 0}, {15, 2}};
  Engine<PageRankSubgraphProgram> e(g, [] {
    PageRankSubgraphProgram p;
    p.iterations = 25;
    return p;
  }(), faulty, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 2u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].rank, clean.values[v].rank) << "vertex " << v;
}

ClusterConfig with_forced_migration(ClusterConfig c,
                                    std::shared_ptr<MigrationPlanner> planner,
                                    std::uint64_t period = 2) {
  c.migration.planner = std::move(planner);
  c.migration.period = period;
  return c;
}

// Migration changes WHERE partitions compute, never WHAT: after a re-base
// the inbox merge switches to the rank-ordered path, which the canonical
// (sender rank, emit seq) outbox sort makes identical to the unmigrated
// partition-major concatenation.
TEST(SubgraphEngine, ReactiveMigrationPreservesValues) {
  const Graph g = watts_strogatz(500, 6, 0.2, 43);
  const ClusterConfig base_cfg = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, base_cfg.num_partitions);
  const auto base = subgraph::run_components_subgraph(g, base_cfg, parts);
  ASSERT_FALSE(base.failed);

  const ClusterConfig migr_cfg = with_forced_migration(
      base_cfg, std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05));
  Engine<ComponentsSubgraphProgram> e(g, {}, migr_cfg, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_GT(r.metrics.migrated_vertices, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].label, base.values[v].label) << "vertex " << v;
}

// The meta-graph planner proposes moves *ahead* of the frontier wave; like
// every planner it must leave the logical execution untouched, and its
// cached meta-graph must have been (re)built along the way.
TEST(SubgraphEngine, MetaGraphPlannerPreservesValuesAndRebuilds) {
  const Graph g = grid_graph(20, 25);
  const ClusterConfig base_cfg = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, base_cfg.num_partitions);
  const auto base = subgraph::run_sssp_subgraph(g, base_cfg, parts, 0);
  ASSERT_FALSE(base.failed);

  auto planner = std::make_shared<MetaGraphPlanner>(/*tolerance=*/0.05);
  const ClusterConfig migr_cfg = with_forced_migration(base_cfg, planner);
  Engine<SsspSubgraphProgram> e(g, {}, migr_cfg, parts);
  JobOptions o;
  o.roots = {0};
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].distance, base.values[v].distance) << "vertex " << v;
  EXPECT_GE(planner->rebuilds(), 1u);
  EXPECT_EQ(planner->name(), "meta-graph");
}

// The vertex engine under the same predictive planner: meta-graph planning
// is not subgraph-only, it rides RebalanceSignals like any other planner.
TEST(SubgraphEngine, MetaGraphPlannerWorksOnVertexEngineToo) {
  const Graph g = watts_strogatz(400, 6, 0.2, 9);
  const ClusterConfig base_cfg = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, base_cfg.num_partitions);
  const auto base = algos::run_sssp(g, base_cfg, parts, 0);
  ASSERT_FALSE(base.failed);

  const ClusterConfig migr_cfg =
      with_forced_migration(base_cfg, std::make_shared<MetaGraphPlanner>(0.05));
  Engine<algos::SsspProgram> e(g, {}, migr_cfg, parts);
  JobOptions o;
  o.roots = {0};
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].distance, base.values[v].distance) << "vertex " << v;
}

// Subgraph jobs are ordinary ScheduledJobs: sliced onto a contended pool,
// they must produce the same values as a dedicated solo run.
TEST(SubgraphEngine, SchedulerSlicedRunMatchesSoloRun) {
  const Graph g = erdos_renyi(400, 900, 47);
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 2;
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
  const auto solo = subgraph::run_sssp_subgraph(g, c, parts, 0);
  ASSERT_FALSE(solo.failed);

  sched::SchedulerOptions so;
  so.pool_vms = 4;
  sched::JobScheduler scheduler(so);
  JobOptions o;
  o.roots = {0};
  auto job = std::make_unique<sched::TypedJob<SsspSubgraphProgram>>(
      g, SsspSubgraphProgram{}, c, parts, o);
  auto* typed = job.get();
  const auto id = scheduler.submit(sched::JobSpec{.name = "subgraph-sssp"},
                                   std::move(job));
  scheduler.run_all();
  ASSERT_FALSE(scheduler.report(id).failed);
  const auto& vals = typed->result().values;
  ASSERT_EQ(vals.size(), solo.values.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(vals[v].distance, solo.values[v].distance) << "vertex " << v;
}

}  // namespace
}  // namespace pregel
