// Integration tests asserting the paper's qualitative results end to end at
// test-friendly scale. These are the repository's "does the reproduction
// actually reproduce" safety net: each test states a claim from the paper's
// evaluation and checks the corresponding shape on a small analog.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <numeric>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "cloud/elasticity.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using algos::run_bc;
using algos::run_pagerank;

Graph small_world() {
  static const Graph g = relabel_vertices(watts_strogatz(6000, 8, 0.1, 77), 7);
  return g;
}

ClusterConfig tight_cluster(std::uint32_t workers, double ram_factor) {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = workers;
  c.vm = cloud::with_scaled_ram(cloud::azure_large_2012(), ram_factor);
  return c;
}

Bytes memory_target_for(const ClusterConfig& c) {
  return static_cast<Bytes>(static_cast<double>(c.vm.ram) * 6.0 / 7.0);
}

// Paper §VI-A / Fig 3: PageRank's message profile is flat; BC's is a
// triangle wave whose peak dwarfs its mean.
TEST(ReproShapes, MessageProfiles) {
  const Graph g = small_world();
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig c = tight_cluster(8, 1.0);

  const auto pr = run_pagerank(g, c, parts, 10);
  double pr_peak = 0, pr_sum = 0;
  std::size_t pr_n = 0;
  for (const auto& s : pr.metrics.supersteps) {
    if (s.messages_sent_total() == 0) continue;
    pr_peak = std::max(pr_peak, static_cast<double>(s.messages_sent_total()));
    pr_sum += static_cast<double>(s.messages_sent_total());
    ++pr_n;
  }
  EXPECT_LT(pr_peak / (pr_sum / static_cast<double>(pr_n)), 1.05);

  const auto roots = std::vector<VertexId>{1, 2, 3, 4, 5, 6, 7};
  const auto bc = run_bc(g, c, parts, roots);
  double bc_peak = 0, bc_sum = 0;
  for (const auto& s : bc.metrics.supersteps) {
    bc_peak = std::max(bc_peak, static_cast<double>(s.messages_sent_total()));
    bc_sum += static_cast<double>(s.messages_sent_total());
  }
  const double bc_mean = bc_sum / static_cast<double>(bc.metrics.supersteps.size());
  EXPECT_GT(bc_peak / bc_mean, 2.0);
}

// Paper §VI-B / Fig 4: with a memory envelope that the all-at-once swath
// overflows, the adaptive heuristic beats the largest completing baseline.
TEST(ReproShapes, AdaptiveSwathBeatsThrashingBaseline) {
  const Graph g = small_world();
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig c = tight_cluster(8, 0.0008);  // ~6 MiB per VM
  const Bytes target = memory_target_for(c);

  std::vector<VertexId> roots(24);
  std::iota(roots.begin(), roots.end(), VertexId{100});

  JobOptions base;
  base.roots = roots;
  base.fail_on_vm_restart = false;
  Engine<BcProgram> be(g, {}, c, parts);
  const auto rb = be.run(base);

  JobOptions adaptive;
  adaptive.roots = roots;
  adaptive.fail_on_vm_restart = false;
  adaptive.swath = SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(3),
                                     std::make_shared<DynamicPeakInitiation>(), target);
  Engine<BcProgram> ae(g, {}, c, parts);
  const auto ra = ae.run(adaptive);

  ASSERT_FALSE(ra.failed);
  // Baseline must actually have thrashed for the comparison to be the
  // paper's (if it restarted, the heuristic wins by definition).
  EXPECT_GT(rb.metrics.peak_worker_memory(), c.vm.ram);
  EXPECT_LE(ra.metrics.peak_worker_memory(),
            static_cast<Bytes>(static_cast<double>(c.vm.ram) * 1.05));
  if (!rb.failed) {
    EXPECT_LT(ra.metrics.total_time, rb.metrics.total_time);
  }
}

// Paper §VI-C / Fig 6: overlapping swath initiation reduces total supersteps
// and time versus sequential.
TEST(ReproShapes, OverlappedInitiationReducesSupersteps) {
  const Graph g = small_world();
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig c = tight_cluster(8, 1.0);

  std::vector<VertexId> roots(20);
  std::iota(roots.begin(), roots.end(), VertexId{0});

  auto run_with = [&](std::shared_ptr<InitiationPolicy> pol) {
    JobOptions o;
    o.roots = roots;
    o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(5), std::move(pol),
                                memory_target_for(c));
    Engine<BcProgram> e(g, {}, c, parts);
    return e.run(o);
  };
  const auto seq = run_with(std::make_shared<SequentialInitiation>());
  const auto dyn = run_with(std::make_shared<DynamicPeakInitiation>());
  EXPECT_LT(dyn.metrics.total_supersteps(), seq.metrics.total_supersteps());
  EXPECT_LT(dyn.metrics.total_time, seq.metrics.total_time);
}

// Paper §VII / Figs 8-12: METIS-like partitioning slashes remote messages
// for BC on a small-world graph, and hash shows HIGHER utilization (uniform
// load) despite higher total time.
TEST(ReproShapes, PartitioningCutsRemoteTrafficButHashIsMoreUniform) {
  const Graph g = small_world();
  const auto hash_parts = HashPartitioner{}.partition(g, 8);
  const auto metis_parts = MultilevelPartitioner{}.partition(g, 8);
  ClusterConfig c = tight_cluster(8, 1.0);
  const std::vector<VertexId> roots{0, 11, 22, 33, 44};

  const auto rh = run_bc(g, c, hash_parts, roots);
  const auto rm = run_bc(g, c, metis_parts, roots);

  std::uint64_t remote_h = 0, remote_m = 0;
  for (const auto& s : rh.metrics.supersteps) remote_h += s.messages_sent_remote();
  for (const auto& s : rm.metrics.supersteps) remote_m += s.messages_sent_remote();
  EXPECT_LT(remote_m, remote_h / 2);

  EXPECT_GT(rh.metrics.utilization(), rm.metrics.utilization());
  EXPECT_LT(rm.metrics.total_time, rh.metrics.total_time);
}

// Paper §VIII / Fig 15: with 8 partitions, running on 4 VMs doubles per-VM
// memory; at the active peak, 8 VMs avoid the thrash penalty and show
// superlinear per-superstep speedup.
TEST(ReproShapes, SuperlinearElasticSpeedupAtPeak) {
  const Graph g = small_world();
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig c4 = tight_cluster(4, 0.0008);
  ClusterConfig c8 = tight_cluster(8, 0.0008);
  const std::vector<VertexId> roots{0, 1, 2, 3, 4, 5, 6, 7, 8, 9};

  JobOptions o;
  o.roots = roots;
  o.fail_on_vm_restart = false;
  Engine<BcProgram> e4(g, {}, c4, parts);
  Engine<BcProgram> e8(g, {}, c8, parts);
  const auto r4 = e4.run(o);
  const auto r8 = e8.run(o);
  const std::size_t n = std::min(r4.metrics.supersteps.size(), r8.metrics.supersteps.size());
  double best = 0;
  for (std::size_t s = 0; s < n; ++s) {
    const double t4 = r4.metrics.supersteps[s].span;
    const double t8 = r8.metrics.supersteps[s].span;
    if (t8 > 0) best = std::max(best, t4 / t8);
  }
  EXPECT_GT(best, 2.0) << "expected a superlinear per-superstep speedup at the memory peak";
}

}  // namespace
}  // namespace pregel
