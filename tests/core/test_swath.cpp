#include "core/swath.hpp"

#include <gtest/gtest.h>

namespace pregel {
namespace {

TEST(StaticSwathSizer, AlwaysReturnsFixedSize) {
  StaticSwathSizer s(40);
  EXPECT_EQ(s.next_size({}), 40u);
  SwathSizeSignals sig;
  sig.swath_index = 5;
  sig.peak_memory_last_swath = 100_GiB;
  EXPECT_EQ(s.next_size(sig), 40u);
  EXPECT_THROW(StaticSwathSizer(0), std::logic_error);
}

TEST(SamplingSwathSizer, SamplesThenExtrapolates) {
  SamplingSwathSizer s(/*sample_size=*/4, /*sample_count=*/2);
  SwathSizeSignals sig;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 6_GiB;
  sig.roots_remaining = 1000;

  // Swath 0: first sample.
  sig.swath_index = 0;
  sig.last_swath_size = 0;
  EXPECT_EQ(s.next_size(sig), 4u);

  // Swath 1: second sample; previous peaked at 1.4 GiB => 100 MiB/root.
  sig.swath_index = 1;
  sig.last_swath_size = 4;
  sig.peak_memory_last_swath = 1_GiB + 400_MiB;
  EXPECT_EQ(s.next_size(sig), 4u);

  // Swath 2: extrapolation. Budget 5 GiB / 100 MiB per root = 51 roots.
  sig.swath_index = 2;
  sig.peak_memory_last_swath = 1_GiB + 400_MiB;
  const std::uint32_t extrapolated = s.next_size(sig);
  EXPECT_EQ(extrapolated, 51u);
  EXPECT_EQ(s.extrapolated_size(), extrapolated);

  // Later swaths keep the same size regardless of new observations.
  sig.swath_index = 3;
  sig.last_swath_size = extrapolated;
  sig.peak_memory_last_swath = 7_GiB;
  EXPECT_EQ(s.next_size(sig), extrapolated);
}

TEST(SamplingSwathSizer, GrowsBoldlyWithoutObservedPressure) {
  SamplingSwathSizer s(4, 1);
  SwathSizeSignals sig;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 6_GiB;
  sig.swath_index = 0;
  EXPECT_EQ(s.next_size(sig), 4u);
  sig.swath_index = 1;
  sig.last_swath_size = 4;
  sig.peak_memory_last_swath = sig.baseline_memory;  // no incremental memory
  EXPECT_EQ(s.next_size(sig), 16u);                  // sample_size * 4
}

TEST(SamplingSwathSizer, ValidatesArguments) {
  EXPECT_THROW(SamplingSwathSizer(0, 1), std::logic_error);
  EXPECT_THROW(SamplingSwathSizer(1, 0), std::logic_error);
}

TEST(AdaptiveSwathSizer, StartsAtInitialSize) {
  AdaptiveSwathSizer s(8);
  SwathSizeSignals sig;
  sig.swath_index = 0;
  EXPECT_EQ(s.next_size(sig), 8u);
}

TEST(AdaptiveSwathSizer, ShrinksWhenOverTarget) {
  AdaptiveSwathSizer s(8, /*smoothing=*/1.0);  // no EWMA damping
  SwathSizeSignals sig;
  sig.swath_index = 1;
  sig.last_swath_size = 8;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 6_GiB;
  sig.peak_memory_last_swath = 11_GiB;  // used 10 GiB for 8 roots; budget 5
  EXPECT_EQ(s.next_size(sig), 4u);      // 8 * 5/10
}

TEST(AdaptiveSwathSizer, GrowsWhenUnderTargetWithCap) {
  AdaptiveSwathSizer s(8, 1.0, /*growth_cap=*/2.0);
  SwathSizeSignals sig;
  sig.swath_index = 1;
  sig.last_swath_size = 8;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 9_GiB;
  sig.peak_memory_last_swath = 2_GiB;  // used 1 GiB; budget 8 -> raw 64, capped 16
  EXPECT_EQ(s.next_size(sig), 16u);
}

TEST(AdaptiveSwathSizer, NeverBelowOne) {
  AdaptiveSwathSizer s(2, 1.0);
  SwathSizeSignals sig;
  sig.swath_index = 1;
  sig.last_swath_size = 1;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 2_GiB;
  sig.peak_memory_last_swath = 100_GiB;
  EXPECT_EQ(s.next_size(sig), 1u);
}

TEST(AdaptiveSwathSizer, EwmaSmoothsOscillation) {
  AdaptiveSwathSizer s(10, /*smoothing=*/0.5);
  SwathSizeSignals sig;
  sig.baseline_memory = 0;
  sig.memory_target = 10_GiB;
  // First adjustment: used 20 GiB at size 10 -> raw proposal 5.
  sig.swath_index = 1;
  sig.last_swath_size = 10;
  sig.peak_memory_last_swath = 20_GiB;
  const auto first = s.next_size(sig);
  EXPECT_EQ(first, 5u);  // EWMA seeds with the first proposal
  // Second: used 5 GiB at size 5 -> raw proposal 10; smoothed ~7-8.
  sig.swath_index = 2;
  sig.last_swath_size = 5;
  sig.peak_memory_last_swath = 5_GiB;
  const auto second = s.next_size(sig);
  EXPECT_GT(second, 5u);
  EXPECT_LT(second, 10u);
}

TEST(AdaptiveSwathSizer, ValidatesArguments) {
  EXPECT_THROW(AdaptiveSwathSizer(0), std::logic_error);
  EXPECT_THROW(AdaptiveSwathSizer(4, 0.0), std::logic_error);
  EXPECT_THROW(AdaptiveSwathSizer(4, 0.5, 0.5), std::logic_error);
}

TEST(AdaptiveSwathSizer, SpillReliefKeepsSwathWide) {
  // Same pressure as ShrinksWhenOverTarget, but the governor offers to spill
  // the message buffers: the sizer regulates against the peak net of the
  // spillable bytes instead of halving the swath.
  AdaptiveSwathSizer s(8, /*smoothing=*/1.0);
  SwathSizeSignals sig;
  sig.swath_index = 1;
  sig.last_swath_size = 8;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 6_GiB;
  sig.peak_memory_last_swath = 11_GiB;
  sig.peak_spillable_last_swath = 5_GiB;  // effective peak 6 -> used 5 = budget
  sig.spill_relief_available = true;
  EXPECT_EQ(s.next_size(sig), 8u);  // 8 * 5/5: hold size, spill instead
}

TEST(AdaptiveSwathSizer, SpillableBytesIgnoredWithoutRelief) {
  // Spillable bytes were observed but spilling is priced too dear (or the
  // governor is off): the sizer must still clamp on the full resident peak.
  AdaptiveSwathSizer s(8, /*smoothing=*/1.0);
  SwathSizeSignals sig;
  sig.swath_index = 1;
  sig.last_swath_size = 8;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 6_GiB;
  sig.peak_memory_last_swath = 11_GiB;
  sig.peak_spillable_last_swath = 5_GiB;
  sig.spill_relief_available = false;
  EXPECT_EQ(s.next_size(sig), 4u);  // identical to ShrinksWhenOverTarget
}

TEST(SamplingSwathSizer, SpillReliefRaisesExtrapolation) {
  auto measure = [](bool relief) {
    SamplingSwathSizer s(/*sample_size=*/4, /*sample_count=*/1);
    SwathSizeSignals sig;
    sig.baseline_memory = 1_GiB;
    sig.memory_target = 9_GiB;
    sig.swath_index = 0;
    s.next_size(sig);  // first sampling swath requested
    sig.swath_index = 1;
    sig.last_swath_size = 4;
    sig.peak_memory_last_swath = 9_GiB;  // 2 GiB/root resident...
    sig.peak_spillable_last_swath = 4_GiB;  // ...half of it message buffer
    sig.spill_relief_available = relief;
    return s.next_size(sig);
  };
  // Net of spill: 1 GiB/root -> 8 roots fit. Fully resident: 2 GiB/root -> 4.
  EXPECT_EQ(measure(true), 8u);
  EXPECT_EQ(measure(false), 4u);
}

TEST(SequentialInitiation, OnlyWhenDrained) {
  SequentialInitiation p;
  InitiationSignals sig;
  sig.active_roots = 3;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.active_roots = 0;
  EXPECT_TRUE(p.should_initiate(sig));
}

TEST(StaticNInitiation, FiresEveryN) {
  StaticNInitiation p(4);
  InitiationSignals sig;
  sig.active_roots = 2;
  sig.supersteps_since_initiation = 3;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.supersteps_since_initiation = 4;
  EXPECT_TRUE(p.should_initiate(sig));
  // Drained always allows initiation regardless of the counter.
  sig.supersteps_since_initiation = 1;
  sig.active_roots = 0;
  EXPECT_TRUE(p.should_initiate(sig));
  EXPECT_THROW(StaticNInitiation(0), std::logic_error);
}

TEST(DynamicPeakInitiation, FiresAfterMessagePeak) {
  DynamicPeakInitiation p;
  InitiationSignals sig;
  sig.active_roots = 1;
  sig.memory_target = 6_GiB;
  sig.max_worker_memory = 1_GiB;
  sig.messages_sent = 100;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 1000;  // rising
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 400;  // falling: peak passed
  EXPECT_TRUE(p.should_initiate(sig));
}

TEST(DynamicPeakInitiation, MemoryGuardDefersInitiation) {
  DynamicPeakInitiation p;
  InitiationSignals sig;
  sig.active_roots = 1;
  sig.memory_target = 6_GiB;
  sig.max_worker_memory = 7_GiB;  // over target
  sig.messages_sent = 100;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 1000;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 400;  // peak passed but memory too high
  EXPECT_FALSE(p.should_initiate(sig));
  sig.max_worker_memory = 3_GiB;  // pressure released: fire
  sig.messages_sent = 390;
  EXPECT_TRUE(p.should_initiate(sig));
}

TEST(DynamicPeakInitiation, ResetsAfterInitiation) {
  DynamicPeakInitiation p;
  InitiationSignals sig;
  sig.active_roots = 1;
  sig.messages_sent = 100;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 1000;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 400;
  EXPECT_TRUE(p.should_initiate(sig));
  p.on_initiated();
  // Needs a fresh rise-fall cycle before firing again.
  sig.messages_sent = 300;
  EXPECT_FALSE(p.should_initiate(sig));
  sig.messages_sent = 200;
  EXPECT_FALSE(p.should_initiate(sig));
}

TEST(DynamicPeakInitiation, DrainedAlwaysFires) {
  DynamicPeakInitiation p;
  InitiationSignals sig;
  sig.active_roots = 0;
  EXPECT_TRUE(p.should_initiate(sig));
}

TEST(SwathPolicy, SingleSwathDefaults) {
  const auto p = SwathPolicy::single_swath();
  ASSERT_NE(p.sizer, nullptr);
  ASSERT_NE(p.initiation, nullptr);
  SwathSizeSignals sig;
  sig.roots_remaining = 12345;
  EXPECT_GE(p.sizer->next_size(sig), 12345u);  // everything at once
}

TEST(SwathPolicy, MakeValidates) {
  EXPECT_THROW(SwathPolicy::make(nullptr, std::make_shared<SequentialInitiation>(), 0),
               std::logic_error);
  EXPECT_THROW(SwathPolicy::make(std::make_shared<StaticSwathSizer>(1), nullptr, 0),
               std::logic_error);
}

}  // namespace
}  // namespace pregel
