// Dynamic partition placement (overdecomposition rebalancing): policy unit
// tests plus engine integration — results must be invariant, and rebalancing
// must actually counter §VII's partition-local activity maximas.
#include <gtest/gtest.h>

#include <numeric>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "cloud/placement.hpp"
#include "graph/analysis.hpp"
#include "util/rng.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using cloud::GreedyRebalancePlacement;
using cloud::ModuloPlacement;
using cloud::PlacementSignals;

TEST(ModuloPlacement, RoundRobin) {
  ModuloPlacement p;
  PlacementSignals s;
  s.workers = 3;
  s.placement.assign(7, 0);
  const auto out = p.place(s);
  for (std::uint32_t i = 0; i < 7; ++i) EXPECT_EQ(out[i], i % 3);
}

TEST(GreedyRebalance, NoMoveWhenBalanced) {
  GreedyRebalancePlacement p(1.25, 1.0);
  PlacementSignals s;
  s.workers = 2;
  s.placement = {0, 1, 0, 1};
  s.partition_load = {10, 10, 10, 10};
  EXPECT_EQ(p.place(s), s.placement);
  EXPECT_EQ(p.rebalances(), 0u);
}

TEST(GreedyRebalance, RepacksWhenSkewed) {
  GreedyRebalancePlacement p(1.25, 1.0);
  PlacementSignals s;
  s.workers = 2;
  s.placement = {0, 0, 1, 1};
  s.partition_load = {100, 90, 1, 1};  // VM0 carries ~99% of the load
  const auto out = p.place(s);
  EXPECT_EQ(p.rebalances(), 1u);
  // The two heavy partitions must land on different VMs.
  EXPECT_NE(out[0], out[1]);
  double bin[2] = {0, 0};
  for (int i = 0; i < 4; ++i) bin[out[static_cast<std::size_t>(i)]] += s.partition_load[static_cast<std::size_t>(i)];
  EXPECT_LT(std::max(bin[0], bin[1]) / ((bin[0] + bin[1]) / 2), 1.25);
}

TEST(GreedyRebalance, ZeroLoadIsNoop) {
  GreedyRebalancePlacement p;
  PlacementSignals s;
  s.workers = 2;
  s.placement = {0, 1};
  s.partition_load = {0, 0};
  EXPECT_EQ(p.place(s), s.placement);
}

TEST(GreedyRebalance, ValidatesArguments) {
  EXPECT_THROW(GreedyRebalancePlacement(0.9), std::logic_error);
  EXPECT_THROW(GreedyRebalancePlacement(1.5, 0.0), std::logic_error);
}

TEST(GreedyRebalance, EwmaSmoothsTransients) {
  GreedyRebalancePlacement p(1.25, 0.2);  // slow EWMA
  PlacementSignals s;
  s.workers = 2;
  s.placement = {0, 1};
  s.partition_load = {10, 10};
  (void)p.place(s);
  // One transient spike shouldn't immediately trigger a repack.
  s.partition_load = {100, 1};
  (void)p.place(s);
  EXPECT_LE(p.rebalances(), 1u);  // may or may not fire once smoothed; never loops
}

// ---- engine integration ------------------------------------------------------

TEST(EnginePlacement, ResultsInvariantUnderRebalancing) {
  Graph g = relabel_vertices(watts_strogatz(2000, 6, 0.1, 3), 5);
  // Overdecompose: 16 partitions on 4 VMs.
  const auto parts = MultilevelPartitioner{}.partition(g, 16);
  const std::vector<VertexId> roots{0, 100, 200, 300};
  const auto ref = reference_betweenness(g, roots);

  for (bool rebalance : {false, true}) {
    ClusterConfig c;
    c.num_partitions = 16;
    c.initial_workers = 4;
    if (rebalance) c.placement = std::make_shared<GreedyRebalancePlacement>();
    Engine<BcProgram> e(g, {}, c, parts);
    JobOptions o;
    o.roots = roots;
    const auto r = e.run(o);
    ASSERT_EQ(r.roots_completed, roots.size());
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6) << rebalance << " " << v;
  }
}

TEST(EnginePlacement, RebalancingFixesSustainedSkew) {
  // Adversarial for static modulo placement: the four heavy partitions sit
  // at indices 0, 4, 8, 12, so "p mod 4" stacks ALL of them on VM 0. With a
  // uniform-profile program (PageRank-like load every superstep), the skew
  // is sustained and the rebalancer pays one migration to fix it for good.
  Graph g = barabasi_albert(4000, 4, 7);
  std::vector<PartitionId> assign(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (v < g.num_vertices() / 2) {
      assign[v] = (v % 4) * 4;  // half the graph into partitions 0,4,8,12
    } else {
      assign[v] = static_cast<PartitionId>(mix64(v) % 16);
    }
  }
  const Partitioning parts(std::move(assign), 16);

  auto run_with = [&](std::shared_ptr<cloud::PlacementPolicy> policy) {
    ClusterConfig c;
    c.num_partitions = 16;
    c.initial_workers = 4;
    c.placement = std::move(policy);
    Engine<algos::PageRankProgram> e(g, {15, 0.85}, c, parts);
    JobOptions o;
    o.start_all_vertices = true;
    return e.run(o);
  };
  const auto fixed = run_with(nullptr);
  const auto rebal = run_with(std::make_shared<GreedyRebalancePlacement>(1.2, 0.6));
  EXPECT_LT(rebal.metrics.total_barrier_wait(), fixed.metrics.total_barrier_wait());
  EXPECT_LT(rebal.metrics.total_time, fixed.metrics.total_time);
  // And the result is identical either way.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(rebal.values[v].rank, fixed.values[v].rank);
}

TEST(EnginePlacement, FrontierChasingIsNotAFreeWin) {
  // The flip side, and an honest caveat: a BC traversal's activity wave
  // moves every superstep, so a rebalancer that places for the NEXT
  // superstep using the LAST superstep's load chases the frontier and pays
  // migrations without reliably winning. We only assert it is not
  // catastrophically worse (< 30% overhead) — the ablation bench quantifies.
  Graph g = relabel_vertices(watts_strogatz(4000, 8, 0.05, 7), 9);
  const auto parts = MultilevelPartitioner{}.partition(g, 16);
  const std::vector<VertexId> roots{0, 1, 2, 3, 4, 5};

  auto run_with = [&](std::shared_ptr<cloud::PlacementPolicy> policy) {
    ClusterConfig c;
    c.num_partitions = 16;
    c.initial_workers = 4;
    c.placement = std::move(policy);
    Engine<BcProgram> e(g, {}, c, parts);
    JobOptions o;
    o.roots = roots;
    return e.run(o);
  };
  const auto fixed = run_with(nullptr);
  const auto rebal = run_with(std::make_shared<GreedyRebalancePlacement>(1.1, 0.6));
  EXPECT_LT(rebal.metrics.total_time, fixed.metrics.total_time * 1.3);
}

TEST(EnginePlacement, MigrationCostCharged) {
  Graph g = watts_strogatz(1000, 4, 0.1, 11);
  const auto parts = HashPartitioner{}.partition(g, 8);

  // A policy that pointlessly swaps two partitions every barrier: pure cost.
  class Churn final : public cloud::PlacementPolicy {
   public:
    std::vector<std::uint32_t> place(const PlacementSignals& s) override {
      auto out = s.placement;
      std::swap(out[0], out[1]);
      return out;
    }
    std::string name() const override { return "churn"; }
  };

  auto run_with = [&](std::shared_ptr<cloud::PlacementPolicy> policy) {
    ClusterConfig c;
    c.num_partitions = 8;
    c.initial_workers = 4;
    c.placement = std::move(policy);
    Engine<BcProgram> e(g, {}, c, parts);
    JobOptions o;
    o.roots = {0, 1};
    return e.run(o);
  };
  const auto calm = run_with(nullptr);
  const auto churn = run_with(std::make_shared<Churn>());
  EXPECT_GT(churn.metrics.total_time, calm.metrics.total_time);
}

}  // namespace
}  // namespace pregel
