// Generational checkpoint store, engine-level: a seeded crash or corruption
// at every phase of the checkpoint lifecycle — mid-delta torn leg, torn
// manifest at the publish step, corrupt mid-chain delta, corrupt manifest,
// unreplicated generation under a zone outage, every generation bad — must
// recover bit-identically via the multi-generation fallback walk. Plus the
// delta-vs-full byte/time reduction, scrub visibility, and the distinct
// replica-failure counter.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::PageRankProgram;
using algos::SsspProgram;

ClusterConfig base_cluster() {
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  return c;
}

// Fault-free PageRank reference for the bit-identity comparisons below.
struct PageRankFixture {
  Graph g = barabasi_albert(300, 3, 5);
  Partitioning parts = HashPartitioner{}.partition(g, 4);
  JobOptions opts;
  std::vector<PageRankProgram::VertexValue> clean;

  PageRankFixture() {
    opts.start_all_vertices = true;
    Engine<PageRankProgram> e(g, {25, 0.85}, base_cluster(), parts);
    clean = e.run(opts).values;
  }

  template <typename Report>
  void expect_exact(const Report& r) const {
    ASSERT_FALSE(r.failed) << r.failure_reason;
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_DOUBLE_EQ(r.values[v].rank, clean[v].rank) << v;
  }
};

// Crash point 1: a delta leg lands torn mid-write. The generation still
// publishes (the manifest names the torn blob), but the restore walk detects
// the tear and falls back one generation instead of losing the job.
TEST(CkptRecovery, TornDeltaLegFallsBackOneGeneration) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;               // rounds after supersteps 1, 3, 5...
  c.ckpt.scheduled_leg_tears = {{2, 1}};   // round 2 = seq 3, partition 1
  c.scheduled_failures = {{6, 0}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
  EXPECT_GE(r.metrics.checkpoint_torn_legs, 1u);
  EXPECT_GE(r.metrics.checkpoint_corrupt_legs, 1u);
  EXPECT_GE(r.metrics.checkpoint_fallbacks, 1u);
  EXPECT_GE(r.metrics.checkpoint_fallback_depth_max, 1u);
}

// Crash point 2: the crash lands between the data legs and the manifest
// publish. Two-phase atomicity: the round is lost whole, the previous
// generation stays newest, and recovery proceeds from it with no fallback.
TEST(CkptRecovery, TornManifestLosesTheRoundNotTheJob) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.ckpt.scheduled_manifest_tears = {2};   // round 2 lost at the publish step
  c.scheduled_failures = {{6, 2}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_EQ(r.metrics.checkpoint_torn_manifests, 1u);
  EXPECT_GE(r.metrics.checkpoint_failures, 1u);
  // The newest surviving generation resumed at superstep 4, so the failure
  // at superstep 6 replays supersteps 4..6.
  EXPECT_EQ(r.metrics.replayed_supersteps, 3u);
  EXPECT_EQ(r.metrics.checkpoint_fallback_depth_max, 0u);
}

// Crash point 3: at-rest rot of a mid-chain delta poisons every descendant
// delta's restore set — the forced two-generation fallback of the
// acceptance gate.
TEST(CkptRecovery, CorruptMidChainDeltaForcesTwoGenerationFallback) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;               // seq 1 base, seq 2-3 deltas on it
  c.ckpt.scheduled_leg_rot = {{2, 0}};     // publish serial 2, partition 0
  c.scheduled_failures = {{6, 1}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_EQ(r.metrics.checkpoint_fallback_depth_max, 2u);
  EXPECT_GE(r.metrics.checkpoint_corrupt_legs, 1u);
  // Landed on the base (resume superstep 2): supersteps 2..6 replay.
  EXPECT_EQ(r.metrics.replayed_supersteps, 5u);
}

// Crash point 4: the manifest itself rots at rest. Chain verification fails
// for that generation and the walk skips it.
TEST(CkptRecovery, CorruptManifestFailsChainVerification) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.ckpt.scheduled_manifest_rot = {3};     // newest generation's manifest
  c.scheduled_failures = {{6, 3}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_GE(r.metrics.checkpoint_corrupt_manifests, 1u);
  EXPECT_GE(r.metrics.checkpoint_fallback_depth_max, 1u);
}

// Worst case: every uploaded generation is bad. Generation 0 — the input
// graph in blob storage — is the incorruptible floor: the job restarts from
// superstep 0 and still finishes exactly. The single-snapshot design this
// store replaced lost the job here.
TEST(CkptRecovery, AllGenerationsCorruptFallsToInputGraph) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.ckpt.scheduled_manifest_rot = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  c.scheduled_failures = {{5, 0}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  // Two generations existed (after supersteps 1 and 3); both were skipped.
  EXPECT_EQ(r.metrics.checkpoint_fallback_depth_max, 2u);
  EXPECT_EQ(r.metrics.replayed_supersteps, 6u);  // full restart: 0..5
}

// Crash point 5: a zone outage. Legs homed in the lost zone are unreadable
// at the primary; the cross-zone replicas stand in.
TEST(CkptRecovery, ZoneOutageRestoresThroughReplicas) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.availability_zones = 2;
  c.scheduled_zone_outages = {{5, 0}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_EQ(r.metrics.zone_outages, 1u);
  EXPECT_GE(r.metrics.checkpoint_replicas_written, 2u);
  EXPECT_GE(r.metrics.checkpoint_replica_reads, 1u);
  EXPECT_EQ(r.metrics.checkpoint_fallback_depth_max, 0u);
}

// Crash point 6: the crash window between primary publish and the replica
// round. The generation is visible but unreplicated; under a zone outage
// the walk must skip it (its lost-zone legs have no standby copy) and fall
// back to the older, replicated generation. The abandoned replica round
// lands in its own counter, not in checkpoint_failures.
TEST(CkptRecovery, UnreplicatedGenerationSkippedUnderZoneLoss) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.availability_zones = 2;
  c.ckpt.scheduled_replica_failures = {1};  // round 1 = seq 2 publishes bare
  c.scheduled_zone_outages = {{5, 0}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_EQ(r.metrics.checkpoint_replica_failures, 1u);
  EXPECT_EQ(r.metrics.checkpoint_failures, 0u);
  EXPECT_GE(r.metrics.checkpoint_fallback_depth_max, 1u);
  EXPECT_GE(r.metrics.checkpoint_replica_reads, 1u);
}

// Acceptance gate: delta generations shrink modeled checkpoint bytes and
// time on a frontier algorithm, with values untouched.
TEST(CkptRecovery, DeltaCheckpointsShrinkBytesAndTime) {
  Graph g = watts_strogatz(400, 6, 0.2, 9);
  const auto parts = HashPartitioner{}.partition(g, 4);
  JobOptions o;
  o.roots = {0};

  ClusterConfig full = base_cluster();
  full.checkpoint_interval = 2;
  full.ckpt.delta_enabled = false;
  ClusterConfig delta = full;
  delta.ckpt.delta_enabled = true;

  Engine<SsspProgram> ef(g, {}, full, parts);
  Engine<SsspProgram> ed(g, {}, delta, parts);
  const auto rf = ef.run(o);
  const auto rd = ed.run(o);
  ASSERT_FALSE(rf.failed);
  ASSERT_FALSE(rd.failed);
  EXPECT_EQ(rf.metrics.checkpoint_deltas, 0u);
  EXPECT_GT(rd.metrics.checkpoint_deltas, 0u);
  EXPECT_GE(rd.metrics.checkpoint_bases, 1u);
  const Bytes full_bytes = rf.metrics.checkpoint_base_bytes + rf.metrics.checkpoint_delta_bytes;
  const Bytes delta_bytes = rd.metrics.checkpoint_base_bytes + rd.metrics.checkpoint_delta_bytes;
  EXPECT_LT(delta_bytes, full_bytes);
  EXPECT_LT(rd.metrics.checkpoint_time, rf.metrics.checkpoint_time);
  const auto ref = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(rd.values[v].distance, ref[v]) << v;
    ASSERT_EQ(rf.values[v].distance, ref[v]) << v;
  }
}

// A long delta run re-bases on the chain bound and retention GC retires the
// generations the newest restore sets no longer need, pricing delete ops.
TEST(CkptRecovery, RetentionGcRetiresOldGenerations) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.ckpt.max_chain_length = 2;
  c.ckpt.retained_generations = 2;
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_GE(r.metrics.checkpoint_bases, 2u);  // re-based at least once
  EXPECT_GT(r.metrics.ckpt_gc_generations, 0u);
  EXPECT_GT(r.metrics.ckpt_gc_delete_ops, 0u);
}

// Scrub: rot planted in a generation's leg and manifest is found and
// repaired between barriers, visible in metrics and charged to modeled
// time — and a later restore walks straight through the repaired copies.
TEST(CkptRecovery, ScrubRepairsAreVisibleAndRestoreSucceeds) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.ckpt.scrub_period = 2;
  c.ckpt.scheduled_leg_rot = {{1, 0}};
  c.ckpt.scheduled_manifest_rot = {1};
  c.scheduled_failures = {{14, 0}};  // long after the scrub repaired seq 1
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_GT(r.metrics.scrub_passes, 0u);
  EXPECT_GT(r.metrics.scrub_copies_verified, 0u);
  EXPECT_GE(r.metrics.scrub_repairs, 2u);  // the leg and the manifest
  EXPECT_GT(r.metrics.scrub_time, 0.0);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
}

// With every checkpoint-store fault rate zero and no scrub findings, the
// store's presence costs nothing extra at the barrier and values match the
// plain-config baseline exactly.
TEST(CkptRecovery, RateDrivenTornWritesStillRecoverExactly) {
  PageRankFixture fx;
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.faults.ckpt_torn_write_rate = 0.2;
  c.faults.ckpt_rot_rate = 0.05;
  c.scheduled_failures = {{6, 0}, {13, 2}};
  Engine<PageRankProgram> e(fx.g, {25, 0.85}, c, fx.parts);
  const auto r = e.run(fx.opts);
  fx.expect_exact(r);
  EXPECT_EQ(r.metrics.worker_failures, 2u);
  EXPECT_GT(r.metrics.checkpoint_torn_legs, 0u);
}

}  // namespace
}  // namespace pregel
