// Engine-level coverage for the memory-pressure governor: byte-transparency
// when idle, the degradation ladder (veto/clamp -> shed -> governed-OOM
// restore), peaks held to the budget across all three sizers, parked-root
// replay equivalence, and the sizer headroom re-clamps that keep stale
// estimates honest after a recovery moves baseline memory.
#include <gtest/gtest.h>

#include <algorithm>
#include <limits>
#include <memory>
#include <numeric>
#include <vector>

#include "algos/bc.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::BcProgram;

MemGovernorConfig governed() {
  MemGovernorConfig cfg;
  cfg.enabled = true;
  return cfg;
}

Bytes peak_memory(const JobMetrics& m) {
  Bytes peak = 0;
  for (const auto& sm : m.supersteps) peak = std::max(peak, sm.max_worker_memory());
  return peak;
}

Bytes floor_memory(const JobMetrics& m) {
  Bytes low = std::numeric_limits<Bytes>::max();
  for (const auto& sm : m.supersteps) low = std::min(low, sm.max_worker_memory());
  return low;
}

std::size_t supersteps_over(const JobMetrics& m, Bytes budget) {
  std::size_t n = 0;
  for (const auto& sm : m.supersteps)
    if (sm.max_worker_memory() > budget) ++n;
  return n;
}

/// A BC workload with enough in-flight state that running every root at once
/// peaks far above the drained-tail floor — the shape the governor exists for.
class GovernorBc : public ::testing::Test {
 protected:
  GovernorBc()
      : g_(watts_strogatz(240, 6, 0.2, 11)),
        parts_(HashPartitioner{}.partition(g_, 4)),
        roots_(16) {
    std::iota(roots_.begin(), roots_.end(), VertexId{0});
    ref_ = reference_betweenness(g_, roots_);
    cluster_.num_partitions = 4;
    cluster_.initial_workers = 4;
  }

  SwathPolicy all_at_once(Bytes target) const {
    return SwathPolicy::make(
        std::make_shared<StaticSwathSizer>(static_cast<std::uint32_t>(roots_.size())),
        std::make_shared<SequentialInitiation>(), target);
  }

  JobResult<BcProgram> run(const SwathPolicy& policy, const ClusterConfig& c,
                           const MemGovernorConfig& gov = {}) {
    Engine<BcProgram> e(g_, {}, c, parts_);
    JobOptions o;
    o.roots = roots_;
    o.swath = policy;
    o.governor = gov;
    return e.run(o);
  }

  void expect_reference_scores(const JobResult<BcProgram>& r) {
    ASSERT_EQ(r.values.size(), g_.num_vertices());
    for (VertexId v = 0; v < g_.num_vertices(); ++v)
      ASSERT_NEAR(r.values[v].bc_score, ref_[v], 1e-6) << v;
  }

  /// Ungoverned all-at-once probe; establishes the pressure envelope
  /// [floor B, peak P] the governed runs are measured against.
  JobResult<BcProgram> probe() { return run(all_at_once(6_GiB), cluster_); }

  Graph g_;
  Partitioning parts_;
  std::vector<VertexId> roots_;
  std::vector<double> ref_;
  ClusterConfig cluster_;
};

TEST_F(GovernorBc, IdleGovernorIsByteTransparent) {
  // With a budget far above the workload's peak the governor must be pure
  // observation: identical values, identical modeled time, zero actions.
  const auto policy = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                                        std::make_shared<SequentialInitiation>(), 6_GiB);
  const auto off = run(policy, cluster_);
  const auto on = run(policy, cluster_, governed());
  ASSERT_FALSE(off.failed);
  ASSERT_FALSE(on.failed);
  EXPECT_EQ(on.metrics.supersteps.size(), off.metrics.supersteps.size());
  EXPECT_DOUBLE_EQ(on.metrics.total_time, off.metrics.total_time);
  for (VertexId v = 0; v < g_.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(on.values[v].bc_score, off.values[v].bc_score) << v;
  EXPECT_EQ(on.metrics.governor_vetoes, 0u);
  EXPECT_EQ(on.metrics.governor_swath_clamps, 0u);
  EXPECT_EQ(on.metrics.governor_sheds, 0u);
  EXPECT_EQ(on.metrics.governor_spills, 0u);
  EXPECT_EQ(on.metrics.governed_oom_episodes, 0u);
}

TEST_F(GovernorBc, ShedParksRootsAndReplaysThemExactly) {
  const auto envelope = probe();
  ASSERT_FALSE(envelope.failed);
  const Bytes P = peak_memory(envelope.metrics);
  const Bytes B = floor_memory(envelope.metrics);
  ASSERT_GT(P, 3 * B) << "workload no longer generates memory pressure";
  const Bytes target = B + (P - B) / 3;

  // Spill disabled: the only relief for a hard-watermark breach is parking
  // in-flight roots and replaying them later.
  MemGovernorConfig cfg = governed();
  cfg.spill_enabled = false;
  const auto r = run(all_at_once(target), cluster_, cfg);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.roots_completed, roots_.size());
  EXPECT_GE(r.metrics.governor_sheds, 1u);
  EXPECT_GE(r.metrics.governor_roots_parked, 1u);
  EXPECT_GE(r.metrics.governor_roots_parked, r.metrics.governor_sheds);
  EXPECT_GE(r.metrics.replayed_supersteps, 1u);
  EXPECT_GT(r.metrics.governor_shed_time, 0.0);
  EXPECT_EQ(r.metrics.governor_spills, 0u);
  // Every recorded superstep above the budget is a breach the ladder
  // answered; the accepted trajectory stays at or below the target.
  EXPECT_LE(supersteps_over(r.metrics, target),
            static_cast<std::size_t>(r.metrics.governor_sheds +
                                     r.metrics.governed_oom_episodes));
  expect_reference_scores(r);
}

TEST_F(GovernorBc, HoldsPeakAtTargetAcrossAllThreeSizers) {
  const auto envelope = probe();
  ASSERT_FALSE(envelope.failed);
  const Bytes P = peak_memory(envelope.metrics);
  const Bytes B = floor_memory(envelope.metrics);
  ASSERT_GT(P, 3 * B);
  const Bytes target = B + (P - B) / 3;

  const std::vector<std::pair<std::string, std::shared_ptr<SwathSizer>>> sizers = {
      {"static", std::make_shared<StaticSwathSizer>(
                     static_cast<std::uint32_t>(roots_.size()))},
      {"sampling", std::make_shared<SamplingSwathSizer>(4, 2)},
      {"adaptive", std::make_shared<AdaptiveSwathSizer>(4)},
  };
  for (const auto& [name, sizer] : sizers) {
    const auto policy =
        SwathPolicy::make(sizer, std::make_shared<SequentialInitiation>(), target);
    const auto r = run(policy, cluster_, governed());
    ASSERT_FALSE(r.failed) << name;
    EXPECT_EQ(r.roots_completed, roots_.size()) << name;
    // Breaches may appear in the record (they trigger the ladder) but each
    // one must have been answered; the rest of the trajectory fits.
    EXPECT_LE(supersteps_over(r.metrics, target),
              static_cast<std::size_t>(r.metrics.governor_sheds +
                                       r.metrics.governed_oom_episodes))
        << name;
    EXPECT_LE(peak_memory(r.metrics), P) << name;
    if (r.metrics.governor_spills > 0) {
      EXPECT_GT(r.metrics.governor_spill_bytes, 0u) << name;
      EXPECT_GT(r.metrics.governor_spill_time, 0.0) << name;
    }
    expect_reference_scores(r);
  }
}

TEST_F(GovernorBc, OversizedStaticSwathEngagesTheGovernor) {
  // The all-at-once sizer under a tight budget must provoke at least one
  // ladder action (veto, clamp, spill, or shed) — the governor cannot sit
  // idle through a breach it is configured to answer.
  const auto envelope = probe();
  const Bytes P = peak_memory(envelope.metrics);
  const Bytes B = floor_memory(envelope.metrics);
  const Bytes target = B + (P - B) / 3;
  const auto r = run(all_at_once(target), cluster_, governed());
  ASSERT_FALSE(r.failed);
  EXPECT_GE(r.metrics.governor_vetoes + r.metrics.governor_swath_clamps +
                r.metrics.governor_sheds + r.metrics.governor_spills,
            1u);
  expect_reference_scores(r);
}

TEST_F(GovernorBc, GovernedOomRestoreCompletesWhereUngovernedJobDies) {
  const auto envelope = probe();
  ASSERT_FALSE(envelope.failed);
  const Bytes P = peak_memory(envelope.metrics);
  const Bytes B = floor_memory(envelope.metrics);
  ASSERT_GT(P, 3 * B);

  // Shrink the VM until the all-at-once swath crosses the 1.5x restart
  // threshold: the ungoverned run is killed by the fabric.
  ClusterConfig small = cluster_;
  small.vm.ram = P / 2;
  const Bytes target = small.vm.ram * 6 / 7;
  EXPECT_THROW(run(all_at_once(target), small), JobFailure);

  // Rung 3 alone (no spill, no shed): every thrash-restart becomes a
  // governed-OOM episode that halves the swath cap and replays.
  MemGovernorConfig cfg = governed();
  cfg.spill_enabled = false;
  cfg.shed_enabled = false;
  const auto r = run(all_at_once(target), small, cfg);
  ASSERT_FALSE(r.failed);
  EXPECT_GE(r.metrics.governed_oom_episodes, 1u);
  EXPECT_GE(r.metrics.replayed_supersteps, 1u);
  EXPECT_GT(r.metrics.recovery_time, 0.0);
  EXPECT_EQ(r.metrics.worker_failures, 0u);  // an episode, not a failure
  EXPECT_EQ(r.roots_completed, roots_.size());
  expect_reference_scores(r);
}

TEST_F(GovernorBc, GovernorComposesWithWorkerFailureRecovery) {
  const auto envelope = probe();
  const Bytes P = peak_memory(envelope.metrics);
  const Bytes B = floor_memory(envelope.metrics);
  const Bytes target = B + (P - B) / 3;

  ClusterConfig faulty = cluster_;
  faulty.checkpoint_interval = 3;
  faulty.scheduled_failures = {{5, 1}};
  const auto r = run(all_at_once(target), faulty, governed());
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
  EXPECT_GT(r.metrics.recovery_time, 0.0);
  EXPECT_EQ(r.roots_completed, roots_.size());
  expect_reference_scores(r);
}

TEST(SizerHeadroomClamp, SamplingReclampsStaleExtrapolationToCurrentBudget) {
  SamplingSwathSizer s(4, 1);
  SwathSizeSignals sig;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 6_GiB;
  sig.swath_index = 0;
  EXPECT_EQ(s.next_size(sig), 4u);

  // Sample observed 100 MiB/root: extrapolation = 5 GiB budget / 100 MiB.
  sig.swath_index = 1;
  sig.last_swath_size = 4;
  sig.peak_memory_last_swath = 1_GiB + 400_MiB;
  EXPECT_EQ(s.next_size(sig), 51u);

  // Recovery moved the baseline up (fewer VMs hold more graph): the cached
  // extrapolation must shrink to the new headroom, not replay 51.
  sig.swath_index = 2;
  sig.last_swath_size = 51;
  sig.baseline_memory = 4_GiB;
  EXPECT_EQ(s.next_size(sig), 20u);

  // Baseline at/above the target: no headroom, clamp to the minimum of 1.
  sig.swath_index = 3;
  sig.baseline_memory = 6_GiB;
  EXPECT_EQ(s.next_size(sig), 1u);
}

TEST(SizerHeadroomClamp, AdaptiveSmoothedOutputRespectsShrunkenBudget) {
  AdaptiveSwathSizer s(8, /*smoothing=*/0.5);
  SwathSizeSignals sig;
  sig.swath_index = 1;
  sig.last_swath_size = 8;
  sig.baseline_memory = 1_GiB;
  sig.memory_target = 9_GiB;
  sig.peak_memory_last_swath = 3_GiB;  // 256 MiB/root, budget 8 GiB
  const auto bold = s.next_size(sig);
  EXPECT_GT(bold, 8u);  // grows while under target

  // Budget collapses (baseline jumped after recovery): 1 GiB of headroom at
  // 256 MiB/root fits 4 roots. The EWMA's memory of the bold proposal must
  // not leak past the clamp.
  sig.swath_index = 2;
  sig.last_swath_size = bold;
  sig.baseline_memory = 8_GiB;
  sig.peak_memory_last_swath = 8_GiB + bold * 256_MiB;
  EXPECT_LE(s.next_size(sig), 4u);
}

}  // namespace
}  // namespace pregel
