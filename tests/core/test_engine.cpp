// Engine semantics tests: superstep mechanics, message delivery, activation,
// wakes, aggregates/globals, metrics accounting, memory faults, elasticity.
#include "core/engine.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "cloud/elasticity.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

ClusterConfig small_cluster(std::uint32_t parts = 4) {
  ClusterConfig c;
  c.num_partitions = parts;
  c.initial_workers = parts;
  return c;
}

// Counts compute invocations and echoes one message along each out-edge for
// a fixed number of supersteps.
struct FloodProgram {
  struct VertexValue {
    std::uint32_t computes = 0;
    std::uint64_t received = 0;
  };
  using MessageValue = std::uint32_t;

  int rounds = 3;

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    ++v.computes;
    v.received += messages.size();
    if (static_cast<int>(ctx.superstep()) < rounds) {
      ctx.send_to_all_neighbors(1);
      ctx.remain_active();
    }
  }
};

TEST(Engine, ValidatesConstruction) {
  Graph g = ring_graph(8);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig bad = small_cluster(4);
  bad.initial_workers = 5;
  EXPECT_THROW((Engine<FloodProgram>(g, {}, bad, parts)), std::logic_error);

  ClusterConfig wrong_parts = small_cluster(8);
  EXPECT_THROW((Engine<FloodProgram>(g, {}, wrong_parts, parts)), std::logic_error);
}

TEST(Engine, ValidatesJobOptions) {
  Graph g = ring_graph(8);
  const auto parts = HashPartitioner{}.partition(g, 4);
  Engine<FloodProgram> e(g, {}, small_cluster(4), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  opts.roots = {1};
  EXPECT_THROW(e.run(opts), std::logic_error);  // both modes at once

  JobOptions no_seed;
  no_seed.roots = {1};  // FloodProgram has no seed_message
  Engine<FloodProgram> e2(g, {}, small_cluster(4), parts);
  EXPECT_THROW(e2.run(no_seed), std::logic_error);

  JobOptions bad_root;
  bad_root.start_all_vertices = false;
  bad_root.roots = {99};
  Engine<FloodProgram> e3(g, {}, small_cluster(4), parts);
  EXPECT_THROW(e3.run(bad_root), std::logic_error);
}

TEST(Engine, FloodRunsExactSuperstepsAndMessages) {
  Graph g = ring_graph(12);
  const auto parts = HashPartitioner{}.partition(g, 4);
  Engine<FloodProgram> e(g, {3}, small_cluster(4), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = e.run(opts);

  // Supersteps 0..3 compute; messages sent in 0..2 arrive in 1..3.
  ASSERT_EQ(r.metrics.supersteps.size(), 4u);
  for (const auto& v : r.values) {
    EXPECT_EQ(v.computes, 4u);
    EXPECT_EQ(v.received, 3u * 2u);  // 2 neighbors x 3 rounds
  }
  // Each of 12 vertices sends 2 messages in supersteps 0,1,2.
  EXPECT_EQ(r.metrics.supersteps[0].messages_sent_total(), 24u);
  EXPECT_EQ(r.metrics.supersteps[2].messages_sent_total(), 24u);
  EXPECT_EQ(r.metrics.supersteps[3].messages_sent_total(), 0u);
  EXPECT_EQ(r.metrics.total_messages(), 72u);
  EXPECT_FALSE(r.failed);
}

TEST(Engine, LocalVsRemoteFollowsPartitioning) {
  // Path graph with range partitioning: only the 3 partition-boundary edges
  // carry remote traffic.
  Graph g = path_graph(16);
  const auto parts = RangePartitioner{}.partition(g, 4);
  Engine<FloodProgram> e(g, {1}, small_cluster(4), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = e.run(opts);
  // Superstep 0: every arc sends once = 30 messages; 3 cut edges x 2 arcs
  // are remote.
  EXPECT_EQ(r.metrics.supersteps[0].messages_sent_total(), 30u);
  EXPECT_EQ(r.metrics.supersteps[0].messages_sent_remote(), 6u);
}

TEST(Engine, CostAndTimeAccounting) {
  Graph g = ring_graph(16);
  const auto parts = HashPartitioner{}.partition(g, 4);
  Engine<FloodProgram> e(g, {2}, small_cluster(4), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = e.run(opts);
  EXPECT_GT(r.metrics.total_time, 0.0);
  EXPECT_GT(r.metrics.setup_time, 0.0);
  EXPECT_GT(r.metrics.cost_usd, 0.0);
  EXPECT_GT(r.metrics.vm_seconds, 0.0);
  // Span >= busy time of the slowest worker + barrier overhead.
  for (const auto& sm : r.metrics.supersteps) {
    Seconds max_busy = 0;
    for (const auto& w : sm.workers) max_busy = std::max(max_busy, w.busy_time());
    EXPECT_GE(sm.span + 1e-12, max_busy + sm.barrier_overhead);
    for (const auto& w : sm.workers) EXPECT_GE(w.barrier_wait, -1e-12);
  }
}

TEST(Engine, DeterministicAcrossRuns) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);
  JobOptions opts;
  opts.start_all_vertices = true;
  Engine<FloodProgram> e1(g, {3}, small_cluster(4), parts);
  Engine<FloodProgram> e2(g, {3}, small_cluster(4), parts);
  const auto r1 = e1.run(opts);
  const auto r2 = e2.run(opts);
  ASSERT_EQ(r1.metrics.supersteps.size(), r2.metrics.supersteps.size());
  EXPECT_DOUBLE_EQ(r1.metrics.total_time, r2.metrics.total_time);
  EXPECT_EQ(r1.metrics.total_messages(), r2.metrics.total_messages());
}

// Aggregate/global round trip: vertices sum their degrees; the master
// doubles the sum and broadcasts; vertices verify next superstep.
struct AggregateProgram {
  struct VertexValue {
    double seen_global = -1.0;
  };
  using MessageValue = std::uint8_t;
  static constexpr std::uint64_t kKey = make_key(7, 1);

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue>) const {
    if (ctx.superstep() == 0) {
      ctx.aggregate(kKey, ctx.out_degree());
      ctx.remain_active();
    } else {
      v.seen_global = ctx.global(kKey, -2.0);
    }
  }

  template <class MCtx>
  void master_compute(MCtx& master) const {
    master.globals().set(kKey, 2.0 * master.aggregates().get(kKey));
  }
};

TEST(Engine, AggregatesReachMasterAndGlobalsReachVertices) {
  Graph g = ring_graph(10);  // total degree 20
  const auto parts = HashPartitioner{}.partition(g, 2);
  Engine<AggregateProgram> e(g, {}, small_cluster(2), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = e.run(opts);
  for (const auto& v : r.values) EXPECT_DOUBLE_EQ(v.seen_global, 40.0);
}

// Wake mechanics: vertex 0 wakes itself 3 supersteps ahead.
struct WakeProgram {
  struct VertexValue {
    std::vector<std::uint64_t> wake_steps;
  };
  using MessageValue = std::uint8_t;

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue>) const {
    v.wake_steps.push_back(ctx.superstep());
    if (ctx.superstep() == 0 && ctx.vertex_id() == 0) ctx.wake_at(3);
  }
};

TEST(Engine, WakeAtActivatesAtExactSuperstep) {
  Graph g = path_graph(4);
  const auto parts = RangePartitioner{}.partition(g, 2);
  Engine<WakeProgram> e(g, {}, small_cluster(2), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = e.run(opts);
  EXPECT_EQ(r.values[0].wake_steps, (std::vector<std::uint64_t>{0, 3}));
  EXPECT_EQ(r.values[1].wake_steps, (std::vector<std::uint64_t>{0}));
  EXPECT_EQ(r.metrics.supersteps.size(), 4u);  // 0 then idle-free jump to 3
}

struct BadWakeProgram {
  struct VertexValue {};
  using MessageValue = std::uint8_t;
  template <class Ctx>
  void compute(Ctx& ctx, VertexValue&, std::span<const MessageValue>) const {
    ctx.wake_at(ctx.superstep());  // not in the future
  }
};

TEST(Engine, WakeAtRejectsPastSuperstep) {
  using BadWake = BadWakeProgram;
  Graph g = path_graph(2);
  const auto parts = RangePartitioner{}.partition(g, 1);
  ClusterConfig c = small_cluster(1);
  Engine<BadWake> e(g, {}, c, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  EXPECT_THROW(e.run(opts), std::logic_error);
}

struct ForeverProgram {
  struct VertexValue {};
  using MessageValue = std::uint8_t;
  template <class Ctx>
  void compute(Ctx& ctx, VertexValue&, std::span<const MessageValue>) const {
    ctx.remain_active();
  }
};

TEST(Engine, MaxSuperstepsBoundsRunaway) {
  using Forever = ForeverProgram;
  Graph g = path_graph(2);
  const auto parts = RangePartitioner{}.partition(g, 1);
  Engine<Forever> e(g, {}, small_cluster(1), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  opts.max_supersteps = 10;
  const auto r = e.run(opts);
  EXPECT_EQ(r.metrics.supersteps.size(), 10u);
}

// Memory fault: a program that buffers an enormous modeled state.
struct HogProgram {
  struct VertexValue {};
  using MessageValue = std::uint8_t;
  template <class Ctx>
  void compute(Ctx& ctx, VertexValue&, std::span<const MessageValue>) const {
    if (ctx.superstep() == 0) {
      ctx.charge_state_bytes(static_cast<std::int64_t>(100) << 30);  // 100 GiB
      ctx.remain_active();
    }
  }
};

TEST(Engine, VmRestartThrowsJobFailure) {
  Graph g = path_graph(4);
  const auto parts = RangePartitioner{}.partition(g, 2);
  Engine<HogProgram> e(g, {}, small_cluster(2), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  EXPECT_THROW(e.run(opts), JobFailure);
}

TEST(Engine, VmRestartRecordedWhenNotFatal) {
  Graph g = path_graph(4);
  const auto parts = RangePartitioner{}.partition(g, 2);
  Engine<HogProgram> e(g, {}, small_cluster(2), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  opts.fail_on_vm_restart = false;
  const auto r = e.run(opts);
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.failure_reason.find("restarted"), std::string::npos);
}

struct MildHogProgram {
  struct VertexValue {};
  using MessageValue = std::uint8_t;
  template <class Ctx>
  void compute(Ctx& ctx, VertexValue&, std::span<const MessageValue>) const {
    if (ctx.superstep() == 0) {
      // ~8 GiB on a 7 GiB VM: thrash but below the 1.5x restart threshold.
      if (ctx.vertex_id() == 0) ctx.charge_state_bytes(std::int64_t{8} << 30);
      ctx.send_to_all_neighbors(1);
      ctx.remain_active();
    }
  }
};

TEST(Engine, ThrashPenaltySlowsOverloadedWorker) {
  using MildHog = MildHogProgram;
  Graph g = path_graph(4);
  const auto parts = RangePartitioner{}.partition(g, 2);
  Engine<MildHog> hog(g, {}, small_cluster(2), parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = hog.run(opts);
  ASSERT_FALSE(r.failed);
  const auto& workers = r.metrics.supersteps[0].workers;
  // Partition 0 (vertices 0,1) lives on worker 0 and thrashes: 8 GiB on a
  // 7 GiB VM -> penalty 1 + slope*(8/7 - 1); both workers otherwise do
  // identical work.
  const double expected = 1.0 + cloud::CostParams{}.vm_thrash_slope * (8.0 / 7.0 - 1.0);
  EXPECT_NEAR(workers[0].compute_time / workers[1].compute_time, expected, 0.05);
}

// Policy that forces a given worker count from the first barrier onward.
class ForceWorkers final : public cloud::ScalingPolicy {
 public:
  explicit ForceWorkers(std::uint32_t w) : w_(w) {}
  std::uint32_t decide(const cloud::ScalingSignals&) override { return w_; }
  std::string name() const override { return "force"; }

 private:
  std::uint32_t w_;
};

TEST(Engine, ElasticScalingChangesWorkerCount) {
  Graph g = ring_graph(32);
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig c = small_cluster(8);
  c.initial_workers = 8;
  c.scaling = std::make_shared<ForceWorkers>(4);
  Engine<FloodProgram> e(g, {4}, c, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  const auto r = e.run(opts);
  ASSERT_GE(r.metrics.supersteps.size(), 3u);
  EXPECT_EQ(r.metrics.supersteps[0].active_workers, 8u);  // initial
  EXPECT_EQ(r.metrics.supersteps[1].active_workers, 4u);  // scaled in
  EXPECT_EQ(r.metrics.supersteps[1].workers.size(), 4u);
}

TEST(Engine, ScaleEventCostChargedOnce) {
  Graph g = ring_graph(16);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig with_cost = small_cluster(4);
  with_cost.scaling = std::make_shared<ForceWorkers>(2);
  with_cost.scale_event_cost = 100.0;
  ClusterConfig without = with_cost;
  without.scale_event_cost = 0.0;
  JobOptions opts;
  opts.start_all_vertices = true;
  Engine<FloodProgram> e1(g, {4}, with_cost, parts);
  Engine<FloodProgram> e2(g, {4}, without, parts);
  const auto r1 = e1.run(opts);
  const auto r2 = e2.run(opts);
  // One scale event 8->... 4->2 at first barrier only (policy constant after).
  EXPECT_NEAR(r1.metrics.total_time - r2.metrics.total_time, 100.0, 1e-6);
}

TEST(Engine, TenancyNoiseSlowsButStaysDeterministic) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig noisy = small_cluster(4);
  noisy.tenancy_sigma = 0.3;
  JobOptions opts;
  opts.start_all_vertices = true;
  Engine<FloodProgram> quiet_e(g, {3}, small_cluster(4), parts);
  Engine<FloodProgram> noisy_e1(g, {3}, noisy, parts);
  Engine<FloodProgram> noisy_e2(g, {3}, noisy, parts);
  const auto rq = quiet_e.run(opts);
  const auto rn1 = noisy_e1.run(opts);
  const auto rn2 = noisy_e2.run(opts);
  EXPECT_GT(rn1.metrics.total_time, rq.metrics.total_time);
  EXPECT_DOUBLE_EQ(rn1.metrics.total_time, rn2.metrics.total_time);
}

}  // namespace
}  // namespace pregel
