// The engine's host-parallelism contract: JobOptions::parallelism changes
// only wall-clock, never results. Every run here is compared bit-for-bit —
// vertex values, modeled total time, and the full per-superstep / per-worker
// metric records — across thread counts, including the serial fast path.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/bc.hpp"
#include "algos/components.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using algos::ComponentsProgram;
using algos::PageRankProgram;
using algos::SsspProgram;

// Exact equality of the full metric record. Doubles are compared with ==
// deliberately: the contract is bit-identical replay of the serial
// floating-point evaluation order, not approximate agreement.
void expect_identical_metrics(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.setup_time, b.setup_time);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  for (std::size_t s = 0; s < a.supersteps.size(); ++s) {
    const SuperstepMetrics& x = a.supersteps[s];
    const SuperstepMetrics& y = b.supersteps[s];
    EXPECT_EQ(x.superstep, y.superstep);
    EXPECT_EQ(x.active_vertices, y.active_vertices) << "superstep " << s;
    EXPECT_EQ(x.active_roots, y.active_roots) << "superstep " << s;
    EXPECT_EQ(x.span, y.span) << "superstep " << s;
    EXPECT_EQ(x.barrier_overhead, y.barrier_overhead) << "superstep " << s;
    ASSERT_EQ(x.workers.size(), y.workers.size()) << "superstep " << s;
    for (std::size_t w = 0; w < x.workers.size(); ++w) {
      const WorkerStepMetrics& u = x.workers[w];
      const WorkerStepMetrics& v = y.workers[w];
      EXPECT_EQ(u.vertices_computed, v.vertices_computed) << s << "/" << w;
      EXPECT_EQ(u.messages_processed, v.messages_processed) << s << "/" << w;
      EXPECT_EQ(u.messages_sent_local, v.messages_sent_local) << s << "/" << w;
      EXPECT_EQ(u.messages_sent_remote, v.messages_sent_remote) << s << "/" << w;
      EXPECT_EQ(u.bytes_sent_remote, v.bytes_sent_remote) << s << "/" << w;
      EXPECT_EQ(u.bytes_received_remote, v.bytes_received_remote) << s << "/" << w;
      EXPECT_EQ(u.memory_peak, v.memory_peak) << s << "/" << w;
      EXPECT_EQ(u.compute_time, v.compute_time) << s << "/" << w;
      EXPECT_EQ(u.network_time, v.network_time) << s << "/" << w;
    }
  }
}

ClusterConfig eight_partitions_four_vms() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 4;  // two partitions per VM: local AND remote traffic
  return c;
}

// Thread counts to sweep: serial, two lanes, and whatever the host offers
// (deduplicated; on a single-core builder "hardware" is the serial path and
// the explicit 2/4 still drive the staged-merge machinery).
std::vector<std::uint32_t> lane_sweep() {
  std::vector<std::uint32_t> lanes{1, 2, 4};
  const unsigned hw = ThreadPool::hardware_threads();
  if (hw > 1 && hw != 2 && hw != 4) lanes.push_back(hw);
  return lanes;
}

TEST(ParallelDeterminism, PageRankBitIdenticalAcrossLaneCounts) {
  const Graph g = barabasi_albert(600, 3, 41);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = 1;
  Engine<PageRankProgram> serial(g, {20, 0.85}, c, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<PageRankProgram> e(g, {20, 0.85}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed) << lanes << " lanes";
    ASSERT_EQ(r.values.size(), base.values.size());
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].rank, base.values[v].rank) << "vertex " << v << ", "
                                                       << lanes << " lanes";
    expect_identical_metrics(r.metrics, base.metrics);
  }
}

// PageRank's dangling-mass aggregate sums doubles every superstep — the
// staged per-partition log replay must reproduce serial summation order.
TEST(ParallelDeterminism, PageRankAggregatePathWithCombiner) {
  // Star-heavy graph: dangling vertices guarantee aggregate traffic.
  const Graph g = erdos_renyi(400, 900, 47);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.use_combiner = true;
  o.parallelism = 1;
  Engine<PageRankProgram> serial(g, {15, 0.85}, c, parts);
  const auto base = serial.run(o);

  o.parallelism = 4;
  Engine<PageRankProgram> par(g, {15, 0.85}, c, parts);
  const auto r = par.run(o);
  for (std::size_t v = 0; v < r.values.size(); ++v)
    EXPECT_EQ(r.values[v].rank, base.values[v].rank);
  expect_identical_metrics(r.metrics, base.metrics);
}

TEST(ParallelDeterminism, ComponentsBitIdenticalWithAndWithoutCombiner) {
  const Graph g = watts_strogatz(500, 6, 0.2, 43);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  for (bool combine : {false, true}) {
    JobOptions o;
    o.start_all_vertices = true;
    o.use_combiner = combine;
    o.parallelism = 1;
    Engine<ComponentsProgram> serial(g, {}, c, parts);
    const auto base = serial.run(o);

    for (std::uint32_t lanes : lane_sweep()) {
      o.parallelism = lanes;
      Engine<ComponentsProgram> e(g, {}, c, parts);
      const auto r = e.run(o);
      for (std::size_t v = 0; v < r.values.size(); ++v)
        EXPECT_EQ(r.values[v].label, base.values[v].label)
            << "vertex " << v << ", " << lanes << " lanes, combiner " << combine;
      expect_identical_metrics(r.metrics, base.metrics);
    }
  }
}

// BC drives every staged path at once: seeds, swath scheduling, wake_at,
// aggregates, master-side root completion, and double-valued scores.
TEST(ParallelDeterminism, BcSwathedBitIdenticalAcrossLaneCounts) {
  const Graph g = barabasi_albert(300, 3, 59);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  std::vector<VertexId> roots;
  for (VertexId r = 0; r < 24; ++r) roots.push_back(r * 7 % 300);

  JobOptions o;
  o.roots = roots;
  o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(6),
                              std::make_shared<StaticNInitiation>(3), 0);
  o.parallelism = 1;
  Engine<BcProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);
  EXPECT_EQ(base.roots_completed, roots.size());

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<BcProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    EXPECT_EQ(r.roots_completed, base.roots_completed);
    EXPECT_EQ(r.swaths_initiated, base.swaths_initiated);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].bc_score, base.values[v].bc_score)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_identical_metrics(r.metrics, base.metrics);
  }
}

// parallelism = 0 resolves to the host's lane count; whatever that is, the
// results must match an explicit serial run.
TEST(ParallelDeterminism, DefaultParallelismMatchesSerial) {
  const Graph g = grid_graph(20, 25);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = 1;
  Engine<ComponentsProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);

  o.parallelism = 0;
  Engine<ComponentsProgram> def(g, {}, c, parts);
  const auto r = def.run(o);
  for (std::size_t v = 0; v < r.values.size(); ++v)
    EXPECT_EQ(r.values[v].label, base.values[v].label);
  expect_identical_metrics(r.metrics, base.metrics);
}

// Combiner equivalence: combining is a transport optimization, so final
// vertex values match the uncombined run exactly (min/sum merges are
// order-insensitive for these programs) while message counts shrink.
TEST(CombinerEquivalence, SsspValuesUnchangedMessagesReduced) {
  const Graph g = barabasi_albert(500, 4, 61);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  const auto plain = algos::run_sssp(g, c, parts, /*source=*/0, /*use_combiner=*/false);
  const auto combined = algos::run_sssp(g, c, parts, /*source=*/0, /*use_combiner=*/true);
  ASSERT_EQ(plain.values.size(), combined.values.size());
  for (std::size_t v = 0; v < plain.values.size(); ++v)
    EXPECT_EQ(plain.values[v].distance, combined.values[v].distance) << "vertex " << v;
  EXPECT_LT(combined.metrics.total_messages(), plain.metrics.total_messages());
}

TEST(CombinerEquivalence, ParallelCombinedMatchesSerialCombined) {
  const Graph g = barabasi_albert(500, 4, 61);
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.roots = {0};
  o.use_combiner = true;
  o.parallelism = 1;
  Engine<SsspProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<SsspProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].distance, base.values[v].distance)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_identical_metrics(r.metrics, base.metrics);
  }
}

}  // namespace
}  // namespace pregel
