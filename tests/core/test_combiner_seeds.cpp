// Regression coverage for the combiner/seed inbox desync: inject_seed used
// to append a seed message to a vertex's next inbox without the matching
// source-VM entry, leaving the two arrays the combiner scan walks in
// lockstep desynced (srcs[i] indexed past its end). These tests run every
// root-seeded algorithm with the combiner enabled — the configuration that
// materializes the desync — and pin the results against combiner-off runs;
// debug builds additionally assert the lockstep invariant at every combiner
// scan and inbox drain.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::ApspProgram;
using algos::BcProgram;
using algos::SsspProgram;

ClusterConfig small_cluster() {
  ClusterConfig c;
  c.num_partitions = 6;
  c.initial_workers = 3;
  return c;
}

TEST(CombinerSeeds, SsspFromSeededRootWithCombiner) {
  const Graph g = watts_strogatz(400, 6, 0.15, 71);
  const ClusterConfig c = small_cluster();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  for (VertexId source : {VertexId{0}, VertexId{137}, VertexId{399}}) {
    const auto plain = algos::run_sssp(g, c, parts, source, /*use_combiner=*/false);
    const auto combined = algos::run_sssp(g, c, parts, source, /*use_combiner=*/true);
    ASSERT_FALSE(combined.failed);
    EXPECT_EQ(combined.values[source].distance, 0u);
    for (std::size_t v = 0; v < plain.values.size(); ++v)
      EXPECT_EQ(plain.values[v].distance, combined.values[v].distance)
          << "source " << source << " vertex " << v;
  }
}

// Multi-swath APSP injects fresh seeds at barriers throughout the run — the
// sustained version of the desync scenario: every swath appends seed
// messages to inboxes the combiner scan will walk.
TEST(CombinerSeeds, ApspMultiSwathWithCombiner) {
  const Graph g = barabasi_albert(250, 3, 73);
  const ClusterConfig c = small_cluster();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  std::vector<VertexId> roots;
  for (VertexId r = 0; r < 32; ++r) roots.push_back(r * 5 % 250);
  const SwathPolicy swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(8),
                                              std::make_shared<StaticNInitiation>(2), 0);

  Engine<ApspProgram> plain_engine(g, {}, c, parts);
  JobOptions o;
  o.roots = roots;
  o.swath = swath;
  o.use_combiner = false;
  const auto plain = plain_engine.run(o);

  Engine<ApspProgram> combined_engine(g, {}, c, parts);
  o.use_combiner = true;
  const auto combined = combined_engine.run(o);

  ASSERT_FALSE(combined.failed);
  EXPECT_EQ(combined.roots_completed, roots.size());
  EXPECT_EQ(combined.roots_completed, plain.roots_completed);
  ASSERT_EQ(plain.values.size(), combined.values.size());
  for (std::size_t v = 0; v < plain.values.size(); ++v)
    for (VertexId root : roots)
      EXPECT_EQ(plain.values[v].distance_from(root), combined.values[v].distance_from(root))
          << "vertex " << v << " root " << root;
}

// BC defines no combiner, so use_combiner must be inert for it — but the
// engine still routes seeds through the combiner-aware bookkeeping when the
// flag is set, which is exactly the code path the desync lived on.
TEST(CombinerSeeds, BcRootsWithCombinerFlagInert) {
  const Graph g = barabasi_albert(200, 3, 79);
  const ClusterConfig c = small_cluster();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  std::vector<VertexId> roots{0, 11, 57, 123, 199};
  const SwathPolicy swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(2),
                                              std::make_shared<StaticNInitiation>(4), 0);

  JobOptions o;
  o.roots = roots;
  o.swath = swath;
  o.use_combiner = false;
  Engine<BcProgram> plain_engine(g, {}, c, parts);
  const auto plain = plain_engine.run(o);

  o.use_combiner = true;
  Engine<BcProgram> flagged_engine(g, {}, c, parts);
  const auto flagged = flagged_engine.run(o);

  ASSERT_FALSE(flagged.failed);
  EXPECT_EQ(flagged.roots_completed, roots.size());
  for (std::size_t v = 0; v < plain.values.size(); ++v)
    EXPECT_EQ(plain.values[v].bc_score, flagged.values[v].bc_score) << "vertex " << v;
}

// Seeds must never combine with worker traffic: a seed carries the manager
// sentinel as its source, so a same-key message from any VM still buffers
// separately. SSSP's seed (distance 0) decides the root's value — if a
// worker message merged into it the root could report a nonzero distance.
TEST(CombinerSeeds, SeedNeverMergesWithWorkerMessages) {
  // Cycle: the root receives worker messages (distance n-1 candidates from
  // its neighbors going the long way) in the same supersteps its own seed
  // sits buffered.
  const VertexId n = 60;
  GraphBuilder b(n, /*undirected=*/true);
  for (VertexId v = 0; v < n; ++v) b.add_edge(v, (v + 1) % n);
  const Graph g = b.build();
  const ClusterConfig c = small_cluster();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  const auto r = algos::run_sssp(g, c, parts, /*source=*/0, /*use_combiner=*/true);
  EXPECT_EQ(r.values[0].distance, 0u);
  for (VertexId v = 0; v < n; ++v)
    EXPECT_EQ(r.values[v].distance, std::min(v, n - v)) << "vertex " << v;
}

}  // namespace
}  // namespace pregel
