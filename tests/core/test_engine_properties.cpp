// Engine conservation and consistency properties, checked across a grid of
// graphs, partitioners, and worker counts (TEST_P sweeps).
#include <gtest/gtest.h>

#include <numeric>
#include <tuple>

#include "algos/apsp.hpp"
#include "algos/pagerank.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"

namespace pregel {
namespace {

using algos::ApspProgram;
using algos::PageRankProgram;

Graph pick_graph(int which) {
  switch (which) {
    case 0: return barabasi_albert(600, 3, 41);
    case 1: return watts_strogatz(500, 6, 0.2, 43);
    case 2: return grid_graph(20, 25);
    default: return erdos_renyi(400, 1600, 47);
  }
}

class EngineGrid
    : public ::testing::TestWithParam<std::tuple<int, int, std::uint32_t>> {};

// Property: every message sent is processed exactly once — the sum of
// messages_processed over the job equals the sum of messages sent, and
// remote+local splits are consistent.
TEST_P(EngineGrid, MessageConservation) {
  const auto [gw, pw, workers] = GetParam();
  Graph g = pick_graph(gw);
  const auto parts = pw == 0 ? HashPartitioner{}.partition(g, workers)
                             : MultilevelPartitioner{}.partition(g, workers);
  ClusterConfig c;
  c.num_partitions = workers;
  c.initial_workers = workers;
  Engine<PageRankProgram> e(g, {8, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);

  std::uint64_t sent = 0, processed = 0;
  for (const auto& sm : r.metrics.supersteps) {
    for (const auto& wm : sm.workers) {
      sent += wm.messages_sent_total();
      processed += wm.messages_processed;
    }
  }
  EXPECT_EQ(sent, processed);
}

// Property: remote bytes sent across the cluster equal remote bytes received.
TEST_P(EngineGrid, RemoteByteSymmetry) {
  const auto [gw, pw, workers] = GetParam();
  Graph g = pick_graph(gw);
  const auto parts = pw == 0 ? HashPartitioner{}.partition(g, workers)
                             : MultilevelPartitioner{}.partition(g, workers);
  ClusterConfig c;
  c.num_partitions = workers;
  c.initial_workers = workers;
  Engine<PageRankProgram> e(g, {5, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  for (const auto& sm : r.metrics.supersteps) {
    Bytes sent = 0, received = 0;
    for (const auto& wm : sm.workers) {
      sent += wm.bytes_sent_remote;
      received += wm.bytes_received_remote;
    }
    EXPECT_EQ(sent, received) << "superstep " << sm.superstep;
  }
}

// Property: per-superstep remote fraction of PageRank traffic matches the
// partitioning's cut fraction exactly (every arc carries one message).
TEST_P(EngineGrid, RemoteFractionMatchesEdgeCut) {
  const auto [gw, pw, workers] = GetParam();
  Graph g = pick_graph(gw);
  const auto parts = pw == 0 ? HashPartitioner{}.partition(g, workers)
                             : MultilevelPartitioner{}.partition(g, workers);
  const auto q = evaluate_partition(g, parts);
  ClusterConfig c;
  c.num_partitions = workers;
  c.initial_workers = workers;
  Engine<PageRankProgram> e(g, {3, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  // Superstep 0: each vertex with degree > 0 sends along every arc.
  const auto& s0 = r.metrics.supersteps[0];
  EXPECT_EQ(s0.messages_sent_total(), g.num_arcs());
  EXPECT_EQ(s0.messages_sent_remote(), q.cut_arcs);
}

// Property: the control plane uses exactly (3 ops per worker per superstep
// for step tokens) + (2 per worker for barrier check-ins) + manager drains.
TEST_P(EngineGrid, ControlQueueOpsScaleWithSupersteps) {
  const auto [gw, pw, workers] = GetParam();
  Graph g = pick_graph(gw);
  const auto parts = pw == 0 ? HashPartitioner{}.partition(g, workers)
                             : MultilevelPartitioner{}.partition(g, workers);
  ClusterConfig c;
  c.num_partitions = workers;
  c.initial_workers = workers;
  Engine<PageRankProgram> e(g, {4, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  // Per superstep per worker: put+get+remove on "step" (3) and on
  // "barrier" (3) = 6 ops.
  const std::uint64_t expected =
      6ULL * workers * r.metrics.total_supersteps();
  EXPECT_EQ(r.metrics.control_queue_ops, expected);
}

INSTANTIATE_TEST_SUITE_P(Grid, EngineGrid,
                         ::testing::Combine(::testing::Range(0, 4),   // graph
                                            ::testing::Range(0, 2),   // partitioner
                                            ::testing::Values(2u, 4u, 8u)));

// Root algorithms: results independent of partitioner and worker count.
class ApspInvariance
    : public ::testing::TestWithParam<std::tuple<int, std::uint32_t>> {};

TEST_P(ApspInvariance, DistancesIndependentOfDeployment) {
  const auto [pw, workers] = GetParam();
  Graph g = watts_strogatz(300, 6, 0.15, 53);
  const auto parts = pw == 0 ? HashPartitioner{}.partition(g, workers)
                             : MultilevelPartitioner{}.partition(g, workers);
  ClusterConfig c;
  c.num_partitions = workers;
  c.initial_workers = workers;
  Engine<ApspProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = {0, 42, 123};
  const auto r = e.run(o);

  // Reference deployment: 2 hash partitions.
  const auto base_parts = HashPartitioner{}.partition(g, 2);
  ClusterConfig bc;
  bc.num_partitions = 2;
  bc.initial_workers = 2;
  Engine<ApspProgram> be(g, {}, bc, base_parts);
  const auto base = be.run(o);

  for (VertexId v = 0; v < g.num_vertices(); ++v)
    for (VertexId root : o.roots)
      ASSERT_EQ(r.values[v].distance_from(root), base.values[v].distance_from(root));
}

INSTANTIATE_TEST_SUITE_P(Grid, ApspInvariance,
                         ::testing::Combine(::testing::Range(0, 2),
                                            ::testing::Values(2u, 4u, 8u)));

}  // namespace
}  // namespace pregel
