// Observability must be observation-only: running a job with tracing enabled
// (spans + counters) must produce bit-identical vertex values and metric
// records to the same job untraced, at every host parallelism level. This is
// the guarantee that lets traces be captured in production runs without
// invalidating the determinism contract of the staged merge.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "runtime/trace.hpp"

namespace pregel {
namespace {

using algos::PageRankProgram;
using algos::SsspProgram;

// Bit-exact equality (double ==, deliberately): tracing must not perturb the
// replayed serial evaluation order, not merely stay "close".
void expect_identical(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.setup_time, b.setup_time);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  for (std::size_t s = 0; s < a.supersteps.size(); ++s) {
    const SuperstepMetrics& x = a.supersteps[s];
    const SuperstepMetrics& y = b.supersteps[s];
    EXPECT_EQ(x.active_vertices, y.active_vertices) << "superstep " << s;
    EXPECT_EQ(x.span, y.span) << "superstep " << s;
    EXPECT_EQ(x.barrier_overhead, y.barrier_overhead) << "superstep " << s;
    ASSERT_EQ(x.workers.size(), y.workers.size()) << "superstep " << s;
    for (std::size_t w = 0; w < x.workers.size(); ++w) {
      EXPECT_EQ(x.workers[w].messages_sent_local, y.workers[w].messages_sent_local)
          << s << "/" << w;
      EXPECT_EQ(x.workers[w].messages_sent_remote, y.workers[w].messages_sent_remote)
          << s << "/" << w;
      EXPECT_EQ(x.workers[w].bytes_sent_remote, y.workers[w].bytes_sent_remote)
          << s << "/" << w;
      EXPECT_EQ(x.workers[w].memory_peak, y.workers[w].memory_peak) << s << "/" << w;
      EXPECT_EQ(x.workers[w].compute_time, y.workers[w].compute_time) << s << "/" << w;
    }
  }
}

void trace_all_on() {
  trace::TraceConfig cfg;
  cfg.spans = true;
  cfg.counters = true;
  cfg.process_name = "test_trace_determinism";
  trace::Tracer::instance().configure(cfg);
}

void trace_off() { trace::Tracer::instance().configure(trace::TraceConfig{}); }

ClusterConfig eight_partitions_four_vms() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 4;
  return c;
}

template <typename Program>
JobResult<Program> run_job(const Graph& g, const Program& program, JobOptions o,
                           std::uint32_t parallelism) {
  const ClusterConfig c = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);
  Engine<Program> e(g, program, c, parts);
  o.parallelism = parallelism;
  return e.run(o);
}

template <typename Program, typename ValueEq>
void expect_traced_equals_untraced(const Graph& g, const Program& program,
                                   const JobOptions& o, ValueEq value_eq) {
  for (const std::uint32_t lanes : {1u, 2u, 4u}) {
    trace_off();
    const auto plain = run_job(g, program, o, lanes);

    trace_all_on();
    const auto traced = run_job(g, program, o, lanes);
    EXPECT_GT(trace::Tracer::instance().event_count(), 0u) << "tracing was not live";
    trace_off();

    ASSERT_EQ(plain.values.size(), traced.values.size()) << "lanes " << lanes;
    for (std::size_t v = 0; v < plain.values.size(); ++v)
      EXPECT_TRUE(value_eq(plain.values[v], traced.values[v]))
          << "lanes " << lanes << " v" << v;
    expect_identical(plain.metrics, traced.metrics);
  }
}

TEST(TraceDeterminism, PageRankUnperturbedAcrossLaneCounts) {
  const Graph g = barabasi_albert(500, 3, 29);
  JobOptions o;
  o.start_all_vertices = true;
  expect_traced_equals_untraced(g, PageRankProgram{6, 0.85}, o,
                                [](const auto& a, const auto& b) { return a.rank == b.rank; });
}

TEST(TraceDeterminism, SsspUnperturbedAcrossLaneCounts) {
  const Graph g = barabasi_albert(400, 4, 31);
  JobOptions o;
  o.roots = {0};
  o.use_combiner = true;
  expect_traced_equals_untraced(g, SsspProgram{}, o,
                                [](const auto& a, const auto& b) {
                                  return a.distance == b.distance;
                                });
}

}  // namespace
}  // namespace pregel
