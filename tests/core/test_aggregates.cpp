#include "core/aggregates.hpp"

#include <gtest/gtest.h>

namespace pregel {
namespace {

TEST(MakeKey, PacksRootAndField) {
  EXPECT_EQ(make_key(0, 0), 0u);
  EXPECT_EQ(make_key(0, 1), 1u);
  EXPECT_EQ(make_key(1, 0), 256u);
  EXPECT_NE(make_key(5, 1), make_key(5, 2));
  EXPECT_NE(make_key(5, 1), make_key(6, 1));
  // Field is masked to 8 bits; distinct roots never collide.
  EXPECT_EQ(make_key(3, 0x105), make_key(3, 0x05));
}

TEST(Aggregates, SumsByKey) {
  Aggregates a;
  a.add(7, 1.5);
  a.add(7, 2.5);
  a.add(9, 1.0);
  EXPECT_DOUBLE_EQ(a.get(7), 4.0);
  EXPECT_DOUBLE_EQ(a.get(9), 1.0);
  EXPECT_DOUBLE_EQ(a.get(42), 0.0);
  EXPECT_TRUE(a.contains(7));
  EXPECT_FALSE(a.contains(42));
  EXPECT_EQ(a.size(), 2u);
}

TEST(Aggregates, ZeroContributionCreatesKey) {
  Aggregates a;
  a.add(3, 0.0);
  EXPECT_TRUE(a.contains(3));
  EXPECT_DOUBLE_EQ(a.get(3), 0.0);
}

TEST(Aggregates, ClearAndMerge) {
  Aggregates a, b;
  a.add(1, 2.0);
  b.add(1, 3.0);
  b.add(2, 5.0);
  a.merge(b);
  EXPECT_DOUBLE_EQ(a.get(1), 5.0);
  EXPECT_DOUBLE_EQ(a.get(2), 5.0);
  a.clear();
  EXPECT_EQ(a.size(), 0u);
  EXPECT_FALSE(a.contains(1));
}

TEST(Globals, SetGetEraseFallback) {
  Globals g;
  EXPECT_DOUBLE_EQ(g.get(1, -7.0), -7.0);
  g.set(1, 3.0);
  EXPECT_DOUBLE_EQ(g.get(1, -7.0), 3.0);
  EXPECT_TRUE(g.contains(1));
  g.set(1, 4.0);  // overwrite, not accumulate
  EXPECT_DOUBLE_EQ(g.get(1), 4.0);
  g.erase(1);
  EXPECT_FALSE(g.contains(1));
  EXPECT_EQ(g.size(), 0u);
}

}  // namespace
}  // namespace pregel
