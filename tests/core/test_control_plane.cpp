// Control-plane fallibility: job-manager failover, the at-least-once barrier
// protocol, and correlated (availability-zone) failure domains. The invariant
// throughout: control-plane faults change modeled time and cost, never the
// answers.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "algos/pagerank.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::PageRankProgram;

ClusterConfig base_cluster() {
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  return c;
}

auto run_pagerank(const Graph& g, const Partitioning& parts,
                  const ClusterConfig& c, int iters = 20) {
  Engine<PageRankProgram> e(g, {iters, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  return e.run(o);
}

double total_barrier_overhead(const JobMetrics& m) {
  double t = 0.0;
  for (const auto& sm : m.supersteps) t += sm.barrier_overhead;
  return t;
}

TEST(ControlPlane, ManagerFailoverIsBitIdenticalAndChargedToBarrier) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);

  const auto clean = run_pagerank(g, parts, base_cluster());

  ClusterConfig fallible = base_cluster();
  fallible.faults.manager_preemption_rate = 0.15;
  const auto survived = run_pagerank(g, parts, fallible);

  ASSERT_FALSE(survived.failed);
  EXPECT_GE(survived.metrics.manager_failovers, 1u);
  EXPECT_GT(survived.metrics.manager_failover_time, 0.0);
  EXPECT_EQ(survived.metrics.worker_failures, 0u);  // workers never died
  // Lease detection + takeover + manifest reload is charged to the barrier
  // at which the primary died, and flows through to makespan and cost.
  EXPECT_GT(total_barrier_overhead(survived.metrics),
            total_barrier_overhead(clean.metrics));
  EXPECT_GT(survived.metrics.total_time, clean.metrics.total_time);
  EXPECT_GT(survived.metrics.cost_usd, clean.metrics.cost_usd);
  // The standby resumed from the manifest: same supersteps, same answers.
  EXPECT_EQ(survived.metrics.total_supersteps(), clean.metrics.total_supersteps());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(survived.values[v].rank, clean.values[v].rank) << v;
}

TEST(ControlPlane, ManagerFailoverRestoresAggregatorsMidSwath) {
  // Aggregator state (PageRank's convergence residual rides the aggregator
  // plane) must round-trip through the persisted manifest bit-exactly even
  // when the failover lands mid-job — a stale manifest would change which
  // superstep the job converges at.
  Graph g = watts_strogatz(200, 4, 0.2, 11);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto clean = run_pagerank(g, parts, base_cluster(), 30);

  ClusterConfig fallible = base_cluster();
  fallible.faults.manager_preemption_rate = 0.25;
  fallible.faults.manager_seed = 0x51ee9;
  const auto survived = run_pagerank(g, parts, fallible, 30);

  ASSERT_FALSE(survived.failed);
  EXPECT_GE(survived.metrics.manager_failovers, 2u);
  EXPECT_EQ(survived.metrics.total_supersteps(), clean.metrics.total_supersteps());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(survived.values[v].rank, clean.values[v].rank) << v;
}

TEST(ControlPlane, DuplicateBarrierDeliveriesAreDedupedBitIdentically) {
  Graph g = barabasi_albert(250, 3, 13);
  const auto parts = HashPartitioner{}.partition(g, 4);

  const auto clean = run_pagerank(g, parts, base_cluster());

  ClusterConfig lossy = base_cluster();
  lossy.faults.queue_duplicate_rate = 0.3;  // lost remove() -> redelivery
  const auto deduped = run_pagerank(g, parts, lossy);

  ASSERT_FALSE(deduped.failed);
  EXPECT_GE(deduped.metrics.barrier_duplicates, 1u);
  // Every redelivered check-in costs a real queue read before the dedupe.
  EXPECT_GT(deduped.metrics.control_queue_ops, clean.metrics.control_queue_ops);
  EXPECT_GT(deduped.metrics.total_time, clean.metrics.total_time);
  EXPECT_EQ(deduped.metrics.worker_failures, 0u);
  EXPECT_EQ(deduped.metrics.barrier_detection_timeouts, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(deduped.values[v].rank, clean.values[v].rank) << v;
}

TEST(ControlPlane, ZoneOutageConfinedRecoveryReproducesExactPageRank) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto clean = run_pagerank(g, parts, base_cluster(), 25);

  ClusterConfig zoned = base_cluster();
  zoned.availability_zones = 2;  // VMs {0,2} in zone 0, {1,3} in zone 1
  zoned.checkpoint_interval = 4;
  zoned.recovery_mode = RecoveryMode::kConfined;
  zoned.faults.zone_outage_rate = 0.05;
  const auto recovered = run_pagerank(g, parts, zoned, 25);

  ASSERT_FALSE(recovered.failed);
  EXPECT_GE(recovered.metrics.zone_outages, 1u);
  // A zone outage kills every VM in the domain at once.
  EXPECT_GE(recovered.metrics.worker_failures, 2u);
  EXPECT_EQ(recovered.metrics.worker_failures % 2, 0u);
  EXPECT_GT(recovered.metrics.recovery_time, 0.0);
  EXPECT_GT(recovered.metrics.confined_replay_time, 0.0);
  // Cross-zone replicas made the lost checkpoints readable.
  EXPECT_GT(recovered.metrics.checkpoint_replicas_written, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(recovered.values[v].rank, clean.values[v].rank) << v;
}

TEST(ControlPlane, ZoneOutageFullRollbackAlsoRecovers) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto clean = run_pagerank(g, parts, base_cluster(), 25);

  ClusterConfig zoned = base_cluster();
  zoned.availability_zones = 2;
  zoned.checkpoint_interval = 4;
  zoned.faults.zone_outage_rate = 0.05;
  const auto recovered = run_pagerank(g, parts, zoned, 25);

  ASSERT_FALSE(recovered.failed);
  EXPECT_GE(recovered.metrics.zone_outages, 1u);
  EXPECT_GT(recovered.metrics.replayed_supersteps, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(recovered.values[v].rank, clean.values[v].rank) << v;
}

TEST(ControlPlane, ZoneOutageWithoutReplicasLosesJob) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.availability_zones = 2;
  c.checkpoint_interval = 2;
  c.replicate_checkpoints_across_zones = false;  // the checkpoints died with the zone
  c.faults.zone_outage_rate = 0.2;
  const auto r = run_pagerank(g, parts, c, 30);
  ASSERT_TRUE(r.failed);
  EXPECT_NE(r.failure_reason.find("no cross-zone replicas"), std::string::npos)
      << r.failure_reason;
  EXPECT_GE(r.metrics.zone_outages, 1u);
  EXPECT_EQ(r.metrics.checkpoint_replicas_written, 0u);
}

TEST(ControlPlane, CrossZoneReplicationCostsTimeNotAnswers) {
  Graph g = barabasi_albert(250, 3, 29);
  const auto parts = HashPartitioner{}.partition(g, 4);

  ClusterConfig single = base_cluster();
  single.checkpoint_interval = 4;
  const auto rs = run_pagerank(g, parts, single);

  ClusterConfig zoned = single;
  zoned.availability_zones = 3;  // replicas on, no outage stream
  const auto rz = run_pagerank(g, parts, zoned);

  ASSERT_FALSE(rz.failed);
  EXPECT_EQ(rz.metrics.checkpoints_written, rs.metrics.checkpoints_written);
  EXPECT_EQ(rz.metrics.checkpoint_replicas_written,
            rs.metrics.checkpoints_written * 4);  // one replica per worker
  EXPECT_GT(rz.metrics.checkpoint_time, rs.metrics.checkpoint_time);
  EXPECT_GT(rz.metrics.total_time, rs.metrics.total_time);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(rz.values[v].rank, rs.values[v].rank) << v;
}

TEST(ControlPlane, ZeroRateControlKnobsAreBitIdenticalToBaseline) {
  // Arming the control-plane fault machinery (zones declared, failover
  // latencies tuned, every new rate zero) must cost exactly nothing:
  // same times, same cost, same queue-op count, same values.
  Graph g = barabasi_albert(250, 3, 29);
  const auto parts = HashPartitioner{}.partition(g, 4);

  ClusterConfig baseline = base_cluster();
  baseline.checkpoint_interval = 4;
  const auto rb = run_pagerank(g, parts, baseline);

  ClusterConfig armed = baseline;
  armed.manager_lease_timeout = 99.0;   // consulted only on failover
  armed.manager_takeover_time = 42.0;
  armed.replicate_checkpoints_across_zones = true;  // moot with one zone
  armed.faults.manager_preemption_rate = 0.0;
  armed.faults.zone_outage_rate = 0.0;
  armed.faults.queue_duplicate_rate = 0.0;
  const auto ra = run_pagerank(g, parts, armed);

  EXPECT_DOUBLE_EQ(ra.metrics.total_time, rb.metrics.total_time);
  EXPECT_DOUBLE_EQ(ra.metrics.cost_usd, rb.metrics.cost_usd);
  EXPECT_DOUBLE_EQ(ra.metrics.checkpoint_time, rb.metrics.checkpoint_time);
  EXPECT_EQ(ra.metrics.control_queue_ops, rb.metrics.control_queue_ops);
  EXPECT_EQ(ra.metrics.manager_failovers, 0u);
  EXPECT_EQ(ra.metrics.barrier_duplicates, 0u);
  EXPECT_EQ(ra.metrics.barrier_fenced, 0u);
  EXPECT_EQ(ra.metrics.zone_outages, 0u);
  EXPECT_EQ(ra.metrics.checkpoint_replicas_written, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(ra.values[v].rank, rb.values[v].rank) << v;
}

TEST(ControlPlane, ManagerAndZoneFaultsComposeWithWorkerPreemptions) {
  // The full gauntlet: spot preemptions, a fallible manager, duplicated
  // barrier traffic, and a zone outage in one run — still bit-identical.
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto clean = run_pagerank(g, parts, base_cluster(), 25);

  ClusterConfig gauntlet = base_cluster();
  gauntlet.availability_zones = 2;
  gauntlet.checkpoint_interval = 3;
  gauntlet.recovery_mode = RecoveryMode::kConfined;
  gauntlet.faults.vm_preemption_rate = 0.01;
  gauntlet.faults.manager_preemption_rate = 0.08;
  gauntlet.faults.queue_duplicate_rate = 0.1;
  gauntlet.faults.zone_outage_rate = 0.02;
  const auto r = run_pagerank(g, parts, gauntlet, 25);

  ASSERT_FALSE(r.failed);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(r.values[v].rank, clean.values[v].rank) << v;
}

TEST(ControlPlane, ZoneSpreadPlacementKeepsResultsAndSpansZones) {
  // Overdecomposed partitions with the zone-aware placement policy: the
  // placement changes which VM hosts what (time/cost), never the answers.
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 8);

  ClusterConfig plain;
  plain.num_partitions = 8;
  plain.initial_workers = 4;
  const auto rp = run_pagerank(g, parts, plain);

  ClusterConfig zoned = plain;
  zoned.availability_zones = 2;
  zoned.placement = std::make_shared<cloud::ZoneSpreadPlacement>();
  const auto rz = run_pagerank(g, parts, zoned);

  ASSERT_FALSE(rz.failed);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(rz.values[v].rank, rp.values[v].rank) << v;
}

}  // namespace
}  // namespace pregel
