// Checkpoint/recovery fault tolerance — the Pregel feature the paper lists
// as a supportable extension. Tests cover: checkpoints being written and
// charged, exact-result recovery from scheduled and probabilistic failures,
// job loss without checkpoints, and swath-state consistency across rollback.
#include <gtest/gtest.h>

#include <algorithm>
#include <numeric>
#include <vector>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using algos::PageRankProgram;
using algos::SsspProgram;

ClusterConfig base_cluster() {
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  return c;
}

TEST(FaultTolerance, CheckpointsWrittenAtInterval) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 5;
  Engine<PageRankProgram> e(g, {20, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  // 21 supersteps -> checkpoints after supersteps 4, 9, 14, 19.
  EXPECT_EQ(r.metrics.checkpoints_written, 4u);
  EXPECT_GT(r.metrics.checkpoint_time, 0.0);
  EXPECT_EQ(r.metrics.worker_failures, 0u);
}

TEST(FaultTolerance, NoCheckpointingMeansNoOverhead) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  Engine<PageRankProgram> e(g, {20, 0.85}, base_cluster(), parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  EXPECT_EQ(r.metrics.checkpoints_written, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.checkpoint_time, 0.0);
}

TEST(FaultTolerance, FailureWithoutCheckpointLosesJob) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.scheduled_failures = {{3, 1}};
  Engine<PageRankProgram> e(g, {20, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.failure_reason.find("no checkpoint"), std::string::npos);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
}

TEST(FaultTolerance, RecoveryReproducesExactPageRank) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);

  ClusterConfig healthy = base_cluster();
  Engine<PageRankProgram> eh(g, {25, 0.85}, healthy, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto clean = eh.run(o);

  ClusterConfig faulty = base_cluster();
  faulty.checkpoint_interval = 4;
  faulty.scheduled_failures = {{7, 0}, {15, 2}};
  Engine<PageRankProgram> ef(g, {25, 0.85}, faulty, parts);
  const auto recovered = ef.run(o);

  ASSERT_FALSE(recovered.failed);
  EXPECT_EQ(recovered.metrics.worker_failures, 2u);
  EXPECT_GT(recovered.metrics.recovery_time, 0.0);
  EXPECT_GT(recovered.metrics.replayed_supersteps, 0u);
  EXPECT_GT(recovered.metrics.total_time, clean.metrics.total_time);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(recovered.values[v].rank, clean.values[v].rank) << v;
}

TEST(FaultTolerance, RecoveryReproducesSsspDistances) {
  Graph g = watts_strogatz(400, 6, 0.2, 9);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.scheduled_failures = {{3, 1}};
  Engine<SsspProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = {0};
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
  const auto ref = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].distance, ref[v]);
}

TEST(FaultTolerance, SwathStateSurvivesRollback) {
  // BC with swath scheduling: failures must not lose or duplicate roots.
  Graph g = watts_strogatz(200, 4, 0.2, 11);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots(12);
  std::iota(roots.begin(), roots.end(), VertexId{0});
  const auto ref = reference_betweenness(g, roots);

  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 3;
  c.scheduled_failures = {{5, 0}, {11, 3}, {17, 1}};
  Engine<BcProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = roots;
  o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                              std::make_shared<SequentialInitiation>(), 6_GiB);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 3u);
  EXPECT_EQ(r.roots_completed, roots.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6) << v;
}

TEST(FaultTolerance, ProbabilisticFailuresEventuallyFinish) {
  Graph g = ring_graph(128);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 3;
  c.failure_rate = 0.02;  // ~8% per superstep across 4 workers
  c.failure_seed = 17;
  Engine<PageRankProgram> e(g, {30, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  // With this seed at least one failure should strike across ~31 supersteps;
  // the run still completes with the right result shape.
  EXPECT_GE(r.metrics.worker_failures, 1u);
  double sum = 0;
  for (const auto& v : r.values) sum += v.rank;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FaultTolerance, ConfinedRecoveryReproducesExactPageRank) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);

  ClusterConfig healthy = base_cluster();
  Engine<PageRankProgram> eh(g, {25, 0.85}, healthy, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto clean = eh.run(o);

  ClusterConfig faulty = base_cluster();
  faulty.checkpoint_interval = 4;
  faulty.recovery_mode = RecoveryMode::kConfined;
  faulty.scheduled_failures = {{7, 0}, {15, 2}};
  Engine<PageRankProgram> ef(g, {25, 0.85}, faulty, parts);
  const auto recovered = ef.run(o);

  ASSERT_FALSE(recovered.failed);
  EXPECT_EQ(recovered.metrics.worker_failures, 2u);
  EXPECT_EQ(recovered.metrics.recovery_mode, "confined");
  EXPECT_GT(recovered.metrics.recovery_time, 0.0);
  EXPECT_GT(recovered.metrics.confined_replay_time, 0.0);
  EXPECT_GT(recovered.metrics.replayed_supersteps, 0u);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(recovered.values[v].rank, clean.values[v].rank) << v;
}

TEST(FaultTolerance, ConfinedRecoveryReproducesSwathScheduledBc) {
  Graph g = watts_strogatz(200, 4, 0.2, 11);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots(12);
  std::iota(roots.begin(), roots.end(), VertexId{0});
  const auto ref = reference_betweenness(g, roots);

  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 3;
  c.recovery_mode = RecoveryMode::kConfined;
  c.scheduled_failures = {{5, 0}, {11, 3}, {17, 1}};
  Engine<BcProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = roots;
  o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                              std::make_shared<SequentialInitiation>(), 6_GiB);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 3u);
  EXPECT_EQ(r.roots_completed, roots.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6) << v;
}

TEST(FaultTolerance, ConfinedRecoveryCheaperThanFullRollback) {
  Graph g = barabasi_albert(400, 3, 7);
  const auto parts = HashPartitioner{}.partition(g, 4);
  JobOptions o;
  o.start_all_vertices = true;

  // Identical failure schedule: superstep 9 failure with a checkpoint at 7,
  // so both modes replay supersteps 8 and 9.
  ClusterConfig full = base_cluster();
  full.checkpoint_interval = 4;
  full.scheduled_failures = {{9, 1}};
  ClusterConfig confined = full;
  confined.recovery_mode = RecoveryMode::kConfined;

  Engine<PageRankProgram> ef(g, {20, 0.85}, full, parts);
  Engine<PageRankProgram> ec(g, {20, 0.85}, confined, parts);
  const auto rf = ef.run(o);
  const auto rc = ec.run(o);
  ASSERT_FALSE(rf.failed);
  ASSERT_FALSE(rc.failed);
  EXPECT_EQ(rf.metrics.worker_failures, 1u);
  EXPECT_EQ(rc.metrics.worker_failures, 1u);
  EXPECT_EQ(rf.metrics.replayed_supersteps, rc.metrics.replayed_supersteps);
  // Confined: one checkpoint download instead of the cluster-wide biggest,
  // and replayed supersteps cost re-delivery instead of full recompute.
  EXPECT_LE(rc.metrics.recovery_time, rf.metrics.recovery_time);
  EXPECT_LT(rc.metrics.total_time, rf.metrics.total_time);
  EXPECT_GT(rc.metrics.confined_replay_time, 0.0);
  EXPECT_DOUBLE_EQ(rf.metrics.confined_replay_time, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(rc.values[v].rank, rf.values[v].rank) << v;
}

TEST(FaultTolerance, TransientFaultsMaskedWithIdenticalResults) {
  Graph g = barabasi_albert(250, 3, 13);
  const auto parts = HashPartitioner{}.partition(g, 4);
  JobOptions o;
  o.start_all_vertices = true;

  ClusterConfig clean_cfg = base_cluster();
  clean_cfg.checkpoint_interval = 5;
  Engine<PageRankProgram> eh(g, {20, 0.85}, clean_cfg, parts);
  const auto clean = eh.run(o);

  ClusterConfig lossy = clean_cfg;
  lossy.faults.queue_op_failure_rate = 0.05;
  lossy.faults.blob_read_failure_rate = 0.05;
  lossy.faults.blob_write_failure_rate = 0.05;
  Engine<PageRankProgram> el(g, {20, 0.85}, lossy, parts);
  const auto retried = el.run(o);

  ASSERT_FALSE(retried.failed);
  EXPECT_EQ(retried.metrics.worker_failures, 0u);
  EXPECT_GT(retried.metrics.faults_injected, 0u);
  EXPECT_EQ(retried.metrics.faults_masked, retried.metrics.faults_injected);
  EXPECT_GT(retried.metrics.retries_attempted, 0u);
  EXPECT_GT(retried.metrics.retry_latency, 0.0);
  // Masking is not free: the backoff latency lands in the job runtime...
  EXPECT_GT(retried.metrics.total_time, clean.metrics.total_time);
  // ...but never in the answers.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(retried.values[v].rank, clean.values[v].rank) << v;
}

TEST(FaultTolerance, ZeroFaultRatesAreBitIdenticalToBaseline) {
  // Acceptance gate: wiring fault injection and retries into the control
  // plane must cost exactly nothing when every rate is zero — same times,
  // same cost, same queue ops, same values.
  Graph g = barabasi_albert(250, 3, 29);
  const auto parts = HashPartitioner{}.partition(g, 4);
  JobOptions o;
  o.start_all_vertices = true;

  ClusterConfig baseline = base_cluster();
  baseline.checkpoint_interval = 4;
  Engine<PageRankProgram> eb(g, {20, 0.85}, baseline, parts);
  const auto rb = eb.run(o);

  ClusterConfig wired = baseline;
  wired.recovery_mode = RecoveryMode::kConfined;  // logging path armed, unused
  wired.retry.max_attempts = 9;                   // policy present, never consulted
  wired.retry.base_backoff = 0.7;
  wired.faults = cloud::FaultPlan{};              // all rates zero
  Engine<PageRankProgram> ew(g, {20, 0.85}, wired, parts);
  const auto rw = ew.run(o);

  EXPECT_DOUBLE_EQ(rw.metrics.total_time, rb.metrics.total_time);
  EXPECT_DOUBLE_EQ(rw.metrics.setup_time, rb.metrics.setup_time);
  EXPECT_DOUBLE_EQ(rw.metrics.checkpoint_time, rb.metrics.checkpoint_time);
  EXPECT_DOUBLE_EQ(rw.metrics.cost_usd, rb.metrics.cost_usd);
  EXPECT_EQ(rw.metrics.control_queue_ops, rb.metrics.control_queue_ops);
  EXPECT_EQ(rw.metrics.total_supersteps(), rb.metrics.total_supersteps());
  EXPECT_EQ(rw.metrics.faults_injected, 0u);
  EXPECT_EQ(rw.metrics.retries_attempted, 0u);
  EXPECT_DOUBLE_EQ(rw.metrics.retry_latency, 0.0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(rw.values[v].rank, rb.values[v].rank) << v;
}

TEST(FaultTolerance, SpotPreemptionRecovers) {
  Graph g = ring_graph(128);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 3;
  c.recovery_mode = RecoveryMode::kConfined;
  c.faults.vm_preemption_rate = 0.02;
  Engine<PageRankProgram> e(g, {30, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_GE(r.metrics.worker_failures, 1u);
  double sum = 0;
  for (const auto& v : r.values) sum += v.rank;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FaultTolerance, CheckpointWriteFailurePreservesPreviousCheckpoint) {
  Graph g = barabasi_albert(200, 3, 3);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.faults.blob_write_failure_rate = 0.35;
  c.retry.max_attempts = 1;  // no retries: many checkpoint rounds abort
  c.scheduled_failures = {{13, 2}};
  Engine<PageRankProgram> e(g, {20, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);  // an older checkpoint always exists to recover from
  EXPECT_GT(r.metrics.checkpoint_failures, 0u);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
  double sum = 0;
  for (const auto& v : r.values) sum += v.rank;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FaultTolerance, ExhaustedControlRetriesKillWorkerButJobSurvives) {
  Graph g = ring_graph(96);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.faults.queue_op_failure_rate = 0.25;
  c.retry.max_attempts = 2;  // 0.25^2 per op: exhaustion strikes quickly
  Engine<PageRankProgram> e(g, {25, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_GE(r.metrics.worker_failures, 1u);
  EXPECT_GT(r.metrics.faults_injected, r.metrics.faults_masked);
  double sum = 0;
  for (const auto& v : r.values) sum += v.rank;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FaultTolerance, StragglerTimeoutSpeculationBeatsWaiting) {
  Graph g = barabasi_albert(400, 3, 19);
  const auto parts = HashPartitioner{}.partition(g, 4);
  JobOptions o;
  o.start_all_vertices = true;

  ClusterConfig slow = base_cluster();
  slow.faults.straggler_rate = 0.15;
  slow.faults.straggler_slowdown = 12.0;
  ClusterConfig timed = slow;
  timed.straggler_timeout_factor = 2.0;

  Engine<PageRankProgram> es(g, {25, 0.85}, slow, parts);
  Engine<PageRankProgram> et(g, {25, 0.85}, timed, parts);
  const auto rs = es.run(o);
  const auto rt = et.run(o);
  ASSERT_FALSE(rs.failed);
  ASSERT_FALSE(rt.failed);
  EXPECT_EQ(rs.metrics.straggler_reexecutions, 0u);
  EXPECT_GT(rt.metrics.straggler_reexecutions, 0u);
  // Speculation is only taken when it beats waiting the straggler out.
  EXPECT_LT(rt.metrics.total_time, rs.metrics.total_time);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(rt.values[v].rank, rs.values[v].rank) << v;
}

// Even worker counts: the timeout threshold keys on the TRUE median (average
// of the two middle busy times), not the upper middle sample. The test
// self-calibrates: it measures busy times with the timeout disabled, then
// picks a factor that sits between the two definitions — above every
// superstep's worst/upper-median ratio (so an upper-median threshold never
// fires) yet below some superstep's worst/true-median ratio with room for
// the speculative re-execution to pay off. An engine using the upper median
// reports zero re-executions under this factor.
TEST(FaultTolerance, StragglerTimeoutUsesTrueMedianForEvenWorkerCounts) {
  // Uniform-degree graph + a deliberately unbalanced interleaved
  // partitioning (20% / 20% / 30% / 30% of the vertices, no two ring
  // neighbors co-located so every arc is remote): per-VM compute AND network
  // load are both proportional to the partition size, so the two middle
  // busy times differ by construction and the upper-median sample sits
  // measurably above the true median. Large enough that per-message costs
  // dwarf the constant per-superstep connection-setup term.
  Graph g = ring_graph(40000);
  const std::uint32_t w = 4;  // even: upper median != true median
  constexpr PartitionId kPattern[10] = {0, 1, 2, 3, 2, 3, 1, 0, 3, 2};
  std::vector<PartitionId> assign(g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v) assign[v] = kPattern[v % 10];
  const Partitioning parts(std::move(assign), w);
  ClusterConfig c = base_cluster();
  c.faults.straggler_rate = 0.12;
  c.faults.straggler_slowdown = 150.0;  // environmental: re-execution is cheap
  JobOptions o;
  o.start_all_vertices = true;

  Engine<PageRankProgram> probe(g, {25, 0.85}, c, parts);
  const auto baseline = probe.run(o);
  ASSERT_FALSE(baseline.failed);

  // Per superstep: worst busy time, upper-median sample, and true median.
  double factor_lo = 1.0;  // any factor above this never fires on the upper median
  double factor_hi = 0.0;  // some factor below this fires on the true median
  for (const auto& sm : baseline.metrics.supersteps) {
    std::vector<double> busy;
    for (const auto& wm : sm.workers) busy.push_back(wm.busy_time());
    ASSERT_EQ(busy.size(), w);
    std::vector<double> sorted = busy;
    std::nth_element(sorted.begin(), sorted.begin() + w / 2, sorted.end());
    const double upper = sorted[w / 2];
    const double true_med = median_of(busy);
    const double worst = *std::max_element(busy.begin(), busy.end());
    const double best = *std::min_element(busy.begin(), busy.end());
    if (upper <= 0.0 || true_med <= 0.0) continue;
    factor_lo = std::max(factor_lo, worst / upper);
    // 2x the best worker's busy time over-covers the re-execution cost
    // (balanced partitions), so firing past this factor is guaranteed to
    // beat waiting the straggler out.
    factor_hi = std::max(factor_hi, (worst - 2.0 * best) / true_med);
  }
  // The calibration window must exist, or the scenario needs retuning.
  ASSERT_GT(factor_hi, factor_lo * 1.01);
  const double factor = factor_lo * 1.005;

  // By construction: no superstep's worst worker exceeds factor x the
  // upper-median sample — an upper-median timeout would never fire.
  for (const auto& sm : baseline.metrics.supersteps) {
    std::vector<double> sorted;
    double worst = 0.0;
    for (const auto& wm : sm.workers) {
      sorted.push_back(wm.busy_time());
      worst = std::max(worst, wm.busy_time());
    }
    std::nth_element(sorted.begin(), sorted.begin() + w / 2, sorted.end());
    EXPECT_LE(worst, factor * sorted[w / 2] * (1.0 + 1e-12));
  }

  ClusterConfig timed = c;
  timed.straggler_timeout_factor = factor;
  Engine<PageRankProgram> e(g, {25, 0.85}, timed, parts);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_GE(r.metrics.straggler_reexecutions, 1u);
  // Speculation changes timing only, never results.
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(r.values[v].rank, baseline.values[v].rank) << v;
}

TEST(FaultTolerance, RecoveryChargesCost) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig healthy = base_cluster();
  ClusterConfig faulty = base_cluster();
  faulty.checkpoint_interval = 4;
  faulty.scheduled_failures = {{6, 0}};
  JobOptions o;
  o.start_all_vertices = true;
  Engine<PageRankProgram> eh(g, {15, 0.85}, healthy, parts);
  Engine<PageRankProgram> ef(g, {15, 0.85}, faulty, parts);
  const auto rh = eh.run(o);
  const auto rf = ef.run(o);
  EXPECT_GT(rf.metrics.cost_usd, rh.metrics.cost_usd);
}

}  // namespace
}  // namespace pregel
