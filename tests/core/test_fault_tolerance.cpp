// Checkpoint/recovery fault tolerance — the Pregel feature the paper lists
// as a supportable extension. Tests cover: checkpoints being written and
// charged, exact-result recovery from scheduled and probabilistic failures,
// job loss without checkpoints, and swath-state consistency across rollback.
#include <gtest/gtest.h>

#include <numeric>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using algos::PageRankProgram;
using algos::SsspProgram;

ClusterConfig base_cluster() {
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  return c;
}

TEST(FaultTolerance, CheckpointsWrittenAtInterval) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 5;
  Engine<PageRankProgram> e(g, {20, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  // 21 supersteps -> checkpoints after supersteps 4, 9, 14, 19.
  EXPECT_EQ(r.metrics.checkpoints_written, 4u);
  EXPECT_GT(r.metrics.checkpoint_time, 0.0);
  EXPECT_EQ(r.metrics.worker_failures, 0u);
}

TEST(FaultTolerance, NoCheckpointingMeansNoOverhead) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  Engine<PageRankProgram> e(g, {20, 0.85}, base_cluster(), parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  EXPECT_EQ(r.metrics.checkpoints_written, 0u);
  EXPECT_DOUBLE_EQ(r.metrics.checkpoint_time, 0.0);
}

TEST(FaultTolerance, FailureWithoutCheckpointLosesJob) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.scheduled_failures = {{3, 1}};
  Engine<PageRankProgram> e(g, {20, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  EXPECT_TRUE(r.failed);
  EXPECT_NE(r.failure_reason.find("no checkpoint"), std::string::npos);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
}

TEST(FaultTolerance, RecoveryReproducesExactPageRank) {
  Graph g = barabasi_albert(300, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);

  ClusterConfig healthy = base_cluster();
  Engine<PageRankProgram> eh(g, {25, 0.85}, healthy, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto clean = eh.run(o);

  ClusterConfig faulty = base_cluster();
  faulty.checkpoint_interval = 4;
  faulty.scheduled_failures = {{7, 0}, {15, 2}};
  Engine<PageRankProgram> ef(g, {25, 0.85}, faulty, parts);
  const auto recovered = ef.run(o);

  ASSERT_FALSE(recovered.failed);
  EXPECT_EQ(recovered.metrics.worker_failures, 2u);
  EXPECT_GT(recovered.metrics.recovery_time, 0.0);
  EXPECT_GT(recovered.metrics.replayed_supersteps, 0u);
  EXPECT_GT(recovered.metrics.total_time, clean.metrics.total_time);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(recovered.values[v].rank, clean.values[v].rank) << v;
}

TEST(FaultTolerance, RecoveryReproducesSsspDistances) {
  Graph g = watts_strogatz(400, 6, 0.2, 9);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 2;
  c.scheduled_failures = {{3, 1}};
  Engine<SsspProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = {0};
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 1u);
  const auto ref = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].distance, ref[v]);
}

TEST(FaultTolerance, SwathStateSurvivesRollback) {
  // BC with swath scheduling: failures must not lose or duplicate roots.
  Graph g = watts_strogatz(200, 4, 0.2, 11);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots(12);
  std::iota(roots.begin(), roots.end(), VertexId{0});
  const auto ref = reference_betweenness(g, roots);

  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 3;
  c.scheduled_failures = {{5, 0}, {11, 3}, {17, 1}};
  Engine<BcProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = roots;
  o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                              std::make_shared<SequentialInitiation>(), 6_GiB);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_EQ(r.metrics.worker_failures, 3u);
  EXPECT_EQ(r.roots_completed, roots.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6) << v;
}

TEST(FaultTolerance, ProbabilisticFailuresEventuallyFinish) {
  Graph g = ring_graph(128);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c = base_cluster();
  c.checkpoint_interval = 3;
  c.failure_rate = 0.02;  // ~8% per superstep across 4 workers
  c.failure_seed = 17;
  Engine<PageRankProgram> e(g, {30, 0.85}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  // With this seed at least one failure should strike across ~31 supersteps;
  // the run still completes with the right result shape.
  EXPECT_GE(r.metrics.worker_failures, 1u);
  double sum = 0;
  for (const auto& v : r.values) sum += v.rank;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(FaultTolerance, RecoveryChargesCost) {
  Graph g = ring_graph(64);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig healthy = base_cluster();
  ClusterConfig faulty = base_cluster();
  faulty.checkpoint_interval = 4;
  faulty.scheduled_failures = {{6, 0}};
  JobOptions o;
  o.start_all_vertices = true;
  Engine<PageRankProgram> eh(g, {15, 0.85}, healthy, parts);
  Engine<PageRankProgram> ef(g, {15, 0.85}, faulty, parts);
  const auto rh = eh.run(o);
  const auto rf = ef.run(o);
  EXPECT_GT(rf.metrics.cost_usd, rh.metrics.cost_usd);
}

}  // namespace
}  // namespace pregel
