// The paper's alternative trigger signals (§IV names message traffic,
// memory utilization, and active-vertex count) and the hysteresis elastic
// policy, plus their behavior inside the engine.
#include <gtest/gtest.h>

#include <numeric>

#include "algos/bc.hpp"
#include "cloud/elasticity.hpp"
#include "core/swath.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

TEST(MemoryHeadroomInitiation, FiresOnHeadroom) {
  MemoryHeadroomInitiation p(0.6);
  InitiationSignals s;
  s.active_roots = 2;
  s.memory_target = 100_MiB;
  s.max_worker_memory = 70_MiB;  // 70% of target: no room
  EXPECT_FALSE(p.should_initiate(s));
  s.max_worker_memory = 50_MiB;  // below 60%: room
  EXPECT_TRUE(p.should_initiate(s));
  s.active_roots = 0;
  s.max_worker_memory = 99_MiB;
  EXPECT_TRUE(p.should_initiate(s));  // drained always fires
}

TEST(MemoryHeadroomInitiation, NoTargetNeverDefers) {
  MemoryHeadroomInitiation p(0.5);
  InitiationSignals s;
  s.active_roots = 1;
  s.memory_target = 0;
  s.max_worker_memory = 100_GiB;
  EXPECT_TRUE(p.should_initiate(s));
}

TEST(MemoryHeadroomInitiation, ValidatesFraction) {
  EXPECT_THROW(MemoryHeadroomInitiation(0.0), std::logic_error);
  EXPECT_THROW(MemoryHeadroomInitiation(1.5), std::logic_error);
}

TEST(TrafficDecayInitiation, FiresWhenTrafficDrainsBelowPeakFraction) {
  TrafficDecayInitiation p(0.5);
  InitiationSignals s;
  s.active_roots = 1;
  s.messages_sent = 100;
  EXPECT_FALSE(p.should_initiate(s));  // establishes peak 100
  s.messages_sent = 80;
  EXPECT_FALSE(p.should_initiate(s));  // 80 >= 50% of 100
  s.messages_sent = 40;
  EXPECT_TRUE(p.should_initiate(s));  // decayed past half
  p.on_initiated();
  s.messages_sent = 10;  // new window: peak 10, 10 >= 5
  EXPECT_FALSE(p.should_initiate(s));
}

TEST(TrafficDecayInitiation, TracksRisingPeak) {
  TrafficDecayInitiation p(0.5);
  InitiationSignals s;
  s.active_roots = 1;
  for (double m : {10.0, 100.0, 1000.0}) {
    s.messages_sent = static_cast<std::uint64_t>(m);
    EXPECT_FALSE(p.should_initiate(s));
  }
  s.messages_sent = 499;  // < 50% of 1000
  EXPECT_TRUE(p.should_initiate(s));
}

TEST(TrafficDecayInitiation, ValidatesFraction) {
  EXPECT_THROW(TrafficDecayInitiation(0.0), std::logic_error);
  EXPECT_THROW(TrafficDecayInitiation(1.0), std::logic_error);
}

TEST(HysteresisScaling, BandSuppressesFlapping) {
  cloud::HysteresisScaling p(4, 8, 0.3, 0.6);
  cloud::ScalingSignals s;
  s.total_vertices = 100;
  s.active_vertices = 50;  // inside the band, never scaled out: stays low
  EXPECT_EQ(p.decide(s), 4u);
  s.active_vertices = 65;  // crosses out-threshold
  EXPECT_EQ(p.decide(s), 8u);
  s.active_vertices = 45;  // inside the band while out: stays high
  EXPECT_EQ(p.decide(s), 8u);
  s.active_vertices = 25;  // crosses in-threshold
  EXPECT_EQ(p.decide(s), 4u);
  s.active_vertices = 45;  // band again, now low: stays low
  EXPECT_EQ(p.decide(s), 4u);
}

TEST(HysteresisScaling, ValidatesArguments) {
  EXPECT_THROW(cloud::HysteresisScaling(0, 8), std::logic_error);
  EXPECT_THROW(cloud::HysteresisScaling(8, 4), std::logic_error);
  EXPECT_THROW(cloud::HysteresisScaling(4, 8, 0.6, 0.3), std::logic_error);
}

// Engine integration: all initiation policies complete all roots with
// identical results.
class InitiationPolicies : public ::testing::TestWithParam<int> {};

TEST_P(InitiationPolicies, AllCompleteWithIdenticalScores) {
  Graph g = watts_strogatz(150, 4, 0.2, 81);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots(12);
  std::iota(roots.begin(), roots.end(), VertexId{0});
  const auto ref = reference_betweenness(g, roots);

  std::shared_ptr<InitiationPolicy> policy;
  switch (GetParam()) {
    case 0: policy = std::make_shared<SequentialInitiation>(); break;
    case 1: policy = std::make_shared<StaticNInitiation>(3); break;
    case 2: policy = std::make_shared<DynamicPeakInitiation>(); break;
    case 3: policy = std::make_shared<MemoryHeadroomInitiation>(); break;
    default: policy = std::make_shared<TrafficDecayInitiation>(); break;
  }
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  const auto r = algos::run_bc(
      g, c, parts, roots,
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(4), policy, 6_GiB));
  ASSERT_EQ(r.roots_completed, roots.size()) << policy->name();
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6) << policy->name();
}

INSTANTIATE_TEST_SUITE_P(All, InitiationPolicies, ::testing::Range(0, 5));

TEST(HysteresisScalingEngine, FewerScaleEventsThanPlainThreshold) {
  Graph g = watts_strogatz(2000, 6, 0.1, 83);
  const auto parts = HashPartitioner{}.partition(g, 8);
  std::vector<VertexId> roots(12);
  std::iota(roots.begin(), roots.end(), VertexId{0});

  auto count_changes = [&](std::shared_ptr<cloud::ScalingPolicy> policy) {
    ClusterConfig c;
    c.num_partitions = 8;
    c.initial_workers = 4;
    c.scaling = std::move(policy);
    Engine<algos::BcProgram> e(g, {}, c, parts);
    JobOptions o;
    o.roots = roots;
    o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(3),
                                std::make_shared<SequentialInitiation>(), 6_GiB);
    const auto r = e.run(o);
    int changes = 0;
    for (std::size_t i = 1; i < r.metrics.supersteps.size(); ++i)
      changes += r.metrics.supersteps[i].active_workers !=
                 r.metrics.supersteps[i - 1].active_workers;
    return changes;
  };
  const int plain = count_changes(std::make_shared<cloud::ActiveVertexScaling>(4, 8, 0.5));
  const int banded =
      count_changes(std::make_shared<cloud::HysteresisScaling>(4, 8, 0.2, 0.7));
  EXPECT_LE(banded, plain);
}

}  // namespace
}  // namespace pregel
