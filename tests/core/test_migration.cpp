// Live vertex migration: correctness contract tests (docs/ELASTICITY.md).
//
// The subsystem's load-bearing promise is that migration changes WHERE
// vertices compute, never WHAT they compute: algorithm results, the
// superstep count, per-superstep active counts, and total message traffic
// are bit-identical to the unmigrated run at any parallelism. Per-worker
// splits and modeled times legitimately differ — that shift IS the
// rebalance — so those are asserted only between migrated runs at
// different lane counts, where full bit-identity must hold.
#include <gtest/gtest.h>

#include <cmath>
#include <memory>
#include <vector>

#include "algos/bc.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using algos::PageRankProgram;
using algos::SsspProgram;

/// Grow to `to` workers once superstep `at` is reached.
class StepUpScaling final : public cloud::ScalingPolicy {
 public:
  StepUpScaling(std::uint64_t at, std::uint32_t to) : at_(at), to_(to) {}
  std::uint32_t decide(const cloud::ScalingSignals& s) override {
    return s.superstep >= at_ ? to_ : s.current_workers;
  }
  std::string name() const override { return "step-up"; }

 private:
  std::uint64_t at_;
  std::uint32_t to_;
};

ClusterConfig eight_partitions_four_vms() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 4;
  return c;
}

/// Migration forced every other barrier — the adversarial schedule the
/// determinism argument must survive.
ClusterConfig with_forced_migration(ClusterConfig c,
                                    std::shared_ptr<MigrationPlanner> planner,
                                    std::uint64_t period = 2) {
  c.migration.planner = std::move(planner);
  c.migration.period = period;
  return c;
}

/// The migration-invariant slice of the metrics: logical execution shape,
/// not physical layout.
void expect_same_logical_execution(const JobMetrics& a, const JobMetrics& b) {
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  EXPECT_EQ(a.total_messages(), b.total_messages());
  for (std::size_t s = 0; s < a.supersteps.size(); ++s) {
    EXPECT_EQ(a.supersteps[s].active_vertices, b.supersteps[s].active_vertices)
        << "superstep " << s;
    EXPECT_EQ(a.supersteps[s].active_roots, b.supersteps[s].active_roots)
        << "superstep " << s;
    EXPECT_EQ(a.supersteps[s].messages_sent_total(),
              b.supersteps[s].messages_sent_total())
        << "superstep " << s;
  }
}

/// Full bit-identity, per-worker splits and modeled times included —
/// required between two runs of the SAME configuration at different lane
/// counts (the PR-2 contract, now under migration too).
void expect_identical_metrics(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.migrations, b.migrations);
  EXPECT_EQ(a.migrated_vertices, b.migrated_vertices);
  EXPECT_EQ(a.migrated_bytes, b.migrated_bytes);
  EXPECT_EQ(a.migration_time, b.migration_time);
  EXPECT_EQ(a.rebalance_gain, b.rebalance_gain);
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  for (std::size_t s = 0; s < a.supersteps.size(); ++s) {
    const SuperstepMetrics& x = a.supersteps[s];
    const SuperstepMetrics& y = b.supersteps[s];
    EXPECT_EQ(x.active_vertices, y.active_vertices) << "superstep " << s;
    EXPECT_EQ(x.span, y.span) << "superstep " << s;
    ASSERT_EQ(x.workers.size(), y.workers.size()) << "superstep " << s;
    for (std::size_t w = 0; w < x.workers.size(); ++w) {
      EXPECT_EQ(x.workers[w].vertices_computed, y.workers[w].vertices_computed)
          << s << "/" << w;
      EXPECT_EQ(x.workers[w].messages_processed, y.workers[w].messages_processed)
          << s << "/" << w;
      EXPECT_EQ(x.workers[w].memory_peak, y.workers[w].memory_peak) << s << "/" << w;
      EXPECT_EQ(x.workers[w].compute_time, y.workers[w].compute_time) << s << "/" << w;
      EXPECT_EQ(x.workers[w].network_time, y.workers[w].network_time) << s << "/" << w;
    }
  }
}

TEST(Migration, SsspValuesBitIdenticalUnderForcedMigration) {
  const Graph g = barabasi_albert(600, 3, 71);
  const ClusterConfig plain = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, plain.num_partitions);

  const auto base = algos::run_sssp(g, plain, parts, /*source=*/0);
  ASSERT_FALSE(base.failed);

  for (const bool greedy : {true, false}) {
    std::shared_ptr<MigrationPlanner> planner;
    if (greedy)
      planner = std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05);
    else
      planner = std::make_shared<EdgeCutRefinePlanner>();
    const ClusterConfig c = with_forced_migration(plain, planner);
    for (const std::uint32_t lanes : {1u, 4u}) {
      JobOptions o;
      o.roots = {0};
      o.parallelism = lanes;
      Engine<SsspProgram> e(g, {}, c, parts);
      const auto r = e.run(o);
      ASSERT_FALSE(r.failed);
      EXPECT_GT(r.metrics.migrations, 0u) << "planner never fired";
      EXPECT_GT(r.metrics.migrated_vertices, 0u);
      ASSERT_EQ(r.values.size(), base.values.size());
      for (std::size_t v = 0; v < r.values.size(); ++v)
        EXPECT_EQ(r.values[v].distance, base.values[v].distance)
            << "vertex " << v << ", " << lanes << " lanes, greedy=" << greedy;
      expect_same_logical_execution(r.metrics, base.metrics);
    }
  }
}

TEST(Migration, PageRankValuesBitIdenticalUnderForcedMigration) {
  const Graph g = erdos_renyi(500, 1500, 73);
  const ClusterConfig plain = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, plain.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = 1;
  Engine<PageRankProgram> serial(g, {15, 0.85}, plain, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);

  const ClusterConfig c = with_forced_migration(
      plain, std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05), 3);
  for (const std::uint32_t lanes : {1u, 4u}) {
    o.parallelism = lanes;
    Engine<PageRankProgram> e(g, {15, 0.85}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed);
    EXPECT_GT(r.metrics.migrations, 0u);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].rank, base.values[v].rank)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_same_logical_execution(r.metrics, base.metrics);
  }
}

// BC exercises every migration-sensitive path at once: swath seeds, double
// aggregates (replayed by rank), wake_at rescheduling across partitions,
// and root completions whose order feeds the swath scheduler.
TEST(Migration, BcSwathedBitIdenticalUnderForcedMigration) {
  const Graph g = barabasi_albert(300, 3, 79);
  const ClusterConfig plain = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, plain.num_partitions);

  std::vector<VertexId> roots;
  for (VertexId r = 0; r < 24; ++r) roots.push_back(r * 7 % 300);

  JobOptions o;
  o.roots = roots;
  o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(6),
                              std::make_shared<StaticNInitiation>(3), 0);
  o.parallelism = 1;
  Engine<BcProgram> serial(g, {}, plain, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);
  ASSERT_EQ(base.roots_completed, roots.size());

  const ClusterConfig c = with_forced_migration(
      plain, std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05));
  for (const std::uint32_t lanes : {1u, 4u}) {
    o.parallelism = lanes;
    Engine<BcProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed);
    EXPECT_GT(r.metrics.migrations, 0u);
    EXPECT_EQ(r.roots_completed, base.roots_completed);
    EXPECT_EQ(r.swaths_initiated, base.swaths_initiated);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].bc_score, base.values[v].bc_score)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_same_logical_execution(r.metrics, base.metrics);
  }
}

// Between two migrated runs that differ only in lane count, the FULL metric
// record — per-worker splits, spans, migration accounting — must be
// bit-identical: host parallelism stays a pure wall-clock knob even while
// vertices move.
TEST(Migration, MigratedRunBitIdenticalAcrossLaneCounts) {
  const Graph g = barabasi_albert(600, 3, 71);
  const ClusterConfig c = with_forced_migration(
      eight_partitions_four_vms(),
      std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05));
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.roots = {0};
  o.parallelism = 1;
  Engine<SsspProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);
  ASSERT_GT(base.metrics.migrations, 0u);

  for (const std::uint32_t lanes : {2u, 4u}) {
    o.parallelism = lanes;
    Engine<SsspProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].distance, base.values[v].distance) << "vertex " << v;
    expect_identical_metrics(r.metrics, base.metrics);
  }
}

// Sender-side combining must survive migration: the combine domain is
// pinned to the sender's home placement, so combined message streams (and
// therefore SSSP's relaxation results) match the unmigrated combined run.
TEST(Migration, CombinerResultsStableUnderMigration) {
  const Graph g = barabasi_albert(500, 4, 83);
  const ClusterConfig plain = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, plain.num_partitions);

  const auto base = algos::run_sssp(g, plain, parts, 0, /*use_combiner=*/true);
  ASSERT_FALSE(base.failed);

  const ClusterConfig c = with_forced_migration(
      plain, std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05));
  for (const std::uint32_t lanes : {1u, 4u}) {
    JobOptions o;
    o.roots = {0};
    o.use_combiner = true;
    o.parallelism = lanes;
    Engine<SsspProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed);
    EXPECT_GT(r.metrics.migrations, 0u);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].distance, base.values[v].distance)
          << "vertex " << v << ", " << lanes << " lanes";
  }
}

// A worker failure after a migration rolls back to the checkpoint — which
// must rewind the vertex location tables along with the partition state, or
// replay would route against a layout the restored partitions don't have.
TEST(Migration, FailureRecoveryAfterMigrationReplaysCorrectly) {
  const Graph g = barabasi_albert(400, 3, 89);
  const ClusterConfig plain = eight_partitions_four_vms();
  const auto parts = HashPartitioner{}.partition(g, plain.num_partitions);
  const auto base = algos::run_sssp(g, plain, parts, 0);
  ASSERT_FALSE(base.failed);

  ClusterConfig c = with_forced_migration(
      plain, std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05));
  c.checkpoint_interval = 2;
  c.scheduled_failures = {{3, 1}};  // superstep 3, worker 1: after a migration
  JobOptions o;
  o.roots = {0};
  Engine<SsspProgram> e(g, {}, c, parts);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_GT(r.metrics.migrations, 0u);
  EXPECT_GT(r.metrics.replayed_supersteps, 0u);
  for (std::size_t v = 0; v < r.values.size(); ++v)
    EXPECT_EQ(r.values[v].distance, base.values[v].distance) << "vertex " << v;
}

// Engine reuse: a second run on the same Engine must start from the
// pristine build-time assignment, not the layout the first run migrated to.
TEST(Migration, SecondRunOnSameEngineMatchesFirst) {
  const Graph g = barabasi_albert(400, 3, 97);
  const ClusterConfig c = with_forced_migration(
      eight_partitions_four_vms(),
      std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.05));
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  JobOptions o;
  o.roots = {0};
  Engine<SsspProgram> e(g, {}, c, parts);
  const auto first = e.run(o);
  ASSERT_FALSE(first.failed);
  ASSERT_GT(first.metrics.migrations, 0u);
  const auto second = e.run(o);
  ASSERT_FALSE(second.failed);
  for (std::size_t v = 0; v < first.values.size(); ++v)
    EXPECT_EQ(first.values[v].distance, second.values[v].distance) << "vertex " << v;
  EXPECT_EQ(first.metrics.total_time, second.metrics.total_time);
  EXPECT_EQ(first.metrics.migrations, second.metrics.migrations);
  EXPECT_EQ(first.metrics.migrated_bytes, second.metrics.migrated_bytes);
}

// Governor scale-out rung: a memory-pressured BC run with a spare VM slot
// and migration wired resolves the pressure by growing the cluster —
// no shed rewinds, no governed-OOM episodes, and correct scores.
TEST(Migration, GovernorScaleOutResolvesPressureWithoutShed) {
  const Graph g = barabasi_albert(400, 4, 101);
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 2;  // room to grow
  c.checkpoint_interval = 2;
  c.migration.planner = std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.1);
  const auto parts = HashPartitioner{}.partition(g, c.num_partitions);

  std::vector<VertexId> roots;
  for (VertexId r = 0; r < 32; ++r) roots.push_back(r * 11 % 400);

  // Ungoverned reference for score correctness.
  JobOptions plain;
  plain.roots = roots;
  plain.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(8),
                                  std::make_shared<StaticNInitiation>(2), 0);
  ClusterConfig c_plain = c;
  c_plain.migration = {};
  c_plain.checkpoint_interval = 0;
  Engine<BcProgram> ref(g, {}, c_plain, parts);
  const auto base = ref.run(plain);
  ASSERT_FALSE(base.failed);

  // Budget set between baseline and the observed peak so the hard watermark
  // trips without tripping the fabric's restart threshold.
  Bytes peak = 0;
  for (const auto& sm : base.metrics.supersteps)
    peak = std::max(peak, sm.max_worker_memory());

  JobOptions o = plain;
  o.swath.memory_target = peak - peak / 8;
  o.governor.enabled = true;
  o.governor.scale_out_enabled = true;
  o.governor.spill_enabled = false;  // keep pressure visible to the hard rung
  o.governor.soft_watermark = 0.999;  // isolate the hard-watermark rung
  o.governor.hard_watermark = 0.999;
  Engine<BcProgram> e(g, {}, c, parts);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed) << r.failure_reason;
  EXPECT_GE(r.metrics.governor_scale_outs, 1u);
  EXPECT_EQ(r.metrics.governor_sheds, 0u);
  EXPECT_EQ(r.metrics.governed_oom_episodes, 0u);
  EXPECT_EQ(r.roots_completed, roots.size());
  // The governed run legitimately reorders swaths (veto + scale-out), so
  // per-vertex scores accumulate root deltas in a different order: equal to
  // rounding, not bitwise.
  for (std::size_t v = 0; v < r.values.size(); ++v)
    EXPECT_NEAR(r.values[v].bc_score, base.values[v].bc_score,
                1e-9 * (1.0 + std::abs(base.values[v].bc_score)))
        << "vertex " << v;
}

// Elastic scaling with migration wired: the worker-count change triggers a
// physical partition redistribution (priced through the transfer planes)
// and an activity replan, with results still matching the static run.
TEST(Migration, ScalingPolicyTriggersRedistributionAndReplan) {
  const Graph g = barabasi_albert(500, 3, 103);
  ClusterConfig plain;
  plain.num_partitions = 8;
  plain.initial_workers = 4;
  const auto parts = HashPartitioner{}.partition(g, plain.num_partitions);
  const auto base = algos::run_sssp(g, plain, parts, 0);
  ASSERT_FALSE(base.failed);

  ClusterConfig c = plain;
  c.scaling = std::make_shared<StepUpScaling>(/*at=*/2, /*to=*/8);
  c.migration.planner = std::make_shared<ActivityGreedyPlanner>(/*tolerance=*/0.1);
  JobOptions o;
  o.roots = {0};
  Engine<SsspProgram> e(g, {}, c, parts);
  const auto r = e.run(o);
  ASSERT_FALSE(r.failed);
  EXPECT_GT(r.metrics.migrations, 0u) << "scale event should redistribute";
  EXPECT_GT(r.metrics.migration_time, 0.0);
  for (std::size_t v = 0; v < r.values.size(); ++v)
    EXPECT_EQ(r.values[v].distance, base.values[v].distance) << "vertex " << v;
  expect_same_logical_execution(r.metrics, base.metrics);
}

}  // namespace
}  // namespace pregel
