// Engine edge cases: degenerate graphs and deployments, self-messages,
// state-byte accounting corners, failure accessor surface.
#include <gtest/gtest.h>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/analysis.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

struct SelfTalker {
  struct VertexValue {
    std::uint32_t echoes = 0;
  };
  using MessageValue = std::uint32_t;

  int rounds = 3;

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    v.echoes += static_cast<std::uint32_t>(messages.size());
    if (static_cast<int>(ctx.superstep()) < rounds)
      ctx.send(ctx.vertex_id(), 1);  // message to self
  }
};

TEST(EngineEdge, MessageToSelfIsLocalAndDelivered) {
  Graph g = path_graph(4);
  const auto parts = RangePartitioner{}.partition(g, 2);
  ClusterConfig c;
  c.num_partitions = 2;
  c.initial_workers = 2;
  Engine<SelfTalker> e(g, {3}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  for (const auto& v : r.values) EXPECT_EQ(v.echoes, 3u);
  for (const auto& sm : r.metrics.supersteps) EXPECT_EQ(sm.messages_sent_remote(), 0u);
}

TEST(EngineEdge, SinglePartitionHasNoRemoteTraffic) {
  Graph g = barabasi_albert(100, 3, 5);
  const auto parts = HashPartitioner{}.partition(g, 1);
  ClusterConfig c;
  c.num_partitions = 1;
  c.initial_workers = 1;
  const auto r = algos::run_pagerank(g, c, parts, 5);
  std::uint64_t remote = 0;
  for (const auto& sm : r.metrics.supersteps) remote += sm.messages_sent_remote();
  EXPECT_EQ(remote, 0u);
  EXPECT_GT(r.metrics.total_messages(), 0u);
}

TEST(EngineEdge, EmptyGraphRunsZeroSupersteps) {
  Graph g = GraphBuilder(0).build();
  const Partitioning parts(std::vector<PartitionId>{}, 1);
  ClusterConfig c;
  c.num_partitions = 1;
  c.initial_workers = 1;
  Engine<SelfTalker> e(g, {3}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  EXPECT_EQ(r.metrics.total_supersteps(), 0u);
  EXPECT_TRUE(r.values.empty());
  EXPECT_FALSE(r.failed);
}

TEST(EngineEdge, SingleVertexGraph) {
  Graph g = GraphBuilder(1).build();
  const Partitioning parts({0}, 1);
  ClusterConfig c;
  c.num_partitions = 1;
  c.initial_workers = 1;
  Engine<SelfTalker> e(g, {2}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  EXPECT_EQ(r.values[0].echoes, 2u);
}

TEST(EngineEdge, RootOnIsolatedVertexCompletesImmediately) {
  Graph g = GraphBuilder(5).add_edge(0, 1).build();  // 2..4 isolated
  const auto parts = HashPartitioner{}.partition(g, 2);
  ClusterConfig c;
  c.num_partitions = 2;
  c.initial_workers = 2;
  Engine<algos::SsspProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = {3};
  const auto r = e.run(o);
  EXPECT_EQ(r.values[3].distance, 0u);
  EXPECT_EQ(r.values[0].distance, algos::SsspProgram::kUnreached);
  EXPECT_LE(r.metrics.total_supersteps(), 2u);
}

struct NegativeStateCharger {
  struct VertexValue {};
  using MessageValue = std::uint8_t;
  template <class Ctx>
  void compute(Ctx& ctx, VertexValue&, std::span<const MessageValue>) const {
    // Over-release: the memory meter must clamp, not underflow.
    if (ctx.superstep() == 0) ctx.charge_state_bytes(-1'000'000);
  }
};

TEST(EngineEdge, NegativeStateBytesClampToZeroInMeter) {
  Graph g = path_graph(4);
  const auto parts = RangePartitioner{}.partition(g, 2);
  ClusterConfig c;
  c.num_partitions = 2;
  c.initial_workers = 2;
  Engine<NegativeStateCharger> e(g, {}, c, parts);
  JobOptions o;
  o.start_all_vertices = true;
  const auto r = e.run(o);
  // Memory peak is just the partition graph bytes — tiny, far below 1 MiB.
  EXPECT_LT(r.metrics.peak_worker_memory(), 1_MiB);
  EXPECT_FALSE(r.failed);
}

TEST(EngineEdge, JobFailureCarriesDiagnostics) {
  const JobFailure f(17, 3, 12_GiB, 7_GiB);
  EXPECT_EQ(f.superstep(), 17u);
  EXPECT_EQ(f.worker(), 3u);
  EXPECT_EQ(f.memory(), 12_GiB);
  EXPECT_NE(std::string(f.what()).find("superstep 17"), std::string::npos);
  EXPECT_NE(std::string(f.what()).find("worker VM 3"), std::string::npos);
}

TEST(EngineEdge, MorePartitionsThanWorkersFromTheStart) {
  Graph g = watts_strogatz(400, 4, 0.2, 3);
  const auto parts = HashPartitioner{}.partition(g, 8);
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 3;  // partitions 0..7 over VMs 0..2
  const auto r = algos::run_pagerank(g, c, parts, 5);
  const auto ref = reference_pagerank(g, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].rank, ref[v], 1e-12);
  for (const auto& sm : r.metrics.supersteps) EXPECT_EQ(sm.workers.size(), 3u);
}

TEST(EngineEdge, DirectedGraphTraversalFollowsArcs) {
  // 0 -> 1 -> 2, plus 2 -> 0 back edge; vertex 3 unreachable.
  Graph g = GraphBuilder(4, /*undirected=*/false)
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(2, 0)
                .add_edge(3, 0)
                .build();
  const auto parts = HashPartitioner{}.partition(g, 2);
  ClusterConfig c;
  c.num_partitions = 2;
  c.initial_workers = 2;
  Engine<algos::SsspProgram> e(g, {}, c, parts);
  JobOptions o;
  o.roots = {0};
  const auto r = e.run(o);
  EXPECT_EQ(r.values[1].distance, 1u);
  EXPECT_EQ(r.values[2].distance, 2u);
  EXPECT_EQ(r.values[3].distance, algos::SsspProgram::kUnreached);
}

}  // namespace
}  // namespace pregel
