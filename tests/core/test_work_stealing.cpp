// The bag-frontier stealing contract: a pathologically skewed partitioning
// (one partition owns ~90% of the frontier) must produce bit-identical
// values and modeled metrics at every lane count and under any steal
// schedule. Steal counters themselves are wall-clock artifacts and are the
// ONE exemption from the bit-identity contract; everything else — including
// the direction-optimizer's pull/push decisions — must replay exactly.
#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "algos/bc.hpp"
#include "algos/components.hpp"
#include "algos/sssp.hpp"
#include "core/engine.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "util/thread_pool.hpp"

namespace pregel {
namespace {

using algos::BcProgram;
using algos::ComponentsProgram;
using algos::SsspProgram;

// ~90% of vertices piled into partition 0; the remainder round-robins over
// the other partitions. Chunk queues seeded from this are maximally lopsided,
// so dry lanes must steal to contribute.
Partitioning skewed_partitioning(VertexId n, PartitionId parts) {
  std::vector<PartitionId> assign(n, 0);
  const VertexId tail_start = n - n / 10;
  for (VertexId v = tail_start; v < n; ++v)
    assign[v] = static_cast<PartitionId>(1 + (v - tail_start) % (parts - 1));
  return {std::move(assign), parts};
}

ClusterConfig eight_partitions_four_vms() {
  ClusterConfig c;
  c.num_partitions = 8;
  c.initial_workers = 4;
  return c;
}

std::vector<std::uint32_t> lane_sweep() {
  std::vector<std::uint32_t> lanes{1, 2, 4};
  const unsigned hw = ThreadPool::hardware_threads();
  if (hw > 1 && hw != 2 && hw != 4) lanes.push_back(hw);
  return lanes;
}

// Full metric record, bit-for-bit, EXCLUDING steal counters (which depend on
// the wall-clock race between lanes) but INCLUDING pull-mode decisions (which
// are modeled and must replay).
void expect_identical_modeled_metrics(const JobMetrics& a, const JobMetrics& b) {
  EXPECT_EQ(a.total_time, b.total_time);
  EXPECT_EQ(a.setup_time, b.setup_time);
  EXPECT_EQ(a.cost_usd, b.cost_usd);
  EXPECT_EQ(a.pull_supersteps, b.pull_supersteps);
  EXPECT_EQ(a.direction_switches, b.direction_switches);
  ASSERT_EQ(a.supersteps.size(), b.supersteps.size());
  for (std::size_t s = 0; s < a.supersteps.size(); ++s) {
    const SuperstepMetrics& x = a.supersteps[s];
    const SuperstepMetrics& y = b.supersteps[s];
    EXPECT_EQ(x.active_vertices, y.active_vertices) << "superstep " << s;
    EXPECT_EQ(x.active_roots, y.active_roots) << "superstep " << s;
    EXPECT_EQ(x.span, y.span) << "superstep " << s;
    EXPECT_EQ(x.barrier_overhead, y.barrier_overhead) << "superstep " << s;
    EXPECT_EQ(x.pull_mode, y.pull_mode) << "superstep " << s;
    ASSERT_EQ(x.workers.size(), y.workers.size()) << "superstep " << s;
    for (std::size_t w = 0; w < x.workers.size(); ++w) {
      const WorkerStepMetrics& u = x.workers[w];
      const WorkerStepMetrics& v = y.workers[w];
      EXPECT_EQ(u.vertices_computed, v.vertices_computed) << s << "/" << w;
      EXPECT_EQ(u.messages_processed, v.messages_processed) << s << "/" << w;
      EXPECT_EQ(u.messages_sent_local, v.messages_sent_local) << s << "/" << w;
      EXPECT_EQ(u.messages_sent_remote, v.messages_sent_remote) << s << "/" << w;
      EXPECT_EQ(u.bytes_sent_remote, v.bytes_sent_remote) << s << "/" << w;
      EXPECT_EQ(u.memory_peak, v.memory_peak) << s << "/" << w;
      EXPECT_EQ(u.compute_time, v.compute_time) << s << "/" << w;
      EXPECT_EQ(u.network_time, v.network_time) << s << "/" << w;
    }
  }
}

TEST(WorkStealing, SkewedFrontierSsspBitIdenticalAcrossLanes) {
  const Graph g = barabasi_albert(800, 3, 71);
  const ClusterConfig c = eight_partitions_four_vms();
  const Partitioning parts = skewed_partitioning(g.num_vertices(), c.num_partitions);

  JobOptions o;
  o.roots = {0};
  o.frontier_grain = 16;  // many chunks per partition -> rich steal surface
  o.parallelism = 1;
  Engine<SsspProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<SsspProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed) << lanes << " lanes";
    ASSERT_EQ(r.values.size(), base.values.size());
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].distance, base.values[v].distance)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_identical_modeled_metrics(r.metrics, base.metrics);
  }
}

// BC layers every staged side effect (seeds, wakes, aggregates, root
// completion, backward pointwise sends interleaved with forward broadcasts)
// on top of the skewed frontier.
TEST(WorkStealing, SkewedFrontierBcBitIdenticalAcrossLanes) {
  const Graph g = barabasi_albert(400, 3, 73);
  const ClusterConfig c = eight_partitions_four_vms();
  const Partitioning parts = skewed_partitioning(g.num_vertices(), c.num_partitions);

  std::vector<VertexId> roots;
  for (VertexId r = 0; r < 16; ++r) roots.push_back(r * 11 % 400);

  JobOptions o;
  o.roots = roots;
  o.swath = SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                              std::make_shared<StaticNInitiation>(2), 0);
  o.frontier_grain = 16;
  o.parallelism = 1;
  Engine<BcProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);
  ASSERT_FALSE(base.failed);
  EXPECT_EQ(base.roots_completed, roots.size());

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<BcProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    EXPECT_EQ(r.roots_completed, base.roots_completed);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].bc_score, base.values[v].bc_score)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_identical_modeled_metrics(r.metrics, base.metrics);
  }
}

// Under heavy skew a dry lane steals whenever its queue empties while work
// remains — that needs no true parallelism, only that the lane gets scheduled
// before the loaded lane drains hundreds of chunks. A single run can still
// lose every race on a busy single-core builder, so retry a few times;
// determinism makes repeat runs free.
TEST(WorkStealing, SkewRecordsStealsAtParallelism) {
  const Graph g = barabasi_albert(1500, 4, 79);
  const ClusterConfig c = eight_partitions_four_vms();
  const Partitioning parts = skewed_partitioning(g.num_vertices(), c.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.frontier_grain = 8;
  o.parallelism = 4;

  std::uint64_t steals = 0;
  for (int attempt = 0; attempt < 8 && steals == 0; ++attempt) {
    Engine<ComponentsProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed);
    steals = r.metrics.work_steals;
    // stolen_chunks moves with steals: both zero or both positive.
    EXPECT_EQ(r.metrics.work_steals == 0, r.metrics.stolen_chunks == 0);
  }
  EXPECT_GE(steals, 1u) << "no steal recorded in 8 skewed runs";
}

// Direction optimization is a traversal-order optimization, not a semantic
// one: forced-pull, forced-push, and the auto heuristic must agree on values
// and message counts exactly.
TEST(DirectionOptimization, ModesAgreeBitIdentically) {
  const Graph g = barabasi_albert(600, 3, 83);
  const ClusterConfig c = eight_partitions_four_vms();
  const Partitioning parts = skewed_partitioning(g.num_vertices(), c.num_partitions);

  JobOptions o;
  o.roots = {0};
  o.parallelism = 2;
  o.direction.mode = DirectionOptions::Mode::kOff;
  Engine<SsspProgram> push(g, {}, c, parts);
  const auto base = push.run(o);
  ASSERT_FALSE(base.failed);
  EXPECT_EQ(base.metrics.pull_supersteps, 0u);

  for (const auto mode : {DirectionOptions::Mode::kAuto, DirectionOptions::Mode::kAlways}) {
    o.direction.mode = mode;
    Engine<SsspProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    ASSERT_FALSE(r.failed);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].distance, base.values[v].distance) << "vertex " << v;
    EXPECT_EQ(r.metrics.total_messages(), base.metrics.total_messages());
    EXPECT_EQ(r.metrics.total_time, base.metrics.total_time);
  }

  // Forced pull actually engages: every superstep with traffic runs pulled.
  o.direction.mode = DirectionOptions::Mode::kAlways;
  Engine<SsspProgram> pulled(g, {}, c, parts);
  const auto rp = pulled.run(o);
  EXPECT_GT(rp.metrics.pull_supersteps, 0u);
}

// The auto heuristic's switch sequence is part of the modeled record: it must
// be identical at every lane count (decide_direction reads only modeled
// frontier state), and dense label floods should actually trigger it.
TEST(DirectionOptimization, AutoHeuristicReplaysAcrossLanes) {
  const Graph g = watts_strogatz(700, 6, 0.15, 89);
  const ClusterConfig c = eight_partitions_four_vms();
  const Partitioning parts = skewed_partitioning(g.num_vertices(), c.num_partitions);

  JobOptions o;
  o.start_all_vertices = true;
  o.parallelism = 1;
  Engine<ComponentsProgram> serial(g, {}, c, parts);
  const auto base = serial.run(o);
  // A start-all label flood saturates the frontier: the heuristic must pull.
  EXPECT_GT(base.metrics.pull_supersteps, 0u);

  for (std::uint32_t lanes : lane_sweep()) {
    o.parallelism = lanes;
    Engine<ComponentsProgram> e(g, {}, c, parts);
    const auto r = e.run(o);
    for (std::size_t v = 0; v < r.values.size(); ++v)
      EXPECT_EQ(r.values[v].label, base.values[v].label)
          << "vertex " << v << ", " << lanes << " lanes";
    expect_identical_modeled_metrics(r.metrics, base.metrics);
  }
}

// Inbox-shrink hygiene: re-running the same job on the same engine must not
// inherit capacity or staging state from the first run — memory_peak and
// every other modeled metric replay bit-for-bit.
TEST(WorkStealing, RerunOnSameEngineIsBitIdentical) {
  const Graph g = barabasi_albert(500, 3, 97);
  const ClusterConfig c = eight_partitions_four_vms();
  const Partitioning parts = skewed_partitioning(g.num_vertices(), c.num_partitions);

  JobOptions o;
  o.roots = {0};
  o.frontier_grain = 16;
  o.parallelism = 4;
  Engine<SsspProgram> e(g, {}, c, parts);
  const auto first = e.run(o);
  const auto second = e.run(o);
  ASSERT_FALSE(first.failed);
  ASSERT_FALSE(second.failed);
  for (std::size_t v = 0; v < first.values.size(); ++v)
    EXPECT_EQ(first.values[v].distance, second.values[v].distance) << "vertex " << v;
  expect_identical_modeled_metrics(first.metrics, second.metrics);
}

}  // namespace
}  // namespace pregel
