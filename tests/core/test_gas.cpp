// GAS adapter: GraphLab-style programs running on the Pregel engine.
#include "core/gas.hpp"

#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

ClusterConfig cluster(std::uint32_t parts = 4) {
  ClusterConfig c;
  c.num_partitions = parts;
  c.initial_workers = parts;
  return c;
}

/// PageRank as GAS: scatter rank/degree, gather by sum, apply the update.
/// Undirected graphs only (no dangling mass) to keep apply self-contained.
struct GasPageRank {
  struct VertexValue {
    double rank = 0.0;
  };
  using GatherValue = double;

  int iterations = 20;
  double damping = 0.85;

  static GatherValue scatter(const GasContext& ctx, const VertexValue& v) {
    return ctx.degree > 0 ? v.rank / ctx.degree : 0.0;
  }
  static void accumulate(GatherValue& acc, const GatherValue& in) { acc += in; }

  bool apply(const GasContext& ctx, VertexValue& v,
             const std::optional<GatherValue>& gathered) const {
    const double n = ctx.num_graph_vertices;
    if (ctx.iteration == 0) {
      v.rank = 1.0 / n;
    } else {
      v.rank = (1.0 - damping) / n + damping * gathered.value_or(0.0);
    }
    return static_cast<int>(ctx.iteration) < iterations;
  }
};

TEST(GasAdapter, PageRankMatchesReference) {
  Graph g = barabasi_albert(250, 3, 71);  // no isolated vertices, undirected
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_gas(g, cluster(), parts, GasPageRank{20, 0.85});
  const auto ref = reference_pagerank(g, 20, 0.85);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].rank, ref[v], 1e-12) << v;
}

TEST(GasAdapter, CombinerOnOffIdenticalResults) {
  Graph g = watts_strogatz(300, 6, 0.1, 73);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto with = run_gas(g, cluster(), parts, GasPageRank{10, 0.85}, 1'000'000, true);
  const auto without = run_gas(g, cluster(), parts, GasPageRank{10, 0.85}, 1'000'000, false);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_DOUBLE_EQ(with.values[v].rank, without.values[v].rank);
  EXPECT_LT(with.metrics.total_messages(), without.metrics.total_messages());
}

/// Connected components as GAS: min-label monoid, signal on improvement.
struct GasComponents {
  struct VertexValue {
    VertexId label = kInvalidVertex;
  };
  using GatherValue = VertexId;

  static GatherValue scatter(const GasContext&, const VertexValue& v) { return v.label; }
  static void accumulate(GatherValue& acc, const GatherValue& in) {
    acc = std::min(acc, in);
  }
  bool apply(const GasContext& ctx, VertexValue& v,
             const std::optional<GatherValue>& gathered) const {
    const VertexId candidate =
        std::min(ctx.iteration == 0 ? ctx.id : v.label, gathered.value_or(kInvalidVertex));
    if (candidate < v.label) {
      v.label = candidate;
      return true;  // improved: signal neighbors
    }
    return false;
  }
};

TEST(GasAdapter, ComponentsMatchUnionFind) {
  Graph g = GraphBuilder(10)
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(4, 5)
                .add_edge(5, 6)
                .add_edge(6, 4)
                .add_edge(8, 9)
                .build();
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_gas(g, cluster(), parts, GasComponents{});
  const auto ref = connected_components(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.values[v].label, ref.component[v]) << v;
}

TEST(GasAdapter, ComponentsOnBigSmallWorld) {
  Graph g = relabel_vertices(watts_strogatz(2000, 4, 0.05, 77), 3);
  const auto parts = HashPartitioner{}.partition(g, 8);
  const auto r = run_gas(g, cluster(8), parts, GasComponents{});
  const auto ref = connected_components(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(r.values[v].label, ref.component[v]);
}

TEST(GasAdapter, MaxIterationsBoundsScatter) {
  Graph g = ring_graph(64);  // CC needs ~n/2 rounds on a ring
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_gas(g, cluster(), parts, GasComponents{}, /*max_iterations=*/5);
  EXPECT_LE(r.metrics.total_supersteps(), 6u);
}

}  // namespace
}  // namespace pregel
