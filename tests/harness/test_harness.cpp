#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "graph/generators.hpp"
#include "harness/experiment.hpp"
#include "harness/swath_search.hpp"
#include "partition/partitioner.hpp"

namespace pregel::harness {
namespace {

TEST(ExperimentEnv, DefaultsAreSane) {
  const auto& e = env();
  EXPECT_GE(e.scale_div, 1u);
  EXPECT_FALSE(e.results_dir.empty());
}

TEST(ExperimentVm, RamScalesInverselyWithDiv) {
  ExperimentEnv e10;
  e10.scale_div = 10;
  ExperimentEnv e20;
  e20.scale_div = 20;
  const auto vm10 = experiment_vm(e10);
  const auto vm20 = experiment_vm(e20);
  EXPECT_NEAR(static_cast<double>(vm10.ram) / static_cast<double>(vm20.ram), 2.0, 0.01);
  // Only the RAM envelope differs from the Azure Large spec.
  EXPECT_EQ(vm10.cores, cloud::azure_large_2012().cores);
  EXPECT_DOUBLE_EQ(vm10.network_bps, cloud::azure_large_2012().network_bps);
}

TEST(ExperimentVm, TargetIsSixSevenths) {
  const auto vm = experiment_vm(env());
  EXPECT_NEAR(static_cast<double>(memory_target(vm)),
              static_cast<double>(vm.ram) * 6.0 / 7.0,
              2.0);
}

TEST(MakeCluster, WiresPartitionsWorkersAndVm) {
  const auto c = make_cluster(env(), 8, 4);
  EXPECT_EQ(c.num_partitions, 8u);
  EXPECT_EQ(c.initial_workers, 4u);
  EXPECT_EQ(c.vm.ram, experiment_vm(env()).ram);
}

TEST(PickRoots, DeterministicDistinctInRange) {
  Graph g = path_graph(1000);
  const auto a = pick_roots(g, 50, 7);
  const auto b = pick_roots(g, 50, 7);
  const auto c = pick_roots(g, 50, 8);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  std::set<VertexId> uniq(a.begin(), a.end());
  EXPECT_EQ(uniq.size(), 50u);
  for (VertexId v : a) EXPECT_LT(v, 1000u);
}

TEST(PickRoots, ClampsToGraphSize) {
  Graph g = path_graph(10);
  EXPECT_EQ(pick_roots(g, 100, 1).size(), 10u);
}

TEST(MakePartitioner, KnownNames) {
  EXPECT_EQ(make_partitioner("hash")->name(), "hash");
  EXPECT_EQ(make_partitioner("metis")->name(), "metis-like");
  EXPECT_EQ(make_partitioner("stream")->name(), "stream-ldg");
  EXPECT_THROW(make_partitioner("bogus"), std::invalid_argument);
}

TEST(Extrapolation, ScalesPerRootTimeOnly) {
  JobMetrics m;
  m.setup_time = 10.0;
  m.total_time = 110.0;  // 100 s of per-root work over 5 roots
  // 20 s/root * 50 roots + setup = 1010.
  EXPECT_NEAR(extrapolate_total_time(m, 5, 50), 1010.0, 1e-9);
  EXPECT_THROW(extrapolate_total_time(m, 0, 50), std::logic_error);
}

TEST(SwathSearch, FindsBoundaryOnTinyCluster) {
  // A tight VM makes larger swaths fail; the search must bracket the edge.
  Graph g = barabasi_albert(1500, 4, 3);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig cluster;
  cluster.num_partitions = 4;
  cluster.initial_workers = 4;
  cluster.vm = cloud::with_scaled_ram(cloud::azure_large_2012(), 0.001);  // ~7 MiB
  const auto roots = pick_roots(g, 64, 5);
  const auto r = find_largest_completing_bc_swath(g, cluster, parts, roots);
  EXPECT_GE(r.largest_completing, 1u);
  if (r.smallest_failing != 0) {
    EXPECT_GT(r.smallest_failing, r.largest_completing);
  }
  EXPECT_GT(r.probes, 1u);
}

TEST(WriteCsv, CreatesFileUnderResultsDir) {
  // Redirect results into a temp dir for the test process would require env
  // manipulation before first env() call; instead just exercise the path.
  write_csv("unit_test_artifact", [](CsvWriter& w) {
    w.header({"a", "b"});
    w.field("x").field(1.5).end_row();
  });
  const auto path = std::filesystem::path(env().results_dir) / "unit_test_artifact.csv";
  EXPECT_TRUE(std::filesystem::exists(path));
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "a,b");
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace pregel::harness
