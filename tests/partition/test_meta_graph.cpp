// Meta-graph construction determinism and the predictive planner's decision
// logic (docs/SUBGRAPH.md). The meta-graph is a pure function of (graph,
// location table): the same inputs must yield structurally equal meta-graphs
// no matter how many times, at what parallelism, or after which sequence of
// migration re-bases the location table was produced.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "partition/meta_graph.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"

namespace pregel {
namespace {

TEST(MetaGraph, CountsMatchHandComputedRing) {
  // ring_graph(8) split into 4 contiguous pairs: each partition has 2
  // vertices, 2 internal arcs (the pair's two directions), and one crossing
  // arc to each ring neighbor partition.
  const Graph g = ring_graph(8);
  std::vector<PartitionId> part_of = {0, 0, 1, 1, 2, 2, 3, 3};
  const MetaGraph m(g, part_of, 4, /*bytes_per_boundary_message=*/8);

  ASSERT_EQ(m.num_partitions(), 4u);
  for (PartitionId p = 0; p < 4; ++p) {
    EXPECT_EQ(m.nodes()[p].vertices, 2u) << "partition " << p;
    EXPECT_EQ(m.nodes()[p].internal_arcs, 2u) << "partition " << p;
    const auto out = m.out_edges(p);
    ASSERT_EQ(out.size(), 2u) << "partition " << p;
    for (const MetaEdge& e : out) {
      EXPECT_EQ(e.src, p);
      EXPECT_EQ(e.multiplicity, 1u);
      EXPECT_EQ(e.weight_bytes, 8u);
    }
  }
  EXPECT_EQ(m.total_cut_arcs(), 8u);   // 4 partition seams x 2 directions
  EXPECT_EQ(m.total_cut_bytes(), 64u);
}

TEST(MetaGraph, EdgesSortedAndRepeatedBuildsEqual) {
  const Graph g = barabasi_albert(600, 3, 41);
  const auto parts = HashPartitioner{}.partition(g, 8);
  const MetaGraph a(g, parts.assignment(), 8, 8);
  const MetaGraph b(g, parts.assignment(), 8, 8);
  EXPECT_TRUE(a == b);
  EXPECT_TRUE(std::is_sorted(a.edges().begin(), a.edges().end(),
                             [](const MetaEdge& x, const MetaEdge& y) {
                               return x.src != y.src ? x.src < y.src : x.dst < y.dst;
                             }));
  // CSR slices tile the edge list exactly.
  std::size_t covered = 0;
  for (PartitionId p = 0; p < 8; ++p) covered += a.out_edges(p).size();
  EXPECT_EQ(covered, a.edges().size());
}

TEST(MetaGraph, RebaseEquivalentToFreshBuild) {
  // Apply a batch of simulated moves to part_of, then compare: meta-graph
  // built from the mutated table == meta-graph built from an independently
  // constructed copy of the same table. Structural equality must not depend
  // on the history that produced the location table.
  const Graph g = erdos_renyi(400, 900, 47);
  const auto parts = HashPartitioner{}.partition(g, 8);
  std::vector<PartitionId> moved = parts.assignment();
  for (VertexId v = 0; v < 50; ++v) moved[v] = (moved[v] + 3) % 8;
  const std::vector<PartitionId> independent_copy(moved);
  const MetaGraph rebased(g, moved, 8, 8);
  const MetaGraph fresh(g, independent_copy, 8, 8);
  EXPECT_TRUE(rebased == fresh);

  // ...and the move batch must actually have changed the structure.
  const MetaGraph before(g, parts.assignment(), 8, 8);
  EXPECT_FALSE(rebased == before);
}

TEST(MetaGraph, ActivityAnnotationsExcludedFromEquality) {
  const Graph g = grid_graph(10, 10);
  const auto parts = HashPartitioner{}.partition(g, 4);
  MetaGraph a(g, parts.assignment(), 4, 8);
  MetaGraph b(g, parts.assignment(), 4, 8);
  a.record_activity(7, {1, 2, 3, 4});
  EXPECT_EQ(a.last_activity_superstep(), 7u);
  EXPECT_EQ(a.activity()[2], 3u);
  EXPECT_TRUE(a == b);  // annotations are observability, not structure
}

// ---------------------------------------------------------------------------
// MetaGraphPlanner decision logic, driven through hand-built signals (same
// fixture idiom as test_rebalance.cpp).

struct Fixture {
  Graph graph;
  std::vector<PartitionId> part_of;
  std::vector<std::uint32_t> placement;
  std::vector<std::vector<VertexId>> active;

  Fixture(Graph g, PartitionId parts, std::uint32_t workers,
          std::vector<std::vector<VertexId>> actives)
      : graph(std::move(g)), active(std::move(actives)) {
    part_of.assign(graph.num_vertices(), 0);
    for (PartitionId p = 0; p < parts; ++p)
      for (const VertexId v : active[p]) part_of[v] = p;
    placement.resize(parts);
    for (PartitionId p = 0; p < parts; ++p) placement[p] = p % workers;
  }

  RebalanceSignals signals(std::uint32_t workers) const {
    RebalanceSignals s;
    s.graph = &graph;
    s.part_of = &part_of;
    s.placement = &placement;
    s.workers = workers;
    s.active = active;
    return s;
  }
};

TEST(MetaGraphPlanner, MovesPredictedWaveOffTheHotVm) {
  // Path graph homed left-to-right: partition 0 (VM0) holds the whole
  // frontier, and every cut arc out of it lands on partition 1 (VM0 again
  // with 4 partitions on 2 VMs? no — placement is p % workers, so partition
  // 1 sits on VM1). Put the frontier on partitions 0 and 2 (both VM0) so
  // VM0 is hot, and expect moves toward VM1's partitions.
  Fixture f(path_graph(16), /*parts=*/4, /*workers=*/2,
            {{0, 1, 2, 3}, {}, {4, 5, 6, 7}, {}});
  MetaGraphPlanner planner(/*tolerance=*/0.05);
  const MigrationPlan plan = planner.plan(f.signals(2));
  ASSERT_FALSE(plan.empty());
  for (const VertexMove& m : plan.moves) {
    EXPECT_EQ(f.placement[m.from], 0u) << "donor must be the hot VM";
    EXPECT_EQ(f.placement[m.to], 1u) << "receiver must be the cool VM";
    EXPECT_EQ(f.part_of[m.vertex], m.from);
  }
}

TEST(MetaGraphPlanner, DeterministicAcrossCallsAndInstances) {
  Fixture f(barabasi_albert(200, 3, 17), 4, 2,
            {{0, 1, 2, 3, 4, 5, 6, 7}, {}, {8, 9, 10, 11}, {}});
  MetaGraphPlanner a(0.05), b(0.05);
  const MigrationPlan p1 = a.plan(f.signals(2));
  const MigrationPlan p2 = a.plan(f.signals(2));
  const MigrationPlan p3 = b.plan(f.signals(2));
  EXPECT_EQ(p1.moves, p2.moves);
  EXPECT_EQ(p1.moves, p3.moves);
}

TEST(MetaGraphPlanner, CacheRebuildOnlyOnLocationVersionBump) {
  Fixture f(barabasi_albert(200, 3, 17), 4, 2,
            {{0, 1, 2, 3, 4, 5, 6, 7}, {}, {8, 9, 10, 11}, {}});
  MetaGraphPlanner planner(0.05);
  RebalanceSignals s = f.signals(2);
  s.location_version = 1;
  (void)planner.plan(s);
  EXPECT_EQ(planner.rebuilds(), 1u);
  s.superstep = 5;  // same location table, later barrier: cache holds
  (void)planner.plan(s);
  EXPECT_EQ(planner.rebuilds(), 1u);
  s.location_version = 2;  // a migration was applied: cache is stale
  (void)planner.plan(s);
  EXPECT_EQ(planner.rebuilds(), 2u);
}

TEST(MetaGraphPlanner, RespectsMoveBudgetAndBalanceGuard) {
  Fixture f(barabasi_albert(300, 3, 23), 4, 2,
            {{0, 1, 2, 3, 4, 5, 6, 7, 8, 9}, {}, {10, 11, 12, 13}, {}});
  MetaGraphPlanner capped(/*tolerance=*/0.05, /*max_moves=*/3);
  const MigrationPlan plan = capped.plan(f.signals(2));
  EXPECT_LE(plan.moves.size(), 3u);

  // A symmetric frontier over a symmetric cut forecasts symmetric influx:
  // nothing moves.
  Fixture balanced(ring_graph(16), 4, 2,
                   {{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9, 10, 11}, {12, 13, 14, 15}});
  MetaGraphPlanner loose(/*tolerance=*/0.05);
  EXPECT_TRUE(loose.plan(balanced.signals(2)).empty());
}

TEST(MetaGraphPlanner, SingleWorkerOrIdleFrontierIsANoOp) {
  Fixture f(grid_graph(4, 4), 4, 2, {{0, 1, 2, 3}, {}, {4, 5}, {}});
  MetaGraphPlanner planner;
  EXPECT_TRUE(planner.plan(f.signals(1)).empty());
  Fixture idle(grid_graph(4, 4), 4, 2, {{}, {}, {}, {}});
  EXPECT_TRUE(planner.plan(idle.signals(2)).empty());
  EXPECT_EQ(planner.name(), "meta-graph");
}

}  // namespace
}  // namespace pregel
