// Migration planners are pure functions of their signals; these tests pin
// down the decision logic in isolation from the engine: imbalance math,
// donor/receiver selection, move budgets, balance guards, and determinism.
#include <gtest/gtest.h>

#include <algorithm>
#include <vector>

#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"

namespace pregel {
namespace {

/// A hand-built signal set: `actives[p]` lists each partition's active
/// vertices, placement is p mod workers over `parts` partitions.
struct Fixture {
  Graph graph;
  std::vector<PartitionId> part_of;
  std::vector<std::uint32_t> placement;
  std::vector<std::vector<VertexId>> active;

  Fixture(Graph g, PartitionId parts, std::uint32_t workers,
          std::vector<std::vector<VertexId>> actives)
      : graph(std::move(g)), active(std::move(actives)) {
    part_of.assign(graph.num_vertices(), 0);
    for (PartitionId p = 0; p < parts; ++p)
      for (const VertexId v : active[p]) part_of[v] = p;
    placement.resize(parts);
    for (PartitionId p = 0; p < parts; ++p) placement[p] = p % workers;
  }

  RebalanceSignals signals(std::uint32_t workers) const {
    RebalanceSignals s;
    s.graph = &graph;
    s.part_of = &part_of;
    s.placement = &placement;
    s.workers = workers;
    s.active = active;
    return s;
  }
};

TEST(ActiveImbalance, BalancedIsOneEmptyIsZero) {
  Fixture f(grid_graph(4, 4), /*parts=*/4, /*workers=*/2,
            {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  EXPECT_DOUBLE_EQ(active_imbalance(f.signals(2)), 1.0);

  Fixture empty(grid_graph(4, 4), 4, 2, {{}, {}, {}, {}});
  EXPECT_DOUBLE_EQ(active_imbalance(empty.signals(2)), 0.0);
}

TEST(ActiveImbalance, SkewedLoadReportsMaxOverMean) {
  // VM0 (parts 0,2): 6 actives. VM1 (parts 1,3): 2. mean = 4, max = 6.
  Fixture f(grid_graph(4, 4), 4, 2, {{0, 1, 2, 3}, {8}, {4, 5}, {9}});
  EXPECT_DOUBLE_EQ(active_imbalance(f.signals(2)), 1.5);
}

TEST(NoMigrationPlanner, NeverMoves) {
  Fixture f(grid_graph(4, 4), 4, 2, {{0, 1, 2, 3}, {}, {4, 5}, {}});
  NoMigrationPlanner p;
  EXPECT_TRUE(p.plan(f.signals(2)).empty());
  EXPECT_EQ(p.name(), "none");
}

TEST(ActivityGreedyPlanner, ShiftsLoadFromBusiestToIdlestVm) {
  // VM0 holds all 8 actives, VM1 none.
  Fixture f(grid_graph(4, 4), 4, 2, {{0, 1, 2, 3, 4, 5}, {}, {6, 7}, {}});
  ActivityGreedyPlanner planner(/*tolerance=*/0.05);
  const MigrationPlan plan = planner.plan(f.signals(2));
  ASSERT_FALSE(plan.empty());
  for (const VertexMove& m : plan.moves) {
    EXPECT_EQ(f.placement[m.from], 0u) << "donor must be the busy VM";
    EXPECT_EQ(f.placement[m.to], 1u) << "receiver must be the idle VM";
    EXPECT_EQ(f.part_of[m.vertex], m.from) << "move must name the vertex's home";
    // Planned movers must be active vertices — migrating idle state moves
    // bytes without moving any load.
    const auto& act = f.active[m.from];
    EXPECT_TRUE(std::find(act.begin(), act.end(), m.vertex) != act.end());
  }
  // Post-plan balance: apply the moves and recheck.
  Fixture after = f;
  for (const VertexMove& m : plan.moves) {
    auto& src = after.active[m.from];
    src.erase(std::find(src.begin(), src.end(), m.vertex));
    after.active[m.to].push_back(m.vertex);
    after.part_of[m.vertex] = m.to;
  }
  EXPECT_LT(active_imbalance(after.signals(2)), active_imbalance(f.signals(2)));
}

TEST(ActivityGreedyPlanner, BalancedInputProducesNoMoves) {
  Fixture f(grid_graph(4, 4), 4, 2, {{0, 1}, {2, 3}, {4, 5}, {6, 7}});
  ActivityGreedyPlanner planner(/*tolerance=*/0.2);
  EXPECT_TRUE(planner.plan(f.signals(2)).empty());
}

TEST(ActivityGreedyPlanner, RespectsMoveBudget) {
  std::vector<VertexId> many;
  for (VertexId v = 0; v < 12; ++v) many.push_back(v);
  Fixture f(grid_graph(4, 4), 4, 2, {many, {}, {}, {}});
  ActivityGreedyPlanner planner(/*tolerance=*/0.0, /*max_moves=*/3);
  const MigrationPlan plan = planner.plan(f.signals(2));
  EXPECT_LE(plan.moves.size(), 3u);
  EXPECT_FALSE(plan.empty());
}

TEST(ActivityGreedyPlanner, SingleWorkerOrNoActivityIsANoOp) {
  Fixture f(grid_graph(4, 4), 4, 1, {{0, 1, 2}, {}, {}, {}});
  ActivityGreedyPlanner planner;
  EXPECT_TRUE(planner.plan(f.signals(1)).empty());

  Fixture idle(grid_graph(4, 4), 4, 2, {{}, {}, {}, {}});
  EXPECT_TRUE(planner.plan(idle.signals(2)).empty());
}

TEST(ActivityGreedyPlanner, DeterministicAcrossCalls) {
  Fixture f(barabasi_albert(64, 3, 11), 4, 2, {{}, {}, {}, {}});
  for (VertexId v = 0; v < 40; ++v) f.active[0].push_back(v);
  ActivityGreedyPlanner planner(/*tolerance=*/0.1);
  const MigrationPlan a = planner.plan(f.signals(2));
  const MigrationPlan b = planner.plan(f.signals(2));
  ASSERT_EQ(a.moves.size(), b.moves.size());
  for (std::size_t i = 0; i < a.moves.size(); ++i) EXPECT_EQ(a.moves[i], b.moves[i]);
}

TEST(EdgeCutRefinePlanner, PullsVertexTowardItsNeighbors) {
  // Path 0-1-2-3-4-5: put vertex 2 alone in partition 1 while its neighbors
  // 1 and 3 live in partition 0 — the gain step must pull it home.
  Graph g = path_graph(6);
  std::vector<PartitionId> part_of = {0, 0, 1, 0, 0, 1};
  std::vector<std::uint32_t> placement = {0, 0};  // both partitions on VM0
  RebalanceSignals s;
  s.graph = &g;
  s.part_of = &part_of;
  s.placement = &placement;
  s.workers = 2;
  s.active = {{}, {2}};

  EdgeCutRefinePlanner planner;
  const MigrationPlan plan = planner.plan(s);
  ASSERT_EQ(plan.moves.size(), 1u);
  EXPECT_EQ(plan.moves[0].vertex, 2u);
  EXPECT_EQ(plan.moves[0].from, 1u);
  EXPECT_EQ(plan.moves[0].to, 0u);
}

TEST(EdgeCutRefinePlanner, BalanceGuardBlocksCrossVmPileup) {
  // Vertex 2's neighbors sit on the other VM, but that VM already carries
  // the whole active load: the cap must veto the cross-VM move.
  Graph g = path_graph(6);
  std::vector<PartitionId> part_of = {0, 0, 1, 0, 0, 1};
  std::vector<std::uint32_t> placement = {0, 1};  // partition 0 on VM0, 1 on VM1
  RebalanceSignals s;
  s.graph = &g;
  s.part_of = &part_of;
  s.placement = &placement;
  s.workers = 2;
  s.active = {{0, 1, 3, 4}, {2}};  // VM0 busy already

  EdgeCutRefinePlanner planner(/*max_moves=*/512, /*balance_tolerance=*/0.0);
  const MigrationPlan plan = planner.plan(s);
  for (const VertexMove& m : plan.moves) EXPECT_NE(m.vertex, 2u);
}

TEST(EdgeCutRefinePlanner, HonorsMoveBudget) {
  const Graph g = barabasi_albert(200, 3, 17);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<std::uint32_t> placement = {0, 1, 0, 1};
  RebalanceSignals s;
  s.graph = &g;
  s.part_of = &parts.assignment();
  s.placement = &placement;
  s.workers = 2;
  s.active.resize(4);
  for (VertexId v = 0; v < 200; ++v)
    s.active[parts.assignment()[v]].push_back(v);

  EdgeCutRefinePlanner planner(/*max_moves=*/5);
  EXPECT_LE(planner.plan(s).moves.size(), 5u);
}

TEST(EdgeCutRefinePlanner, TallyCacheHitsAcrossBarriersSamePlan) {
  // Same location table across consecutive barriers: the second plan() must
  // reuse the boundary tallies (cache_hits grows) and emit the same moves a
  // fresh planner computes from scratch.
  const Graph g = barabasi_albert(200, 3, 17);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<std::uint32_t> placement = {0, 1, 0, 1};
  RebalanceSignals s;
  s.graph = &g;
  s.part_of = &parts.assignment();
  s.placement = &placement;
  s.workers = 2;
  s.location_version = 3;
  s.active.resize(4);
  for (VertexId v = 0; v < 200; ++v)
    s.active[parts.assignment()[v]].push_back(v);

  EdgeCutRefinePlanner warm;
  const MigrationPlan first = warm.plan(s);
  const std::uint64_t hits_after_first = warm.cache_hits();
  s.superstep = 2;  // later barrier, unchanged location table
  const MigrationPlan second = warm.plan(s);
  EXPECT_GT(warm.cache_hits(), hits_after_first);

  EdgeCutRefinePlanner cold;
  const MigrationPlan fresh = cold.plan(s);
  EXPECT_EQ(second.moves, fresh.moves);
  EXPECT_EQ(first.moves, fresh.moves);
}

TEST(EdgeCutRefinePlanner, LocationVersionBumpInvalidatesTallyCache) {
  // A bumped location_version with a changed part_of must not replay stale
  // tallies: the plan must match what a fresh planner sees.
  const Graph g = path_graph(6);
  std::vector<PartitionId> part_of = {0, 0, 1, 0, 0, 1};
  std::vector<std::uint32_t> placement = {0, 0};
  RebalanceSignals s;
  s.graph = &g;
  s.part_of = &part_of;
  s.placement = &placement;
  s.workers = 2;
  s.location_version = 1;
  s.active = {{}, {2}};

  EdgeCutRefinePlanner planner;
  ASSERT_EQ(planner.plan(s).moves.size(), 1u);  // pulls 2 home to partition 0

  // Apply the move, as the executor would, and bump the version.
  part_of[2] = 0;
  s.location_version = 2;
  s.active = {{2}, {5}};
  const MigrationPlan after = planner.plan(s);
  EdgeCutRefinePlanner cold;
  const MigrationPlan fresh = cold.plan(s);
  EXPECT_EQ(after.moves, fresh.moves);
  for (const VertexMove& m : after.moves) EXPECT_NE(m.vertex, 2u);
}

}  // namespace
}  // namespace pregel
