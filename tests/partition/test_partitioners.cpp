#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"
#include "partition/streaming.hpp"

namespace pregel {
namespace {

TEST(Partitioning, ValidatesAssignmentRange) {
  EXPECT_THROW(Partitioning({0, 1, 5}, 2), std::logic_error);
  EXPECT_THROW(Partitioning({}, 0), std::logic_error);
  EXPECT_NO_THROW(Partitioning({0, 1, 1}, 2));
}

TEST(Partitioning, SizesAndMembers) {
  Partitioning p({0, 1, 0, 1, 1}, 2);
  const auto sizes = p.part_sizes();
  EXPECT_EQ(sizes[0], 2u);
  EXPECT_EQ(sizes[1], 3u);
  EXPECT_EQ(p.members(0), (std::vector<VertexId>{0, 2}));
  EXPECT_EQ(p.members(1), (std::vector<VertexId>{1, 3, 4}));
  EXPECT_THROW(p.members(2), std::logic_error);
}

TEST(HashPartitioner, CoversAllPartsRoughlyEvenly) {
  Graph g = erdos_renyi(8000, 20000, 1);
  const auto p = HashPartitioner{}.partition(g, 8);
  const auto sizes = p.part_sizes();
  const double expect = 1000.0;
  for (auto s : sizes) EXPECT_NEAR(static_cast<double>(s), expect, expect * 0.15);
}

TEST(HashPartitioner, DeterministicAndSeedSensitive) {
  Graph g = path_graph(100);
  const auto a = HashPartitioner{1}.partition(g, 4);
  const auto b = HashPartitioner{1}.partition(g, 4);
  const auto c = HashPartitioner{2}.partition(g, 4);
  EXPECT_EQ(a.assignment(), b.assignment());
  EXPECT_NE(a.assignment(), c.assignment());
}

TEST(RangePartitioner, ContiguousBalancedRanges) {
  Graph g = path_graph(10);
  const auto p = RangePartitioner{}.partition(g, 3);
  const auto sizes = p.part_sizes();
  EXPECT_EQ(std::accumulate(sizes.begin(), sizes.end(), VertexId{0}), 10u);
  for (auto s : sizes) {
    EXPECT_GE(s, 3u);
    EXPECT_LE(s, 4u);
  }
  // Monotone non-decreasing assignment over ids.
  for (VertexId v = 1; v < 10; ++v) EXPECT_GE(p.part_of(v), p.part_of(v - 1));
}

TEST(RangePartitioner, LowCutOnPath) {
  Graph g = path_graph(1000);
  const auto q = evaluate_partition(g, RangePartitioner{}.partition(g, 8));
  EXPECT_EQ(q.cut_arcs, 14u);  // 7 cut edges x 2 arcs
}

TEST(Quality, HashNearlyAllRemoteOnCluelessGraph) {
  Graph g = erdos_renyi(2000, 10000, 3);
  const auto q = evaluate_partition(g, HashPartitioner{}.partition(g, 8));
  // Random assignment to 8 parts leaves ~7/8 of edges remote.
  EXPECT_NEAR(q.remote_edge_fraction, 0.875, 0.03);
  EXPECT_LT(q.vertex_balance, 1.2);
}

TEST(Quality, MismatchedSizesThrow) {
  Graph g = path_graph(5);
  Partitioning p({0, 1}, 2);
  EXPECT_THROW(evaluate_partition(g, p), std::logic_error);
}

TEST(Quality, PerPartArraysConsistent) {
  Graph g = barabasi_albert(500, 3, 7);
  const auto p = HashPartitioner{}.partition(g, 4);
  const auto q = evaluate_partition(g, p);
  EdgeIndex arc_sum = 0, cut_sum = 0;
  VertexId v_sum = 0;
  for (PartitionId i = 0; i < 4; ++i) {
    arc_sum += q.part_arcs[i];
    cut_sum += q.part_cut_arcs[i];
    v_sum += q.part_vertices[i];
  }
  EXPECT_EQ(arc_sum, g.num_arcs());
  EXPECT_EQ(cut_sum, q.cut_arcs);
  EXPECT_EQ(v_sum, g.num_vertices());
}

class StreamingHeuristics : public ::testing::TestWithParam<StreamHeuristic> {};

TEST_P(StreamingHeuristics, ProducesCompleteBalancedAssignment) {
  Graph g = barabasi_albert(3000, 4, 11);
  StreamingPartitioner sp(GetParam());
  const auto p = sp.partition(g, 8);
  ASSERT_EQ(p.num_vertices(), g.num_vertices());
  const auto sizes = p.part_sizes();
  const double avg = 3000.0 / 8.0;
  for (auto s : sizes) EXPECT_LT(static_cast<double>(s), avg * 1.35)
      << to_string(GetParam());
}

INSTANTIATE_TEST_SUITE_P(All, StreamingHeuristics,
                         ::testing::Values(StreamHeuristic::kRandom,
                                           StreamHeuristic::kChunking,
                                           StreamHeuristic::kBalanced,
                                           StreamHeuristic::kGreedy,
                                           StreamHeuristic::kLinearGreedy,
                                           StreamHeuristic::kExpGreedy));

TEST(StreamingPartitioner, LdgBeatsRandomOnClusteredGraph) {
  Graph g = watts_strogatz(4000, 8, 0.05, 5);
  const auto random =
      evaluate_partition(g, StreamingPartitioner(StreamHeuristic::kRandom).partition(g, 8));
  const auto ldg = evaluate_partition(
      g, StreamingPartitioner(StreamHeuristic::kLinearGreedy).partition(g, 8));
  EXPECT_LT(ldg.remote_edge_fraction, random.remote_edge_fraction * 0.7);
}

TEST(StreamingPartitioner, BfsOrderHelpsGreedyWhenIdsAreShuffled) {
  // On a graph whose ids carry no locality, BFS arrival order ensures each
  // vertex has already-assigned neighbors, so greedy makes informed choices.
  Graph g = relabel_vertices(watts_strogatz(4000, 8, 0.05, 6), 99);
  const auto natural = evaluate_partition(
      g, StreamingPartitioner(StreamHeuristic::kLinearGreedy, StreamOrder::kNatural)
             .partition(g, 8));
  const auto bfs = evaluate_partition(
      g, StreamingPartitioner(StreamHeuristic::kLinearGreedy, StreamOrder::kBfs)
             .partition(g, 8));
  EXPECT_LT(bfs.remote_edge_fraction, natural.remote_edge_fraction + 0.05);
}

TEST(StreamingPartitioner, NaturalOrderExploitsIdLocality) {
  // The flip side: Watts-Strogatz natural ids ARE the ring lattice, so
  // natural-order LDG should be excellent there. This documents why the
  // dataset analogs shuffle labels before partitioning experiments.
  Graph g = watts_strogatz(4000, 8, 0.05, 6);
  const auto natural = evaluate_partition(
      g, StreamingPartitioner(StreamHeuristic::kLinearGreedy, StreamOrder::kNatural)
             .partition(g, 8));
  EXPECT_LT(natural.remote_edge_fraction, 0.15);
}

TEST(StreamingPartitioner, RejectsSlackBelowOne) {
  EXPECT_THROW(StreamingPartitioner(StreamHeuristic::kLinearGreedy, StreamOrder::kNatural,
                                    0.5),
               std::logic_error);
}

TEST(MultilevelPartitioner, PerfectCutOnTwoCliques) {
  // Two K10 cliques joined by one edge must split at the bridge.
  GraphBuilder b(20);
  for (VertexId u = 0; u < 10; ++u)
    for (VertexId v = u + 1; v < 10; ++v) b.add_edge(u, v);
  for (VertexId u = 10; u < 20; ++u)
    for (VertexId v = u + 1; v < 20; ++v) b.add_edge(u, v);
  b.add_edge(0, 10);
  Graph g = b.build();
  const auto q =
      evaluate_partition(g, MultilevelPartitioner{}.partition(g, 2));
  EXPECT_EQ(q.cut_arcs, 2u);  // the single bridge, both directions
  EXPECT_DOUBLE_EQ(q.vertex_balance, 1.0);
}

TEST(MultilevelPartitioner, GridSplitsWithLowCut) {
  Graph g = grid_graph(32, 32);
  const auto q = evaluate_partition(g, MultilevelPartitioner{}.partition(g, 4));
  // A perfect 4-way split of a 32x32 grid cuts 64 edges = 128 arcs out of
  // 3968 arcs (~3.2%); allow plenty of slack but demand far below hash (75%).
  EXPECT_LT(q.remote_edge_fraction, 0.15);
  EXPECT_LT(q.vertex_balance, 1.1);
}

TEST(MultilevelPartitioner, BeatsHashAndLdgOnSmallWorld) {
  Graph g = relabel_vertices(watts_strogatz(4000, 8, 0.05, 9), 123);
  const auto hash = evaluate_partition(g, HashPartitioner{}.partition(g, 8));
  const auto ldg = evaluate_partition(
      g, StreamingPartitioner(StreamHeuristic::kLinearGreedy).partition(g, 8));
  const auto ml = evaluate_partition(g, MultilevelPartitioner{}.partition(g, 8));
  EXPECT_LT(ml.remote_edge_fraction, ldg.remote_edge_fraction);
  EXPECT_LT(ldg.remote_edge_fraction, hash.remote_edge_fraction);
}

TEST(MultilevelPartitioner, RespectsBalanceTolerance) {
  Graph g = barabasi_albert(2000, 3, 13);
  MultilevelPartitioner::Options o;
  o.imbalance_tolerance = 1.05;
  const auto q = evaluate_partition(g, MultilevelPartitioner{o}.partition(g, 8));
  EXPECT_LT(q.vertex_balance, 1.10);  // small slop from coarse granularity
}

TEST(MultilevelPartitioner, SinglePartIsTrivial) {
  Graph g = path_graph(10);
  const auto p = MultilevelPartitioner{}.partition(g, 1);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(p.part_of(v), 0u);
}

TEST(MultilevelPartitioner, ValidatesOptions) {
  MultilevelPartitioner::Options bad;
  bad.imbalance_tolerance = 0.9;
  EXPECT_THROW(MultilevelPartitioner{bad}, std::logic_error);
}

TEST(MultilevelPartitioner, DeterministicInSeed) {
  Graph g = watts_strogatz(1000, 6, 0.1, 3);
  MultilevelPartitioner::Options o;
  o.seed = 99;
  const auto a = MultilevelPartitioner{o}.partition(g, 4);
  const auto b = MultilevelPartitioner{o}.partition(g, 4);
  EXPECT_EQ(a.assignment(), b.assignment());
}

// All partitioners, all part counts: every vertex assigned, all parts used.
class AllPartitioners
    : public ::testing::TestWithParam<std::tuple<int, PartitionId>> {};

TEST_P(AllPartitioners, CompleteAssignmentAllPartsNonEmpty) {
  const auto [which, parts] = GetParam();
  std::unique_ptr<Partitioner> p;
  switch (which) {
    case 0: p = std::make_unique<HashPartitioner>(); break;
    case 1: p = std::make_unique<RangePartitioner>(); break;
    case 2: p = std::make_unique<StreamingPartitioner>(); break;
    default: p = std::make_unique<MultilevelPartitioner>(); break;
  }
  Graph g = barabasi_albert(1200, 3, 21);
  const auto part = p->partition(g, parts);
  ASSERT_EQ(part.num_vertices(), g.num_vertices());
  const auto sizes = part.part_sizes();
  ASSERT_EQ(sizes.size(), parts);
  for (auto s : sizes) EXPECT_GT(s, 0u) << p->name();
}

INSTANTIATE_TEST_SUITE_P(Matrix, AllPartitioners,
                         ::testing::Combine(::testing::Range(0, 4),
                                            ::testing::Values<PartitionId>(2, 4, 8)));

}  // namespace
}  // namespace pregel
