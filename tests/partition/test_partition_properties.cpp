// Partitioning invariants swept across the full (partitioner x graph x k)
// grid: totals conserve, cut accounting is symmetric, balance bounds hold.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>
#include <tuple>

#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"
#include "partition/streaming.hpp"

namespace pregel {
namespace {

std::unique_ptr<Partitioner> make(int which) {
  switch (which) {
    case 0: return std::make_unique<HashPartitioner>(3);
    case 1: return std::make_unique<RangePartitioner>();
    case 2:
      return std::make_unique<StreamingPartitioner>(StreamHeuristic::kLinearGreedy);
    case 3:
      return std::make_unique<StreamingPartitioner>(StreamHeuristic::kExpGreedy,
                                                    StreamOrder::kBfs);
    default: return std::make_unique<MultilevelPartitioner>();
  }
}

Graph pick(int which) {
  switch (which) {
    case 0: return barabasi_albert(800, 3, 61);
    case 1: return relabel_vertices(watts_strogatz(700, 6, 0.1, 63), 9);
    default: return grid_graph(25, 30);
  }
}

class PartitionGrid
    : public ::testing::TestWithParam<std::tuple<int, int, PartitionId>> {};

TEST_P(PartitionGrid, QualityAccountingInvariants) {
  const auto [pw, gw, k] = GetParam();
  Graph g = pick(gw);
  const auto partitioner = make(pw);
  const auto p = partitioner->partition(g, k);
  const auto q = evaluate_partition(g, p);

  // Vertex totals conserve.
  EXPECT_EQ(std::accumulate(q.part_vertices.begin(), q.part_vertices.end(), VertexId{0}),
            g.num_vertices());
  // Arc totals conserve.
  EXPECT_EQ(std::accumulate(q.part_arcs.begin(), q.part_arcs.end(), EdgeIndex{0}),
            g.num_arcs());
  // Cut accounting: per-part cut arcs sum to the global count; the fraction
  // is their ratio; and on an undirected graph the cut is symmetric (each
  // cut edge contributes exactly two cut arcs).
  EXPECT_EQ(std::accumulate(q.part_cut_arcs.begin(), q.part_cut_arcs.end(), EdgeIndex{0}),
            q.cut_arcs);
  EXPECT_DOUBLE_EQ(q.remote_edge_fraction,
                   static_cast<double>(q.cut_arcs) / static_cast<double>(g.num_arcs()));
  EXPECT_EQ(q.cut_arcs % 2, 0u);
  // Balance factors are at least 1 and at most k (one part holding all).
  EXPECT_GE(q.vertex_balance, 1.0 - 1e-9);
  EXPECT_LE(q.vertex_balance, static_cast<double>(k) + 1e-9);
  EXPECT_GE(q.edge_balance, 1.0 - 1e-9);
}

TEST_P(PartitionGrid, DeterministicRepartition) {
  const auto [pw, gw, k] = GetParam();
  Graph g = pick(gw);
  const auto partitioner = make(pw);
  const auto a = partitioner->partition(g, k);
  const auto b = partitioner->partition(g, k);
  EXPECT_EQ(a.assignment(), b.assignment()) << partitioner->name();
}

INSTANTIATE_TEST_SUITE_P(Grid, PartitionGrid,
                         ::testing::Combine(::testing::Range(0, 5),
                                            ::testing::Range(0, 3),
                                            ::testing::Values<PartitionId>(2, 5, 8)));

}  // namespace
}  // namespace pregel
