#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

#include "graph/analysis.hpp"

namespace pregel {
namespace {

TEST(ErdosRenyi, ExactEdgeCount) {
  Graph g = erdos_renyi(100, 500, 1);
  EXPECT_EQ(g.num_vertices(), 100u);
  EXPECT_EQ(g.num_edges(), 500u);
}

TEST(ErdosRenyi, DeterministicInSeed) {
  Graph a = erdos_renyi(50, 100, 7);
  Graph b = erdos_renyi(50, 100, 7);
  Graph c = erdos_renyi(50, 100, 8);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  bool same_as_c = a.num_arcs() == c.num_arcs();
  for (VertexId v = 0; v < 50; ++v) {
    const auto na = a.out_neighbors(v), nb = b.out_neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
    if (same_as_c) {
      const auto nc = c.out_neighbors(v);
      same_as_c = std::equal(na.begin(), na.end(), nc.begin(), nc.end());
    }
  }
  EXPECT_FALSE(same_as_c);
}

TEST(ErdosRenyi, RejectsImpossibleEdgeCount) {
  EXPECT_THROW(erdos_renyi(4, 100, 1), std::logic_error);
  EXPECT_THROW(erdos_renyi(1, 0, 1), std::logic_error);
}

TEST(WattsStrogatz, ZeroBetaIsRingLattice) {
  Graph g = watts_strogatz(20, 4, 0.0, 1);
  EXPECT_EQ(g.num_edges(), 40u);  // n*k/2
  for (VertexId v = 0; v < 20; ++v) EXPECT_EQ(g.out_degree(v), 4u);
}

TEST(WattsStrogatz, RewiringPreservesApproxEdgeCount) {
  Graph g = watts_strogatz(200, 6, 0.3, 2);
  // Rewiring can drop an edge only on rare collision retries.
  EXPECT_GE(g.num_edges(), 580u);
  EXPECT_LE(g.num_edges(), 600u);
}

TEST(WattsStrogatz, ValidatesParameters) {
  EXPECT_THROW(watts_strogatz(10, 3, 0.1, 1), std::logic_error);   // odd k
  EXPECT_THROW(watts_strogatz(4, 6, 0.1, 1), std::logic_error);    // k >= n
  EXPECT_THROW(watts_strogatz(10, 4, 1.5, 1), std::logic_error);   // beta > 1
}

TEST(BarabasiAlbert, EdgeCountFormula) {
  const VertexId n = 500;
  const std::uint32_t m = 3;
  Graph g = barabasi_albert(n, m, 3);
  // clique(m+1) + (n - m - 1) * m edges, possibly minus rare dedupe hits.
  const EdgeIndex expect = static_cast<EdgeIndex>(m + 1) * m / 2 + (n - m - 1) * m;
  EXPECT_EQ(g.num_edges(), expect);
}

TEST(BarabasiAlbert, ProducesHubs) {
  Graph g = barabasi_albert(2000, 4, 5);
  const auto d = degree_stats(g);
  // Scale-free: max degree far above mean.
  EXPECT_GT(d.stats.max(), 8.0 * d.stats.mean());
}

TEST(BarabasiAlbert, ConnectedByConstruction) {
  Graph g = barabasi_albert(300, 2, 9);
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 1u);
}

TEST(Rmat, HitsTargetEdges) {
  Graph g = rmat({.scale = 10, .target_edges = 4000}, 11);
  EXPECT_EQ(g.num_vertices(), 1024u);
  EXPECT_EQ(g.num_edges(), 4000u);
}

TEST(Rmat, SkewedDegreeDistribution) {
  Graph g = rmat({.scale = 12, .target_edges = 30000}, 13);
  const auto d = degree_stats(g);
  EXPECT_GT(d.stats.max(), 5.0 * d.stats.mean());
}

TEST(Rmat, ValidatesProbabilities) {
  EXPECT_THROW(rmat({.scale = 8, .target_edges = 100, .a = 0.9, .b = 0.9}, 1),
               std::logic_error);
}

TEST(Shapes, PathGraph) {
  Graph g = path_graph(5);
  EXPECT_EQ(g.num_edges(), 4u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(2), 2u);
}

TEST(Shapes, RingGraph) {
  Graph g = ring_graph(6);
  EXPECT_EQ(g.num_edges(), 6u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 2u);
}

TEST(Shapes, StarGraph) {
  Graph g = star_graph(10);
  EXPECT_EQ(g.num_edges(), 9u);
  EXPECT_EQ(g.out_degree(0), 9u);
  EXPECT_EQ(g.out_degree(5), 1u);
}

TEST(Shapes, GridGraph) {
  Graph g = grid_graph(3, 4);
  EXPECT_EQ(g.num_vertices(), 12u);
  EXPECT_EQ(g.num_edges(), 3u * 3 + 2u * 4);  // horizontal + vertical
}

TEST(Shapes, CompleteGraph) {
  Graph g = complete_graph(6);
  EXPECT_EQ(g.num_edges(), 15u);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.out_degree(v), 5u);
}

TEST(Shapes, BinaryTree) {
  Graph g = binary_tree(7);
  EXPECT_EQ(g.num_edges(), 6u);
  EXPECT_EQ(g.out_degree(0), 2u);
  EXPECT_EQ(g.out_degree(3), 1u);  // leaf
}

TEST(DatasetAnalogs, SpecsMatchPaperTable1) {
  const auto& specs = paper_datasets();
  ASSERT_EQ(specs.size(), 4u);
  EXPECT_EQ(specs[0].short_name, "SD");
  EXPECT_EQ(specs[0].paper_vertices, 82168u);
  EXPECT_EQ(specs[0].paper_edges, 948464u);
  EXPECT_DOUBLE_EQ(specs[3].paper_eff_diameter, 6.5);
}

TEST(DatasetAnalogs, UnknownNameThrows) {
  EXPECT_THROW(dataset_analog("XX"), std::invalid_argument);
}

// Each analog should land near the paper's scaled-down |V| and |E|.
class AnalogSizes : public ::testing::TestWithParam<std::string> {};

TEST_P(AnalogSizes, SizesNearPaperScaledValues) {
  const std::string name = GetParam();
  const DatasetSpec* spec = nullptr;
  for (const auto& s : paper_datasets())
    if (s.short_name == name) spec = &s;
  ASSERT_NE(spec, nullptr);
  const unsigned div = 50;  // keep the test fast; benches use 10
  Graph g = dataset_analog(name, div, 2013);
  const double v_target = static_cast<double>(spec->paper_vertices) / div;
  const double e_target = static_cast<double>(spec->paper_edges) / div;
  EXPECT_NEAR(static_cast<double>(g.num_vertices()), v_target, v_target * 0.02);
  EXPECT_NEAR(static_cast<double>(g.num_edges()), e_target, e_target * 0.30);
}

INSTANTIATE_TEST_SUITE_P(All, AnalogSizes, ::testing::Values("SD", "WG", "CP", "LJ"));

}  // namespace
}  // namespace pregel
