#include "graph/analysis.hpp"

#include <gtest/gtest.h>

#include <numeric>

#include "graph/generators.hpp"

namespace pregel {
namespace {

TEST(Bfs, DistancesOnPath) {
  Graph g = path_graph(5);
  const auto d = bfs_distances(g, 0);
  for (VertexId v = 0; v < 5; ++v) EXPECT_EQ(d[v], v);
}

TEST(Bfs, UnreachableMarked) {
  Graph g = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build();
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[1], 1u);
  EXPECT_EQ(d[2], kUnreachable);
  EXPECT_EQ(d[3], kUnreachable);
}

TEST(Bfs, RejectsBadSource) {
  Graph g = path_graph(3);
  EXPECT_THROW(bfs_distances(g, 99), std::logic_error);
}

TEST(Bfs, RingDistancesWrap) {
  Graph g = ring_graph(8);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[4], 4u);
  EXPECT_EQ(d[7], 1u);
}

TEST(ConnectedComponents, SingleComponent) {
  Graph g = ring_graph(10);
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 1u);
  EXPECT_EQ(cc.giant_size, 10u);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(cc.component[v], 0u);
}

TEST(ConnectedComponents, MultipleComponents) {
  Graph g = GraphBuilder(6).add_edge(0, 1).add_edge(2, 3).build();  // 4,5 isolated
  const auto cc = connected_components(g);
  EXPECT_EQ(cc.count, 4u);
  EXPECT_EQ(cc.giant_size, 2u);
  EXPECT_EQ(cc.component[0], cc.component[1]);
  EXPECT_NE(cc.component[0], cc.component[2]);
  EXPECT_EQ(cc.component[4], 4u);
}

TEST(DegreeStats, StarGraph) {
  Graph g = star_graph(11);
  const auto d = degree_stats(g);
  EXPECT_EQ(d.max_degree_vertex, 0u);
  EXPECT_DOUBLE_EQ(d.stats.max(), 10.0);
  EXPECT_DOUBLE_EQ(d.stats.mean(), 20.0 / 11.0);
  EXPECT_EQ(d.histogram.total(), 11u);
}

TEST(EffectiveDiameter, PathGraphKnownValue) {
  // Path of 11 vertices: distances 1..10 from the ends; with all sources
  // sampled the pairwise distance distribution is exact.
  Graph g = path_graph(11);
  const auto r = effective_diameter(g, 11, 1);
  EXPECT_EQ(r.max_seen, 10u);
  EXPECT_GT(r.effective_90, 6.0);
  EXPECT_LE(r.effective_90, 10.0);
}

TEST(EffectiveDiameter, CompleteGraphIsOne) {
  Graph g = complete_graph(20);
  const auto r = effective_diameter(g, 20, 1);
  EXPECT_EQ(r.max_seen, 1u);
  EXPECT_NEAR(r.effective_90, 0.9, 0.11);  // interpolated within hop 1
  EXPECT_DOUBLE_EQ(r.mean_distance, 1.0);
}

TEST(EffectiveDiameter, SmallWorldIsSmall) {
  Graph g = barabasi_albert(3000, 4, 17);
  const auto r = effective_diameter(g, 64, 3);
  EXPECT_LT(r.effective_90, 6.0);
  EXPECT_GT(r.effective_90, 1.5);
}

TEST(ClusteringCoefficient, CompleteGraphIsOne) {
  Graph g = complete_graph(10);
  EXPECT_NEAR(clustering_coefficient(g, 10, 1), 1.0, 1e-9);
}

TEST(ClusteringCoefficient, TreeIsZero) {
  Graph g = binary_tree(31);
  EXPECT_DOUBLE_EQ(clustering_coefficient(g, 31, 1), 0.0);
}

TEST(ClusteringCoefficient, RingLatticeIsHalf) {
  // WS with beta=0 and k=4: each vertex's 4 neighbors share 3 of the 6
  // possible links -> C = 0.5.
  Graph g = watts_strogatz(100, 4, 0.0, 1);
  EXPECT_NEAR(clustering_coefficient(g, 100, 1), 0.5, 1e-9);
}

TEST(ReferencePagerank, SumsToOne) {
  Graph g = barabasi_albert(200, 3, 21);
  const auto pr = reference_pagerank(g, 30);
  const double sum = std::accumulate(pr.begin(), pr.end(), 0.0);
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(ReferencePagerank, UniformOnRing) {
  Graph g = ring_graph(10);
  const auto pr = reference_pagerank(g, 50);
  for (double v : pr) EXPECT_NEAR(v, 0.1, 1e-9);
}

TEST(ReferencePagerank, HubScoresHigher) {
  Graph g = star_graph(10);
  const auto pr = reference_pagerank(g, 50);
  for (VertexId v = 1; v < 10; ++v) EXPECT_GT(pr[0], pr[v]);
}

TEST(ReferenceBetweenness, PathGraphCenterHighest) {
  // Path 0-1-2-3-4: BC (undirected, unnormalized, both directions counted)
  // for center = 2*(2*3)/... compute directly: vertex 2 lies on pairs
  // {0,1}x{3,4} and more precisely pairs (0,3),(0,4),(1,3),(1,4) in both
  // orders -> 8; vertex 1 on (0,2),(0,3),(0,4) both orders -> 6.
  Graph g = path_graph(5);
  const auto bc = reference_betweenness(g);
  EXPECT_DOUBLE_EQ(bc[0], 0.0);
  EXPECT_DOUBLE_EQ(bc[4], 0.0);
  EXPECT_DOUBLE_EQ(bc[1], 6.0);
  EXPECT_DOUBLE_EQ(bc[2], 8.0);
  EXPECT_DOUBLE_EQ(bc[3], 6.0);
}

TEST(ReferenceBetweenness, StarCenterDominates) {
  // Star with n leaves: center lies on all leaf-pair shortest paths:
  // (n-1)(n-2) ordered pairs.
  Graph g = star_graph(8);
  const auto bc = reference_betweenness(g);
  EXPECT_DOUBLE_EQ(bc[0], 7.0 * 6.0);
  for (VertexId v = 1; v < 8; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
}

TEST(ReferenceBetweenness, RingSymmetric) {
  Graph g = ring_graph(7);
  const auto bc = reference_betweenness(g);
  for (VertexId v = 1; v < 7; ++v) EXPECT_NEAR(bc[v], bc[0], 1e-9);
  EXPECT_GT(bc[0], 0.0);
}

TEST(ReferenceBetweenness, SubsetOfRootsIsPartialSum) {
  Graph g = barabasi_albert(60, 2, 5);
  const auto full = reference_betweenness(g);
  std::vector<VertexId> all(60);
  std::iota(all.begin(), all.end(), VertexId{0});
  auto sum = reference_betweenness(g, {0, 1, 2});
  const auto rest = reference_betweenness(
      g, std::vector<VertexId>(all.begin() + 3, all.end()));
  for (VertexId v = 0; v < 60; ++v) EXPECT_NEAR(sum[v] + rest[v], full[v], 1e-6);
}

TEST(ReferenceApsp, MatchesBfs) {
  Graph g = watts_strogatz(80, 4, 0.2, 3);
  const std::vector<VertexId> roots{0, 5, 42};
  const auto apsp = reference_apsp(g, roots);
  ASSERT_EQ(apsp.size(), 3u);
  for (std::size_t i = 0; i < roots.size(); ++i) {
    const auto d = bfs_distances(g, roots[i]);
    EXPECT_EQ(apsp[i], d);
  }
}

// Property: on any connected undirected graph, total BC mass equals
// sum over ordered pairs (s,t) of (number of intermediate hops weighted by
// path multiplicity) — we check the weaker invariant that per-root BC from
// the reference decomposes additively (already covered) and that BC is
// non-negative and zero on degree-1 "leaf" vertices of a tree.
TEST(ReferenceBetweenness, TreeLeavesScoreZero) {
  Graph g = binary_tree(15);
  const auto bc = reference_betweenness(g);
  for (VertexId v = 7; v < 15; ++v) EXPECT_DOUBLE_EQ(bc[v], 0.0);
  EXPECT_GT(bc[0], 0.0);
}

}  // namespace
}  // namespace pregel
