// Planted-partition generator + METIS file-format round trips, and the
// community algorithms validated against planted ground truth.
#include <gtest/gtest.h>

#include <map>
#include <sstream>

#include "algos/label_propagation.hpp"
#include "algos/semi_clustering.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "partition/partitioner.hpp"

namespace pregel {
namespace {

TEST(PlantedPartition, CommunityOfMapsBlocks) {
  EXPECT_EQ(planted_community_of(0, 100, 4), 0u);
  EXPECT_EQ(planted_community_of(24, 100, 4), 0u);
  EXPECT_EQ(planted_community_of(25, 100, 4), 1u);
  EXPECT_EQ(planted_community_of(99, 100, 4), 3u);
}

TEST(PlantedPartition, ValidatesParameters) {
  EXPECT_THROW(planted_partition(10, 0, 0.5, 0.1, 1), std::logic_error);
  EXPECT_THROW(planted_partition(10, 11, 0.5, 0.1, 1), std::logic_error);
  EXPECT_THROW(planted_partition(10, 2, 1.5, 0.1, 1), std::logic_error);
}

TEST(PlantedPartition, IntraEdgesDominate) {
  Graph g = planted_partition(400, 4, 0.20, 0.005, 7);
  std::uint64_t intra = 0, inter = 0;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.out_neighbors(u)) {
      if (planted_community_of(u, 400, 4) == planted_community_of(v, 400, 4)) ++intra;
      else ++inter;
    }
  EXPECT_GT(intra, 8 * inter);
}

TEST(PlantedPartition, ExpectedDensity) {
  // 600 vertices, 3 communities of 200: expected intra edges
  // 3 * C(200,2) * p_in; allow 10% tolerance.
  Graph g = planted_partition(600, 3, 0.10, 0.0, 11);
  const double expected = 3.0 * (200.0 * 199.0 / 2.0) * 0.10;
  EXPECT_NEAR(static_cast<double>(g.num_edges()), expected, expected * 0.10);
}

TEST(LabelPropagationBsp, RecoversPlantedCommunities) {
  Graph g = planted_partition(300, 3, 0.25, 0.004, 13);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  const auto r = algos::run_label_propagation(g, c, parts, 10);
  // Within each planted block, the plurality label should cover most members.
  for (std::uint32_t block = 0; block < 3; ++block) {
    std::map<VertexId, int> freq;
    int total = 0;
    for (VertexId v = 0; v < 300; ++v) {
      if (planted_community_of(v, 300, 3) != block) continue;
      ++freq[r.values[v].label];
      ++total;
    }
    int best = 0;
    for (const auto& [label, count] : freq) best = std::max(best, count);
    EXPECT_GT(best, total * 8 / 10) << "block " << block;
  }
}

TEST(SemiClusteringBsp, BestClustersStayWithinPlantedBlocks) {
  Graph g = planted_partition(120, 3, 0.3, 0.01, 17);
  const auto parts = HashPartitioner{}.partition(g, 4);
  ClusterConfig c;
  c.num_partitions = 4;
  c.initial_workers = 4;
  // f_B must sit below 1/(pair boundary) ~ 1/(2*avg_degree) or two-member
  // clusters score negative and greedy growth stalls at singletons: with
  // p_in=0.3 the block degree is ~12, so f_B=0.02 lets pairs score positive.
  const auto r = algos::run_semi_clustering(g, c, parts, 6, 4, 6, 0.02);
  int aligned = 0, crossing = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.values[v].clusters.empty()) continue;
    const auto& best = r.values[v].clusters.front();
    if (best.members.size() < 2) continue;
    bool crosses = false;
    const auto home = planted_community_of(best.members[0], 120, 3);
    for (VertexId m : best.members)
      crosses |= planted_community_of(m, 120, 3) != home;
    (crosses ? crossing : aligned) += 1;
  }
  EXPECT_GT(aligned, 10 * std::max(crossing, 1) / 2);  // aligned >> crossing
}

TEST(MetisIo, RoundTrip) {
  Graph g = planted_partition(80, 2, 0.3, 0.02, 19);
  std::ostringstream out;
  write_metis(g, out);
  std::istringstream in(out.str());
  Graph h = read_metis(in);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v), b = h.out_neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << v;
  }
}

TEST(MetisIo, ParsesKnownFile) {
  // The classic 7-vertex example from the METIS manual (unweighted).
  std::istringstream in(
      "% example graph\n"
      "7 11\n"
      "5 3 2\n"
      "1 3 4\n"
      "5 4 2 1\n"
      "2 3 6 7\n"
      "1 3 6\n"
      "5 4 7\n"
      "6 4\n");
  Graph g = read_metis(in);
  EXPECT_EQ(g.num_vertices(), 7u);
  EXPECT_EQ(g.num_edges(), 11u);
  EXPECT_EQ(g.out_degree(3), 4u);  // vertex "4" in 1-based notation
}

TEST(MetisIo, RejectsMalformedInputs) {
  {
    std::istringstream in("not a header\n");
    EXPECT_THROW(read_metis(in), std::runtime_error);
  }
  {
    std::istringstream in("2 1 011\n2\n1\n");  // weighted fmt
    EXPECT_THROW(read_metis(in), std::runtime_error);
  }
  {
    std::istringstream in("2 1\n3\n1\n");  // neighbor out of range
    EXPECT_THROW(read_metis(in), std::runtime_error);
  }
  {
    std::istringstream in("3 1\n2\n1\n");  // missing adjacency line
    EXPECT_THROW(read_metis(in), std::runtime_error);
  }
  {
    std::istringstream in("2 5\n2\n1\n");  // edge count mismatch
    EXPECT_THROW(read_metis(in), std::runtime_error);
  }
}

TEST(MetisIo, RejectsDirectedWrite) {
  Graph g = GraphBuilder(2, /*undirected=*/false).add_edge(0, 1).build();
  std::ostringstream out;
  EXPECT_THROW(write_metis(g, out), std::invalid_argument);
}

TEST(MetisIo, FileHelpers) {
  EXPECT_THROW(read_metis_file("/nonexistent/graph.metis"), std::runtime_error);
}

}  // namespace
}  // namespace pregel
