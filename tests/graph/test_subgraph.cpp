#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"

namespace pregel {
namespace {

TEST(InducedSubgraph, KeepsInternalEdgesOnly) {
  // Path 0-1-2-3-4; take {1,2,3}: edges 1-2 and 2-3 survive.
  Graph g = path_graph(5);
  Graph s = induced_subgraph(g, {1, 2, 3});
  EXPECT_EQ(s.num_vertices(), 3u);
  EXPECT_EQ(s.num_edges(), 2u);
  EXPECT_EQ(s.out_degree(1), 2u);  // old vertex 2 -> new id 1
}

TEST(InducedSubgraph, RemapFollowsGivenOrder) {
  Graph g = path_graph(5);
  Graph s = induced_subgraph(g, {3, 1, 2});  // new ids: 3->0, 1->1, 2->2
  // Edge 1-2 -> new 1-2; edge 2-3 -> new 2-0.
  const auto n0 = s.out_neighbors(0);
  ASSERT_EQ(n0.size(), 1u);
  EXPECT_EQ(n0[0], 2u);
}

TEST(InducedSubgraph, ValidatesInput) {
  Graph g = path_graph(3);
  EXPECT_THROW(induced_subgraph(g, {0, 5}), std::logic_error);
  EXPECT_THROW(induced_subgraph(g, {0, 0}), std::logic_error);
}

TEST(InducedSubgraph, EmptySelection) {
  Graph g = path_graph(3);
  Graph s = induced_subgraph(g, {});
  EXPECT_EQ(s.num_vertices(), 0u);
}

TEST(InducedSubgraph, DirectedPreserved) {
  Graph g = GraphBuilder(4, false).add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).build();
  Graph s = induced_subgraph(g, {0, 1});
  EXPECT_FALSE(s.undirected());
  EXPECT_EQ(s.num_arcs(), 1u);  // only 0->1
  EXPECT_EQ(s.out_neighbors(0)[0], 1u);
}

TEST(LargestComponent, ExtractsGiant) {
  // Triangle {0,1,2} + edge {3,4} + isolated 5.
  Graph g = GraphBuilder(6)
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(2, 0)
                .add_edge(3, 4)
                .build();
  Graph giant = largest_component_subgraph(g);
  EXPECT_EQ(giant.num_vertices(), 3u);
  EXPECT_EQ(giant.num_edges(), 3u);
  const auto cc = connected_components(giant);
  EXPECT_EQ(cc.count, 1u);
}

TEST(LargestComponent, ConnectedGraphIsIdentitySized) {
  Graph g = barabasi_albert(200, 2, 3);
  Graph giant = largest_component_subgraph(g);
  EXPECT_EQ(giant.num_vertices(), g.num_vertices());
  EXPECT_EQ(giant.num_edges(), g.num_edges());
}

TEST(LargestComponent, TieBreaksDeterministically) {
  // Two components of equal size: {0,1} and {2,3}; smallest label wins.
  Graph g = GraphBuilder(4).add_edge(0, 1).add_edge(2, 3).build();
  Graph giant = largest_component_subgraph(g);
  EXPECT_EQ(giant.num_vertices(), 2u);
  // Members were 0 and 1 (component label 0).
  EXPECT_EQ(giant.num_edges(), 1u);
}

}  // namespace
}  // namespace pregel
