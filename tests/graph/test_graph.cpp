#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>
#include <stdexcept>
#include <vector>

namespace pregel {
namespace {

TEST(GraphBuilder, EmptyGraph) {
  Graph g = GraphBuilder(0).build();
  EXPECT_TRUE(g.empty());
  EXPECT_EQ(g.num_vertices(), 0u);
  EXPECT_EQ(g.num_arcs(), 0u);
}

TEST(GraphBuilder, RejectsOutOfRangeVertex) {
  GraphBuilder b(3);
  EXPECT_THROW(b.add_edge(0, 3), std::invalid_argument);
  EXPECT_THROW(b.add_edge(3, 0), std::invalid_argument);
  EXPECT_NO_THROW(b.add_edge(0, 2));
}

TEST(GraphBuilder, UndirectedSymmetrizes) {
  Graph g = GraphBuilder(3).add_edge(0, 1).add_edge(1, 2).build();
  EXPECT_TRUE(g.undirected());
  EXPECT_EQ(g.num_arcs(), 4u);
  EXPECT_EQ(g.num_edges(), 2u);
  const auto n1 = g.out_neighbors(1);
  EXPECT_EQ(std::set<VertexId>(n1.begin(), n1.end()), (std::set<VertexId>{0, 2}));
}

TEST(GraphBuilder, DirectedKeepsOrientation) {
  Graph g = GraphBuilder(3, /*undirected=*/false).add_edge(0, 1).add_edge(1, 2).build();
  EXPECT_FALSE(g.undirected());
  EXPECT_EQ(g.num_arcs(), 2u);
  EXPECT_EQ(g.num_edges(), 2u);
  EXPECT_EQ(g.out_degree(0), 1u);
  EXPECT_EQ(g.out_degree(2), 0u);
}

TEST(GraphBuilder, DeduplicatesParallelEdges) {
  Graph g = GraphBuilder(2).add_edge(0, 1).add_edge(0, 1).add_edge(1, 0).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, DropsSelfLoopsByDefault) {
  Graph g = GraphBuilder(2).add_edge(0, 0).add_edge(0, 1).build();
  EXPECT_EQ(g.num_edges(), 1u);
}

TEST(GraphBuilder, KeepSelfLoopsOptIn) {
  Graph g = GraphBuilder(2, /*undirected=*/false)
                .keep_self_loops()
                .add_edge(0, 0)
                .add_edge(0, 1)
                .build();
  EXPECT_EQ(g.num_arcs(), 2u);
}

TEST(GraphBuilder, AddEdgesSpan) {
  const std::vector<Edge> edges{{0, 1}, {1, 2}, {2, 3}};
  Graph g = GraphBuilder(4).add_edges(edges).build();
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(GraphBuilder, BuildResetsBuilder) {
  GraphBuilder b(2);
  b.add_edge(0, 1);
  EXPECT_EQ(b.pending_edges(), 1u);
  (void)b.build();
  EXPECT_EQ(b.pending_edges(), 0u);
  EXPECT_EQ(b.build().num_edges(), 0u);
}

TEST(Graph, NeighborsSortedAscending) {
  Graph g = GraphBuilder(5).add_edge(0, 4).add_edge(0, 2).add_edge(0, 1).build();
  const auto n0 = g.out_neighbors(0);
  EXPECT_TRUE(std::is_sorted(n0.begin(), n0.end()));
}

TEST(Graph, AverageDegree) {
  Graph g = GraphBuilder(4).add_edge(0, 1).add_edge(1, 2).add_edge(2, 3).build();
  EXPECT_DOUBLE_EQ(g.average_degree(), 6.0 / 4.0);
}

TEST(Graph, MemoryFootprintIsPositiveAndGrows) {
  Graph small = GraphBuilder(10).add_edge(0, 1).build();
  GraphBuilder bb(1000);
  for (VertexId i = 0; i + 1 < 1000; ++i) bb.add_edge(i, i + 1);
  Graph big = bb.build();
  EXPECT_GT(small.memory_footprint(), 0u);
  EXPECT_GT(big.memory_footprint(), small.memory_footprint());
}

TEST(Graph, SummaryAndName) {
  Graph g = GraphBuilder(3).add_edge(0, 1).build();
  g.set_name("tiny");
  EXPECT_NE(g.summary().find("tiny"), std::string::npos);
  EXPECT_NE(g.summary().find("n=3"), std::string::npos);
}

TEST(Graph, TransposeDirected) {
  Graph g = GraphBuilder(3, false).add_edge(0, 1).add_edge(0, 2).build();
  Graph t = g.transposed();
  EXPECT_EQ(t.out_degree(0), 0u);
  EXPECT_EQ(t.out_degree(1), 1u);
  EXPECT_EQ(t.out_neighbors(1)[0], 0u);
  EXPECT_EQ(t.out_neighbors(2)[0], 0u);
}

TEST(Graph, TransposeUndirectedIsIdentity) {
  Graph g = GraphBuilder(3).add_edge(0, 1).add_edge(1, 2).build();
  Graph t = g.transposed();
  EXPECT_EQ(t.num_arcs(), g.num_arcs());
  for (VertexId v = 0; v < 3; ++v) EXPECT_EQ(t.out_degree(v), g.out_degree(v));
}

// Degree-sum handshake property over assorted random builds.
class GraphHandshake : public ::testing::TestWithParam<int> {};

TEST_P(GraphHandshake, DegreeSumEqualsArcCount) {
  const int seed = GetParam();
  GraphBuilder b(50);
  // pseudo-random but deterministic edge pattern
  for (int i = 0; i < 200; ++i) {
    const auto u = static_cast<VertexId>((i * 7 + seed) % 50);
    const auto v = static_cast<VertexId>((i * 13 + seed * 3) % 50);
    if (u != v) b.add_edge(u, v);
  }
  Graph g = b.build();
  EdgeIndex sum = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) sum += g.out_degree(v);
  EXPECT_EQ(sum, g.num_arcs());
  EXPECT_EQ(g.num_arcs() % 2, 0u);  // undirected storage is symmetric
}

INSTANTIATE_TEST_SUITE_P(Seeds, GraphHandshake, ::testing::Range(0, 8));

}  // namespace
}  // namespace pregel
