#include <gtest/gtest.h>

#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/multilevel.hpp"
#include "partition/partitioner.hpp"
#include "partition/quality.hpp"
#include "partition/streaming.hpp"

namespace pregel {
namespace {

TEST(CitationGraph, ValidatesParameters) {
  EXPECT_THROW(citation_graph(1, 1, 10, 0.1, 1), std::logic_error);
  EXPECT_THROW(citation_graph(10, 0, 10, 0.1, 1), std::logic_error);
  EXPECT_THROW(citation_graph(10, 1, 0, 0.1, 1), std::logic_error);
  EXPECT_THROW(citation_graph(10, 1, 10, 1.5, 1), std::logic_error);
}

TEST(CitationGraph, EdgeCountNearTarget) {
  Graph g = citation_graph(5000, 4, 100, 0.05, 3);
  // (n-1) * k attempts minus dedupe losses.
  EXPECT_GT(g.num_edges(), 4u * 4999 * 9 / 10);
  EXPECT_LE(g.num_edges(), 4u * 4999);
}

TEST(CitationGraph, SingleComponentAndTemporalLocality) {
  Graph g = citation_graph(20000, 4, 200, 0.05, 5);
  EXPECT_EQ(connected_components(g).count, 1u);
  // Most edges connect near-in-time vertices: measure the median |u - v|.
  Percentiles offsets;
  for (VertexId u = 0; u < g.num_vertices(); ++u)
    for (VertexId v : g.out_neighbors(u))
      if (v > u) offsets.add(static_cast<double>(v - u));
  EXPECT_LT(offsets.median(), 250.0);  // window-bound for the recency mass
}

TEST(CitationGraph, OldCoreAccumulatesDegree) {
  Graph g = citation_graph(20000, 4, 200, 0.10, 7);
  // Early vertices receive the far-citation mass. The log-uniform tail
  // spreads it, so the enrichment is moderate (not hub-scale) — but it must
  // be consistently above the global mean, and the very first vertices
  // should be the most enriched.
  RunningStats early, first, all;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    all.add(g.out_degree(v));
    if (v < 200) early.add(g.out_degree(v));
    if (v < 20) first.add(g.out_degree(v));
  }
  EXPECT_GT(early.mean(), 1.1 * all.mean());
  EXPECT_GT(first.mean(), early.mean());
}

TEST(CitationGraph, SmallWorldDiameter) {
  Graph g = citation_graph(30000, 4, 200, 0.03, 9);
  const auto d = effective_diameter(g, 16, 3);
  EXPECT_GT(d.effective_90, 4.0);
  EXPECT_LT(d.effective_90, 16.0);
}

TEST(CitationGraph, PartitionCutRegimeMatchesPaperOrdering) {
  // Paper (cit-Patents, 8 parts): hash 86%, METIS 17%, streaming 65% —
  // streaming notably WORSE than METIS. The analog must preserve that
  // ordering with a wide METIS-vs-streaming gap.
  Graph g = citation_graph(40000, 4, 270, 0.03, 11);
  const auto qh = evaluate_partition(g, HashPartitioner{}.partition(g, 8));
  const auto qm = evaluate_partition(g, MultilevelPartitioner{}.partition(g, 8));
  const auto qs = evaluate_partition(g, StreamingPartitioner{}.partition(g, 8));
  EXPECT_GT(qh.remote_edge_fraction, 0.8);
  EXPECT_LT(qm.remote_edge_fraction, 0.2);
  EXPECT_GT(qs.remote_edge_fraction, qm.remote_edge_fraction * 2.0);
}

TEST(CitationGraph, DeterministicInSeed) {
  Graph a = citation_graph(2000, 3, 50, 0.05, 13);
  Graph b = citation_graph(2000, 3, 50, 0.05, 13);
  ASSERT_EQ(a.num_arcs(), b.num_arcs());
  for (VertexId v = 0; v < a.num_vertices(); ++v) {
    const auto na = a.out_neighbors(v), nb = b.out_neighbors(v);
    ASSERT_TRUE(std::equal(na.begin(), na.end(), nb.begin(), nb.end()));
  }
}

}  // namespace
}  // namespace pregel
