#include "graph/io.hpp"

#include <gtest/gtest.h>

#include <sstream>

#include "graph/generators.hpp"

namespace pregel {
namespace {

TEST(EdgeListIo, ParsesSnapFormat) {
  std::istringstream in(
      "# Directed graph: example\n"
      "# FromNodeId\tToNodeId\n"
      "0\t1\n"
      "1\t2\n"
      "\n"
      "2\t0\n");
  Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 3u);
}

TEST(EdgeListIo, CompactsSparseIds) {
  std::istringstream in("1000 2000\n2000 30\n");
  Graph g = read_edge_list(in);
  EXPECT_EQ(g.num_vertices(), 3u);
  EXPECT_EQ(g.num_edges(), 2u);
}

TEST(EdgeListIo, ThrowsOnMalformedLine) {
  std::istringstream in("0 1\nnot numbers\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, ThrowsOnMissingSecondColumn) {
  std::istringstream in("42\n");
  EXPECT_THROW(read_edge_list(in), std::runtime_error);
}

TEST(EdgeListIo, RoundTrip) {
  // BA graphs have no isolated vertices, which an edge list cannot represent.
  Graph g = barabasi_albert(40, 2, 5);
  std::ostringstream out;
  write_edge_list(g, out);
  std::istringstream in(out.str());
  Graph h = read_edge_list(in);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_edges(), g.num_edges());
}

TEST(EdgeListIo, MissingFileThrows) {
  EXPECT_THROW(read_edge_list_file("/nonexistent/x.txt"), std::runtime_error);
}

TEST(BinaryIo, RoundTripUndirected) {
  Graph g = barabasi_albert(120, 3, 7);
  const auto bytes = serialize_graph(g);
  Graph h = deserialize_graph(bytes);
  ASSERT_EQ(h.num_vertices(), g.num_vertices());
  ASSERT_EQ(h.num_arcs(), g.num_arcs());
  EXPECT_TRUE(h.undirected());
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto a = g.out_neighbors(v), b = h.out_neighbors(v);
    ASSERT_TRUE(std::equal(a.begin(), a.end(), b.begin(), b.end())) << "vertex " << v;
  }
}

TEST(BinaryIo, RoundTripDirected) {
  Graph g = GraphBuilder(4, false).add_edge(0, 1).add_edge(1, 2).add_edge(3, 0).build();
  Graph h = deserialize_graph(serialize_graph(g));
  EXPECT_FALSE(h.undirected());
  EXPECT_EQ(h.num_arcs(), 3u);
  EXPECT_EQ(h.out_neighbors(3)[0], 0u);
}

TEST(BinaryIo, RejectsCorruptMagic) {
  Graph g = path_graph(3);
  auto bytes = serialize_graph(g);
  bytes[0] = std::byte{0xFF};
  EXPECT_THROW(deserialize_graph(bytes), std::runtime_error);
}

TEST(BinaryIo, RejectsTruncated) {
  Graph g = path_graph(10);
  auto bytes = serialize_graph(g);
  bytes.resize(bytes.size() / 2);
  EXPECT_THROW(deserialize_graph(bytes), std::runtime_error);
}

TEST(BinaryIo, EmptyGraphRoundTrips) {
  Graph g = GraphBuilder(0).build();
  Graph h = deserialize_graph(serialize_graph(g));
  EXPECT_EQ(h.num_vertices(), 0u);
}

}  // namespace
}  // namespace pregel
