// Correctness tests for the extended algorithm set: triangle counting,
// Luby's maximal independent set, and Jones-Plassmann greedy coloring.
#include <gtest/gtest.h>

#include "algos/coloring.hpp"
#include "algos/mis.hpp"
#include "algos/triangles.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel::algos {
namespace {

ClusterConfig cluster(std::uint32_t parts = 4) {
  ClusterConfig c;
  c.num_partitions = parts;
  c.initial_workers = parts;
  return c;
}

// ---- Triangles --------------------------------------------------------------

TEST(ReferenceTriangles, KnownCounts) {
  EXPECT_EQ(reference_triangles(complete_graph(3)), 1u);
  EXPECT_EQ(reference_triangles(complete_graph(5)), 10u);  // C(5,3)
  EXPECT_EQ(reference_triangles(ring_graph(6)), 0u);
  EXPECT_EQ(reference_triangles(star_graph(10)), 0u);
  EXPECT_EQ(reference_triangles(binary_tree(15)), 0u);
}

TEST(TrianglesBsp, CompleteGraph) {
  Graph g = complete_graph(8);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_triangles(g, cluster(), parts);
  EXPECT_EQ(total_triangles(r), 56u);  // C(8,3)
}

TEST(TrianglesBsp, TriangleFreeGraphs) {
  for (Graph g : {ring_graph(10), star_graph(12), binary_tree(15), grid_graph(4, 4)}) {
    const auto parts = HashPartitioner{}.partition(g, 4);
    EXPECT_EQ(total_triangles(run_triangles(g, cluster(), parts)), 0u) << g.summary();
  }
}

class TriangleGraphs : public ::testing::TestWithParam<int> {};

TEST_P(TriangleGraphs, MatchesReference) {
  Graph g;
  switch (GetParam()) {
    case 0: g = barabasi_albert(300, 4, 3); break;
    case 1: g = watts_strogatz(400, 6, 0.1, 5); break;  // high clustering
    case 2: g = erdos_renyi(200, 1200, 7); break;
    default: g = rmat({.scale = 9, .target_edges = 2000}, 9); break;
  }
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_triangles(g, cluster(), parts);
  EXPECT_EQ(total_triangles(r), reference_triangles(g)) << g.summary();
}

INSTANTIATE_TEST_SUITE_P(Random, TriangleGraphs, ::testing::Range(0, 4));

TEST(TrianglesBsp, TwoSuperstepsOnly) {
  Graph g = watts_strogatz(200, 4, 0.1, 3);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_triangles(g, cluster(), parts);
  EXPECT_EQ(r.metrics.total_supersteps(), 2u);
}

// ---- Maximal independent set -------------------------------------------------

void expect_valid_mis(const Graph& g, const JobResult<MisProgram>& r) {
  // Independence: no two adjacent in-set vertices.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    if (r.values[v].state != MisProgram::State::kInSet) continue;
    for (VertexId u : g.out_neighbors(v))
      ASSERT_NE(r.values[u].state, MisProgram::State::kInSet)
          << "adjacent vertices " << v << " and " << u << " both in set";
  }
  // Maximality: every excluded vertex has an in-set neighbor; none undecided.
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.values[v].state, MisProgram::State::kUndecided) << v;
    if (r.values[v].state == MisProgram::State::kOut) {
      bool covered = false;
      for (VertexId u : g.out_neighbors(v))
        covered |= r.values[u].state == MisProgram::State::kInSet;
      ASSERT_TRUE(covered) << "vertex " << v << " out but uncovered";
    }
  }
}

class MisGraphs : public ::testing::TestWithParam<int> {};

TEST_P(MisGraphs, ProducesValidMaximalIndependentSet) {
  Graph g;
  switch (GetParam()) {
    case 0: g = path_graph(50); break;
    case 1: g = ring_graph(51); break;
    case 2: g = complete_graph(10); break;
    case 3: g = star_graph(20); break;
    case 4: g = barabasi_albert(500, 3, 5); break;
    case 5: g = watts_strogatz(400, 6, 0.2, 7); break;
    default: g = GraphBuilder(6).add_edge(0, 1).build(); break;  // mostly isolated
  }
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_mis(g, cluster(), parts, 11);
  expect_valid_mis(g, r);
}

INSTANTIATE_TEST_SUITE_P(Shapes, MisGraphs, ::testing::Range(0, 7));

TEST(MisBsp, CompleteGraphPicksExactlyOne) {
  Graph g = complete_graph(12);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_mis(g, cluster(), parts, 3);
  int in_set = 0;
  for (const auto& v : r.values) in_set += v.state == MisProgram::State::kInSet ? 1 : 0;
  EXPECT_EQ(in_set, 1);
}

TEST(MisBsp, IsolatedVerticesAllJoin) {
  Graph g = GraphBuilder(5).build();  // no edges
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_mis(g, cluster(2), parts, 3);
  for (const auto& v : r.values) EXPECT_EQ(v.state, MisProgram::State::kInSet);
}

TEST(MisBsp, DeterministicInSeed) {
  Graph g = barabasi_albert(200, 3, 9);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto a = run_mis(g, cluster(), parts, 5);
  const auto b = run_mis(g, cluster(), parts, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(a.values[v].state, b.values[v].state);
}

// ---- Greedy coloring ----------------------------------------------------------

void expect_proper_coloring(const Graph& g, const JobResult<ColoringProgram>& r,
                            std::uint32_t max_colors) {
  std::uint32_t used = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_NE(r.values[v].color, ColoringProgram::kUncolored) << v;
    used = std::max(used, r.values[v].color + 1);
    for (VertexId u : g.out_neighbors(v))
      ASSERT_NE(r.values[v].color, r.values[u].color)
          << "edge " << v << "-" << u << " monochromatic";
  }
  EXPECT_LE(used, max_colors);
}

class ColoringGraphs : public ::testing::TestWithParam<int> {};

TEST_P(ColoringGraphs, ProperColoringWithinDeltaPlusOne) {
  Graph g;
  switch (GetParam()) {
    case 0: g = path_graph(40); break;
    case 1: g = ring_graph(41); break;
    case 2: g = complete_graph(9); break;
    case 3: g = grid_graph(8, 8); break;
    case 4: g = barabasi_albert(400, 3, 13); break;
    default: g = watts_strogatz(300, 6, 0.15, 17); break;
  }
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_coloring(g, cluster(), parts, 7);
  const auto d = degree_stats(g);
  expect_proper_coloring(g, r, static_cast<std::uint32_t>(d.stats.max()) + 1);
}

INSTANTIATE_TEST_SUITE_P(Shapes, ColoringGraphs, ::testing::Range(0, 6));

TEST(ColoringBsp, CompleteGraphNeedsAllColors) {
  Graph g = complete_graph(7);
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_coloring(g, cluster(2), parts, 5);
  std::set<std::uint32_t> colors;
  for (const auto& v : r.values) colors.insert(v.color);
  EXPECT_EQ(colors.size(), 7u);
}

TEST(ColoringBsp, StateBytesReleasedAfterCommit) {
  Graph g = barabasi_albert(100, 4, 19);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_coloring(g, cluster(), parts, 23);
  for (const auto& v : r.values) EXPECT_TRUE(v.neighbor_colors.empty());
}

}  // namespace
}  // namespace pregel::algos
