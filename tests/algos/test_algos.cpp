// Algorithm correctness: every BSP program is validated against the trusted
// sequential reference implementations from graph/analysis.
#include <gtest/gtest.h>

#include <numeric>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/components.hpp"
#include "algos/kcore.hpp"
#include "algos/label_propagation.hpp"
#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/analysis.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel::algos {
namespace {

ClusterConfig cluster(std::uint32_t parts = 4) {
  ClusterConfig c;
  c.num_partitions = parts;
  c.initial_workers = parts;
  return c;
}

std::vector<VertexId> all_roots(const Graph& g) {
  std::vector<VertexId> roots(g.num_vertices());
  std::iota(roots.begin(), roots.end(), VertexId{0});
  return roots;
}

// ---- PageRank --------------------------------------------------------------

TEST(PageRankBsp, MatchesReferenceOnUndirected) {
  Graph g = barabasi_albert(200, 3, 7);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_pagerank(g, cluster(), parts, 20);
  const auto ref = reference_pagerank(g, 20);
  ASSERT_FALSE(r.failed);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].rank, ref[v], 1e-12) << "vertex " << v;
}

TEST(PageRankBsp, MatchesReferenceWithDanglingVertices) {
  // Directed graph with sinks exercises the aggregator/master path.
  GraphBuilder b(6, /*undirected=*/false);
  b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).add_edge(0, 3).add_edge(4, 0).add_edge(5, 2);
  Graph g = b.build();  // vertex 3 is a sink (dangling)
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_pagerank(g, cluster(2), parts, 25);
  const auto ref = reference_pagerank(g, 25);
  for (VertexId v = 0; v < 6; ++v) ASSERT_NEAR(r.values[v].rank, ref[v], 1e-12);
}

TEST(PageRankBsp, RanksSumToOne) {
  Graph g = watts_strogatz(300, 6, 0.1, 3);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_pagerank(g, cluster(), parts, 30);
  double sum = 0.0;
  for (const auto& v : r.values) sum += v.rank;
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(PageRankBsp, FlatMessageProfile) {
  // The paper's Figure 3 baseline: PageRank's per-superstep message count is
  // constant across iterations.
  Graph g = barabasi_albert(500, 4, 9);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_pagerank(g, cluster(), parts, 10);
  const auto& ss = r.metrics.supersteps;
  ASSERT_GE(ss.size(), 10u);
  const auto first = ss[0].messages_sent_total();
  EXPECT_EQ(first, g.num_arcs());
  for (std::size_t s = 1; s + 1 < ss.size(); ++s)
    EXPECT_EQ(ss[s].messages_sent_total(), first) << "superstep " << s;
}

// ---- SSSP ------------------------------------------------------------------

class SsspGraphs : public ::testing::TestWithParam<int> {};

TEST_P(SsspGraphs, MatchesBfsDistances) {
  Graph g;
  switch (GetParam()) {
    case 0: g = path_graph(30); break;
    case 1: g = ring_graph(21); break;
    case 2: g = binary_tree(63); break;
    case 3: g = barabasi_albert(200, 2, 3); break;
    case 4: g = watts_strogatz(150, 4, 0.2, 5); break;
    default: g = GraphBuilder(5).add_edge(0, 1).add_edge(2, 3).build(); break;  // disconnected
  }
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_sssp(g, cluster(), parts, 0);
  const auto ref = bfs_distances(g, 0);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    const auto got = r.values[v].distance;
    if (ref[v] == kUnreachable) {
      EXPECT_EQ(got, SsspProgram::kUnreached);
    } else {
      EXPECT_EQ(got, ref[v]) << "vertex " << v;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, SsspGraphs, ::testing::Range(0, 6));

TEST(SsspBsp, CombinerPreservesResultWithFewerBufferedMessages) {
  Graph g = barabasi_albert(400, 3, 11);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto plain = run_sssp(g, cluster(), parts, 5, /*use_combiner=*/false);
  const auto combined = run_sssp(g, cluster(), parts, 5, /*use_combiner=*/true);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(plain.values[v].distance, combined.values[v].distance);
  EXPECT_LT(combined.metrics.total_messages(), plain.metrics.total_messages());
}

// ---- APSP ------------------------------------------------------------------

TEST(ApspBsp, MatchesReferenceMultiRoot) {
  Graph g = watts_strogatz(120, 4, 0.15, 7);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const std::vector<VertexId> roots{0, 17, 55, 119};
  const auto r = run_apsp(g, cluster(), parts, roots);
  const auto ref = reference_apsp(g, roots);
  ASSERT_EQ(r.roots_completed, roots.size());
  for (std::size_t i = 0; i < roots.size(); ++i) {
    for (VertexId v = 0; v < g.num_vertices(); ++v) {
      const auto got = r.values[v].distance_from(roots[i]);
      if (ref[i][v] == kUnreachable) {
        EXPECT_EQ(got, ApspProgram::kUnreached);
      } else {
        ASSERT_EQ(got, ref[i][v]) << "root " << roots[i] << " vertex " << v;
      }
    }
  }
}

TEST(ApspBsp, SwathSchedulingDoesNotChangeResults) {
  Graph g = barabasi_albert(150, 3, 13);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots{0, 5, 10, 15, 20, 25, 30, 35, 40, 45};

  const auto single = run_apsp(g, cluster(), parts, roots);
  const auto swathed = run_apsp(
      g, cluster(), parts, roots,
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(3),
                        std::make_shared<SequentialInitiation>(), 6_GiB));
  const auto overlapped = run_apsp(
      g, cluster(), parts, roots,
      SwathPolicy::make(std::make_shared<StaticSwathSizer>(3),
                        std::make_shared<StaticNInitiation>(2), 6_GiB));

  EXPECT_EQ(single.roots_completed, roots.size());
  EXPECT_EQ(swathed.roots_completed, roots.size());
  EXPECT_EQ(overlapped.roots_completed, roots.size());
  EXPECT_GE(swathed.swaths_initiated, 4u);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    for (VertexId root : roots) {
      const auto a = single.values[v].distance_from(root);
      ASSERT_EQ(a, swathed.values[v].distance_from(root));
      ASSERT_EQ(a, overlapped.values[v].distance_from(root));
    }
  }
  // Sequential swaths take more supersteps than a single batch.
  EXPECT_GT(swathed.metrics.total_supersteps(), single.metrics.total_supersteps());
  // Overlap reduces supersteps vs sequential.
  EXPECT_LT(overlapped.metrics.total_supersteps(), swathed.metrics.total_supersteps());
}

TEST(ApspBsp, TriangleMessageWaveform) {
  // BC/APSP message profile ramps up then drains (Figure 3's triangle wave).
  Graph g = watts_strogatz(2000, 6, 0.1, 17);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_apsp(g, cluster(), parts, {0, 1, 2});
  std::vector<double> msgs;
  for (const auto& s : r.metrics.supersteps)
    msgs.push_back(static_cast<double>(s.messages_sent_total()));
  const auto peak_it = std::max_element(msgs.begin(), msgs.end());
  const auto peak_at = static_cast<std::size_t>(peak_it - msgs.begin());
  EXPECT_GT(peak_at, 0u);
  EXPECT_LT(peak_at, msgs.size() - 1);
  EXPECT_GT(*peak_it, 4.0 * msgs.front());
  EXPECT_GT(*peak_it, 4.0 * msgs.back());
}

// ---- Betweenness centrality -----------------------------------------------

class BcGraphs : public ::testing::TestWithParam<int> {};

TEST_P(BcGraphs, MatchesBrandesAllRoots) {
  Graph g;
  switch (GetParam()) {
    case 0: g = path_graph(9); break;
    case 1: g = star_graph(10); break;
    case 2: g = ring_graph(11); break;
    case 3: g = binary_tree(15); break;
    case 4: g = complete_graph(7); break;
    case 5: g = grid_graph(4, 5); break;
    case 6: g = barabasi_albert(60, 2, 3); break;
    case 7: g = watts_strogatz(80, 4, 0.2, 9); break;
    default: g = erdos_renyi(50, 100, 21); break;  // may be disconnected
  }
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_bc(g, cluster(), parts, all_roots(g));
  const auto ref = reference_betweenness(g);
  ASSERT_EQ(r.roots_completed, g.num_vertices());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6) << "vertex " << v;
}

INSTANTIATE_TEST_SUITE_P(Shapes, BcGraphs, ::testing::Range(0, 9));

TEST(BcBsp, SubsetOfRootsMatchesReference) {
  Graph g = barabasi_albert(120, 3, 31);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const std::vector<VertexId> roots{3, 77, 118};
  const auto r = run_bc(g, cluster(), parts, roots);
  const auto ref = reference_betweenness(g, roots);
  ASSERT_EQ(r.roots_completed, roots.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6);
}

TEST(BcBsp, SwathSchedulingInvariant) {
  Graph g = watts_strogatz(100, 4, 0.15, 23);
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots(20);
  std::iota(roots.begin(), roots.end(), VertexId{0});
  const auto ref = reference_betweenness(g, roots);

  for (auto policy :
       {SwathPolicy::single_swath(),
        SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                          std::make_shared<SequentialInitiation>(), 6_GiB),
        SwathPolicy::make(std::make_shared<StaticSwathSizer>(4),
                          std::make_shared<StaticNInitiation>(3), 6_GiB),
        SwathPolicy::make(std::make_shared<StaticSwathSizer>(5),
                          std::make_shared<DynamicPeakInitiation>(), 6_GiB),
        SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(3),
                          std::make_shared<DynamicPeakInitiation>(), 6_GiB)}) {
    const auto r = run_bc(g, cluster(), parts, roots, policy);
    ASSERT_EQ(r.roots_completed, roots.size()) << policy.sizer->name();
    for (VertexId v = 0; v < g.num_vertices(); ++v)
      ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6)
          << policy.sizer->name() << " vertex " << v;
  }
}

TEST(BcBsp, StateIsReleasedAfterTraversals) {
  Graph g = barabasi_albert(100, 3, 37);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_bc(g, cluster(), parts, {0, 1, 2, 3, 4});
  // All per-root entries must be freed once scores settle.
  for (const auto& v : r.values) EXPECT_TRUE(v.entries.empty());
}

TEST(BcBsp, ElasticScalingPreservesResults) {
  Graph g = watts_strogatz(90, 4, 0.2, 41);
  const auto parts = HashPartitioner{}.partition(g, 8);
  std::vector<VertexId> roots{0, 9, 33, 71};
  const auto ref = reference_betweenness(g, roots);

  ClusterConfig c = cluster(8);
  c.initial_workers = 4;
  c.scaling = std::make_shared<cloud::ActiveVertexScaling>(4, 8, 0.3);
  Engine<BcProgram> e(g, {}, c, parts);
  JobOptions opts;
  opts.roots = roots;
  const auto r = e.run(opts);
  ASSERT_EQ(r.roots_completed, roots.size());
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_NEAR(r.values[v].bc_score, ref[v], 1e-6);
  // The policy actually scaled at least once.
  bool saw4 = false, saw8 = false;
  for (const auto& sm : r.metrics.supersteps) {
    saw4 |= sm.active_workers == 4;
    saw8 |= sm.active_workers == 8;
  }
  EXPECT_TRUE(saw4);
  EXPECT_TRUE(saw8);
}

// ---- Connected components ---------------------------------------------------

TEST(ComponentsBsp, MatchesUnionFind) {
  Graph g = GraphBuilder(12)
                .add_edge(0, 1)
                .add_edge(1, 2)
                .add_edge(3, 4)
                .add_edge(6, 7)
                .add_edge(7, 8)
                .add_edge(8, 6)
                .build();
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_components(g, cluster(), parts);
  const auto ref = connected_components(g);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    EXPECT_EQ(r.values[v].label, ref.component[v]) << "vertex " << v;
}

TEST(ComponentsBsp, CombinerInvariant) {
  Graph g = watts_strogatz(300, 4, 0.1, 51);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto a = run_components(g, cluster(), parts, false);
  const auto b = run_components(g, cluster(), parts, true);
  for (VertexId v = 0; v < g.num_vertices(); ++v)
    ASSERT_EQ(a.values[v].label, b.values[v].label);
}

// ---- Label propagation -------------------------------------------------------

TEST(LabelPropagationBsp, TwoCliquesTwoCommunities) {
  GraphBuilder b(16);
  for (VertexId u = 0; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) b.add_edge(u, v);
  for (VertexId u = 8; u < 16; ++u)
    for (VertexId v = u + 1; v < 16; ++v) b.add_edge(u, v);
  b.add_edge(0, 8);  // weak bridge
  Graph g = b.build();
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_label_propagation(g, cluster(), parts, 8);
  // Within each clique all labels agree.
  for (VertexId v = 1; v < 8; ++v) EXPECT_EQ(r.values[v].label, r.values[1].label);
  for (VertexId v = 9; v < 16; ++v) EXPECT_EQ(r.values[v].label, r.values[9].label);
}

// ---- k-core -------------------------------------------------------------------

TEST(KCoreBsp, PeelsTailsFromLollipop) {
  // K5 with a path tail: 2-core = the clique; tail peels away.
  GraphBuilder b(9);
  for (VertexId u = 0; u < 5; ++u)
    for (VertexId v = u + 1; v < 5; ++v) b.add_edge(u, v);
  b.add_edge(4, 5).add_edge(5, 6).add_edge(6, 7).add_edge(7, 8);
  Graph g = b.build();
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_kcore(g, cluster(2), parts, 2);
  for (VertexId v = 0; v < 5; ++v) EXPECT_TRUE(r.values[v].in_core) << v;
  for (VertexId v = 5; v < 9; ++v) EXPECT_FALSE(r.values[v].in_core) << v;
}

TEST(KCoreBsp, WholeCliqueSurvivesHighK) {
  Graph g = complete_graph(8);
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_kcore(g, cluster(2), parts, 7);
  for (const auto& v : r.values) EXPECT_TRUE(v.in_core);
  const auto r2 = run_kcore(g, cluster(2), parts, 8);
  for (const auto& v : r2.values) EXPECT_FALSE(v.in_core);
}

}  // namespace
}  // namespace pregel::algos
