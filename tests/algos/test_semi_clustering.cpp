#include "algos/semi_clustering.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "partition/partitioner.hpp"

namespace pregel::algos {
namespace {

ClusterConfig cluster(std::uint32_t parts = 4) {
  ClusterConfig c;
  c.num_partitions = parts;
  c.initial_workers = parts;
  return c;
}

TEST(SemiCluster, ScoreFormula) {
  SemiCluster c;
  c.members = {0, 1, 2};
  c.internal_edges = 3;  // triangle
  c.boundary_edges = 2;
  // (3 - 0.5*2) / (3*2/2) = 2/3
  EXPECT_NEAR(c.score(0.5), 2.0 / 3.0, 1e-12);
  // Singletons score 0.
  SemiCluster s;
  s.members = {7};
  s.boundary_edges = 10;
  EXPECT_DOUBLE_EQ(s.score(0.5), 0.0);
}

TEST(SemiCluster, ContainsBinarySearch) {
  SemiCluster c;
  c.members = {2, 5, 9};
  EXPECT_TRUE(c.contains(5));
  EXPECT_FALSE(c.contains(4));
}

TEST(SemiClusteringBsp, TriangleFormsPerfectCluster) {
  Graph g = complete_graph(3);
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_semi_clustering(g, cluster(2), parts, 5, 4, 8, 0.3);
  // Every vertex's best cluster should be the full triangle with I=3, B=0.
  for (VertexId v = 0; v < 3; ++v) {
    ASSERT_FALSE(r.values[v].clusters.empty());
    const auto& best = r.values[v].clusters.front();
    EXPECT_EQ(best.members, (std::vector<VertexId>{0, 1, 2})) << "vertex " << v;
    EXPECT_EQ(best.internal_edges, 3u);
    EXPECT_EQ(best.boundary_edges, 0u);
  }
}

TEST(SemiClusteringBsp, TwoCliquesSeparate) {
  // Two K4s joined by one bridge: the best cluster at each vertex should be
  // (a superset of) its own clique, never mixing the cliques wholesale.
  GraphBuilder b(8);
  for (VertexId u = 0; u < 4; ++u)
    for (VertexId v = u + 1; v < 4; ++v) b.add_edge(u, v);
  for (VertexId u = 4; u < 8; ++u)
    for (VertexId v = u + 1; v < 8; ++v) b.add_edge(u, v);
  b.add_edge(0, 4);
  Graph g = b.build();
  const auto parts = HashPartitioner{}.partition(g, 4);
  // A gentle boundary factor and enough cluster slots: with f_B too high,
  // the 2-member intermediate clusters score negative and get pruned before
  // a clique can assemble (greedy growth needs the intermediates to survive).
  const auto r = run_semi_clustering(g, cluster(), parts, 8, /*max_clusters=*/6,
                                     /*max_members=*/4, /*boundary_factor=*/0.1);

  for (VertexId v = 0; v < 8; ++v) {
    ASSERT_FALSE(r.values[v].clusters.empty());
    const auto& best = r.values[v].clusters.front();
    // Count members from each clique.
    int own = 0, other = 0;
    for (VertexId m : best.members)
      ((v < 4) == (m < 4) ? own : other) += 1;
    EXPECT_GT(own, other) << "vertex " << v << " best cluster crosses the bridge";
  }
}

TEST(SemiClusteringBsp, RespectsMaxMembers) {
  Graph g = complete_graph(10);
  const auto parts = HashPartitioner{}.partition(g, 2);
  const auto r = run_semi_clustering(g, cluster(2), parts, 6, 4, /*max_members=*/3, 0.3);
  for (const auto& v : r.values)
    for (const auto& c : v.clusters) EXPECT_LE(c.members.size(), 3u);
}

TEST(SemiClusteringBsp, RespectsMaxClusters) {
  Graph g = watts_strogatz(60, 4, 0.2, 5);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_semi_clustering(g, cluster(), parts, 6, /*max_clusters=*/2, 6, 0.3);
  for (const auto& v : r.values) EXPECT_LE(v.clusters.size(), 2u);
}

TEST(SemiClusteringBsp, EdgeCountsStayConsistent) {
  // Invariant: for any cluster, internal <= C(|members|, 2) and every
  // member's degree bounds boundary contributions.
  Graph g = barabasi_albert(80, 3, 9);
  const auto parts = HashPartitioner{}.partition(g, 4);
  const auto r = run_semi_clustering(g, cluster(), parts, 6, 4, 6, 0.3);
  for (const auto& v : r.values) {
    for (const auto& c : v.clusters) {
      const std::uint64_t n = c.members.size();
      EXPECT_LE(c.internal_edges, n * (n - 1) / 2);
      std::uint64_t degree_sum = 0;
      for (VertexId m : c.members) degree_sum += g.out_degree(m);
      EXPECT_EQ(degree_sum, 2 * c.internal_edges + c.boundary_edges);
    }
  }
}

TEST(SemiClusteringBsp, DeterministicAcrossDeployments) {
  Graph g = watts_strogatz(50, 4, 0.1, 11);
  const auto p2 = HashPartitioner{}.partition(g, 2);
  const auto p4 = HashPartitioner{}.partition(g, 4);
  const auto a = run_semi_clustering(g, cluster(2), p2, 5);
  const auto b = run_semi_clustering(g, cluster(4), p4, 5);
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    ASSERT_EQ(a.values[v].clusters.size(), b.values[v].clusters.size()) << v;
    for (std::size_t i = 0; i < a.values[v].clusters.size(); ++i)
      ASSERT_EQ(a.values[v].clusters[i].members, b.values[v].clusters[i].members) << v;
  }
}

}  // namespace
}  // namespace pregel::algos
