// Partition advisor: evaluate the three partitioning strategies of §VII on
// a given edge-list file (or a generated graph) and recommend one for
// Pregel/BSP — including the paper's counterintuitive caveat that the lowest
// edge-cut is not automatically the fastest under barrier synchronization.
//
//   $ ./build/examples/partition_advisor [edge_list_file]
#include <iostream>
#include <memory>

#include "algos/pagerank.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "partition/multilevel.hpp"
#include "partition/quality.hpp"
#include "partition/streaming.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace pregel;

  Graph g;
  if (argc > 1) {
    std::cout << "loading " << argv[1] << " ...\n";
    g = read_edge_list_file(argv[1]);
  } else {
    g = relabel_vertices(watts_strogatz(30000, 8, 0.08, 5), 99);
    std::cout << "no file given; using a generated small-world graph\n";
  }
  std::cout << "graph: " << g.summary() << "\n\n";

  constexpr PartitionId kParts = 8;
  ClusterConfig cluster;
  cluster.num_partitions = kParts;
  cluster.initial_workers = kParts;

  struct Candidate {
    std::string label;
    std::unique_ptr<Partitioner> partitioner;
  };
  std::vector<Candidate> candidates;
  candidates.push_back({"hash (Pregel default)", std::make_unique<HashPartitioner>()});
  candidates.push_back(
      {"streaming LDG (one pass)", std::make_unique<StreamingPartitioner>()});
  candidates.push_back({"multilevel (METIS-like)", std::make_unique<MultilevelPartitioner>()});

  TextTable t({"strategy", "remote edges %", "vertex balance", "edge balance",
               "PageRank probe", "probe utilization %"});
  std::string best;
  double best_time = 0.0;
  for (const auto& c : candidates) {
    const auto parts = c.partitioner->partition(g, kParts);
    const auto q = evaluate_partition(g, parts);
    const auto probe = algos::run_pagerank(g, cluster, parts, 10);
    t.add_row({c.label, fmt(q.remote_edge_fraction * 100, 1), fmt(q.vertex_balance, 3),
               fmt(q.edge_balance, 3), format_seconds(probe.metrics.total_time),
               fmt(probe.metrics.utilization() * 100, 1)});
    if (best.empty() || probe.metrics.total_time < best_time) {
      best = c.label;
      best_time = probe.metrics.total_time;
    }
  }
  t.print(std::cout);

  std::cout << "\nrecommendation (by probe time): " << best << "\n";
  std::cout << "caveat from the paper (§VII): a low edge-cut can concentrate the\n"
               "active frontier in few partitions; under BSP's barrier the slowest\n"
               "worker sets the pace, so probe with YOUR algorithm's message shape —\n"
               "uniform-profile PageRank rewards cuts more than BC/APSP do.\n";
  return 0;
}
