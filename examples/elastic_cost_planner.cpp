// Elastic cost planner: before committing real dollars to a cloud run,
// simulate the job under several provisioning strategies and print a
// time/cost menu — the decision §VIII of the paper asks eScience users to
// make ("trade dollar cost against performance").
//
//   $ ./build/examples/elastic_cost_planner
#include <iostream>
#include <memory>

#include "algos/bc.hpp"
#include "cloud/elasticity.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "util/csv.hpp"

int main() {
  using namespace pregel;
  using namespace pregel::algos;

  const Graph g = watts_strogatz(20000, 8, 0.1, 11);
  std::cout << "workload: betweenness centrality (64 sampled roots) on "
            << g.summary() << "\n\n";

  constexpr std::uint32_t kPartitions = 8;
  const Partitioning parts = HashPartitioner{}.partition(g, kPartitions);
  const auto roots = [&] {
    std::vector<VertexId> r;
    for (VertexId v = 0; v < 64; ++v) r.push_back(v * (g.num_vertices() / 64));
    return r;
  }();

  struct Plan {
    std::string label;
    std::uint32_t workers;
    std::shared_ptr<cloud::ScalingPolicy> policy;
  };
  const std::vector<Plan> plans{
      {"fixed 2 workers", 2, nullptr},
      {"fixed 4 workers", 4, nullptr},
      {"fixed 8 workers", 8, nullptr},
      {"elastic 2<->8 (50% active)", 2,
       std::make_shared<cloud::ActiveVertexScaling>(2, 8, 0.5)},
      {"elastic 4<->8 (50% active)", 4,
       std::make_shared<cloud::ActiveVertexScaling>(4, 8, 0.5)},
  };

  TextTable t({"strategy", "modeled time", "cost", "supersteps", "peak worker mem"});
  for (const auto& plan : plans) {
    ClusterConfig cluster;
    cluster.num_partitions = kPartitions;
    cluster.initial_workers = plan.workers;
    cluster.vm = cloud::with_scaled_ram(cloud::azure_large_2012(), 0.01);
    cluster.scaling = plan.policy;
    cluster.scale_event_cost = 5.0;  // charge VM (de)allocation, unlike the paper

    JobOptions opts;
    opts.roots = roots;
    opts.swath = SwathPolicy::make(
        std::make_shared<AdaptiveSwathSizer>(8), std::make_shared<DynamicPeakInitiation>(),
        static_cast<Bytes>(static_cast<double>(cluster.vm.ram) * 6.0 / 7.0));
    opts.fail_on_vm_restart = false;

    Engine<BcProgram> engine(g, {}, cluster, parts);
    const auto r = engine.run(opts);
    t.add_row({plan.label, format_seconds(r.metrics.total_time),
               format_usd(r.metrics.cost_usd), std::to_string(r.metrics.total_supersteps()),
               format_bytes(r.metrics.peak_worker_memory())});
  }
  t.print(std::cout);
  std::cout << "\nreading the menu: more fixed workers buy time until barrier overhead\n"
               "and per-VM cost dominate. Note the elastic rows: unlike the paper's\n"
               "Figure 16 projection (which assumes free scaling), this planner\n"
               "charges " << format_seconds(5.0)
            << " per scale event — frequent 2<->8 flapping can erase the\n"
               "savings, which is exactly the overhead the paper flags as future work.\n";
  return 0;
}
