// Fault-tolerant centrality on unreliable workers: the same BC job run
// (1) without fault tolerance on a healthy cluster, (2) without fault
// tolerance on a flaky cluster (job lost), (3) with checkpointing on the
// flaky cluster (job recovers via full rollback, results identical),
// (4) with confined recovery (only the lost worker's partitions replay),
// and (5) under transient queue/blob faults masked by the retry policy.
//
//   $ ./build/examples/fault_tolerant_run
#include <iostream>

#include "algos/bc.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "util/csv.hpp"

int main() {
  using namespace pregel;
  using namespace pregel::algos;

  const Graph g = watts_strogatz(5000, 6, 0.1, 21);
  std::cout << "workload: BC, 16 sampled roots on " << g.summary() << "\n\n";
  const auto parts = HashPartitioner{}.partition(g, 4);
  std::vector<VertexId> roots;
  for (VertexId v = 0; v < 16; ++v) roots.push_back(v * 300);

  JobOptions opts;
  opts.roots = roots;
  opts.fail_on_vm_restart = false;

  // (1) Healthy cluster, no fault tolerance.
  ClusterConfig healthy;
  healthy.num_partitions = 4;
  healthy.initial_workers = 4;
  Engine<BcProgram> e1(g, {}, healthy, parts);
  const auto clean = e1.run(opts);
  std::cout << "[healthy, no checkpoints]   " << format_seconds(clean.metrics.total_time)
            << ", " << clean.roots_completed << "/16 roots\n";

  // (2) Flaky cluster, no fault tolerance: one worker dies mid-job.
  ClusterConfig flaky = healthy;
  flaky.scheduled_failures = {{9, 2}};
  Engine<BcProgram> e2(g, {}, flaky, parts);
  const auto lost = e2.run(opts);
  std::cout << "[flaky, no checkpoints]     "
            << (lost.failed ? "JOB LOST (" + lost.failure_reason + ")" : "??") << "\n";

  // (3) Flaky cluster with checkpoints every 4 supersteps.
  ClusterConfig protected_cfg = flaky;
  protected_cfg.checkpoint_interval = 4;
  Engine<BcProgram> e3(g, {}, protected_cfg, parts);
  const auto recovered = e3.run(opts);
  std::cout << "[flaky, checkpoint every 4] " << format_seconds(recovered.metrics.total_time)
            << ", " << recovered.roots_completed << "/16 roots, "
            << recovered.metrics.worker_failures << " failure(s), "
            << recovered.metrics.replayed_supersteps << " supersteps replayed, "
            << format_seconds(recovered.metrics.recovery_time) << " recovering\n";

  // (4) Same failure, confined recovery: only VM 2's partitions replay; the
  // healthy workers re-deliver their logged outboxes instead of recomputing.
  ClusterConfig confined_cfg = protected_cfg;
  confined_cfg.recovery_mode = RecoveryMode::kConfined;
  Engine<BcProgram> e4(g, {}, confined_cfg, parts);
  const auto confined = e4.run(opts);
  std::cout << "[flaky, confined recovery]  " << format_seconds(confined.metrics.total_time)
            << ", " << confined.roots_completed << "/16 roots, "
            << format_seconds(confined.metrics.recovery_time) << " recovering, "
            << format_seconds(confined.metrics.confined_replay_time) << " replaying\n";

  // (5) Healthy VMs but lossy control plane: 2% of queue ops and 1% of blob
  // ops fail transiently; the retry policy (exponential backoff, decorrelated
  // jitter) masks all of them at some barrier-latency cost.
  ClusterConfig lossy = healthy;
  lossy.checkpoint_interval = 4;
  lossy.faults.queue_op_failure_rate = 0.02;
  lossy.faults.blob_read_failure_rate = 0.01;
  lossy.faults.blob_write_failure_rate = 0.01;
  Engine<BcProgram> e5(g, {}, lossy, parts);
  const auto retried = e5.run(opts);
  std::cout << "[lossy control plane]       " << format_seconds(retried.metrics.total_time)
            << ", " << retried.metrics.faults_injected << " faults injected, "
            << retried.metrics.faults_masked << " masked by "
            << retried.metrics.retries_attempted << " retries ("
            << format_seconds(retried.metrics.retry_latency) << " backoff)\n";

  // Results must match the healthy run exactly, whatever the recovery path.
  double max_diff = 0;
  for (VertexId v = 0; v < g.num_vertices(); ++v) {
    max_diff = std::max(max_diff,
                        std::abs(recovered.values[v].bc_score - clean.values[v].bc_score));
    max_diff = std::max(max_diff,
                        std::abs(confined.values[v].bc_score - clean.values[v].bc_score));
    max_diff = std::max(max_diff,
                        std::abs(retried.values[v].bc_score - clean.values[v].bc_score));
  }
  std::cout << "\nmax |BC difference| healthy vs recovered/confined/retried: " << max_diff
            << (max_diff == 0.0 ? "  (bit-identical)" : "") << "\n";
  std::cout << "overhead of surviving the failure: "
            << fmt(recovered.metrics.total_time / clean.metrics.total_time, 2)
            << "x time, " << fmt(recovered.metrics.cost_usd / clean.metrics.cost_usd, 2)
            << "x cost\n";
  std::cout << "(recovery is dominated by the fixed detection + VM-reacquisition "
            << format_seconds(protected_cfg.failure_detection_time +
                              protected_cfg.vm_reacquisition_time)
            << ";\n for a demo-sized job that dwarfs the compute — on an hours-long "
               "production job\n the same constants are noise, and the alternative is "
               "losing the job.)\n";
  return 0;
}
