// Centrality study: the paper's motivating scenario — find the key actors
// in a social network with betweenness centrality, on a cloud deployment
// whose memory you must not blow.
//
//   $ ./build/examples/centrality_study [n_vertices]
//
// Demonstrates the swath scheduler end to end: a naive all-at-once BC run
// versus the adaptive-size / dynamic-initiation heuristics, with the
// resulting top-central vertices, modeled runtime and dollar cost.
#include <algorithm>
#include <cstdlib>
#include <iostream>
#include <numeric>

#include "algos/bc.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "util/csv.hpp"

int main(int argc, char** argv) {
  using namespace pregel;
  using namespace pregel::algos;

  const VertexId n = argc > 1 ? static_cast<VertexId>(std::atoi(argv[1])) : 4000;

  // A scale-free "collaboration network" with hubs (the structure that makes
  // BC interesting — and that spikes BSP message volume).
  const Graph g = barabasi_albert(n, 4, 7);
  std::cout << "social network: " << g.summary() << "\n";

  ClusterConfig cluster;
  cluster.num_partitions = 4;
  cluster.initial_workers = 4;
  // A deliberately tight VM so the memory problem is visible at demo scale.
  cluster.vm = cloud::with_scaled_ram(cloud::azure_large_2012(), 0.002);  // ~14 MiB
  const Partitioning parts = HashPartitioner{}.partition(g, 4);

  // Exact BC needs a traversal per vertex; sample roots like the paper does
  // and extrapolate ranks from the sample.
  std::vector<VertexId> roots(std::min<VertexId>(n, 64));
  std::iota(roots.begin(), roots.end(), VertexId{0});

  std::cout << "\n[1] naive Pregel: all " << roots.size() << " traversals at once\n";
  {
    JobOptions opts;
    opts.roots = roots;
    opts.fail_on_vm_restart = false;  // watch it struggle instead of dying
    Engine<BcProgram> engine(g, {}, cluster, parts);
    const auto r = engine.run(opts);
    std::cout << "    peak worker memory " << format_bytes(r.metrics.peak_worker_memory())
              << " on a " << format_bytes(cluster.vm.ram) << " VM"
              << (r.failed ? "  -> VM RESTARTED, job failed" : "") << "\n";
    std::cout << "    modeled time " << format_seconds(r.metrics.total_time) << ", cost "
              << format_usd(r.metrics.cost_usd) << "\n";
  }

  std::cout << "\n[2] swath-scheduled: adaptive size + dynamic initiation\n";
  JobOptions opts;
  opts.roots = roots;
  opts.swath = SwathPolicy::make(
      std::make_shared<AdaptiveSwathSizer>(4), std::make_shared<DynamicPeakInitiation>(),
      static_cast<Bytes>(static_cast<double>(cluster.vm.ram) * 6.0 / 7.0));
  Engine<BcProgram> engine(g, {}, cluster, parts);
  const auto r = engine.run(opts);
  std::cout << "    " << r.swaths_initiated << " swaths, peak worker memory "
            << format_bytes(r.metrics.peak_worker_memory()) << "\n";
  std::cout << "    modeled time " << format_seconds(r.metrics.total_time) << ", cost "
            << format_usd(r.metrics.cost_usd) << "\n";

  // Report the most central vertices found.
  std::vector<VertexId> order(g.num_vertices());
  std::iota(order.begin(), order.end(), VertexId{0});
  std::sort(order.begin(), order.end(), [&](VertexId a, VertexId b) {
    return r.values[a].bc_score > r.values[b].bc_score;
  });
  std::cout << "\ntop-5 central vertices (sampled-root betweenness):\n";
  for (int i = 0; i < 5; ++i) {
    const VertexId v = order[static_cast<std::size_t>(i)];
    std::cout << "  #" << i + 1 << "  vertex " << v << "  score "
              << fmt(r.values[v].bc_score, 1) << "  degree " << g.out_degree(v) << "\n";
  }
  std::cout << "\n(hubs dominate: betweenness tracks, but is not identical to, degree)\n";
  return 0;
}
