// pregel_cli — run any built-in algorithm on a graph from the command line.
//
//   pregel_cli --algo=pagerank --graph=ws:10000,8,0.1 --workers=8
//   pregel_cli --algo=bc --graph=file:web.txt --partitioner=metis
//     --roots=64 --swath=adaptive --verbose
//
// Graphs: file:<edge list path> | ws:<n,k,beta> | ba:<n,m> | er:<n,m>
//         | rmat:<scale,edges> | analog:<SD|WG|CP|LJ>
// Algorithms: pagerank | bc | apsp | sssp | components | labelprop
//             | kcore | triangles | mis | coloring
// Partitioners: hash | metis | stream
// Swath: single | static:<k> | sampling | adaptive  (root algorithms only)
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <memory>
#include <sstream>
#include <string>

#include "algos/apsp.hpp"
#include "algos/bc.hpp"
#include "algos/coloring.hpp"
#include "algos/components.hpp"
#include "algos/kcore.hpp"
#include "algos/label_propagation.hpp"
#include "algos/mis.hpp"
#include "algos/pagerank.hpp"
#include "algos/semi_clustering.hpp"
#include "algos/sssp.hpp"
#include "algos/triangles.hpp"
#include "graph/generators.hpp"
#include "graph/io.hpp"
#include "harness/experiment.hpp"
#include "partition/partitioner.hpp"
#include "util/csv.hpp"

namespace {

using namespace pregel;

[[noreturn]] void usage(const std::string& error = {}) {
  if (!error.empty()) std::cerr << "error: " << error << "\n\n";
  std::cerr <<
      "usage: pregel_cli [options]\n"
      "  --algo=NAME         pagerank|bc|apsp|sssp|components|labelprop|kcore|\n"
      "                      triangles|mis|coloring|semiclustering (default pagerank)\n"
      "  --graph=SPEC        file:PATH | ws:N,K,BETA | ba:N,M | er:N,M |\n"
      "                      rmat:SCALE,EDGES | analog:SD|WG|CP|LJ\n"
      "                                                    (default ws:10000,8,0.1)\n"
      "  --partitioner=NAME  hash|metis|stream             (default hash)\n"
      "  --partitions=N      logical partitions            (default 8)\n"
      "  --workers=N         worker VMs                    (default = partitions)\n"
      "  --roots=N           sampled roots for bc/apsp     (default 16)\n"
      "  --source=V          source vertex for sssp        (default 0)\n"
      "  --k=N               k for kcore                   (default 2)\n"
      "  --iters=N           iterations for pagerank/labelprop (default 30/10)\n"
      "  --swath=POLICY      single|static:K|sampling|adaptive (default single)\n"
      "  --seed=N            generator seed                (default 2013)\n"
      "  --verbose           per-superstep metrics\n";
  std::exit(error.empty() ? 0 : 2);
}

std::map<std::string, std::string> parse_args(int argc, char** argv) {
  std::map<std::string, std::string> out;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    if (arg == "--help" || arg == "-h") usage();
    if (arg.rfind("--", 0) != 0) usage("unexpected argument " + arg);
    const auto eq = arg.find('=');
    if (eq == std::string::npos) {
      out[arg.substr(2)] = "1";
    } else {
      out[arg.substr(2, eq - 2)] = arg.substr(eq + 1);
    }
  }
  return out;
}

std::vector<std::uint64_t> parse_numbers(const std::string& csv) {
  std::vector<std::uint64_t> out;
  std::stringstream ss(csv);
  std::string tok;
  while (std::getline(ss, tok, ',')) out.push_back(std::strtoull(tok.c_str(), nullptr, 10));
  return out;
}

Graph load_graph(const std::string& spec, std::uint64_t seed) {
  const auto colon = spec.find(':');
  if (colon == std::string::npos) usage("graph spec needs a kind prefix: " + spec);
  const std::string kind = spec.substr(0, colon);
  const std::string rest = spec.substr(colon + 1);
  if (kind == "file") return read_edge_list_file(rest);
  if (kind == "analog") return dataset_analog(rest, 10, seed);
  const auto nums = parse_numbers(rest);
  if (kind == "ws") {
    if (nums.size() != 3 && nums.size() != 2) usage("ws:N,K[,BETAx100]");
    const double beta = nums.size() == 3 ? static_cast<double>(nums[2]) / 100.0 : 0.1;
    return watts_strogatz(static_cast<VertexId>(nums[0]),
                          static_cast<std::uint32_t>(nums[1]), beta, seed);
  }
  if (kind == "ba")
    return barabasi_albert(static_cast<VertexId>(nums.at(0)),
                           static_cast<std::uint32_t>(nums.at(1)), seed);
  if (kind == "er")
    return erdos_renyi(static_cast<VertexId>(nums.at(0)), nums.at(1), seed);
  if (kind == "rmat")
    return rmat({.scale = static_cast<std::uint32_t>(nums.at(0)), .target_edges = nums.at(1)},
                seed);
  usage("unknown graph kind " + kind);
}

SwathPolicy parse_swath(const std::string& spec, Bytes target) {
  if (spec == "single") return SwathPolicy::single_swath();
  if (spec == "sampling")
    return SwathPolicy::make(std::make_shared<SamplingSwathSizer>(),
                             std::make_shared<DynamicPeakInitiation>(), target);
  if (spec == "adaptive")
    return SwathPolicy::make(std::make_shared<AdaptiveSwathSizer>(),
                             std::make_shared<DynamicPeakInitiation>(), target);
  if (spec.rfind("static:", 0) == 0) {
    const auto k = static_cast<std::uint32_t>(
        std::strtoul(spec.c_str() + 7, nullptr, 10));
    return SwathPolicy::make(std::make_shared<StaticSwathSizer>(std::max(k, 1u)),
                             std::make_shared<SequentialInitiation>(), target);
  }
  usage("unknown swath policy " + spec);
}

void print_report(const JobMetrics& m, bool verbose) {
  std::cout << "\nexecution report\n";
  std::cout << "  supersteps:      " << m.total_supersteps() << "\n";
  std::cout << "  messages:        " << format_count(m.total_messages()) << "\n";
  std::cout << "  modeled time:    " << format_seconds(m.total_time) << "\n";
  std::cout << "  modeled cost:    " << format_usd(m.cost_usd) << "\n";
  std::cout << "  peak worker mem: " << format_bytes(m.peak_worker_memory()) << "\n";
  std::cout << "  utilization:     " << fmt(m.utilization() * 100, 1) << "%\n";
  if (!verbose) return;
  TextTable t({"superstep", "workers", "active", "messages", "span", "max mem"});
  for (const auto& s : m.supersteps)
    t.add_row({std::to_string(s.superstep), std::to_string(s.active_workers),
               format_count(s.active_vertices), format_count(s.messages_sent_total()),
               format_seconds(s.span), format_bytes(s.max_worker_memory())});
  t.print(std::cout);
}

}  // namespace

int main(int argc, char** argv) {
  const auto args = parse_args(argc, argv);
  auto get = [&args](const std::string& key, const std::string& fallback) {
    auto it = args.find(key);
    return it == args.end() ? fallback : it->second;
  };

  const std::uint64_t seed = std::strtoull(get("seed", "2013").c_str(), nullptr, 10);
  const Graph g = load_graph(get("graph", "ws:10000,8,10"), seed);
  std::cout << "graph: " << g.summary() << "\n";

  const auto partitions =
      static_cast<std::uint32_t>(std::strtoul(get("partitions", "8").c_str(), nullptr, 10));
  const auto workers = static_cast<std::uint32_t>(
      std::strtoul(get("workers", std::to_string(partitions)).c_str(), nullptr, 10));
  ClusterConfig cluster;
  cluster.num_partitions = partitions;
  cluster.initial_workers = workers;

  const auto partitioner = harness::make_partitioner(
      get("partitioner", "hash") == "metis" ? "metis"
      : get("partitioner", "hash") == "stream" ? "stream" : "hash",
      seed);
  const auto parts = partitioner->partition(g, partitions);
  std::cout << "partitioner: " << partitioner->name() << ", " << partitions
            << " partitions on " << workers << " worker VMs\n";

  const bool verbose = args.contains("verbose");
  const std::string algo = get("algo", "pagerank");
  const Bytes target = static_cast<Bytes>(static_cast<double>(cluster.vm.ram) * 6 / 7);
  const auto swath = parse_swath(get("swath", "single"), target);
  const auto n_roots = std::strtoull(get("roots", "16").c_str(), nullptr, 10);
  const auto roots = harness::pick_roots(g, n_roots, seed + 1);

  using namespace pregel::algos;
  if (algo == "pagerank") {
    const int iters = std::atoi(get("iters", "30").c_str());
    const auto r = run_pagerank(g, cluster, parts, iters);
    VertexId best = 0;
    for (VertexId v = 1; v < g.num_vertices(); ++v)
      if (r.values[v].rank > r.values[best].rank) best = v;
    std::cout << "top vertex: " << best << " rank " << r.values[best].rank << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "bc") {
    const auto r = run_bc(g, cluster, parts, roots, swath);
    VertexId best = 0;
    for (VertexId v = 1; v < g.num_vertices(); ++v)
      if (r.values[v].bc_score > r.values[best].bc_score) best = v;
    std::cout << "roots completed: " << r.roots_completed << "/" << roots.size()
              << "; most central vertex: " << best << " score "
              << fmt(r.values[best].bc_score, 1) << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "apsp") {
    const auto r = run_apsp(g, cluster, parts, roots, swath);
    std::cout << "roots completed: " << r.roots_completed << "/" << roots.size() << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "sssp") {
    const auto src = static_cast<VertexId>(std::strtoul(get("source", "0").c_str(), nullptr, 10));
    const auto r = run_sssp(g, cluster, parts, src);
    std::uint64_t reached = 0;
    for (const auto& v : r.values) reached += v.distance != SsspProgram::kUnreached;
    std::cout << "reached " << format_count(reached) << " vertices from " << src << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "components") {
    const auto r = run_components(g, cluster, parts);
    std::set<VertexId> labels;
    for (const auto& v : r.values) labels.insert(v.label);
    std::cout << "components: " << labels.size() << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "labelprop") {
    const int iters = std::atoi(get("iters", "10").c_str());
    const auto r = run_label_propagation(g, cluster, parts, iters);
    std::set<VertexId> labels;
    for (const auto& v : r.values) labels.insert(v.label);
    std::cout << "communities: " << labels.size() << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "kcore") {
    const auto k = static_cast<std::uint32_t>(std::strtoul(get("k", "2").c_str(), nullptr, 10));
    const auto r = run_kcore(g, cluster, parts, k);
    std::uint64_t in = 0;
    for (const auto& v : r.values) in += v.in_core;
    std::cout << k << "-core size: " << format_count(in) << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "triangles") {
    const auto r = run_triangles(g, cluster, parts);
    std::cout << "triangles: " << format_count(total_triangles(r)) << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "mis") {
    const auto r = run_mis(g, cluster, parts, seed);
    std::uint64_t in = 0;
    for (const auto& v : r.values) in += v.state == MisProgram::State::kInSet;
    std::cout << "independent set size: " << format_count(in) << "\n";
    print_report(r.metrics, verbose);
  } else if (algo == "semiclustering") {
    const int iters = std::atoi(get("iters", "8").c_str());
    const auto r = run_semi_clustering(g, cluster, parts, iters, 4, 8, /*f_B=*/0.1);
    double best = -1e300;
    std::size_t best_size = 0;
    for (const auto& v : r.values)
      for (const auto& c : v.clusters)
        if (c.members.size() > 1 && c.score(0.1) > best) {
          best = c.score(0.1);
          best_size = c.members.size();
        }
    std::cout << "best semi-cluster score " << fmt(best, 3) << " (" << best_size
              << " members)\n";
    print_report(r.metrics, verbose);
  } else if (algo == "coloring") {
    const auto r = run_coloring(g, cluster, parts, seed);
    std::uint32_t colors = 0;
    for (const auto& v : r.values) colors = std::max(colors, v.color + 1);
    std::cout << "colors used: " << colors << "\n";
    print_report(r.metrics, verbose);
  } else {
    usage("unknown algorithm " + algo);
  }
  return 0;
}
