// Quickstart: build a graph, run two vertex programs on the simulated
// cluster, read results and the cloud-execution report.
//
//   $ ./build/examples/quickstart
//
// Pregel++ simulates a Pregel-style BSP cluster (the paper's Pregel.NET on
// Azure): you pick VMs and a partitioner, hand the engine a vertex program,
// and get back results plus modeled time / cost / per-superstep metrics.
#include <iostream>

#include "algos/pagerank.hpp"
#include "algos/sssp.hpp"
#include "graph/generators.hpp"
#include "partition/partitioner.hpp"
#include "util/csv.hpp"

int main() {
  using namespace pregel;

  // 1. A graph. Generators cover small-world/scale-free families; real edge
  //    lists load via read_edge_list_file().
  const Graph g = watts_strogatz(/*n=*/1000, /*k=*/6, /*beta=*/0.1, /*seed=*/42);
  std::cout << "graph: " << g.summary() << "\n";

  // 2. A cluster: 4 graph partitions on 4 Azure Large (2012) VMs.
  ClusterConfig cluster;
  cluster.num_partitions = 4;
  cluster.initial_workers = 4;
  cluster.vm = cloud::azure_large_2012();

  // 3. Partition the graph across workers (hash is Pregel's default).
  const Partitioning parts = HashPartitioner{}.partition(g, cluster.num_partitions);

  // 4. Single-source shortest paths from vertex 0.
  const auto sssp = algos::run_sssp(g, cluster, parts, /*source=*/0);
  std::cout << "\nSSSP from vertex 0:\n";
  for (VertexId v : {1u, 10u, 500u, 999u})
    std::cout << "  dist(" << v << ") = " << sssp.values[v].distance << "\n";

  // 5. PageRank, 30 iterations.
  const auto pr = algos::run_pagerank(g, cluster, parts, /*iterations=*/30);
  VertexId best = 0;
  for (VertexId v = 1; v < g.num_vertices(); ++v)
    if (pr.values[v].rank > pr.values[best].rank) best = v;
  std::cout << "\nPageRank: top vertex " << best << " with rank " << pr.values[best].rank
            << "\n";

  // 6. The cloud-execution report: everything is modeled (virtual time), so
  //    runs are deterministic and free — but shaped like the real thing.
  const auto& m = pr.metrics;
  std::cout << "\nexecution report (PageRank):\n";
  std::cout << "  supersteps:      " << m.total_supersteps() << "\n";
  std::cout << "  messages:        " << format_count(m.total_messages()) << "\n";
  std::cout << "  modeled time:    " << format_seconds(m.total_time) << "\n";
  std::cout << "  modeled cost:    " << format_usd(m.cost_usd) << "\n";
  std::cout << "  peak worker mem: " << format_bytes(m.peak_worker_memory()) << "\n";
  std::cout << "  utilization:     " << fmt(m.utilization() * 100, 1) << "%\n";
  return 0;
}
