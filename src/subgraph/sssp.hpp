// Subgraph-centric SSSP (hop metric): per-superstep, each partition runs a
// multi-source Dijkstra over its full local adjacency from the vertices the
// boundary frontier improved, then sends one candidate per cut arc out of
// every improved vertex. Where the vertex-centric program needs one
// superstep per hop, this needs one per *partition crossing* — the GoFFish
// observation that traversal superstep count collapses from O(diameter) to
// O(meta-graph diameter).
//
// The hop distance from the source is a unique fixed point, so converged
// values are bit-identical to the vertex-centric SsspProgram at any
// parallelism and under any migration schedule (docs/SUBGRAPH.md).
#pragma once

#include <cstdint>
#include <limits>
#include <queue>
#include <utility>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::subgraph {

struct SsspSubgraphProgram {
  static constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  static constexpr bool kSubgraphModel = true;

  struct VertexValue {
    std::uint32_t distance = kUnreached;
  };
  using MessageValue = std::uint32_t;  ///< candidate distance

  static MessageValue seed_message(VertexId) { return 0; }
  static Bytes message_payload_bytes(const MessageValue&) { return 4; }

  template <class Ctx>
  void compute_subgraph(Ctx& ctx) const {
    // (distance, local) min-heap: unit weights make this a layered BFS, but
    // the explicit key keeps pop order deterministic and id-tie-broken.
    using Item = std::pair<std::uint32_t, std::uint32_t>;
    std::priority_queue<Item, std::vector<Item>, std::greater<Item>> heap;
    std::vector<std::uint32_t> improved;  // locals whose distance dropped

    ctx.state_unchanged_all();
    std::uint64_t ops = 0;
    for (const std::uint32_t l : ctx.active_locals()) {
      std::uint32_t best = ctx.value(l).distance;
      for (const std::uint32_t m : ctx.messages(l)) best = std::min(best, m);
      ++ops;
      if (best < ctx.value(l).distance) {
        ctx.value(l).distance = best;
        heap.push({best, l});
      }
    }

    // Run the internal frontier to local convergence before the barrier.
    while (!heap.empty()) {
      const auto [d, l] = heap.top();
      heap.pop();
      ++ops;
      if (d > ctx.value(l).distance) continue;  // stale entry
      improved.push_back(l);
      const VertexId v = ctx.vertex_at(l);
      for (const VertexId u : ctx.out_neighbors(v)) {
        if (!ctx.is_local(u)) continue;
        const std::uint32_t ul = ctx.local_of(u);
        ++ops;
        if (d + 1 < ctx.value(ul).distance) {
          ctx.value(ul).distance = d + 1;
          heap.push({d + 1, ul});
        }
      }
    }

    // One boundary candidate per cut arc out of every improved vertex, at
    // its final (converged) distance. A vertex can enter `improved` at most
    // once: later heap entries are stale by then and are skipped above.
    for (const std::uint32_t l : improved) {
      ctx.mark_changed(l);
      const VertexId v = ctx.vertex_at(l);
      const std::uint32_t d = ctx.value(l).distance;
      for (const VertexId u : ctx.out_neighbors(v))
        if (!ctx.is_local(u)) ctx.send(v, u, d + 1);
    }
    ctx.charge_local_work(ops);
    // Implicit vote-to-halt: the partition wakes when a boundary candidate
    // arrives.
  }
};

/// Convenience runner, mirroring algos::run_sssp.
inline JobResult<SsspSubgraphProgram> run_sssp_subgraph(const Graph& g,
                                                        const ClusterConfig& cluster,
                                                        const Partitioning& parts,
                                                        VertexId source) {
  Engine<SsspSubgraphProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.roots = {source};
  return engine.run(opts);
}

}  // namespace pregel::subgraph
