// Subgraph-centric PageRank, two local-solver modes:
//
//  - kJacobi reproduces the vertex-centric PageRankProgram bit-for-bit: one
//    global Jacobi update per superstep, with each vertex's in-contributions
//    summed in ascending sender rank — exactly the order the vertex engine
//    delivers its inbox in. Local contributions are recomputed from stored
//    ranks each superstep (no internal messages); only cut arcs carry
//    (sender, share) pairs, so the cross-partition byte volume drops by the
//    internal-arc fraction while values stay identical.
//
//  - kGaussSeidel runs repeated in-place sweeps inside each partition until
//    the local residual converges, exchanging only boundary share *deltas*
//    between supersteps. Far fewer supersteps on well-cut partitions; values
//    converge to the same fixed point but are not bitwise comparable to the
//    lock-step schedule.
#pragma once

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <utility>
#include <vector>

#include "core/aggregates.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::subgraph {

struct PageRankSubgraphProgram {
  static constexpr bool kSubgraphModel = true;

  enum class Mode { kJacobi, kGaussSeidel };

  struct VertexValue {
    double rank = 0.0;
    /// kGaussSeidel only: accumulated remote in-contribution and the share
    /// last flooded across the cut (deltas are relative to it).
    double remote_sum = 0.0;
    double last_share = 0.0;
  };
  /// Boundary payload: the sender id keys the rank-ordered merge (kJacobi)
  /// and `share` is an absolute share (kJacobi) or a share delta
  /// (kGaussSeidel).
  struct MessageValue {
    VertexId src = kInvalidVertex;
    double share = 0.0;
  };

  int iterations = 30;
  double damping = 0.85;
  Mode mode = Mode::kJacobi;
  /// kGaussSeidel: sweep/halt threshold on per-vertex rank movement and on
  /// boundary delta flooding.
  double tolerance = 1e-10;
  /// kGaussSeidel: cap on in-place sweeps per superstep.
  int max_sweeps = 16;

  static constexpr std::uint64_t kDanglingKey = make_key(0xFFFFFF, 1);

  static Bytes message_payload_bytes(const MessageValue&) { return 12; }

  template <class Ctx>
  void compute_subgraph(Ctx& ctx) const {
    if (mode == Mode::kJacobi)
      jacobi_superstep(ctx);
    else
      gauss_seidel_superstep(ctx);
  }

  template <class MCtx>
  void master_compute(MCtx& master) const {
    // Re-broadcast this superstep's dangling mass for the next update.
    master.globals().set(kDanglingKey, master.aggregates().get(kDanglingKey));
  }

 private:
  // ---- exact lock-step Jacobi ---------------------------------------------

  template <class Ctx>
  void jacobi_superstep(Ctx& ctx) const {
    const std::uint32_t nl = ctx.num_vertices();
    const double n = ctx.num_graph_vertices();
    std::uint64_t ops = 0;

    if (ctx.superstep() > 0) {
      // Pass A: gather every in-contribution per local target — internal
      // shares from the stored (pre-update) ranks, boundary shares from the
      // inbox — tagged with the sender's immutable rank.
      std::vector<std::vector<std::pair<std::uint32_t, double>>> contrib(nl);
      for (std::uint32_t l = 0; l < nl; ++l) {
        const VertexId v = ctx.vertex_at(l);
        const auto nbrs = ctx.out_neighbors(v);
        if (nbrs.empty()) continue;
        const double share = ctx.value(l).rank / static_cast<double>(nbrs.size());
        const std::uint32_t r = ctx.rank_of(v);
        for (const VertexId u : nbrs) {
          ++ops;
          if (ctx.is_local(u)) contrib[ctx.local_of(u)].push_back({r, share});
        }
      }
      for (const std::uint32_t l : ctx.active_locals())
        for (const MessageValue& m : ctx.messages(l))
          contrib[l].push_back({ctx.rank_of(m.src), m.share});

      // Pass B: sum in ascending sender rank — the vertex engine's delivery
      // order — and apply the identical update expression. One sender's
      // multi-arc contributions stay adjacent in arc order (stable sort).
      const double dangling = ctx.global(kDanglingKey) / n;
      for (std::uint32_t l = 0; l < nl; ++l) {
        auto& c = contrib[l];
        std::stable_sort(c.begin(), c.end(),
                         [](const auto& a, const auto& b) { return a.first < b.first; });
        double sum = 0.0;
        for (const auto& [r, share] : c) sum += share;
        ops += c.size();
        ctx.value(l).rank = (1.0 - damping) / n + damping * (sum + dangling);
      }
    } else {
      for (std::uint32_t l = 0; l < nl; ++l) ctx.value(l).rank = 1.0 / n;
    }

    // Pass C: boundary shares / dangling mass from the new ranks. Every
    // local stays active (dangling vertices included — their rank keeps
    // tracking the dangling mass), exactly like the vertex-centric program.
    if (static_cast<int>(ctx.superstep()) < iterations) {
      for (std::uint32_t l = 0; l < nl; ++l) {
        const VertexId v = ctx.vertex_at(l);
        const auto nbrs = ctx.out_neighbors(v);
        if (nbrs.empty()) {
          ctx.aggregate(v, kDanglingKey, ctx.value(l).rank);
        } else {
          const double share = ctx.value(l).rank / static_cast<double>(nbrs.size());
          for (const VertexId u : nbrs)
            if (!ctx.is_local(u)) ctx.send(v, u, {v, share});
        }
        ctx.remain_active(l);
      }
    }
    ctx.charge_local_work(ops);
  }

  // ---- locally-converging Gauss-Seidel ------------------------------------

  template <class Ctx>
  void gauss_seidel_superstep(Ctx& ctx) const {
    const std::uint32_t nl = ctx.num_vertices();
    const double n = ctx.num_graph_vertices();
    std::uint64_t ops = 0;

    if (ctx.superstep() == 0)
      for (std::uint32_t l = 0; l < nl; ++l) ctx.value(l).rank = 1.0 / n;

    // Fold boundary deltas into each target's standing remote contribution.
    for (const std::uint32_t l : ctx.active_locals())
      for (const MessageValue& m : ctx.messages(l)) {
        ctx.value(l).remote_sum += m.share;
        ++ops;
      }

    // Internal reverse adjacency (in-neighbors restricted to this
    // partition), rebuilt per superstep — the program is stateless.
    std::vector<std::vector<std::uint32_t>> rev(nl);
    for (std::uint32_t l = 0; l < nl; ++l) {
      const VertexId v = ctx.vertex_at(l);
      for (const VertexId u : ctx.out_neighbors(v)) {
        ++ops;
        if (ctx.is_local(u)) rev[ctx.local_of(u)].push_back(l);
      }
    }

    // In-place sweeps to local convergence: each update reads the *latest*
    // local ranks plus the standing remote sum and the barrier-lagged
    // dangling mass.
    const double dangling = ctx.global(kDanglingKey) / n;
    bool converged = false;
    for (int sweep = 0; sweep < max_sweeps && !converged; ++sweep) {
      double residual = 0.0;
      for (std::uint32_t l = 0; l < nl; ++l) {
        double local_sum = 0.0;
        for (const std::uint32_t s : rev[l]) {
          const VertexId sv = ctx.vertex_at(s);
          local_sum += ctx.value(s).rank / static_cast<double>(ctx.out_degree(sv));
          ++ops;
        }
        const double next =
            (1.0 - damping) / n + damping * (local_sum + ctx.value(l).remote_sum + dangling);
        residual = std::max(residual, std::fabs(next - ctx.value(l).rank));
        ctx.value(l).rank = next;
      }
      converged = residual < tolerance;
    }

    // Flood material share deltas across the cut; keep dangling mass fresh.
    // An unconverged partition re-activates itself for another superstep of
    // sweeps even without incoming deltas.
    for (std::uint32_t l = 0; l < nl; ++l) {
      const VertexId v = ctx.vertex_at(l);
      const auto nbrs = ctx.out_neighbors(v);
      if (nbrs.empty()) {
        ctx.aggregate(v, kDanglingKey, ctx.value(l).rank);
      } else {
        const double share = ctx.value(l).rank / static_cast<double>(nbrs.size());
        const double delta = share - ctx.value(l).last_share;
        if (std::fabs(delta) >= tolerance) {
          bool sent = false;
          for (const VertexId u : nbrs) {
            if (ctx.is_local(u)) continue;
            ctx.send(v, u, {v, delta});
            sent = true;
          }
          // Only a flooded delta resets the baseline: sub-threshold drift
          // keeps accumulating until it is worth a message. A vertex with
          // no cut arcs never floods and needs no baseline.
          if (sent) ctx.value(l).last_share = share;
        }
      }
      if (!converged) ctx.remain_active(l);
    }
    ctx.charge_local_work(ops);
  }
};

/// Convenience runner (exact Jacobi mode), mirroring algos::run_pagerank.
inline JobResult<PageRankSubgraphProgram> run_pagerank_subgraph(
    const Graph& g, const ClusterConfig& cluster, const Partitioning& parts,
    int iterations = 30, double damping = 0.85) {
  PageRankSubgraphProgram prog;
  prog.iterations = iterations;
  prog.damping = damping;
  Engine<PageRankSubgraphProgram> engine(g, prog, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::subgraph
