// Subgraph-centric connected components: each superstep a partition rebuilds
// a union-find over its internal arcs (the program is stateless across
// supersteps — snapshots and recovery carry vertex values only), folds the
// incoming boundary labels into each local component, and floods improved
// component labels across the cut. Label exchange runs per *component* per
// superstep instead of per vertex per hop, so convergence takes O(meta-graph
// diameter) supersteps.
//
// Assumes an undirected graph (both arcs present), like the hash-min
// vertex-centric program it is value-equivalent to: the unique fixed point
// is the minimum vertex id of each connected component.
#pragma once

#include <cstdint>
#include <numeric>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::subgraph {

struct ComponentsSubgraphProgram {
  static constexpr bool kSubgraphModel = true;

  struct VertexValue {
    VertexId label = kInvalidVertex;
  };
  using MessageValue = VertexId;

  static Bytes message_payload_bytes(const MessageValue&) { return 4; }

  template <class Ctx>
  void compute_subgraph(Ctx& ctx) const {
    const std::uint32_t n = ctx.num_vertices();
    if (n == 0) return;
    std::uint64_t ops = 0;

    // Union-find over internal arcs, path-halving + union-by-id (the root is
    // always the smaller local index, so find chains stay deterministic).
    std::vector<std::uint32_t> parent(n);
    std::iota(parent.begin(), parent.end(), 0u);
    const auto find = [&](std::uint32_t x) {
      while (parent[x] != x) {
        parent[x] = parent[parent[x]];
        x = parent[x];
        ++ops;
      }
      return x;
    };
    for (std::uint32_t l = 0; l < n; ++l) {
      const VertexId v = ctx.vertex_at(l);
      for (const VertexId u : ctx.out_neighbors(v)) {
        if (!ctx.is_local(u)) continue;
        const std::uint32_t a = find(l), b = find(ctx.local_of(u));
        ++ops;
        if (a != b) parent[std::max(a, b)] = std::min(a, b);
      }
    }

    // Component label = min(stored labels, own ids on superstep 0, incoming
    // boundary labels) over the members of each internal component.
    std::vector<VertexId> label(n, kInvalidVertex);
    for (std::uint32_t l = 0; l < n; ++l) {
      const std::uint32_t r = find(l);
      VertexId cand = ctx.superstep() == 0 ? ctx.vertex_at(l) : ctx.value(l).label;
      if (cand < label[r]) label[r] = cand;
    }
    for (const std::uint32_t l : ctx.active_locals()) {
      const std::uint32_t r = find(l);
      for (const VertexId m : ctx.messages(l)) {
        ++ops;
        if (m < label[r]) label[r] = m;
      }
    }

    // Write improved labels back and flood them across the cut. Superstep 0
    // always sends (the neighbor has never heard any label).
    ctx.state_unchanged_all();
    for (std::uint32_t l = 0; l < n; ++l) {
      const VertexId next = label[find(l)];
      const bool improved = next < ctx.value(l).label;
      if (improved) {
        ctx.value(l).label = next;
        ctx.mark_changed(l);
      }
      if (improved || ctx.superstep() == 0) {
        const VertexId v = ctx.vertex_at(l);
        for (const VertexId u : ctx.out_neighbors(v))
          if (!ctx.is_local(u)) ctx.send(v, u, next);
      }
    }
    ctx.charge_local_work(ops);
  }
};

/// Convenience runner, mirroring algos::run_components.
inline JobResult<ComponentsSubgraphProgram> run_components_subgraph(
    const Graph& g, const ClusterConfig& cluster, const Partitioning& parts) {
  Engine<ComponentsSubgraphProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::subgraph
