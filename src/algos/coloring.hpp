// Greedy graph coloring on the BSP engine (Jones–Plassmann style).
//
// Every vertex holds a deterministic random priority. A vertex colors itself
// with the smallest color unused by its already-colored neighbors once every
// higher-priority neighbor has committed, then broadcasts its color. The
// result is a proper coloring using at most Δ+1 colors, deterministic in the
// seed, in O(longest priority-decreasing path) supersteps.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pregel::algos {

struct ColoringProgram {
  static constexpr std::uint32_t kUncolored = static_cast<std::uint32_t>(-1);

  struct VertexValue {
    std::uint32_t color = kUncolored;
    std::vector<std::uint32_t> neighbor_colors;  ///< colors committed around us
    std::uint32_t colored_higher = 0;            ///< higher-priority nbrs done
  };

  struct MessageValue {
    std::uint32_t color;
  };

  std::uint64_t seed = 1;

  static Bytes message_payload_bytes(const MessageValue&) { return 4; }

  std::uint64_t priority_of(VertexId v) const { return mix64(v ^ seed); }

  template <class Ctx>
  std::uint32_t higher_priority_neighbors(const Ctx& ctx) const {
    const std::uint64_t mine = priority_of(ctx.vertex_id());
    std::uint32_t count = 0;
    for (VertexId u : ctx.out_neighbors())
      if (priority_of(u) > mine) ++count;
    return count;
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    if (v.color != kUncolored) return;  // committed; drain remaining notices

    for (const MessageValue& m : messages) {
      v.neighbor_colors.push_back(m.color);
      ++v.colored_higher;
      ctx.charge_state_bytes(4);
    }

    if (v.colored_higher >= higher_priority_neighbors(ctx)) {
      // All dominators committed: take the smallest free color.
      std::sort(v.neighbor_colors.begin(), v.neighbor_colors.end());
      std::uint32_t c = 0;
      for (std::uint32_t used : v.neighbor_colors) {
        if (used == c) ++c;
        else if (used > c) break;
      }
      v.color = c;
      ctx.charge_state_bytes(-4 * static_cast<std::int64_t>(v.neighbor_colors.size()));
      v.neighbor_colors.clear();
      v.neighbor_colors.shrink_to_fit();
      // Only lower-priority neighbors still care, but broadcasting to all is
      // the Pregel idiom; committed receivers drop it.
      ctx.send_to_all_neighbors({v.color});
    } else {
      ctx.remain_active();
    }
  }
};

inline JobResult<ColoringProgram> run_coloring(const Graph& g, const ClusterConfig& cluster,
                                               const Partitioning& parts,
                                               std::uint64_t seed = 1) {
  Engine<ColoringProgram> engine(g, {seed}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::algos
