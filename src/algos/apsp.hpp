// All-pairs shortest paths (hop metric) as a root-scheduled BSP program.
//
// Each root starts a synchronous BFS; messages carry (root, distance) and
// per-vertex state holds one distance entry per root. Like BC, the frontier
// of each traversal ramps up near-exponentially on small-world graphs and
// drains with the diameter — the triangle message waveform of Figure 3.
// Root completion is detected by the master: a root whose forward-message
// aggregate drops to zero has finished its BFS.
#pragma once

#include <algorithm>
#include <cstdint>
#include <limits>
#include <span>
#include <vector>

#include "core/aggregates.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct ApspProgram {
  static constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  /// Aggregate field ids (packed with the root by make_key).
  static constexpr std::uint32_t kFwdCount = 1;

  struct VertexValue {
    /// (root, distance) pairs, insertion-ordered; linear scan is fine at
    /// swath-scale root counts.
    std::vector<std::pair<VertexId, std::uint32_t>> dist;

    std::uint32_t distance_from(VertexId root) const {
      for (const auto& [r, d] : dist)
        if (r == root) return d;
      return kUnreached;
    }
  };

  struct MessageValue {
    VertexId root;
    std::uint32_t distance;
  };

  /// Modeled per-entry state bytes (vertex id + distance + container slack).
  static constexpr std::int64_t kStateEntryBytes = 16;

  static MessageValue seed_message(VertexId root) { return {root, 0}; }
  static Bytes message_payload_bytes(const MessageValue&) { return 8; }
  static std::uint64_t combine_key(const MessageValue& m) { return m.root; }
  static void combine(MessageValue& acc, const MessageValue& in) {
    acc.distance = std::min(acc.distance, in.distance);
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    for (const MessageValue& m : messages) {
      if (v.distance_from(m.root) != kUnreached) continue;  // already discovered
      v.dist.emplace_back(m.root, m.distance);
      ctx.charge_state_bytes(kStateEntryBytes);
      ctx.aggregate(make_key(m.root, kFwdCount), static_cast<double>(ctx.out_degree()));
      ctx.send_to_all_neighbors({m.root, m.distance + 1});
    }
  }

  template <class MCtx>
  void master_compute(MCtx& master) const {
    // A root that generated no forward messages this superstep has finished
    // its BFS. Freshly injected roots are not yet in active_roots() at this
    // barrier (injection happens after master compute), so there is no race
    // with their first superstep.
    std::vector<VertexId> done;
    for (VertexId root : master.active_roots())
      if (master.aggregates().get(make_key(root, kFwdCount)) == 0.0) done.push_back(root);
    for (VertexId root : done) master.mark_root_done(root);
  }
};

inline JobResult<ApspProgram> run_apsp(const Graph& g, const ClusterConfig& cluster,
                                       const Partitioning& parts,
                                       std::vector<VertexId> roots,
                                       SwathPolicy swath = SwathPolicy::single_swath()) {
  Engine<ApspProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.roots = std::move(roots);
  opts.swath = std::move(swath);
  return engine.run(opts);
}

}  // namespace pregel::algos
