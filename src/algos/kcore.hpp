// k-core membership by iterative peeling: vertices with fewer than k live
// neighbors drop out and notify the rest; the survivors are the k-core.
// A vote-to-halt cascade with data-dependent message volume.
#pragma once

#include <cstdint>
#include <span>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct KCoreProgram {
  struct VertexValue {
    std::uint32_t live_degree = 0;
    bool in_core = true;
  };
  /// A message means "one of your neighbors left the core".
  using MessageValue = std::uint8_t;

  std::uint32_t k = 2;

  static Bytes message_payload_bytes(const MessageValue&) { return 1; }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    if (ctx.superstep() == 0) {
      v.live_degree = ctx.out_degree();
    } else {
      if (!v.in_core) return;  // already peeled; drain and stay out
      v.live_degree -= static_cast<std::uint32_t>(
          std::min<std::size_t>(messages.size(), v.live_degree));
    }
    if (v.in_core && v.live_degree < k) {
      v.in_core = false;
      ctx.send_to_all_neighbors(1);
    }
  }
};

inline JobResult<KCoreProgram> run_kcore(const Graph& g, const ClusterConfig& cluster,
                                         const Partitioning& parts, std::uint32_t k) {
  Engine<KCoreProgram> engine(g, {k}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::algos
