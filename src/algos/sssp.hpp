// Single-source shortest path (hop metric) — the canonical Pregel traversal
// and the quickstart example. Demonstrates seed messages and the min
// combiner.
#pragma once

#include <cstdint>
#include <limits>
#include <span>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct SsspProgram {
  static constexpr std::uint32_t kUnreached = std::numeric_limits<std::uint32_t>::max();
  /// Frontier broadcasts dominate; let the engine run dense supersteps in
  /// pull mode (results are bit-identical either way).
  static constexpr bool kDirectionOptimized = true;

  struct VertexValue {
    std::uint32_t distance = kUnreached;
  };
  using MessageValue = std::uint32_t;  ///< candidate distance

  static MessageValue seed_message(VertexId) { return 0; }
  static Bytes message_payload_bytes(const MessageValue&) { return 4; }
  static std::uint64_t combine_key(const MessageValue&) { return 0; }
  static void combine(MessageValue& acc, const MessageValue& in) {
    acc = std::min(acc, in);
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    std::uint32_t best = v.distance;
    for (std::uint32_t m : messages) best = std::min(best, m);
    if (best < v.distance) {
      v.distance = best;
      ctx.send_to_all_neighbors(best + 1);
    } else {
      // Relaxation lost: the stored distance is untouched, so the next
      // delta checkpoint need not carry this vertex.
      ctx.state_unchanged();
    }
    // Implicit vote-to-halt: reactivated only by a better candidate.
  }
};

inline JobResult<SsspProgram> run_sssp(const Graph& g, const ClusterConfig& cluster,
                                       const Partitioning& parts, VertexId source,
                                       bool use_combiner = false) {
  Engine<SsspProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.roots = {source};
  opts.use_combiner = use_combiner;
  return engine.run(opts);
}

}  // namespace pregel::algos
