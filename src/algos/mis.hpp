// Maximal independent set via Luby's algorithm on the BSP engine.
//
// Rounds of two supersteps each. In the PROPOSE superstep every undecided
// vertex draws a deterministic pseudo-random priority for the round and
// sends it to its neighbors; in the RESOLVE superstep a vertex whose
// priority beat all undecided neighbors joins the set and notifies its
// neighbors, which leave the race. Terminates in O(log n) rounds w.h.p.
//
// Exercises multi-phase round structure driven purely by superstep parity —
// no master coordination needed.
#pragma once

#include <cstdint>
#include <span>

#include "core/engine.hpp"
#include "graph/graph.hpp"
#include "util/rng.hpp"

namespace pregel::algos {

struct MisProgram {
  enum class State : std::uint8_t { kUndecided, kInSet, kOut };

  struct VertexValue {
    State state = State::kUndecided;
  };

  struct MessageValue {
    enum class Kind : std::uint8_t { kPriority, kJoined } kind;
    std::uint64_t priority;  ///< for kPriority
  };

  std::uint64_t seed = 1;

  static Bytes message_payload_bytes(const MessageValue&) { return 9; }

  std::uint64_t priority_of(VertexId v, std::uint64_t round) const {
    return mix64(mix64(v ^ seed) ^ (round + 0x1234));
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    if (v.state == State::kOut) return;  // drain any stragglers and stay out
    const std::uint64_t round = ctx.superstep() / 2;

    if (ctx.superstep() % 2 == 0) {
      // PROPOSE. A neighbor joining last round knocks us out first.
      for (const MessageValue& m : messages)
        if (m.kind == MessageValue::Kind::kJoined) {
          v.state = State::kOut;
          return;
        }
      if (v.state != State::kUndecided) return;
      ctx.send_to_all_neighbors(
          {MessageValue::Kind::kPriority, priority_of(ctx.vertex_id(), round)});
      ctx.remain_active();
    } else {
      // RESOLVE. Win if our priority beats every undecided neighbor's
      // (isolated vertices have no competitors and win round 0).
      if (v.state != State::kUndecided) return;
      const std::uint64_t mine = priority_of(ctx.vertex_id(), round);
      bool win = true;
      for (const MessageValue& m : messages)
        if (m.kind == MessageValue::Kind::kPriority && m.priority < mine) {
          win = false;
          break;
        }
      // Ties are impossible: priority_of composes bijections of the vertex
      // id, so distinct vertices draw distinct priorities each round.
      if (win) {
        v.state = State::kInSet;
        ctx.send_to_all_neighbors({MessageValue::Kind::kJoined, 0});
      } else {
        ctx.remain_active();  // try again next round
      }
    }
  }
};

inline JobResult<MisProgram> run_mis(const Graph& g, const ClusterConfig& cluster,
                                     const Partitioning& parts, std::uint64_t seed = 1) {
  Engine<MisProgram> engine(g, {seed}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::algos
