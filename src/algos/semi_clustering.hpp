// Semi-clustering, the flagship application of the original Pregel paper
// (Malewicz et al., SIGMOD 2010) — vertices may belong to several
// overlapping "semi-clusters", each scored by how internal its edges are:
//
//     S_c = (I_c - f_B * B_c) / (V_c (V_c - 1) / 2)
//
// with I_c the number of internal edges, B_c the boundary edges, f_B the
// boundary penalty. Every vertex keeps its best C_max clusters; each
// superstep it broadcasts them, extends the clusters it receives with
// itself (up to V_max members), rescores, and keeps the best again.
//
// Clusters carry their exact internal/boundary edge counts, so extension is
// an O(deg) incremental update: adding vertex x with k edges into the
// cluster gives I' = I + k and B' = B + deg(x) - 2k. The paper's framework
// targets exactly this class of "complex analytics"; the program exercises
// variable-size messages and bounded per-vertex state.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct SemiCluster {
  std::vector<VertexId> members;  ///< sorted, unique
  std::uint64_t internal_edges = 0;
  std::uint64_t boundary_edges = 0;

  bool contains(VertexId v) const {
    return std::binary_search(members.begin(), members.end(), v);
  }
  double score(double boundary_factor) const {
    const double vc = static_cast<double>(members.size());
    if (vc < 2.0) return 0.0;
    return (static_cast<double>(internal_edges) -
            boundary_factor * static_cast<double>(boundary_edges)) /
           (vc * (vc - 1.0) / 2.0);
  }
  friend bool operator==(const SemiCluster& a, const SemiCluster& b) {
    return a.members == b.members;
  }
};

struct SemiClusteringProgram {
  struct VertexValue {
    std::vector<SemiCluster> clusters;  ///< best-first, <= max_clusters
  };
  using MessageValue = std::vector<SemiCluster>;

  int iterations = 10;
  std::size_t max_clusters = 4;  ///< C_max: clusters kept per vertex
  std::size_t max_members = 8;   ///< V_max: members per cluster
  double boundary_factor = 0.3;  ///< f_B

  static Bytes message_payload_bytes(const MessageValue& m) {
    Bytes b = 8;
    for (const auto& c : m) b += 24 + static_cast<Bytes>(c.members.size()) * 4;
    return b;
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    MessageValue outgoing;
    if (ctx.superstep() == 0) {
      SemiCluster self;
      self.members = {ctx.vertex_id()};
      self.boundary_edges = ctx.out_degree();
      v.clusters = {self};
      outgoing = v.clusters;
    } else {
      // Following the Pregel paper's algorithm: received clusters are
      // forwarded and, where possible, extended with this vertex; the
      // vertex's own retained list keeps only clusters CONTAINING it.
      std::vector<SemiCluster> forward;
      std::vector<SemiCluster> mine = v.clusters;
      for (const MessageValue& list : messages) {
        for (const SemiCluster& c : list) {
          forward.push_back(c);
          if (!c.contains(ctx.vertex_id()) && c.members.size() < max_members) {
            SemiCluster ext = c;
            // Exact incremental rescore: count our edges into the cluster.
            std::uint64_t into = 0;
            for (VertexId u : ctx.out_neighbors())
              if (ext.contains(u)) ++into;
            ext.members.insert(std::lower_bound(ext.members.begin(), ext.members.end(),
                                                ctx.vertex_id()),
                               ctx.vertex_id());
            ext.internal_edges += into;
            // Our `into` edges stop being boundary; our remaining edges
            // become boundary. Both terms are non-negative (into <= deg and
            // into <= old boundary), so unsigned arithmetic is safe.
            ext.boundary_edges = ext.boundary_edges - into + (ctx.out_degree() - into);
            forward.push_back(ext);
            mine.push_back(std::move(ext));  // NOLINT: ext copied into forward above
          } else if (c.contains(ctx.vertex_id())) {
            mine.push_back(c);
          }
        }
      }
      trim(forward);
      trim(mine);
      v.clusters = std::move(mine);
      outgoing = forward;
    }
    if (static_cast<int>(ctx.superstep()) < iterations && !outgoing.empty()) {
      ctx.send_to_all_neighbors(outgoing);
      ctx.remain_active();
    }
  }

 private:
  /// Sort by (score desc, members lexicographic), dedupe, keep max_clusters.
  void trim(std::vector<SemiCluster>& clusters) const {
    std::sort(clusters.begin(), clusters.end(),
              [this](const SemiCluster& a, const SemiCluster& b) {
                const double sa = a.score(boundary_factor);
                const double sb = b.score(boundary_factor);
                if (sa != sb) return sa > sb;
                return a.members < b.members;
              });
    clusters.erase(std::unique(clusters.begin(), clusters.end()), clusters.end());
    if (clusters.size() > max_clusters) clusters.resize(max_clusters);
  }
};

inline JobResult<SemiClusteringProgram> run_semi_clustering(
    const Graph& g, const ClusterConfig& cluster, const Partitioning& parts,
    int iterations = 10, std::size_t max_clusters = 4, std::size_t max_members = 8,
    double boundary_factor = 0.3) {
  Engine<SemiClusteringProgram> engine(
      g, {iterations, max_clusters, max_members, boundary_factor}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::algos
