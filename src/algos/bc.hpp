// Betweenness centrality (Brandes) as a root-scheduled BSP program — the
// paper's stress-case application.
//
// Each root r runs two phases across supersteps:
//
//   Forward (synchronous BFS): messages carry (dist, sigma, sender). A
//   vertex discovered at superstep t accumulates sigma and its predecessor
//   list from the discovery messages (which all arrive together, because
//   unweighted BFS is level-synchronous), then floods its neighbors.
//
//   Successor census: the same forward flood doubles as successor discovery.
//   A neighbor w with dist(w) == dist(v)+1 is a successor of v, and its
//   forward message (carrying dist(v)+2) reaches v exactly two supersteps
//   after v's own discovery. v schedules a wake at t+2 and counts them; a
//   vertex with zero successors is a leaf of the BFS DAG.
//
//   Backward accumulation: leaves emit delta contributions
//   sigma_u/sigma_v * (1 + delta_v) to each predecessor u; interior vertices
//   emit once contributions from all succ_count successors have arrived.
//   On emission a vertex adds delta to its centrality score and frees the
//   per-root state (this release is what makes swath scheduling effective at
//   bounding memory). The root itself emits nothing; when its successor
//   countdown hits zero it raises a root-done aggregate that the master
//   turns into a completion notification for the swath scheduler.
//
// The result convention matches reference_betweenness: undirected traversals
// from each root, scores not halved, endpoints excluded.
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "core/aggregates.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct BcProgram {
  static constexpr std::uint32_t kRootDone = 2;
  /// The forward sweep is broadcast-heavy; the backward sweep's pointwise
  /// sends interleave with broadcasts through the (rank, seq) merge.
  static constexpr bool kDirectionOptimized = true;

  enum class Kind : std::uint8_t { kForward, kBackward };

  struct MessageValue {
    VertexId root;
    std::uint32_t dist;   ///< forward: distance of the *receiver* if discovered
    double value;         ///< forward: sender's sigma; backward: delta contribution
    VertexId sender;      ///< forward only
    Kind kind;
  };

  struct RootEntry {
    VertexId root = 0;
    std::uint32_t dist = 0;
    std::uint64_t discovered_at = 0;
    double sigma = 0.0;
    double delta = 0.0;
    std::uint32_t succ_remaining = 0;
    bool census_done = false;
    bool emitted = false;
    std::vector<std::pair<VertexId, double>> preds;  ///< (pred, sigma_pred)
  };

  struct VertexValue {
    double bc_score = 0.0;
    /// Kahan compensation for bc_score: a vertex on many shortest paths
    /// accumulates thousands of small deltas into a growing score, where
    /// naive summation loses low-order bits root by root. The compensated
    /// sum keeps the total exact to the last ulp regardless of swath order.
    double bc_comp = 0.0;
    std::vector<RootEntry> entries;

    RootEntry* find(VertexId root) {
      for (auto& e : entries)
        if (e.root == root) return &e;
      return nullptr;
    }
  };

  /// Modeled per-root state footprint (entry body; predecessors extra).
  static constexpr std::int64_t kEntryBytes = 96;
  static constexpr std::int64_t kPredBytes = 16;

  static MessageValue seed_message(VertexId root) {
    return {root, 0, 1.0, root, Kind::kForward};
  }
  static Bytes message_payload_bytes(const MessageValue&) { return 24; }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    const std::uint64_t now = ctx.superstep();

    for (const MessageValue& m : messages) {
      if (m.kind == Kind::kForward) {
        RootEntry* e = v.find(m.root);
        if (e == nullptr) {
          // Discovery. All same-root discovery messages arrive this
          // superstep; later forward traffic only feeds the census.
          RootEntry fresh;
          fresh.root = m.root;
          fresh.dist = m.dist;
          fresh.discovered_at = now;
          v.entries.push_back(std::move(fresh));
          ctx.charge_state_bytes(kEntryBytes);
          e = &v.entries.back();
          ctx.wake_at(now + 2);  // successor census completes two steps later
        }
        if (m.dist == e->dist && e->discovered_at == now) {
          e->sigma += m.value;
          if (m.sender != ctx.vertex_id()) {  // seed carries sender == root
            e->preds.emplace_back(m.sender, m.value);
            ctx.charge_state_bytes(kPredBytes);
          }
        } else if (m.dist == e->dist + 2) {
          // Sender sits one level below us: a successor in the BFS DAG.
          ++e->succ_remaining;
        }
        // m.dist == e->dist + 1: same-level neighbor; ignore.
      } else {
        RootEntry* e = v.find(m.root);
        if (e != nullptr) {
          e->delta += m.value;
          if (e->succ_remaining > 0) --e->succ_remaining;
        }
      }
    }

    // Phase transitions — processed after all of this superstep's messages.
    for (std::size_t i = 0; i < v.entries.size();) {
      RootEntry& e = v.entries[i];
      bool erased = false;
      if (e.discovered_at == now) {
        // Newly discovered: flood the frontier.
        ctx.send_to_all_neighbors(
            {e.root, e.dist + 1, e.sigma, ctx.vertex_id(), Kind::kForward});
      } else if (!e.census_done && now >= e.discovered_at + 2) {
        e.census_done = true;
        if (e.succ_remaining == 0) erased = emit_backward(ctx, v, e);
      } else if (e.census_done && !e.emitted && e.succ_remaining == 0) {
        erased = emit_backward(ctx, v, e);
      }
      if (erased) {
        v.entries[i] = std::move(v.entries.back());
        v.entries.pop_back();
      } else {
        ++i;
      }
    }
  }

  template <class MCtx>
  void master_compute(MCtx& master) const {
    std::vector<VertexId> done;
    for (VertexId root : master.active_roots())
      if (master.aggregates().get(make_key(root, kRootDone)) > 0.0) done.push_back(root);
    for (VertexId root : done) master.mark_root_done(root);
  }

 private:
  /// Send delta contributions to predecessors, settle the score, release the
  /// per-root state. Returns true (entry must be erased by the caller).
  template <class Ctx>
  bool emit_backward(Ctx& ctx, VertexValue& v, RootEntry& e) const {
    e.emitted = true;
    for (const auto& [pred, sigma_pred] : e.preds) {
      const double contribution = sigma_pred / e.sigma * (1.0 + e.delta);
      ctx.send(pred, {e.root, 0, contribution, ctx.vertex_id(), Kind::kBackward});
    }
    if (e.dist == 0) {
      // The root: traversal complete. Endpoints score nothing.
      ctx.aggregate(make_key(e.root, kRootDone), 1.0);
    } else {
      // Kahan compensated accumulation (see VertexValue::bc_comp).
      const double y = e.delta - v.bc_comp;
      const double t = v.bc_score + y;
      v.bc_comp = (t - v.bc_score) - y;
      v.bc_score = t;
    }
    ctx.charge_state_bytes(-(kEntryBytes +
                             kPredBytes * static_cast<std::int64_t>(e.preds.size())));
    return true;
  }
};

inline JobResult<BcProgram> run_bc(const Graph& g, const ClusterConfig& cluster,
                                   const Partitioning& parts, std::vector<VertexId> roots,
                                   SwathPolicy swath = SwathPolicy::single_swath()) {
  Engine<BcProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.roots = std::move(roots);
  opts.swath = std::move(swath);
  return engine.run(opts);
}

}  // namespace pregel::algos
