// PageRank on the BSP engine — the paper's "baseline" application with a
// uniform message profile: every superstep passes one message along every
// arc, so resource usage is flat across supersteps (Figure 3's straight
// line), unlike BC/APSP's triangle waveform.
#pragma once

#include <cstdint>
#include <span>

#include "core/aggregates.hpp"
#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

/// Vertex-centric PageRank with dangling-mass redistribution via an
/// aggregator + master broadcast (exercises the aggregator/master path).
///
/// Superstep 0 initializes rank to 1/n and sends shares; supersteps
/// 1..iterations receive shares and update; the run finishes after
/// `iterations` full updates, matching reference_pagerank exactly.
struct PageRankProgram {
  struct VertexValue {
    double rank = 0.0;
  };
  using MessageValue = double;

  int iterations = 30;
  double damping = 0.85;
  /// Adaptive (GraphLab-style dynamic) PageRank: a vertex whose rank moved
  /// less than `tolerance` stops sending and votes to halt; a message from a
  /// still-active neighbor wakes it. 0 (the default) keeps the exact
  /// fixed-iteration schedule above. With a tolerance the active frontier
  /// decays as regions converge — the workload the delta-checkpoint
  /// ablation uses, since checkpoint deltas are sized from that frontier.
  double tolerance = 0.0;

  static constexpr std::uint64_t kDanglingKey = make_key(0xFFFFFF, 1);

  static Bytes message_payload_bytes(const MessageValue&) { return 8; }
  static std::uint64_t combine_key(const MessageValue&) { return 0; }
  static void combine(MessageValue& acc, const MessageValue& in) { acc += in; }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    const double n = ctx.num_graph_vertices();
    if (ctx.superstep() == 0) {
      v.rank = 1.0 / n;
    } else {
      double sum = 0.0;
      for (double m : messages) sum += m;
      const double dangling = ctx.global(kDanglingKey) / n;
      const double next = (1.0 - damping) / n + damping * (sum + dangling);
      const double moved = next > v.rank ? next - v.rank : v.rank - next;
      if (tolerance > 0.0 && moved < tolerance) {
        // Converged: keep the stored rank (the sub-tolerance residual is
        // the accuracy budget the caller chose), stop sending, and tell
        // the engine the value is delta-clean.
        ctx.state_unchanged();
        return;
      }
      v.rank = next;
    }
    if (static_cast<int>(ctx.superstep()) < iterations) {
      const auto degree = ctx.out_degree();
      if (degree > 0) {
        ctx.send_to_all_neighbors(v.rank / degree);
      } else {
        ctx.aggregate(kDanglingKey, v.rank);  // dangling mass, spread by master
      }
      ctx.remain_active();
    }
  }

  template <class MCtx>
  void master_compute(MCtx& master) const {
    // Re-broadcast this superstep's dangling mass for the next update.
    master.globals().set(kDanglingKey, master.aggregates().get(kDanglingKey));
  }
};

/// Convenience runner.
inline JobResult<PageRankProgram> run_pagerank(const Graph& g, const ClusterConfig& cluster,
                                               const Partitioning& parts, int iterations = 30,
                                               double damping = 0.85) {
  Engine<PageRankProgram> engine(g, {iterations, damping}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::algos
