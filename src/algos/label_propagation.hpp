// Community detection by synchronous label propagation — the paper names
// community detection (CD) among the high-complexity analytics BSP should
// support. Each vertex adopts the most frequent label among its neighbors
// (ties toward the smaller label) for a fixed number of rounds.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <unordered_map>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct LabelPropagationProgram {
  struct VertexValue {
    VertexId label = kInvalidVertex;
  };
  using MessageValue = VertexId;

  int iterations = 10;

  static Bytes message_payload_bytes(const MessageValue&) { return 4; }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    if (ctx.superstep() == 0) {
      v.label = ctx.vertex_id();
    } else {
      // Adopt the plurality label; ties break toward the smaller label so
      // the outcome is deterministic and independent of message order.
      std::unordered_map<VertexId, std::uint32_t> freq;
      for (VertexId m : messages) ++freq[m];
      VertexId best = v.label;
      std::uint32_t best_count = 0;
      for (const auto& [label, count] : freq) {
        if (count > best_count || (count == best_count && label < best)) {
          best = label;
          best_count = count;
        }
      }
      if (best_count > 0) v.label = best;
    }
    if (static_cast<int>(ctx.superstep()) < iterations) {
      ctx.send_to_all_neighbors(v.label);
      ctx.remain_active();
    }
  }
};

inline JobResult<LabelPropagationProgram> run_label_propagation(
    const Graph& g, const ClusterConfig& cluster, const Partitioning& parts,
    int iterations = 10) {
  Engine<LabelPropagationProgram> engine(g, {iterations}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

}  // namespace pregel::algos
