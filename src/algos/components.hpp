// Connected components by hash-min label propagation: every vertex starts
// with its own id and floods the minimum it has seen; converges in
// O(diameter) supersteps. A PageRank-like "start all vertices" program but
// with data-dependent (shrinking) message volume.
#pragma once

#include <cstdint>
#include <span>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct ComponentsProgram {
  /// Label floods are pure broadcasts; dense supersteps may run in pull mode.
  static constexpr bool kDirectionOptimized = true;

  struct VertexValue {
    VertexId label = kInvalidVertex;
  };
  using MessageValue = VertexId;

  static Bytes message_payload_bytes(const MessageValue&) { return 4; }
  static std::uint64_t combine_key(const MessageValue&) { return 0; }
  static void combine(MessageValue& acc, const MessageValue& in) {
    acc = std::min(acc, in);
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    VertexId best = ctx.superstep() == 0 ? ctx.vertex_id() : v.label;
    for (VertexId m : messages) best = std::min(best, m);
    if (best < v.label || ctx.superstep() == 0) {
      v.label = best;
      ctx.send_to_all_neighbors(best);
    }
  }
};

inline JobResult<ComponentsProgram> run_components(const Graph& g,
                                                   const ClusterConfig& cluster,
                                                   const Partitioning& parts,
                                                   bool use_combiner = false) {
  Engine<ComponentsProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  opts.use_combiner = use_combiner;
  return engine.run(opts);
}

}  // namespace pregel::algos
