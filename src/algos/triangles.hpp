// Triangle counting on the BSP engine.
//
// Classic two-superstep Pregel formulation: every vertex a sends each
// higher-id neighbor b the list of a's neighbors above b; b intersects the
// candidates with its own adjacency. Each triangle {a < b < c} is counted
// exactly once, at its middle vertex b.
//
// Unlike the traversal algorithms, messages here carry variable-length
// payloads, which exercises the engine's per-message byte modeling.
#pragma once

#include <algorithm>
#include <cstdint>
#include <span>
#include <vector>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel::algos {

struct TriangleProgram {
  struct VertexValue {
    std::uint64_t triangles = 0;
  };
  /// Sorted list of the sender's higher-id neighbors.
  using MessageValue = std::vector<VertexId>;

  static Bytes message_payload_bytes(const MessageValue& m) {
    return static_cast<Bytes>(m.size()) * sizeof(VertexId);
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    if (ctx.superstep() == 0) {
      const auto nbrs = ctx.out_neighbors();
      MessageValue higher;
      for (VertexId u : nbrs)
        if (u > ctx.vertex_id()) higher.push_back(u);
      // Neighbors are stored ascending, so `higher` is sorted. Each higher
      // neighbor h only needs the candidates above h (triangles are counted
      // at their middle vertex), so send the strict suffix — roughly halving
      // message bytes versus broadcasting the full list.
      for (std::size_t k = 0; k + 1 < higher.size(); ++k)
        ctx.send(higher[k], MessageValue(higher.begin() + static_cast<std::ptrdiff_t>(k) + 1,
                                         higher.end()));
    } else {
      const auto nbrs = ctx.out_neighbors();
      for (const MessageValue& cand : messages) {
        // All candidates are > us by construction; count those adjacent to
        // us. Both lists are sorted: linear merge.
        std::size_t i = 0, j = 0;
        while (i < cand.size() && j < nbrs.size()) {
          if (cand[i] < nbrs[j]) {
            ++i;
          } else if (nbrs[j] < cand[i]) {
            ++j;
          } else {
            ++v.triangles;
            ++i;
            ++j;
          }
        }
      }
    }
  }
};

/// Sum of per-vertex counts == number of triangles in the graph.
inline JobResult<TriangleProgram> run_triangles(const Graph& g, const ClusterConfig& cluster,
                                                const Partitioning& parts) {
  Engine<TriangleProgram> engine(g, {}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  return engine.run(opts);
}

/// Convenience: total triangles from a result.
inline std::uint64_t total_triangles(const JobResult<TriangleProgram>& r) {
  std::uint64_t total = 0;
  for (const auto& v : r.values) total += v.triangles;
  return total;
}

}  // namespace pregel::algos
