#include "core/swath.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "util/check.hpp"

namespace pregel {

namespace {

/// Peak footprint the sizers should regulate against: when the governor
/// offers spill relief, the spillable message buffers leave the resident
/// peak (they would ride to blob storage instead of shrinking the swath).
Bytes effective_peak(const SwathSizeSignals& s) {
  if (!s.spill_relief_available) return s.peak_memory_last_swath;
  return s.peak_memory_last_swath -
         std::min(s.peak_spillable_last_swath, s.peak_memory_last_swath);
}

}  // namespace

StaticSwathSizer::StaticSwathSizer(std::uint32_t size) : size_(size) {
  PREGEL_CHECK_MSG(size >= 1, "StaticSwathSizer: size must be >= 1");
}

SamplingSwathSizer::SamplingSwathSizer(std::uint32_t sample_size, std::uint32_t sample_count)
    : sample_size_(sample_size), sample_count_(sample_count) {
  PREGEL_CHECK_MSG(sample_size >= 1, "SamplingSwathSizer: sample size must be >= 1");
  PREGEL_CHECK_MSG(sample_count >= 1, "SamplingSwathSizer: sample count must be >= 1");
}

std::uint32_t SamplingSwathSizer::next_size(const SwathSizeSignals& s) {
  if (s.swath_index > 0 && s.last_swath_size > 0) {
    // Record the observation from the completed swath (only sampling swaths
    // feed the estimate; later swaths confirm but don't shrink it).
    if (s.swath_index <= sample_count_) {
      const Bytes peak = effective_peak(s);
      const double incremental =
          peak > s.baseline_memory
              ? static_cast<double>(peak - s.baseline_memory)
              : 0.0;
      max_per_root_bytes_ =
          std::max(max_per_root_bytes_, incremental / s.last_swath_size);
    }
  }
  if (s.swath_index < sample_count_) return sample_size_;  // still sampling
  if (extrapolated_ == 0) {
    const double budget = s.memory_target > s.baseline_memory
                              ? static_cast<double>(s.memory_target - s.baseline_memory)
                              : 0.0;
    if (max_per_root_bytes_ <= 0.0) {
      extrapolated_ = sample_size_ * 4;  // no pressure observed: grow boldly
    } else {
      extrapolated_ = static_cast<std::uint32_t>(
          std::max(1.0, std::floor(budget / max_per_root_bytes_)));
    }
  }
  if (max_per_root_bytes_ > 0.0) {
    // Re-clamp the cached extrapolation to the *current* headroom: after a
    // recovery or placement change baseline_memory moves, and the stale
    // estimate could otherwise propose sizes above the budget.
    const double budget = s.memory_target > s.baseline_memory
                              ? static_cast<double>(s.memory_target - s.baseline_memory)
                              : 0.0;
    const auto fit = static_cast<std::uint32_t>(
        std::max(1.0, std::floor(budget / max_per_root_bytes_)));
    return std::min(extrapolated_, fit);
  }
  return extrapolated_;
}

AdaptiveSwathSizer::AdaptiveSwathSizer(std::uint32_t initial_size, double smoothing,
                                       double growth_cap)
    : initial_size_(initial_size),
      smoothing_(smoothing),
      growth_cap_(growth_cap),
      ewma_(smoothing) {
  PREGEL_CHECK_MSG(initial_size >= 1, "AdaptiveSwathSizer: initial size must be >= 1");
  PREGEL_CHECK_MSG(smoothing > 0.0 && smoothing <= 1.0,
                   "AdaptiveSwathSizer: smoothing in (0,1]");
  PREGEL_CHECK_MSG(growth_cap >= 1.0, "AdaptiveSwathSizer: growth cap >= 1");
}

std::uint32_t AdaptiveSwathSizer::next_size(const SwathSizeSignals& s) {
  if (s.swath_index == 0 || s.last_swath_size == 0) return initial_size_;

  const double budget = s.memory_target > s.baseline_memory
                            ? static_cast<double>(s.memory_target - s.baseline_memory)
                            : 0.0;
  const Bytes peak = effective_peak(s);
  const double used = peak > s.baseline_memory
                          ? static_cast<double>(peak - s.baseline_memory)
                          : 0.0;
  if (used > 0.0)
    last_per_root_bytes_ = used / static_cast<double>(s.last_swath_size);

  double proposal;
  if (used <= 0.0 || budget <= 0.0) {
    proposal = static_cast<double>(s.last_swath_size) * growth_cap_;
  } else {
    // Linear interpolation: scale last size by how far below/above target
    // the last swath's peak landed.
    proposal = static_cast<double>(s.last_swath_size) * budget / used;
  }
  proposal = std::clamp(proposal, 1.0,
                        static_cast<double>(s.last_swath_size) * growth_cap_);
  // Headroom clamp, applied both to the proposal fed to the EWMA and to the
  // smoothed output: the controller's memory of bolder proposals must not
  // outlive a shrunken budget (stale baseline after recovery).
  const double fit = last_per_root_bytes_ > 0.0
                         ? std::max(1.0, std::floor(budget / last_per_root_bytes_))
                         : std::numeric_limits<double>::infinity();
  proposal = std::min(proposal, fit);
  ewma_.add(proposal);
  const double smoothed = std::min(std::round(ewma_.value()), fit);
  return static_cast<std::uint32_t>(std::max(1.0, smoothed));
}

StaticNInitiation::StaticNInitiation(std::uint64_t n) : n_(n) {
  PREGEL_CHECK_MSG(n >= 1, "StaticNInitiation: N must be >= 1");
}

bool StaticNInitiation::should_initiate(const InitiationSignals& s) {
  return s.supersteps_since_initiation >= n_ || s.active_roots == 0;
}

DynamicPeakInitiation::DynamicPeakInitiation(double tolerance) : detector_(tolerance) {}

bool DynamicPeakInitiation::should_initiate(const InitiationSignals& s) {
  if (s.active_roots == 0) return true;  // drained: always allowed
  if (detector_.add(static_cast<double>(s.messages_sent))) armed_ = true;
  if (!armed_) return false;
  // Memory guard: postpone while above target (initiating into an
  // overloaded cluster exacerbates the very pressure swaths exist to avoid).
  if (s.memory_target > 0 && s.max_worker_memory > s.memory_target) return false;
  return true;
}

void DynamicPeakInitiation::on_initiated() {
  armed_ = false;
  detector_.reset();
}

MemoryHeadroomInitiation::MemoryHeadroomInitiation(double headroom_fraction)
    : headroom_(headroom_fraction) {
  PREGEL_CHECK_MSG(headroom_fraction > 0.0 && headroom_fraction <= 1.0,
                   "MemoryHeadroomInitiation: fraction in (0,1]");
}

bool MemoryHeadroomInitiation::should_initiate(const InitiationSignals& s) {
  if (s.active_roots == 0) return true;
  if (s.memory_target == 0) return true;  // no budget declared: never defer
  return static_cast<double>(s.max_worker_memory) <
         headroom_ * static_cast<double>(s.memory_target);
}

std::string MemoryHeadroomInitiation::name() const {
  return "mem<" + std::to_string(static_cast<int>(headroom_ * 100)) + "%";
}

TrafficDecayInitiation::TrafficDecayInitiation(double decay_fraction)
    : decay_(decay_fraction) {
  PREGEL_CHECK_MSG(decay_fraction > 0.0 && decay_fraction < 1.0,
                   "TrafficDecayInitiation: fraction in (0,1)");
}

bool TrafficDecayInitiation::should_initiate(const InitiationSignals& s) {
  if (s.active_roots == 0) return true;
  window_peak_ = std::max(window_peak_, static_cast<double>(s.messages_sent));
  if (window_peak_ <= 0.0) return false;
  return static_cast<double>(s.messages_sent) < decay_ * window_peak_;
}

void TrafficDecayInitiation::on_initiated() { window_peak_ = 0.0; }

std::string TrafficDecayInitiation::name() const {
  return "decay<" + std::to_string(static_cast<int>(decay_ * 100)) + "%";
}

SwathPolicy SwathPolicy::single_swath() {
  SwathPolicy p;
  p.sizer = std::make_shared<StaticSwathSizer>(std::numeric_limits<std::uint32_t>::max());
  p.initiation = std::make_shared<SequentialInitiation>();
  p.memory_target = 0;
  return p;
}

SwathPolicy SwathPolicy::make(std::shared_ptr<SwathSizer> sizer,
                              std::shared_ptr<InitiationPolicy> initiation,
                              Bytes memory_target) {
  PREGEL_CHECK_MSG(sizer != nullptr, "SwathPolicy: sizer required");
  PREGEL_CHECK_MSG(initiation != nullptr, "SwathPolicy: initiation policy required");
  return {std::move(sizer), std::move(initiation), memory_target};
}

}  // namespace pregel
