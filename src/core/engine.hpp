// The Pregel++ BSP engine: a deterministic virtual-time simulation of the
// paper's Pregel.NET architecture (§III).
//
// One Engine instance hosts `num_partitions` graph partitions. Each
// superstep it (1) drains every active vertex's inbox through the user
// program's compute(), (2) routes emitted messages — in-memory to vertices
// whose partition lives on the same worker VM, "bulk" serialized transfer to
// remote VMs, (3) meters per-VM compute/serialization/network/memory through
// the cloud CostModel, and (4) runs the barrier: master compute, swath
// scheduling, elastic scaling, halt detection.
//
// Partition compute within a superstep runs on a persistent host thread
// pool (JobOptions::parallelism). The unit of work is a frontier-bag chunk:
// each partition's active list is packed into a splittable bag
// (src/util/bag.hpp) whose grain-sized leaves become chunks that lanes
// drain — and steal from each other when a skewed frontier leaves some
// lanes dry. Chunks never touch shared engine state: every side effect
// (emissions, activations, wakes, aggregate contributions, counters) is
// staged in per-chunk scratch, and a deterministic merge — parallel across
// destination partitions, ordered by (sender rank, emission order) within
// each — applies routing, combining, activation, and cost counters.
// Results and modeled times are therefore bit-identical at any thread
// count and any steal schedule; only host wall-clock changes.
// Program::compute must be thread-safe (const/stateless, as the contract
// below already implies).
//
// Programs that declare `kDirectionOptimized` additionally get Beamer-style
// direction optimization: when the modeled frontier is dense, a broadcast
// superstep runs in "pull" mode — send_to_all_neighbors captures one
// broadcast record per sender instead of materializing a staged message per
// out-edge, and each destination partition synthesizes its inbox by merging
// its in-neighbors' broadcasts (rank order) with any pointwise sends. The
// synthesized stream is the push stream, message for message, so the switch
// is invisible to results and metrics; the decision itself uses modeled
// density only and is part of the bit-identity contract.
//
// All computation on vertex values is real; only *time* and *memory* are
// modeled. Virtual time per superstep is
//     max over VMs (compute + network, each x tenancy noise x thrash penalty)
//     + barrier overhead(worker count),
// which is exactly the BSP execution model the paper analyzes: "the time
// taken in a superstep is determined by the slowest worker in that
// superstep".
//
// Program requirements (static duck typing, checked by concept + constexpr):
//   struct MyProgram {
//     using VertexValue = ...;   // default-constructible per-vertex state
//     using MessageValue = ...;  // message payload
//     template <class Ctx>
//     void compute(Ctx& ctx, VertexValue& value,
//                  std::span<const MessageValue> messages) const;
//     // optional:
//     static Bytes message_payload_bytes(const MessageValue&);
//     static std::uint64_t combine_key(const MessageValue&);
//     static void combine(MessageValue& acc, const MessageValue& in);
//     static MessageValue seed_message(VertexId root);   // root algorithms
//     template <class MCtx> void master_compute(MCtx& master) const;
//     std::int64_t vertex_state_bytes() const;  // resident per-vertex bytes
//   };
//
// Subgraph-centric programs (GoFFish / Giraph++-style; see docs/SUBGRAPH.md)
// declare `static constexpr bool kSubgraphModel = true;` and replace
// per-vertex compute() with a per-partition hook:
//   template <class Ctx> void compute_subgraph(Ctx& ctx) const;
// The engine then hands each partition ONE SubgraphContext per superstep —
// full local adjacency view, per-vertex boundary inboxes, a staged boundary
// outbox, and the shared aggregator — and the program runs a sequential
// algorithm to local convergence before the barrier. Everything around
// compute is unchanged: barriers, fault injection, checkpointing (the delta
// write barrier via state_unchanged_all/mark_changed), migration, the
// memory governor, and the scheduler all drive subgraph jobs exactly as
// vertex jobs. Boundary sends are tagged with the sender's immutable rank
// and merged in canonical (rank, emission) order through the same staged-
// outbox/serial-merge discipline, so results stay bit-identical at any
// parallelism. Internal sequential work is charged via
// ctx.charge_local_work() (CostParams::cycles_per_subgraph_op), keeping the
// barrier's active-vertex audit exact.
#pragma once

#include <algorithm>
#include <concepts>
#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <tuple>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <vector>

#include "cloud/ckpt_store.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/faults.hpp"
#include "cloud/manager.hpp"
#include "cloud/migration.hpp"
#include "cloud/network.hpp"
#include "cloud/queue.hpp"
#include "core/aggregates.hpp"
#include "core/config.hpp"
#include "graph/graph.hpp"
#include "partition/partitioner.hpp"
#include "partition/rebalance.hpp"
#include "runtime/metrics.hpp"
#include "runtime/trace.hpp"
#include "util/bag.hpp"
#include "util/buffers.hpp"
#include "util/check.hpp"
#include "util/stats.hpp"
#include "util/thread_pool.hpp"

namespace pregel {

template <typename P>
concept VertexProgramT = requires {
  typename P::VertexValue;
  typename P::MessageValue;
} && std::default_initializable<typename P::VertexValue>;

template <VertexProgramT Program>
class Engine;

/// Typed job outcome: the common report plus final vertex values by id.
template <VertexProgramT Program>
struct JobResult : JobReport {
  std::vector<typename Program::VertexValue> values;
};

/// "Not running inside a frontier chunk": context callbacks with this chunk
/// id apply their effects directly (the serial fast path); any other id
/// stages them into that chunk's scratch for the deterministic merge.
inline constexpr std::size_t kNoChunk = static_cast<std::size_t>(-1);

/// Handed to Program::compute for each active vertex.
template <VertexProgramT Program>
class VertexContext {
 public:
  using MessageValue = typename Program::MessageValue;

  VertexId vertex_id() const noexcept { return vertex_; }
  std::uint64_t superstep() const noexcept { return engine_->superstep_; }
  std::span<const VertexId> out_neighbors() const {
    return engine_->graph_->out_neighbors(vertex_);
  }
  std::uint32_t out_degree() const { return engine_->graph_->out_degree(vertex_); }
  VertexId num_graph_vertices() const noexcept { return engine_->graph_->num_vertices(); }

  /// Emit a message for delivery at the start of the next superstep.
  void send(VertexId target, MessageValue message) {
    engine_->route(partition_, target, std::move(message), chunk_);
  }
  void send_to_all_neighbors(const MessageValue& message) {
    engine_->broadcast(partition_, vertex_, message, chunk_);
  }

  /// Stay active next superstep even without incoming messages
  /// (by default a vertex votes to halt when compute returns).
  void remain_active() { engine_->activate_from(partition_, local_, chunk_); }
  /// Request activation at an absolute future superstep (used by phase-
  /// structured algorithms such as the BC backward sweep).
  void wake_at(std::uint64_t superstep) {
    engine_->schedule_wake(partition_, local_, superstep, chunk_);
  }

  /// Contribute to a sum-aggregate readable by the master at this barrier
  /// and by all vertices next superstep.
  void aggregate(std::uint64_t key, double value) {
    engine_->aggregate_from(key, value, chunk_);
  }
  /// Read a master-broadcast global (or last superstep's aggregate).
  double global(std::uint64_t key, double fallback = 0.0) const {
    return engine_->globals_.get(key, fallback);
  }
  bool has_global(std::uint64_t key) const { return engine_->globals_.contains(key); }

  /// Account algorithm state growth/shrink at this vertex (modeled bytes;
  /// feeds the worker memory meter and thus the swath heuristics).
  void charge_state_bytes(std::int64_t delta) {
    engine_->charge_state(partition_, local_, delta, chunk_);
  }

  /// Declare a traversal root complete (root-scheduled algorithms).
  void mark_root_done(VertexId root) { engine_->root_done_from(root, chunk_); }

  /// Write-barrier hint for delta checkpoints: this compute left the vertex
  /// value bit-identical (a relaxation that didn't improve the distance, a
  /// converged PageRank update below tolerance), so the next delta leg need
  /// not carry it. Purely a sizing hint — a program that never calls it gets
  /// every computed vertex in the delta, the conservative default.
  void state_unchanged() noexcept { mutated_ = false; }

 private:
  friend class Engine<Program>;
  VertexContext(Engine<Program>* engine, std::uint32_t partition, std::uint32_t local,
                VertexId vertex, std::size_t chunk)
      : engine_(engine), partition_(partition), local_(local), vertex_(vertex),
        chunk_(chunk) {}

  Engine<Program>* engine_;
  std::uint32_t partition_;
  std::uint32_t local_;
  VertexId vertex_;
  std::size_t chunk_;
  bool mutated_ = true;
};

/// Handed to Program::compute_subgraph once per partition per superstep
/// (subgraph-centric programs only; docs/SUBGRAPH.md). The context exposes
/// the partition's full local view — vertex list, values, adjacency through
/// the shared graph, per-vertex inboxes of boundary messages, this
/// superstep's frontier — plus a staged boundary outbox and the shared
/// aggregator. All emissions are staged into the partition's chunk scratch
/// and merged in canonical order after the compute barrier, so results are
/// bit-identical at any parallelism and across migrations.
template <VertexProgramT Program>
class SubgraphContext {
 public:
  using MessageValue = typename Program::MessageValue;
  using VertexValue = typename Program::VertexValue;

  // ---- partition view ------------------------------------------------------

  std::uint32_t partition() const noexcept { return partition_; }
  std::uint64_t superstep() const noexcept { return engine_->superstep_; }
  VertexId num_graph_vertices() const noexcept { return engine_->graph_->num_vertices(); }

  /// Global ids of this partition's vertices, ascending. Local index ==
  /// position in this span.
  std::span<const VertexId> vertices() const {
    return engine_->parts_[partition_].vertices;
  }
  std::uint32_t num_vertices() const {
    return static_cast<std::uint32_t>(engine_->parts_[partition_].vertices.size());
  }
  VertexId vertex_at(std::uint32_t local) const {
    return engine_->parts_[partition_].vertices[local];
  }
  bool is_local(VertexId v) const { return engine_->part_of_[v] == partition_; }
  /// Local index of a vertex currently homed in this partition.
  std::uint32_t local_of(VertexId v) const { return engine_->local_of_[v]; }
  VertexValue& value(std::uint32_t local) {
    return engine_->parts_[partition_].values[local];
  }
  const VertexValue& value(std::uint32_t local) const {
    return engine_->parts_[partition_].values[local];
  }

  /// Full adjacency of any vertex (local or boundary remote endpoint).
  std::span<const VertexId> out_neighbors(VertexId v) const {
    return engine_->graph_->out_neighbors(v);
  }
  std::uint32_t out_degree(VertexId v) const { return engine_->graph_->out_degree(v); }

  /// Immutable per-run serial rank of a vertex (partition-major over the
  /// initial assignment). Boundary messages arrive in ascending sender rank;
  /// order-sensitive reductions key on it for bit-identity.
  std::uint32_t rank_of(VertexId v) const { return engine_->rank_of_[v]; }

  // ---- frontier and inboxes ------------------------------------------------

  /// Locals active this superstep (deterministically sorted). Every local
  /// with a non-empty inbox is in here.
  std::span<const std::uint32_t> active_locals() const {
    return engine_->parts_[partition_].active_cur;
  }
  /// Boundary/seed messages delivered to a local vertex this superstep, in
  /// ascending sender-rank order.
  std::span<const MessageValue> messages(std::uint32_t local) const {
    return engine_->parts_[partition_].inbox_cur[local];
  }

  // ---- boundary outbox and activation -------------------------------------

  /// Emit a boundary message on behalf of local vertex `from` for delivery
  /// at the start of the next superstep (any target, though subgraph
  /// programs typically send only across the cut — internal updates are
  /// applied in place).
  void send(VertexId from, VertexId target, MessageValue message) {
    PREGEL_DCHECK(target < engine_->graph_->num_vertices());
    auto& cs = engine_->chunk_scratch_[partition_];
    const std::uint32_t tp = engine_->part_of_[target];
    const std::uint32_t tl = engine_->local_of_[target];
    cs.out[tp].push_back(typename Engine<Program>::StagedMessage{
        tl, engine_->rank_of_[from],
        static_cast<std::uint8_t>(engine_->placement_[engine_->orig_part_[from]]),
        cs.emit_seq++, std::move(message)});
  }

  /// Keep a local vertex active next superstep without sending it a message.
  void remain_active(std::uint32_t local) {
    engine_->chunk_scratch_[partition_].activations.push_back(local);
  }
  /// Request activation of a local vertex at an absolute future superstep.
  void wake_at(std::uint32_t local, std::uint64_t superstep) {
    engine_->chunk_scratch_[partition_].wakes.push_back({superstep, local});
  }

  // ---- aggregation / globals ----------------------------------------------

  /// Contribute to a sum-aggregate on behalf of local vertex `as` (the rank
  /// tag keeps barrier replay order migration-invariant).
  void aggregate(VertexId as, std::uint64_t key, double value) {
    engine_->chunk_scratch_[partition_].aggs.push_back(
        {engine_->rank_of_[as], key, value});
  }
  double global(std::uint64_t key, double fallback = 0.0) const {
    return engine_->globals_.get(key, fallback);
  }
  bool has_global(std::uint64_t key) const { return engine_->globals_.contains(key); }

  // ---- accounting ----------------------------------------------------------

  /// Charge `ops` units of internal sequential work (one relaxation, one
  /// union-find step, one rank update). Priced at
  /// CostParams::cycles_per_subgraph_op — far below a full vertex dispatch,
  /// which is the subgraph model's whole bet.
  void charge_local_work(std::uint64_t ops) {
    engine_->chunk_scratch_[partition_].load.subgraph_ops += ops;
  }
  /// Account algorithm state growth/shrink at a local vertex (modeled bytes).
  void charge_state_bytes(std::uint32_t local, std::int64_t delta) {
    engine_->charge_state(partition_, local, delta, partition_);
  }
  /// Declare a traversal root complete (root-scheduled algorithms).
  void mark_root_done(VertexId root) {
    engine_->chunk_scratch_[partition_].roots.push_back(
        {engine_->rank_of_[root], root});
  }

  // ---- delta-checkpoint write barrier -------------------------------------

  /// Opt in to precise dirty tracking for this call: only locals passed to
  /// mark_changed() afterwards enter the next delta leg. Without this call
  /// every active local is conservatively marked dirty.
  void state_unchanged_all() noexcept { unchanged_all_ = true; }
  void mark_changed(std::uint32_t local) { changed_.push_back(local); }

 private:
  friend class Engine<Program>;
  SubgraphContext(Engine<Program>* engine, std::uint32_t partition)
      : engine_(engine), partition_(partition) {}

  Engine<Program>* engine_;
  std::uint32_t partition_;
  bool unchanged_all_ = false;
  std::vector<std::uint32_t> changed_;
};

/// Handed to Program::master_compute at each barrier (GPS-style master task).
template <VertexProgramT Program>
class MasterContext {
 public:
  std::uint64_t superstep() const noexcept { return engine_->superstep_; }
  const Aggregates& aggregates() const noexcept { return engine_->agg_cur_; }
  Globals& globals() noexcept { return engine_->globals_next_; }
  /// Roots initiated and not yet completed, in initiation order. The
  /// reference is invalidated by mark_root_done (collect first, then mark).
  const std::vector<VertexId>& active_roots() const {
    return engine_->active_roots();
  }
  void mark_root_done(VertexId root) { engine_->mark_root_done(root); }
  void request_halt() { engine_->halt_requested_ = true; }
  std::uint64_t active_vertices() const noexcept { return engine_->last_active_vertices_; }
  VertexId num_graph_vertices() const noexcept { return engine_->graph_->num_vertices(); }

 private:
  friend class Engine<Program>;
  explicit MasterContext(Engine<Program>* engine) : engine_(engine) {}
  Engine<Program>* engine_;
};

template <VertexProgramT Program>
class Engine {
 public:
  using V = typename Program::VertexValue;
  using M = typename Program::MessageValue;

  /// The graph and partitioning must outlive the engine.
  Engine(const Graph& graph, Program program, ClusterConfig cluster,
         const Partitioning& partitioning)
      : graph_(&graph),
        program_(std::move(program)),
        cluster_(std::move(cluster)),
        cost_(cluster_.cost),
        noise_(cluster_.tenancy_sigma, cluster_.noise_seed),
        faults_(cluster_.faults) {
    cluster_.retry.validate();
    PREGEL_CHECK_MSG(cluster_.num_partitions >= 1, "Engine: need >= 1 partition");
    PREGEL_CHECK_MSG(
        cluster_.initial_workers >= 1 && cluster_.initial_workers <= cluster_.num_partitions,
        "Engine: initial_workers must be in [1, num_partitions]");
    PREGEL_CHECK_MSG(partitioning.num_vertices() == graph.num_vertices(),
                     "Engine: partitioning does not match graph");
    PREGEL_CHECK_MSG(partitioning.num_parts() == cluster_.num_partitions,
                     "Engine: partitioning has wrong number of parts");
    initial_assignment_ = partitioning.assignment();
    build_partitions(initial_assignment_);
  }

  JobResult<Program> run(const JobOptions& opts) {
    trace::Span job_span("engine.run", "engine");
    JobResult<Program> result;
    if (start(opts, result)) {
      while (advance(result) == StepStatus::kRunning) {
      }
    }
    finish(result);
    return result;
  }

  // ---- re-entrant (scheduled-slice) execution -------------------------------
  //
  // `start` + repeated `advance` + `finish` is exactly `run`, sliced at
  // superstep granularity so a multi-job scheduler (src/sched/) can
  // interleave many engines over a shared VM pool. Nothing engine-visible
  // happens between slices: pausing, preempting, and resuming a job leave
  // every value, modeled time, and metric bit-identical to the solo run.

  /// One `advance` outcome: the job wants another slice, or it is finished
  /// (halted, failed, or out of supersteps) and only `finish` remains.
  enum class StepStatus { kRunning, kDone };

  /// Begin a run: validate, reset state, simulate setup, and perform the
  /// pre-superstep-0 barrier (initial activation / first swath / implicit
  /// snapshot). Returns false when the job dies during setup — the caller
  /// should skip straight to finish().
  bool start(const JobOptions& opts, JobResult<Program>& result) {
    validate(opts);
    reset_run_state(opts);

    result.metrics.recovery_mode =
        cluster_.checkpoint_interval > 0 ? to_string(cluster_.recovery_mode) : "none";
    if (!simulate_setup(result)) return false;

    // Barrier before superstep 0: activate all vertices (PageRank-style) or
    // inject the first swath of roots.
    if (opts.start_all_vertices) {
      for (std::uint32_t p = 0; p < parts_.size(); ++p)
        for (std::uint32_t l = 0; l < parts_[p].vertices.size(); ++l)
          activate_local(p, l);
    } else {
      // The governor's rewind anchor must precede the first initiation:
      // only then can rungs 2-3 park roots of the startup swath or replay it
      // under a halved size cap (a restore re-initiates, clamped, below).
      if (governor_.enabled()) take_snapshot(0);
      maybe_initiate_swath(/*at_startup=*/true, result);
    }

    // With fault tolerance on, the initial state is implicitly recoverable
    // (the input graph lives in blob storage): a failure before the first
    // periodic checkpoint restarts from superstep 0 instead of losing the
    // job. No upload is charged — nothing new needs writing.
    if ((cluster_.checkpoint_interval > 0 || governor_.enabled()) &&
        !ckpt_.has_checkpoint())
      take_snapshot(0);
    return true;
  }

  /// Execute one superstep attempt (or one recovery/rewind replay step).
  /// Exactly one iteration of the classic run loop; kDone means the loop
  /// would have exited — call finish() to collect the result.
  StepStatus advance(JobResult<Program>& result) {
    if (result.failed) return StepStatus::kDone;
    if (!(superstep_ < opts_.max_supersteps && executed_++ < 4 * opts_.max_supersteps))
      return StepStatus::kDone;
    prepare_superstep();
    if (!any_activity()) return StepStatus::kDone;

    // Control plane, exactly as §III describes: the manager posts one
    // superstep token per worker to the "step" queue; each worker dequeues
    // its token, computes, then checks in through the "barrier" queue with
    // its active-vertex count, which the manager drains to decide halting.
    // Every queue op runs under the retry policy: transient failures are
    // masked at backoff cost, an exhausted budget kills the worker.
    control_superstep_begin(result);

    SuperstepMetrics sm = execute_superstep();
    const bool restarted = finalize_timing(sm, result);
    control_superstep_end(sm, result);
    settle_control_latency(sm, result);
    if (confined_replay_active()) result.metrics.confined_replay_time += sm.span;
    result.metrics.supersteps.push_back(std::move(sm));
    if (restarted) return StepStatus::kDone;

    // Worker failure (fault-injection model): a worker missing the barrier
    // — VM death, spot preemption, a control op past its retry budget, or
    // a whole availability zone going dark — is detected by the job
    // manager. With a checkpoint we roll back (confined to the lost
    // partitions when so configured) and replay; without one the job is
    // lost (Pregel without fault tolerance).
    const FailureEvent event = collect_failures(result);
    if (!event.dead.empty()) {
      result.metrics.worker_failures += static_cast<std::uint32_t>(event.dead.size());
      // One assessment serves every recovery path: is anything restorable
      // at all, and which generation will the restore walk land on?
      RecoveryAssessment assessment = assess_recovery(event, result);
      if (!assessment.plan) {
        result.failed = true;
        result.failure_reason = failure_description(event) + " at superstep " +
                                std::to_string(superstep_) + " " + assessment.reason;
        return StepStatus::kDone;
      }
      if (cluster_.recovery_mode == RecoveryMode::kConfined && !confined_replay_active())
        recover_confined(result, event.dead, *assessment.plan);
      else
        recover_from_checkpoint(result, *assessment.plan);
      return StepStatus::kRunning;  // re-execute from the restored superstep
    }

    // Memory-pressure governor, rungs 2-3: at the barrier, decide whether
    // this superstep's pressure warrants parking roots (shed) or a
    // governed-OOM restore. Both rewind to the snapshot and re-execute.
    const GovernorVerdict verdict = governor_step(result);
    if (verdict == GovernorVerdict::kRewound) return StepStatus::kRunning;
    if (verdict == GovernorVerdict::kFailed) return StepStatus::kDone;

    run_barrier(result);
    maybe_checkpoint(result);
    maybe_scrub(result);
    if (halt_requested_) return StepStatus::kDone;
    ++superstep_;
    if (!replay_lost_vms_.empty() && superstep_ > confined_replay_until_)
      replay_lost_vms_.clear();
    return StepStatus::kRunning;
  }

  /// Collect the final values and cost totals into `result`. Idempotent;
  /// the classic run() calls it once after the loop drains.
  void finish(JobResult<Program>& result) { collect(result); }

  // ---- pool-facing accessors (read-only; consulted between slices) ---------

  /// VMs this job currently holds (the scheduler polls this after each slice
  /// to reclaim capacity the scale-in rung returned).
  std::uint32_t current_workers() const noexcept { return workers_now_; }
  std::uint64_t current_superstep() const noexcept { return superstep_; }
  /// Modeled spend so far (admission-control budget enforcement).
  Usd cost_so_far() const { return meter_.total_usd(); }
  Seconds vm_seconds_so_far() const { return meter_.total_vm_seconds(); }
  /// Manifest a scheduler persists via cloud::JobManager when preempting
  /// this job between slices; resuming later needs nothing else, because the
  /// engine object itself retains the (deterministic) in-memory state.
  cloud::ManagerManifest preemption_manifest() const { return current_manifest(); }

 private:
  friend class VertexContext<Program>;
  friend class SubgraphContext<Program>;
  friend class MasterContext<Program>;

  // ---- static program-trait helpers --------------------------------------

  static Bytes payload_bytes(const M& m) {
    if constexpr (requires(const M& x) {
                    { Program::message_payload_bytes(x) } -> std::convertible_to<Bytes>;
                  }) {
      return Program::message_payload_bytes(m);
    } else {
      return sizeof(M);
    }
  }

  static constexpr bool has_combiner() {
    return requires(M& a, const M& b) {
      { Program::combine_key(b) } -> std::convertible_to<std::uint64_t>;
      Program::combine(a, b);
    };
  }

  /// Spill relief is offered to the swath sizers only while the modeled
  /// blob round-trip stays below this fraction of a superstep span —
  /// spilling that dominates the superstep is not relief, it is thrash.
  static constexpr double kSpillCheapFraction = 0.25;

  // ---- per-partition state ------------------------------------------------

  struct PartitionState {
    std::vector<VertexId> vertices;  ///< global ids, ascending
    std::vector<V> values;           ///< by local index
    std::vector<std::vector<M>> inbox_cur, inbox_next;
    /// Source VM of each buffered message, maintained only while a combiner
    /// is active: a Pregel combiner is sender-side, so only messages that
    /// left the same worker may merge.
    std::vector<std::vector<std::uint8_t>> inbox_cur_src, inbox_next_src;
    Bytes inbox_cur_bytes = 0, inbox_next_bytes = 0;
    std::vector<std::uint32_t> active_cur, active_next;
    std::vector<bool> in_active_next;
    std::unordered_map<std::uint64_t, std::vector<std::uint32_t>> wakes;
    std::int64_t state_bytes = 0;
    /// Per-vertex breakdown of state_bytes, maintained only when migration
    /// is possible this run — a moving vertex must carry its exact modeled
    /// state so both partitions' totals stay right.
    std::vector<std::int64_t> state_bytes_v;
    /// Delta-checkpoint dirty tracking, maintained only when the run writes
    /// delta generations: which locals mutated their value/state since the
    /// last *published* checkpoint (computed, minus computes the program
    /// declared write-free via ctx.state_unchanged()). Cleared on
    /// successful publish only, so a torn-manifest round leaves the next
    /// delta relative to the last generation a restore could actually
    /// read. Travels inside snapshots: a rollback replays with exactly the
    /// dirty sets the original execution had, so re-published generations
    /// are bit-identical.
    std::vector<std::uint8_t> dirty;
    Bytes graph_bytes = 0;
    Bytes outbuf_bytes = 0;  ///< serialized remote sends buffered this superstep
    cloud::WorkerLoad load;  ///< raw counters, reset each superstep
  };

  /// One emission captured during staged compute, pending the deterministic
  /// merge (destination partition is the scratch row index; emission order
  /// is the vector order). sender_rank is the sender's immutable global
  /// serial rank — after a migration the merge keys on it to reproduce the
  /// unmigrated delivery order exactly; combine_src is the sender-side
  /// combining domain captured at emission time; seq numbers the sender's
  /// emissions within its compute() call so a pull-mode merge can interleave
  /// broadcast and pointwise emissions exactly as push would.
  struct StagedMessage {
    std::uint32_t target_local;
    std::uint32_t sender_rank;
    std::uint8_t combine_src;
    std::uint32_t seq;
    M message;
  };

  /// Aggregate contribution / root completion captured during staged
  /// compute; `rank` is the emitting vertex's serial rank so the barrier
  /// replay can reproduce the serial order even after a migration.
  struct StagedAgg {
    std::uint32_t rank;
    std::uint64_t key;
    double value;
  };
  struct StagedRootDone {
    std::uint32_t rank;
    VertexId root;
  };

  /// Source-side counters a destination's merge accumulates on behalf of a
  /// source partition; folded back (order-free integer sums) after the merge
  /// barrier.
  struct SendScratch {
    cloud::WorkerLoad load;
    Bytes outbuf_bytes = 0;
  };

  /// One unit of stealable work: a leaf of a partition's frontier bag.
  struct ChunkRef {
    std::uint32_t partition;
    std::uint32_t leaf;  ///< leaf index within frontier_bags_[partition]
  };

  /// Everything a chunk's compute produces, staged thread-locally and folded
  /// back in deterministic (partition-major, leaf-order) sequence after the
  /// compute barrier. Chunks of the same partition never run concurrently
  /// with that partition's merge, so nothing here needs synchronization.
  struct ChunkScratch {
    std::vector<std::vector<StagedMessage>> out;  ///< by destination partition
    std::vector<StagedAgg> aggs;
    std::vector<StagedRootDone> roots;
    std::vector<std::uint32_t> activations;  ///< locals of this chunk's partition
    std::vector<std::pair<std::uint64_t, std::uint32_t>> wakes;  ///< (at, local)
    std::vector<VertexId> broadcasters;  ///< senders with pull-mode records
    cloud::WorkerLoad load;
    Bytes drained_bytes = 0;
    std::int64_t state_delta = 0;
    /// Rank / combiner source / emission counter of the vertex currently in
    /// compute() — reset per vertex so route() can tag emissions cheaply.
    std::uint32_t computing_rank = 0;
    std::uint8_t computing_src = 0;
    std::uint32_t emit_seq = 0;
  };

  /// (Re)build partition state from the run's initial assignment. Also
  /// derives the immutable per-run serial order: rank_of_[v] numbers every
  /// vertex in the order the serial engine visits it (partition-major,
  /// ascending within each partition). Message delivery in the unmigrated
  /// run happens exactly in sender-rank order, which is what lets the
  /// post-migration merge reproduce it bit-for-bit.
  void build_partitions(const std::vector<PartitionId>& assignment) {
    const VertexId n = graph_->num_vertices();
    part_of_.resize(n);
    local_of_.resize(n);
    parts_.assign(cluster_.num_partitions, {});
    for (VertexId v = 0; v < n; ++v) {
      const PartitionId p = assignment[v];
      part_of_[v] = p;
      local_of_[v] = static_cast<std::uint32_t>(parts_[p].vertices.size());
      parts_[p].vertices.push_back(v);
    }
    for (auto& ps : parts_) {
      const std::size_t pn = ps.vertices.size();
      ps.values.resize(pn);
      ps.inbox_cur.resize(pn);
      ps.inbox_next.resize(pn);
      ps.inbox_cur_src.resize(pn);
      ps.inbox_next_src.resize(pn);
      ps.in_active_next.assign(pn, false);
      EdgeIndex arcs = 0;
      for (VertexId v : ps.vertices) arcs += graph_->out_degree(v);
      // Managed-runtime partition footprint: ~64 B per vertex object and
      // ~8 B per adjacency entry.
      ps.graph_bytes = static_cast<Bytes>(pn) * 64 + arcs * 8;
    }
    orig_part_ = part_of_;
    rank_of_.resize(n);
    std::uint32_t r = 0;
    for (const auto& ps : parts_)
      for (const VertexId v : ps.vertices) rank_of_[v] = r++;
    pull_index_built_ = false;  // rank order changed; rebuild lazily
  }

  Bytes partition_graph_bytes(const std::vector<VertexId>& vertices) const {
    EdgeIndex arcs = 0;
    for (VertexId v : vertices) arcs += graph_->out_degree(v);
    return static_cast<Bytes>(vertices.size()) * 64 + arcs * 8;
  }

  // ---- run lifecycle -------------------------------------------------------

  void validate(const JobOptions& opts) const {
    opts.governor.validate();
    PREGEL_CHECK_MSG(!(opts.start_all_vertices && !opts.roots.empty()),
                     "JobOptions: start_all_vertices excludes explicit roots");
    if (!opts.roots.empty()) {
      if constexpr (!requires(VertexId r) {
                      { Program::seed_message(r) } -> std::convertible_to<M>;
                    }) {
        PREGEL_CHECK_MSG(false, "JobOptions: program lacks seed_message but roots given");
      }
      for (VertexId r : opts.roots)
        PREGEL_CHECK_MSG(r < graph_->num_vertices(), "JobOptions: root out of range");
      PREGEL_CHECK_MSG(opts.swath.sizer && opts.swath.initiation,
                       "JobOptions: swath policy incomplete");
    }
  }

  void reset_run_state(const JobOptions& opts) {
    // A previous run's migrations rewired the vertex->partition map; every
    // run starts from the pristine build-time assignment.
    if (parts_dirty_) {
      build_partitions(initial_assignment_);
      parts_dirty_ = false;
    }
    migrated_ = false;
    migration_possible_ =
        cluster_.migration.enabled() ||
        (opts.governor.enabled && opts.governor.scale_out_enabled);
    opts_ = opts;
    opts_combine_ = opts.use_combiner;
    last_messages_sent_ = 0;
    roots_completed_ = 0;
    ckpt_.configure(cluster_.ckpt, static_cast<std::uint32_t>(parts_.size()));
    track_dirty_ = cluster_.checkpoint_interval > 0 && cluster_.ckpt.delta_enabled;
    barriers_since_scrub_ = 0;
    scheduled_failures_ = cluster_.scheduled_failures;
    scheduled_zone_outages_ = cluster_.scheduled_zone_outages;
    failure_epoch_ = 0;
    superstep_ = 0;
    halt_requested_ = false;
    pending_roots_ = opts.roots;
    next_root_ = 0;
    outstanding_roots_.clear();
    outstanding_index_.clear();
    root_tombstones_ = 0;
    swath_index_ = 0;
    last_swath_size_ = 0;
    supersteps_since_initiation_ = 0;
    peak_memory_since_initiation_ = 0;
    last_active_vertices_ = 0;
    workers_now_ = cluster_.initial_workers;
    workers_changed_ = false;
    executed_ = 0;
    scale_in_quiet_ = 0;
    scale_in_cooldown_ = 0;
    // Each run bills from zero: JobMetrics::cost_usd is this job's spend, not
    // a lifetime total for the engine (reuse would silently double-charge).
    meter_.reset();
    agg_cur_.clear();
    globals_ = Globals{};
    globals_next_ = Globals{};
    for (auto& ps : parts_) {
      std::fill(ps.values.begin(), ps.values.end(), V{});
      for (auto& ib : ps.inbox_cur) ib.clear();
      for (auto& ib : ps.inbox_next) ib.clear();
      for (auto& sb : ps.inbox_cur_src) sb.clear();
      for (auto& sb : ps.inbox_next_src) sb.clear();
      ps.inbox_cur_bytes = ps.inbox_next_bytes = 0;
      ps.active_cur.clear();
      ps.active_next.clear();
      std::fill(ps.in_active_next.begin(), ps.in_active_next.end(), false);
      ps.wakes.clear();
      ps.state_bytes = 0;
      if (migration_possible_)
        ps.state_bytes_v.assign(ps.vertices.size(), 0);
      else
        ps.state_bytes_v.clear();
      ps.outbuf_bytes = 0;
      ps.load = {};
      if (track_dirty_)
        ps.dirty.assign(ps.vertices.size(), 0);
      else
        ps.dirty.clear();
    }
    reset_placement_to_modulo();
    pending_placement_cost_ = 0.0;
    virtual_now_us_ = 0.0;
    recompute_baseline_memory();
    governor_.reset(opts.governor, opts.swath.memory_target);
    governor_breach_ = false;
    last_unspilled_peak_ = 0;
    last_post_spill_peak_ = 0;
    peak_spillable_since_initiation_ = 0;
    last_superstep_span_ = 0.0;

    // Host-parallelism: resolve the lane count and the frontier-bag grain.
    // The pool persists across runs when the resolved width is unchanged.
    const std::uint32_t requested =
        opts.parallelism == 0 ? ThreadPool::hardware_threads() : opts.parallelism;
    threads_ = std::min<std::uint32_t>(std::max<std::uint32_t>(requested, 1),
                                       static_cast<std::uint32_t>(parts_.size()));
    if (threads_ > 1) {
      if (!pool_ || pool_->size() != threads_) pool_ = std::make_unique<ThreadPool>(threads_);
    } else {
      pool_.reset();
    }
    grain_ = opts.frontier_grain == 0 ? Bag::kDefaultGrain : opts.frontier_grain;
    frontier_bags_.assign(parts_.size(), Bag(grain_));
    chunks_.clear();
    chunk_scratch_.clear();
    part_chunk_range_.assign(parts_.size(), {0, 0});
    direction_enabled_ =
        direction_capable() && opts.direction.mode != DirectionOptions::Mode::kOff;
    pull_mode_ = pull_this_step_ = last_pull_mode_ = false;
    last_steals_ = {};
    if (direction_enabled_)
      broadcast_store_.assign(graph_->num_vertices(), {});
    else
      broadcast_store_.clear();
    // The staged path serves four callers: the thread pool (any run with
    // threads_ > 1), the post-migration rank merge (even serial runs — once
    // vertices move, delivery order must be reconstructed by rank), pull
    // supersteps (the synthesized stream flows through the same merge), and
    // subgraph-centric programs (every boundary send is staged).
    if (threads_ > 1 || migration_possible_ || direction_enabled_ || subgraph_model())
      send_scratch_.assign(parts_.size() * parts_.size(), {});
    else
      send_scratch_.clear();

    faults_ = cloud::FaultInjector(cluster_.faults);
    pending_retry_latency_ = 0.0;
    control_failed_vm_.reset();
    replay_lost_vms_.clear();
    confined_replay_until_ = 0;
    manager_ = cloud::JobManager{};
    location_version_ = 0;
    zones_ = cloud::ZoneMap{std::max<std::uint32_t>(cluster_.availability_zones, 1)};
    // The manifest a standby would resume from if the primary died before
    // the first barrier: superstep 0, epoch 0, pristine aggregates.
    manager_.persist(current_manifest());
    log_outboxes_ = cluster_.recovery_mode == RecoveryMode::kConfined &&
                    cluster_.checkpoint_interval > 0;
    outbox_log_cur_.clear();
    vm_straggler_counts_.assign(workers_now_, 0);
  }

  /// Returns false when the job dies during setup (graph blob unreadable
  /// past the retry budget).
  bool simulate_setup(JobResult<Program>& result) {
    trace::Span span("engine.setup", "engine");
    // Workers download the graph file from blob storage in parallel, load
    // their partitions, and the manager broadcasts the worker topology
    // (§III: "Workers report back ... so the manager can build a mapping").
    const auto read = control_op(cloud::FaultKind::kBlobRead, result);
    const Bytes graph_file = graph_->memory_footprint();
    const double bw_Bps = cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    const Seconds download = static_cast<double>(graph_file) / bw_Bps;
    const Seconds topology = 2.0 * cost_.params().queue_op_latency +
                             cost_.params().connection_setup_per_peer * (workers_now_ - 1);
    result.metrics.setup_time = download + topology + read.extra_latency;
    result.metrics.total_time += result.metrics.setup_time;
    meter_.charge(cluster_.vm, workers_now_, result.metrics.setup_time);
    virtual_now_us_ = result.metrics.total_time * 1e6;
    if (trace::spans_on())
      trace::Tracer::instance().virtual_complete(
          "setup (graph download + topology)", "modeled", 0, 0.0,
          result.metrics.setup_time * 1e6);
    if (!read.success) {
      result.failed = true;
      result.failure_reason = "graph blob unreadable after " +
                              std::to_string(read.attempts) + " attempts during setup";
      return false;
    }
    return true;
  }

  /// Worker VM hosting partition p (placement table; default p mod workers).
  std::uint32_t vm_of(std::uint32_t partition) const noexcept {
    return placement_[partition];
  }

  void reset_placement_to_modulo() {
    placement_.resize(parts_.size());
    for (std::uint32_t p = 0; p < placement_.size(); ++p) placement_[p] = p % workers_now_;
    ++location_version_;
  }

  /// Per-worker resident floor (the graph bytes of the partitions each VM
  /// hosts) feeding the sizers' headroom math. Placement-sensitive: it must
  /// be re-derived whenever the partition->VM mapping changes, or the sizers
  /// extrapolate against a stale baseline.
  void recompute_baseline_memory() {
    baseline_memory_ = 0;
    for (std::uint32_t w = 0; w < workers_now_; ++w)
      baseline_memory_ = std::max(baseline_memory_, vm_graph_bytes(w));
  }

  Bytes vm_graph_bytes(std::uint32_t vm) const {
    Bytes total = 0;
    for (std::uint32_t p = 0; p < parts_.size(); ++p)
      if (placement_[p] == vm) total += parts_[p].graph_bytes;
    return total;
  }

  Bytes partition_resident_bytes(const PartitionState& ps) const {
    return ps.graph_bytes + static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes, 0)) +
           ps.inbox_cur_bytes + ps.inbox_next_bytes;
  }

  void prepare_superstep() {
    for (auto& ps : parts_) {
      ps.inbox_cur.swap(ps.inbox_next);
      ps.inbox_cur_src.swap(ps.inbox_next_src);
      ps.inbox_cur_bytes = ps.inbox_next_bytes;
      ps.inbox_next_bytes = 0;
      ps.active_cur = std::move(ps.active_next);
      ps.active_next.clear();
      // The dedupe flags are still set for active_cur's members; reuse them
      // to merge this superstep's wakes in O(actives + wakes), then clear.
      if (auto it = ps.wakes.find(superstep_); it != ps.wakes.end()) {
        for (std::uint32_t l : it->second) {
          if (!ps.in_active_next[l]) {
            ps.in_active_next[l] = true;
            ps.active_cur.push_back(l);
          }
        }
        ps.wakes.erase(it);
      }
      for (std::uint32_t l : ps.active_cur) ps.in_active_next[l] = false;
      if (migrated_) {
        // After a migration, local index order no longer equals serial-visit
        // order; compute must walk actives in immutable-rank order so staged
        // emissions come out rank-sorted per outbox row.
        std::sort(ps.active_cur.begin(), ps.active_cur.end(),
                  [&](std::uint32_t a, std::uint32_t b) {
                    return rank_of_[ps.vertices[a]] < rank_of_[ps.vertices[b]];
                  });
      } else {
        std::sort(ps.active_cur.begin(), ps.active_cur.end());
      }
      ps.load = {};
      ps.outbuf_bytes = 0;
      // Delta-checkpoint dirty tracking: a migration rebuilt the partition
      // under us -> everything is dirty until the forced re-base publishes.
      // Ordinary dirtying happens after each compute() (see
      // compute_partition / compute_chunk): the vertex rides the next delta
      // leg unless its program declared the call a write-free no-op via
      // ctx.state_unchanged().
      if (track_dirty_ && ps.dirty.size() != ps.vertices.size())
        ps.dirty.assign(ps.vertices.size(), 1);
    }
    // Confined recovery keeps a per-superstep log of remote outbox bytes
    // (src partition x dst partition). Only the current superstep's row is
    // materialized: replayed supersteps regenerate their row determin-
    // istically before the re-delivery cost is read from it.
    if (log_outboxes_) outbox_log_cur_.assign(parts_.size() * parts_.size(), 0);
  }

  bool any_activity() const {
    // Pending future wakes keep the job alive even through idle supersteps
    // (e.g. the gap between a BC vertex's discovery and its successor
    // census).
    for (const auto& ps : parts_)
      if (!ps.active_cur.empty() || !ps.wakes.empty()) return true;
    return false;
  }

  /// Drain one partition's active vertices through compute() on the serial
  /// fast path: emissions route immediately (chunk == kNoChunk), nothing is
  /// staged.
  void compute_partition(std::uint32_t p) {
    trace::Span span("engine.compute", "superstep", "part", p);
    PartitionState& ps = parts_[p];
    for (std::uint32_t l : ps.active_cur) {
      VertexContext<Program> ctx(this, p, l, ps.vertices[l], kNoChunk);
      std::vector<M>& box = ps.inbox_cur[l];
      if constexpr (has_combiner()) {
        // Lockstep invariant: with a combiner active, every buffered message
        // has exactly one source entry (seeds included).
        if (opts_combine_) PREGEL_DCHECK(ps.inbox_cur_src[l].size() == box.size());
      }
      ++ps.load.vertices_computed;
      ps.load.messages_processed += box.size();
      program_.compute(ctx, ps.values[l], std::span<const M>(box));
      if (track_dirty_ && ctx.mutated_) ps.dirty[l] = 1;
      // Drain: buffered incoming bytes are released after compute.
      for (const M& m : box) {
        const Bytes b = cost_.buffered_bytes(payload_bytes(m));
        ps.inbox_cur_bytes -= std::min(ps.inbox_cur_bytes, b);
      }
      // Release large buffers back to the allocator but keep small-vector
      // capacity cached — reallocating every box every superstep is pure
      // churn for the common small-frontier case.
      shrink_after_drain(box);
      if (opts_combine_) shrink_after_drain(ps.inbox_cur_src[l]);
    }
  }

  /// Pack each partition's sorted active list into its frontier bag and
  /// enumerate the bags' leaves as chunks — partition-major, leaf order —
  /// so "chunk index order" is exactly serial visit order. Scratch slots are
  /// reused across supersteps (cleared, not reallocated).
  void build_frontier_chunks() {
    chunks_.clear();
    const std::size_t n = parts_.size();
    for (std::uint32_t p = 0; p < n; ++p) {
      Bag& bag = frontier_bags_[p];
      bag.assign(std::span<const std::uint32_t>(parts_[p].active_cur));
      const std::uint32_t first = static_cast<std::uint32_t>(chunks_.size());
      for (std::size_t leaf = 0; leaf < bag.num_leaves(); ++leaf)
        chunks_.push_back(ChunkRef{p, static_cast<std::uint32_t>(leaf)});
      part_chunk_range_[p] = {first, static_cast<std::uint32_t>(chunks_.size())};
    }
    if (chunk_scratch_.size() < chunks_.size()) chunk_scratch_.resize(chunks_.size());
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      ChunkScratch& cs = chunk_scratch_[c];
      cs.out.resize(n);
      cs.load = {};
      cs.drained_bytes = 0;
      cs.state_delta = 0;
      cs.emit_seq = 0;
    }
  }

  /// Drain one frontier chunk through compute(), staging every side effect
  /// in the chunk's scratch. Chunks touch only their own scratch, their own
  /// vertices' inboxes/values (disjoint: a vertex is in exactly one leaf),
  /// and per-vertex state_bytes_v slots — so any lane may run any chunk.
  void compute_chunk(std::size_t c) {
    const ChunkRef ref = chunks_[c];
    PartitionState& ps = parts_[ref.partition];
    ChunkScratch& cs = chunk_scratch_[c];
    for (std::uint32_t l : frontier_bags_[ref.partition].leaf(ref.leaf)) {
      // Tag emissions with the sender's immutable rank and its combining
      // domain. The domain is the VM of the vertex's *original* partition:
      // identical to vm_of(p) while unmigrated, and invariant under
      // migration so combiner groupings never change with the plan.
      cs.computing_rank = rank_of_[ps.vertices[l]];
      cs.computing_src = static_cast<std::uint8_t>(placement_[orig_part_[ps.vertices[l]]]);
      cs.emit_seq = 0;
      VertexContext<Program> ctx(this, ref.partition, l, ps.vertices[l], c);
      std::vector<M>& box = ps.inbox_cur[l];
      if constexpr (has_combiner()) {
        if (opts_combine_) PREGEL_DCHECK(ps.inbox_cur_src[l].size() == box.size());
      }
      ++cs.load.vertices_computed;
      cs.load.messages_processed += box.size();
      program_.compute(ctx, ps.values[l], std::span<const M>(box));
      // Safe unstaged: dirty is per-vertex and a vertex lives in exactly
      // one chunk, so concurrent chunks write disjoint bytes.
      if (track_dirty_ && ctx.mutated_) ps.dirty[l] = 1;
      for (const M& m : box) cs.drained_bytes += cost_.buffered_bytes(payload_bytes(m));
      shrink_after_drain(box);
      if (opts_combine_) shrink_after_drain(ps.inbox_cur_src[l]);
    }
  }

  /// Activations and wakes staged by partition q's own chunks, applied by
  /// q's merge task (single-threaded per destination) in chunk order. Both
  /// are order-insensitive — activation dedupes through the bitmap and the
  /// active list is sorted next superstep; wakes are merged through the same
  /// bitmap when their superstep arrives — but chunk order keeps the raw
  /// vectors deterministic anyway.
  void apply_chunk_side_effects(std::uint32_t q) {
    const auto [first, last] = part_chunk_range_[q];
    for (std::uint32_t c = first; c < last; ++c) {
      ChunkScratch& cs = chunk_scratch_[c];
      for (std::uint32_t l : cs.activations) activate_local(q, l);
      cs.activations.clear();
      for (const auto& [at, l] : cs.wakes) parts_[q].wakes[at].push_back(l);
      cs.wakes.clear();
    }
  }

  /// Apply every staged message addressed to partition q (plus q's own
  /// staged activations/wakes). Unmigrated push: scan source partitions in
  /// ascending order and each source's chunk rows in leaf + emission order —
  /// the exact order serial execution would have delivered them in, so inbox
  /// contents (and combiner merges) are bit-identical. Source-side counters
  /// go to this destination's scratch row; they cannot be written to the
  /// source partitions here because another merge thread may own them.
  void merge_destination(std::uint32_t q) {
    trace::Span span("engine.merge", "superstep", "part", q);
    apply_chunk_side_effects(q);
    if (pull_this_step_) {
      merge_destination_pull(q);
      return;
    }
    if (migrated_) {
      merge_destination_ranked(q);
      return;
    }
    const std::size_t n = parts_.size();
    for (std::uint32_t src = 0; src < n; ++src) {
      SendScratch& acc = send_scratch_[q * n + src];
      const auto [first, last] = part_chunk_range_[src];
      for (std::uint32_t c = first; c < last; ++c) {
        std::vector<StagedMessage>& row = chunk_scratch_[c].out[q];
        for (StagedMessage& s : row)
          deliver(src, q, s.target_local, std::move(s.message), acc.load, acc.outbuf_bytes,
                  s.combine_src);
        shrink_after_drain(row);
      }
    }
  }

  /// Post-migration merge for destination q: a K-way merge of the source
  /// partitions' staged streams by sender rank. Each source's concatenated
  /// chunk rows are rank-sorted (compute walks actives in rank order and
  /// chunks follow leaf order) and a rank never appears under two sources
  /// (a vertex lives in exactly one partition), so repeatedly draining the
  /// full equal-rank run from the source with the smallest head rank
  /// reproduces the unmigrated serial delivery order exactly. A run is
  /// always contiguous within one chunk row because a vertex computes in
  /// exactly one leaf.
  void merge_destination_ranked(std::uint32_t q) {
    const std::size_t n = parts_.size();
    struct Cursor {
      std::uint32_t chunk;
      std::size_t pos;
    };
    std::vector<Cursor> cur(n);
    for (std::uint32_t src = 0; src < n; ++src) cur[src] = {part_chunk_range_[src].first, 0};
    const auto head = [&](std::uint32_t src) -> StagedMessage* {
      Cursor& c = cur[src];
      while (c.chunk < part_chunk_range_[src].second) {
        std::vector<StagedMessage>& row = chunk_scratch_[c.chunk].out[q];
        if (c.pos < row.size()) return &row[c.pos];
        ++c.chunk;
        c.pos = 0;
      }
      return nullptr;
    };
    for (;;) {
      std::uint32_t best = static_cast<std::uint32_t>(n);
      std::uint32_t best_rank = 0;
      for (std::uint32_t src = 0; src < n; ++src) {
        const StagedMessage* h = head(src);
        if (h != nullptr && (best == n || h->sender_rank < best_rank)) {
          best = src;
          best_rank = h->sender_rank;
        }
      }
      if (best == n) break;
      Cursor& c = cur[best];
      std::vector<StagedMessage>& row = chunk_scratch_[c.chunk].out[q];
      SendScratch& acc = send_scratch_[q * n + best];
      while (c.pos < row.size() && row[c.pos].sender_rank == best_rank) {
        StagedMessage& s = row[c.pos++];
        deliver(best, q, s.target_local, std::move(s.message), acc.load, acc.outbuf_bytes,
                s.combine_src);
      }
    }
    for (std::uint32_t src = 0; src < n; ++src) {
      const auto [first, last] = part_chunk_range_[src];
      for (std::uint32_t c = first; c < last; ++c)
        shrink_after_drain(chunk_scratch_[c].out[q]);
    }
  }

  /// Pull-mode merge for destination q: synthesize the push message stream
  /// per target from (a) pointwise staged sends and (b) the in-neighbors'
  /// broadcast records, merged by (sender rank, emission seq). Only the
  /// per-target relative order is observable downstream (inbox contents,
  /// combiner scans; all cross-target effects are order-free sums or
  /// deduped sets), and within one sender the emissions to a given target
  /// appear in call order under both schemes — so the synthesized stream
  /// matches push message for message. Parallel edges: a broadcast record
  /// is delivered once per adjacent duplicate in the in-neighbor list
  /// (record-major, exactly the per-target order the push loop produces).
  void merge_destination_pull(std::uint32_t q) {
    const std::size_t n = parts_.size();
    struct Pending {
      std::uint32_t target_local;
      std::uint32_t rank;
      std::uint32_t seq;
      std::uint32_t src_part;
      std::uint8_t combine_src;
      M message;
    };
    std::vector<Pending> pending;
    for (std::uint32_t src = 0; src < n; ++src) {
      const auto [first, last] = part_chunk_range_[src];
      for (std::uint32_t c = first; c < last; ++c) {
        std::vector<StagedMessage>& row = chunk_scratch_[c].out[q];
        for (StagedMessage& s : row)
          pending.push_back(
              Pending{s.target_local, s.sender_rank, s.seq, src, s.combine_src,
                      std::move(s.message)});
        shrink_after_drain(row);
      }
    }
    // (target, rank, seq) is unique — one sender emits each seq once — so
    // the sort is a total order and lane scheduling cannot perturb it.
    std::sort(pending.begin(), pending.end(), [](const Pending& a, const Pending& b) {
      return std::tie(a.target_local, a.rank, a.seq) <
             std::tie(b.target_local, b.rank, b.seq);
    });

    PartitionState& dst = parts_[q];
    std::size_t pi = 0;
    for (std::uint32_t u = 0; u < dst.vertices.size(); ++u) {
      std::size_t pe = pi;
      while (pe < pending.size() && pending[pe].target_local == u) ++pe;
      const VertexId gu = dst.vertices[u];
      std::size_t ei = pull_off_[gu];
      const std::size_t ie = pull_off_[gu + 1];
      std::size_t ri = 0;  // record index within the current broadcast group
      const auto skip_silent = [&] {
        while (ei < ie && broadcast_store_[pull_src_[ei]].empty()) {
          const VertexId w = pull_src_[ei];
          do ++ei;
          while (ei < ie && pull_src_[ei] == w);
        }
      };
      skip_silent();
      while (pi < pe || ei < ie) {
        bool take_pending;
        if (pi >= pe) {
          take_pending = false;
        } else if (ei >= ie) {
          take_pending = true;
        } else {
          const VertexId w = pull_src_[ei];
          take_pending = std::pair(pending[pi].rank, pending[pi].seq) <
                         std::pair(rank_of_[w], broadcast_store_[w][ri].first);
        }
        if (take_pending) {
          Pending& s = pending[pi++];
          SendScratch& acc = send_scratch_[q * n + s.src_part];
          deliver(s.src_part, q, u, std::move(s.message), acc.load, acc.outbuf_bytes,
                  s.combine_src);
        } else {
          const VertexId w = pull_src_[ei];
          const auto& recs = broadcast_store_[w];
          std::size_t k = 1;  // parallel-edge multiplicity (duplicates adjacent)
          while (ei + k < ie && pull_src_[ei + k] == w) ++k;
          const std::uint32_t sp = part_of_[w];
          SendScratch& acc = send_scratch_[q * n + sp];
          const std::uint8_t csrc = static_cast<std::uint8_t>(placement_[orig_part_[w]]);
          for (std::size_t j = 0; j < k; ++j)
            deliver(sp, q, u, M(recs[ri].second), acc.load, acc.outbuf_bytes, csrc);
          if (++ri >= recs.size()) {
            ei += k;
            ri = 0;
            skip_silent();
          }
        }
      }
      pi = pe;
    }
  }

  /// Run `f(p)` for every partition index — on the pool when one exists,
  /// serially otherwise. The staged execution path uses this so a
  /// parallelism-1 run after a migration (or in pull mode) stages through
  /// the same merge machinery without spinning up threads.
  template <class F>
  void for_each_partition(F&& f) {
    if (pool_)
      pool_->parallel_for(parts_.size(), std::forward<F>(f));
    else
      for (std::size_t i = 0; i < parts_.size(); ++i) f(i);
  }

  /// Compute + route for one superstep through the staged path,
  /// bit-identical to the serial path. Two barriers: (1) every frontier
  /// chunk computes with all side effects staged in its scratch — on the
  /// pool, lanes start on their home partitions' chunk queues and steal
  /// from the heaviest remaining queue when they run dry; (2) every
  /// destination partition applies its staged messages single-threaded in
  /// deterministic merge order. Chunk-indexed counters then fold back
  /// serially in chunk (= serial visit) order, and aggregate / root logs
  /// replay in serial order. Which lane drained which chunk is thereby
  /// unobservable outside wall clock and the steal counters.
  void execute_superstep_staged() {
    const std::size_t n = parts_.size();
    build_frontier_chunks();
    if (pool_ && chunks_.size() > 1) {
      std::vector<std::vector<std::size_t>> queues(pool_->size());
      for (std::size_t c = 0; c < chunks_.size(); ++c)
        queues[chunks_[c].partition % pool_->size()].push_back(c);
      last_steals_ = pool_->parallel_steal(std::move(queues),
                                           [this](std::size_t c) { compute_chunk(c); });
    } else {
      for (std::size_t c = 0; c < chunks_.size(); ++c) compute_chunk(c);
    }

    // Fold chunk-local partition counters back in chunk order: integer sums
    // plus the clamped inbox drain, matching the serial accounting.
    for (std::uint32_t p = 0; p < n; ++p) {
      PartitionState& ps = parts_[p];
      const auto [first, last] = part_chunk_range_[p];
      for (std::uint32_t c = first; c < last; ++c) {
        ChunkScratch& cs = chunk_scratch_[c];
        ps.load.vertices_computed += cs.load.vertices_computed;
        ps.load.messages_processed += cs.load.messages_processed;
        ps.inbox_cur_bytes -= std::min(ps.inbox_cur_bytes, cs.drained_bytes);
        ps.state_bytes += cs.state_delta;
      }
    }

    for_each_partition([this](std::size_t q) {
      merge_destination(static_cast<std::uint32_t>(q));
    });

    // Fold the per-(destination x source) send counters back into their
    // source partitions (integer sums — order-free), then replay the
    // deterministic logs in serial order.
    for (std::uint32_t p = 0; p < n; ++p) {
      PartitionState& ps = parts_[p];
      for (std::uint32_t q = 0; q < n; ++q) {
        SendScratch& acc = send_scratch_[q * n + p];
        ps.load.messages_sent_local += acc.load.messages_sent_local;
        ps.load.messages_sent_remote += acc.load.messages_sent_remote;
        ps.load.bytes_sent_remote += acc.load.bytes_sent_remote;
        ps.outbuf_bytes += acc.outbuf_bytes;
        acc = {};
      }
    }
    replay_staged_logs();
    if (pull_this_step_) clear_broadcast_records();
  }

  /// Drop this superstep's pull-mode broadcast records, releasing large
  /// stores under the same drain-shrink policy as the inboxes.
  void clear_broadcast_records() {
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      ChunkScratch& cs = chunk_scratch_[c];
      for (const VertexId v : cs.broadcasters) shrink_after_drain(broadcast_store_[v]);
      cs.broadcasters.clear();
    }
  }

  // ---- subgraph-centric execution (docs/SUBGRAPH.md) ----------------------

  /// One chunk per partition: chunk index == partition index, so the staged
  /// merge, the counter folds, and the log replays all see the exact shape
  /// the vertex-centric staged path produces, with leaf order degenerate.
  void setup_subgraph_chunks() {
    const std::size_t n = parts_.size();
    chunks_.clear();
    for (std::uint32_t p = 0; p < n; ++p) {
      part_chunk_range_[p] = {p, p + 1};
      chunks_.push_back(ChunkRef{p, 0});
    }
    if (chunk_scratch_.size() < n) chunk_scratch_.resize(n);
    for (std::size_t c = 0; c < n; ++c) {
      ChunkScratch& cs = chunk_scratch_[c];
      cs.out.resize(n);
      cs.load = {};
      cs.drained_bytes = 0;
      cs.state_delta = 0;
      cs.emit_seq = 0;
    }
  }

  /// Hand one whole partition to the program, then establish the canonical
  /// outbox order: every staged row sorted by (sender rank, emission seq).
  /// seq is unique per chunk, so the sort is a total order independent of
  /// emission interleaving; unmigrated partition-major concatenation and the
  /// post-migration rank merge then both deliver every inbox in ascending
  /// sender rank — subgraph delivery order is migration-invariant.
  void compute_subgraph_partition(std::uint32_t p) {
    PartitionState& ps = parts_[p];
    if (ps.active_cur.empty()) return;
    ChunkScratch& cs = chunk_scratch_[p];
    cs.load.vertices_computed += ps.active_cur.size();
    for (const std::uint32_t l : ps.active_cur)
      cs.load.messages_processed += ps.inbox_cur[l].size();

    SubgraphContext<Program> ctx(this, p);
    program_.compute_subgraph(ctx);

    if (track_dirty_) {
      if (ctx.unchanged_all_) {
        for (const std::uint32_t l : ctx.changed_) ps.dirty[l] = 1;
      } else {
        // Conservative default, mirroring the vertex path's mutated_ = true.
        for (const std::uint32_t l : ps.active_cur) ps.dirty[l] = 1;
      }
    }

    // Drain the frontier's inboxes (every non-empty inbox belongs to an
    // active local — delivery activates its target).
    for (const std::uint32_t l : ps.active_cur) {
      auto& box = ps.inbox_cur[l];
      for (const M& m : box) cs.drained_bytes += cost_.buffered_bytes(payload_bytes(m));
      shrink_after_drain(box);
      if (opts_combine_) shrink_after_drain(ps.inbox_cur_src[l]);
    }

    for (auto& row : cs.out)
      std::sort(row.begin(), row.end(),
                [](const StagedMessage& a, const StagedMessage& b) {
                  return a.sender_rank != b.sender_rank ? a.sender_rank < b.sender_rank
                                                        : a.seq < b.seq;
                });
    std::stable_sort(cs.aggs.begin(), cs.aggs.end(),
                     [](const StagedAgg& a, const StagedAgg& b) { return a.rank < b.rank; });
    std::stable_sort(
        cs.roots.begin(), cs.roots.end(),
        [](const StagedRootDone& a, const StagedRootDone& b) { return a.rank < b.rank; });
  }

  /// The subgraph-centric superstep: compute every partition (in parallel —
  /// each stages into its own scratch), then the same fold / merge / replay
  /// sequence as the vertex-centric staged path. There is no chunk stealing:
  /// the partition is the indivisible unit of subgraph work.
  void execute_superstep_subgraph() {
    const std::size_t n = parts_.size();
    setup_subgraph_chunks();
    for_each_partition([this](std::size_t p) {
      compute_subgraph_partition(static_cast<std::uint32_t>(p));
    });

    for (std::uint32_t p = 0; p < n; ++p) {
      PartitionState& ps = parts_[p];
      ChunkScratch& cs = chunk_scratch_[p];
      ps.load.vertices_computed += cs.load.vertices_computed;
      ps.load.messages_processed += cs.load.messages_processed;
      ps.load.subgraph_ops += cs.load.subgraph_ops;
      ps.inbox_cur_bytes -= std::min(ps.inbox_cur_bytes, cs.drained_bytes);
      ps.state_bytes += cs.state_delta;
    }

    for_each_partition([this](std::size_t q) {
      merge_destination(static_cast<std::uint32_t>(q));
    });

    for (std::uint32_t p = 0; p < n; ++p) {
      PartitionState& ps = parts_[p];
      for (std::uint32_t q = 0; q < n; ++q) {
        SendScratch& acc = send_scratch_[q * n + p];
        ps.load.messages_sent_local += acc.load.messages_sent_local;
        ps.load.messages_sent_remote += acc.load.messages_sent_remote;
        ps.load.bytes_sent_remote += acc.load.bytes_sent_remote;
        ps.outbuf_bytes += acc.outbuf_bytes;
        acc = {};
      }
    }
    replay_staged_logs();
  }

  /// K-way merge of per-chunk logs by emitter rank across source
  /// partitions; within one partition the concatenated chunk logs are
  /// already rank-sorted (compute walks actives in rank order, chunks
  /// follow leaf order), and one vertex's contributions sit contiguously in
  /// one chunk's log.
  template <class LogOf, class Apply>
  void replay_rank_merged(LogOf&& log_of, Apply&& apply) {
    const std::size_t n = parts_.size();
    struct Cursor {
      std::uint32_t chunk;
      std::size_t pos;
    };
    std::vector<Cursor> cur(n);
    for (std::uint32_t p = 0; p < n; ++p) cur[p] = {part_chunk_range_[p].first, 0};
    const auto settle = [&](std::uint32_t p) {
      Cursor& c = cur[p];
      while (c.chunk < part_chunk_range_[p].second && c.pos >= log_of(c.chunk).size()) {
        ++c.chunk;
        c.pos = 0;
      }
      return c.chunk < part_chunk_range_[p].second;
    };
    for (;;) {
      std::uint32_t best = static_cast<std::uint32_t>(n);
      std::uint32_t best_rank = 0;
      for (std::uint32_t p = 0; p < n; ++p) {
        if (!settle(p)) continue;
        const std::uint32_t r = log_of(cur[p].chunk)[cur[p].pos].rank;
        if (best == n || r < best_rank) {
          best = p;
          best_rank = r;
        }
      }
      if (best == n) break;
      Cursor& c = cur[best];
      const auto& log = log_of(c.chunk);
      while (c.pos < log.size() && log[c.pos].rank == best_rank) apply(log[c.pos++]);
    }
  }

  /// Replay the aggregate / root-completion logs in the exact serial order:
  /// chunk order while unmigrated (chunk order IS serial visit order), and
  /// a K-way merge by emitter rank after a migration. The two streams are
  /// replayed independently — an aggregate sum is order-sensitive only
  /// against other aggregate contributions, and root completions only
  /// against each other.
  void replay_staged_logs() {
    if (!migrated_) {
      for (std::size_t c = 0; c < chunks_.size(); ++c) {
        ChunkScratch& cs = chunk_scratch_[c];
        for (const StagedAgg& a : cs.aggs) agg_cur_.add(a.key, a.value);
        cs.aggs.clear();
        for (const StagedRootDone& r : cs.roots) mark_root_done(r.root);
        cs.roots.clear();
      }
      return;
    }
    replay_rank_merged(
        [this](std::uint32_t c) -> const std::vector<StagedAgg>& {
          return chunk_scratch_[c].aggs;
        },
        [this](const StagedAgg& a) { agg_cur_.add(a.key, a.value); });
    replay_rank_merged(
        [this](std::uint32_t c) -> const std::vector<StagedRootDone>& {
          return chunk_scratch_[c].roots;
        },
        [this](const StagedRootDone& r) { mark_root_done(r.root); });
    for (std::size_t c = 0; c < chunks_.size(); ++c) {
      chunk_scratch_[c].aggs.clear();
      chunk_scratch_[c].roots.clear();
    }
  }

  /// Whether the program opted into direction optimization
  /// (`static constexpr bool kDirectionOptimized = true;`).
  static constexpr bool direction_capable() {
    if constexpr (requires { Program::kDirectionOptimized; })
      return static_cast<bool>(Program::kDirectionOptimized);
    else
      return false;
  }

  /// Whether the program is subgraph-centric
  /// (`static constexpr bool kSubgraphModel = true;` + compute_subgraph()).
  /// The if-constexpr dispatch in execute_superstep() means vertex-path
  /// members that call program_.compute never instantiate for subgraph
  /// programs, and compute_subgraph is never required of vertex programs.
  static constexpr bool subgraph_model() {
    if constexpr (requires { Program::kSubgraphModel; })
      return static_cast<bool>(Program::kSubgraphModel);
    else
      return false;
  }

  /// Beamer-style push/pull decision from modeled frontier density only —
  /// active-vertex counts and out-degrees, never thread counts or host
  /// clocks — with hysteresis so the engine does not flap around the
  /// threshold. Part of the bit-identity contract.
  void decide_direction() {
    if (opts_.direction.mode == DirectionOptions::Mode::kAlways) {
      pull_mode_ = pull_this_step_ = true;
      return;
    }
    std::uint64_t frontier_v = 0;
    std::uint64_t frontier_arcs = 0;
    for (const PartitionState& ps : parts_) {
      frontier_v += ps.active_cur.size();
      for (std::uint32_t l : ps.active_cur)
        frontier_arcs += graph_->out_degree(ps.vertices[l]);
    }
    if (!pull_mode_) {
      if (static_cast<double>(frontier_arcs) >
          static_cast<double>(graph_->num_arcs()) / opts_.direction.alpha)
        pull_mode_ = true;
    } else {
      if (static_cast<double>(frontier_v) <
          static_cast<double>(graph_->num_vertices()) / opts_.direction.beta)
        pull_mode_ = false;
    }
    pull_this_step_ = pull_mode_;
  }

  /// Global in-edge CSR (pull_off_ / pull_src_) with every target's
  /// in-neighbor list sorted by sender rank: filling in ascending-rank
  /// sender order makes each per-target slice rank-sorted for free
  /// (parallel edges stay adjacent). Built lazily on the first pull
  /// superstep; invalidated whenever build_partitions re-derives ranks.
  void build_pull_index() {
    const VertexId n = graph_->num_vertices();
    std::vector<VertexId> by_rank(n);
    for (VertexId v = 0; v < n; ++v) by_rank[rank_of_[v]] = v;
    pull_off_.assign(static_cast<std::size_t>(n) + 1, 0);
    for (VertexId v = 0; v < n; ++v)
      for (VertexId u : graph_->out_neighbors(v)) ++pull_off_[static_cast<std::size_t>(u) + 1];
    for (std::size_t i = 1; i <= n; ++i) pull_off_[i] += pull_off_[i - 1];
    pull_src_.resize(graph_->num_arcs());
    std::vector<std::size_t> fill(pull_off_.begin(), pull_off_.end() - 1);
    for (std::uint32_t r = 0; r < n; ++r) {
      const VertexId w = by_rank[r];
      for (VertexId u : graph_->out_neighbors(w)) pull_src_[fill[u]++] = w;
    }
    pull_index_built_ = true;
  }

  SuperstepMetrics execute_superstep() {
    trace::Span span("engine.superstep", "superstep", "superstep", superstep_);
    agg_cur_.clear();
    last_steals_ = {};
    pull_this_step_ = false;
    if (direction_enabled_) {
      decide_direction();
      if (pull_this_step_ && !pull_index_built_) build_pull_index();
    }

    if constexpr (subgraph_model()) {
      execute_superstep_subgraph();
    } else if (threads_ > 1 || migrated_ || pull_this_step_) {
      execute_superstep_staged();
    } else {
      for (std::uint32_t p = 0; p < parts_.size(); ++p) compute_partition(p);
    }

    std::uint64_t active_total = 0;
    for (const PartitionState& ps : parts_) active_total += ps.active_cur.size();
    last_active_vertices_ = active_total;

    SuperstepMetrics sm;
    sm.superstep = superstep_;
    sm.active_workers = workers_now_;
    sm.active_vertices = active_total;
    sm.active_roots = outstanding_count();
    sm.pull_mode = pull_this_step_;
    sm.steals = last_steals_.steals;
    sm.stolen_chunks = last_steals_.stolen_items;
    return sm;
  }

  /// Compute per-VM loads and modeled times; returns true when a VM restart
  /// terminated the job.
  bool finalize_timing(SuperstepMetrics& sm, JobResult<Program>& result) {
    const std::uint32_t w = workers_now_;
    sm.workers.assign(w, {});
    std::vector<cloud::WorkerLoad> vm_load(w);

    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      const PartitionState& ps = parts_[p];
      cloud::WorkerLoad& L = vm_load[vm_of(p)];
      L.vertices_computed += ps.load.vertices_computed;
      L.messages_processed += ps.load.messages_processed;
      L.messages_sent_local += ps.load.messages_sent_local;
      L.messages_sent_remote += ps.load.messages_sent_remote;
      L.bytes_sent_remote += ps.load.bytes_sent_remote;
      L.bytes_received_remote += ps.load.bytes_received_remote;
      L.subgraph_ops += ps.load.subgraph_ops;
      // Peak resident: partition graph + algorithm state + undrained inbox
      // snapshot + next-superstep buffers + serialized outgoing.
      L.memory_peak += ps.graph_bytes +
                       static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes, 0)) +
                       ps.inbox_cur_bytes + ps.inbox_next_bytes + ps.outbuf_bytes;
    }

    Bytes unspilled_peak = 0;
    for (std::uint32_t i = 0; i < w; ++i)
      unspilled_peak = std::max(unspilled_peak, vm_load[i].memory_peak);
    last_unspilled_peak_ = unspilled_peak;

    // Governor rung 2a: above the hard watermark, spill the coldest message
    // buffers to blob storage until the resident peak falls back to the soft
    // watermark (or the spillable bytes run out). The spilled bytes leave
    // the resident footprint before the restart check; the round-trip blob
    // I/O is charged to the worker's network time below.
    std::vector<Bytes> vm_spill;
    if (governor_.enabled()) {
      vm_spill.assign(w, 0);
      std::vector<Bytes> vm_spillable(w, 0);
      for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        const PartitionState& ps = parts_[p];
        vm_spillable[vm_of(p)] += ps.inbox_cur_bytes + ps.inbox_next_bytes + ps.outbuf_bytes;
      }
      // Track how much of the swath's peak superstep was spillable message
      // buffer: the sizers discount it from the footprint when spilling is
      // priced cheaper than shrinking the swath (spill-aware sizing).
      if (unspilled_peak >= peak_memory_since_initiation_) {
        for (std::uint32_t i = 0; i < w; ++i) {
          if (vm_load[i].memory_peak == unspilled_peak) {
            peak_spillable_since_initiation_ = vm_spillable[i];
            break;
          }
        }
      }
      for (std::uint32_t i = 0; i < w; ++i) {
        const Bytes spill = governor_.spill_amount(vm_load[i].memory_peak, vm_spillable[i]);
        if (spill == 0) continue;
        vm_spill[i] = spill;
        vm_load[i].memory_peak -= spill;
        ++result.metrics.governor_spills;
        result.metrics.governor_spill_bytes += spill;
        trace::add("engine.governor.spills", 1);
      }
    }

    Bytes post_spill_peak = 0;
    Seconds slowest = 0.0;
    bool restart = false;
    const bool replaying = confined_replay_active();
    std::vector<Seconds> raw_compute(w), raw_network(w);
    std::vector<double> factors(w);
    for (std::uint32_t i = 0; i < w; ++i) {
      WorkerStepMetrics& wm = sm.workers[i];
      const cloud::WorkerLoad& L = vm_load[i];
      wm.vertices_computed = L.vertices_computed;
      wm.messages_processed = L.messages_processed;
      wm.messages_sent_local = L.messages_sent_local;
      wm.messages_sent_remote = L.messages_sent_remote;
      wm.bytes_sent_remote = L.bytes_sent_remote;
      wm.bytes_received_remote = L.bytes_received_remote;
      wm.subgraph_ops = L.subgraph_ops;
      wm.memory_peak = L.memory_peak;

      // Continuous multi-tenancy jitter times episodic straggler slowdowns.
      const double jitter = noise_.factor(i, superstep_) * faults_.straggler_factor(i, superstep_);
      factors[i] = jitter;
      raw_compute[i] = cost_.compute_time(L, cluster_.vm);
      raw_network[i] = cost_.network_time(L, cluster_.vm, w - 1);
      if (replaying && !replay_lost(i)) {
        // Confined replay: healthy workers keep their state and only
        // re-deliver the logged outbox bytes addressed to lost partitions;
        // the load counters above still describe the logical superstep.
        cloud::WorkerLoad redeliver;
        redeliver.bytes_sent_remote = redelivery_bytes(i);
        wm.compute_time = 0.0;
        wm.network_time = cost_.network_time(redeliver, cluster_.vm, 1) * jitter;
      } else {
        wm.compute_time = raw_compute[i] * jitter;
        wm.network_time = raw_network[i] * jitter;
      }
      if (!vm_spill.empty() && vm_spill[i] > 0) {
        wm.spilled_bytes = vm_spill[i];
        const Seconds spill_t = cost_.spill_transfer_time(vm_spill[i], cluster_.vm);
        wm.network_time += spill_t;
        result.metrics.governor_spill_time += spill_t;
      }
      slowest = std::max(slowest, wm.busy_time());
      post_spill_peak = std::max(post_spill_peak, L.memory_peak);

      if (cost_.triggers_restart(L.memory_peak, cluster_.vm)) restart = true;
    }
    last_post_spill_peak_ = post_spill_peak;

    // Barrier straggler timeout: a worker running past k x the median busy
    // time is declared slow; the least-loaded VM speculatively re-executes
    // its partitions from the point of declaration (only applied when that
    // actually beats waiting the straggler out).
    if (cluster_.straggler_timeout_factor > 1.0 && w >= 3 && !replaying) {
      std::vector<Seconds> busy(w);
      std::uint32_t worst = 0;
      for (std::uint32_t i = 0; i < w; ++i) {
        busy[i] = sm.workers[i].busy_time();
        if (busy[i] > busy[worst]) worst = i;
      }
      std::uint32_t best = worst == 0 ? 1 : 0;
      for (std::uint32_t i = 0; i < w; ++i)
        if (i != worst && busy[i] < busy[best]) best = i;
      // True median (even counts average the two middle samples): the old
      // upper-median made the timeout threshold jump discontinuously between
      // odd and even worker counts.
      const Seconds median = median_of(busy);
      const Seconds timeout = cluster_.straggler_timeout_factor * median;
      if (median > 0.0 && busy[worst] > timeout) {
        const Seconds reexec_compute = raw_compute[worst] * factors[best];
        const Seconds reexec_network = raw_network[worst] * factors[best];
        Seconds others = 0.0;
        for (std::uint32_t i = 0; i < w; ++i)
          if (i != worst) others = std::max(others, busy[i]);
        const Seconds candidate =
            std::max(timeout + reexec_compute + reexec_network, others);
        if (candidate < busy[worst]) {
          // The straggler's attempt is abandoned at the timeout; its work
          // reruns on the healthiest VM, which gates the barrier instead.
          const double scale = timeout / busy[worst];
          sm.workers[worst].compute_time *= scale;
          sm.workers[worst].network_time *= scale;
          sm.workers[best].compute_time += reexec_compute;
          sm.workers[best].network_time += reexec_network;
          slowest = candidate;
          ++result.metrics.straggler_reexecutions;
          if (worst < vm_straggler_counts_.size()) ++vm_straggler_counts_[worst];
        }
      }
    }

    sm.barrier_overhead = cost_.barrier_time(w);
    sm.span = slowest + sm.barrier_overhead;
    if (workers_changed_) {
      sm.span += cluster_.scale_event_cost;
      workers_changed_ = false;
    }
    if (pending_placement_cost_ > 0.0) {
      sm.span += pending_placement_cost_;
      pending_placement_cost_ = 0.0;
    }
    for (auto& wm : sm.workers) wm.barrier_wait = sm.span - wm.busy_time();

    result.metrics.total_time += sm.span;
    meter_.charge(cluster_.vm, w, sm.span);
    // Sizers see the pre-spill peak: spilling hides pressure from the
    // resident footprint, not from the controllers that must shrink it.
    // (Identical to sm.max_worker_memory() when the governor is off.)
    peak_memory_since_initiation_ =
        std::max(peak_memory_since_initiation_, last_unspilled_peak_);
    last_messages_sent_ = sm.messages_sent_total();
    last_superstep_span_ = sm.span;
    result.metrics.work_steals += sm.steals;
    result.metrics.stolen_chunks += sm.stolen_chunks;
    if (sm.pull_mode) ++result.metrics.pull_supersteps;
    if (sm.pull_mode != last_pull_mode_) ++result.metrics.direction_switches;
    last_pull_mode_ = sm.pull_mode;
    trace_superstep(sm, result.metrics.total_time);

    if (restart) {
      if (governor_.enabled() && ckpt_.has_checkpoint()) {
        // Rung 3 trigger: the thrashed VM would be restarted by the fabric.
        // Flag the breach for the governor ladder at this barrier instead of
        // killing the job (fail_on_vm_restart is deliberately bypassed).
        governor_breach_ = true;
        return false;
      }
      Bytes worst = 0;
      std::uint32_t worst_vm = 0;
      for (std::uint32_t i = 0; i < w; ++i)
        if (vm_load[i].memory_peak > worst) {
          worst = vm_load[i].memory_peak;
          worst_vm = i;
        }
      if (opts_.fail_on_vm_restart)
        throw JobFailure(superstep_, worst_vm, worst, cluster_.vm.ram);
      result.failed = true;
      result.failure_reason =
          JobFailure(superstep_, worst_vm, worst, cluster_.vm.ram).what();
      return true;
    }
    return false;
  }

  /// Observability hook, called once per superstep after its modeled timing
  /// is final. Rolls the superstep's totals into the perf-counter registry
  /// and draws the modeled cluster on the virtual trace track: one busy span
  /// and one barrier-wait span per worker VM in simulated time (the paper's
  /// Figures 9/12 view), plus counter tracks for message traffic, active
  /// vertices, and peak memory. Pure observation — reads the finished
  /// metrics, writes only trace buffers, so results are unchanged whether
  /// tracing is on or off.
  void trace_superstep(const SuperstepMetrics& sm, Seconds total_time_after) {
    trace::Tracer& t = trace::Tracer::instance();
    virtual_now_us_ = total_time_after * 1e6;
    if (t.counters_on()) {
      std::uint64_t local = 0, remote = 0, bytes = 0, vertices = 0;
      for (const WorkerStepMetrics& wm : sm.workers) {
        local += wm.messages_sent_local;
        remote += wm.messages_sent_remote;
        bytes += wm.bytes_sent_remote;
        vertices += wm.vertices_computed;
      }
      t.counter("engine.supersteps").add(1);
      t.counter("engine.messages.local").add(local);
      t.counter("engine.messages.remote").add(remote);
      t.counter("engine.bytes.remote").add(bytes);
      t.counter("engine.vertices.computed").add(vertices);
      if (sm.steals > 0) t.counter("engine.steals").add(sm.steals);
      if (sm.pull_mode) t.counter("engine.pull.supersteps").add(1);
    }
    if (!t.spans_on()) return;
    const double end_us = total_time_after * 1e6;
    const double start_us = end_us - sm.span * 1e6;
    for (std::uint32_t w = 0; w < sm.workers.size(); ++w) {
      const WorkerStepMetrics& wm = sm.workers[w];
      t.name_virtual_track(w, "worker VM " + std::to_string(w));
      const double busy_us = wm.busy_time() * 1e6;
      std::string args =
          "{\"superstep\":" + std::to_string(sm.superstep) +
          ",\"vertices\":" + std::to_string(wm.vertices_computed) +
          ",\"messages_sent\":" + std::to_string(wm.messages_sent_total()) +
          ",\"memory_peak\":" + std::to_string(wm.memory_peak) + "}";
      t.virtual_complete("compute+network", "modeled", w, start_us, busy_us,
                         std::move(args));
      if (wm.barrier_wait > 0.0)
        t.virtual_complete("barrier wait", "modeled", w, start_us + busy_us,
                           wm.barrier_wait * 1e6);
    }
    t.virtual_counter("messages per superstep", start_us,
                      static_cast<double>(sm.messages_sent_total()));
    t.virtual_counter("active vertices", start_us,
                      static_cast<double>(sm.active_vertices));
    t.virtual_counter("max worker memory", start_us,
                      static_cast<double>(sm.max_worker_memory()));
  }

  void run_barrier(JobResult<Program>& result) {
    trace::Span span("engine.barrier", "superstep", "superstep", superstep_);
    // 1. Master compute (aggregates from this superstep -> globals for next).
    if constexpr (requires(Program & pr, MasterContext<Program> & mc) {
                    pr.master_compute(mc);
                  }) {
      MasterContext<Program> mc(this);
      program_.master_compute(mc);
    }
    globals_ = std::move(globals_next_);
    globals_next_ = Globals{};

    // 2. Swath scheduling.
    ++supersteps_since_initiation_;
    maybe_initiate_swath(/*at_startup=*/false, result);
    result.roots_completed = roots_completed_;
    result.swaths_initiated = swath_index_;

    // 3. Elastic scaling decision for the next superstep.
    if (cluster_.scaling) {
      cloud::ScalingSignals sig;
      sig.superstep = superstep_;
      sig.active_vertices = last_active_vertices_;
      sig.total_vertices = graph_->num_vertices();
      sig.messages_sent = result.metrics.supersteps.back().messages_sent_total();
      sig.max_worker_memory = result.metrics.supersteps.back().max_worker_memory();
      sig.current_workers = workers_now_;
      const std::uint32_t decided = std::clamp<std::uint32_t>(
          cluster_.scaling->decide(sig), 1, cluster_.num_partitions);
      if (decided != workers_now_) {
        if (trace::spans_on()) {
          const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                                   ",\"from\":" + std::to_string(workers_now_) +
                                   ",\"to\":" + std::to_string(decided) + "}";
          trace::Tracer::instance().instant("scale.decision", "cloud", args);
          trace::Tracer::instance().virtual_instant("scale.decision", "cloud",
                                                    virtual_now_us_, args);
        }
        trace::add("engine.scale_events", 1);
        const std::vector<std::uint32_t> old_placement = placement_;
        workers_now_ = decided;
        workers_changed_ = true;
        // New VM set: fall back to the default layout; the placement policy
        // (if any) refines it below with fresh load data. Straggler history
        // is per-VM-identity and does not survive the re-provisioning.
        reset_placement_to_modulo();
        vm_straggler_counts_.assign(workers_now_, 0);
        recompute_baseline_memory();
        if (cluster_.migration.enabled()) {
          // With the migration subsystem wired, the scale event's partition
          // redistribution rides the modeled transfer planes (every byte
          // charged) instead of being folded into scale_event_cost, and the
          // planner may additionally rebalance vertices onto the new layout.
          charge_partition_redistribution(old_placement, result);
          if (cluster_.migration.on_scaling) plan_and_migrate(result, "scale");
        }
      }
    }

    // 4. Dynamic partition placement (overdecomposition rebalancing).
    if (cluster_.placement) {
      cloud::PlacementSignals sig;
      sig.superstep = superstep_;
      sig.workers = workers_now_;
      sig.placement = placement_;
      sig.vm_stragglers = vm_straggler_counts_;
      sig.zones = zones_.zones;
      if (zones_.zones > 1) {
        sig.vm_zone.resize(workers_now_);
        for (std::uint32_t v = 0; v < workers_now_; ++v) sig.vm_zone[v] = zones_.zone_of(v);
      }
      sig.partition_load.reserve(parts_.size());
      sig.partition_bytes.reserve(parts_.size());
      for (const auto& ps : parts_) {
        sig.partition_load.push_back(
            static_cast<double>(ps.load.messages_processed + ps.load.messages_sent_local +
                                ps.load.messages_sent_remote + ps.load.vertices_computed));
        sig.partition_bytes.push_back(partition_resident_bytes(ps));
      }
      std::vector<std::uint32_t> next = cluster_.placement->place(sig);
      PREGEL_CHECK_MSG(next.size() == parts_.size(),
                       "PlacementPolicy returned wrong-sized placement");
      // Migration cost: each destination VM downloads the partitions that
      // move to it; transfers overlap, so the slowest VM bounds the stall.
      std::vector<Bytes> incoming(workers_now_, 0);
      bool moved = false;
      for (std::uint32_t p = 0; p < next.size(); ++p) {
        PREGEL_CHECK_MSG(next[p] < workers_now_, "PlacementPolicy target out of range");
        if (next[p] != placement_[p]) {
          moved = true;
          incoming[next[p]] += sig.partition_bytes[p];
        }
      }
      if (moved) {
        Bytes worst = 0;
        for (Bytes b : incoming) worst = std::max(worst, b);
        const double bw_Bps =
            cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
        pending_placement_cost_ = static_cast<double>(worst) / bw_Bps +
                                  cost_.params().queue_op_latency;
        placement_ = std::move(next);
        ++location_version_;
        recompute_baseline_memory();
      }
    }

    // 5. Periodic activity-aware vertex rebalancing (the live-migration
    // subsystem's steady-state trigger; scaling events trigger it above).
    if (cluster_.migration.enabled() && cluster_.migration.period > 0 &&
        (superstep_ + 1) % cluster_.migration.period == 0) {
      plan_and_migrate(result, "periodic");
    }

    // 6. Frontier-collapse scale-in: retire an idle VM and return its
    // capacity (to the pool, under a scheduler; to the bill, solo).
    maybe_scale_in(result);
  }

  /// Scale-in rung: when the active frontier has stayed below the density
  /// threshold for `patience` consecutive barriers — and no pending swath
  /// roots could regrow it — retire one VM and re-home its partitions over
  /// the modeled transfer planes. The trigger reads modeled job-own state
  /// only, so a solo run and a scheduled run retire at the same barriers
  /// (bit-identity), and a scheduler polling current_workers() between
  /// slices reclaims the freed VM for queued jobs.
  void maybe_scale_in(JobResult<Program>& result) {
    const ScaleInOptions& si = cluster_.scale_in;
    if (!si.enabled) return;
    if (scale_in_cooldown_ > 0) --scale_in_cooldown_;
    const double density =
        graph_->num_vertices() == 0
            ? 0.0
            : static_cast<double>(last_active_vertices_) /
                  static_cast<double>(graph_->num_vertices());
    const bool roots_pending = next_root_ < pending_roots_.size();
    if (density >= si.density_threshold || roots_pending) {
      scale_in_quiet_ = 0;
      return;
    }
    ++scale_in_quiet_;
    if (scale_in_quiet_ < si.patience || scale_in_cooldown_ > 0) return;
    if (workers_now_ <= std::max<std::uint32_t>(si.min_workers, 1)) return;

    trace::Span span("engine.scale_in", "cloud", "superstep", superstep_);
    const std::vector<std::uint32_t> old_placement = placement_;
    workers_now_ -= 1;
    workers_changed_ = true;  // next superstep's span absorbs scale_event_cost
    reset_placement_to_modulo();
    vm_straggler_counts_.assign(workers_now_, 0);
    recompute_baseline_memory();
    charge_partition_redistribution(old_placement, result);
    if (cluster_.migration.enabled() && cluster_.migration.on_scaling)
      plan_and_migrate(result, "scale-in");
    ++result.metrics.scale_ins;
    scale_in_quiet_ = 0;
    scale_in_cooldown_ = si.cooldown;
    trace::add("engine.scale_ins", 1);
    if (trace::spans_on()) {
      const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                               ",\"workers\":" + std::to_string(workers_now_) + "}";
      trace::Tracer::instance().instant("scale.in", "cloud", args);
      trace::Tracer::instance().virtual_instant("scale.in", "cloud", virtual_now_us_,
                                                args);
    }
  }

  void maybe_initiate_swath(bool at_startup, JobResult<Program>& result) {
    if (opts_.roots.empty() || next_root_ >= pending_roots_.size()) return;

    if (!at_startup) {
      InitiationSignals sig;
      sig.superstep = superstep_;
      sig.supersteps_since_initiation = supersteps_since_initiation_;
      sig.messages_sent = last_messages_sent_;
      sig.active_roots = outstanding_count();
      sig.max_worker_memory = peak_memory_since_initiation_;
      sig.memory_target = opts_.swath.memory_target;
      if (!opts_.swath.initiation->should_initiate(sig)) return;
      // Governor rung 1: while the observed pressure sits at or above the
      // soft watermark, initiations the policy would allow are vetoed. Only
      // defers while in-flight work can drain the pressure — with nothing
      // outstanding (or no coming activity) a veto would stall the job with
      // roots still pending.
      if (governor_.veto_initiation() && outstanding_count() > 0 && any_pending_activity()) {
        ++result.metrics.governor_vetoes;
        trace::add("engine.governor.vetoes", 1);
        if (trace::spans_on()) {
          const std::string args =
              "{\"superstep\":" + std::to_string(superstep_) +
              ",\"pressure\":" + std::to_string(governor_.last_pressure()) +
              ",\"active_roots\":" + std::to_string(outstanding_count()) + "}";
          trace::Tracer::instance().instant("governor.veto", "governor", args);
          trace::Tracer::instance().virtual_instant("governor.veto", "governor",
                                                    virtual_now_us_, args);
        }
        return;
      }
    }

    SwathSizeSignals ss;
    ss.swath_index = swath_index_;
    ss.last_swath_size = last_swath_size_;
    ss.peak_memory_last_swath = peak_memory_since_initiation_;
    ss.baseline_memory = baseline_memory_;
    ss.memory_target = opts_.swath.memory_target;
    ss.roots_remaining = static_cast<std::uint32_t>(pending_roots_.size() - next_root_);
    // Spill-aware sizing: when the governor can spill message buffers and
    // the modeled round-trip is cheap next to a superstep, the sizers may
    // discount the spillable fraction of the peak instead of shrinking the
    // swath to fit it all in RAM.
    ss.peak_spillable_last_swath = peak_spillable_since_initiation_;
    ss.spill_relief_available =
        governor_.enabled() && opts_.governor.spill_enabled &&
        peak_spillable_since_initiation_ > 0 &&
        cost_.spill_transfer_time(peak_spillable_since_initiation_, cluster_.vm) <
            kSpillCheapFraction * last_superstep_span_;
    std::uint32_t size = opts_.swath.sizer->next_size(ss);
    if (governor_.enabled()) {
      // Rung 1b: clamp the sizer's proposal to the governed headroom (and to
      // the halved cap after any governed-OOM episode).
      const std::uint32_t clamped = governor_.clamp_swath_size(size);
      if (clamped < size) {
        ++result.metrics.governor_swath_clamps;
        trace::add("engine.governor.clamps", 1);
        if (trace::spans_on()) {
          const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                                   ",\"proposed\":" + std::to_string(size) +
                                   ",\"clamped\":" + std::to_string(clamped) + "}";
          trace::Tracer::instance().instant("governor.clamp", "governor", args);
          trace::Tracer::instance().virtual_instant("governor.clamp", "governor",
                                                    virtual_now_us_, args);
        }
        size = clamped;
      }
    }
    size = std::min<std::uint32_t>(std::max<std::uint32_t>(size, 1), ss.roots_remaining);

    for (std::uint32_t i = 0; i < size; ++i) {
      const VertexId root = pending_roots_[next_root_++];
      inject_seed(root);
      outstanding_roots_.push_back(root);
      outstanding_index_.try_emplace(root, outstanding_roots_.size() - 1);
    }
    ++swath_index_;
    last_swath_size_ = size;
    if (trace::spans_on()) {
      // The initiation instant carries the heuristic's input vector, so a
      // trace shows *why* this swath launched, not just when.
      const std::string args =
          "{\"superstep\":" + std::to_string(superstep_) +
          std::string(at_startup ? ",\"at_startup\":true" : ",\"at_startup\":false") +
          ",\"swath_index\":" + std::to_string(swath_index_ - 1) +
          ",\"size\":" + std::to_string(size) +
          ",\"roots_remaining\":" +
          std::to_string(pending_roots_.size() - next_root_) +
          ",\"supersteps_since_initiation\":" +
          std::to_string(supersteps_since_initiation_) +
          ",\"messages_last_superstep\":" + std::to_string(last_messages_sent_) +
          ",\"peak_memory_last_swath\":" +
          std::to_string(peak_memory_since_initiation_) +
          ",\"baseline_memory\":" + std::to_string(baseline_memory_) +
          ",\"memory_target\":" + std::to_string(opts_.swath.memory_target) + "}";
      trace::Tracer::instance().instant("swath.initiate", "swath", args);
      trace::Tracer::instance().virtual_instant("swath.initiate", "swath",
                                                virtual_now_us_, args);
    }
    trace::add("engine.swaths", 1);
    supersteps_since_initiation_ = 0;
    peak_memory_since_initiation_ = 0;
    peak_spillable_since_initiation_ = 0;
    opts_.swath.initiation->on_initiated();
  }

  // ---- fault tolerance -----------------------------------------------------

  /// Deep snapshot of all state a recovery must restore: partition contents
  /// plus master-side scheduling state. Deliberately excludes policy-object
  /// internals (the job manager survives worker failures) and metrics (an
  /// execution log, not job state).
  struct Snapshot {
    std::vector<PartitionState> parts;
    std::uint64_t superstep;
    Globals globals;
    std::vector<VertexId> pending_roots;
    std::size_t next_root;
    std::vector<VertexId> outstanding_roots;
    std::uint64_t roots_completed;
    std::uint32_t swath_index;
    std::uint32_t last_swath_size;
    std::uint64_t supersteps_since_initiation;
    Bytes peak_memory_since_initiation;
    std::uint64_t last_messages_sent;
    /// Vertex location tables at snapshot time — only captured when
    /// migration is possible this run (empty otherwise): a restore must
    /// rewind any moves applied after the checkpoint.
    std::vector<PartitionId> part_of;
    std::vector<std::uint32_t> local_of;
    bool migrated = false;
  };

  /// Modeled size of one worker's checkpoint: algorithm state + buffered
  /// messages + per-vertex values (the graph itself stays in blob storage).
  Bytes checkpoint_bytes(std::uint32_t vm) const {
    Bytes total = 0;
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      if (vm_of(p) != vm) continue;
      const PartitionState& ps = parts_[p];
      total += static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes, 0)) +
               ps.inbox_cur_bytes + ps.inbox_next_bytes +
               static_cast<Bytes>(ps.vertices.size()) * sizeof(V);
    }
    return total;
  }

  // ---- transient faults and retries ----------------------------------------

  /// Run one control-plane storage op under the retry policy and record it
  /// in the job metrics. With all fault rates at zero this is free: no
  /// draws, no latency, no metric changes.
  cloud::RetryOutcome control_op(cloud::FaultKind kind, JobResult<Program>& result) {
    const auto out = faults_.attempt(kind, cluster_.retry, cost_.params().queue_op_latency);
    result.metrics.faults_injected += out.faults;
    if (out.success) result.metrics.faults_masked += out.faults;
    result.metrics.retries_attempted += out.attempts - 1;
    result.metrics.retry_latency += out.extra_latency;
    if (kind == cloud::FaultKind::kQueueOp)
      result.metrics.queue_corruptions += out.corruptions;
    else
      result.metrics.blob_corruptions += out.corruptions;
    if (trace::counters_on()) {
      trace::Tracer& t = trace::Tracer::instance();
      if (out.faults > 0) t.counter("engine.faults.injected").add(out.faults);
      if (out.attempts > 1) t.counter("engine.retries").add(out.attempts - 1);
      if (out.corruptions > 0)
        t.counter(kind == cloud::FaultKind::kQueueOp ? "engine.queue.corruptions"
                                                     : "engine.blob.corruptions")
            .add(out.corruptions);
    }
    return out;
  }

  /// Control op attributed to worker `vm`: masked latency extends this
  /// superstep's barrier; an exhausted retry budget marks the worker dead
  /// (detected at the barrier like any other failure). The simulated queue
  /// state stays consistent either way.
  void guarded_control_op(cloud::FaultKind kind, std::uint32_t vm,
                          JobResult<Program>& result) {
    const auto out = control_op(kind, result);
    pending_retry_latency_ += out.extra_latency;
    if (!out.success && !control_failed_vm_) control_failed_vm_ = vm;
  }

  /// Fold the superstep's accumulated retry latency into its span: every
  /// worker sits at the barrier while the slow op backs off and retries.
  void settle_control_latency(SuperstepMetrics& sm, JobResult<Program>& result) {
    if (pending_retry_latency_ <= 0.0) return;
    sm.span += pending_retry_latency_;
    sm.barrier_overhead += pending_retry_latency_;
    for (auto& wm : sm.workers) wm.barrier_wait += pending_retry_latency_;
    result.metrics.total_time += pending_retry_latency_;
    meter_.charge(cluster_.vm, workers_now_, pending_retry_latency_);
    pending_retry_latency_ = 0.0;
  }

  // ---- control plane (simulated Azure queues) -------------------------------

  /// The manifest a standby manager resumes from: last completed superstep,
  /// fencing epoch, location-table version, aggregator state (sorted so the
  /// serialization is canonical).
  cloud::ManagerManifest current_manifest() const {
    cloud::ManagerManifest m;
    m.superstep = superstep_;
    m.epoch = manager_.epoch();
    m.location_version = location_version_;
    m.ckpt_generation = ckpt_.newest_seq();
    m.aggregators.assign(globals_.items().begin(), globals_.items().end());
    std::sort(m.aggregators.begin(), m.aggregators.end());
    return m;
  }

  void control_superstep_begin(JobResult<Program>& result) {
    trace::Span span("engine.control.step-queue", "cloud", "superstep", superstep_);
    // Persist the manifest before posting tokens: it captures exactly the
    // state this superstep runs under (post-master-compute aggregates, the
    // current location-table version, the current epoch), so a standby that
    // takes over at this superstep's barrier resumes bit-identically.
    manager_.persist(current_manifest());
    auto& step = queues_.queue("step");
    const std::uint64_t epoch = manager_.epoch();
    for (std::uint32_t w = 0; w < workers_now_; ++w) {
      guarded_control_op(cloud::FaultKind::kQueueOp, w, result);
      step.put(cloud::make_step_token(superstep_, epoch));
    }
    for (std::uint32_t w = 0; w < workers_now_; ++w) {
      guarded_control_op(cloud::FaultKind::kQueueOp, w, result);
      const auto token = step.get();
      PREGEL_DCHECK(token.has_value());
      PREGEL_CHECK_MSG(cloud::verify_queue_message(*token),
                       "step-queue message failed CRC32C verification");
      // The worker learns the fencing epoch from the token and echoes it in
      // its barrier check-in; a token from a dead manager's epoch would be
      // refused here.
      const auto parsed = cloud::parse_step_token(token->body);
      PREGEL_CHECK_MSG(parsed.has_value(), "malformed step token: '" + token->body + "'");
      PREGEL_DCHECK(parsed->superstep == superstep_ && parsed->epoch == epoch);
      guarded_control_op(cloud::FaultKind::kQueueOp, w, result);
      step.remove(token->id);
    }
  }

  /// The manager was preempted mid-superstep: the standby waits out the
  /// lease, downloads and CRC-verifies the manifest (a blob read under the
  /// retry policy), restores its state from it, and bumps the fencing epoch
  /// for every subsequent superstep. The whole cluster sits at the barrier
  /// for the duration, so the latency folds into barrier overhead via
  /// pending_retry_latency_.
  void manager_failover(JobResult<Program>& result) {
    trace::Span span("engine.manager.failover", "recovery", "superstep", superstep_);
    manager_.preempt();
    const auto read = control_op(cloud::FaultKind::kBlobRead, result);
    Seconds t = cluster_.manager_lease_timeout + cluster_.manager_takeover_time +
                read.extra_latency;
    if (!read.success) t += cluster_.retry.op_deadline;
    const cloud::ManagerManifest manifest = manager_.failover();
    PREGEL_CHECK_MSG(manifest.superstep == superstep_,
                     "manager manifest superstep failed to round-trip");
    PREGEL_DCHECK(manifest.location_version == location_version_);
    // Resume the aggregator state from the manifest — by construction equal
    // to what the primary held, so results stay bit-identical; going through
    // the blob exercises the serialization for real.
    Globals restored;
    for (const auto& [key, value] : manifest.aggregators) restored.set(key, value);
    globals_ = restored;
    pending_retry_latency_ += t;
    ++result.metrics.manager_failovers;
    result.metrics.manager_failover_time += t;
    trace::add("engine.manager.failovers", 1);
  }

  void control_superstep_end(const SuperstepMetrics& sm, JobResult<Program>& result) {
    trace::Span span("engine.control.barrier-queue", "cloud", "superstep", superstep_);
    auto& barrier = queues_.queue("barrier");
    // Check-ins carry sender identity and the fencing epoch the worker
    // learned from its step token; the drain below is idempotent against
    // redelivery and fences anything from an older epoch.
    const std::uint64_t barrier_epoch = manager_.epoch();
    for (std::uint32_t w = 0; w < sm.workers.size(); ++w) {
      guarded_control_op(cloud::FaultKind::kQueueOp, w, result);
      barrier.put(cloud::make_checkin(w, barrier_epoch, sm.workers[w].vertices_computed));
    }

    // The primary removes a check-in only after recording it, so a primary
    // preempted mid-drain leaves every message visible (or redelivered) for
    // the standby, which drains this barrier under the epoch the workers
    // used and fences only from the next superstep on.
    if (faults_.manager_preempted(superstep_, barrier_epoch)) manager_failover(result);

    const auto stats = cloud::drain_barrier(
        barrier, workers_now_, barrier_epoch,
        [&](std::uint32_t vm) { guarded_control_op(cloud::FaultKind::kQueueOp, vm, result); },
        [&]() { return faults_.next_duplicate(); });
    result.metrics.barrier_duplicates += stats.duplicates;
    result.metrics.barrier_fenced += stats.fenced;
    // Ops beyond the W-message happy path (redelivered, fenced, malformed)
    // are extra serialized poll rounds the fixed barrier-time formula does
    // not cover; each costs its base queue latency at the barrier.
    const std::uint64_t extra_reads = stats.duplicates + stats.fenced + stats.malformed;
    if (extra_reads > 0)
      pending_retry_latency_ +=
          static_cast<double>(extra_reads) * cost_.params().queue_op_latency;
    if (trace::counters_on() && stats.duplicates > 0)
      trace::add("engine.barrier.duplicates", stats.duplicates);
    if (!stats.missing.empty()) {
      // A worker that never checked in: indistinguishable from a slow one
      // until the detection timeout lapses. Charge the wait and let the
      // failure path at the barrier handle the (first) dead worker — the
      // old behavior here was an assertion failure.
      ++result.metrics.barrier_detection_timeouts;
      pending_retry_latency_ += cluster_.failure_detection_time;
      if (!control_failed_vm_) control_failed_vm_ = stats.missing.front();
    } else {
      PREGEL_DCHECK(stats.active_total == sm.active_vertices);
    }

    result.metrics.control_queue_ops = queues_.total_ops();
  }

  /// Deep-copy all recoverable state into a payload the checkpoint store
  /// can hang off a generation.
  std::shared_ptr<Snapshot> make_snapshot(std::uint64_t resume_superstep) {
    compact_outstanding_roots();  // snapshot a tombstone-free root list
    auto s = std::make_shared<Snapshot>();
    s->parts = parts_;
    s->superstep = resume_superstep;
    s->globals = globals_;
    s->pending_roots = pending_roots_;
    s->next_root = next_root_;
    s->outstanding_roots = outstanding_roots_;
    s->roots_completed = roots_completed_;
    s->swath_index = swath_index_;
    s->last_swath_size = last_swath_size_;
    s->supersteps_since_initiation = supersteps_since_initiation_;
    s->peak_memory_since_initiation = peak_memory_since_initiation_;
    s->last_messages_sent = last_messages_sent_;
    if (migration_possible_) {
      s->part_of = part_of_;
      s->local_of = local_of_;
      s->migrated = migrated_;
    }
    return s;
  }

  /// Generation-0 seeding (start(), governor anchor): the superstep-0 state
  /// is implicitly recoverable — the input graph lives in blob storage — so
  /// nothing is uploaded or charged. No-op once a generation 0 exists.
  void take_snapshot(std::uint64_t resume_superstep) {
    ckpt_.seed_initial(make_snapshot(resume_superstep));
  }

  /// The newest restorable snapshot (nullptr only when the store is empty,
  /// i.e. fault tolerance and the governor are both off this run).
  const Snapshot* newest_snapshot() const {
    return static_cast<const Snapshot*>(ckpt_.newest_payload());
  }
  Snapshot* newest_snapshot_mut() {
    return static_cast<Snapshot*>(ckpt_.newest_payload());
  }

  /// Full data-leg size of one partition: algorithm state + buffered
  /// messages + per-vertex values (the per-partition term of the legacy
  /// checkpoint_bytes model, so base generations cost what full snapshots
  /// always did).
  Bytes full_leg_bytes(std::uint32_t p) const {
    const PartitionState& ps = parts_[p];
    return static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes, 0)) +
           ps.inbox_cur_bytes + ps.inbox_next_bytes +
           static_cast<Bytes>(ps.vertices.size()) * sizeof(V);
  }

  /// Delta data-leg size: only vertices dirtied since the last published
  /// generation carry their value + state, and only the undelivered inbox
  /// (inbox_next) rides along — the consumed inbox_cur is re-derived by
  /// replay, which is where stationary-frontier algorithms like PageRank
  /// get their reduction. Capped at the full leg (a delta is never worth
  /// writing bigger than its base).
  Bytes delta_leg_bytes(std::uint32_t p) const {
    const PartitionState& ps = parts_[p];
    if (ps.dirty.size() != ps.vertices.size()) return full_leg_bytes(p);
    std::uint64_t dirty_count = 0;
    for (const std::uint8_t f : ps.dirty) dirty_count += f;
    Bytes dirty_state = 0;
    if (!ps.state_bytes_v.empty()) {
      for (std::uint32_t l = 0; l < ps.dirty.size(); ++l)
        if (ps.dirty[l])
          dirty_state +=
              static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes_v[l], 0));
    } else if (!ps.vertices.empty()) {
      // No per-vertex breakdown this run: prorate the partition total by the
      // dirty share (pure integer function of modeled state — deterministic).
      dirty_state = static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes, 0)) *
                    dirty_count / ps.vertices.size();
    }
    const Bytes d = dirty_state + dirty_count * sizeof(V) + ps.inbox_next_bytes;
    return std::min(d, full_leg_bytes(p));
  }

  /// Successful publish: the next delta is relative to *this* generation.
  /// Runs before make_snapshot so restored snapshots carry the cleared
  /// flags — a replay re-dirties and re-publishes identical generations.
  void clear_dirty() {
    if (!track_dirty_) return;
    for (auto& ps : parts_) std::fill(ps.dirty.begin(), ps.dirty.end(), 0);
  }

  void maybe_checkpoint(JobResult<Program>& result) {
    if (cluster_.checkpoint_interval == 0) return;
    if ((superstep_ + 1) % cluster_.checkpoint_interval != 0) return;
    trace::Span span("engine.checkpoint", "recovery", "superstep", superstep_);

    // Workers upload in parallel; the slowest (including its blob-write
    // retries) bounds the barrier extension. A worker that exhausts its
    // retry budget abandons the round: the previous checkpoint stays in
    // force, and only the wasted retry latency is charged.
    Seconds retry_extra = 0.0;
    bool uploaded = true;
    for (std::uint32_t w = 0; w < workers_now_; ++w) {
      const auto up = control_op(cloud::FaultKind::kBlobWrite, result);
      retry_extra = std::max(retry_extra, up.extra_latency);
      uploaded = uploaded && up.success;
    }

    Seconds t = retry_extra;
    const double bw_Bps =
        cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    if (uploaded) {
      // Stage this round's data legs (full base or dirty-sized delta) and
      // run the two-phase publish: legs, then the chain-hashed manifest.
      const bool base = ckpt_.next_is_base(location_version_);
      std::vector<Bytes> leg_bytes(parts_.size());
      std::vector<std::uint32_t> home_vm(parts_.size()), home_zone(parts_.size());
      for (std::uint32_t p = 0; p < parts_.size(); ++p) {
        leg_bytes[p] = base ? full_leg_bytes(p) : delta_leg_bytes(p);
        home_vm[p] = vm_of(p);
        home_zone[p] = zones_.zone_of(vm_of(p));
      }
      const cloud::CkptWriteOutcome out = ckpt_.write_generation(
          superstep_ + 1, location_version_, leg_bytes, home_vm, home_zone,
          zones_.zones, faults_);
      result.metrics.checkpoint_torn_legs += out.torn_legs;

      // The slowest worker's leg uploads bound the barrier extension; the
      // manifest publish is one more control op. Legs transfer whether or
      // not the manifest lands — a torn manifest wastes the round's bytes.
      Bytes biggest = 0;
      std::vector<Bytes> vm_bytes(workers_now_, 0);
      for (std::uint32_t p = 0; p < parts_.size(); ++p) vm_bytes[vm_of(p)] += leg_bytes[p];
      for (const Bytes b : vm_bytes) biggest = std::max(biggest, b);
      t += static_cast<double>(biggest) / bw_Bps + cost_.params().queue_op_latency;

      if (out.published) {
        clear_dirty();  // before the snapshot: replays re-derive identical deltas
        ckpt_.attach_payload(make_snapshot(superstep_ + 1));
        ++result.metrics.checkpoints_written;
        if (out.is_base) {
          ++result.metrics.checkpoint_bases;
          result.metrics.checkpoint_base_bytes += out.bytes_written;
        } else {
          ++result.metrics.checkpoint_deltas;
          result.metrics.checkpoint_delta_bytes += out.bytes_written;
        }
        trace::add("engine.checkpoints", 1);
        trace::add(out.is_base ? "engine.checkpoint.base.bytes"
                               : "engine.checkpoint.delta.bytes",
                   out.bytes_written);
        // Retention GC rode along with the publish: price its blob deletes
        // as control ops folded into the checkpoint charge.
        if (out.gc_delete_ops > 0) {
          result.metrics.ckpt_gc_generations += out.gc_generations;
          result.metrics.ckpt_gc_delete_ops += out.gc_delete_ops;
          t += static_cast<double>(out.gc_delete_ops) * cost_.params().queue_op_latency;
          trace::add("engine.checkpoint.gc", out.gc_generations);
        }
        if (cluster_.availability_zones > 1 &&
            cluster_.replicate_checkpoints_across_zones) {
          // Cross-zone replica: each worker writes a second copy to a blob
          // homed in another zone, so a whole-zone outage cannot take a
          // checkpoint down with every VM that could restore it. The replica
          // upload is serialized after the primary ack, so the barrier pays
          // one more transfer of the biggest checkpoint (plus its retries).
          Seconds replica_extra = 0.0;
          bool replicated = true;
          for (std::uint32_t w = 0; w < workers_now_; ++w) {
            const auto rep = control_op(cloud::FaultKind::kBlobWrite, result);
            replica_extra = std::max(replica_extra, rep.extra_latency);
            replicated = replicated && rep.success;
          }
          t += replica_extra;
          if (replicated && ckpt_.complete_replica_round(faults_)) {
            t += static_cast<double>(biggest) / bw_Bps;
            result.metrics.checkpoint_replicas_written += workers_now_;
            trace::add("engine.checkpoint.replicas", workers_now_);
          } else {
            // Replica round abandoned: the primary generation published
            // fine, so this is not a checkpoint failure — it only thins the
            // zone-outage safety margin.
            ++result.metrics.checkpoint_replica_failures;
            trace::add("engine.checkpoint.replica_failures", 1);
          }
        }
      } else {
        // Torn manifest: the whole round is lost, the previous generation
        // stays newest, and the dirty sets keep accumulating toward it.
        ++result.metrics.checkpoint_failures;
        ++result.metrics.checkpoint_torn_manifests;
        trace::add("engine.checkpoint.torn_manifests", 1);
      }
    } else {
      ++result.metrics.checkpoint_failures;
    }
    if (t > 0.0) {
      result.metrics.checkpoint_time += t;
      result.metrics.total_time += t;
      meter_.charge(cluster_.vm, workers_now_, t);
    }
  }

  /// Modeled background scrub between barriers: every scrub_period
  /// barriers, re-verify all retained checkpoint copies and re-replicate
  /// rotted or torn ones from a surviving copy, charging the repair
  /// transfers in modeled time.
  void maybe_scrub(JobResult<Program>& result) {
    if (cluster_.ckpt.scrub_period == 0 || cluster_.checkpoint_interval == 0) return;
    if (++barriers_since_scrub_ < cluster_.ckpt.scrub_period) return;
    barriers_since_scrub_ = 0;
    const cloud::CkptScrubOutcome out = ckpt_.scrub(faults_);
    ++result.metrics.scrub_passes;
    result.metrics.scrub_copies_verified += out.copies_verified;
    const std::uint32_t repairs = out.repairs + out.manifest_repairs;
    result.metrics.scrub_repairs += repairs;
    if (repairs == 0) return;
    trace::add("engine.scrub.repairs", repairs);
    const double bw_Bps =
        cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    const Seconds t = static_cast<double>(out.repaired_bytes) / bw_Bps +
                      static_cast<double>(repairs) * cost_.params().queue_op_latency;
    result.metrics.scrub_time += t;
    result.metrics.total_time += t;
    meter_.charge(cluster_.vm, workers_now_, t);
  }

  /// One barrier's worth of worker deaths: the lost VMs (sorted, unique)
  /// and, when they fell together, the availability zone that took them.
  struct FailureEvent {
    std::vector<std::uint32_t> dead;
    std::optional<std::uint32_t> zone;
  };

  std::string failure_description(const FailureEvent& event) const {
    if (event.zone)
      return "availability zone " + std::to_string(*event.zone) + " outage (" +
             std::to_string(event.dead.size()) + " worker VMs)";
    return "worker VM " + std::to_string(event.dead.front()) + " failed";
  }

  /// All VMs lost at this barrier: a control op past its retry budget, the
  /// single-VM failure classes, then correlated zone outages (every VM in
  /// the drawn zone at once).
  FailureEvent collect_failures(JobResult<Program>& result) {
    FailureEvent event;
    if (control_failed_vm_) {
      event.dead.push_back(*control_failed_vm_);
      control_failed_vm_.reset();
    }
    if (event.dead.empty()) {
      if (const auto vm = failure_strikes()) event.dead.push_back(*vm);
    }
    if (cluster_.availability_zones > 1 && !event.zone) {
      // Deterministic crash-point hook: an explicitly scheduled zone outage
      // fires once, exactly like a drawn one.
      for (auto it = scheduled_zone_outages_.begin(); it != scheduled_zone_outages_.end();
           ++it) {
        if (it->first != superstep_ || it->second >= zones_.zones) continue;
        event.zone = it->second;
        scheduled_zone_outages_.erase(it);
        ++result.metrics.zone_outages;
        trace::add("engine.zone.outages", 1);
        for (std::uint32_t vm : zones_.vms_in_zone(*event.zone, workers_now_))
          event.dead.push_back(vm);
        break;
      }
    }
    if (cluster_.availability_zones > 1 && !event.zone &&
        faults_.plan().zone_outage_rate > 0.0) {
      for (std::uint32_t z = 0; z < zones_.zones; ++z) {
        if (!faults_.zone_outage(z, superstep_, failure_epoch_)) continue;
        event.zone = z;
        ++result.metrics.zone_outages;
        trace::add("engine.zone.outages", 1);
        for (std::uint32_t vm : zones_.vms_in_zone(z, workers_now_))
          event.dead.push_back(vm);
        break;  // one domain per barrier is correlation enough
      }
    }
    std::sort(event.dead.begin(), event.dead.end());
    event.dead.erase(std::unique(event.dead.begin(), event.dead.end()), event.dead.end());
    return event;
  }

  /// Worker death check at the barrier: explicitly scheduled failures,
  /// probabilistic VM failures, then spot-style preemptions. Returns the
  /// dead VM, or nullopt when everyone checked in.
  std::optional<std::uint32_t> failure_strikes() {
    for (auto it = scheduled_failures_.begin(); it != scheduled_failures_.end(); ++it) {
      if (it->first == superstep_ && it->second < workers_now_) {
        const std::uint32_t vm = it->second;
        scheduled_failures_.erase(it);
        return vm;
      }
    }
    if (cluster_.failure_rate > 0.0) {
      for (std::uint32_t w = 0; w < workers_now_; ++w) {
        // Keyed by the failure epoch so a replayed superstep redraws.
        const std::uint64_t key = mix64(cluster_.failure_seed ^ (superstep_ * 131) ^
                                        (static_cast<std::uint64_t>(w) << 32) ^
                                        (failure_epoch_ * 0x9E3779B9ULL));
        if (static_cast<double>(key >> 11) * 0x1.0p-53 < cluster_.failure_rate) return w;
      }
    }
    for (std::uint32_t w = 0; w < workers_now_; ++w)
      if (faults_.vm_preempted(w, superstep_, failure_epoch_)) return w;
    return std::nullopt;
  }

  bool confined_replay_active() const noexcept { return !replay_lost_vms_.empty(); }

  /// Is `vm` one of the VMs a confined replay is recomputing?
  bool replay_lost(std::uint32_t vm) const noexcept {
    return std::find(replay_lost_vms_.begin(), replay_lost_vms_.end(), vm) !=
           replay_lost_vms_.end();
  }

  /// Remote bytes partitions on `vm` sent to partitions on any lost VM this
  /// superstep (the logged outbox a healthy worker re-delivers in replay).
  Bytes redelivery_bytes(std::uint32_t vm) const {
    if (outbox_log_cur_.empty()) return 0;
    const std::size_t n = parts_.size();
    Bytes total = 0;
    for (std::size_t p = 0; p < n; ++p) {
      if (placement_[p] != vm) continue;
      for (std::size_t q = 0; q < n; ++q)
        if (replay_lost(placement_[q])) total += outbox_log_cur_[p * n + q];
    }
    return total;
  }

  void restore_snapshot_state(const Snapshot& s) {
    parts_ = s.parts;
    globals_ = s.globals;
    globals_next_ = Globals{};
    pending_roots_ = s.pending_roots;
    next_root_ = s.next_root;
    outstanding_roots_ = s.outstanding_roots;
    root_tombstones_ = 0;
    rebuild_root_index();
    roots_completed_ = s.roots_completed;
    swath_index_ = s.swath_index;
    last_swath_size_ = s.last_swath_size;
    supersteps_since_initiation_ = s.supersteps_since_initiation;
    peak_memory_since_initiation_ = s.peak_memory_since_initiation;
    last_messages_sent_ = s.last_messages_sent;
    superstep_ = s.superstep;
    if (!s.part_of.empty()) {
      // Rewind any vertex moves applied after the checkpoint: the location
      // tables must match the restored partition state exactly.
      part_of_ = s.part_of;
      local_of_ = s.local_of;
      migrated_ = s.migrated;
      parts_dirty_ = parts_dirty_ || s.migrated;
      ++location_version_;  // the location tables just changed under everyone
      recompute_baseline_memory();
    }
    peak_spillable_since_initiation_ = 0;
    // The direction hysteresis restarts from push after any rollback so the
    // replayed supersteps re-derive the same switch sequence the original
    // execution did (the state at checkpoint time is itself a pure function
    // of the replayed frontier densities).
    pull_mode_ = false;
  }

  /// Satellite of every recovery path: is anything restorable after this
  /// failure event, and which generation will the restore walk land on? One
  /// place answers for the zone-loss gate, full rollback, and confined
  /// recovery alike; the returned plan carries the chosen generation, its
  /// fallback depth, and per-partition download bytes.
  struct RecoveryAssessment {
    std::optional<cloud::CkptRestorePlan> plan;
    std::string reason;  ///< unrecoverable-why, appended to the failure text
  };

  RecoveryAssessment assess_recovery(const FailureEvent& event,
                                     JobResult<Program>& result) {
    RecoveryAssessment a;
    if (!ckpt_.has_checkpoint()) {
      a.reason = "with no checkpoint to recover from";
      return a;
    }
    if (event.zone && cluster_.availability_zones > 1 &&
        !cluster_.replicate_checkpoints_across_zones) {
      // The lost zone took the checkpoint blobs homed in it down with the
      // VMs that wrote them: without cross-zone replicas there is nothing
      // left to restore from.
      a.reason = "lost its checkpoints: no cross-zone replicas configured";
      return a;
    }
    const std::optional<std::uint32_t> lost_zone =
        cluster_.availability_zones > 1 ? event.zone : std::nullopt;
    a.plan = ckpt_.plan_restore(lost_zone, faults_);
    if (!a.plan) {
      a.reason = "with no checkpoint to recover from";
      return a;
    }
    result.metrics.checkpoint_corrupt_legs += a.plan->corrupt_legs;
    result.metrics.checkpoint_corrupt_manifests += a.plan->corrupt_manifests;
    result.metrics.checkpoint_replica_reads += a.plan->replica_reads;
    if (a.plan->fallback_depth > 0) {
      ++result.metrics.checkpoint_fallbacks;
      result.metrics.checkpoint_fallback_depth_max = std::max(
          result.metrics.checkpoint_fallback_depth_max, a.plan->fallback_depth);
      trace::add("engine.checkpoint.fallbacks", 1);
    }
    return a;
  }

  /// Restore-transfer size for `vm` under `plan`: the restore set's leg
  /// bytes for the partitions it hosts. A generation-0 (initial) plan has
  /// no legs — the worker re-derives state from the graph blob, priced at
  /// the legacy full-checkpoint size exactly as the pre-store engine did.
  Bytes plan_restore_bytes(const cloud::CkptRestorePlan& plan, std::uint32_t vm) const {
    if (plan.initial) return checkpoint_bytes(vm);
    Bytes total = 0;
    for (std::uint32_t p = 0; p < parts_.size(); ++p)
      if (vm_of(p) == vm && p < plan.partition_bytes.size())
        total += plan.partition_bytes[p];
    return total;
  }

  /// The state rollback both recovery flavors share: restore the plan's
  /// snapshot and truncate the now-stale newer generations (the replay
  /// deterministically re-writes those rounds).
  void apply_restore_plan(const cloud::CkptRestorePlan& plan) {
    restore_snapshot_state(*static_cast<const Snapshot*>(plan.payload.get()));
    ckpt_.truncate_after(plan.seq);
  }

  void recover_from_checkpoint(JobResult<Program>& result,
                               const cloud::CkptRestorePlan& plan) {
    trace::Span span("engine.recover.full", "recovery", "superstep", superstep_);
    trace::add("engine.recoveries", 1);
    result.metrics.replayed_supersteps += superstep_ + 1 - plan.resume_superstep;
    ++failure_epoch_;
    // A failure during an active confined replay falls back to the full
    // Pregel rollback: every partition reloads, so the replay-in-progress
    // bookkeeping is void.
    replay_lost_vms_.clear();

    // Detection (missed heartbeats), replacement VM, checkpoint download by
    // every worker (they all roll back, per the Pregel recovery model); the
    // blob reads run under the retry policy.
    Bytes biggest = 0;
    for (std::uint32_t w = 0; w < workers_now_; ++w)
      biggest = std::max(biggest, plan_restore_bytes(plan, w));
    const auto read = control_op(cloud::FaultKind::kBlobRead, result);
    const double bw_Bps = cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    Seconds t = cluster_.failure_detection_time + cluster_.vm_reacquisition_time +
                static_cast<double>(biggest) / bw_Bps + read.extra_latency;
    // Recovery reads retry until they succeed; model anything beyond the
    // per-op budget as one extra deadline of stalling.
    if (!read.success) t += cluster_.retry.op_deadline;
    result.metrics.recovery_time += t;
    result.metrics.total_time += t;
    meter_.charge(cluster_.vm, workers_now_, t);

    apply_restore_plan(plan);
    reinitiate_after_restore(result);
  }

  /// Confined recovery: only the dead VMs' partitions reload the checkpoint
  /// and recompute (one VM for a lone failure; a whole domain after a zone
  /// outage). State restoration rewinds everything (the simulator re-derives
  /// healthy partitions' identical state while replaying), but replay
  /// supersteps are costed confined: healthy workers only re-deliver logged
  /// outbox bytes, and only the replacement VMs download checkpoint data —
  /// in parallel, so the largest lost checkpoint bounds the stall.
  void recover_confined(JobResult<Program>& result, const std::vector<std::uint32_t>& dead,
                        const cloud::CkptRestorePlan& plan) {
    trace::Span span("engine.recover.confined", "recovery", "vms", dead.size());
    trace::add("engine.recoveries", 1);
    result.metrics.replayed_supersteps += superstep_ + 1 - plan.resume_superstep;
    ++failure_epoch_;

    const auto read = control_op(cloud::FaultKind::kBlobRead, result);
    const double bw_Bps = cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    Bytes biggest_lost = 0;
    for (const std::uint32_t vm : dead)
      biggest_lost = std::max(biggest_lost, plan_restore_bytes(plan, vm));
    Seconds t = cluster_.failure_detection_time + cluster_.vm_reacquisition_time +
                static_cast<double>(biggest_lost) / bw_Bps + read.extra_latency;
    if (!read.success) t += cluster_.retry.op_deadline;
    result.metrics.recovery_time += t;
    result.metrics.total_time += t;
    meter_.charge(cluster_.vm, workers_now_, t);

    confined_replay_until_ = superstep_;
    replay_lost_vms_ = dead;
    apply_restore_plan(plan);
    reinitiate_after_restore(result);
  }

  // ---- memory-pressure governor (graceful degradation ladder) --------------

  /// A restore to the governor's pre-initiation anchor leaves nothing in
  /// flight; the replay must re-initiate immediately (now under the
  /// governor's clamp and cap) or the run loop would see no activity and end
  /// with roots still pending.
  void reinitiate_after_restore(JobResult<Program>& result) {
    if (opts_.start_all_vertices) return;
    if (outstanding_count() > 0 || any_pending_activity()) return;
    if (next_root_ >= pending_roots_.size()) return;
    maybe_initiate_swath(/*at_startup=*/true, result);
  }

  /// Will the coming superstep do any work? Runs at the barrier, before
  /// prepare_superstep swaps active_next in, so it inspects next-superstep
  /// state where any_activity() inspects the current one. Future wakes count:
  /// the engine idles through the gap on its own.
  bool any_pending_activity() const {
    for (const PartitionState& ps : parts_)
      if (!ps.active_next.empty() || !ps.wakes.empty()) return true;
    return false;
  }

  /// Roots initiated since the snapshot and still in flight — exactly the
  /// ones a shed can park, because rewinding to the snapshot un-initiates
  /// them without touching any completed root's recorded result.
  std::uint32_t parkable_root_count() const {
    const Snapshot* snap = newest_snapshot();
    if (!snap) return 0;
    std::uint32_t n = 0;
    for (std::size_t i = snap->next_root; i < next_root_; ++i)
      if (outstanding_index_.contains(pending_roots_[i])) ++n;
    return n;
  }

  enum class GovernorVerdict { kProceed, kRewound, kFailed };

  /// Barrier-time governor consultation: feed it this superstep's pressure
  /// observation and apply the action it picks. Free when disabled.
  GovernorVerdict governor_step(JobResult<Program>& result) {
    if (!governor_.enabled()) return GovernorVerdict::kProceed;
    const bool breach = governor_breach_;
    governor_breach_ = false;
    MemGovernor::Observation obs;
    obs.unspilled_peak = last_unspilled_peak_;
    obs.post_spill_peak = last_post_spill_peak_;
    obs.baseline = baseline_memory_;
    obs.active_roots = outstanding_count();
    obs.parkable_roots = parkable_root_count();
    obs.restart_breach = breach;
    // Scale-out rung inputs: the governor only prefers growing the cluster
    // over a shed rewind when migration is wired, a spare VM slot exists,
    // and the modeled transfer is strictly cheaper than the rewind.
    obs.can_scale_out = migration_possible_ && workers_now_ < cluster_.num_partitions;
    if (obs.can_scale_out && opts_.governor.scale_out_enabled) {
      const double bw_Bps =
          cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
      Bytes biggest = 0;
      for (std::uint32_t i = 0; i < workers_now_; ++i)
        biggest = std::max(biggest, checkpoint_bytes(i));
      const std::uint64_t replayed =
          ckpt_.has_checkpoint() ? superstep_ + 1 - newest_snapshot()->superstep : 0;
      obs.shed_cost_estimate = static_cast<double>(biggest) / bw_Bps +
                               cost_.params().queue_op_latency +
                               static_cast<double>(replayed) * last_superstep_span_;
      Bytes moved = 0;
      const std::uint32_t grown = workers_now_ + 1;
      for (std::uint32_t p = 0; p < parts_.size(); ++p)
        if (placement_[p] != p % grown) moved += partition_resident_bytes(parts_[p]);
      obs.scale_out_cost_estimate = cluster_.scale_event_cost +
                                    static_cast<double>(moved) / bw_Bps +
                                    cost_.params().queue_op_latency;
    }
    switch (governor_.observe(obs)) {
      case MemGovernor::Action::kNone:
        return GovernorVerdict::kProceed;
      case MemGovernor::Action::kShed:
        shed_newest_roots(result);
        return GovernorVerdict::kRewound;
      case MemGovernor::Action::kScaleOut:
        governor_scale_out(result);
        return GovernorVerdict::kProceed;
      case MemGovernor::Action::kEscalate:
        governed_oom_restore(result);
        return GovernorVerdict::kRewound;
      case MemGovernor::Action::kGiveUp:
        result.failed = true;
        result.failure_reason =
            "governed OOM: memory pressure persisted after " +
            std::to_string(governor_.sheds()) + " sheds and " +
            std::to_string(governor_.escalations()) +
            " governed restores at superstep " + std::to_string(superstep_);
        return GovernorVerdict::kFailed;
    }
    return GovernorVerdict::kProceed;
  }

  /// Rung 2b: rewind to the snapshot, but re-queue the newest in-flight
  /// roots at the BACK of the pending list so the replay resumes with a
  /// lighter swath; parked roots re-initiate in later swaths. A proactive
  /// rollback the manager orders at the barrier: no failure detection or VM
  /// reacquisition, just the checkpoint download under the retry policy.
  void shed_newest_roots(JobResult<Program>& result) {
    trace::Span span("engine.governor.shed", "recovery", "superstep", superstep_);
    const Snapshot& s = *newest_snapshot();
    std::vector<VertexId> parkable;
    for (std::size_t i = s.next_root; i < next_root_; ++i) {
      const VertexId r = pending_roots_[i];
      if (outstanding_index_.contains(r)) parkable.push_back(r);
    }
    const std::uint32_t k =
        governor_.park_count(static_cast<std::uint32_t>(parkable.size()));
    PREGEL_DCHECK(k >= 1 && k <= parkable.size());
    const std::unordered_set<VertexId> parked(parkable.end() - k, parkable.end());

    result.metrics.replayed_supersteps += superstep_ + 1 - s.superstep;
    Bytes biggest = 0;
    for (std::uint32_t i = 0; i < workers_now_; ++i)
      biggest = std::max(biggest, checkpoint_bytes(i));
    const auto read = control_op(cloud::FaultKind::kBlobRead, result);
    const double bw_Bps = cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    Seconds t = static_cast<double>(biggest) / bw_Bps +
                cost_.params().queue_op_latency + read.extra_latency;
    if (!read.success) t += cluster_.retry.op_deadline;
    result.metrics.governor_shed_time += t;
    result.metrics.total_time += t;
    meter_.charge(cluster_.vm, workers_now_, t);

    restore_snapshot_state(s);
    // Park: move the shed roots behind every other pending root, preserving
    // relative order. The snapshot's own pending list is updated too — a
    // later failure rollback must not silently undo the parking.
    std::stable_partition(
        pending_roots_.begin() + static_cast<std::ptrdiff_t>(next_root_),
        pending_roots_.end(), [&](VertexId r) { return !parked.contains(r); });
    newest_snapshot_mut()->pending_roots = pending_roots_;
    governor_.on_shed();
    ++result.metrics.governor_sheds;
    result.metrics.governor_roots_parked += k;
    trace::add("engine.governor.sheds", 1);
    if (trace::spans_on()) {
      const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                               ",\"roots_parked\":" + std::to_string(k) +
                               ",\"resume_superstep\":" + std::to_string(s.superstep) + "}";
      trace::Tracer::instance().instant("governor.shed", "governor", args);
      trace::Tracer::instance().virtual_instant("governor.shed", "governor",
                                                virtual_now_us_, args);
    }
    reinitiate_after_restore(result);
  }

  /// Rung 3: governed-OOM episode. The pressure breached the restart
  /// threshold and shedding is exhausted (or impossible): the thrashed VM is
  /// restarted by the fabric, everyone reloads the checkpoint, and the
  /// governor halves its swath-size cap so the replay cannot re-offend.
  /// Recorded as an episode in the metrics, not a job failure.
  void governed_oom_restore(JobResult<Program>& result) {
    trace::Span span("engine.governor.escalate", "recovery", "superstep", superstep_);
    const Snapshot& s = *newest_snapshot();
    result.metrics.replayed_supersteps += superstep_ + 1 - s.superstep;
    ++failure_epoch_;
    replay_lost_vms_.clear();
    const std::uint32_t offending = last_swath_size_;

    Bytes biggest = 0;
    for (std::uint32_t i = 0; i < workers_now_; ++i)
      biggest = std::max(biggest, checkpoint_bytes(i));
    const auto read = control_op(cloud::FaultKind::kBlobRead, result);
    const double bw_Bps = cluster_.vm.network_bps * cost_.params().network_efficiency / 8.0;
    Seconds t = cluster_.failure_detection_time + cluster_.vm_reacquisition_time +
                static_cast<double>(biggest) / bw_Bps + read.extra_latency;
    if (!read.success) t += cluster_.retry.op_deadline;
    result.metrics.recovery_time += t;
    result.metrics.total_time += t;
    meter_.charge(cluster_.vm, workers_now_, t);

    restore_snapshot_state(s);
    governor_.on_escalated(offending);
    ++result.metrics.governed_oom_episodes;
    trace::add("engine.governor.escalations", 1);
    if (trace::spans_on()) {
      const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                               ",\"offending_swath_size\":" + std::to_string(offending) +
                               ",\"new_swath_cap\":" + std::to_string(governor_.swath_cap()) +
                               ",\"resume_superstep\":" + std::to_string(s.superstep) + "}";
      trace::Tracer::instance().instant("governor.escalate", "governor", args);
      trace::Tracer::instance().virtual_instant("governor.escalate", "governor",
                                                virtual_now_us_, args);
    }
    reinitiate_after_restore(result);
  }

  // ---- live vertex migration (docs/ELASTICITY.md) --------------------------

  /// Max-over-mean imbalance of next-superstep active vertices across the
  /// current VM set — the quantity activity-aware rebalancing minimizes and
  /// `rebalance_gain` reports the reduction of.
  double active_next_imbalance() const {
    if (workers_now_ <= 1) return 0.0;
    std::vector<std::uint64_t> counts(workers_now_, 0);
    std::uint64_t total = 0;
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      counts[vm_of(p)] += parts_[p].active_next.size();
      total += parts_[p].active_next.size();
    }
    if (total == 0) return 0.0;
    const double mean = static_cast<double>(total) / workers_now_;
    std::uint64_t mx = 0;
    for (const std::uint64_t c : counts) mx = std::max(mx, c);
    return static_cast<double>(mx) / mean;
  }

  /// Consult the installed planner with the coming superstep's activity and
  /// apply whatever plan it returns. Runs at barriers only (periodic
  /// trigger, scaling events, governor scale-out); `why` labels the trace.
  void plan_and_migrate(JobResult<Program>& result, const char* why) {
    if (!cluster_.migration.enabled()) return;
    RebalanceSignals sig;
    sig.graph = graph_;
    sig.part_of = &part_of_;
    sig.placement = &placement_;
    sig.workers = workers_now_;
    sig.superstep = superstep_;
    sig.location_version = location_version_;
    sig.active.resize(parts_.size());
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      const PartitionState& ps = parts_[p];
      auto& out = sig.active[p];
      out.reserve(ps.active_next.size());
      for (const std::uint32_t l : ps.active_next) out.push_back(ps.vertices[l]);
      std::sort(out.begin(), out.end());
    }
    const MigrationPlan plan = cluster_.migration.planner->plan(sig);
    if (plan.empty()) return;
    apply_migration_plan(plan, result, why);
  }

  /// Execute a migration plan: price every move, run the transfers through
  /// the modeled queue/blob planes, and — if no leg exhausted its retry
  /// budget — rebuild the affected partitions around the new membership.
  /// Atomic abort: a failed transfer leaves every vertex where it was and
  /// charges only the wasted retry latency. Results stay bit-identical
  /// either way (see docs/ELASTICITY.md for the rank-order argument).
  bool apply_migration_plan(const MigrationPlan& plan, JobResult<Program>& result,
                            const char* why) {
    trace::Span span("engine.migration", "migration", "superstep", superstep_);
    struct Pending {
      VertexId v;
      PartitionId from, to;
      Bytes bytes;
    };
    std::vector<Pending> moves;
    moves.reserve(plan.moves.size());
    for (const VertexMove& mv : plan.moves) {
      PREGEL_CHECK_MSG(mv.vertex < graph_->num_vertices(),
                       "migration plan names an unknown vertex");
      PREGEL_CHECK_MSG(part_of_[mv.vertex] == mv.from,
                       "migration plan is stale: vertex no longer in 'from'");
      PREGEL_CHECK_MSG(mv.to < parts_.size() && mv.to != mv.from,
                       "migration plan targets an invalid partition");
      const PartitionState& ps = parts_[mv.from];
      const std::uint32_t l = local_of_[mv.vertex];
      // What physically moves: the vertex object + adjacency (the managed-
      // runtime footprint build_partitions models), its value, its exact
      // modeled algorithm state, and any buffered inbox messages.
      Bytes b = 64 + static_cast<Bytes>(graph_->out_degree(mv.vertex)) * 8 + sizeof(V);
      if (!ps.state_bytes_v.empty())
        b += static_cast<Bytes>(std::max<std::int64_t>(ps.state_bytes_v[l], 0));
      for (const M& m : ps.inbox_cur[l]) b += cost_.buffered_bytes(payload_bytes(m));
      for (const M& m : ps.inbox_next[l]) b += cost_.buffered_bytes(payload_bytes(m));
      moves.push_back({mv.vertex, mv.from, mv.to, b});
    }

    // Cross-VM transfer manifest, summed per (donor, receiver) VM pair;
    // moves between partitions co-located on one VM are free.
    std::vector<cloud::MigrationTransfer> transfers;
    for (const Pending& m : moves) {
      const std::uint32_t fv = vm_of(m.from), tv = vm_of(m.to);
      if (fv == tv) continue;
      auto it = std::find_if(transfers.begin(), transfers.end(), [&](const auto& t) {
        return t.from_vm == fv && t.to_vm == tv;
      });
      if (it == transfers.end())
        transfers.push_back({fv, tv, m.bytes, 1});
      else {
        it->bytes += m.bytes;
        ++it->vertices;
      }
    }

    cloud::MigrationExecutor exec(
        cost_, cluster_.vm, queues_,
        [this, &result](cloud::FaultKind k) { return control_op(k, result); });
    const cloud::MigrationOutcome out =
        exec.execute(std::span<const cloud::MigrationTransfer>(transfers), superstep_);
    // Migration stalls the barrier it runs at; charged immediately (not via
    // pending_placement_cost_) so per-superstep spans — the imbalance bench's
    // signal — stay clean of one-off transfer costs.
    if (out.stall > 0.0) {
      result.metrics.total_time += out.stall;
      result.metrics.migration_time += out.stall;
      meter_.charge(cluster_.vm, workers_now_, out.stall);
    }
    if (out.aborted) return false;

    const double imbalance_before = active_next_imbalance();
    rebuild_partitions_for_moves(moves);
    const double imbalance_after = active_next_imbalance();

    migrated_ = true;
    parts_dirty_ = true;
    ++location_version_;
    recompute_baseline_memory();
    ++result.metrics.migrations;
    result.metrics.migrated_vertices += plan.moves.size();
    result.metrics.migrated_bytes += out.bytes_moved;
    result.metrics.rebalance_gain += imbalance_before - imbalance_after;
    if (trace::spans_on()) {
      const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                               ",\"why\":\"" + why + "\"" +
                               ",\"vertices\":" + std::to_string(plan.moves.size()) +
                               ",\"bytes\":" + std::to_string(out.bytes_moved) + "}";
      trace::Tracer::instance().instant("migration.apply", "migration", args);
      trace::Tracer::instance().virtual_instant("migration.apply", "migration",
                                                virtual_now_us_, args);
    }
    return true;
  }

  /// Rebuild every partition a move touches around its new membership. Each
  /// vertex carries its value, inboxes (and combiner source tags), modeled
  /// state bytes, pending activation, and scheduled wakes; partition vertex
  /// lists stay ascending by global id and part_of_/local_of_ are updated.
  template <class PendingVec>
  void rebuild_partitions_for_moves(const PendingVec& moves) {
    std::unordered_map<VertexId, PartitionId> dest;
    std::vector<PartitionId> affected;
    for (const auto& m : moves) {
      dest[m.v] = m.to;
      affected.push_back(m.from);
      affected.push_back(m.to);
    }
    std::sort(affected.begin(), affected.end());
    affected.erase(std::unique(affected.begin(), affected.end()), affected.end());

    std::unordered_map<PartitionId, PartitionState> old;
    for (const PartitionId p : affected) old[p] = std::move(parts_[p]);

    // New membership per affected partition (ascending by global id).
    for (const PartitionId p : affected) {
      std::vector<VertexId> nv;
      nv.reserve(old[p].vertices.size());
      for (const VertexId v : old[p].vertices) {
        const auto it = dest.find(v);
        if (it == dest.end() || it->second == p) nv.push_back(v);
      }
      for (const auto& m : moves)
        if (m.to == p) nv.push_back(m.v);
      std::sort(nv.begin(), nv.end());

      PartitionState ns;
      const std::size_t pn = nv.size();
      ns.vertices = std::move(nv);
      ns.values.resize(pn);
      ns.inbox_cur.resize(pn);
      ns.inbox_next.resize(pn);
      ns.inbox_cur_src.resize(pn);
      ns.inbox_next_src.resize(pn);
      ns.in_active_next.assign(pn, false);
      ns.state_bytes_v.assign(pn, 0);
      ns.graph_bytes = partition_graph_bytes(ns.vertices);
      parts_[p] = std::move(ns);
    }

    // Pull every vertex's state from wherever it lived before. part_of_ and
    // local_of_ still hold the OLD locations until the loop below finishes.
    for (const PartitionId p : affected) {
      PartitionState& ns = parts_[p];
      for (std::uint32_t nl = 0; nl < ns.vertices.size(); ++nl) {
        const VertexId v = ns.vertices[nl];
        PartitionState& os = old.at(part_of_[v]);
        const std::uint32_t ol = local_of_[v];
        ns.values[nl] = std::move(os.values[ol]);
        ns.inbox_cur[nl] = std::move(os.inbox_cur[ol]);
        ns.inbox_next[nl] = std::move(os.inbox_next[ol]);
        ns.inbox_cur_src[nl] = std::move(os.inbox_cur_src[ol]);
        ns.inbox_next_src[nl] = std::move(os.inbox_next_src[ol]);
        if (!os.state_bytes_v.empty()) ns.state_bytes_v[nl] = os.state_bytes_v[ol];
        ns.state_bytes += ns.state_bytes_v[nl];
        for (const M& m : ns.inbox_cur[nl])
          ns.inbox_cur_bytes += cost_.buffered_bytes(payload_bytes(m));
        for (const M& m : ns.inbox_next[nl])
          ns.inbox_next_bytes += cost_.buffered_bytes(payload_bytes(m));
        if (os.in_active_next[ol]) {
          ns.in_active_next[nl] = true;
          ns.active_next.push_back(nl);
        }
      }
    }

    // Re-home scheduled wakes (locals are remapped; list order within a wake
    // step is irrelevant — prepare_superstep sorts the merged actives).
    for (const PartitionId p : affected) {
      for (const auto& [at, locals] : old.at(p).wakes) {
        for (const std::uint32_t ol : locals) {
          const VertexId v = old.at(p).vertices[ol];
          const PartitionId np = dest.contains(v) ? dest.at(v) : p;
          PartitionState& ns = parts_[np];
          const auto it = std::lower_bound(ns.vertices.begin(), ns.vertices.end(), v);
          ns.wakes[at].push_back(
              static_cast<std::uint32_t>(it - ns.vertices.begin()));
        }
      }
    }

    // Finally flip the location tables to the new layout.
    for (const PartitionId p : affected) {
      const PartitionState& ns = parts_[p];
      for (std::uint32_t nl = 0; nl < ns.vertices.size(); ++nl) {
        part_of_[ns.vertices[nl]] = p;
        local_of_[ns.vertices[nl]] = nl;
      }
    }
  }

  /// Physically redistribute partitions after the VM set changed: every
  /// partition whose placement moved rides the modeled transfer planes from
  /// its old VM to its new one. Proceeds even if a leg aborts — the
  /// placement tables already changed, so the cluster must converge; the
  /// wasted retry latency is still charged.
  void charge_partition_redistribution(const std::vector<std::uint32_t>& old_placement,
                                       JobResult<Program>& result) {
    std::vector<cloud::MigrationTransfer> transfers;
    std::uint64_t vertices = 0;
    for (std::uint32_t p = 0; p < parts_.size(); ++p) {
      if (p >= old_placement.size() || old_placement[p] == placement_[p]) continue;
      transfers.push_back({old_placement[p], placement_[p],
                           partition_resident_bytes(parts_[p]),
                           static_cast<std::uint64_t>(parts_[p].vertices.size())});
      vertices += parts_[p].vertices.size();
    }
    if (transfers.empty()) return;
    cloud::MigrationExecutor exec(
        cost_, cluster_.vm, queues_,
        [this, &result](cloud::FaultKind k) { return control_op(k, result); });
    const cloud::MigrationOutcome out =
        exec.execute(std::span<const cloud::MigrationTransfer>(transfers), superstep_);
    if (out.stall > 0.0) {
      result.metrics.total_time += out.stall;
      result.metrics.migration_time += out.stall;
      meter_.charge(cluster_.vm, workers_now_, out.stall);
    }
    if (!out.aborted) {
      ++result.metrics.migrations;
      result.metrics.migrated_vertices += vertices;
      result.metrics.migrated_bytes += out.bytes_moved;
    }
  }

  /// Governor scale-out rung: grow the cluster by one VM and spread the
  /// partitions over it — pressure relief without a checkpoint rewind.
  /// Chosen by the governor only when the modeled transfer is strictly
  /// cheaper than the shed it replaces.
  void governor_scale_out(JobResult<Program>& result) {
    trace::Span span("engine.governor.scale_out", "governor", "superstep", superstep_);
    const std::vector<std::uint32_t> old_placement = placement_;
    workers_now_ += 1;
    workers_changed_ = true;  // next superstep's span absorbs scale_event_cost
    reset_placement_to_modulo();
    vm_straggler_counts_.assign(workers_now_, 0);
    recompute_baseline_memory();
    charge_partition_redistribution(old_placement, result);
    if (cluster_.migration.enabled() && cluster_.migration.on_scaling)
      plan_and_migrate(result, "governor-scale-out");
    governor_.on_scale_out();
    ++result.metrics.governor_scale_outs;
    trace::add("engine.governor.scale_outs", 1);
    if (trace::spans_on()) {
      const std::string args = "{\"superstep\":" + std::to_string(superstep_) +
                               ",\"workers\":" + std::to_string(workers_now_) + "}";
      trace::Tracer::instance().instant("governor.scale_out", "governor", args);
      trace::Tracer::instance().virtual_instant("governor.scale_out", "governor",
                                                virtual_now_us_, args);
    }
  }

  /// Manager-injected seeds carry this sentinel in the combiner source
  /// array: no worker VM id ever equals it (the sender-side combining model
  /// already keys sources by uint8_t VM id), so worker messages never merge
  /// into a seed and vice versa.
  static constexpr std::uint8_t kSeedSource = 0xFF;

  void inject_seed(VertexId root) {
    if constexpr (requires(VertexId r) {
                    { Program::seed_message(r) } -> std::convertible_to<M>;
                  }) {
      M seed = Program::seed_message(root);
      const std::uint32_t p = part_of_[root];
      const std::uint32_t l = local_of_[root];
      PartitionState& ps = parts_[p];
      ps.inbox_next_bytes += cost_.buffered_bytes(payload_bytes(seed));
      ps.inbox_next[l].push_back(std::move(seed));
      // Keep the combiner source array in lockstep with the inbox: a seed
      // appended without a source entry leaves the arrays desynced, and any
      // later combiner scan of this inbox would read srcs[i] past its end.
      if constexpr (has_combiner()) {
        if (opts_combine_) ps.inbox_next_src[l].push_back(kSeedSource);
      }
      activate_local(p, l);
    }
  }

  // ---- context callbacks ---------------------------------------------------

  void route(std::uint32_t from_partition, VertexId target, M message,
             std::size_t chunk) {
    PREGEL_DCHECK(target < graph_->num_vertices());
    const std::uint32_t tp = part_of_[target];
    const std::uint32_t tl = local_of_[target];
    if (chunk != kNoChunk) {
      // Staged compute phase: capture the emission in this chunk's scratch
      // row for the destination; the deterministic merge delivers it after
      // the compute barrier. No shared state is touched here.
      ChunkScratch& cs = chunk_scratch_[chunk];
      cs.out[tp].push_back(StagedMessage{tl, cs.computing_rank, cs.computing_src,
                                         cs.emit_seq++, std::move(message)});
      return;
    }
    PartitionState& src = parts_[from_partition];
    deliver(from_partition, tp, tl, std::move(message), src.load, src.outbuf_bytes,
            static_cast<std::uint8_t>(vm_of(from_partition)));
  }

  /// send_to_all_neighbors: in pull mode capture one broadcast record
  /// instead of materializing a staged message per out-edge; the merge
  /// synthesizes the per-edge stream on the destination side. Otherwise
  /// expand to per-edge routes exactly as the classic push path.
  void broadcast(std::uint32_t from_partition, VertexId v, const M& message,
                 std::size_t chunk) {
    if (chunk != kNoChunk && pull_this_step_) {
      ChunkScratch& cs = chunk_scratch_[chunk];
      auto& recs = broadcast_store_[v];
      if (recs.empty()) cs.broadcasters.push_back(v);
      recs.emplace_back(cs.emit_seq++, message);
      return;
    }
    for (VertexId u : graph_->out_neighbors(v))
      route(from_partition, u, M(message), chunk);
  }

  /// Deliver one emitted message into partition `tp`'s next inbox: combiner
  /// merge, send/receive accounting, activation. The serial path (route) and
  /// the parallel merge (merge_destination) share this verbatim so their
  /// per-message effects are identical; source-side counters go through the
  /// `src_load`/`src_outbuf` out-params because the merge cannot write the
  /// source partition directly. `combine_src` is the sender-side combining
  /// domain: the VM the sender's *home* partition is placed on, captured at
  /// emission time so a migrated sender keeps combining into the same bucket
  /// it would have unmigrated (bit-identity of combined message streams).
  void deliver(std::uint32_t from_partition, std::uint32_t tp, std::uint32_t tl, M&& message,
               cloud::WorkerLoad& src_load, Bytes& src_outbuf, std::uint8_t combine_src) {
    PartitionState& dst = parts_[tp];
    const Bytes payload = payload_bytes(message);
    const bool remote =
        vm_of(from_partition) != vm_of(tp);

    // Combiner (when enabled): merge into an already-buffered message with
    // the same combine key. Modeled as sender-side combining — a combined
    // message adds no transfer bytes and no buffer growth, which is the
    // benefit Pregel combiners exist to provide.
    if constexpr (has_combiner()) {
      if (opts_combine_) {
        const std::uint64_t key = Program::combine_key(message);
        const std::uint8_t src_vm = combine_src;
        auto& box = dst.inbox_next[tl];
        auto& srcs = dst.inbox_next_src[tl];
        PREGEL_DCHECK(box.size() == srcs.size());
        for (std::size_t i = 0; i < box.size(); ++i) {
          if (srcs[i] == src_vm && Program::combine_key(box[i]) == key) {
            Program::combine(box[i], message);
            return;
          }
        }
        srcs.push_back(src_vm);
        // fall through to the normal (uncombined) accounting below
      }
    }

    if (remote) {
      ++src_load.messages_sent_remote;
      const Bytes wire = cost_.wire_bytes(payload);
      src_load.bytes_sent_remote += wire;
      src_outbuf += wire;
      dst.load.bytes_received_remote += wire;
      if (log_outboxes_)
        outbox_log_cur_[from_partition * parts_.size() + tp] += wire;
    } else {
      ++src_load.messages_sent_local;
    }
    dst.inbox_next_bytes += cost_.buffered_bytes(payload);
    dst.inbox_next[tl].push_back(std::move(message));
    activate_local(tp, tl);
  }

  void activate_local(std::uint32_t partition, std::uint32_t local) {
    PartitionState& ps = parts_[partition];
    if (!ps.in_active_next[local]) {
      ps.in_active_next[local] = true;
      ps.active_next.push_back(local);
    }
  }

  /// remain_active: staged per chunk (the destination partition's merge task
  /// applies them — activation is set-semantics, so order is irrelevant);
  /// direct on the serial path.
  void activate_from(std::uint32_t partition, std::uint32_t local, std::size_t chunk) {
    if (chunk != kNoChunk)
      chunk_scratch_[chunk].activations.push_back(local);
    else
      activate_local(partition, local);
  }

  void schedule_wake(std::uint32_t partition, std::uint32_t local, std::uint64_t at,
                     std::size_t chunk) {
    PREGEL_CHECK_MSG(at > superstep_, "wake_at: superstep must be in the future");
    if (chunk != kNoChunk)
      chunk_scratch_[chunk].wakes.emplace_back(at, local);
    else
      parts_[partition].wakes[at].push_back(local);
  }

  void charge_state(std::uint32_t partition, std::uint32_t local, std::int64_t delta,
                    std::size_t chunk) {
    PartitionState& ps = parts_[partition];
    if (chunk != kNoChunk)
      chunk_scratch_[chunk].state_delta += delta;
    else
      ps.state_bytes += delta;
    // Per-vertex slots are disjoint across chunks (a vertex computes in
    // exactly one leaf), so they are written directly either way.
    if (!ps.state_bytes_v.empty()) ps.state_bytes_v[local] += delta;
  }

  /// Vertex-context aggregate contribution. During staged compute the
  /// contribution is logged in the chunk's scratch (tagged with the emitting
  /// vertex's rank) and replayed at the barrier in the exact serial
  /// summation order — chunk order unmigrated, rank-merge order after a
  /// migration; serially it sums immediately.
  void aggregate_from(std::uint64_t key, double value, std::size_t chunk) {
    if (chunk != kNoChunk) {
      ChunkScratch& cs = chunk_scratch_[chunk];
      cs.aggs.push_back({cs.computing_rank, key, value});
    } else {
      agg_cur_.add(key, value);
    }
  }

  /// Vertex-context root completion, staged like aggregate_from so compute
  /// lanes never touch the shared root bookkeeping.
  void root_done_from(VertexId root, std::size_t chunk) {
    if (chunk != kNoChunk) {
      ChunkScratch& cs = chunk_scratch_[chunk];
      cs.roots.push_back({cs.computing_rank, root});
    } else {
      mark_root_done(root);
    }
  }

  /// O(1) amortized root completion: tombstone the entry, drop its index
  /// record, and compact when tombstones reach half the array. Initiation
  /// order of the survivors is preserved throughout.
  void mark_root_done(VertexId root) {
    std::size_t pos;
    if (auto it = outstanding_index_.find(root); it != outstanding_index_.end()) {
      pos = it->second;
      outstanding_index_.erase(it);
    } else {
      // Not indexed: either never outstanding, or a duplicate initiation of
      // a root whose first occurrence was already completed. The original
      // linear-scan semantics (erase the earliest live occurrence) apply.
      auto lin = std::find(outstanding_roots_.begin(), outstanding_roots_.end(), root);
      if (lin == outstanding_roots_.end()) return;
      pos = static_cast<std::size_t>(lin - outstanding_roots_.begin());
    }
    outstanding_roots_[pos] = kInvalidVertex;
    ++root_tombstones_;
    ++roots_completed_;
    if (root_tombstones_ * 2 > outstanding_roots_.size()) compact_outstanding_roots();
  }

  /// Roots initiated and not yet completed, in initiation order.
  const std::vector<VertexId>& active_roots() {
    compact_outstanding_roots();
    return outstanding_roots_;
  }

  std::size_t outstanding_count() const noexcept {
    return outstanding_roots_.size() - root_tombstones_;
  }

  void compact_outstanding_roots() {
    if (root_tombstones_ == 0) return;
    std::erase(outstanding_roots_, kInvalidVertex);
    root_tombstones_ = 0;
    rebuild_root_index();
  }

  /// try_emplace keeps the first occurrence of a duplicate root indexed,
  /// matching what a linear scan would find.
  void rebuild_root_index() {
    outstanding_index_.clear();
    for (std::size_t i = 0; i < outstanding_roots_.size(); ++i)
      outstanding_index_.try_emplace(outstanding_roots_[i], i);
  }

  void collect(JobResult<Program>& result) {
    result.values.resize(graph_->num_vertices());
    for (const auto& ps : parts_)
      for (std::uint32_t l = 0; l < ps.vertices.size(); ++l)
        result.values[ps.vertices[l]] = ps.values[l];
    result.metrics.cost_usd = meter_.total_usd();
    result.metrics.vm_seconds = meter_.total_vm_seconds();
    result.roots_completed = roots_completed_;
    result.swaths_initiated = swath_index_;
  }

  // ---- data ----------------------------------------------------------------

  const Graph* graph_;
  Program program_;
  ClusterConfig cluster_;
  cloud::CostModel cost_;
  cloud::TenancyNoise noise_;
  cloud::CostMeter meter_;
  cloud::QueueService queues_;

  std::vector<PartitionState> parts_;
  std::vector<PartitionId> part_of_;
  std::vector<std::uint32_t> local_of_;

  // -- live vertex migration (docs/ELASTICITY.md) ---------------------------
  /// The run's initial vertex->partition assignment; a prior run's
  /// migrations are undone from this before the next run starts.
  std::vector<PartitionId> initial_assignment_;
  /// Home partition per vertex (build-time assignment) — immutable per run
  /// even as part_of_ changes, so combiner domains stay stable.
  std::vector<PartitionId> orig_part_;
  /// Immutable global serial rank per vertex (partition-major, ascending
  /// within partition) — the key the post-migration merges order by.
  std::vector<std::uint32_t> rank_of_;
  /// This run could migrate (planner installed or governor scale-out armed):
  /// keep per-vertex state bytes and always stage emissions.
  bool migration_possible_ = false;
  /// At least one migration has been applied this run: prepare/merge/replay
  /// switch to rank ordering.
  bool migrated_ = false;
  /// parts_ no longer match initial_assignment_; rebuild on next run.
  bool parts_dirty_ = false;

  JobOptions opts_;
  bool opts_combine_ = false;
  std::uint64_t superstep_ = 0;
  bool halt_requested_ = false;
  std::uint32_t workers_now_ = 1;
  bool workers_changed_ = false;
  /// Superstep attempts this run (includes recovery/rewind replays); the
  /// 4x max_supersteps runaway guard the classic loop applied, kept as a
  /// member so a scheduler can slice the run across advance() calls.
  std::uint64_t executed_ = 0;
  /// Scale-in debounce: consecutive quiet (below-threshold) barriers, and
  /// barriers left before the next retirement is considered.
  std::uint32_t scale_in_quiet_ = 0;
  std::uint32_t scale_in_cooldown_ = 0;

  Aggregates agg_cur_;
  Globals globals_, globals_next_;

  std::vector<VertexId> pending_roots_;
  std::size_t next_root_ = 0;
  /// Outstanding roots in initiation order; completed entries are tombstoned
  /// with kInvalidVertex and compacted when they reach half the array.
  std::vector<VertexId> outstanding_roots_;
  /// root -> position in outstanding_roots_ (first occurrence; live entries only).
  std::unordered_map<VertexId, std::size_t> outstanding_index_;
  std::size_t root_tombstones_ = 0;
  std::uint64_t roots_completed_ = 0;
  std::uint32_t swath_index_ = 0;
  std::uint32_t last_swath_size_ = 0;
  std::uint64_t supersteps_since_initiation_ = 0;
  Bytes peak_memory_since_initiation_ = 0;
  Bytes baseline_memory_ = 0;
  std::uint64_t last_active_vertices_ = 0;
  std::uint64_t last_messages_sent_ = 0;

  /// Generational checkpoint store: generation 0 (the input graph) plus
  /// every published base/delta generation, each holding its Snapshot as an
  /// opaque payload. See src/cloud/ckpt_store.hpp and docs/FAULTS.md.
  cloud::CkptStore ckpt_;
  /// Delta sizing active this run (checkpointing on + delta mode on).
  bool track_dirty_ = false;
  /// Barriers since the last background scrub pass (CkptOptions::scrub_period).
  std::uint32_t barriers_since_scrub_ = 0;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scheduled_failures_;
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scheduled_zone_outages_;
  std::uint64_t failure_epoch_ = 0;

  /// Memory-pressure governor state: the ladder itself plus this superstep's
  /// observation inputs (pre-spill peak, post-spill peak, restart breach).
  MemGovernor governor_;
  bool governor_breach_ = false;
  Bytes last_unspilled_peak_ = 0;
  Bytes last_post_spill_peak_ = 0;
  /// Spillable bytes (message buffers) on the peak VM at the swath's peak
  /// superstep — feeds the sizers' spill-relief discount.
  Bytes peak_spillable_since_initiation_ = 0;
  /// Span of the most recent superstep; prices shed-vs-scale-out replay.
  Seconds last_superstep_span_ = 0.0;

  cloud::FaultInjector faults_;
  Seconds pending_retry_latency_ = 0.0;
  /// First worker whose control op exhausted the retry budget this superstep.
  std::optional<std::uint32_t> control_failed_vm_;
  /// Confined replay in progress: the VMs whose partitions are recomputing
  /// (one for a lone failure, a whole domain after a zone outage), and the
  /// superstep at which replay catches up to the failure point.
  std::vector<std::uint32_t> replay_lost_vms_;
  std::uint64_t confined_replay_until_ = 0;
  /// Job-manager replica pair: fencing epoch, CRC-verified manifest,
  /// failover state machine (see src/cloud/manager.hpp).
  cloud::JobManager manager_;
  /// Version of the partition/vertex location tables, bumped on every
  /// placement change or migration; persisted in the manager manifest so a
  /// standby can tell whether its routing state is stale.
  std::uint64_t location_version_ = 0;
  /// Availability-zone labeling of the worker fleet (1 zone = off).
  cloud::ZoneMap zones_;
  bool log_outboxes_ = false;
  /// Remote outbox bytes this superstep, indexed [src_partition][dst_partition].
  std::vector<Bytes> outbox_log_cur_;
  std::vector<std::uint32_t> vm_straggler_counts_;

  std::vector<std::uint32_t> placement_;
  Seconds pending_placement_cost_ = 0.0;

  /// Modeled-clock cursor (microseconds of simulated time elapsed so far),
  /// used only to place trace events on the virtual cluster track. Purely
  /// observational; never read by the simulation itself.
  double virtual_now_us_ = 0.0;

  // -- host parallelism (wall-clock only; no effect on results or model) ----
  std::unique_ptr<ThreadPool> pool_;
  std::uint32_t threads_ = 1;  ///< resolved execution lanes for this run
  std::uint32_t grain_ = Bag::kDefaultGrain;  ///< frontier-bag leaf size
  /// One bag per partition, repacked from active_cur each staged superstep;
  /// its leaves are the stealable chunks.
  std::vector<Bag> frontier_bags_;
  std::vector<ChunkRef> chunks_;  ///< partition-major; index = serial order
  /// [first, last) chunk indices of each partition's leaves.
  std::vector<std::pair<std::uint32_t, std::uint32_t>> part_chunk_range_;
  std::vector<ChunkScratch> chunk_scratch_;           ///< by chunk index
  std::vector<SendScratch> send_scratch_;             ///< [dst * P + src]
  ThreadPool::StealOutcome last_steals_{};            ///< this superstep's steals

  // -- direction optimization (push/pull; see header comment) ---------------
  bool direction_enabled_ = false;  ///< program capable && mode != kOff
  bool pull_mode_ = false;          ///< hysteresis state of the heuristic
  bool pull_this_step_ = false;     ///< decision for the running superstep
  bool last_pull_mode_ = false;     ///< previous superstep, for switch count
  /// Pull-mode broadcast capture: per sender, (emission seq, payload) in
  /// call order. Sized once per run when direction is enabled.
  std::vector<std::vector<std::pair<std::uint32_t, M>>> broadcast_store_;
  /// Global in-edge CSR with per-target lists rank-sorted (lazily built).
  std::vector<std::size_t> pull_off_;
  std::vector<VertexId> pull_src_;
  bool pull_index_built_ = false;
};

}  // namespace pregel
