// Swath scheduling heuristics — the paper's primary contribution (§IV).
//
// Root-parallel algorithms (BC, APSP) logically start |V| traversals at
// once; buffering the frontier of all of them overwhelms worker memory.
// The swath scheduler instead *initiates* computation for k roots at a time
// (a swath) and decides (a) how large each swath should be and (b) when the
// next swath may begin, possibly overlapping the tail of the previous one.
//
//   Swath size  : Static(k) | Sampling (measure small swaths, extrapolate)
//                 | Adaptive (linear-interpolation controller on peak memory)
//   Initiation  : Sequential (previous swath fully done) | StaticN (every N
//                 supersteps) | DynamicPeak (message-traffic phase change)
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace pregel {

/// What the sizer sees when asked for the next swath's size.
struct SwathSizeSignals {
  std::uint32_t swath_index = 0;        ///< 0 for the first swath
  std::uint32_t last_swath_size = 0;    ///< 0 before any swath ran
  Bytes peak_memory_last_swath = 0;     ///< max worker memory since last initiation
  Bytes baseline_memory = 0;            ///< graph + resident state, no traffic
  Bytes memory_target = 0;              ///< per-worker budget (paper: 6 GB of 7)
  std::uint32_t roots_remaining = 0;
  /// Spill-aware sizing: how much of the peak was spillable message buffer,
  /// and whether the engine's governor offers to spill it (spill enabled and
  /// the modeled blob round-trip priced cheap next to a superstep span).
  /// When offered, the sizers measure footprints net of the spillable bytes
  /// instead of shrinking the swath to keep everything resident.
  Bytes peak_spillable_last_swath = 0;
  bool spill_relief_available = false;
};

class SwathSizer {
 public:
  virtual ~SwathSizer() = default;
  /// Number of roots for the next swath (>= 1; engine clamps to remaining).
  virtual std::uint32_t next_size(const SwathSizeSignals& signals) = 0;
  virtual std::string name() const = 0;
};

/// Fixed swath size — the baseline of Figure 4 ("largest swath that
/// completes") when sized by hand.
class StaticSwathSizer final : public SwathSizer {
 public:
  explicit StaticSwathSizer(std::uint32_t size);
  std::uint32_t next_size(const SwathSizeSignals&) override { return size_; }
  std::string name() const override { return "static-" + std::to_string(size_); }

 private:
  std::uint32_t size_;
};

/// Paper's sampling heuristic: run `sample_count` swaths of `sample_size`
/// roots, estimate the per-root incremental peak memory, then use a fixed
/// extrapolated size (target - baseline) / per-root for the rest.
class SamplingSwathSizer final : public SwathSizer {
 public:
  explicit SamplingSwathSizer(std::uint32_t sample_size = 4, std::uint32_t sample_count = 2);
  std::uint32_t next_size(const SwathSizeSignals& signals) override;
  std::string name() const override { return "sampling"; }

  /// Extrapolated size once sampling completed (0 while still sampling).
  std::uint32_t extrapolated_size() const noexcept { return extrapolated_; }

 private:
  std::uint32_t sample_size_;
  std::uint32_t sample_count_;
  double max_per_root_bytes_ = 0.0;
  std::uint32_t extrapolated_ = 0;
};

/// Paper's adaptive heuristic: each swath's size is linearly interpolated
/// from the previous swath's peak memory:
///   next = prev_size * (target - baseline) / (peak - baseline)
/// smoothed with an EWMA and clamped to [1, growth_cap * prev].
class AdaptiveSwathSizer final : public SwathSizer {
 public:
  explicit AdaptiveSwathSizer(std::uint32_t initial_size = 4, double smoothing = 0.7,
                              double growth_cap = 4.0);
  std::uint32_t next_size(const SwathSizeSignals& signals) override;
  std::string name() const override { return "adaptive"; }

 private:
  std::uint32_t initial_size_;
  double smoothing_;
  double growth_cap_;
  Ewma ewma_;
  /// Per-root incremental peak observed in the most recent swath; clamps
  /// proposals to the *current* headroom so a stale baseline (e.g. after
  /// recovery) can't push the smoothed size past the budget.
  double last_per_root_bytes_ = 0.0;
};

/// What initiation policies see after every superstep.
struct InitiationSignals {
  std::uint64_t superstep = 0;                  ///< global superstep index
  std::uint64_t supersteps_since_initiation = 0;
  std::uint64_t messages_sent = 0;              ///< this superstep, all workers
  std::uint64_t active_roots = 0;               ///< initiated but not completed
  Bytes max_worker_memory = 0;
  Bytes memory_target = 0;
};

class InitiationPolicy {
 public:
  virtual ~InitiationPolicy() = default;
  /// May the next swath start at the coming superstep?
  virtual bool should_initiate(const InitiationSignals& signals) = 0;
  /// Called when a swath is actually initiated (reset internal detectors).
  virtual void on_initiated() {}
  virtual std::string name() const = 0;
};

/// Baseline: wait until every root of the previous swath completed.
class SequentialInitiation final : public InitiationPolicy {
 public:
  bool should_initiate(const InitiationSignals& s) override { return s.active_roots == 0; }
  std::string name() const override { return "sequential"; }
};

/// Static-N: initiate a new swath every N supersteps.
class StaticNInitiation final : public InitiationPolicy {
 public:
  explicit StaticNInitiation(std::uint64_t n);
  bool should_initiate(const InitiationSignals& s) override;
  void on_initiated() override {}
  std::string name() const override { return "static-" + std::to_string(n_); }

 private:
  std::uint64_t n_;
};

/// Paper's dynamic heuristic: monitor sent-message statistics superstep to
/// superstep; initiate when an increase followed by a decrease is seen
/// (the frontier peak of the current swath has passed). A memory guard
/// suppresses initiation while the worker peak is above the target.
class DynamicPeakInitiation final : public InitiationPolicy {
 public:
  explicit DynamicPeakInitiation(double tolerance = 0.05);
  bool should_initiate(const InitiationSignals& s) override;
  void on_initiated() override;
  std::string name() const override { return "dynamic"; }

 private:
  PeakDetector detector_;
  bool armed_ = false;  ///< peak seen, waiting for initiation to happen
};

/// §IV also names "memory utilization" as a trigger signal: initiate
/// whenever the observed worker-memory peak since the last initiation has
/// fallen back below `headroom_fraction` of the target (i.e. there is room
/// for another swath's buffers). Strictly reactive — no peak detection.
class MemoryHeadroomInitiation final : public InitiationPolicy {
 public:
  explicit MemoryHeadroomInitiation(double headroom_fraction = 0.6);
  bool should_initiate(const InitiationSignals& s) override;
  std::string name() const override;

 private:
  double headroom_;
};

/// §IV's third named signal, the "number of active vertices (those that
/// have not voted to halt)": track the running peak of sent messages for
/// the current swath window and initiate once traffic decays below
/// `decay_fraction` of that peak (the wave is draining).
class TrafficDecayInitiation final : public InitiationPolicy {
 public:
  explicit TrafficDecayInitiation(double decay_fraction = 0.5);
  bool should_initiate(const InitiationSignals& s) override;
  void on_initiated() override;
  std::string name() const override;

 private:
  double decay_;
  double window_peak_ = 0.0;
};

/// Convenience factory bundle used by JobConfig.
struct SwathPolicy {
  std::shared_ptr<SwathSizer> sizer;
  std::shared_ptr<InitiationPolicy> initiation;
  /// Per-worker memory budget handed to the sizer (paper: 6 GB on 7 GB VMs).
  Bytes memory_target = 0;

  /// Default: everything in one swath, sequential — plain Pregel semantics.
  static SwathPolicy single_swath();
  static SwathPolicy make(std::shared_ptr<SwathSizer> sizer,
                          std::shared_ptr<InitiationPolicy> initiation, Bytes memory_target);
};

}  // namespace pregel
