#include "core/config.hpp"

namespace pregel {

namespace {
std::string failure_text(std::uint64_t superstep, std::uint32_t worker, Bytes memory,
                         Bytes ram) {
  return "worker VM " + std::to_string(worker) + " restarted by cloud fabric at superstep " +
         std::to_string(superstep) + ": buffered memory " + format_bytes(memory) +
         " exceeded restart threshold on a " + format_bytes(ram) + " VM";
}
}  // namespace

const char* to_string(RecoveryMode mode) noexcept {
  switch (mode) {
    case RecoveryMode::kFullRollback: return "full-rollback";
    case RecoveryMode::kConfined: return "confined";
  }
  return "unknown";
}

JobFailure::JobFailure(std::uint64_t superstep, std::uint32_t worker, Bytes memory, Bytes ram)
    : std::runtime_error(failure_text(superstep, worker, memory, ram)),
      superstep_(superstep),
      worker_(worker),
      memory_(memory) {}

}  // namespace pregel
