// Gather-Apply-Scatter (GAS) adapter.
//
// Section II of the paper surveys "alternative programming abstractions"
// next to Pregel's vertex-centric messaging — GraphLab/PowerGraph's GAS
// model being the prominent one. This adapter runs GAS programs unchanged on
// the Pregel++ engine: each GAS iteration is one superstep in which a vertex
// gathers the accumulated signals its neighbors scattered in the previous
// superstep, applies its update, and (if still active) scatters a new signal
// along its out-edges. The gather accumulator doubles as a Pregel combiner,
// so GAS programs get message combining for free.
//
// A GAS program provides:
//   struct MyGas {
//     using VertexValue;   // per-vertex state (default-constructible)
//     using GatherValue;   // commutative gather monoid element
//     static GatherValue scatter(const GasContext&, const VertexValue&);
//     static void accumulate(GatherValue& acc, const GatherValue& in);
//     // Update from the gathered sum (nullopt on the first iteration or
//     // when no neighbor signalled). Return true to scatter again.
//     bool apply(const GasContext&, VertexValue&,
//                const std::optional<GatherValue>& gathered) const;
//   };
#pragma once

#include <cstdint>
#include <optional>
#include <span>

#include "core/engine.hpp"
#include "graph/graph.hpp"

namespace pregel {

/// What a GAS program sees about the current vertex.
struct GasContext {
  VertexId id = 0;
  std::uint32_t degree = 0;
  std::uint64_t iteration = 0;
  VertexId num_graph_vertices = 0;
};

template <typename G>
concept GasProgramT = requires(const G& g, GasContext ctx, typename G::VertexValue& v,
                               typename G::GatherValue& acc,
                               const typename G::GatherValue& in,
                               const std::optional<typename G::GatherValue>& gathered) {
  { G::scatter(ctx, v) } -> std::convertible_to<typename G::GatherValue>;
  G::accumulate(acc, in);
  { g.apply(ctx, v, gathered) } -> std::convertible_to<bool>;
};

/// The Pregel vertex program that hosts a GAS program.
template <GasProgramT G>
struct GasAdapter {
  using VertexValue = typename G::VertexValue;
  using MessageValue = typename G::GatherValue;

  G gas;
  std::uint64_t max_iterations = 1'000'000;

  static Bytes message_payload_bytes(const MessageValue&) { return sizeof(MessageValue); }
  static std::uint64_t combine_key(const MessageValue&) { return 0; }
  static void combine(MessageValue& acc, const MessageValue& in) {
    G::accumulate(acc, in);
  }

  template <class Ctx>
  void compute(Ctx& ctx, VertexValue& v, std::span<const MessageValue> messages) const {
    GasContext gctx{ctx.vertex_id(), ctx.out_degree(), ctx.superstep(),
                    ctx.num_graph_vertices()};
    std::optional<MessageValue> gathered;
    for (const MessageValue& m : messages) {
      if (gathered) {
        G::accumulate(*gathered, m);
      } else {
        gathered = m;
      }
    }
    const bool active = gas.apply(gctx, v, gathered);
    if (active && ctx.superstep() + 1 < max_iterations) {
      ctx.send_to_all_neighbors(G::scatter(gctx, v));
      // Activity is purely signal-driven (GraphLab semantics): a vertex runs
      // again only when a neighbor's scatter reaches it; the engine halts
      // when no signals remain in flight.
    }
  }
};

/// Run a GAS program over the whole graph (all vertices active initially).
template <GasProgramT G>
JobResult<GasAdapter<G>> run_gas(const Graph& g, const ClusterConfig& cluster,
                                 const Partitioning& parts, G gas,
                                 std::uint64_t max_iterations = 1'000'000,
                                 bool use_combiner = true) {
  Engine<GasAdapter<G>> engine(g, {std::move(gas), max_iterations}, cluster, parts);
  JobOptions opts;
  opts.start_all_vertices = true;
  opts.use_combiner = use_combiner;
  return engine.run(opts);
}

}  // namespace pregel
