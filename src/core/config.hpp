// Cluster and job configuration + result types shared by all programs.
#pragma once

#include <cstdint>
#include <memory>
#include <stdexcept>
#include <string>
#include <vector>

#include "cloud/ckpt_store.hpp"
#include "cloud/cost_model.hpp"
#include "cloud/elasticity.hpp"
#include "cloud/faults.hpp"
#include "cloud/placement.hpp"
#include "cloud/vm.hpp"
#include "core/swath.hpp"
#include "graph/graph.hpp"
#include "partition/rebalance.hpp"
#include "runtime/mem_governor.hpp"
#include "runtime/metrics.hpp"

namespace pregel {

/// What a worker failure rolls back.
enum class RecoveryMode {
  /// Pregel's default: every partition reloads the last checkpoint and the
  /// whole cluster replays the lost supersteps at full cost.
  kFullRollback,
  /// Confined recovery: only the failed VM's partitions reload the
  /// checkpoint and recompute; healthy workers keep their state and merely
  /// re-deliver their logged per-superstep outboxes to the lost partitions.
  kConfined,
};

const char* to_string(RecoveryMode mode) noexcept;

/// Scale-in rung: when a job's frontier collapses, retire idle VMs mid-job
/// and re-home their partitions through the MigrationExecutor, returning the
/// capacity to the pool (a multi-job scheduler reclaims it between slices).
/// The trigger reads modeled job-own state only — active-vertex density and
/// pending swath roots — so the decision, like every other elasticity rung,
/// is part of the bit-identity contract and reproduces in a solo run.
struct ScaleInOptions {
  bool enabled = false;
  /// Retire when active vertices / total vertices stays below this...
  double density_threshold = 0.05;
  /// ...for this many consecutive barriers (debounces frontier oscillation,
  /// e.g. a direction-optimized wave straddling the pull/push switch).
  std::uint32_t patience = 2;
  /// Never shrink below this many VMs.
  std::uint32_t min_workers = 1;
  /// Barriers to wait after a retirement before considering the next one,
  /// so the re-homed partitions' first supersteps inform the next decision.
  std::uint32_t cooldown = 2;
};

/// The simulated deployment: how many graph partitions exist, how many
/// worker VMs host them, what hardware each VM is, and how the environment
/// behaves (cost model parameters, tenancy noise, elastic scaling policy).
struct ClusterConfig {
  /// Logical graph partitions. This is the paper's "number of partition
  /// workers" at full scale; with elastic scaling, fewer VMs may host them
  /// (partition p runs on VM p mod W).
  std::uint32_t num_partitions = 8;
  /// VMs at job start (must be in [1, num_partitions]).
  std::uint32_t initial_workers = 8;
  cloud::VmSpec vm = cloud::azure_large_2012();
  cloud::CostParams cost;
  /// Multi-tenancy noise amplitude (0 = perfectly deterministic timings).
  double tenancy_sigma = 0.0;
  std::uint64_t noise_seed = 1;
  /// Worker-count policy consulted at each barrier; null = fixed at
  /// initial_workers.
  std::shared_ptr<cloud::ScalingPolicy> scaling;
  /// Added to the superstep span whenever the worker count changes
  /// (VM acquisition/release). The paper's Figure 16 projection uses 0.
  Seconds scale_event_cost = 0.0;
  /// Partition->VM placement policy consulted at each barrier; null = static
  /// p mod workers. Useful with num_partitions > workers (overdecomposition):
  /// rebalancing placement counters the partition-local activity maximas of
  /// §VII. Migration time (partition bytes over the network) is charged.
  std::shared_ptr<cloud::PlacementPolicy> placement;
  /// Live vertex migration: a planner (none installed = subsystem off) plus
  /// when to consult it (every `period` barriers and/or after scaling
  /// events). Transfers ride the modeled queue/blob planes with every byte
  /// charged; results stay bit-identical to the unmigrated run (see
  /// docs/ELASTICITY.md).
  MigrationOptions migration;
  /// Frontier-collapse scale-in (off by default). Retirement re-homes the
  /// departing VM's partitions over the modeled transfer planes via the same
  /// redistribution path scaling events use, so every byte is charged.
  ScaleInOptions scale_in;

  // -- Fault tolerance (Pregel's checkpoint/recovery, which the paper lists
  // -- among the advanced features its framework could support) ------------
  /// Write a checkpoint to blob storage every N supersteps (0 = off).
  std::uint64_t checkpoint_interval = 0;
  /// Deterministic per-(VM, superstep) failure probability. A failure with
  /// no checkpoint taken fails the job; with checkpoints the engine rolls
  /// back and replays.
  double failure_rate = 0.0;
  std::uint64_t failure_seed = 7;
  /// Explicitly scheduled failures: (superstep, worker VM). Each fires once.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scheduled_failures;
  /// Explicitly scheduled whole-zone outages: (superstep, zone). Each fires
  /// once, preempting every VM in the zone — the deterministic counterpart
  /// of the seeded zone-outage stream for crash-point tests.
  std::vector<std::pair<std::uint64_t, std::uint32_t>> scheduled_zone_outages;
  /// Generational checkpoint-store policy: delta chains, retention/GC,
  /// background scrub, and deterministic crash-point hooks (see
  /// docs/FAULTS.md "Checkpoint store").
  cloud::CkptOptions ckpt;
  /// Modeled time to detect a dead worker (missed barrier heartbeats),
  /// acquire a replacement VM, and have every worker reload the checkpoint
  /// (transfer time is charged separately from checkpoint size).
  Seconds failure_detection_time = 30.0;
  Seconds vm_reacquisition_time = 90.0;
  /// Scope of a rollback after a worker failure. Confined recovery requires
  /// checkpointing; it additionally logs per-partition remote outbox bytes
  /// each superstep so healthy partitions can re-deliver instead of replay.
  RecoveryMode recovery_mode = RecoveryMode::kFullRollback;

  // -- Control plane and correlated failure domains -------------------------
  /// Availability zones the worker fleet is striped across (VM v lives in
  /// zone v mod availability_zones). With more than one zone the seeded
  /// zone-outage fault class can preempt a whole domain at once, and the
  /// engine spreads checkpoint replicas across zones. 1 = no zone modeling.
  std::uint32_t availability_zones = 1;
  /// With multiple zones, write each worker's checkpoint to a second blob in
  /// another zone (extra upload time + one extra blob-write fault draw per
  /// worker). Without replicas a zone outage loses the checkpoints homed in
  /// that zone and the job cannot recover from it.
  bool replicate_checkpoints_across_zones = true;
  /// Manager-failover latency model: how long until the standby notices the
  /// primary's lease lapsed, plus how long the takeover itself (manifest
  /// download, epoch bump, re-arming the step queue) takes. Both are charged
  /// to the barrier at which the failover happens.
  Seconds manager_lease_timeout = 10.0;
  Seconds manager_takeover_time = 5.0;

  // -- Transient faults (the clouds the paper actually ran on) --------------
  /// Seeded injection of queue/blob transients, spot preemptions, and
  /// straggler episodes. All-zero rates (the default) inject nothing and the
  /// simulation is bit-identical to a failure-free run.
  cloud::FaultPlan faults;
  /// Client-side retry discipline masking the transient queue/blob classes;
  /// masked latency is charged to the cost model, and an op that exhausts
  /// its budget escalates to a worker failure.
  cloud::RetryPolicy retry;
  /// Barrier straggler timeout: a worker whose superstep runs past
  /// `straggler_timeout_factor` x the median worker time is declared slow
  /// and its partitions are speculatively re-executed on the least-loaded
  /// VM (counted in metrics and reported to the PlacementPolicy). Values
  /// <= 1 disable the timeout.
  double straggler_timeout_factor = 0.0;
};

/// Push/pull direction policy for direction-optimizing traversal programs
/// (those declaring `kDirectionOptimized`, e.g. SSSP/BC/Components). The
/// switch heuristic is Beamer-style but evaluated on *modeled* frontier
/// density only, so the choice — and every metric downstream of it — is
/// identical at any parallelism setting.
struct DirectionOptions {
  enum class Mode {
    kAuto,    ///< heuristic: pull when the frontier is dense, push otherwise
    kOff,     ///< always push (the classic per-edge outbox walk)
    kAlways,  ///< always pull once any vertex broadcasts (testing/benching)
  };
  Mode mode = Mode::kAuto;
  /// Enter pull when frontier out-arcs > total arcs / alpha.
  double alpha = 15.0;
  /// Return to push when frontier vertices < total vertices / beta.
  double beta = 24.0;
};

/// Per-run options.
struct JobOptions {
  /// PageRank-style: every vertex active in superstep 0 (roots must be empty).
  bool start_all_vertices = false;
  /// Root-parallel algorithms (BC, APSP): traversal roots, scheduled in
  /// swaths by `swath`.
  std::vector<VertexId> roots;
  SwathPolicy swath = SwathPolicy::single_swath();
  /// Safety valve against runaway programs.
  std::uint64_t max_supersteps = 1'000'000;
  /// Apply the program's combiner (when it defines one) at message delivery.
  /// Off by default: the paper's evaluation deliberately omits combiners;
  /// the combiner ablation bench turns this on.
  bool use_combiner = false;
  /// When a worker VM exceeds the restart threshold: throw JobFailure (true)
  /// or record the failure and keep simulating (false).
  bool fail_on_vm_restart = true;
  /// Memory-pressure governor (degradation ladder: veto/clamp -> spill/park
  /// -> governed-OOM restore). Budget comes from `swath.memory_target`;
  /// disabled by default, and with it enabled a restart-level breach is
  /// absorbed by the ladder instead of honoring fail_on_vm_restart.
  MemGovernorConfig governor;
  /// Host threads executing partitions within a superstep: 0 = one per
  /// hardware thread, 1 = serial fast path, N = exactly N lanes (capped at
  /// the partition count). Purely a wall-clock knob: results, modeled times,
  /// and every metric are bit-identical at any setting — compute stages its
  /// emissions into per-partition outboxes and a deterministic merge applies
  /// them in serial order.
  std::uint32_t parallelism = 0;
  /// Active vertices per frontier-bag leaf chunk — the unit of work the
  /// lanes steal from each other. Another pure wall-clock knob: chunk
  /// boundaries never change results, only load balance granularity.
  /// 0 = the bag's built-in default (256).
  std::uint32_t frontier_grain = 0;
  /// Direction optimization for programs that opt in; ignored by others.
  DirectionOptions direction;
};

/// Thrown when the cloud fabric restarts an unresponsive (memory-thrashed)
/// worker VM — the failure mode the paper observed when running swaths that
/// were too large ("spilling to virtual memory can lead workers to seem
/// unresponsive and the cloud fabric to restart the VM").
class JobFailure : public std::runtime_error {
 public:
  JobFailure(std::uint64_t superstep, std::uint32_t worker, Bytes memory, Bytes ram);

  std::uint64_t superstep() const noexcept { return superstep_; }
  std::uint32_t worker() const noexcept { return worker_; }
  Bytes memory() const noexcept { return memory_; }

 private:
  std::uint64_t superstep_;
  std::uint32_t worker_;
  Bytes memory_;
};

/// Per-job outcome common to all programs; Engine<Program>::run returns a
/// typed subclass carrying the final vertex values.
struct JobReport {
  JobMetrics metrics;
  bool failed = false;
  std::string failure_reason;
  std::uint64_t roots_completed = 0;
  std::uint64_t swaths_initiated = 0;
};

}  // namespace pregel
