// Keyed sum-aggregators and master-broadcast globals.
//
// Pregel's aggregators let every vertex contribute a value in superstep s
// and read the combined result in superstep s+1; the paper lists them among
// the "advanced Pregel features" its framework could support. We implement
// them (plus GPS-style master-computed globals) because the BSP formulation
// of betweenness-centrality needs global coordination: the master detects
// per-root forward-phase completion from an aggregated message count and
// broadcasts the backward-phase schedule.
//
// Keys are 64-bit: algorithms pack (root, field) pairs — see make_key.
#pragma once

#include <cstdint>
#include <span>
#include <unordered_map>
#include <utility>

namespace pregel {

/// Pack a (root, field) pair into an aggregate key.
constexpr std::uint64_t make_key(std::uint32_t root, std::uint32_t field) noexcept {
  return (static_cast<std::uint64_t>(root) << 8) | (field & 0xFF);
}

/// Sum-combined values keyed by uint64. One instance per superstep;
/// contributions from all vertices (and all partitions) sum together.
class Aggregates {
 public:
  void add(std::uint64_t key, double value) { values_[key] += value; }
  /// Replay a contribution log in order. The engine's parallel merge stages
  /// per-partition logs during compute and applies them here in partition
  /// order, reproducing the serial floating-point summation order exactly.
  void add_all(std::span<const std::pair<std::uint64_t, double>> entries) {
    for (const auto& [k, v] : entries) values_[k] += v;
  }
  /// 0.0 when the key was never contributed to.
  double get(std::uint64_t key) const {
    auto it = values_.find(key);
    return it == values_.end() ? 0.0 : it->second;
  }
  bool contains(std::uint64_t key) const { return values_.contains(key); }
  std::size_t size() const noexcept { return values_.size(); }
  void clear() noexcept { values_.clear(); }
  void merge(const Aggregates& other) {
    for (const auto& [k, v] : other.values_) values_[k] += v;
  }
  const std::unordered_map<std::uint64_t, double>& items() const noexcept { return values_; }

 private:
  std::unordered_map<std::uint64_t, double> values_;
};

/// Master-written values broadcast to all vertices for the next superstep
/// (GPS-style global computation results). Write in master_compute, read in
/// compute via the vertex context.
class Globals {
 public:
  void set(std::uint64_t key, double value) { values_[key] = value; }
  double get(std::uint64_t key, double fallback = 0.0) const {
    auto it = values_.find(key);
    return it == values_.end() ? fallback : it->second;
  }
  bool contains(std::uint64_t key) const { return values_.contains(key); }
  void erase(std::uint64_t key) { values_.erase(key); }
  std::size_t size() const noexcept { return values_.size(); }
  /// Full key -> value view (manager-manifest serialization needs to persist
  /// the aggregator state a standby's master-compute resumes from).
  const std::unordered_map<std::uint64_t, double>& items() const noexcept { return values_; }

 private:
  std::unordered_map<std::uint64_t, double> values_;
};

}  // namespace pregel
