// Precondition / invariant checking.
//
// Library entry points validate arguments with PREGEL_CHECK (always on,
// throws std::invalid_argument / std::logic_error so callers can test error
// paths), while hot inner loops use PREGEL_DCHECK (assert-style, compiled out
// in release). These are the only macros in the codebase; they exist because
// a check needs the failing expression's text and location.
#pragma once

#include <sstream>
#include <stdexcept>
#include <string>

namespace pregel::detail {

[[noreturn]] inline void check_failed(const char* expr, const char* file, int line,
                                      const std::string& msg) {
  std::ostringstream os;
  os << "PREGEL_CHECK failed: (" << expr << ") at " << file << ":" << line;
  if (!msg.empty()) os << " — " << msg;
  throw std::logic_error(os.str());
}

}  // namespace pregel::detail

#define PREGEL_CHECK(cond)                                                   \
  do {                                                                       \
    if (!(cond)) ::pregel::detail::check_failed(#cond, __FILE__, __LINE__, ""); \
  } while (false)

#define PREGEL_CHECK_MSG(cond, msg)                                          \
  do {                                                                       \
    if (!(cond)) ::pregel::detail::check_failed(#cond, __FILE__, __LINE__, (msg)); \
  } while (false)

#ifdef NDEBUG
#define PREGEL_DCHECK(cond) ((void)0)
#else
#define PREGEL_DCHECK(cond) PREGEL_CHECK(cond)
#endif
