// CRC-32C (Castagnoli) checksums for blob and checkpoint payload integrity.
//
// The Castagnoli polynomial (0x1EDC6F41) is the variant used by iSCSI, ext4
// and most cloud object stores for end-to-end payload verification, which is
// exactly the role it plays here: every blob carries its checksum and the
// read path re-verifies it, so torn or corrupted payloads surface as
// detectable integrity failures instead of silent bad data.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>

namespace pregel::util {

/// Incremental update: feed `data` into a running checksum previously
/// returned by crc32c()/crc32c_update(). Chaining over split buffers yields
/// the same value as one call over the concatenation.
std::uint32_t crc32c_update(std::uint32_t crc, std::span<const std::byte> data) noexcept;

/// One-shot checksum of a buffer. crc32c of "123456789" is 0xE3069283.
inline std::uint32_t crc32c(std::span<const std::byte> data) noexcept {
  return crc32c_update(0, data);
}

}  // namespace pregel::util
