// ASCII line/bar charts so each bench binary can render the figure it
// reproduces directly in the console (the CSVs carry the exact numbers).
#pragma once

#include <cstddef>
#include <string>
#include <vector>

namespace pregel {

/// One named series for an AsciiChart.
struct Series {
  std::string name;
  std::vector<double> values;
};

/// Render multiple series over a shared x axis (index-based) as a compact
/// character plot. Each series is drawn with its own glyph; a legend and the
/// y-range are included. Useful for figure-shaped bench output
/// (messages-per-superstep, memory-over-time, speedup-per-superstep).
std::string ascii_line_chart(const std::vector<Series>& series, std::size_t width = 78,
                             std::size_t height = 16, const std::string& title = {});

/// Horizontal bar chart for categorical comparisons (speedup bars, relative
/// time bars). `baseline` draws a vertical reference marker at that value.
std::string ascii_bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                            std::size_t width = 60, const std::string& title = {},
                            double baseline = 0.0);

}  // namespace pregel
