// Streaming statistics used throughout the metrics and heuristics layers.
#pragma once

#include <cstddef>
#include <cstdint>
#include <limits>
#include <vector>

namespace pregel {

/// Exact median of a sample: the middle element for odd sizes, the average
/// of the two middle elements for even sizes (O(n) via nth_element; takes
/// the sample by value because selection reorders it). 0 when empty.
double median_of(std::vector<double> samples) noexcept;

/// Welford online accumulator: mean / variance / min / max in one pass with
/// no stored samples. Used for per-superstep metric summaries.
class RunningStats {
 public:
  void add(double x) noexcept;
  void merge(const RunningStats& other) noexcept;

  std::size_t count() const noexcept { return n_; }
  bool empty() const noexcept { return n_ == 0; }
  double mean() const noexcept { return n_ ? mean_ : 0.0; }
  double sum() const noexcept { return sum_; }
  /// Population variance (n denominator); 0 for fewer than 2 samples.
  double variance() const noexcept;
  /// Sample variance (n-1 denominator); 0 for fewer than 2 samples.
  double sample_variance() const noexcept;
  double stddev() const noexcept;
  double min() const noexcept { return n_ ? min_ : 0.0; }
  double max() const noexcept { return n_ ? max_ : 0.0; }
  /// max/mean; 1.0 means perfectly flat. Used as the load-imbalance factor
  /// across workers in a superstep. Returns 1 when empty or mean==0.
  double imbalance() const noexcept;

 private:
  std::size_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = std::numeric_limits<double>::infinity();
  double max_ = -std::numeric_limits<double>::infinity();
};

/// Stored-sample accumulator when percentiles are needed (diameter
/// estimation, per-superstep distributions in bench reports).
class Percentiles {
 public:
  void add(double x) { samples_.push_back(x); }
  void reserve(std::size_t n) { samples_.reserve(n); }
  std::size_t count() const noexcept { return samples_.size(); }

  /// Linear-interpolated quantile, q in [0,1]. Sorts lazily.
  double quantile(double q);
  double median() { return quantile(0.5); }

 private:
  std::vector<double> samples_;
  bool sorted_ = false;
};

/// Exponentially weighted moving average — the smoothing primitive behind the
/// adaptive swath-size controller and the dynamic initiation detector.
class Ewma {
 public:
  /// alpha in (0,1]: weight of the newest observation.
  explicit Ewma(double alpha) noexcept : alpha_(alpha) {}

  void add(double x) noexcept {
    value_ = seeded_ ? alpha_ * x + (1.0 - alpha_) * value_ : x;
    seeded_ = true;
  }
  bool seeded() const noexcept { return seeded_; }
  double value() const noexcept { return value_; }
  void reset() noexcept { seeded_ = false; value_ = 0.0; }

 private:
  double alpha_;
  double value_ = 0.0;
  bool seeded_ = false;
};

/// Rise-then-fall phase-change detector over a scalar series.
///
/// This is the paper's "dynamic initiation" trigger: watch the per-superstep
/// sent-message count; once the series has shown an increase followed by a
/// decrease (i.e. the frontier peak of the current swath has passed), fire.
/// Hysteresis: a relative tolerance suppresses jitter around the peak.
class PeakDetector {
 public:
  /// `tolerance` is the minimum relative change treated as a real move
  /// (e.g. 0.05 = 5%); smaller wiggles are ignored.
  explicit PeakDetector(double tolerance = 0.05) noexcept : tol_(tolerance) {}

  /// Feed the next observation; returns true exactly once per detected peak
  /// (an observed rise followed by an observed fall).
  bool add(double x) noexcept;

  /// Forget rise/fall state (e.g. when a new swath is initiated).
  void reset() noexcept;

  bool rising_seen() const noexcept { return rise_seen_; }

 private:
  double tol_;
  double prev_ = 0.0;
  bool has_prev_ = false;
  bool rise_seen_ = false;
};

}  // namespace pregel
