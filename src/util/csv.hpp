// CSV emission for experiment results. Every bench writes its series both as
// a human-readable console table and as CSV rows suitable for replotting.
#pragma once

#include <cstdint>
#include <initializer_list>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pregel {

/// Row-at-a-time CSV writer with RFC-4180 quoting.
class CsvWriter {
 public:
  /// Writes to an externally owned stream; the stream must outlive the writer.
  explicit CsvWriter(std::ostream& out) : out_(&out) {}

  CsvWriter& header(std::initializer_list<std::string_view> cols);

  /// Begin a row; then chain field() calls; end_row() finishes the line.
  CsvWriter& field(std::string_view v);
  CsvWriter& field(double v);
  CsvWriter& field(std::uint64_t v);
  CsvWriter& field(std::int64_t v);
  CsvWriter& field(int v) { return field(static_cast<std::int64_t>(v)); }
  CsvWriter& end_row();

  std::size_t rows_written() const noexcept { return rows_; }

 private:
  void sep();
  static std::string escape(std::string_view v);

  std::ostream* out_;
  bool row_open_ = false;
  std::size_t rows_ = 0;
};

/// Console-friendly fixed-width table: collects rows, prints aligned.
class TextTable {
 public:
  explicit TextTable(std::vector<std::string> headers);

  void add_row(std::vector<std::string> cells);
  /// Render with column alignment; numeric-looking cells right-align.
  std::string to_string() const;
  void print(std::ostream& out) const;

  std::size_t row_count() const noexcept { return rows_.size(); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

/// Format helper: fixed-decimals double to string (bench tables).
std::string fmt(double v, int decimals = 2);

}  // namespace pregel
