// Fixed-bin and log-scale histograms for degree distributions and
// per-superstep resource profiles.
#pragma once

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

namespace pregel {

/// Linear-bin histogram over [lo, hi); out-of-range samples clamp into the
/// first/last bin so totals are preserved.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);

  void add(double x, std::uint64_t weight = 1);
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  double bin_lo(std::size_t i) const;
  double bin_hi(std::size_t i) const;

  /// Smallest x such that at least `fraction` of the mass lies at or below x
  /// (bin upper edge granularity). This is how the 90% effective diameter is
  /// read off a BFS-distance histogram.
  double quantile_upper_edge(double fraction) const;

 private:
  double lo_, hi_, width_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

/// Power-of-two log-bin histogram for heavy-tailed data (vertex degrees).
class Log2Histogram {
 public:
  void add(std::uint64_t x, std::uint64_t weight = 1);
  std::uint64_t total() const noexcept { return total_; }
  std::size_t bin_count() const noexcept { return counts_.size(); }
  std::uint64_t bin(std::size_t i) const { return counts_.at(i); }
  /// Bin i covers [2^i - 1 ... ): bin 0 holds x==0 and x==1, bin i holds
  /// x in [2^(i-1)+1, 2^i] for i>=1. Simpler: bin index = bit_width(x).
  static std::size_t bin_index(std::uint64_t x) noexcept;
  std::string to_string(std::size_t max_width = 50) const;

 private:
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
};

}  // namespace pregel
