#include "util/stats.hpp"

#include <algorithm>
#include <cmath>

namespace pregel {

double median_of(std::vector<double> samples) noexcept {
  if (samples.empty()) return 0.0;
  const std::size_t mid = samples.size() / 2;
  std::nth_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid),
                   samples.end());
  double median = samples[mid];
  if (samples.size() % 2 == 0) {
    const double lower =
        *std::max_element(samples.begin(), samples.begin() + static_cast<std::ptrdiff_t>(mid));
    median = lower + (median - lower) / 2.0;
  }
  return median;
}

void RunningStats::add(double x) noexcept {
  ++n_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
  min_ = std::min(min_, x);
  max_ = std::max(max_, x);
}

void RunningStats::merge(const RunningStats& other) noexcept {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double na = static_cast<double>(n_);
  const double nb = static_cast<double>(other.n_);
  const double delta = other.mean_ - mean_;
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  sum_ += other.sum_;
  n_ += other.n_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double RunningStats::variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_) : 0.0;
}

double RunningStats::sample_variance() const noexcept {
  return n_ >= 2 ? m2_ / static_cast<double>(n_ - 1) : 0.0;
}

double RunningStats::stddev() const noexcept { return std::sqrt(variance()); }

double RunningStats::imbalance() const noexcept {
  if (n_ == 0 || mean_ <= 0.0) return 1.0;
  return max_ / mean_;
}

double Percentiles::quantile(double q) {
  if (samples_.empty()) return 0.0;
  if (!sorted_) {
    std::sort(samples_.begin(), samples_.end());
    sorted_ = true;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double pos = q * static_cast<double>(samples_.size() - 1);
  const auto lo = static_cast<std::size_t>(pos);
  const std::size_t hi = std::min(lo + 1, samples_.size() - 1);
  const double frac = pos - static_cast<double>(lo);
  return samples_[lo] * (1.0 - frac) + samples_[hi] * frac;
}

bool PeakDetector::add(double x) noexcept {
  if (!has_prev_) {
    prev_ = x;
    has_prev_ = true;
    return false;
  }
  const double base = std::max(std::abs(prev_), 1.0);
  const double rel = (x - prev_) / base;
  if (rel > tol_) {
    rise_seen_ = true;
  } else if (rel < -tol_ && rise_seen_) {
    prev_ = x;
    rise_seen_ = false;  // one firing per peak
    return true;
  }
  prev_ = x;
  return false;
}

void PeakDetector::reset() noexcept {
  has_prev_ = false;
  rise_seen_ = false;
  prev_ = 0.0;
}

}  // namespace pregel
