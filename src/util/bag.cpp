#include "util/bag.hpp"

#include <algorithm>
#include <utility>

#include "util/check.hpp"

namespace pregel {

Bag::Bag(std::uint32_t grain) : grain_(std::max(grain, 1u)) {}

std::vector<Bag::Item>& Bag::back_leaf() {
  if (leaves_used_ == 0 || leaves_[leaves_used_ - 1].size() >= grain_) {
    if (leaves_used_ == leaves_.size()) leaves_.emplace_back();
    leaves_[leaves_used_].clear();
    leaves_[leaves_used_].reserve(grain_);
    ++leaves_used_;
  }
  return leaves_[leaves_used_ - 1];
}

void Bag::push(Item x) {
  back_leaf().push_back(x);
  ++size_;
}

void Bag::assign(std::span<const Item> items) {
  clear();
  std::size_t at = 0;
  while (at < items.size()) {
    const std::size_t take = std::min<std::size_t>(grain_, items.size() - at);
    std::vector<Item>& leaf = back_leaf();
    leaf.assign(items.begin() + static_cast<std::ptrdiff_t>(at),
                items.begin() + static_cast<std::ptrdiff_t>(at + take));
    at += take;
    size_ += take;
  }
}

void Bag::clear() {
  for (std::size_t i = 0; i < leaves_used_; ++i) leaves_[i].clear();
  leaves_used_ = 0;
  size_ = 0;
}

void Bag::merge(Bag&& other) {
  PREGEL_CHECK_MSG(other.grain_ == grain_, "Bag::merge: grain mismatch");
  if (other.size_ == 0) {
    other.clear();
    return;
  }
  // Splice other's live leaves after ours. A partial back leaf stays partial
  // mid-sequence — leaves may then be under-full, which costs nothing for
  // enumeration and keeps the splice O(leaves) pointer moves with no item
  // copies (the pennant "binary addition" never has to touch payloads).
  for (std::size_t i = 0; i < other.leaves_used_; ++i) {
    if (leaves_used_ == leaves_.size())
      leaves_.push_back(std::move(other.leaves_[i]));
    else
      leaves_[leaves_used_] = std::move(other.leaves_[i]);
    ++leaves_used_;
  }
  size_ += other.size_;
  other.leaves_.clear();
  other.leaves_used_ = 0;
  other.size_ = 0;
}

Bag Bag::split() {
  Bag out(grain_);
  if (leaves_used_ <= 1) return out;  // nothing splittable below one leaf
  const std::size_t take = leaves_used_ / 2;
  out.leaves_.reserve(take);
  std::size_t moved = 0;
  for (std::size_t i = 0; i < take; ++i) {
    moved += leaves_[i].size();
    out.leaves_.push_back(std::move(leaves_[i]));
  }
  out.leaves_used_ = take;
  out.size_ = moved;
  // Compact the survivors to the front, returning the vacated slots to the
  // pool tail so later fills reuse their capacity.
  std::rotate(leaves_.begin(), leaves_.begin() + static_cast<std::ptrdiff_t>(take),
              leaves_.end());
  leaves_used_ -= take;
  size_ -= moved;
  return out;
}

std::span<const Bag::Item> Bag::leaf(std::size_t i) const {
  PREGEL_DCHECK(i < leaves_used_);
  return std::span<const Item>(leaves_[i]);
}

std::vector<std::uint32_t> Bag::pennant_ranks() const {
  // Binary decomposition of the full-leaf count; a trailing partial leaf is
  // the hopper and belongs to no pennant.
  std::size_t full = leaves_used_;
  if (full > 0 && leaves_[full - 1].size() < grain_) --full;
  std::vector<std::uint32_t> ranks;
  for (int k = 63; k >= 0; --k)
    if (full & (std::size_t{1} << k)) ranks.push_back(static_cast<std::uint32_t>(k));
  return ranks;
}

}  // namespace pregel
