// Minimal leveled logger. The simulator is deterministic and single-process,
// so the logger is deliberately simple: a global level, stderr sink, printf
// formatting avoided in favor of streams.
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace pregel {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

/// Global log threshold; messages below it are discarded.
LogLevel log_level() noexcept;
void set_log_level(LogLevel level) noexcept;

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view message);

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view component) : level_(level), component_(component) {}
  LogLine(const LogLine&) = delete;
  LogLine& operator=(const LogLine&) = delete;
  ~LogLine() { log_emit(level_, component_, os_.str()); }

  template <typename T>
  LogLine& operator<<(const T& v) {
    os_ << v;
    return *this;
  }

 private:
  LogLevel level_;
  std::string_view component_;
  std::ostringstream os_;
};

struct NullLine {
  template <typename T>
  NullLine& operator<<(const T&) {
    return *this;
  }
};
}  // namespace detail

/// Usage: pregel::log_info("engine") << "superstep " << s << " done";
inline detail::LogLine log_debug(std::string_view c) { return {LogLevel::kDebug, c}; }
inline detail::LogLine log_info(std::string_view c) { return {LogLevel::kInfo, c}; }
inline detail::LogLine log_warn(std::string_view c) { return {LogLevel::kWarn, c}; }
inline detail::LogLine log_error(std::string_view c) { return {LogLevel::kError, c}; }

}  // namespace pregel
