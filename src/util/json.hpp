// Minimal streaming JSON writer.
//
// The observability layer exports two machine-readable artifacts — Chrome
// trace-event files and bench-report JSON — and hand-rolled string pasting
// is exactly how such exporters end up emitting unparseable output (missing
// commas, unescaped quotes, NaNs). This writer owns the syntax: callers
// only state structure (objects/arrays/keys/values) and the writer
// guarantees the result is well-formed JSON. No reading, no DOM — the repo
// only ever *emits* JSON.
#pragma once

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

namespace pregel {

/// Escape a string for inclusion inside a JSON string literal (quotes not
/// included): ", \, control characters.
std::string json_escape(std::string_view s);

/// Structural JSON emitter with automatic comma placement. Usage:
///   JsonWriter w(out);
///   w.begin_object();
///   w.key("name").value("pagerank");
///   w.key("samples").begin_array();
///   w.value(1.5); w.value(2.5);
///   w.end_array();
///   w.end_object();
/// Misnested begin/end pairs are the caller's bug; the writer keeps comma
/// and quoting correctness for any properly nested sequence.
class JsonWriter {
 public:
  explicit JsonWriter(std::ostream& out) : out_(out) {}

  JsonWriter& begin_object();
  JsonWriter& end_object();
  JsonWriter& begin_array();
  JsonWriter& end_array();

  JsonWriter& key(std::string_view k);

  JsonWriter& value(std::string_view v);
  JsonWriter& value(const char* v) { return value(std::string_view(v)); }
  JsonWriter& value(bool v);
  JsonWriter& value(double v);  ///< non-finite values are emitted as null
  JsonWriter& value(std::uint64_t v);
  JsonWriter& value(std::int64_t v);
  JsonWriter& value(int v) { return value(static_cast<std::int64_t>(v)); }
  /// Splice a pre-rendered JSON fragment (assumed well-formed) as a value.
  JsonWriter& raw(std::string_view fragment);

 private:
  void separator();  ///< comma bookkeeping before any value/begin/key

  std::ostream& out_;
  std::vector<bool> first_in_scope_;  ///< per open scope: nothing emitted yet
  bool after_key_ = false;
};

}  // namespace pregel
