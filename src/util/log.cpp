#include "util/log.hpp"

#include <atomic>

namespace pregel {

namespace {
std::atomic<LogLevel> g_level{LogLevel::kWarn};

const char* level_name(LogLevel l) {
  switch (l) {
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?????";
}
}  // namespace

LogLevel log_level() noexcept { return g_level.load(std::memory_order_relaxed); }
void set_log_level(LogLevel level) noexcept { g_level.store(level, std::memory_order_relaxed); }

namespace detail {
void log_emit(LogLevel level, std::string_view component, std::string_view message) {
  if (level < log_level()) return;
  std::clog << '[' << level_name(level) << "] [" << component << "] " << message << '\n';
}
}  // namespace detail

}  // namespace pregel
