#include "util/rng.hpp"

#include <cmath>
#include <numbers>

namespace pregel {

std::uint64_t Xoshiro256::next_below(std::uint64_t bound) noexcept {
  if (bound == 0) return 0;
  // Lemire's nearly-divisionless unbiased bounded generation.
  std::uint64_t x = next();
  __uint128_t m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
  auto lo = static_cast<std::uint64_t>(m);
  if (lo < bound) {
    const std::uint64_t threshold = (0 - bound) % bound;
    while (lo < threshold) {
      x = next();
      m = static_cast<__uint128_t>(x) * static_cast<__uint128_t>(bound);
      lo = static_cast<std::uint64_t>(m);
    }
  }
  return static_cast<std::uint64_t>(m >> 64);
}

double Xoshiro256::next_gaussian() noexcept {
  // Box-Muller; u1 is kept away from 0 so log() stays finite.
  double u1 = next_double();
  if (u1 < 1e-300) u1 = 1e-300;
  const double u2 = next_double();
  return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * std::numbers::pi * u2);
}

double Xoshiro256::next_exponential(double rate) noexcept {
  double u = next_double();
  if (u < 1e-300) u = 1e-300;
  return -std::log(u) / rate;
}

}  // namespace pregel
