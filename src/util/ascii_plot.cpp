#include "util/ascii_plot.hpp"

#include <algorithm>
#include <cmath>
#include <cstdio>
#include <limits>

namespace pregel {

namespace {
constexpr const char kGlyphs[] = "*o+x#@%&";

std::string y_label(double v) {
  char buf[32];
  if (std::fabs(v) >= 1e6 || (std::fabs(v) < 1e-2 && v != 0.0)) {
    std::snprintf(buf, sizeof buf, "%9.2e", v);
  } else {
    std::snprintf(buf, sizeof buf, "%9.2f", v);
  }
  return buf;
}
}  // namespace

std::string ascii_line_chart(const std::vector<Series>& series, std::size_t width,
                             std::size_t height, const std::string& title) {
  std::string out;
  if (!title.empty()) out += title + "\n";
  std::size_t n = 0;
  double lo = std::numeric_limits<double>::infinity();
  double hi = -std::numeric_limits<double>::infinity();
  for (const auto& s : series) {
    n = std::max(n, s.values.size());
    for (double v : s.values) {
      lo = std::min(lo, v);
      hi = std::max(hi, v);
    }
  }
  if (n == 0 || !(hi >= lo)) return out + "(no data)\n";
  if (hi == lo) hi = lo + 1.0;

  const std::size_t plot_w = std::max<std::size_t>(width, 10);
  std::vector<std::string> grid(height, std::string(plot_w, ' '));

  for (std::size_t si = 0; si < series.size(); ++si) {
    const char glyph = kGlyphs[si % (sizeof(kGlyphs) - 1)];
    const auto& vals = series[si].values;
    for (std::size_t i = 0; i < vals.size(); ++i) {
      const std::size_t col =
          n <= 1 ? 0
                 : static_cast<std::size_t>(std::llround(static_cast<double>(i) /
                                                         static_cast<double>(n - 1) *
                                                         static_cast<double>(plot_w - 1)));
      const double frac = (vals[i] - lo) / (hi - lo);
      const auto row_from_bottom = static_cast<std::size_t>(
          std::llround(frac * static_cast<double>(height - 1)));
      const std::size_t row = height - 1 - std::min(row_from_bottom, height - 1);
      grid[row][col] = glyph;
    }
  }

  for (std::size_t r = 0; r < height; ++r) {
    const double y =
        hi - (hi - lo) * static_cast<double>(r) / static_cast<double>(height - 1);
    out += y_label(y) + " |" + grid[r] + "\n";
  }
  out += std::string(10, ' ') + "+" + std::string(plot_w, '-') + "\n";
  char xaxis[64];
  std::snprintf(xaxis, sizeof xaxis, "%10s x: 0 .. %zu", "", n - 1);
  out += std::string(xaxis) + "\n";
  out += "  legend:";
  for (std::size_t si = 0; si < series.size(); ++si) {
    out += "  ";
    out.push_back(kGlyphs[si % (sizeof(kGlyphs) - 1)]);
    out += "=" + series[si].name;
  }
  out += "\n";
  return out;
}

std::string ascii_bar_chart(const std::vector<std::pair<std::string, double>>& bars,
                            std::size_t width, const std::string& title, double baseline) {
  std::string out;
  if (!title.empty()) out += title + "\n";
  if (bars.empty()) return out + "(no data)\n";
  double hi = baseline;
  std::size_t label_w = 0;
  for (const auto& [name, v] : bars) {
    hi = std::max(hi, v);
    label_w = std::max(label_w, name.size());
  }
  if (hi <= 0.0) hi = 1.0;
  const std::size_t base_col =
      baseline > 0.0 ? static_cast<std::size_t>(baseline / hi * static_cast<double>(width))
                     : 0;
  for (const auto& [name, v] : bars) {
    std::string line = name;
    line.append(label_w - name.size() + 1, ' ');
    line += "|";
    const auto len = static_cast<std::size_t>(std::max(0.0, v) / hi *
                                              static_cast<double>(width));
    std::string bar(len, '=');
    if (baseline > 0.0 && base_col < width) {
      if (bar.size() <= base_col) bar.append(base_col - bar.size() + 1, ' ');
      bar[base_col] = '|';
    }
    char val[32];
    std::snprintf(val, sizeof val, " %.3f", v);
    out += line + bar + val + "\n";
  }
  return out;
}

}  // namespace pregel
