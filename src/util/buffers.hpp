// Capacity policy for per-vertex buffers that are filled and drained every
// superstep (inbox message vectors, their combiner source-tag mirrors, and
// staged outbox rows).
//
// One threshold, applied identically to every such buffer: after a drain,
// capacity above kDrainShrinkElements is released to the allocator, anything
// smaller stays cached for the next superstep. Paired buffers (a message box
// and the source-tag vector mirroring it entry-for-entry) therefore shrink
// in lockstep, so the modeled resident bytes the memory governor reads and
// the real capacities underneath them cannot drift apart buffer by buffer.
#pragma once

#include <cstddef>

namespace pregel {

/// Buffers at or below this many elements keep their capacity across
/// supersteps; larger ones are released after each drain. Reallocating every
/// small box every superstep is pure churn for the common small-frontier
/// case, while a burst-sized buffer held forever is a leak the governor's
/// accounting never sees.
inline constexpr std::size_t kDrainShrinkElements = 64;

/// Drain `v` under the shared policy: clear, then release outsized capacity.
template <class Vec>
inline void shrink_after_drain(Vec& v) {
  v.clear();
  if (v.capacity() > kDrainShrinkElements) v.shrink_to_fit();
}

}  // namespace pregel
