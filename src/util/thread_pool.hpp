// Persistent fork-join worker pool for superstep execution.
//
// The engine keeps one pool alive across supersteps and issues two barriers
// per superstep (compute, then merge), so the pool is built for cheap
// repeated dispatch rather than general task scheduling: one mutex, one
// epoch counter, and — depending on the job — either an atomic index that
// workers race on (parallel_for) or per-lane queues with work stealing
// (parallel_steal). Work distribution is dynamic in both modes, which is
// safe for the engine's determinism contract because each item owns a
// disjoint slice of state — *what* runs where never affects results, only
// wall-clock time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <exception>
#include <functional>
#include <memory>
#include <mutex>
#include <thread>
#include <vector>

namespace pregel {

class ThreadPool {
 public:
  /// Host-scheduling observability from one parallel_steal barrier. Steal
  /// counts are wall-clock artifacts of the OS scheduler: two runs of the
  /// same job may steal differently, so these must never feed modeled
  /// metrics that the bit-identity contract compares.
  struct StealOutcome {
    std::uint64_t steals = 0;        ///< transfer events (victim -> thief)
    std::uint64_t stolen_items = 0;  ///< items moved across all transfers
  };

  /// `workers` total execution lanes, including the caller's thread during
  /// parallel_for/parallel_steal; workers - 1 OS threads are spawned.
  /// Clamped to >= 1.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return workers_; }

  /// std::thread::hardware_concurrency with the unknown (0) case mapped to 1.
  static unsigned hardware_threads() noexcept;

  /// Run body(i) for every i in [0, n); the calling thread participates and
  /// the call returns only after every index completed. The first exception
  /// thrown by any body is rethrown here after the barrier; later ones are
  /// counted in suppressed_exceptions() and logged, never silently dropped.
  /// Not reentrant: body must not call back into the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

  /// Work-stealing barrier: queues[l] seeds lane l's deque (queues.size()
  /// must equal size(); lane 0 is the caller). Each lane drains its own
  /// queue front-to-back; a lane that runs dry steals the back half of the
  /// fullest remaining queue instead of idling at the barrier. Every item
  /// runs exactly once; exceptions behave as in parallel_for. Returns how
  /// much stealing the OS schedule induced this barrier.
  StealOutcome parallel_steal(std::vector<std::vector<std::size_t>> queues,
                              const std::function<void(std::size_t)>& body);

  /// Exceptions swallowed after the first one of a barrier, cumulative over
  /// the pool's lifetime. A nonzero delta across a superstep means compute
  /// failed on more than one lane and only the first failure propagated.
  std::uint64_t suppressed_exceptions() const noexcept {
    return suppressed_.load(std::memory_order_relaxed);
  }

 private:
  /// One work-stealing lane: its deque of pending items, guarded by its own
  /// mutex so thieves can inspect and split it without stopping the pool.
  struct Lane {
    std::mutex m;
    std::deque<std::size_t> q;
  };

  void worker_loop(std::size_t lane);
  /// Grab-and-run indices until the current parallel_for job is exhausted.
  void run_indices();
  /// Drain lane `lane`'s queue, stealing from the fullest victim when dry,
  /// until every item of the current parallel_steal job has completed.
  void run_steal(std::size_t lane);
  void record_exception();
  /// Epoch hygiene (checked after every barrier): a stale body pointer or a
  /// lane still marked busy here would let the *next* superstep observe this
  /// one's job. The bugfix this pins: the pool must hand back a clean epoch
  /// even when bodies threw on several lanes at once.
  void finish_barrier_locked();

  unsigned workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_, done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mutex_
  std::size_t n_ = 0;                                       // guarded by mutex_
  bool stealing_ = false;  ///< current epoch's mode; guarded by mutex_
  std::atomic<std::size_t> next_{0};
  std::size_t finished_ = 0;   ///< workers done with the current epoch
  std::uint64_t epoch_ = 0;    ///< bumped per job; workers wait on a change
  bool stop_ = false;
  std::exception_ptr error_;   // guarded by mutex_; first failure wins
  std::atomic<std::uint64_t> suppressed_{0};

  // -- parallel_steal state --------------------------------------------------
  std::vector<std::unique_ptr<Lane>> lanes_;  ///< sized workers_ at build
  std::atomic<std::size_t> remaining_{0};     ///< items not yet completed
  std::atomic<std::uint64_t> steals_{0};
  std::atomic<std::uint64_t> stolen_items_{0};
};

}  // namespace pregel
