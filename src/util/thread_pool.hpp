// Persistent fork-join worker pool for superstep execution.
//
// The engine keeps one pool alive across supersteps and issues two
// parallel_for barriers per superstep (compute, then merge), so the pool is
// built for cheap repeated dispatch rather than general task scheduling:
// one mutex, one epoch counter, and an atomic index that workers race on.
// Work distribution is dynamic (whichever thread is free grabs the next
// index), which is safe for the engine's determinism contract because each
// index owns a disjoint slice of state — *what* runs where never affects
// results, only wall-clock time.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace pregel {

class ThreadPool {
 public:
  /// `workers` total execution lanes, including the caller's thread during
  /// parallel_for; workers - 1 OS threads are spawned. Clamped to >= 1.
  explicit ThreadPool(unsigned workers);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  unsigned size() const noexcept { return workers_; }

  /// std::thread::hardware_concurrency with the unknown (0) case mapped to 1.
  static unsigned hardware_threads() noexcept;

  /// Run body(i) for every i in [0, n); the calling thread participates and
  /// the call returns only after every index completed. The first exception
  /// thrown by any body is rethrown here after the barrier. Not reentrant:
  /// body must not call parallel_for on the same pool.
  void parallel_for(std::size_t n, const std::function<void(std::size_t)>& body);

 private:
  void worker_loop();
  /// Grab-and-run indices until the current job is exhausted.
  void run_indices();

  unsigned workers_;
  std::vector<std::thread> threads_;

  std::mutex mutex_;
  std::condition_variable start_cv_, done_cv_;
  const std::function<void(std::size_t)>* body_ = nullptr;  // guarded by mutex_
  std::size_t n_ = 0;                                       // guarded by mutex_
  std::atomic<std::size_t> next_{0};
  std::size_t finished_ = 0;   ///< workers done with the current epoch
  std::uint64_t epoch_ = 0;    ///< bumped per job; workers wait on a change
  bool stop_ = false;
  std::exception_ptr error_;   // guarded by mutex_; first failure wins
};

}  // namespace pregel
