#include "util/thread_pool.hpp"

#include <algorithm>

namespace pregel {

ThreadPool::ThreadPool(unsigned workers) : workers_(std::max(workers, 1u)) {
  threads_.reserve(workers_ - 1);
  for (unsigned i = 0; i + 1 < workers_; ++i)
    threads_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    body_ = &body;
    n_ = n;
    next_.store(0, std::memory_order_relaxed);
    finished_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  run_indices();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return finished_ == threads_.size(); });
  body_ = nullptr;
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

void ThreadPool::worker_loop() {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    lock.unlock();
    run_indices();
    lock.lock();
    if (++finished_ == threads_.size()) done_cv_.notify_one();
  }
}

void ThreadPool::run_indices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(mutex_);
      if (!error_) error_ = std::current_exception();
    }
  }
}

}  // namespace pregel
