#include "util/thread_pool.hpp"

#include <algorithm>

#include "util/check.hpp"
#include "util/log.hpp"

namespace pregel {

ThreadPool::ThreadPool(unsigned workers) : workers_(std::max(workers, 1u)) {
  lanes_.reserve(workers_);
  for (unsigned i = 0; i < workers_; ++i) lanes_.push_back(std::make_unique<Lane>());
  threads_.reserve(workers_ - 1);
  // Lane 0 belongs to the caller; spawned thread i owns lane i + 1.
  for (unsigned i = 0; i + 1 < workers_; ++i)
    threads_.emplace_back([this, i] { worker_loop(i + 1); });
}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(mutex_);
    stop_ = true;
  }
  start_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

unsigned ThreadPool::hardware_threads() noexcept {
  const unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : n;
}

void ThreadPool::parallel_for(std::size_t n, const std::function<void(std::size_t)>& body) {
  if (n == 0) return;
  if (threads_.empty() || n == 1) {
    for (std::size_t i = 0; i < n; ++i) body(i);
    return;
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    PREGEL_CHECK_MSG(body_ == nullptr, "ThreadPool: barrier entered with a stale job");
    body_ = &body;
    n_ = n;
    stealing_ = false;
    next_.store(0, std::memory_order_relaxed);
    finished_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  run_indices();

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return finished_ == threads_.size(); });
  finish_barrier_locked();
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
}

ThreadPool::StealOutcome ThreadPool::parallel_steal(
    std::vector<std::vector<std::size_t>> queues,
    const std::function<void(std::size_t)>& body) {
  PREGEL_CHECK_MSG(queues.size() == workers_,
                   "ThreadPool::parallel_steal: need one queue per lane");
  std::size_t total = 0;
  for (const auto& q : queues) total += q.size();
  if (total == 0) return {};
  if (threads_.empty()) {
    for (const auto& q : queues)
      for (const std::size_t item : q) body(item);
    return {};
  }

  {
    std::lock_guard<std::mutex> lock(mutex_);
    PREGEL_CHECK_MSG(body_ == nullptr, "ThreadPool: barrier entered with a stale job");
    for (std::size_t l = 0; l < lanes_.size(); ++l) {
      // No lane lock needed: every worker is parked between epochs.
      PREGEL_DCHECK(lanes_[l]->q.empty());
      lanes_[l]->q.assign(queues[l].begin(), queues[l].end());
    }
    body_ = &body;
    n_ = total;
    stealing_ = true;
    remaining_.store(total, std::memory_order_relaxed);
    steals_.store(0, std::memory_order_relaxed);
    stolen_items_.store(0, std::memory_order_relaxed);
    finished_ = 0;
    error_ = nullptr;
    ++epoch_;
  }
  start_cv_.notify_all();

  run_steal(0);

  std::unique_lock<std::mutex> lock(mutex_);
  done_cv_.wait(lock, [this] { return finished_ == threads_.size(); });
  finish_barrier_locked();
  if (error_) {
    std::exception_ptr e = error_;
    error_ = nullptr;
    lock.unlock();
    std::rethrow_exception(e);
  }
  return {steals_.load(std::memory_order_relaxed),
          stolen_items_.load(std::memory_order_relaxed)};
}

void ThreadPool::finish_barrier_locked() {
  // Clean-epoch invariants: every worker has retired from this job, and no
  // job state leaks into the next barrier. With parallel_steal, a body that
  // threw must still have decremented remaining_, or these would trip.
  PREGEL_CHECK_MSG(finished_ == threads_.size(),
                   "ThreadPool: barrier exited with workers still busy");
  if (stealing_) {
    PREGEL_CHECK_MSG(remaining_.load(std::memory_order_relaxed) == 0,
                     "ThreadPool: steal barrier exited with items pending");
    for (const auto& lane : lanes_) PREGEL_CHECK_MSG(lane->q.empty(),
                                                     "ThreadPool: lane queue not drained");
  }
  body_ = nullptr;
  n_ = 0;
  stealing_ = false;
}

void ThreadPool::worker_loop(std::size_t lane) {
  std::uint64_t seen = 0;
  std::unique_lock<std::mutex> lock(mutex_);
  for (;;) {
    start_cv_.wait(lock, [&] { return stop_ || epoch_ != seen; });
    if (stop_) return;
    seen = epoch_;
    const bool stealing = stealing_;
    lock.unlock();
    if (stealing)
      run_steal(lane);
    else
      run_indices();
    lock.lock();
    if (++finished_ == threads_.size()) done_cv_.notify_one();
  }
}

void ThreadPool::record_exception() {
  std::lock_guard<std::mutex> lock(mutex_);
  if (!error_) {
    error_ = std::current_exception();
    return;
  }
  // A second lane failed while the first exception was already queued for
  // rethrow. Dropping it silently would hide a multi-lane failure mid-
  // superstep; count it and say so.
  suppressed_.fetch_add(1, std::memory_order_relaxed);
  try {
    std::rethrow_exception(std::current_exception());
  } catch (const std::exception& e) {
    log_warn("thread_pool") << "suppressed secondary exception from parallel body: "
                            << e.what();
  } catch (...) {
    log_warn("thread_pool") << "suppressed secondary non-std exception from parallel body";
  }
}

void ThreadPool::run_indices() {
  for (;;) {
    const std::size_t i = next_.fetch_add(1, std::memory_order_relaxed);
    if (i >= n_) return;
    try {
      (*body_)(i);
    } catch (...) {
      record_exception();
    }
  }
}

void ThreadPool::run_steal(std::size_t lane) {
  Lane& own = *lanes_[lane];
  for (;;) {
    std::size_t item = 0;
    bool got = false;
    {
      std::lock_guard<std::mutex> lock(own.m);
      if (!own.q.empty()) {
        item = own.q.front();
        own.q.pop_front();
        got = true;
      }
    }
    if (!got) {
      if (remaining_.load(std::memory_order_acquire) == 0) return;
      // Own queue dry: steal the back half of the fullest victim. Taking
      // from the back leaves the victim its front (the items it is about to
      // touch) and keeps each moved run in its original relative order.
      std::size_t best = lanes_.size(), best_n = 0;
      for (std::size_t j = 0; j < lanes_.size(); ++j) {
        if (j == lane) continue;
        std::lock_guard<std::mutex> lock(lanes_[j]->m);
        if (lanes_[j]->q.size() > best_n) {
          best_n = lanes_[j]->q.size();
          best = j;
        }
      }
      if (best == lanes_.size()) {
        // Everything is claimed but not finished; wait for stragglers.
        std::this_thread::yield();
        continue;
      }
      std::size_t took = 0;
      {
        Lane& victim = *lanes_[best];
        std::scoped_lock lock(own.m, victim.m);
        const std::size_t take = (victim.q.size() + 1) / 2;
        for (std::size_t k = victim.q.size() - take; k < victim.q.size(); ++k)
          own.q.push_back(victim.q[k]);
        victim.q.resize(victim.q.size() - take);
        took = take;
      }
      if (took > 0) {
        steals_.fetch_add(1, std::memory_order_relaxed);
        stolen_items_.fetch_add(took, std::memory_order_relaxed);
      }
      continue;
    }
    try {
      (*body_)(item);
    } catch (...) {
      record_exception();
    }
    // Decrement even on failure, or the barrier would never drain.
    remaining_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

}  // namespace pregel
