// Splittable bag frontier (PBFS-style pennant forest, Leiserson & Schardl).
//
// A Bag holds an ordered multiset of 32-bit items in fixed-capacity leaf
// chunks — the cache-friendly unit a work-stealing scheduler hands out. The
// pennant forest is kept as the binary decomposition of the leaf sequence:
// pennant k is a contiguous run of 2^k full leaves, so the forest never
// reorders items. That ordering guarantee is what the engine's determinism
// contract leans on: enumerating leaves left to right always replays the
// exact insertion order, no matter how the bag was merged or split.
//
// Complexity: push is amortized O(1) (one leaf append, occasional carry
// bookkeeping); merge is O(log n) pennant restructuring plus a leaf-pointer
// splice; split is O(log n), peeling the largest pennants off the front.
#pragma once

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

namespace pregel {

class Bag {
 public:
  using Item = std::uint32_t;

  /// Leaf capacity: the work-stealing grain. 256 items keeps a leaf within
  /// a few cache lines of frontier indices while giving a skewed partition
  /// enough chunks to spread across every lane.
  static constexpr std::uint32_t kDefaultGrain = 256;

  explicit Bag(std::uint32_t grain = kDefaultGrain);

  std::uint32_t grain() const noexcept { return grain_; }
  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }

  /// Append one item after every current item (amortized O(1)).
  void push(Item x);

  /// Bulk-build from a span, preserving order. Reuses leaf capacity from a
  /// previous fill — the engine rebuilds its frontier bags every superstep
  /// and must not reallocate every leaf every time.
  void assign(std::span<const Item> items);

  /// Remove all items but keep the leaf storage pooled for the next fill.
  void clear();

  /// Splice `other`'s items after this bag's items. O(log n) pennant
  /// restructure + a leaf-vector splice; `other` is left empty.
  void merge(Bag&& other);

  /// Remove roughly the first half of the leaves (the largest pennants) into
  /// a new bag, preserving order in both halves. The classic PBFS split a
  /// thief uses to take work; O(log n) leaf-pointer moves.
  Bag split();

  /// Leaves in deterministic (insertion) order. Every leaf except possibly
  /// the last holds exactly grain() items.
  std::size_t num_leaves() const noexcept { return leaves_used_; }
  std::span<const Item> leaf(std::size_t i) const;

  /// Ranks of the pennants composing this bag, largest first — the binary
  /// decomposition of the full-leaf count. Exposed for tests and stats.
  std::vector<std::uint32_t> pennant_ranks() const;

 private:
  std::vector<Item>& back_leaf();

  std::uint32_t grain_;
  std::size_t size_ = 0;
  /// Leaf chunks in item order. `leaves_used_` of them are live; the tail
  /// beyond that is pooled capacity from earlier fills.
  std::vector<std::vector<Item>> leaves_;
  std::size_t leaves_used_ = 0;
};

}  // namespace pregel
