// Deterministic pseudo-random number generation.
//
// Every stochastic component of the simulator (graph generators, hash
// partitioners, multi-tenancy jitter) draws from one of these engines with an
// explicit seed, so that every experiment is bit-reproducible across runs and
// platforms. We provide SplitMix64 (seed expansion / hashing) and
// Xoshiro256** (bulk generation), both public-domain algorithms by
// Blackman & Vigna.
#pragma once

#include <cstdint>
#include <limits>

namespace pregel {

/// SplitMix64: tiny, fast, passes BigCrush; ideal for seed expansion and as a
/// mixing/finalization hash for integer keys.
class SplitMix64 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit SplitMix64(std::uint64_t seed) noexcept : state_(seed) {}

  constexpr std::uint64_t next() noexcept {
    std::uint64_t z = (state_ += 0x9E3779B97F4A7C15ULL);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  std::uint64_t state_;
};

/// Stateless avalanche mix of a 64-bit key (the SplitMix64 finalizer).
/// Used wherever we need a high-quality hash of a vertex id.
constexpr std::uint64_t mix64(std::uint64_t x) noexcept {
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
  return x ^ (x >> 31);
}

/// Xoshiro256**: the workhorse generator for bulk random draws.
class Xoshiro256 {
 public:
  using result_type = std::uint64_t;

  constexpr explicit Xoshiro256(std::uint64_t seed) noexcept : s_{} {
    SplitMix64 sm(seed);
    for (auto& w : s_) w = sm.next();
  }

  constexpr std::uint64_t next() noexcept {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  constexpr std::uint64_t operator()() noexcept { return next(); }

  /// Uniform double in [0, 1).
  constexpr double next_double() noexcept {
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
  }

  /// Uniform integer in [0, bound) without modulo bias (Lemire's method).
  std::uint64_t next_below(std::uint64_t bound) noexcept;

  /// Bernoulli draw with probability p.
  constexpr bool next_bool(double p) noexcept { return next_double() < p; }

  /// Standard normal via Box-Muller (one value per call; no caching so the
  /// stream position stays easy to reason about).
  double next_gaussian() noexcept;

  /// Exponential with the given rate (lambda).
  double next_exponential(double rate) noexcept;

  static constexpr std::uint64_t min() noexcept { return 0; }
  static constexpr std::uint64_t max() noexcept {
    return std::numeric_limits<std::uint64_t>::max();
  }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) noexcept {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

}  // namespace pregel
