#include "util/histogram.hpp"

#include <algorithm>
#include <bit>
#include <cstdio>
#include <stdexcept>

namespace pregel {

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(bins)), counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram: bins must be > 0");
  if (!(hi > lo)) throw std::invalid_argument("Histogram: hi must exceed lo");
}

void Histogram::add(double x, std::uint64_t weight) {
  double pos = (x - lo_) / width_;
  auto idx = pos <= 0.0 ? std::size_t{0}
                        : std::min(static_cast<std::size_t>(pos), counts_.size() - 1);
  counts_[idx] += weight;
  total_ += weight;
}

double Histogram::bin_lo(std::size_t i) const { return lo_ + width_ * static_cast<double>(i); }
double Histogram::bin_hi(std::size_t i) const { return lo_ + width_ * static_cast<double>(i + 1); }

double Histogram::quantile_upper_edge(double fraction) const {
  if (total_ == 0) return lo_;
  const double target = fraction * static_cast<double>(total_);
  double cum = 0.0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    cum += static_cast<double>(counts_[i]);
    if (cum >= target) return bin_hi(i);
  }
  return hi_;
}

std::size_t Log2Histogram::bin_index(std::uint64_t x) noexcept {
  return static_cast<std::size_t>(std::bit_width(x));
}

void Log2Histogram::add(std::uint64_t x, std::uint64_t weight) {
  const std::size_t idx = bin_index(x);
  if (idx >= counts_.size()) counts_.resize(idx + 1, 0);
  counts_[idx] += weight;
  total_ += weight;
}

std::string Log2Histogram::to_string(std::size_t max_width) const {
  std::string out;
  std::uint64_t peak = 0;
  for (auto c : counts_) peak = std::max(peak, c);
  if (peak == 0) return "(empty)\n";
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const std::uint64_t lo = i == 0 ? 0 : (1ULL << (i - 1));
    const std::uint64_t hi = i == 0 ? 0 : (1ULL << i) - 1;
    char label[64];
    std::snprintf(label, sizeof label, "[%8llu..%8llu] %10llu ",
                  static_cast<unsigned long long>(lo), static_cast<unsigned long long>(hi),
                  static_cast<unsigned long long>(counts_[i]));
    out += label;
    const auto bar =
        static_cast<std::size_t>(static_cast<double>(counts_[i]) /
                                 static_cast<double>(peak) * static_cast<double>(max_width));
    out.append(bar, '#');
    out.push_back('\n');
  }
  return out;
}

}  // namespace pregel
