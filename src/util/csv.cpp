#include "util/csv.hpp"

#include <algorithm>
#include <cctype>
#include <cstdio>

namespace pregel {

CsvWriter& CsvWriter::header(std::initializer_list<std::string_view> cols) {
  bool first = true;
  for (auto c : cols) {
    if (!first) *out_ << ',';
    *out_ << escape(c);
    first = false;
  }
  *out_ << '\n';
  return *this;
}

void CsvWriter::sep() {
  if (row_open_) *out_ << ',';
  row_open_ = true;
}

CsvWriter& CsvWriter::field(std::string_view v) {
  sep();
  *out_ << escape(v);
  return *this;
}

CsvWriter& CsvWriter::field(double v) {
  sep();
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.6g", v);
  *out_ << buf;
  return *this;
}

CsvWriter& CsvWriter::field(std::uint64_t v) {
  sep();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::field(std::int64_t v) {
  sep();
  *out_ << v;
  return *this;
}

CsvWriter& CsvWriter::end_row() {
  *out_ << '\n';
  row_open_ = false;
  ++rows_;
  return *this;
}

std::string CsvWriter::escape(std::string_view v) {
  const bool needs_quote = v.find_first_of(",\"\n\r") != std::string_view::npos;
  if (!needs_quote) return std::string(v);
  std::string out = "\"";
  for (char c : v) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += '"';
  return out;
}

TextTable::TextTable(std::vector<std::string> headers) : headers_(std::move(headers)) {}

void TextTable::add_row(std::vector<std::string> cells) {
  cells.resize(headers_.size());
  rows_.push_back(std::move(cells));
}

namespace {
bool looks_numeric(const std::string& s) {
  if (s.empty()) return false;
  for (char c : s) {
    if (!std::isdigit(static_cast<unsigned char>(c)) && c != '.' && c != '-' && c != '+' &&
        c != 'e' && c != 'E' && c != '%' && c != ',' && c != 'x' && c != '$')
      return false;
  }
  return true;
}
}  // namespace

std::string TextTable::to_string() const {
  std::vector<std::size_t> widths(headers_.size(), 0);
  for (std::size_t c = 0; c < headers_.size(); ++c) widths[c] = headers_[c].size();
  for (const auto& row : rows_)
    for (std::size_t c = 0; c < row.size(); ++c) widths[c] = std::max(widths[c], row[c].size());

  auto pad = [](const std::string& s, std::size_t w, bool right) {
    std::string out;
    if (right) out.append(w - s.size(), ' ');
    out += s;
    if (!right) out.append(w - s.size(), ' ');
    return out;
  };

  std::string out;
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out += pad(headers_[c], widths[c], false);
    out += c + 1 < headers_.size() ? "  " : "";
  }
  out += '\n';
  for (std::size_t c = 0; c < headers_.size(); ++c) {
    out.append(widths[c], '-');
    out += c + 1 < headers_.size() ? "  " : "";
  }
  out += '\n';
  for (const auto& row : rows_) {
    for (std::size_t c = 0; c < row.size(); ++c) {
      out += pad(row[c], widths[c], looks_numeric(row[c]));
      out += c + 1 < row.size() ? "  " : "";
    }
    out += '\n';
  }
  return out;
}

void TextTable::print(std::ostream& out) const { out << to_string(); }

std::string fmt(double v, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof buf, "%.*f", decimals, v);
  return buf;
}

}  // namespace pregel
