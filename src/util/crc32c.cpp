#include "util/crc32c.hpp"

#include <array>

namespace pregel::util {

namespace {

// Byte-at-a-time table for the reflected Castagnoli polynomial 0x82F63B78.
// Software only: the simulator checksums a handful of control-plane blobs
// per superstep, so hardware CRC32 instructions would be over-engineering.
constexpr std::array<std::uint32_t, 256> make_crc32c_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1u) ? 0x82F63B78u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

constexpr auto kTable = make_crc32c_table();

}  // namespace

std::uint32_t crc32c_update(std::uint32_t crc, std::span<const std::byte> data) noexcept {
  std::uint32_t c = crc ^ 0xFFFFFFFFu;
  for (std::byte b : data)
    c = kTable[(c ^ static_cast<std::uint32_t>(b)) & 0xFFu] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

}  // namespace pregel::util
