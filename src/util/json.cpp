#include "util/json.hpp"

#include <cmath>
#include <cstdio>

namespace pregel {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\b': out += "\\b"; break;
      case '\f': out += "\\f"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", static_cast<unsigned>(c));
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

void JsonWriter::separator() {
  if (after_key_) {
    after_key_ = false;
    return;  // "key": <value> — no comma between key and its value
  }
  if (!first_in_scope_.empty()) {
    if (!first_in_scope_.back()) out_ << ',';
    first_in_scope_.back() = false;
  }
}

JsonWriter& JsonWriter::begin_object() {
  separator();
  out_ << '{';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_object() {
  first_in_scope_.pop_back();
  out_ << '}';
  return *this;
}

JsonWriter& JsonWriter::begin_array() {
  separator();
  out_ << '[';
  first_in_scope_.push_back(true);
  return *this;
}

JsonWriter& JsonWriter::end_array() {
  first_in_scope_.pop_back();
  out_ << ']';
  return *this;
}

JsonWriter& JsonWriter::key(std::string_view k) {
  separator();
  out_ << '"' << json_escape(k) << "\":";
  after_key_ = true;
  return *this;
}

JsonWriter& JsonWriter::value(std::string_view v) {
  separator();
  out_ << '"' << json_escape(v) << '"';
  return *this;
}

JsonWriter& JsonWriter::value(bool v) {
  separator();
  out_ << (v ? "true" : "false");
  return *this;
}

JsonWriter& JsonWriter::value(double v) {
  separator();
  if (!std::isfinite(v)) {
    out_ << "null";  // JSON has no NaN/Inf; null keeps the document parseable
    return *this;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", v);
  out_ << buf;
  return *this;
}

JsonWriter& JsonWriter::value(std::uint64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::value(std::int64_t v) {
  separator();
  out_ << v;
  return *this;
}

JsonWriter& JsonWriter::raw(std::string_view fragment) {
  separator();
  out_ << fragment;
  return *this;
}

}  // namespace pregel
