// Units for the virtual-time cluster simulation: bytes, seconds, money.
//
// All simulated quantities in Pregel++ use explicit, strongly-suggestive
// vocabulary types rather than bare doubles where confusion is likely.
// Virtual time is kept as double seconds (summed per superstep, never
// wall-clock); memory as uint64_t bytes; money as double USD.
#pragma once

#include <cstdint>
#include <string>

namespace pregel {

/// Simulated duration in seconds of virtual (modeled) time.
using Seconds = double;

/// Simulated memory footprint in bytes.
using Bytes = std::uint64_t;

/// Monetary cost in US dollars.
using Usd = double;

inline namespace literals {

constexpr Bytes operator""_B(unsigned long long v) { return static_cast<Bytes>(v); }
constexpr Bytes operator""_KiB(unsigned long long v) { return static_cast<Bytes>(v) << 10; }
constexpr Bytes operator""_MiB(unsigned long long v) { return static_cast<Bytes>(v) << 20; }
constexpr Bytes operator""_GiB(unsigned long long v) { return static_cast<Bytes>(v) << 30; }

constexpr Seconds operator""_ms(unsigned long long v) { return static_cast<Seconds>(v) / 1000.0; }
constexpr Seconds operator""_ms(long double v) { return static_cast<Seconds>(v) / 1000.0; }
constexpr Seconds operator""_s(unsigned long long v) { return static_cast<Seconds>(v); }
constexpr Seconds operator""_s(long double v) { return static_cast<Seconds>(v); }
constexpr Seconds operator""_us(unsigned long long v) { return static_cast<Seconds>(v) / 1e6; }
constexpr Seconds operator""_ns(unsigned long long v) { return static_cast<Seconds>(v) / 1e9; }

}  // namespace literals

/// Network rate in bits per second (cloud NICs are specified in Mbps).
constexpr double mbps(double megabits_per_second) { return megabits_per_second * 1e6; }

/// Human-readable byte count, e.g. "6.0 GiB", "713 MiB", "1.2 KiB".
std::string format_bytes(Bytes b);

/// Human-readable duration, e.g. "1.2 s", "34 ms", "2.1 h".
std::string format_seconds(Seconds s);

/// Human-readable dollar amount, e.g. "$0.48", "$12.30".
std::string format_usd(Usd usd);

/// Human-readable count with thousands separators, e.g. "4,847,571".
std::string format_count(std::uint64_t n);

}  // namespace pregel
