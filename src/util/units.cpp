#include "util/units.hpp"

#include <array>
#include <cmath>
#include <cstdio>

namespace pregel {

std::string format_bytes(Bytes b) {
  static constexpr std::array<const char*, 5> kSuffix = {"B", "KiB", "MiB", "GiB", "TiB"};
  double v = static_cast<double>(b);
  std::size_t i = 0;
  while (v >= 1024.0 && i + 1 < kSuffix.size()) {
    v /= 1024.0;
    ++i;
  }
  char buf[48];
  if (i == 0) {
    std::snprintf(buf, sizeof buf, "%.0f %s", v, kSuffix[i]);
  } else {
    std::snprintf(buf, sizeof buf, "%.2f %s", v, kSuffix[i]);
  }
  return buf;
}

std::string format_seconds(Seconds s) {
  char buf[48];
  const double a = std::fabs(s);
  if (a >= 3600.0) {
    std::snprintf(buf, sizeof buf, "%.2f h", s / 3600.0);
  } else if (a >= 60.0) {
    std::snprintf(buf, sizeof buf, "%.2f min", s / 60.0);
  } else if (a >= 1.0) {
    std::snprintf(buf, sizeof buf, "%.2f s", s);
  } else if (a >= 1e-3) {
    std::snprintf(buf, sizeof buf, "%.2f ms", s * 1e3);
  } else if (a >= 1e-6) {
    std::snprintf(buf, sizeof buf, "%.2f us", s * 1e6);
  } else if (a == 0.0) {
    std::snprintf(buf, sizeof buf, "0 s");
  } else {
    std::snprintf(buf, sizeof buf, "%.0f ns", s * 1e9);
  }
  return buf;
}

std::string format_usd(Usd usd) {
  char buf[48];
  if (std::fabs(usd) < 0.10) {
    std::snprintf(buf, sizeof buf, "$%.4f", usd);
  } else {
    std::snprintf(buf, sizeof buf, "$%.2f", usd);
  }
  return buf;
}

std::string format_count(std::uint64_t n) {
  std::string raw = std::to_string(n);
  std::string out;
  out.reserve(raw.size() + raw.size() / 3);
  std::size_t lead = raw.size() % 3 == 0 ? 3 : raw.size() % 3;
  for (std::size_t i = 0; i < raw.size(); ++i) {
    if (i != 0 && (i - lead) % 3 == 0 && i >= lead) out.push_back(',');
    out.push_back(raw[i]);
  }
  return out;
}

}  // namespace pregel
