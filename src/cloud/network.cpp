#include "cloud/network.hpp"

#include <cmath>

#include "util/check.hpp"

namespace pregel::cloud {

TenancyNoise::TenancyNoise(double sigma, std::uint64_t seed) : sigma_(sigma), seed_(seed) {
  PREGEL_CHECK_MSG(sigma >= 0.0, "TenancyNoise: sigma must be non-negative");
}

double TenancyNoise::factor(std::uint32_t worker, std::uint64_t superstep) const noexcept {
  if (sigma_ == 0.0) return 1.0;
  // Hash (seed, worker, superstep) into a deterministic gaussian draw via a
  // dedicated generator — stateless with respect to call order.
  const std::uint64_t key = mix64(seed_ ^ (static_cast<std::uint64_t>(worker) << 40) ^
                                  mix64(superstep + 0x9E37));
  Xoshiro256 rng(key);
  const double z = rng.next_gaussian();
  // Lognormal centered so the median factor is 1; clamp at 1 from below
  // (other tenants can only slow us down, never speed us up).
  const double f = std::exp(sigma_ * z);
  return f < 1.0 ? 1.0 : f;
}

}  // namespace pregel::cloud
