// Dynamic partition placement ("overdecomposition + rebalancing").
//
// The paper's §VII finding is that a low-edge-cut partitioning can *hurt*
// under BSP, because traversal activity concentrates in a few partitions and
// the barrier makes everyone wait ("local maximas ... cause underutilization
// of workers that wait for overutilized workers"). GPS — the closest related
// system — answers with dynamic repartitioning. We implement the practical
// variant: create more partitions than workers and let a placement policy
// re-pack partitions onto worker VMs at superstep barriers, based on
// observed load, paying modeled migration costs.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/stats.hpp"
#include "util/units.hpp"

namespace pregel::cloud {

/// What a placement policy sees at a barrier.
struct PlacementSignals {
  std::uint64_t superstep = 0;
  std::uint32_t workers = 0;
  /// Per-partition activity in the superstep just finished (messages
  /// processed + sent — the quantity whose imbalance Figures 10-14 plot).
  std::vector<double> partition_load;
  /// Per-partition resident bytes (graph + state + buffers): migration cost.
  std::vector<Bytes> partition_bytes;
  /// Current partition -> worker VM assignment.
  std::vector<std::uint32_t> placement;
  /// Straggler-timeout firings per VM so far this job (empty when the
  /// straggler timeout is disabled). A repeatedly slow VM is a bad home for
  /// heavy partitions even if its historical load looks light.
  std::vector<std::uint32_t> vm_stragglers;
  /// Availability zones in the cluster (1 = correlated failure domains not
  /// modeled) and each VM's zone label. Zone-aware policies keep a
  /// partition's replicas and neighbors spread so one zone outage cannot
  /// take out a disproportionate slice of the graph.
  std::uint32_t zones = 1;
  std::vector<std::uint32_t> vm_zone;
};

class PlacementPolicy {
 public:
  virtual ~PlacementPolicy() = default;
  /// New partition -> VM assignment (size = partitions, entries < workers).
  /// Returning `signals.placement` unchanged means "no migration".
  virtual std::vector<std::uint32_t> place(const PlacementSignals& signals) = 0;
  virtual std::string name() const = 0;
};

/// The static default: partition p on VM p mod workers, forever.
class ModuloPlacement final : public PlacementPolicy {
 public:
  std::vector<std::uint32_t> place(const PlacementSignals& signals) override;
  std::string name() const override { return "modulo"; }
};

/// Greedy load rebalancer: smooths per-partition load with an EWMA, and when
/// the max/mean VM load ratio exceeds `trigger`, re-packs partitions onto
/// VMs with longest-processing-time-first bin packing. Hysteresis (the
/// trigger plus the EWMA) keeps it from thrashing placements every barrier.
class GreedyRebalancePlacement final : public PlacementPolicy {
 public:
  explicit GreedyRebalancePlacement(double trigger = 1.25, double ewma_alpha = 0.5);

  std::vector<std::uint32_t> place(const PlacementSignals& signals) override;
  std::string name() const override { return "greedy-rebalance"; }

  std::uint32_t rebalances() const noexcept { return rebalances_; }

 private:
  double trigger_;
  double alpha_;
  std::vector<Ewma> smoothed_;
  std::uint32_t rebalances_ = 0;
};

/// Zone-aware load rebalancer: the same EWMA + LPT machinery as
/// GreedyRebalancePlacement, but the bin choice spreads load across
/// availability zones first and VMs second, so a single zone outage loses a
/// near-minimal share of partitions (and, through the engine's replica
/// targeting, never a checkpoint together with every VM that could restore
/// it). With one zone it degenerates to plain greedy rebalancing.
class ZoneSpreadPlacement final : public PlacementPolicy {
 public:
  explicit ZoneSpreadPlacement(double trigger = 1.25, double ewma_alpha = 0.5);

  std::vector<std::uint32_t> place(const PlacementSignals& signals) override;
  std::string name() const override { return "zone-spread"; }

  std::uint32_t rebalances() const noexcept { return rebalances_; }

 private:
  double trigger_;
  double alpha_;
  std::vector<Ewma> smoothed_;
  std::uint32_t rebalances_ = 0;
};

}  // namespace pregel::cloud
