// Simulated Azure queue service.
//
// The paper's architecture (§III) uses Azure queues for all control traffic:
// the web role submits job requests, the job manager replicates them into a
// worker-acceptance queue, posts superstep tokens to a "step" queue, and
// workers check in through a "barrier" queue carrying their active-vertex
// counts. Queues are "a convenient and reliable transport" for small,
// infrequent messages — with tens-of-milliseconds operation latency, which
// is exactly why they are only used for control, not data.
//
// This simulation provides named FIFO queues with at-least-once semantics
// (visibility timeout on dequeue, like real Azure storage queues) and an
// operation meter the cost model reads.
#pragma once

#include <cstdint>
#include <deque>
#include <optional>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace pregel::cloud {

/// Parse a control message of the form "<prefix><decimal count>" (e.g.
/// "active:42"). Returns nullopt unless the body starts with exactly
/// `prefix` and the remainder is a complete, in-range decimal number —
/// malformed or truncated barrier messages must be rejected, not read as
/// garbage.
std::optional<std::uint64_t> parse_prefixed_count(std::string_view body,
                                                  std::string_view prefix);

struct QueueMessage {
  std::uint64_t id = 0;
  std::string body;
  /// CRC32C of `body`, stamped by put(). Consumers verify on dequeue; the
  /// simulated corruption fault (FaultKind::kQueueCorrupt) models the check
  /// failing, forcing a retriable re-read exactly like the blob plane.
  std::uint32_t crc = 0;
};

/// CRC32C over a message body (what put() stamps into QueueMessage::crc).
std::uint32_t queue_body_checksum(std::string_view body) noexcept;

/// True when `m.crc` matches its body — consumers call this after get().
bool verify_queue_message(const QueueMessage& m) noexcept;

/// One named queue with Azure-like get/put/delete semantics.
class AzureQueue {
 public:
  /// Enqueue a message; returns its id.
  std::uint64_t put(std::string body);

  /// Dequeue the oldest visible message. The message becomes invisible until
  /// remove()d or released; a consumer that crashes before remove() would
  /// see it reappear (at-least-once).
  std::optional<QueueMessage> get();

  /// Acknowledge (delete) a previously get()-ed message.
  void remove(std::uint64_t id);

  /// Make an un-removed in-flight message visible again (visibility timeout
  /// expiry in real Azure; explicit in the simulation).
  void release(std::uint64_t id);

  std::size_t visible_count() const noexcept { return visible_.size(); }
  std::size_t inflight_count() const noexcept { return inflight_.size(); }
  std::uint64_t total_ops() const noexcept { return ops_; }

 private:
  std::deque<QueueMessage> visible_;
  std::unordered_map<std::uint64_t, QueueMessage> inflight_;
  std::uint64_t next_id_ = 1;
  std::uint64_t ops_ = 0;
};

/// The queue service: named queues created on first use, plus an aggregate
/// operation count for cost accounting.
class QueueService {
 public:
  AzureQueue& queue(const std::string& name);
  bool has_queue(const std::string& name) const;
  std::uint64_t total_ops() const;

 private:
  std::unordered_map<std::string, AzureQueue> queues_;
};

}  // namespace pregel::cloud
