#include "cloud/migration.hpp"

#include <algorithm>
#include <string>
#include <vector>

#include "runtime/trace.hpp"
#include "util/check.hpp"

namespace pregel::cloud {

MigrationExecutor::MigrationExecutor(const CostModel& cost, const VmSpec& vm,
                                     QueueService& queues, ControlOpFn control_op)
    : cost_(cost), vm_(vm), queues_(queues), control_op_(std::move(control_op)) {
  PREGEL_CHECK(static_cast<bool>(control_op_));
}

MigrationOutcome MigrationExecutor::execute(
    std::span<const MigrationTransfer> transfers, std::uint64_t superstep) {
  MigrationOutcome out;
  trace::Span span("engine.migration.transfer", "migration", "superstep", superstep);

  auto& migrate = queues_.queue("migrate");
  Seconds retry_extra = 0.0;
  std::vector<Bytes> vm_bytes;  // NIC bytes per VM (out + in), resized lazily
  for (const auto& t : transfers) {
    if (t.bytes == 0 && t.vertices == 0) continue;
    PREGEL_CHECK_MSG(t.from_vm != t.to_vm,
                     "migration transfer must cross VMs (same-VM moves are free)");

    // Manifest through the control plane: the donor posts what is coming,
    // the receiver dequeues and acknowledges. One fault draw covers the
    // logical op; the physical queue traffic keeps op counts honest.
    Seconds leg_extra = 0.0;
    const auto q = control_op_(FaultKind::kQueueOp);
    leg_extra += q.extra_latency;
    bool ok = q.success;
    [[maybe_unused]] const std::uint64_t id = migrate.put(
        "migrate:" + std::to_string(t.from_vm) + ">" + std::to_string(t.to_vm) +
        ":" + std::to_string(t.bytes));
    const auto manifest = migrate.get();
    PREGEL_DCHECK(manifest.has_value() && manifest->id == id);
    PREGEL_CHECK_MSG(verify_queue_message(*manifest),
                     "migration manifest failed CRC32C verification");
    migrate.remove(manifest->id);
    out.queue_ops += 3;

    // Payload legs: donor stages the bundle to blob, receiver reads it back.
    const auto w = control_op_(FaultKind::kBlobWrite);
    leg_extra += w.extra_latency;
    ok = ok && w.success;
    const auto r = control_op_(FaultKind::kBlobRead);
    leg_extra += r.extra_latency;
    ok = ok && r.success;

    // Legs run in parallel across VM pairs; the worst retry tail bounds the
    // extension even when the event aborts.
    retry_extra = std::max(retry_extra, leg_extra);
    if (!ok) {
      out.aborted = true;
      continue;
    }
    const std::uint32_t hi = std::max(t.from_vm, t.to_vm);
    if (vm_bytes.size() <= hi) vm_bytes.resize(hi + 1, 0);
    vm_bytes[t.from_vm] += t.bytes;
    vm_bytes[t.to_vm] += t.bytes;
    out.bytes_moved += t.bytes;
    out.vertices_moved += t.vertices;
  }

  if (out.aborted) {
    out.stall = retry_extra;
    out.bytes_moved = 0;
    out.vertices_moved = 0;
    if (trace::counters_on())
      trace::Tracer::instance().counter("engine.migration.aborts").add(1);
    return out;
  }
  if (out.bytes_moved == 0 && out.vertices_moved == 0) return out;

  const double bw_Bps = vm_.network_bps * cost_.params().network_efficiency / 8.0;
  Bytes busiest = 0;
  for (const Bytes b : vm_bytes) busiest = std::max(busiest, b);
  out.stall = static_cast<double>(busiest) / bw_Bps +
              cost_.params().queue_op_latency + retry_extra;
  if (trace::counters_on()) {
    trace::Tracer& tr = trace::Tracer::instance();
    tr.counter("engine.migration.bytes").add(static_cast<std::uint64_t>(out.bytes_moved));
    tr.counter("engine.migration.vertices").add(out.vertices_moved);
  }
  return out;
}

}  // namespace pregel::cloud
