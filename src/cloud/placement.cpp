#include "cloud/placement.hpp"

#include <algorithm>
#include <limits>
#include <numeric>

#include "util/check.hpp"

namespace pregel::cloud {

std::vector<std::uint32_t> ModuloPlacement::place(const PlacementSignals& signals) {
  std::vector<std::uint32_t> out(signals.placement.size());
  for (std::uint32_t p = 0; p < out.size(); ++p) out[p] = p % signals.workers;
  return out;
}

GreedyRebalancePlacement::GreedyRebalancePlacement(double trigger, double ewma_alpha)
    : trigger_(trigger), alpha_(ewma_alpha) {
  PREGEL_CHECK_MSG(trigger >= 1.0, "GreedyRebalancePlacement: trigger must be >= 1");
  PREGEL_CHECK_MSG(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                   "GreedyRebalancePlacement: alpha in (0,1]");
}

std::vector<std::uint32_t> GreedyRebalancePlacement::place(const PlacementSignals& s) {
  const std::size_t parts = s.placement.size();
  PREGEL_CHECK(s.partition_load.size() == parts);
  if (smoothed_.size() != parts) smoothed_.assign(parts, Ewma(alpha_));
  for (std::size_t p = 0; p < parts; ++p) smoothed_[p].add(s.partition_load[p]);

  // Current per-VM load with smoothed partition loads.
  std::vector<double> vm_load(s.workers, 0.0);
  for (std::size_t p = 0; p < parts; ++p) vm_load[s.placement[p]] += smoothed_[p].value();
  const double total = std::accumulate(vm_load.begin(), vm_load.end(), 0.0);
  if (total <= 0.0) return s.placement;
  const double mean = total / s.workers;
  const double worst = *std::max_element(vm_load.begin(), vm_load.end());
  if (worst / mean < trigger_) return s.placement;  // balanced enough

  // LPT bin packing: heaviest partitions first onto the lightest VM.
  std::vector<std::size_t> order(parts);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return smoothed_[a].value() > smoothed_[b].value();
  });
  // Handicap VMs the straggler timeout has flagged: each firing costs the
  // VM one mean partition-load's worth of headroom in the packing.
  std::vector<double> bin(s.workers, 0.0);
  if (s.vm_stragglers.size() == s.workers) {
    const double mean_part = total / static_cast<double>(parts);
    for (std::uint32_t v = 0; v < s.workers; ++v)
      bin[v] = mean_part * s.vm_stragglers[v];
  }
  std::vector<std::uint32_t> out(parts, 0);
  for (std::size_t p : order) {
    const auto lightest = static_cast<std::uint32_t>(
        std::min_element(bin.begin(), bin.end()) - bin.begin());
    out[p] = lightest;
    bin[lightest] += smoothed_[p].value();
  }
  ++rebalances_;
  return out;
}

ZoneSpreadPlacement::ZoneSpreadPlacement(double trigger, double ewma_alpha)
    : trigger_(trigger), alpha_(ewma_alpha) {
  PREGEL_CHECK_MSG(trigger >= 1.0, "ZoneSpreadPlacement: trigger must be >= 1");
  PREGEL_CHECK_MSG(ewma_alpha > 0.0 && ewma_alpha <= 1.0,
                   "ZoneSpreadPlacement: alpha in (0,1]");
}

std::vector<std::uint32_t> ZoneSpreadPlacement::place(const PlacementSignals& s) {
  const std::size_t parts = s.placement.size();
  PREGEL_CHECK(s.partition_load.size() == parts);
  if (smoothed_.size() != parts) smoothed_.assign(parts, Ewma(alpha_));
  for (std::size_t p = 0; p < parts; ++p) smoothed_[p].add(s.partition_load[p]);

  std::vector<double> vm_load(s.workers, 0.0);
  for (std::size_t p = 0; p < parts; ++p) vm_load[s.placement[p]] += smoothed_[p].value();
  const double total = std::accumulate(vm_load.begin(), vm_load.end(), 0.0);
  if (total <= 0.0) return s.placement;
  const double mean = total / s.workers;
  const double worst = *std::max_element(vm_load.begin(), vm_load.end());
  if (worst / mean < trigger_) return s.placement;  // balanced enough

  const std::uint32_t zones =
      s.zones > 1 && s.vm_zone.size() == s.workers ? s.zones : 1;
  const auto zone_of = [&](std::uint32_t vm) { return zones == 1 ? 0u : s.vm_zone[vm]; };

  std::vector<std::size_t> order(parts);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::stable_sort(order.begin(), order.end(), [this](std::size_t a, std::size_t b) {
    return smoothed_[a].value() > smoothed_[b].value();
  });
  std::vector<double> bin(s.workers, 0.0);
  if (s.vm_stragglers.size() == s.workers) {
    const double mean_part = total / static_cast<double>(parts);
    for (std::uint32_t v = 0; v < s.workers; ++v)
      bin[v] = mean_part * s.vm_stragglers[v];
  }
  // Two-level LPT: pick the lightest *zone* (by packed load), then the
  // lightest VM inside it. Partition count per zone stays within one of
  // even, and load imbalance across zones is bounded by one partition —
  // losing any single zone loses close to 1/zones of the graph, never a
  // hot-spotted majority.
  std::vector<double> zone_load(zones, 0.0);
  for (std::uint32_t v = 0; v < s.workers; ++v) zone_load[zone_of(v)] += bin[v];
  std::vector<std::uint32_t> out(parts, 0);
  for (std::size_t p : order) {
    const auto lightest_zone = static_cast<std::uint32_t>(
        std::min_element(zone_load.begin(), zone_load.end()) - zone_load.begin());
    std::uint32_t best_vm = 0;
    double best = std::numeric_limits<double>::infinity();
    for (std::uint32_t v = 0; v < s.workers; ++v) {
      if (zone_of(v) != lightest_zone) continue;
      if (bin[v] < best) {
        best = bin[v];
        best_vm = v;
      }
    }
    out[p] = best_vm;
    bin[best_vm] += smoothed_[p].value();
    zone_load[lightest_zone] += smoothed_[p].value();
  }
  ++rebalances_;
  return out;
}

}  // namespace pregel::cloud
