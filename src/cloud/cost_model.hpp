// The virtual-time cost model.
//
// Every duration the simulator reports comes from this model. Per superstep
// and per worker the engine collects raw counts (vertices computed, messages
// processed/sent local & remote, bytes moved, peak buffered memory) and the
// cost model converts them into modeled seconds, applying the VM's resource
// envelope:
//
//   compute  = (vertex work + message work) / cores   [* thrash penalty]
//   network  = bytes / effective bandwidth + per-superstep connection setup
//   barrier  = queue round-trips to the job manager (grows with worker count)
//
// The thrash penalty models the paper's central failure mode: message
// buffers spilling past physical RAM into virtual memory with random-access
// patterns ("may be even worse than disk-based buffering"), and past a hard
// ceiling, the Azure fabric declaring the VM unresponsive and restarting it.
#pragma once

#include <cstdint>

#include "cloud/vm.hpp"
#include "util/units.hpp"

namespace pregel::cloud {

/// Raw per-worker activity counts for one superstep (filled by the runtime).
struct WorkerLoad {
  std::uint64_t vertices_computed = 0;
  std::uint64_t messages_processed = 0;  ///< drained from the previous superstep
  std::uint64_t messages_sent_local = 0;
  std::uint64_t messages_sent_remote = 0;
  /// Internal sequential work performed by subgraph-centric programs (edge
  /// relaxations, union-find operations, Gauss-Seidel updates...). Zero for
  /// vertex-centric programs. Charged separately from vertices_computed so
  /// the barrier's active-count audit stays exact while local-convergence
  /// sweeps are still priced.
  std::uint64_t subgraph_ops = 0;
  Bytes bytes_sent_remote = 0;
  Bytes bytes_received_remote = 0;
  Bytes memory_peak = 0;  ///< graph partition + buffered messages + vertex state
};

struct CostParams {
  // CPU work, expressed in clock cycles on the VM's cores so that a faster
  // VM finishes sooner. Values chosen for a managed-runtime (.NET-like)
  // framework: message handling is comparable in cost to user compute, as
  // Section IV of the paper observes.
  double cycles_per_vertex_op = 4000;
  double cycles_per_message_processed = 2500;
  double cycles_per_message_sent = 2000;  ///< serialization + routing
  /// One internal step of a subgraph-centric program (a relaxation, a
  /// union-find find+union, one Gauss-Seidel update). Much cheaper than a
  /// full vertex_op: no per-vertex dispatch, no message envelope handling —
  /// the sequential algorithm runs over raw adjacency. This asymmetry is
  /// the subgraph model's whole bet (GoFFish): trade framework overhead per
  /// vertex for tight loops inside the partition.
  double cycles_per_subgraph_op = 400;

  // Wire format: payload + envelope (vertex id, type tag, framing).
  Bytes message_envelope_bytes = 16;
  // In-memory footprint of one buffered message (managed-object overhead:
  // queue node, object header, payload boxing).
  Bytes message_object_overhead_bytes = 64;

  /// Fraction of NIC line rate actually achievable for bulk transfers on a
  /// multi-tenant cloud (the paper's 400 Mbps is a rating, not a promise).
  double network_efficiency = 0.70;
  /// Per-superstep TCP (re)connection setup; the paper reestablishes
  /// worker-to-worker sockets every superstep to avoid timeouts.
  Seconds connection_setup_per_peer = 2_ms;

  /// Azure queue operation latency (control messages: step/barrier tokens).
  Seconds queue_op_latency = 30_ms;
  /// Job-manager bookkeeping per worker per barrier.
  Seconds barrier_per_worker = 5_ms;

  /// Compute/network slowdown multiplier per unit of relative memory
  /// overflow: factor = 1 + vm_thrash_slope * (mem/ram - 1), while mem > ram.
  /// Random-access paging of message buffers is punitive (the paper: "may be
  /// even worse than disk-based buffering"); 24 puts a worker 10% over RAM
  /// at ~3.4x and one at the 1.5x restart threshold at ~13x slowdown.
  /// bench_ablation_thrash_sensitivity sweeps this parameter.
  double vm_thrash_slope = 24.0;
  /// Memory at or beyond this multiple of RAM makes the cloud fabric declare
  /// the VM unresponsive and restart it -> the job fails (JobFailure).
  double vm_restart_threshold = 1.5;
};

class CostModel {
 public:
  CostModel() = default;
  explicit CostModel(CostParams params);

  const CostParams& params() const noexcept { return params_; }

  /// Thrash multiplier for a worker whose peak memory was `mem` on `vm`.
  /// Returns 1.0 when within RAM. Throws nothing; restart is a separate query.
  double thrash_penalty(Bytes mem, const VmSpec& vm) const noexcept;

  /// True when the overflow is severe enough that the fabric restarts the VM.
  bool triggers_restart(Bytes mem, const VmSpec& vm) const noexcept;

  /// Modeled CPU time for one worker's superstep work on `vm`
  /// (thrash penalty included).
  Seconds compute_time(const WorkerLoad& load, const VmSpec& vm) const noexcept;

  /// Modeled network time: max(send, recv) through the NIC at effective
  /// bandwidth, plus connection setup to `peers` other workers
  /// (thrash penalty included — paging stalls the transfer threads too).
  Seconds network_time(const WorkerLoad& load, const VmSpec& vm,
                       std::uint32_t peers) const noexcept;

  /// Modeled barrier/control overhead for a superstep with `workers` workers:
  /// step-token dequeue + barrier-token enqueue + manager processing.
  Seconds barrier_time(std::uint32_t workers) const noexcept;

  /// Modeled wall time to spill `bytes` of message buffers to blob storage
  /// and read them back later: a round trip through the VM's NIC at
  /// effective bandwidth. The memory-pressure governor charges this when it
  /// trades spill I/O for staying under the memory target.
  Seconds spill_transfer_time(Bytes bytes, const VmSpec& vm) const noexcept;

  /// Wire bytes for a message with `payload` bytes.
  Bytes wire_bytes(Bytes payload) const noexcept {
    return payload + params_.message_envelope_bytes;
  }
  /// In-memory buffered footprint for a message with `payload` bytes.
  Bytes buffered_bytes(Bytes payload) const noexcept {
    return payload + params_.message_object_overhead_bytes;
  }

 private:
  CostParams params_;
};

}  // namespace pregel::cloud
