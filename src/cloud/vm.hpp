// Simulated cloud VM catalog.
//
// The paper ran on Microsoft Azure's 2012 instance types: "Large" VMs
// (4 cores @ 1.6 GHz, 7 GB RAM, 400 Mbps NIC, $0.48/VM-hour) for partition
// workers and "Small" (exactly one fourth of those specs) for the web UI and
// job manager roles. The benches run on dataset analogs at 1/10 scale, so a
// proportionally RAM-scaled VM keeps the memory-pressure regime identical
// (see DESIGN.md §4).
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pregel::cloud {

struct VmSpec {
  std::string name;
  std::uint32_t cores = 1;
  double clock_ghz = 1.0;
  Bytes ram = 1_GiB;
  double network_bps = mbps(100);  ///< NIC line rate, bits/second
  Usd price_per_hour = 0.0;

  friend bool operator==(const VmSpec&, const VmSpec&) = default;
};

/// Azure "Large" (2012): 4 cores @1.6 GHz, 7 GB, 400 Mbps, $0.48/h.
VmSpec azure_large_2012();

/// Azure "Small" (2012): exactly one fourth of Large.
VmSpec azure_small_2012();

/// Same VM with RAM scaled by `factor` (for scaled-down dataset analogs:
/// same compute/network regime, proportionally smaller memory envelope).
VmSpec with_scaled_ram(VmSpec vm, double factor);

/// Availability-zone labeling for a worker fleet. Azure's fault/upgrade
/// domains stripe role instances round-robin across domains, so the label of
/// worker `vm` is simply `vm % zones`. One zone (the default) means
/// correlated failure domains are not modeled and every zone draw is a no-op.
struct ZoneMap {
  std::uint32_t zones = 1;

  std::uint32_t zone_of(std::uint32_t vm) const noexcept {
    return zones <= 1 ? 0 : vm % zones;
  }
  /// All VMs in [0, fleet) whose label is `zone`.
  std::vector<std::uint32_t> vms_in_zone(std::uint32_t zone, std::uint32_t fleet) const {
    std::vector<std::uint32_t> out;
    for (std::uint32_t vm = 0; vm < fleet; ++vm)
      if (zone_of(vm) == zone) out.push_back(vm);
    return out;
  }
  friend bool operator==(const ZoneMap&, const ZoneMap&) = default;
};

/// Accumulates VM-seconds per role and converts to dollars at each VM's
/// hourly price (pro-rata per second, the paper's Figure 16 convention).
class CostMeter {
 public:
  /// Charge `count` simultaneous VMs of `vm` for `duration` of virtual time.
  void charge(const VmSpec& vm, std::uint32_t count, Seconds duration);

  Usd total_usd() const noexcept { return usd_; }
  Seconds total_vm_seconds() const noexcept { return vm_seconds_; }
  void reset() noexcept { usd_ = 0.0; vm_seconds_ = 0.0; }

 private:
  Usd usd_ = 0.0;
  Seconds vm_seconds_ = 0.0;
};

}  // namespace pregel::cloud
