// Elastic scaling policies (Section VIII of the paper).
//
// BSP's synchronous barrier between supersteps is a natural window for
// scaling the worker pool out or in: peak supersteps benefit from more
// workers (the paper observes superlinear per-superstep speedup when active
// vertices peak, due to relieved memory pressure), while trough supersteps
// are dominated by barrier overhead that *grows* with worker count.
//
// A ScalingPolicy decides, at each barrier, how many workers run the next
// superstep. The paper's heuristic scales between 4 and 8 workers on a
// 50%-active-vertices threshold; the oracle picks per-superstep whichever
// of the two fixed configurations was faster.
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "util/units.hpp"

namespace pregel::cloud {

/// Snapshot a policy sees at a barrier.
struct ScalingSignals {
  std::uint64_t superstep = 0;
  std::uint64_t active_vertices = 0;
  std::uint64_t total_vertices = 0;  ///< vertices with any in-progress work this job
  std::uint64_t messages_sent = 0;   ///< in the superstep just finished
  Bytes max_worker_memory = 0;
  std::uint32_t current_workers = 0;
};

class ScalingPolicy {
 public:
  virtual ~ScalingPolicy() = default;
  /// Worker count for the next superstep.
  virtual std::uint32_t decide(const ScalingSignals& signals) = 0;
  virtual std::string name() const = 0;
};

/// Never scales.
class FixedScaling final : public ScalingPolicy {
 public:
  explicit FixedScaling(std::uint32_t workers) : workers_(workers) {}
  std::uint32_t decide(const ScalingSignals&) override { return workers_; }
  std::string name() const override { return "fixed-" + std::to_string(workers_); }

 private:
  std::uint32_t workers_;
};

/// The paper's dynamic heuristic: `high` workers while the fraction of
/// active vertices is at or above `threshold`, otherwise `low`.
class ActiveVertexScaling final : public ScalingPolicy {
 public:
  ActiveVertexScaling(std::uint32_t low, std::uint32_t high, double threshold = 0.5);
  std::uint32_t decide(const ScalingSignals& signals) override;
  std::string name() const override;

 private:
  std::uint32_t low_, high_;
  double threshold_;
};

/// Threshold scaling with hysteresis: scale out when the active-vertex
/// fraction reaches `out_threshold`, back in only when it falls to
/// `in_threshold` (< out). The band suppresses the flapping that makes
/// plain threshold policies pay repeated scale-event costs on workloads
/// hovering near the boundary.
class HysteresisScaling final : public ScalingPolicy {
 public:
  HysteresisScaling(std::uint32_t low, std::uint32_t high, double in_threshold = 0.3,
                    double out_threshold = 0.6);
  std::uint32_t decide(const ScalingSignals& signals) override;
  std::string name() const override;

 private:
  std::uint32_t low_, high_;
  double in_, out_;
  bool scaled_out_ = false;
};

/// Memory-pressure scaling: scale out when the modeled per-worker peak nears
/// the memory budget (more workers shrink each VM's partition share and
/// message buffers), scale back in with hysteresis once pressure clears.
/// Complements the governor's degradation ladder: scaling trades money for
/// headroom between supersteps, the governor sheds load within one.
class MemoryPressureScaling final : public ScalingPolicy {
 public:
  MemoryPressureScaling(std::uint32_t low, std::uint32_t high, Bytes memory_target,
                        double out_fraction = 0.85, double in_fraction = 0.5);
  std::uint32_t decide(const ScalingSignals& signals) override;
  std::string name() const override;

 private:
  std::uint32_t low_, high_;
  Bytes target_;
  double out_, in_;
  bool scaled_out_ = false;
};

/// Oracle scaling for the Figure 16 projection: given the recorded
/// per-superstep times of two fixed runs, pick the cheaper configuration at
/// every superstep. Constructed by the bench harness after both runs.
class OracleScaling final : public ScalingPolicy {
 public:
  /// times_low[s] / times_high[s]: superstep s duration under each config.
  OracleScaling(std::uint32_t low, std::uint32_t high, std::vector<Seconds> times_low,
                std::vector<Seconds> times_high);
  std::uint32_t decide(const ScalingSignals& signals) override;
  std::string name() const override { return "oracle"; }

 private:
  std::uint32_t low_, high_;
  std::vector<Seconds> times_low_, times_high_;
};

}  // namespace pregel::cloud
