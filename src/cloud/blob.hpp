// Simulated Azure blob storage.
//
// In the paper's architecture, the input graph file lives in blob (file)
// storage; each partition worker accepting a job downloads the file and
// loads the vertices belonging to its partition. The simulation models a
// flat named byte store with throughput-based read/write timing, so graph
// load time appears in job setup cost.
//
// Every payload is checksummed (CRC32C) on put and re-verified on get, the
// way real object stores validate payloads end to end: a torn or corrupted
// blob surfaces as BlobCorruptError — a detectable, retriable integrity
// failure — never as silently wrong bytes. corrupt()/tear() are test hooks
// that tamper with a stored payload without refreshing its checksum.
#pragma once

#include <cstdint>
#include <stdexcept>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace pregel::cloud {

/// Thrown by BlobStore::get when a payload fails checksum verification.
class BlobCorruptError : public std::runtime_error {
 public:
  using std::runtime_error::runtime_error;
};

class BlobStore {
 public:
  /// `throughput_bps` is per-client download/upload rate in bits/second
  /// (Azure 2012 storage targets were ~60 MB/s per blob; network usually
  /// bound first, so default to a typical VM's NIC share).
  explicit BlobStore(double throughput_bps = mbps(400), Seconds op_latency = 50_ms);

  void put(const std::string& name, std::vector<std::byte> data);
  /// Throws std::out_of_range when missing, BlobCorruptError when the
  /// payload no longer matches its stored CRC32C.
  const std::vector<std::byte>& get(const std::string& name) const;
  bool exists(const std::string& name) const;
  void remove(const std::string& name);

  Bytes size_of(const std::string& name) const;

  /// CRC32C recorded at put time. Throws std::out_of_range when missing.
  std::uint32_t checksum_of(const std::string& name) const;

  /// Test hooks: flip the byte at `index` / truncate to `new_size` bytes
  /// (torn write) without updating the stored checksum.
  void corrupt(const std::string& name, std::size_t index);
  void tear(const std::string& name, std::size_t new_size);

  /// Modeled wall time for one client to download/upload `bytes`.
  Seconds transfer_time(Bytes bytes) const noexcept;

  std::uint64_t total_ops() const noexcept { return ops_; }

 private:
  struct StoredBlob {
    std::vector<std::byte> data;
    std::uint32_t crc = 0;
  };

  StoredBlob& stored(const std::string& name, const char* op);
  const StoredBlob& stored(const std::string& name, const char* op) const;

  std::unordered_map<std::string, StoredBlob> blobs_;
  double throughput_bps_;
  Seconds op_latency_;
  mutable std::uint64_t ops_ = 0;
};

}  // namespace pregel::cloud
