// Simulated Azure blob storage.
//
// In the paper's architecture, the input graph file lives in blob (file)
// storage; each partition worker accepting a job downloads the file and
// loads the vertices belonging to its partition. The simulation models a
// flat named byte store with throughput-based read/write timing, so graph
// load time appears in job setup cost.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/units.hpp"

namespace pregel::cloud {

class BlobStore {
 public:
  /// `throughput_bps` is per-client download/upload rate in bits/second
  /// (Azure 2012 storage targets were ~60 MB/s per blob; network usually
  /// bound first, so default to a typical VM's NIC share).
  explicit BlobStore(double throughput_bps = mbps(400), Seconds op_latency = 50_ms);

  void put(const std::string& name, std::vector<std::byte> data);
  /// Throws std::out_of_range when missing.
  const std::vector<std::byte>& get(const std::string& name) const;
  bool exists(const std::string& name) const;
  void remove(const std::string& name);

  Bytes size_of(const std::string& name) const;

  /// Modeled wall time for one client to download/upload `bytes`.
  Seconds transfer_time(Bytes bytes) const noexcept;

  std::uint64_t total_ops() const noexcept { return ops_; }

 private:
  std::unordered_map<std::string, std::vector<std::byte>> blobs_;
  double throughput_bps_;
  Seconds op_latency_;
  mutable std::uint64_t ops_ = 0;
};

}  // namespace pregel::cloud
