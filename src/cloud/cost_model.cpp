#include "cloud/cost_model.hpp"

#include <algorithm>

#include "util/check.hpp"

namespace pregel::cloud {

CostModel::CostModel(CostParams params) : params_(params) {
  PREGEL_CHECK_MSG(params_.network_efficiency > 0.0 && params_.network_efficiency <= 1.0,
                   "CostModel: network_efficiency in (0,1]");
  PREGEL_CHECK_MSG(params_.vm_restart_threshold > 1.0,
                   "CostModel: restart threshold must exceed 1.0");
  PREGEL_CHECK_MSG(params_.vm_thrash_slope >= 0.0, "CostModel: thrash slope >= 0");
}

double CostModel::thrash_penalty(Bytes mem, const VmSpec& vm) const noexcept {
  if (mem <= vm.ram || vm.ram == 0) return 1.0;
  const double over =
      static_cast<double>(mem) / static_cast<double>(vm.ram) - 1.0;
  return 1.0 + params_.vm_thrash_slope * over;
}

bool CostModel::triggers_restart(Bytes mem, const VmSpec& vm) const noexcept {
  if (vm.ram == 0) return false;
  return static_cast<double>(mem) >=
         params_.vm_restart_threshold * static_cast<double>(vm.ram);
}

Seconds CostModel::compute_time(const WorkerLoad& load, const VmSpec& vm) const noexcept {
  const double cycles =
      static_cast<double>(load.vertices_computed) * params_.cycles_per_vertex_op +
      static_cast<double>(load.messages_processed) * params_.cycles_per_message_processed +
      static_cast<double>(load.messages_sent_local + load.messages_sent_remote) *
          params_.cycles_per_message_sent +
      static_cast<double>(load.subgraph_ops) * params_.cycles_per_subgraph_op;
  const double hz = vm.clock_ghz * 1e9 * std::max(1u, vm.cores);
  return cycles / hz * thrash_penalty(load.memory_peak, vm);
}

Seconds CostModel::network_time(const WorkerLoad& load, const VmSpec& vm,
                                std::uint32_t peers) const noexcept {
  const double bytes = static_cast<double>(
      std::max(load.bytes_sent_remote, load.bytes_received_remote));
  const double bandwidth_Bps = vm.network_bps * params_.network_efficiency / 8.0;
  const Seconds transfer = bandwidth_Bps > 0.0 ? bytes / bandwidth_Bps : 0.0;
  const Seconds setup = params_.connection_setup_per_peer * peers;
  return transfer * thrash_penalty(load.memory_peak, vm) + setup;
}

Seconds CostModel::barrier_time(std::uint32_t workers) const noexcept {
  // Each worker dequeues a step token and enqueues a barrier message; the
  // manager drains one barrier message per worker before opening the next
  // superstep. Queue ops overlap across workers, so latency counts once,
  // while manager processing is serial in the worker count.
  return 2.0 * params_.queue_op_latency + params_.barrier_per_worker * workers;
}

Seconds CostModel::spill_transfer_time(Bytes bytes, const VmSpec& vm) const noexcept {
  if (bytes == 0) return 0.0;
  const double bandwidth_Bps = vm.network_bps * params_.network_efficiency / 8.0;
  const Seconds one_way = bandwidth_Bps > 0.0 ? static_cast<double>(bytes) / bandwidth_Bps : 0.0;
  return 2.0 * one_way;  // spill out now + read back when the pressure clears
}

}  // namespace pregel::cloud
