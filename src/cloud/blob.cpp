#include "cloud/blob.hpp"

#include <stdexcept>

#include "runtime/trace.hpp"
#include "util/check.hpp"

namespace pregel::cloud {

namespace {

void count_blob_op(Bytes bytes) {
  if (!trace::counters_on()) return;
  trace::Tracer& t = trace::Tracer::instance();
  t.counter("cloud.blob.ops").add(1);
  if (bytes > 0) t.counter("cloud.blob.bytes").add(bytes);
}

}  // namespace

BlobStore::BlobStore(double throughput_bps, Seconds op_latency)
    : throughput_bps_(throughput_bps), op_latency_(op_latency) {
  PREGEL_CHECK_MSG(throughput_bps > 0.0, "BlobStore: throughput must be positive");
}

void BlobStore::put(const std::string& name, std::vector<std::byte> data) {
  ++ops_;
  count_blob_op(static_cast<Bytes>(data.size()));
  blobs_[name] = std::move(data);
}

const std::vector<std::byte>& BlobStore::get(const std::string& name) const {
  ++ops_;
  auto it = blobs_.find(name);
  if (it == blobs_.end()) throw std::out_of_range("BlobStore::get: no blob " + name);
  count_blob_op(static_cast<Bytes>(it->second.size()));
  return it->second;
}

bool BlobStore::exists(const std::string& name) const { return blobs_.contains(name); }

void BlobStore::remove(const std::string& name) {
  ++ops_;
  count_blob_op(0);
  blobs_.erase(name);
}

Bytes BlobStore::size_of(const std::string& name) const {
  auto it = blobs_.find(name);
  if (it == blobs_.end()) throw std::out_of_range("BlobStore::size_of: no blob " + name);
  return static_cast<Bytes>(it->second.size());
}

Seconds BlobStore::transfer_time(Bytes bytes) const noexcept {
  return op_latency_ + static_cast<double>(bytes) * 8.0 / throughput_bps_;
}

}  // namespace pregel::cloud
