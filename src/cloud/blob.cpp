#include "cloud/blob.hpp"

#include "runtime/trace.hpp"
#include "util/check.hpp"
#include "util/crc32c.hpp"

namespace pregel::cloud {

namespace {

void count_blob_op(Bytes bytes) {
  if (!trace::counters_on()) return;
  trace::Tracer& t = trace::Tracer::instance();
  t.counter("cloud.blob.ops").add(1);
  if (bytes > 0) t.counter("cloud.blob.bytes").add(bytes);
}

}  // namespace

BlobStore::BlobStore(double throughput_bps, Seconds op_latency)
    : throughput_bps_(throughput_bps), op_latency_(op_latency) {
  PREGEL_CHECK_MSG(throughput_bps > 0.0, "BlobStore: throughput must be positive");
}

BlobStore::StoredBlob& BlobStore::stored(const std::string& name, const char* op) {
  auto it = blobs_.find(name);
  if (it == blobs_.end())
    throw std::out_of_range(std::string("BlobStore::") + op + ": no blob " + name);
  return it->second;
}

const BlobStore::StoredBlob& BlobStore::stored(const std::string& name,
                                               const char* op) const {
  auto it = blobs_.find(name);
  if (it == blobs_.end())
    throw std::out_of_range(std::string("BlobStore::") + op + ": no blob " + name);
  return it->second;
}

void BlobStore::put(const std::string& name, std::vector<std::byte> data) {
  ++ops_;
  count_blob_op(static_cast<Bytes>(data.size()));
  const std::uint32_t crc = util::crc32c(data);
  blobs_[name] = StoredBlob{std::move(data), crc};
}

const std::vector<std::byte>& BlobStore::get(const std::string& name) const {
  ++ops_;
  const StoredBlob& blob = stored(name, "get");
  count_blob_op(static_cast<Bytes>(blob.data.size()));
  if (util::crc32c(blob.data) != blob.crc)
    throw BlobCorruptError("BlobStore::get: checksum mismatch on blob " + name);
  return blob.data;
}

bool BlobStore::exists(const std::string& name) const { return blobs_.contains(name); }

void BlobStore::remove(const std::string& name) {
  ++ops_;
  count_blob_op(0);
  blobs_.erase(name);
}

Bytes BlobStore::size_of(const std::string& name) const {
  return static_cast<Bytes>(stored(name, "size_of").data.size());
}

std::uint32_t BlobStore::checksum_of(const std::string& name) const {
  return stored(name, "checksum_of").crc;
}

void BlobStore::corrupt(const std::string& name, std::size_t index) {
  StoredBlob& blob = stored(name, "corrupt");
  PREGEL_CHECK_MSG(index < blob.data.size(), "BlobStore::corrupt: index out of range");
  blob.data[index] ^= std::byte{0xFF};
}

void BlobStore::tear(const std::string& name, std::size_t new_size) {
  StoredBlob& blob = stored(name, "tear");
  PREGEL_CHECK_MSG(new_size < blob.data.size(), "BlobStore::tear: must shrink the blob");
  blob.data.resize(new_size);
}

Seconds BlobStore::transfer_time(Bytes bytes) const noexcept {
  return op_latency_ + static_cast<double>(bytes) * 8.0 / throughput_bps_;
}

}  // namespace pregel::cloud
